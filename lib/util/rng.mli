(** Deterministic, splittable pseudo-random number generator.

    All randomness in the repository flows through this module so that
    experiments, tests and benchmarks are reproducible from a seed.  The
    implementation is SplitMix64, which has a 64-bit state, passes BigCrush,
    and supports cheap splitting into independent streams. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split t] returns a new generator statistically independent of [t];
    [t] itself advances. *)

val split_ix : t -> int -> t
(** [split_ix t ix] derives the [ix]-th child stream of [t]'s current state
    {e without advancing} [t].  Because the child depends only on
    [(state, ix)], a loop that draws its per-iteration generator as
    [split_ix root i] produces the same streams no matter how the iteration
    space is sharded across workers — the discipline {!Pool} relies on. *)

val copy : t -> t
(** [copy t] duplicates the current state (both copies then produce the same
    stream). *)

val bits64 : t -> int64
(** Next 64 uniformly random bits. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Requires
    [lo <= hi]. *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element. Requires a non-empty array. *)
