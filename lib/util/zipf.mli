(** Zipfian sampler.

    The paper's "Zipfian" workload draws flows from a Zipf distribution with
    exponent [s = 1.26] (fitted to a university traffic capture).  This module
    samples ranks [1..n] with probability proportional to [1 / rank^s], using
    inverse-CDF lookup over a precomputed table. *)

type t

val create : s:float -> n:int -> t
(** [create ~s ~n] prepares a sampler over ranks [1..n] with exponent [s].
    Requires [n >= 1] and [s > 0]. *)

val sample : t -> Rng.t -> int
(** [sample t rng] draws a rank in [\[1, n\]]. Rank 1 is the most likely. *)

val prob : t -> int -> float
(** [prob t rank] is the probability of [rank]. *)

val support : t -> int
(** Number of ranks [n]. *)
