(** Fixed-size Domain worker pool with a determinism contract.

    The contract: for any [f] that follows the repository's RNG and
    telemetry discipline, the observable output of [map ~jobs f items] is
    {e bit-identical for every value of [jobs]} — same results, in input
    order; same run-manifest metrics; same failure-sink contents; same
    exception raised when tasks fail.  Concretely:

    - Results come back in input order, regardless of completion order.
    - [~jobs:1] (and single-item inputs) take the exact pre-pool serial
      code path: no domains are spawned, no capture contexts installed.
    - Per-task telemetry (metrics, traces, profiles, solver-cache stats,
      resilience failures) is captured into domain-local buffers while the
      task runs and merged into the global registries {e in task-index
      order} at join — the globals see the stream a serial run would have
      produced.
    - If tasks raise, every task still runs to completion, telemetry is
      committed only for tasks [0..k] where [k] is the {e lowest} failing
      index, and task [k]'s exception is re-raised with its backtrace —
      exactly the serial prefix semantics.
    - Tasks needing randomness must derive their generator from the task
      index via {!Rng.split_ix}, never from a shared advancing stream.

    Wall-clock values ([worker_busy_ns], the [steals] counter, span
    durations) are scheduling-dependent and exempt, as they are for serial
    runs. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f items] applies [f] to each item on up to [jobs] worker
    domains and returns the results in input order.  [jobs] defaults to
    {!default_jobs}; [jobs <= 1], a list of fewer than two items, or a call
    from inside another pool task all run sequentially on the calling
    domain (nested pools do not oversubscribe). *)

val mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** Like {!map}, passing each item's index. *)

val run : ?jobs:int -> (unit -> unit) list -> unit
(** [run ~jobs fs] executes each thunk under the same contract as {!map},
    discarding results. *)

val chunked : ?jobs:int -> int -> (lo:int -> hi:int -> 'b) -> 'b list
(** [chunked ~jobs n f] splits the index range [\[0, n)] into at most
    [jobs] contiguous chunks and evaluates [f ~lo ~hi] for each, returning
    chunk results in range order.  The chunk boundaries depend only on [n]
    and the number of pieces, so callers that fold per-index values
    (derived via {!Rng.split_ix}) get shard-invariant totals.  Sequential
    fallbacks evaluate the single chunk [f ~lo:0 ~hi:n]. *)

(* ------------------------------------------------------------------ *)
(* Job-count configuration                                             *)
(* ------------------------------------------------------------------ *)

val set_default_jobs : int -> unit
(** Sets the process-wide default used when [?jobs] is omitted (clamped to
    at least 1).  The CLI's [-j]/[--jobs] flag lands here.  Initial
    default: 1, i.e. fully serial. *)

val default_jobs : unit -> int

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what [-j] defaults to at the
    CLI. *)

val in_worker : unit -> bool
(** True on a pool worker domain (used by telemetry modules to pick the
    domain-local capture path). *)

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

type stats = {
  tasks : int;  (** tasks executed on worker domains (serial runs: 0) *)
  steals : int;
      (** tasks run by a worker other than their static round-robin owner —
          a load-imbalance indicator; scheduling-dependent *)
  worker_busy_ns : int;  (** summed wall time spent inside tasks *)
}

val stats : unit -> stats
(** Process-lifetime totals; recorded under ["pool"] in run manifests. *)

val reset_stats : unit -> unit

(**/**)

type provider = unit -> unit -> unit -> unit
(** [prepare] (worker, pre-task) returning [finish] (worker, post-task)
    returning [commit] (main domain at join, called in task-index order).
    Internal: telemetry modules register capture hooks at init time. *)

val register_provider : provider -> unit

(**/**)
