(** Crash-safe file writes.

    Every artifact the tool leaves behind (manifests, [BENCH_*.json],
    [--trace]/[--metrics] files, ktest fingerprints, journal segments) goes
    through one of two disciplines:

    - {e atomic replace}: the content is written to [<path>.tmp], flushed
      and fsynced, then [rename]d over [path].  A crash at any instant
      leaves either the old file or the new one — never a torn JSON that a
      strict parser (or a resumed run) then chokes on.
    - {e durable append}: an append-only line writer that fsyncs after
      every line, for ledgers whose records must survive the very crash
      they are journaling against.  A torn {e final} line (the crash hit
      mid-[write]) is the only possible damage, and readers skip it.

    Both are plain [Unix] + [Stdlib]; no new dependencies. *)

val write_string : path:string -> string -> unit
(** [write_string ~path s] atomically replaces [path] with [s]: write to
    [path ^ ".tmp"], flush, fsync, close, rename.
    @raise Sys_error when the directory is missing or not writable. *)

val with_out : path:string -> (out_channel -> unit) -> unit
(** Like {!write_string} for callers that stream into the channel.  The
    rename happens only if [f] returns normally; on an exception the tmp
    file is removed and the old [path] (if any) survives untouched. *)

type appender
(** An open append-only line writer (the journal ledger). *)

val append_open : string -> appender
(** Opens [path] for appending, creating it (and fsyncing the containing
    directory so the creation itself is durable) if needed. *)

val append_line : appender -> string -> unit
(** Writes [line ^ "\n"], flushes and fsyncs before returning: once
    [append_line] returns, the record survives a crash. *)

val append_close : appender -> unit
(** Idempotent. *)

val fsync_dir : string -> unit
(** Fsync a directory fd so renames/creations inside it are durable.  A
    no-op on systems where opening a directory for reading fails. *)
