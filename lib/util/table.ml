let pad cell width = cell ^ String.make (width - String.length cell) ' '

let render ~header ~rows =
  let ncols = List.length header in
  let normalize row =
    let len = List.length row in
    if len >= ncols then row else row @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let widths = Array.of_list (List.map String.length header) in
  let note_row row =
    List.iteri (fun i cell ->
        if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
      row
  in
  List.iter note_row rows;
  let line row =
    String.concat "  " (List.mapi (fun i cell -> pad cell widths.(i)) row)
  in
  let sep =
    String.concat "  "
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let body = List.map line rows in
  String.concat "\n" ((line header :: sep :: body) @ [ "" ])

let print ~header ~rows = print_string (render ~header ~rows)
