(** Plain-text table rendering for experiment reports. *)

val render : header:string list -> rows:string list list -> string
(** [render ~header ~rows] lays the table out with column widths fitted to the
    contents, a separator line under the header, and cells left-aligned. Rows
    shorter than the header are padded with empty cells. *)

val print : header:string list -> rows:string list list -> unit
(** [print] is [render] followed by [print_string]. *)
