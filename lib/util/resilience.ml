type failure = {
  stage : string;
  nf : string option;
  reason : string;
  backtrace : string;
}

let failure ?nf ?(backtrace = "") ~stage reason = { stage; nf; reason; backtrace }

let to_string f =
  match f.nf with
  | Some nf -> Printf.sprintf "%s(%s): %s" f.stage nf f.reason
  | None -> Printf.sprintf "%s: %s" f.stage f.reason

let pp fmt f = Format.pp_print_string fmt (to_string f)

let by_stage failures =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun f ->
      let cur = match Hashtbl.find_opt counts f.stage with Some n -> n | None -> 0 in
      Hashtbl.replace counts f.stage (cur + 1))
    failures;
  Hashtbl.fold (fun stage n acc -> (stage, n) :: acc) counts []
  |> List.sort compare

exception Injected of failure

let () =
  Printexc.register_printer (function
    | Injected f -> Some ("injected fault: " ^ to_string f)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Fail-fast and the failure sink                                      *)
(* ------------------------------------------------------------------ *)

let fail_fast_flag = ref false
let set_fail_fast b = fail_fast_flag := b
let fail_fast () = !fail_fast_flag

let sink : failure list ref = ref []
let record f = sink := f :: !sink
let recorded () = List.rev !sink
let reset () = sink := []

(* ------------------------------------------------------------------ *)
(* Guards                                                              *)
(* ------------------------------------------------------------------ *)

let guard ?nf ~stage f =
  try Ok (f ())
  with e when not !fail_fast_flag ->
    let fl =
      match e with
      | Injected fl -> fl
      | e ->
          failure ?nf ~stage
            ~backtrace:(Printexc.get_backtrace ())
            (Printexc.to_string e)
    in
    record fl;
    Error fl

(* ------------------------------------------------------------------ *)
(* Deadlines                                                           *)
(* ------------------------------------------------------------------ *)

type deadline = float option (* absolute gettimeofday instant *)

let no_deadline = None
let deadline_in seconds = Some (Unix.gettimeofday () +. seconds)

let expired = function
  | None -> false
  | Some t -> Unix.gettimeofday () >= t

let remaining = function
  | None -> infinity
  | Some t -> Float.max 0. (t -. Unix.gettimeofday ())

(* ------------------------------------------------------------------ *)
(* Retry with backoff                                                  *)
(* ------------------------------------------------------------------ *)

let retry ?(attempts = 3) ?(base_delay = 0.05) ?(max_delay = 1.0)
    ?(sleep = Unix.sleepf) ~rng ~stage ?nf f =
  let attempts = max 1 attempts in
  let rec go k =
    match f k with
    | Ok _ as ok -> ok
    | Error _ as err when k + 1 >= attempts -> err
    | Error _ ->
        let backoff = Float.min max_delay (base_delay *. (2. ** float_of_int k)) in
        let jitter = 0.5 +. Rng.float rng in
        sleep (backoff *. jitter);
        go (k + 1)
  in
  match go 0 with
  | Ok _ as ok -> ok
  | Error last ->
      Error
        { last with
          stage = (if last.stage = "" then stage else last.stage);
          nf = (match last.nf with None -> nf | some -> some);
          reason = Printf.sprintf "%s (after %d attempts)" last.reason attempts;
        }

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

type injector = { rate : float; rng : Rng.t }

let inject ~rate ~seed = { rate; rng = Rng.create (0xfa17 lxor seed) }

let ambient : injector option ref = ref None
let set_injection i = ambient := i
let injection_active () = !ambient <> None

let checkpoint ?nf ~stage () =
  match !ambient with
  | None -> ()
  | Some { rate; rng } ->
      (* rate = 0. must not even draw: a disabled injector is bit-identical
         to no injector at all. *)
      if rate > 0. && Rng.float rng < rate then
        raise
          (Injected (failure ?nf ~stage "injected fault (--inject-faults)"))
