type failure = {
  stage : string;
  nf : string option;
  reason : string;
  backtrace : string;
}

let failure ?nf ?(backtrace = "") ~stage reason = { stage; nf; reason; backtrace }

let to_string f =
  match f.nf with
  | Some nf -> Printf.sprintf "%s(%s): %s" f.stage nf f.reason
  | None -> Printf.sprintf "%s: %s" f.stage f.reason

let pp fmt f = Format.pp_print_string fmt (to_string f)

let by_stage failures =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun f ->
      let cur = match Hashtbl.find_opt counts f.stage with Some n -> n | None -> 0 in
      Hashtbl.replace counts f.stage (cur + 1))
    failures;
  Hashtbl.fold (fun stage n acc -> (stage, n) :: acc) counts []
  |> List.sort compare

exception Injected of failure
exception Crashed of failure

let () =
  Printexc.register_printer (function
    | Injected f -> Some ("injected fault: " ^ to_string f)
    | Crashed f -> Some ("injected crash: " ^ to_string f)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Fail-fast and the failure sink                                      *)
(* ------------------------------------------------------------------ *)

let fail_fast_flag = ref false
let set_fail_fast b = fail_fast_flag := b
let fail_fast () = !fail_fast_flag

(* The process-wide sink is Mutex-guarded; inside a {!Pool} task, failures
   are captured into a domain-local buffer instead and merged by the pool in
   task-index order at join, so the recorded order is the serial one. *)
let sink : failure list ref = ref []
let sink_mu = Mutex.create ()

let local_sink_key : failure list ref option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let record f =
  match Domain.DLS.get local_sink_key with
  | Some buf -> buf := f :: !buf
  | None -> Mutex.protect sink_mu (fun () -> sink := f :: !sink)

let recorded () = Mutex.protect sink_mu (fun () -> List.rev !sink)
let reset () = Mutex.protect sink_mu (fun () -> sink := [])

let capture_begin () = Domain.DLS.set local_sink_key (Some (ref []))

let capture_end () =
  match Domain.DLS.get local_sink_key with
  | None -> []
  | Some buf ->
      Domain.DLS.set local_sink_key None;
      List.rev !buf

(* ------------------------------------------------------------------ *)
(* Guards                                                              *)
(* ------------------------------------------------------------------ *)

let guard ?nf ~stage f =
  try Ok (f ())
  with
  e when (match e with Crashed _ -> false | _ -> not !fail_fast_flag) ->
    let fl =
      match e with
      | Injected fl -> fl
      | e ->
          failure ?nf ~stage
            ~backtrace:(Printexc.get_backtrace ())
            (Printexc.to_string e)
    in
    record fl;
    Error fl

(* ------------------------------------------------------------------ *)
(* Deadlines                                                           *)
(* ------------------------------------------------------------------ *)

type deadline = float option (* absolute gettimeofday instant *)

let no_deadline = None
let deadline_in seconds = Some (Unix.gettimeofday () +. seconds)

let expired = function
  | None -> false
  | Some t -> Unix.gettimeofday () >= t

let remaining = function
  | None -> infinity
  | Some t -> Float.max 0. (t -. Unix.gettimeofday ())

(* ------------------------------------------------------------------ *)
(* Retry with backoff                                                  *)
(* ------------------------------------------------------------------ *)

let retry ?(attempts = 3) ?(base_delay = 0.05) ?(max_delay = 1.0)
    ?(sleep = Unix.sleepf) ~rng ~stage ?nf f =
  let attempts = max 1 attempts in
  let rec go k =
    match f k with
    | Ok _ as ok -> ok
    | Error _ as err when k + 1 >= attempts -> err
    | Error _ ->
        let backoff = Float.min max_delay (base_delay *. (2. ** float_of_int k)) in
        let jitter = 0.5 +. Rng.float rng in
        sleep (backoff *. jitter);
        go (k + 1)
  in
  match go 0 with
  | Ok _ as ok -> ok
  | Error last ->
      Error
        { last with
          stage = (if last.stage = "" then stage else last.stage);
          nf = (match last.nf with None -> nf | some -> some);
          reason = Printf.sprintf "%s (after %d attempts)" last.reason attempts;
        }

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

type injector = { rate : float; seed : int; rng : Rng.t; draw_mu : Mutex.t }

let inject ~rate ~seed =
  { rate; seed; rng = Rng.create (0xfa17 lxor seed); draw_mu = Mutex.create () }

let ambient : injector option ref = ref None
let set_injection i = ambient := i
let injection_active () = !ambient <> None

let injection_signature () =
  match !ambient with
  | None -> "none"
  | Some { rate; seed; _ } -> Printf.sprintf "%g:%d" rate seed

(* ------------------------------------------------------------------ *)
(* Crash points                                                        *)
(* ------------------------------------------------------------------ *)

(* Unlike probabilistic fault injection (converted to [Error] by the
   enclosing guard), a crash point models the process dying: the K-th
   checkpoint site reached raises {!Crashed}, which no guard contains.
   The counter is atomic because checkpoints run on pool workers too; with
   [-j 1] the K-th site is exactly the K-th a serial trace would list. *)
let crash_target = ref 0 (* 0 = disarmed *)
let crash_seen = Atomic.make 0

let set_crash_point target =
  (match target with
  | None -> crash_target := 0
  | Some k -> crash_target := max 1 k);
  Atomic.set crash_seen 0

let crash_points_seen () = Atomic.get crash_seen

let checkpoint ?nf ~stage () =
  (let k = Atomic.fetch_and_add crash_seen 1 + 1 in
   if !crash_target > 0 && k = !crash_target then
     raise
       (Crashed
          (failure ?nf ~stage
             (Printf.sprintf "injected crash at checkpoint %d" k))));
  match !ambient with
  | None -> ()
  | Some { rate; rng; draw_mu; _ } ->
      (* rate = 0. must not even draw: a disabled injector is bit-identical
         to no injector at all.  The draw is Mutex-guarded because guarded
         stages may run on pool workers; with jobs > 1 the injection
         *pattern* depends on scheduling (the stream is shared), but each
         draw is still well-defined and serial runs are unchanged. *)
      if rate > 0. && Mutex.protect draw_mu (fun () -> Rng.float rng) < rate
      then
        raise
          (Injected (failure ?nf ~stage "injected fault (--inject-faults)"))
