type t = { n : int; cdf : float array }

let create ~s ~n =
  assert (n >= 1 && s > 0.0);
  let cdf = Array.make n 0.0 in
  let total = ref 0.0 in
  for rank = 1 to n do
    total := !total +. (1.0 /. Float.pow (float_of_int rank) s);
    cdf.(rank - 1) <- !total
  done;
  let z = !total in
  Array.iteri (fun i v -> cdf.(i) <- v /. z) cdf;
  { n; cdf }

(* Binary search for the first index whose cdf is >= u. *)
let sample t rng =
  let u = Rng.float rng in
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo + 1

let prob t rank =
  assert (rank >= 1 && rank <= t.n);
  if rank = 1 then t.cdf.(0) else t.cdf.(rank - 1) -. t.cdf.(rank - 2)

let support t = t.n
