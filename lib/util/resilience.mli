(** Failure containment for the analysis pipeline.

    CASTAN's value is the end-to-end evaluation: one harness run drives all
    eleven NFs through symbolic execution, constraint solving, hash reversal
    and the simulated testbed.  Any of those stages can die — heap
    exhaustion inside symbex, an unsolvable path constraint, a malformed
    contention-set file — and a single uncontained exception used to abort
    the whole campaign.  This module is the failure-semantics contract every
    stage now follows:

    - stage failures are {e values} ([('a, failure) result]), carrying the
      stage name, the NF being analyzed, the reason and a backtrace;
    - long stages run against {e deadlines} that can be polled cheaply from
      inner loops;
    - transient stages can be {e retried} with deterministic,
      seeded-jitter exponential backoff;
    - the degradation paths are themselves testable through a seeded
      {e fault injector} that probabilistically trips guarded stages.

    Failures funnel into a process-wide sink so the end of a run can print
    an error summary and choose an exit code (clean / completed-degraded /
    fatal). *)

type failure = {
  stage : string;  (** pipeline stage, e.g. ["symbex"] or ["testbed"] *)
  nf : string option;  (** network function under analysis, if any *)
  reason : string;
  backtrace : string;  (** possibly empty *)
}

val failure : ?nf:string -> ?backtrace:string -> stage:string -> string -> failure
(** [failure ~stage reason] builds a failure value; backtrace defaults to
    empty. *)

val to_string : failure -> string
(** One line: [stage(nf): reason]. *)

val pp : Format.formatter -> failure -> unit

val by_stage : failure list -> (string * int) list
(** Failure counts grouped by stage, sorted by stage name. *)

exception Injected of failure
(** Raised by {!checkpoint} when the ambient fault injector fires. *)

exception Crashed of failure
(** Raised by {!checkpoint} when an armed crash point (see
    {!set_crash_point}) is reached.  Models the process dying at that
    site: {!guard} never contains it, regardless of fail-fast. *)

(* ------------------------------------------------------------------ *)
(* Guards                                                              *)
(* ------------------------------------------------------------------ *)

val guard : ?nf:string -> stage:string -> (unit -> 'a) -> ('a, failure) result
(** [guard ~stage f] runs [f] and converts any exception into [Error] — an
    {!Injected} fault keeps the stage recorded at its injection point,
    anything else is attributed to [stage].  Failures are also appended to
    the {!recorded} sink.  When {!set_fail_fast} is on, exceptions propagate
    unchanged so the caller aborts on first failure. *)

(* ------------------------------------------------------------------ *)
(* Deadlines                                                           *)
(* ------------------------------------------------------------------ *)

type deadline

val no_deadline : deadline
(** Never expires. *)

val deadline_in : float -> deadline
(** [deadline_in seconds] expires [seconds] of wall time from now. *)

val expired : deadline -> bool
(** Cheap enough to poll from an interpreter loop. *)

val remaining : deadline -> float
(** Seconds left; [infinity] for {!no_deadline}, clamped at [0.]. *)

(* ------------------------------------------------------------------ *)
(* Retry with backoff                                                  *)
(* ------------------------------------------------------------------ *)

val retry :
  ?attempts:int ->
  ?base_delay:float ->
  ?max_delay:float ->
  ?sleep:(float -> unit) ->
  rng:Rng.t ->
  stage:string ->
  ?nf:string ->
  (int -> ('a, failure) result) ->
  ('a, failure) result
(** [retry ~rng ~stage f] calls [f 0], [f 1], ... until one returns [Ok] or
    [attempts] (default 3) are exhausted; the last [Error] is returned.
    Between attempts it sleeps [min max_delay (base_delay * 2^k)] scaled by
    a jitter factor in [\[0.5, 1.5)] drawn from [rng] — equal seeds yield
    equal delay sequences, which is what makes retrying stages testable.
    Defaults: [base_delay = 0.05]s, [max_delay = 1.0]s, [sleep =
    Unix.sleepf]. *)

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

type injector

val inject : rate:float -> seed:int -> injector
(** [inject ~rate ~seed] fires on each {!checkpoint} independently with
    probability [rate], deterministically from [seed].  [rate = 0.] never
    fires (and {!checkpoint} stays a no-op, preserving bit-identical
    behaviour); [rate = 1.] always fires. *)

val set_injection : injector option -> unit
(** Installs (or clears) the ambient injector consulted by
    {!checkpoint}.  Default: none. *)

val injection_active : unit -> bool

val injection_signature : unit -> string
(** ["none"] without an ambient injector, else ["<rate>:<seed>"].  Part of
    the journal's run identity: cells produced under fault injection must
    not be reused by (or leak into) clean runs. *)

val checkpoint : ?nf:string -> stage:string -> unit -> unit
(** Marks the entry of a guarded stage.  No-op unless an ambient injector
    is installed and fires, in which case {!Injected} is raised (and
    subsequently converted to [Error] by the enclosing {!guard}) — or an
    armed crash point is reached, which raises {!Crashed} instead. *)

(* ------------------------------------------------------------------ *)
(* Crash points                                                        *)
(* ------------------------------------------------------------------ *)

val set_crash_point : int option -> unit
(** [set_crash_point (Some k)] arms a deterministic crash at the [k]-th
    (1-based) {!checkpoint} site reached from now on; the site raises
    {!Crashed}, which propagates through every guard — the crash-safety
    tests (and the CLI's [--crash-after]) use this to prove that dying at
    any checkpoint and resuming from the journal reproduces an
    uninterrupted run.  [None] disarms.  Arming resets the site counter. *)

val crash_points_seen : unit -> int
(** Checkpoint sites passed since the last {!set_crash_point} — lets a test
    first count a run's sites, then quickcheck a crash at each. *)

(* ------------------------------------------------------------------ *)
(* Fail-fast and the failure sink                                      *)
(* ------------------------------------------------------------------ *)

val set_fail_fast : bool -> unit
(** When on, {!guard} re-raises instead of containing (exit code 1
    territory).  Default: off. *)

val fail_fast : unit -> bool

val record : failure -> unit
(** Appends to the process-wide sink ({!guard} does this automatically).
    The sink is Mutex-guarded; inside a {!Pool} task the failure goes to a
    domain-local capture buffer instead (see {!capture_begin}) so the pool
    can merge per-task failures in deterministic task-index order. *)

val recorded : unit -> failure list
(** All failures recorded so far, oldest first. *)

val reset : unit -> unit
(** Clears the sink (tests; the CLI resets between runs). *)

(**/**)

val capture_begin : unit -> unit
(** Redirect this domain's {!record} calls into a fresh local buffer.
    Internal: {!Pool} brackets every task with this. *)

val capture_end : unit -> failure list
(** Stop capturing and return the buffered failures, oldest first.  The
    caller replays them through {!record} at merge time. *)

(**/**)
