type cdf = float array (* sorted samples *)

let cdf_of_samples samples =
  assert (Array.length samples > 0);
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  sorted

let quantile c q =
  assert (q >= 0.0 && q <= 1.0);
  let n = Array.length c in
  let idx = int_of_float (Float.round (q *. float_of_int (n - 1))) in
  c.(idx)

let median c = quantile c 0.5
let min_value c = c.(0)
let max_value c = c.(Array.length c - 1)

let points c ?(steps = 20) () =
  let n = Array.length c in
  let acc = ref [] in
  for i = steps downto 0 do
    let q = float_of_int i /. float_of_int steps in
    let idx = min (n - 1) (int_of_float (q *. float_of_int n)) in
    acc := (c.(idx), q) :: !acc
  done;
  !acc

let mean a =
  assert (Array.length a > 0);
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let stddev a =
  let m = mean a in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a
    /. float_of_int (Array.length a)
  in
  sqrt var

let median_int a =
  assert (Array.length a > 0);
  let sorted = Array.copy a in
  Array.sort compare sorted;
  sorted.((Array.length sorted - 1) / 2)

let quantile_int a q =
  assert (Array.length a > 0);
  assert (q >= 0.0 && q <= 1.0);
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let n = Array.length sorted in
  (* nearest-rank: the smallest value with at least a fraction q of the
     samples at or below it *)
  let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

let p95 a = quantile_int a 0.95
let p99 a = quantile_int a 0.99
