type cdf = float array (* sorted samples *)

(* Specialized in-place sorts: [Array.sort compare] pays polymorphic-compare
   dispatch on every element pair, and even a monomorphic comparator boxes
   both floats per call through the closure.  Direct [<]/[>] on unboxed
   float/int array elements allocates nothing, and the fat (three-way)
   partition matters because measurement samples are duplicate-heavy — a
   median instruction count can cover most of a workload, which would drive
   a binary-partition quicksort quadratic.  Pivot choice is deterministic
   (median of three), recursion goes into the smaller side only, so stack
   depth is O(log n).  Sorting is what CDF construction does with hundreds
   of thousands of samples per workload, so this path is what replay-heavy
   experiments end up timing. *)

let sort_floats (a : float array) =
  let swap i j =
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  in
  let insertion lo hi =
    for i = lo + 1 to hi do
      let x = a.(i) in
      let j = ref (i - 1) in
      while !j >= lo && a.(!j) > x do
        a.(!j + 1) <- a.(!j);
        decr j
      done;
      a.(!j + 1) <- x
    done
  in
  let rec qsort lo0 hi0 =
    let lo = ref lo0 and hi = ref hi0 in
    while !hi - !lo > 16 do
      let mid = !lo + ((!hi - !lo) / 2) in
      (* Median of three into [mid], giving a deterministic pivot. *)
      if a.(mid) < a.(!lo) then swap mid !lo;
      if a.(!hi) < a.(!lo) then swap !hi !lo;
      if a.(!hi) < a.(mid) then swap !hi mid;
      let p = a.(mid) in
      (* Fat partition: [lo,lt) < p, [lt,i) = p, (gt,hi] > p. *)
      let lt = ref !lo and i = ref !lo and gt = ref !hi in
      while !i <= !gt do
        let x = a.(!i) in
        if x < p then begin
          swap !lt !i;
          incr lt;
          incr i
        end
        else if x > p then begin
          swap !i !gt;
          decr gt
        end
        else incr i
      done;
      if !lt - !lo < !hi - !gt then begin
        qsort !lo (!lt - 1);
        lo := !gt + 1
      end
      else begin
        qsort (!gt + 1) !hi;
        hi := !lt - 1
      end
    done;
    insertion !lo !hi
  in
  let n = Array.length a in
  if n > 1 then qsort 0 (n - 1)

let sort_ints (a : int array) =
  let swap i j =
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  in
  let insertion lo hi =
    for i = lo + 1 to hi do
      let x = a.(i) in
      let j = ref (i - 1) in
      while !j >= lo && a.(!j) > x do
        a.(!j + 1) <- a.(!j);
        decr j
      done;
      a.(!j + 1) <- x
    done
  in
  let rec qsort lo0 hi0 =
    let lo = ref lo0 and hi = ref hi0 in
    while !hi - !lo > 16 do
      let mid = !lo + ((!hi - !lo) / 2) in
      if a.(mid) < a.(!lo) then swap mid !lo;
      if a.(!hi) < a.(!lo) then swap !hi !lo;
      if a.(!hi) < a.(mid) then swap !hi mid;
      let p = a.(mid) in
      let lt = ref !lo and i = ref !lo and gt = ref !hi in
      while !i <= !gt do
        let x = a.(!i) in
        if x < p then begin
          swap !lt !i;
          incr lt;
          incr i
        end
        else if x > p then begin
          swap !i !gt;
          decr gt
        end
        else incr i
      done;
      if !lt - !lo < !hi - !gt then begin
        qsort !lo (!lt - 1);
        lo := !gt + 1
      end
      else begin
        qsort (!gt + 1) !hi;
        hi := !lt - 1
      end
    done;
    insertion !lo !hi
  in
  let n = Array.length a in
  if n > 1 then qsort 0 (n - 1)

let cdf_of_samples samples =
  assert (Array.length samples > 0);
  let sorted = Array.copy samples in
  sort_floats sorted;
  sorted

let quantile c q =
  assert (q >= 0.0 && q <= 1.0);
  let n = Array.length c in
  let idx = int_of_float (Float.round (q *. float_of_int (n - 1))) in
  c.(idx)

let median c = quantile c 0.5
let min_value c = c.(0)
let max_value c = c.(Array.length c - 1)

let points c ?(steps = 20) () =
  let n = Array.length c in
  let acc = ref [] in
  for i = steps downto 0 do
    let q = float_of_int i /. float_of_int steps in
    let idx = min (n - 1) (int_of_float (q *. float_of_int n)) in
    acc := (c.(idx), q) :: !acc
  done;
  !acc

let mean a =
  assert (Array.length a > 0);
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let stddev a =
  let m = mean a in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a
    /. float_of_int (Array.length a)
  in
  sqrt var

let median_int a =
  assert (Array.length a > 0);
  let sorted = Array.copy a in
  sort_ints sorted;
  sorted.((Array.length sorted - 1) / 2)

let quantile_int a q =
  assert (Array.length a > 0);
  assert (q >= 0.0 && q <= 1.0);
  let sorted = Array.copy a in
  sort_ints sorted;
  let n = Array.length sorted in
  (* nearest-rank: the smallest value with at least a fraction q of the
     samples at or below it *)
  let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

let p95 a = quantile_int a 0.95
let p99 a = quantile_int a 0.99
