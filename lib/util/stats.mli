(** Summary statistics and empirical CDFs for measurement results. *)

type cdf
(** An empirical cumulative distribution function over float samples. *)

val cdf_of_samples : float array -> cdf
(** Builds the empirical CDF (the input array is not modified). Requires a
    non-empty array. *)

val quantile : cdf -> float -> float
(** [quantile c q] with [q] in [\[0, 1\]]; [quantile c 0.5] is the median. *)

val median : cdf -> float

val min_value : cdf -> float
val max_value : cdf -> float

val points : cdf -> ?steps:int -> unit -> (float * float) list
(** [points c ~steps ()] samples the CDF curve as [(value, fraction)] pairs
    suitable for plotting or printing; default 20 steps. *)

val mean : float array -> float
val stddev : float array -> float

val median_int : int array -> int
(** Median of integer samples (lower median). Requires a non-empty array. *)

val quantile_int : int array -> float -> int
(** [quantile_int a q] with [q] in [\[0, 1\]]: the nearest-rank quantile of
    integer samples — the smallest value with at least a fraction [q] of the
    samples at or below it ([q = 0] yields the minimum).  The input array is
    not modified.  Requires a non-empty array. *)

val p95 : int array -> int
(** [quantile_int a 0.95] — tail-latency summary helper. *)

val p99 : int array -> int
(** [quantile_int a 0.99]. *)
