(* Fixed-size Domain worker pool with a determinism contract: output is
   bit-identical for every [jobs] value.  See pool.mli for the contract and
   DESIGN.md §10 for the rationale. *)

(* ------------------------------------------------------------------ *)
(* Job-count configuration                                             *)
(* ------------------------------------------------------------------ *)

let default_jobs_ref = ref 1
let recommended_jobs () = Domain.recommended_domain_count ()
let set_default_jobs n = default_jobs_ref := max 1 n
let default_jobs () = !default_jobs_ref

(* ------------------------------------------------------------------ *)
(* Counters (for run manifests)                                        *)
(* ------------------------------------------------------------------ *)

type stats = { tasks : int; steals : int; worker_busy_ns : int }

let tasks_total = Atomic.make 0
let steals_total = Atomic.make 0
let busy_ns_total = Atomic.make 0

let stats () =
  {
    tasks = Atomic.get tasks_total;
    steals = Atomic.get steals_total;
    worker_busy_ns = Atomic.get busy_ns_total;
  }

let reset_stats () =
  Atomic.set tasks_total 0;
  Atomic.set steals_total 0;
  Atomic.set busy_ns_total 0

(* ------------------------------------------------------------------ *)
(* Worker detection                                                    *)
(* ------------------------------------------------------------------ *)

let in_worker_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)
let in_worker () = Domain.DLS.get in_worker_key

(* ------------------------------------------------------------------ *)
(* Telemetry capture providers                                         *)
(* ------------------------------------------------------------------ *)

(* [util] cannot depend on [obs], so domain-unsafe ambient registries hook
   themselves in at module-init time.  A provider is three nested closures:

     prepare () -> finish        run on the worker, before the task
     finish ()  -> commit        run on the worker, after the task
     commit ()  -> ()            run on the main domain at join,
                                 in task-index order

   [prepare] installs a domain-local capture context, [finish] tears it down
   and closes over the captured payload, [commit] replays the payload into
   the global registry — so the global sees exactly the stream a serial run
   would have produced. *)
type provider = unit -> unit -> unit -> unit

let providers : provider list ref = ref []
let register_provider p = providers := !providers @ [ p ]

(* ------------------------------------------------------------------ *)
(* The pool                                                            *)
(* ------------------------------------------------------------------ *)

type 'b slot = Pending | Done of 'b | Failed of exn * Printexc.raw_backtrace

let resolve_jobs = function Some j -> max 1 j | None -> !default_jobs_ref

let mapi ?jobs f items =
  let jobs = resolve_jobs jobs in
  let n = List.length items in
  (* jobs = 1 is the exact pre-pool code path: no domains, no capture, no
     counter churn.  So is a nested map inside a worker — tasks must stay
     sequential within their capture context. *)
  if jobs <= 1 || n <= 1 || in_worker () then List.mapi f items
  else begin
    let input = Array.of_list items in
    let workers = min jobs n in
    let slots = Array.make n Pending in
    let commits : (unit -> unit) list array = Array.make n [] in
    let next = Atomic.make 0 in
    let provs = !providers in
    let worker wid =
      Domain.DLS.set in_worker_key true;
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          Atomic.incr tasks_total;
          (* A "steal" is a task whose executing worker differs from its
             static round-robin owner — a load-imbalance indicator only;
             the value is scheduling-dependent and exempt from the
             determinism contract (like wall times). *)
          if i mod workers <> wid then Atomic.incr steals_total;
          let t0 = Unix.gettimeofday () in
          let finishes = List.map (fun prepare -> prepare ()) provs in
          (match f i input.(i) with
          | v -> slots.(i) <- Done v
          | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              slots.(i) <- Failed (e, bt));
          commits.(i) <- List.map (fun finish -> finish ()) finishes;
          let dt_ns = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
          ignore (Atomic.fetch_and_add busy_ns_total dt_ns : int);
          loop ()
        end
      in
      loop ()
    in
    let domains =
      Array.init workers (fun wid -> Domain.spawn (fun () -> worker wid))
    in
    Array.iter Domain.join domains;
    (* Deterministic failure semantics: a serial run would have executed
       tasks 0..k and raised at the first failing index k.  Re-raising the
       lowest failing index — after committing the telemetry of tasks 0..k
       only — reproduces that exactly.  (Every task runs to completion
       first; aborting early would make "which exception" a race.) *)
    let fail_ix = ref (-1) in
    for i = n - 1 downto 0 do
      match slots.(i) with Failed _ -> fail_ix := i | _ -> ()
    done;
    let commit_upto = if !fail_ix >= 0 then !fail_ix else n - 1 in
    for i = 0 to commit_upto do
      List.iter (fun commit -> commit ()) commits.(i)
    done;
    if !fail_ix >= 0 then
      match slots.(!fail_ix) with
      | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
      | _ -> assert false
    else
      Array.to_list
        (Array.map
           (function Done v -> v | Pending | Failed _ -> assert false)
           slots)
  end

let map ?jobs f items = mapi ?jobs (fun _ x -> f x) items
let run ?jobs fs = ignore (mapi ?jobs (fun _ f -> f ()) fs : unit list)

let chunked ?jobs n f =
  let jobs = resolve_jobs jobs in
  if n <= 0 then []
  else if jobs <= 1 || n <= 1 || in_worker () then [ f ~lo:0 ~hi:n ]
  else begin
    let pieces = min jobs n in
    let ranges =
      List.init pieces (fun k -> (k * n / pieces, (k + 1) * n / pieces))
    in
    map ~jobs (fun (lo, hi) -> f ~lo ~hi) ranges
  end

(* The resilience sink lives in this library; its capture provider is
   registered here so that every user of the pool gets deterministic
   failure-sink ordering without further wiring. *)
let () =
  register_provider (fun () ->
      Resilience.capture_begin ();
      fun () ->
        let failures = Resilience.capture_end () in
        fun () -> List.iter Resilience.record failures)
