let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd
  | exception Unix.Unix_error _ -> ()

let fsync_out oc =
  flush oc;
  try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ()

let with_out ~path f =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try f oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  fsync_out oc;
  close_out oc;
  Sys.rename tmp path;
  fsync_dir (Filename.dirname path)

let write_string ~path s = with_out ~path (fun oc -> output_string oc s)

type appender = { oc : out_channel; mutable closed : bool }

let append_open path =
  let existed = Sys.file_exists path in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  if not existed then fsync_dir (Filename.dirname path);
  { oc; closed = false }

let append_line a line =
  if not a.closed then begin
    output_string a.oc line;
    output_char a.oc '\n';
    fsync_out a.oc
  end

let append_close a =
  if not a.closed then begin
    a.closed <- true;
    close_out_noerr a.oc
  end
