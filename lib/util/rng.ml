type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

(* SplitMix64 output function (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = bits64 t in
  { state = s }

(* Index-keyed splitting for sharded loops: child [ix] is a pure function of
   the parent's current state, so any partition of [0, n) into shards yields
   the same per-index streams.  [ix + 1] keeps child 0 distinct from the
   parent's own continuation. *)
let split_ix t ix =
  { state = mix (Int64.add t.state (Int64.mul golden_gamma (Int64.of_int (ix + 1)))) }

let copy t = { state = t.state }

let int t n =
  assert (n > 0);
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (bits64 t) mask) in
  v mod n

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t =
  let v = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float v *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
