type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then
        (* %.17g reparses exactly; strip to shortest via %g first when
           lossless to keep traces small. *)
        let s = Printf.sprintf "%.12g" f in
        let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
        (* "1e3" and "1" are valid JSON numbers; "inf"/"nan" are not, but the
           is_finite guard excludes them. *)
        Buffer.add_string buf s
      else Buffer.add_string buf "null"
  | Str s -> escape_to buf s
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf v)
        l;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> error (Printf.sprintf "expected %C, got %C" c c')
    | None -> error (Printf.sprintf "expected %C, got end of input" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else error (Printf.sprintf "invalid literal (expected %s)" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then error "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then error "truncated \\u escape";
                   let hex = String.sub s !pos 4 in
                   (match int_of_string_opt ("0x" ^ hex) with
                   | None -> error "invalid \\u escape"
                   | Some code ->
                       (* Telemetry only emits \u00xx for control chars;
                          decode the BMP code point as UTF-8. *)
                       if code < 0x80 then Buffer.add_char buf (Char.chr code)
                       else if code < 0x800 then begin
                         Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                         Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                       end
                       else begin
                         Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                         Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                         Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                       end;
                       pos := !pos + 4)
               | c -> error (Printf.sprintf "invalid escape \\%C" c));
            go ()
        | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    while
      match peek () with
      | Some ('0' .. '9') -> true
      | Some ('.' | 'e' | 'E' | '+' | '-') ->
          is_float := true;
          true
      | _ -> false
    do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> error (Printf.sprintf "invalid number %S" text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          (* out of int range: fall back to float *)
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> error (Printf.sprintf "invalid number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elems (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> error "expected ',' or ']'"
          in
          elems []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields (kv :: acc)
            | Some '}' -> advance (); Obj (List.rev (kv :: acc))
            | _ -> error "expected ',' or '}'"
          in
          fields []
    | Some c -> error (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "json parse error at offset %d: %s" at msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
