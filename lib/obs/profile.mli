(** Deterministic cost-attribution profiler.

    Where {!Metrics} answers "how much, in total", this module answers
    "where": every executor (the symbolic engine, the concrete interpreter,
    the closure-compiled DUT executor) marks the source location it is about
    to execute with {!enter}, and every cost source — instruction
    retirement, cache-model outcomes, DUT memory latencies, pointer
    concretizations — attributes to that ambient location.  Samples
    accumulate per [(func, pc)]; {!Castan.Profile_report} aggregates them to
    basic blocks for the hot-block table, flamegraph-collapsed output and
    profile JSON.

    Like the rest of [lib/obs], the profiler is ambient and gated: when
    disabled (the default) every operation reduces to a single [ref] read,
    allocates nothing, and analysis results are bit-identical to a build
    without the profiler.  When enabled, everything recorded is an integer
    derived from the deterministic cost model — never wall time — so two
    runs with the same NF, seed and workload produce byte-identical
    attribution.  Wall time lives only in the separate named {!add_timer}
    buckets (solver, symbex, replay), which reports keep out of the
    deterministic outputs. *)

type level = L1 | L2 | L3 | Dram

type stats = {
  mutable cycles : int;  (** total attributed cycles (retire + memory) *)
  mutable instrs : int;  (** weighted instructions retired *)
  mutable loads : int;
  mutable stores : int;
  mutable l1 : int;  (** accesses served per level *)
  mutable l2 : int;
  mutable l3 : int;
  mutable dram : int;
  mutable concretizations : int;
      (** symbolic pointers the cache model pinned here *)
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Drops every site and timer (and detaches the current site). Does not
    change {!enabled}. *)

val enter : func:string -> pc:int -> unit
(** Makes [(func, pc)] the ambient attribution site.  Executors call this
    before each instruction; pseudo-functions (["<dpdk>"]) attribute
    runtime overhead outside NF code. *)

val add_retire : weight:int -> unit
(** [weight] retired instructions at the calibrated 3/5 cycles-per-weight
    CPI (rounded to nearest; the same ratio as [Symbex.Costs.default] and
    the DUT) — the concrete executors' per-instruction charge. *)

val add_exec : instrs:int -> cycles:int -> loads:int -> stores:int -> unit
(** The symbolic engine's exact per-instruction charge (retirement plus
    modeled memory latency, as computed by [Symbex.Costs]). *)

val add_access : write:bool -> level -> cycles:int -> unit
(** A concrete memory access served at [level], costing [cycles] — the
    DUT's cache-hierarchy hook. *)

val add_level : level -> unit
(** A cache-model outcome (level count only; the symbolic engine charges
    the latency itself via {!add_exec}). *)

val add_concretization : unit -> unit

val add_timer : string -> float -> unit
(** Accumulates wall seconds in a named bucket ([solver], [symbex],
    [replay]).  Kept separate from sites so the deterministic outputs never
    contain time. *)

val sites : unit -> ((string * int) * stats) list
(** Snapshot of every attribution site, sorted by [(func, pc)]; the [stats]
    are copies, safe to mutate (reports aggregate them into blocks). *)

val timers : unit -> (string * float) list
(** Named wall-time buckets, sorted by name. *)

val total_cycles : unit -> int
(** Sum of [cycles] over all sites. *)

val snapshot : unit -> Json.t
(** [{"total_cycles": n, "sites": [{"func","pc","cycles",...}, ...],
     "timers_s": {...}}] — the site-level section embedded in run
    manifests. *)
