let schema_version = 1

type event = {
  ev_seq : int;
  ev_ts : float;
  ev_name : string;
  ev_fields : (string * Json.t) list;
}

let event_json e =
  Json.Obj
    [
      ("schema_version", Json.Int schema_version);
      ("kind", Json.Str "event");
      ("seq", Json.Int e.ev_seq);
      ("ts_unix", Json.Float e.ev_ts);
      ("event", Json.Str e.ev_name);
      ("fields", Json.Obj e.ev_fields);
    ]

let event_of_json j =
  let ( let* ) = Result.bind in
  let str name =
    match Json.member name j with
    | Some (Json.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "event: missing string field %S" name)
  in
  let* () =
    match Json.member "schema_version" j with
    | Some (Json.Int v) when v >= 1 && v <= schema_version -> Ok ()
    | Some (Json.Int v) ->
        Error (Printf.sprintf "event: unsupported schema_version %d" v)
    | _ -> Error "event: missing schema_version"
  in
  let* kind = str "kind" in
  let* () =
    if kind = "event" then Ok ()
    else Error (Printf.sprintf "event: unexpected kind %S" kind)
  in
  let* seq =
    match Json.member "seq" j with
    | Some (Json.Int n) when n >= 1 -> Ok n
    | _ -> Error "event: seq must be a positive integer"
  in
  let* ts =
    match Json.member "ts_unix" j with
    | Some (Json.Float f) -> Ok f
    | Some (Json.Int n) -> Ok (float_of_int n)
    | _ -> Error "event: missing ts_unix"
  in
  let* name = str "event" in
  let* fields =
    match Json.member "fields" j with
    | Some (Json.Obj kvs) -> Ok kvs
    | None -> Ok []
    | Some _ -> Error "event: fields must be an object"
  in
  Ok { ev_seq = seq; ev_ts = ts; ev_name = name; ev_fields = fields }

let render e =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (Printf.sprintf "[%d] %s" e.ev_seq e.ev_name);
  List.iter
    (fun (k, v) ->
      match v with
      | Json.Str s -> Buffer.add_string buf (Printf.sprintf " %s=%s" k s)
      | Json.Int n -> Buffer.add_string buf (Printf.sprintf " %s=%d" k n)
      | Json.Float f -> Buffer.add_string buf (Printf.sprintf " %s=%.3f" k f)
      | Json.Bool b -> Buffer.add_string buf (Printf.sprintf " %s=%b" k b)
      | Json.Null | Json.List _ | Json.Obj _ -> ())
    e.ev_fields;
  Buffer.contents buf

type sink = {
  mutable sk_seq : int;
  sk_app : Util.Durable.appender;
  sk_echo : event -> unit;
  mutable sk_closed : bool;
}

let open_sink ?(echo = fun _ -> ()) path =
  { sk_seq = 0; sk_app = Util.Durable.append_open path; sk_echo = echo;
    sk_closed = false }

let emit sink ~name fields =
  sink.sk_seq <- sink.sk_seq + 1;
  let e =
    { ev_seq = sink.sk_seq; ev_ts = Unix.gettimeofday ();
      ev_name = name; ev_fields = fields }
  in
  Util.Durable.append_line sink.sk_app (Json.to_string (event_json e));
  sink.sk_echo e;
  e

let close sink =
  if not sink.sk_closed then begin
    sink.sk_closed <- true;
    Util.Durable.append_close sink.sk_app
  end
