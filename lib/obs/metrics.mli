(** Process-wide metrics registry: monotonic counters, gauges and integer
    histograms.

    Metrics are ambient (like the resilience failure sink): instrumented
    modules create their instruments once at module initialisation and bump
    them unconditionally-cheaply.  Recording is gated on {!active}: when
    inactive (the default), every operation reduces to a single [ref] read
    and the snapshot stays all-zero, so an un-instrumented run is
    bit-identical.

    Instruments are identified by dotted names ([solver.verdict.sat],
    [cache.model.miss], [symbex.kills.heap-exhausted], ...); creating the
    same name twice returns the same instrument.

    The registry is domain-safe under {!Util.Pool}: on a worker domain,
    recording is redirected by instrument {e name} into a domain-local
    capture context ([counter]/[gauge]/[histogram] return detached records
    there, never touching the shared tables), and the pool merges captures
    into the global registry in task-index order at join — so
    {!snapshot} is bit-identical to a serial run.  The inactive path stays
    a single ref read on every domain. *)

type counter
type gauge
type histogram

val set_active : bool -> unit
val active : unit -> bool

val counter : string -> counter
val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : string -> gauge

val gauge_set : gauge -> int -> unit
(** Records the latest value and tracks the minimum and maximum seen. *)

val histogram : string -> histogram

val observe : histogram -> int -> unit
(** Adds one integer sample (e.g. a latency in microseconds).  Bounded
    memory: past a fixed cap the sample is reservoir-replaced with a
    private fixed-seed RNG, so quantiles stay representative and recording
    never perturbs program randomness. *)

val observe_span_us : histogram -> float -> unit
(** [observe_span_us h seconds] records a duration in whole microseconds. *)

val snapshot : unit -> Json.t
(** [{"counters": {...}, "gauges": {name: {"last","min","max"}},
     "histograms": {name: {"count","mean","min","p50","p95","p99","max"}}}].
    Instruments that never recorded are omitted from the histograms/gauges
    sections; counters always appear (value 0 when untouched). *)

val reset : unit -> unit
(** Zeroes every registered instrument (the registry itself survives so
    module-level instruments stay valid).  Does not change {!active}. *)
