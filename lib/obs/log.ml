type level = Quiet | Info | Debug

let rank = function Quiet -> 0 | Info -> 1 | Debug -> 2

let current = ref Quiet
let set_level l = current := l
let level () = !current

let level_of_string = function
  | "quiet" -> Some Quiet
  | "info" -> Some Info
  | "debug" -> Some Debug
  | _ -> None

let level_name = function Quiet -> "quiet" | Info -> "info" | Debug -> "debug"

let log_at lvl prefix fmt =
  if rank lvl <= rank !current then
    Printf.eprintf ("%s" ^^ fmt ^^ "\n%!") prefix
  else Printf.ifprintf stderr ("%s" ^^ fmt ^^ "\n%!") prefix

let info fmt = log_at Info "castan: " fmt
let debug fmt = log_at Debug "castan[debug]: " fmt
