type level = Quiet | Info | Debug

let rank = function Quiet -> 0 | Info -> 1 | Debug -> 2

let current = ref Quiet
let set_level l = current := l
let level () = !current

let level_of_string = function
  | "quiet" -> Some Quiet
  | "info" -> Some Info
  | "debug" -> Some Debug
  | _ -> None

let level_name = function Quiet -> "quiet" | Info -> "info" | Debug -> "debug"

(* On a pool worker, formatted lines are buffered domain-locally and flushed
   to stderr on the main domain in task-index order, so log output is not
   interleaved across tasks and matches a serial run line-for-line. *)
let buffer_key : string list ref option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let emit line =
  match Domain.DLS.get buffer_key with
  | Some buf -> buf := line :: !buf
  | None ->
      output_string stderr line;
      flush stderr

let log_at lvl prefix fmt =
  if rank lvl <= rank !current then
    Printf.ksprintf (fun s -> emit (prefix ^ s ^ "\n")) fmt
  else Printf.ikfprintf (fun () -> ()) () fmt

let info fmt = log_at Info "castan: " fmt
let debug fmt = log_at Debug "castan[debug]: " fmt

(* Capture provider for {!Util.Pool}. *)
let () =
  Util.Pool.register_provider (fun () ->
      Domain.DLS.set buffer_key (Some (ref []));
      fun () ->
        let lines =
          match Domain.DLS.get buffer_key with
          | Some buf -> List.rev !buf
          | None -> []
        in
        Domain.DLS.set buffer_key None;
        fun () ->
          List.iter
            (fun line ->
              output_string stderr line;
              flush stderr)
            lines)
