type counter = { c_name : string; mutable count : int }

type gauge = {
  g_name : string;
  mutable last : int;
  mutable min_v : int;
  mutable max_v : int;
  mutable g_set : bool;
}

(* Bounded reservoir: exact up to [cap] samples, uniform replacement past it.
   The RNG is private and fixed-seed so observing never draws from (or
   perturbs) any experiment's random stream. *)
let cap = 16_384

type histogram = {
  h_name : string;
  mutable samples : int array;
  mutable n : int;  (* filled prefix of [samples] *)
  mutable seen : int;  (* total observations, including replaced ones *)
  mutable sum : float;
  rng : Util.Rng.t;
}

let active_flag = ref false
let set_active b = active_flag := b
let active () = !active_flag

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

(* ------------------------------------------------------------------ *)
(* Worker-local capture                                                *)
(* ------------------------------------------------------------------ *)

(* On a pool worker, instruments are recorded by {e name} into a
   domain-local context and merged into the global registry in task-index
   order at join, so the globals see the exact stream a serial run would
   have produced.  Only the redirection is per-domain; the gating read of
   [active_flag] stays a single ref read (workers never write it), so the
   disabled path is unchanged. *)

type wl_gauge = {
  mutable wl_last : int;
  mutable wl_min : int;
  mutable wl_max : int;
  mutable wl_set : bool;
}

type wctx = {
  wl_counters : (string, int ref) Hashtbl.t;
  wl_gauges : (string, wl_gauge) Hashtbl.t;
  wl_hists : (string, int list ref) Hashtbl.t;  (* reversed *)
}

let wctx_key : wctx option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let counter name =
  if Util.Pool.in_worker () then { c_name = name; count = 0 }
  else
    match Hashtbl.find_opt counters name with
    | Some c -> c
    | None ->
        let c = { c_name = name; count = 0 } in
        Hashtbl.add counters name c;
        c

let incr ?(by = 1) c =
  if !active_flag then
    match Domain.DLS.get wctx_key with
    | None -> c.count <- c.count + by
    | Some ctx -> (
        match Hashtbl.find_opt ctx.wl_counters c.c_name with
        | Some r -> r := !r + by
        | None -> Hashtbl.add ctx.wl_counters c.c_name (ref by))

let counter_value c = c.count

let gauge name =
  if Util.Pool.in_worker () then
    { g_name = name; last = 0; min_v = 0; max_v = 0; g_set = false }
  else
    match Hashtbl.find_opt gauges name with
    | Some g -> g
    | None ->
        let g = { g_name = name; last = 0; min_v = 0; max_v = 0; g_set = false } in
        Hashtbl.add gauges name g;
        g

let gauge_apply g v =
  g.last <- v;
  if (not g.g_set) || v > g.max_v then g.max_v <- v;
  if (not g.g_set) || v < g.min_v then g.min_v <- v;
  g.g_set <- true

let gauge_set g v =
  if !active_flag then
    match Domain.DLS.get wctx_key with
    | None -> gauge_apply g v
    | Some ctx -> (
        match Hashtbl.find_opt ctx.wl_gauges g.g_name with
        | Some wl ->
            wl.wl_last <- v;
            if (not wl.wl_set) || v > wl.wl_max then wl.wl_max <- v;
            if (not wl.wl_set) || v < wl.wl_min then wl.wl_min <- v;
            wl.wl_set <- true
        | None ->
            Hashtbl.add ctx.wl_gauges g.g_name
              { wl_last = v; wl_min = v; wl_max = v; wl_set = true })

let histogram name =
  if Util.Pool.in_worker () then
    {
      h_name = name;
      samples = [||];
      n = 0;
      seen = 0;
      sum = 0.;
      rng = Util.Rng.create 0x0b5e;
    }
  else
    match Hashtbl.find_opt histograms name with
    | Some h -> h
    | None ->
        let h =
          {
            h_name = name;
            samples = [||];
            n = 0;
            seen = 0;
            sum = 0.;
            rng = Util.Rng.create 0x0b5e;
          }
        in
        Hashtbl.add histograms name h;
        h

let observe_raw h v =
  h.seen <- h.seen + 1;
  h.sum <- h.sum +. float_of_int v;
  if h.n < cap then begin
    if h.n >= Array.length h.samples then begin
      let grown = Array.make (max 64 (2 * Array.length h.samples)) 0 in
      Array.blit h.samples 0 grown 0 h.n;
      h.samples <- grown
    end;
    h.samples.(h.n) <- v;
    h.n <- h.n + 1
  end
  else
    (* Vitter's algorithm R: keep each of the [seen] samples with equal
       probability cap/seen. *)
    let j = Util.Rng.int h.rng h.seen in
    if j < cap then h.samples.(j) <- v

let observe h v =
  if !active_flag then
    match Domain.DLS.get wctx_key with
    | None -> observe_raw h v
    | Some ctx -> (
        match Hashtbl.find_opt ctx.wl_hists h.h_name with
        | Some r -> r := v :: !r
        | None -> Hashtbl.add ctx.wl_hists h.h_name (ref [ v ]))

let observe_span_us h seconds = observe h (int_of_float (seconds *. 1e6))

(* Capture provider: [prepare] installs a fresh context on the worker,
   [finish] detaches it, [commit] replays the captured deltas through the
   global instruments on the main domain.  Histogram values are replayed
   one-by-one through [observe_raw] so the reservoir (and its private RNG)
   ends up in the exact state a serial run would have left it in. *)
let () =
  Util.Pool.register_provider (fun () ->
      Domain.DLS.set wctx_key
        (Some
           {
             wl_counters = Hashtbl.create 16;
             wl_gauges = Hashtbl.create 8;
             wl_hists = Hashtbl.create 8;
           });
      fun () ->
        let ctx =
          match Domain.DLS.get wctx_key with
          | Some ctx -> ctx
          | None -> assert false
        in
        Domain.DLS.set wctx_key None;
        fun () ->
          Hashtbl.iter
            (fun name r -> (counter name).count <- (counter name).count + !r)
            ctx.wl_counters;
          Hashtbl.iter
            (fun name wl ->
              if wl.wl_set then begin
                let g = gauge name in
                gauge_apply g wl.wl_min;
                gauge_apply g wl.wl_max;
                gauge_apply g wl.wl_last
              end)
            ctx.wl_gauges;
          Hashtbl.iter
            (fun name r ->
              let h = histogram name in
              List.iter (fun v -> observe_raw h v) (List.rev !r))
            ctx.wl_hists)

let snapshot () =
  let sorted_fields tbl extract =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.filter_map extract
  in
  let counters_json =
    sorted_fields counters (fun (name, c) -> Some (name, Json.Int c.count))
  in
  let gauges_json =
    sorted_fields gauges (fun (name, g) ->
        if not g.g_set then None
        else
          Some
            ( name,
              Json.Obj
                [
                  ("last", Json.Int g.last);
                  ("min", Json.Int g.min_v);
                  ("max", Json.Int g.max_v);
                ] ))
  in
  let histograms_json =
    sorted_fields histograms (fun (name, h) ->
        if h.n = 0 then None
        else
          let data = Array.sub h.samples 0 h.n in
          Some
            ( name,
              Json.Obj
                [
                  ("count", Json.Int h.seen);
                  ("mean", Json.Float (h.sum /. float_of_int h.seen));
                  ("min", Json.Int (Util.Stats.quantile_int data 0.0));
                  ("p50", Json.Int (Util.Stats.quantile_int data 0.5));
                  ("p95", Json.Int (Util.Stats.p95 data));
                  ("p99", Json.Int (Util.Stats.p99 data));
                  ("max", Json.Int (Util.Stats.quantile_int data 1.0));
                ] ))
  in
  Json.Obj
    [
      ("counters", Json.Obj counters_json);
      ("gauges", Json.Obj gauges_json);
      ("histograms", Json.Obj histograms_json);
    ]

let reset () =
  Hashtbl.iter (fun _ c -> c.count <- 0) counters;
  Hashtbl.iter
    (fun _ g ->
      g.last <- 0;
      g.min_v <- 0;
      g.max_v <- 0;
      g.g_set <- false)
    gauges;
  Hashtbl.iter
    (fun _ h ->
      h.n <- 0;
      h.seen <- 0;
      h.sum <- 0.)
    histograms
