type counter = { c_name : string; mutable count : int }

type gauge = {
  g_name : string;
  mutable last : int;
  mutable min_v : int;
  mutable max_v : int;
  mutable g_set : bool;
}

(* Bounded reservoir: exact up to [cap] samples, uniform replacement past it.
   The RNG is private and fixed-seed so observing never draws from (or
   perturbs) any experiment's random stream. *)
let cap = 16_384

type histogram = {
  h_name : string;
  mutable samples : int array;
  mutable n : int;  (* filled prefix of [samples] *)
  mutable seen : int;  (* total observations, including replaced ones *)
  mutable sum : float;
  rng : Util.Rng.t;
}

let active_flag = ref false
let set_active b = active_flag := b
let active () = !active_flag

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
      let c = { c_name = name; count = 0 } in
      Hashtbl.add counters name c;
      c

let incr ?(by = 1) c = if !active_flag then c.count <- c.count + by
let counter_value c = c.count

let gauge name =
  match Hashtbl.find_opt gauges name with
  | Some g -> g
  | None ->
      let g = { g_name = name; last = 0; min_v = 0; max_v = 0; g_set = false } in
      Hashtbl.add gauges name g;
      g

let gauge_set g v =
  if !active_flag then begin
    g.last <- v;
    if (not g.g_set) || v > g.max_v then g.max_v <- v;
    if (not g.g_set) || v < g.min_v then g.min_v <- v;
    g.g_set <- true
  end

let histogram name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
      let h =
        {
          h_name = name;
          samples = [||];
          n = 0;
          seen = 0;
          sum = 0.;
          rng = Util.Rng.create 0x0b5e;
        }
      in
      Hashtbl.add histograms name h;
      h

let observe h v =
  if !active_flag then begin
    h.seen <- h.seen + 1;
    h.sum <- h.sum +. float_of_int v;
    if h.n < cap then begin
      if h.n >= Array.length h.samples then begin
        let grown = Array.make (max 64 (2 * Array.length h.samples)) 0 in
        Array.blit h.samples 0 grown 0 h.n;
        h.samples <- grown
      end;
      h.samples.(h.n) <- v;
      h.n <- h.n + 1
    end
    else
      (* Vitter's algorithm R: keep each of the [seen] samples with equal
         probability cap/seen. *)
      let j = Util.Rng.int h.rng h.seen in
      if j < cap then h.samples.(j) <- v
  end

let observe_span_us h seconds = observe h (int_of_float (seconds *. 1e6))

let snapshot () =
  let sorted_fields tbl extract =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.filter_map extract
  in
  let counters_json =
    sorted_fields counters (fun (name, c) -> Some (name, Json.Int c.count))
  in
  let gauges_json =
    sorted_fields gauges (fun (name, g) ->
        if not g.g_set then None
        else
          Some
            ( name,
              Json.Obj
                [
                  ("last", Json.Int g.last);
                  ("min", Json.Int g.min_v);
                  ("max", Json.Int g.max_v);
                ] ))
  in
  let histograms_json =
    sorted_fields histograms (fun (name, h) ->
        if h.n = 0 then None
        else
          let data = Array.sub h.samples 0 h.n in
          Some
            ( name,
              Json.Obj
                [
                  ("count", Json.Int h.seen);
                  ("mean", Json.Float (h.sum /. float_of_int h.seen));
                  ("min", Json.Int (Util.Stats.quantile_int data 0.0));
                  ("p50", Json.Int (Util.Stats.quantile_int data 0.5));
                  ("p95", Json.Int (Util.Stats.p95 data));
                  ("p99", Json.Int (Util.Stats.p99 data));
                  ("max", Json.Int (Util.Stats.quantile_int data 1.0));
                ] ))
  in
  Json.Obj
    [
      ("counters", Json.Obj counters_json);
      ("gauges", Json.Obj gauges_json);
      ("histograms", Json.Obj histograms_json);
    ]

let reset () =
  Hashtbl.iter (fun _ c -> c.count <- 0) counters;
  Hashtbl.iter
    (fun _ g ->
      g.last <- 0;
      g.min_v <- 0;
      g.max_v <- 0;
      g.g_set <- false)
    gauges;
  Hashtbl.iter
    (fun _ h ->
      h.n <- 0;
      h.seen <- 0;
      h.sum <- 0.)
    histograms
