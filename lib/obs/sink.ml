type agg = { mutable count : int; mutable total : float }

type t =
  | Null
  | File of { path : string; oc : out_channel; mutable closed : bool }
  | Summary of { spans : (string, agg) Hashtbl.t; mutable closed : bool }

let null = Null

(* The stream goes to [path ^ ".tmp"] and only renames into place on a
   clean close: a crashed run leaves the previous trace file (if any)
   intact instead of a torn half-stream. *)
let file path = File { path; oc = open_out (path ^ ".tmp"); closed = false }
let stderr_summary () = Summary { spans = Hashtbl.create 16; closed = false }
let active = function Null -> false | File _ | Summary _ -> true

let write t line =
  match t with
  | File f when not f.closed ->
      output_string f.oc line;
      output_char f.oc '\n'
  | Null | File _ | Summary _ -> ()

let record_span t ~name ~dur =
  match t with
  | Summary s when not s.closed ->
      let a =
        match Hashtbl.find_opt s.spans name with
        | Some a -> a
        | None ->
            let a = { count = 0; total = 0. } in
            Hashtbl.add s.spans name a;
            a
      in
      a.count <- a.count + 1;
      a.total <- a.total +. dur
  | Null | File _ | Summary _ -> ()

let close = function
  | Null -> ()
  | File f ->
      if not f.closed then begin
        f.closed <- true;
        flush f.oc;
        (try Unix.fsync (Unix.descr_of_out_channel f.oc)
         with Unix.Unix_error _ -> ());
        close_out f.oc;
        Sys.rename (f.path ^ ".tmp") f.path
      end
  | Summary s ->
      if not s.closed then begin
        s.closed <- true;
        if Hashtbl.length s.spans > 0 then begin
          Printf.eprintf "== trace summary ==\n";
          Printf.eprintf "  %-32s %8s %12s %12s\n" "span" "count" "total ms"
            "mean ms";
          Hashtbl.fold (fun name a acc -> (name, a) :: acc) s.spans []
          |> List.sort (fun (_, a) (_, b) -> compare b.total a.total)
          |> List.iter (fun (name, a) ->
                 Printf.eprintf "  %-32s %8d %12.2f %12.3f\n" name a.count
                   (a.total *. 1e3)
                   (a.total *. 1e3 /. float_of_int a.count));
          flush stderr
        end
      end
