(** Hierarchical wall-clock spans, emitted as Chrome [trace_event] objects
    (one per line — JSONL).

    Every event is a complete ("ph":"X") event with [ts]/[dur] in
    microseconds relative to {!set_sink}; Chrome's tracing UI and Perfetto
    reconstruct the span tree from the containment of [ts, ts+dur] ranges on
    one pid/tid, so nesting needs no explicit parent links.  Wrap the stream
    in [\[...\]] (e.g. [jq -s .]) to obtain the JSON-array form the viewers
    load directly.

    With the {!Sink.null} sink (the default) the hot path allocates
    nothing: {!enter} returns a preallocated dummy span and {!exit} detects
    it by physical equality. *)

type span

val set_sink : Sink.t -> unit
(** Installs the destination and re-bases the trace clock.  The previous
    sink is closed. *)

val sink : unit -> Sink.t
val enabled : unit -> bool

val enter : ?args:(string * Json.t) list -> string -> span
val exit : span -> float
(** Closes the span, emits its event, and returns its duration in seconds
    (0. when tracing is disabled). *)

val with_span : ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** Exception-safe {!enter}/{!exit} pair; when disabled it is exactly
    [f ()]. *)

val timed : ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a * float
(** Like {!with_span} but {e always} measures and returns the duration in
    seconds, emitting the span only when enabled — the single timing source
    for code that must report wall time whether or not tracing is on
    (e.g. the harness's [\[id done in Ns\]] trailer). *)

val instant : ?args:(string * Json.t) list -> string -> unit
(** A zero-duration marker event ("ph":"i"). *)

val depth : unit -> int
(** Currently-open span count (0 when balanced); tests use it to assert
    well-formed nesting. *)

val close : unit -> unit
(** Closes the current sink and reverts to {!Sink.null}. *)
