(** A minimal leveled logger for the CLI's [--log-level].

    Messages go to stderr so they never disturb the reproduced tables and
    figures on stdout.  The default level is {!Quiet}: an un-flagged run
    prints exactly what it printed before the telemetry layer existed. *)

type level = Quiet | Info | Debug

val set_level : level -> unit
val level : unit -> level

val level_of_string : string -> level option
(** ["quiet" | "info" | "debug"]. *)

val level_name : level -> string

val info : ('a, unit, string, unit) format4 -> 'a
(** Printed at [Info] and [Debug]; prefixed ["castan: "], newline-terminated
    and flushed.  On a {!Util.Pool} worker the line is buffered and flushed
    at join in task-index order. *)

val debug : ('a, unit, string, unit) format4 -> 'a
(** Printed at [Debug] only; prefixed ["castan[debug]: "]. *)
