(** Structured progress events for long-running lab actions.

    A loop that shells out to benchmarks runs for minutes; this sink
    tails out one JSONL record per step ([action_started],
    [artifact_ingested], [verdict], ...) so a human (`lab loop
    --follow`) or a future campaign server can watch progress live.
    Records are appended through {!Util.Durable}, so an event that was
    emitted survives the crash it may be narrating.

    Stream format, one object per line:
    {v
      {"schema_version":1,"kind":"event","seq":N,"ts_unix":T,
       "event":"action_started","fields":{...}}
    v}
    [seq] restarts at 1 for every session (every {!open_sink}); within a
    session it is strictly increasing.  Validators therefore accept
    resets to 1 but reject any other non-increase. *)

val schema_version : int

type event = {
  ev_seq : int;          (** 1-based, per session *)
  ev_ts : float;         (** unix seconds *)
  ev_name : string;      (** e.g. ["action_started"] *)
  ev_fields : (string * Json.t) list;
}

val event_json : event -> Json.t

val event_of_json : Json.t -> (event, string) result
(** Strict: wrong [kind], missing field, or a future [schema_version]
    is an error naming the offending part. *)

val render : event -> string
(** One human progress line, e.g.
    ["[3] artifact_ingested experiment=fig12 arm=off"].  String and
    integer fields are inlined; structured fields are elided. *)

type sink

val open_sink : ?echo:(event -> unit) -> string -> sink
(** [open_sink path] opens (creating if needed) the event stream at
    [path] for durable appending.  [echo] is called synchronously with
    every emitted event — the [--follow] hook. *)

val emit : sink -> name:string -> (string * Json.t) list -> event
(** Appends one event (fsynced) and returns it. *)

val close : sink -> unit
(** Idempotent. *)
