(** Telemetry output destinations.

    Three sinks cover the deployment matrix:
    - {!null}: telemetry disabled.  Guaranteed allocation-free on the hot
      path — every operation on it is a physical-equality check followed by
      an immediate return, so a disabled pipeline is bit-identical to an
      uninstrumented one.
    - {!stderr_summary}: no event stream; spans are aggregated by name
      (count, total and mean duration) and printed to stderr on {!close}.
    - {!file}: one JSON object per line (JSONL), flushed on {!close}.  Used
      for the Chrome [trace_event] stream. *)

type t

val null : t

val file : string -> t
(** Opens [path ^ ".tmp"] for line-oriented output; {!close} fsyncs and
    renames it over [path], so [path] only ever holds a complete stream.
    @raise Sys_error when the path cannot be opened. *)

val stderr_summary : unit -> t

val active : t -> bool
(** [false] exactly for {!null}. *)

val write : t -> string -> unit
(** Appends one line (for {!file}; a no-op on the other sinks). *)

val record_span : t -> name:string -> dur:float -> unit
(** Feeds the per-name aggregation of {!stderr_summary} (a no-op on the
    other sinks).  [dur] is in seconds. *)

val close : t -> unit
(** Flushes and closes a {!file}; prints the aggregate table of a
    {!stderr_summary}.  Idempotent. *)
