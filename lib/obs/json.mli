(** A minimal JSON value: just enough to emit telemetry (traces, metric
    snapshots, manifests) and to validate it back, with no external
    dependency.  Numbers are split into [Int] and [Float] so counters
    round-trip exactly; floats are emitted with enough digits to reparse. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering with full string escaping.  Non-finite
    floats are rendered as [null] so the output always reparses. *)

val to_buffer : Buffer.t -> t -> unit

val parse : string -> (t, string) result
(** Strict parse of one JSON value (surrounding whitespace allowed; trailing
    garbage is an error).  Errors carry a character offset.  Numbers without
    [.], [e] or [E] parse as [Int]. *)

val member : string -> t -> t option
(** [member key (Obj _)] looks a field up; [None] on missing keys and
    non-objects. *)
