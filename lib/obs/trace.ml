type span = {
  name : string;
  start : float;  (* gettimeofday at enter *)
  args : (string * Json.t) list;
}

let current : Sink.t ref = ref Sink.null
let t0 = ref 0.
let depth_ = ref 0

(* Shared by every disabled [enter]: the hot path allocates nothing when
   tracing is off. *)
let disabled_span = { name = "<disabled>"; start = 0.; args = [] }

(* On a pool worker, emitted lines and span records are buffered into a
   domain-local context — the sink (an out_channel or a Hashtbl) is not
   domain-safe — and the pool replays them on the main domain in task-index
   order.  Nesting depth is likewise tracked per worker. *)
type wctx = {
  mutable w_lines : string list;  (* reversed *)
  mutable w_spans : (string * float) list;  (* reversed *)
  mutable w_depth : int;
}

let wctx_key : wctx option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let sink () = !current
let enabled () = Sink.active !current

let set_sink s =
  Sink.close !current;
  current := s;
  t0 := Unix.gettimeofday ();
  depth_ := 0

let close () = set_sink Sink.null

let depth () =
  match Domain.DLS.get wctx_key with
  | Some ctx -> ctx.w_depth
  | None -> !depth_

let incr_depth () =
  match Domain.DLS.get wctx_key with
  | Some ctx -> ctx.w_depth <- ctx.w_depth + 1
  | None -> incr depth_

let decr_depth () =
  match Domain.DLS.get wctx_key with
  | Some ctx -> ctx.w_depth <- ctx.w_depth - 1
  | None -> decr depth_

let us_since_start t = (t -. !t0) *. 1e6

let emit ~name ~ph ~ts ?dur ~args () =
  let fields =
    [ ("name", Json.Str name); ("ph", Json.Str ph); ("ts", Json.Float ts);
      ("pid", Json.Int 1); ("tid", Json.Int 1) ]
    @ (match dur with Some d -> [ ("dur", Json.Float d) ] | None -> [])
    @ (match ph with "i" -> [ ("s", Json.Str "t") ] | _ -> [])
    @ (match args with [] -> [] | l -> [ ("args", Json.Obj l) ])
  in
  let line = Json.to_string (Json.Obj fields) in
  match Domain.DLS.get wctx_key with
  | Some ctx -> ctx.w_lines <- line :: ctx.w_lines
  | None -> Sink.write !current line

let note_span ~name ~dur =
  match Domain.DLS.get wctx_key with
  | Some ctx -> ctx.w_spans <- (name, dur) :: ctx.w_spans
  | None -> Sink.record_span !current ~name ~dur

let enter ?(args = []) name =
  if not (enabled ()) then disabled_span
  else begin
    incr_depth ();
    { name; start = Unix.gettimeofday (); args }
  end

let exit sp =
  if sp == disabled_span then 0.
  else begin
    decr_depth ();
    let now = Unix.gettimeofday () in
    let dur = now -. sp.start in
    emit ~name:sp.name ~ph:"X" ~ts:(us_since_start sp.start)
      ~dur:(dur *. 1e6) ~args:sp.args ();
    note_span ~name:sp.name ~dur;
    dur
  end

let with_span ?(args = []) name f =
  if not (enabled ()) then f ()
  else
    let sp = enter ~args name in
    match f () with
    | v ->
        ignore (exit sp : float);
        v
    | exception e ->
        ignore (exit sp : float);
        raise e

let timed ?(args = []) name f =
  let emitting = enabled () in
  if emitting then incr_depth ();
  let start = Unix.gettimeofday () in
  let finish () =
    let dur = Unix.gettimeofday () -. start in
    if emitting then begin
      decr_depth ();
      emit ~name ~ph:"X" ~ts:(us_since_start start) ~dur:(dur *. 1e6) ~args ();
      note_span ~name ~dur
    end;
    dur
  in
  match f () with
  | v -> (v, finish ())
  | exception e ->
      ignore (finish () : float);
      raise e

let instant ?(args = []) name =
  if enabled () then
    emit ~name ~ph:"i" ~ts:(us_since_start (Unix.gettimeofday ())) ~args ()

(* Capture provider: buffer on the worker, flush through the real sink on
   the main domain at join. *)
let () =
  Util.Pool.register_provider (fun () ->
      Domain.DLS.set wctx_key (Some { w_lines = []; w_spans = []; w_depth = 0 });
      fun () ->
        let ctx =
          match Domain.DLS.get wctx_key with
          | Some ctx -> ctx
          | None -> assert false
        in
        Domain.DLS.set wctx_key None;
        fun () ->
          List.iter (fun line -> Sink.write !current line)
            (List.rev ctx.w_lines);
          List.iter
            (fun (name, dur) -> Sink.record_span !current ~name ~dur)
            (List.rev ctx.w_spans))
