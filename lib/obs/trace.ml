type span = {
  name : string;
  start : float;  (* gettimeofday at enter *)
  args : (string * Json.t) list;
}

let current : Sink.t ref = ref Sink.null
let t0 = ref 0.
let depth_ = ref 0

(* Shared by every disabled [enter]: the hot path allocates nothing when
   tracing is off. *)
let disabled_span = { name = "<disabled>"; start = 0.; args = [] }

let sink () = !current
let enabled () = Sink.active !current

let set_sink s =
  Sink.close !current;
  current := s;
  t0 := Unix.gettimeofday ();
  depth_ := 0

let close () = set_sink Sink.null
let depth () = !depth_

let us_since_start t = (t -. !t0) *. 1e6

let emit ~name ~ph ~ts ?dur ~args () =
  let fields =
    [ ("name", Json.Str name); ("ph", Json.Str ph); ("ts", Json.Float ts);
      ("pid", Json.Int 1); ("tid", Json.Int 1) ]
    @ (match dur with Some d -> [ ("dur", Json.Float d) ] | None -> [])
    @ (match ph with "i" -> [ ("s", Json.Str "t") ] | _ -> [])
    @ (match args with [] -> [] | l -> [ ("args", Json.Obj l) ])
  in
  Sink.write !current (Json.to_string (Json.Obj fields))

let enter ?(args = []) name =
  if not (enabled ()) then disabled_span
  else begin
    incr depth_;
    { name; start = Unix.gettimeofday (); args }
  end

let exit sp =
  if sp == disabled_span then 0.
  else begin
    decr depth_;
    let now = Unix.gettimeofday () in
    let dur = now -. sp.start in
    emit ~name:sp.name ~ph:"X" ~ts:(us_since_start sp.start)
      ~dur:(dur *. 1e6) ~args:sp.args ();
    Sink.record_span !current ~name:sp.name ~dur;
    dur
  end

let with_span ?(args = []) name f =
  if not (enabled ()) then f ()
  else
    let sp = enter ~args name in
    match f () with
    | v ->
        ignore (exit sp : float);
        v
    | exception e ->
        ignore (exit sp : float);
        raise e

let timed ?(args = []) name f =
  let emitting = enabled () in
  if emitting then incr depth_;
  let start = Unix.gettimeofday () in
  let finish () =
    let dur = Unix.gettimeofday () -. start in
    if emitting then begin
      decr depth_;
      emit ~name ~ph:"X" ~ts:(us_since_start start) ~dur:(dur *. 1e6) ~args ();
      Sink.record_span !current ~name ~dur
    end;
    dur
  in
  match f () with
  | v -> (v, finish ())
  | exception e ->
      ignore (finish () : float);
      raise e

let instant ?(args = []) name =
  if enabled () then
    emit ~name ~ph:"i" ~ts:(us_since_start (Unix.gettimeofday ())) ~args ()
