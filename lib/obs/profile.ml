type level = L1 | L2 | L3 | Dram

type stats = {
  mutable cycles : int;
  mutable instrs : int;
  mutable loads : int;
  mutable stores : int;
  mutable l1 : int;
  mutable l2 : int;
  mutable l3 : int;
  mutable dram : int;
  mutable concretizations : int;
}

let zero () =
  {
    cycles = 0;
    instrs = 0;
    loads = 0;
    stores = 0;
    l1 = 0;
    l2 = 0;
    l3 = 0;
    dram = 0;
    concretizations = 0;
  }

let on = ref false
let set_enabled b = on := b
let enabled () = !on

let tbl : (string * int, stats) Hashtbl.t = Hashtbl.create 256

(* The ambient attribution site.  Starts detached (a throwaway record not in
   [tbl]): anything recorded before the first [enter] stays out of the
   snapshot rather than polluting a catch-all bucket. *)
let cur = ref (zero ())

let timers_tbl : (string, float ref) Hashtbl.t = Hashtbl.create 8

let reset () =
  Hashtbl.reset tbl;
  Hashtbl.reset timers_tbl;
  cur := zero ()

let site key =
  match Hashtbl.find_opt tbl key with
  | Some s -> s
  | None ->
      let s = zero () in
      Hashtbl.add tbl key s;
      s

let enter ~func ~pc = if !on then cur := site (func, pc)

(* 3/5 of a cycle per retired weight unit, matching [Symbex.Costs.default]
   and the DUT's calibrated CPI; rounded to nearest so weight-1 instructions
   attribute 1 cycle instead of flooring to 0. *)
let retire_cycles weight = ((weight * 3) + 2) / 5

let add_retire ~weight =
  if !on then begin
    let s = !cur in
    s.instrs <- s.instrs + weight;
    s.cycles <- s.cycles + retire_cycles weight
  end

let add_exec ~instrs ~cycles ~loads ~stores =
  if !on then begin
    let s = !cur in
    s.instrs <- s.instrs + instrs;
    s.cycles <- s.cycles + cycles;
    s.loads <- s.loads + loads;
    s.stores <- s.stores + stores
  end

let bump_level s = function
  | L1 -> s.l1 <- s.l1 + 1
  | L2 -> s.l2 <- s.l2 + 1
  | L3 -> s.l3 <- s.l3 + 1
  | Dram -> s.dram <- s.dram + 1

let add_access ~write level ~cycles =
  if !on then begin
    let s = !cur in
    if write then s.stores <- s.stores + 1 else s.loads <- s.loads + 1;
    bump_level s level;
    s.cycles <- s.cycles + cycles
  end

let add_level level = if !on then bump_level !cur level

let add_concretization () =
  if !on then begin
    let s = !cur in
    s.concretizations <- s.concretizations + 1
  end

let add_timer name dt =
  if !on then
    match Hashtbl.find_opt timers_tbl name with
    | Some r -> r := !r +. dt
    | None -> Hashtbl.add timers_tbl name (ref dt)

let copy s =
  {
    cycles = s.cycles;
    instrs = s.instrs;
    loads = s.loads;
    stores = s.stores;
    l1 = s.l1;
    l2 = s.l2;
    l3 = s.l3;
    dram = s.dram;
    concretizations = s.concretizations;
  }

let sites () =
  Hashtbl.fold (fun k v acc -> (k, copy v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let timers () =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) timers_tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let total_cycles () = Hashtbl.fold (fun _ s acc -> acc + s.cycles) tbl 0

let site_json ((func, pc), s) =
  Json.Obj
    [
      ("func", Json.Str func);
      ("pc", Json.Int pc);
      ("cycles", Json.Int s.cycles);
      ("instrs", Json.Int s.instrs);
      ("loads", Json.Int s.loads);
      ("stores", Json.Int s.stores);
      ("l1", Json.Int s.l1);
      ("l2", Json.Int s.l2);
      ("l3", Json.Int s.l3);
      ("dram", Json.Int s.dram);
      ("concretizations", Json.Int s.concretizations);
    ]

let snapshot () =
  Json.Obj
    [
      ("total_cycles", Json.Int (total_cycles ()));
      ("sites", Json.List (List.map site_json (sites ())));
      ( "timers_s",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) (timers ())) );
    ]
