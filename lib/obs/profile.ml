type level = L1 | L2 | L3 | Dram

type stats = {
  mutable cycles : int;
  mutable instrs : int;
  mutable loads : int;
  mutable stores : int;
  mutable l1 : int;
  mutable l2 : int;
  mutable l3 : int;
  mutable dram : int;
  mutable concretizations : int;
}

let zero () =
  {
    cycles = 0;
    instrs = 0;
    loads = 0;
    stores = 0;
    l1 = 0;
    l2 = 0;
    l3 = 0;
    dram = 0;
    concretizations = 0;
  }

let on = ref false
let set_enabled b = on := b
let enabled () = !on

(* All mutable profiler state lives in a context so pool workers can record
   into a domain-local one; the pool merges worker contexts into the main
   context in task-index order at join.  Site and level counts are integer
   sums, so the merge is exact; timer floats are wall time, which the
   deterministic outputs already exclude. *)
type ctx = {
  p_tbl : (string * int, stats) Hashtbl.t;
  p_timers : (string, float ref) Hashtbl.t;
  (* The ambient attribution site.  Starts detached (a throwaway record not
     in [p_tbl]): anything recorded before the first [enter] stays out of
     the snapshot rather than polluting a catch-all bucket. *)
  mutable p_cur : stats;
}

let make_ctx () =
  { p_tbl = Hashtbl.create 256; p_timers = Hashtbl.create 8; p_cur = zero () }

let main_ctx = make_ctx ()
let ctx_key : ctx option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let ctx () =
  match Domain.DLS.get ctx_key with Some c -> c | None -> main_ctx

let reset () =
  Hashtbl.reset main_ctx.p_tbl;
  Hashtbl.reset main_ctx.p_timers;
  main_ctx.p_cur <- zero ()

let site_in c key =
  match Hashtbl.find_opt c.p_tbl key with
  | Some s -> s
  | None ->
      let s = zero () in
      Hashtbl.add c.p_tbl key s;
      s

let enter ~func ~pc =
  if !on then
    let c = ctx () in
    c.p_cur <- site_in c (func, pc)

(* 3/5 of a cycle per retired weight unit, matching [Symbex.Costs.default]
   and the DUT's calibrated CPI; rounded to nearest so weight-1 instructions
   attribute 1 cycle instead of flooring to 0. *)
let retire_cycles weight = ((weight * 3) + 2) / 5

let add_retire ~weight =
  if !on then begin
    let s = (ctx ()).p_cur in
    s.instrs <- s.instrs + weight;
    s.cycles <- s.cycles + retire_cycles weight
  end

let add_exec ~instrs ~cycles ~loads ~stores =
  if !on then begin
    let s = (ctx ()).p_cur in
    s.instrs <- s.instrs + instrs;
    s.cycles <- s.cycles + cycles;
    s.loads <- s.loads + loads;
    s.stores <- s.stores + stores
  end

let bump_level s = function
  | L1 -> s.l1 <- s.l1 + 1
  | L2 -> s.l2 <- s.l2 + 1
  | L3 -> s.l3 <- s.l3 + 1
  | Dram -> s.dram <- s.dram + 1

let add_access ~write level ~cycles =
  if !on then begin
    let s = (ctx ()).p_cur in
    if write then s.stores <- s.stores + 1 else s.loads <- s.loads + 1;
    bump_level s level;
    s.cycles <- s.cycles + cycles
  end

let add_level level = if !on then bump_level (ctx ()).p_cur level

let add_concretization () =
  if !on then begin
    let s = (ctx ()).p_cur in
    s.concretizations <- s.concretizations + 1
  end

let add_timer name dt =
  if !on then
    let c = ctx () in
    match Hashtbl.find_opt c.p_timers name with
    | Some r -> r := !r +. dt
    | None -> Hashtbl.add c.p_timers name (ref dt)

let copy s =
  {
    cycles = s.cycles;
    instrs = s.instrs;
    loads = s.loads;
    stores = s.stores;
    l1 = s.l1;
    l2 = s.l2;
    l3 = s.l3;
    dram = s.dram;
    concretizations = s.concretizations;
  }

(* Capture provider: fresh context on the worker (with its own detached
   ambient site, so tasks never inherit a site across task boundaries),
   integer-exact merge into [main_ctx] at join. *)
let () =
  Util.Pool.register_provider (fun () ->
      Domain.DLS.set ctx_key (Some (make_ctx ()));
      fun () ->
        let c =
          match Domain.DLS.get ctx_key with
          | Some c -> c
          | None -> assert false
        in
        Domain.DLS.set ctx_key None;
        fun () ->
          Hashtbl.iter
            (fun key s ->
              let dst = site_in main_ctx key in
              dst.cycles <- dst.cycles + s.cycles;
              dst.instrs <- dst.instrs + s.instrs;
              dst.loads <- dst.loads + s.loads;
              dst.stores <- dst.stores + s.stores;
              dst.l1 <- dst.l1 + s.l1;
              dst.l2 <- dst.l2 + s.l2;
              dst.l3 <- dst.l3 + s.l3;
              dst.dram <- dst.dram + s.dram;
              dst.concretizations <- dst.concretizations + s.concretizations)
            c.p_tbl;
          Hashtbl.iter
            (fun name r ->
              match Hashtbl.find_opt main_ctx.p_timers name with
              | Some dst -> dst := !dst +. !r
              | None -> Hashtbl.add main_ctx.p_timers name (ref !r))
            c.p_timers)

let sites () =
  Hashtbl.fold (fun k v acc -> (k, copy v) :: acc) main_ctx.p_tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let timers () =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) main_ctx.p_timers []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let total_cycles () =
  Hashtbl.fold (fun _ s acc -> acc + s.cycles) main_ctx.p_tbl 0

let site_json ((func, pc), s) =
  Json.Obj
    [
      ("func", Json.Str func);
      ("pc", Json.Int pc);
      ("cycles", Json.Int s.cycles);
      ("instrs", Json.Int s.instrs);
      ("loads", Json.Int s.loads);
      ("stores", Json.Int s.stores);
      ("l1", Json.Int s.l1);
      ("l2", Json.Int s.l2);
      ("l3", Json.Int s.l3);
      ("dram", Json.Int s.dram);
      ("concretizations", Json.Int s.concretizations);
    ]

let snapshot () =
  Json.Obj
    [
      ("total_cycles", Json.Int (total_cycles ()));
      ("sites", Json.List (List.map site_json (sites ())));
      ( "timers_s",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) (timers ())) );
    ]
