type t = { name : string; bits : int; weight : int; apply : int -> int }

let mask t = (1 lsl t.bits) - 1

(* A xorshift-multiply mixer in the spirit of the lookup3/fxhash family NFs
   actually ship: a few rounds of shift-xor and odd-constant multiply,
   truncated to the output width.  Stays within 62-bit non-negative ints. *)
let mix61 key =
  let m = (1 lsl 61) - 1 in
  let x = key land m in
  let x = (x lxor (x lsr 33)) * 0xFF51AFD7ED558CC land m in
  let x = (x lxor (x lsr 29)) * 0xC4CEB9FE1A85EC5 land m in
  x lxor (x lsr 32)

let flow16 =
  {
    name = "flow16";
    bits = 16;
    weight = 24;
    apply = (fun key -> mix61 key land 0xFFFF);
  }

let ring24 =
  {
    name = "ring24";
    bits = 24;
    weight = 24;
    apply = (fun key -> mix61 (key + 0x9E3779B9) land 0xFFFFFF);
  }

let all = [ flow16; ring24 ]

let lookup name =
  match List.find_opt (fun h -> h.name = name) all with
  | Some h -> h
  | None -> invalid_arg ("Hashes.lookup: unknown hash " ^ name)
