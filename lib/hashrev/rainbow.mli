(** Rainbow tables (Oechslin time-memory trade-off) over flow-key spaces.

    A key space enumerates the keys the table covers; a {e tailored} key
    space restricts enumeration to keys likely to satisfy packet constraints
    (the paper's example: populate the table only with keys that assume UDP,
    since the IP-protocol constraint would otherwise reject ≈99% of
    entries). *)

type keyspace = {
  ks_name : string;
  count : int;
  key_of_index : int -> int;  (** injective on [\[0, count)] *)
}

val keyspace :
  name:string -> count:int -> key_of_index:(int -> int) -> keyspace

type t

val build :
  hash:Hashes.t -> keyspace -> ?chains:int -> ?chain_len:int -> unit -> t
(** Builds the chain table.  Defaults: 4096 chains of length 64.  Reduction
    functions map a hash value back into the key space, salted per column. *)

val build_exhaustive : hash:Hashes.t -> keyspace -> t
(** The brute-force variant the paper combines with rainbow tables: a full
    inverse index of the key space.  Only sensible for small spaces. *)

val invert : t -> int -> int list
(** [invert t h] returns candidate keys [k] with [hash k = h] (verified
    before being returned).  Empty when the table has no coverage of [h]. *)

val hash : t -> Hashes.t
val entries : t -> int
(** Number of (start, end) chain pairs, or key count for exhaustive
    tables. *)

val coverage_sample : t -> samples:int -> float
(** Fraction of [samples] uniformly drawn hash values that {!invert}
    recovers; diagnostics for table quality. *)
