(** The one-way hash functions used by the flow-table NFs.

    Each hash maps a packed flow key (an integer of at most 48 bits) to a
    small hash value; the NFs mask it down to their table size.  These are
    the functions that [castan_havoc] disables under analysis and that
    rainbow tables reverse during reconciliation (§3.5).

    They are deliberately {e not} cryptographic — the paper's point is that
    NF hashes are typically weak mixers chosen for speed — but they do mix
    all key bits into the output, so symbolically executing them would
    produce expressions beyond any solver's practical reach, which is exactly
    why havocing is needed. *)

type t = {
  name : string;
  bits : int;  (** output width *)
  weight : int;  (** instructions retired per application *)
  apply : int -> int;
}

val flow16 : t
(** 16-bit output: indexes the 65,536-entry chained hash table. *)

val ring24 : t
(** 24-bit output: indexes the 16.7M-entry open-addressing hash ring. *)

val lookup : string -> t
(** @raise Invalid_argument on an unknown name. *)

val mask : t -> int
(** [2^bits - 1]. *)
