type havoc = {
  hv_pkt : int;
  hv_hash : string;
  hv_input : Ir.Expr.sexpr;
  hv_output : Ir.Expr.sym;
}

type outcome = {
  constraints : Ir.Expr.sexpr list;
  reconciled : havoc list;
  unreconciled : havoc list;
}

(* Step 1: candidate hash values for one havoc output under [pcs]: the value
   a satisfying model assigns, then a spread of the output's abstract
   domain. *)
let value_candidates ~rng ~limit pcs output =
  let out_expr : Ir.Expr.sexpr = Leaf output in
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let push v =
    if v >= 0 && not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      out := v :: !out
    end
  in
  (match Solver.Solve.sat ~rng pcs with
  | Sat m -> push (Solver.Solve.Model.get m output)
  | Unsat | Unknown -> ());
  let dom = Solver.Solve.domain_of pcs out_expr in
  let d : Solver.Domain.t = dom in
  let card = Solver.Domain.cardinal d in
  let want = limit in
  let stride = max 1 (card / want) in
  let k = ref 0 in
  while List.length !out < want && !k < card do
    push (d.lo + (!k * d.step));
    k := !k + stride
  done;
  List.rev !out

let debug = Sys.getenv_opt "CASTAN_RECONCILE_DEBUG" <> None

(* Steps 2+3 for one havoc: walk candidate hash values, invert each through
   the table, and commit the first (value, key) pair the solver accepts. *)
let reconcile_one ~tables ~rng ~limit pcs h =
  match tables h.hv_hash with
  | None -> None
  | Some table ->
      let commit hv key =
        let eq_out : Ir.Expr.sexpr = Cmp (Eq, Leaf h.hv_output, Const hv) in
        let eq_in : Ir.Expr.sexpr = Cmp (Eq, h.hv_input, Const key) in
        let pcs' = eq_in :: eq_out :: pcs in
        match Solver.Solve.sat ~rng pcs' with
        | Sat _ -> Some pcs'
        | Unsat ->
            if debug then Printf.eprintf "reconcile: commit UNSAT (pkt %d hv=%d key=0x%x)\n%!" h.hv_pkt hv key;
            None
        | Unknown ->
            if debug then Printf.eprintf "reconcile: commit UNKNOWN (pkt %d hv=%d)\n%!" h.hv_pkt hv;
            None
      in
      let rec try_values = function
        | [] -> None
        | hv :: rest ->
            let rec try_keys = function
              | [] -> try_values rest
              | key :: more -> (
                  match commit hv key with
                  | Some pcs' -> Some pcs'
                  | None -> try_keys more)
            in
            let keys = Rainbow.invert table hv in
            if debug && keys = [] then
              Printf.eprintf "reconcile: no preimage (pkt %d hv=%d)\n%!" h.hv_pkt hv;
            try_keys keys
      in
      let vals = value_candidates ~rng ~limit pcs h.hv_output in
      if debug && vals = [] then
        Printf.eprintf "reconcile: no value candidates (pkt %d)\n%!" h.hv_pkt;
      try_values vals

let run ~tables ?(rng = Util.Rng.create 0x5a17) ?(value_candidates = 24) ~pcs
    ~havocs () =
  let limit = value_candidates in
  let ordered =
    List.stable_sort (fun a b -> compare a.hv_pkt b.hv_pkt) havocs
  in
  let pcs, reconciled, unreconciled =
    List.fold_left
      (fun (pcs, ok, failed) h ->
        match reconcile_one ~tables ~rng ~limit pcs h with
        | Some pcs' -> (pcs', h :: ok, failed)
        | None -> (pcs, ok, h :: failed))
      (pcs, [], []) ordered
  in
  {
    constraints = pcs;
    reconciled = List.rev reconciled;
    unreconciled = List.rev unreconciled;
  }
