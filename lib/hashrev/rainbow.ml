type keyspace = { ks_name : string; count : int; key_of_index : int -> int }

let keyspace ~name ~count ~key_of_index =
  assert (count > 0);
  { ks_name = name; count; key_of_index }

type repr =
  | Chains of {
      chain_len : int;
      (* endpoint key-index -> start key-indices *)
      ends : (int, int list) Hashtbl.t;
    }
  | Exhaustive of { starts : int array; keys : int array }
      (* counting-sorted by hash value: keys with hash h live at
         keys[starts.(h) .. starts.(h+1) - 1]; compact enough for the
         "a few million entries" tables the paper calls for *)

type t = { hash : Hashes.t; ks : keyspace; repr : repr; entries : int }

(* Column-salted reduction: maps a hash value to a key index. *)
let reduce ks column h = (h + (column * 0x9E3779B9) + column) mod ks.count

let chain_end hash ks chain_len start_idx =
  let rec go idx col =
    if col >= chain_len then idx
    else
      let h = hash.Hashes.apply (ks.key_of_index idx) in
      go (reduce ks (col + 1) h) (col + 1)
  in
  go start_idx 0

let build ~hash ks ?(chains = 4096) ?(chain_len = 64) () =
  let ends = Hashtbl.create chains in
  let n = min chains ks.count in
  (* Each chain walk is a pure function of its start point, so the walks
     shard freely across pool workers; the table insertions happen on the
     main domain in chain order, making the bucket lists (and therefore
     [invert]'s candidate order) identical to a serial build. *)
  let shards =
    Util.Pool.chunked n (fun ~lo ~hi ->
        Array.init (hi - lo) (fun k ->
            let c = lo + k in
            (* Deterministic spread of start points across the key space. *)
            let start = c * (ks.count / n) in
            (start, chain_end hash ks chain_len start)))
  in
  List.iter
    (Array.iter (fun (start, e) ->
         let cur =
           match Hashtbl.find_opt ends e with Some l -> l | None -> []
         in
         Hashtbl.replace ends e (start :: cur)))
    shards;
  { hash; ks; repr = Chains { chain_len; ends }; entries = n }

let build_exhaustive ~hash ks =
  let space = 1 lsl hash.Hashes.bits in
  let counts = Array.make (space + 1) 0 in
  for i = 0 to ks.count - 1 do
    let h = hash.Hashes.apply (ks.key_of_index i) in
    counts.(h + 1) <- counts.(h + 1) + 1
  done;
  for h = 1 to space do
    counts.(h) <- counts.(h) + counts.(h - 1)
  done;
  let starts = counts in
  let keys = Array.make ks.count 0 in
  let cursor = Array.copy starts in
  for i = 0 to ks.count - 1 do
    let k = ks.key_of_index i in
    let h = hash.Hashes.apply k in
    keys.(cursor.(h)) <- k;
    cursor.(h) <- cursor.(h) + 1
  done;
  { hash; ks; repr = Exhaustive { starts; keys }; entries = ks.count }

(* Walk a chain from [start_idx] looking for a key whose hash is [h]. *)
let find_in_chain t chain_len start_idx h =
  let ks = t.ks in
  let rec go idx col =
    if col >= chain_len then None
    else
      let key = ks.key_of_index idx in
      let hv = t.hash.Hashes.apply key in
      if hv = h then Some key else go (reduce ks (col + 1) hv) (col + 1)
  in
  go start_idx 0

let invert t h =
  match t.repr with
  | Exhaustive { starts; keys } ->
      if h < 0 || h + 1 >= Array.length starts then []
      else
        List.init (starts.(h + 1) - starts.(h)) (fun k -> keys.(starts.(h) + k))
  | Chains { chain_len; ends } ->
      (* Assume h appears at column j; complete the chain to its endpoint and
         look the endpoint up; then re-walk matching chains from the start. *)
      let candidates = ref [] in
      for j = chain_len - 1 downto 0 do
        let idx = ref (reduce t.ks (j + 1) h) in
        for col = j + 1 to chain_len - 1 do
          let hv = t.hash.Hashes.apply (t.ks.key_of_index !idx) in
          idx := reduce t.ks (col + 1) hv
        done;
        match Hashtbl.find_opt ends !idx with
        | None -> ()
        | Some starts ->
            List.iter
              (fun s ->
                match find_in_chain t chain_len s h with
                | Some key when not (List.mem key !candidates) ->
                    candidates := key :: !candidates
                | _ -> ())
              starts
      done;
      List.rev !candidates

let hash t = t.hash
let entries t = t.entries

let coverage_sample t ~samples =
  (* Sample [i] draws from its own index-derived stream ({!Util.Rng.split_ix}),
     so the hit count is independent of how samples are sharded across
     workers — and equal to the serial count. *)
  let root = Util.Rng.create 0xc0de in
  let shard_hits =
    Util.Pool.chunked samples (fun ~lo ~hi ->
        let hits = ref 0 in
        for i = lo to hi - 1 do
          let rng = Util.Rng.split_ix root i in
          (* Sample hash values that are actually achievable. *)
          let k = t.ks.key_of_index (Util.Rng.int rng t.ks.count) in
          let h = t.hash.Hashes.apply k in
          if invert t h <> [] then incr hits
        done;
        !hits)
  in
  float_of_int (List.fold_left ( + ) 0 shard_hits) /. float_of_int samples
