(** Reconciling havoced hash values with packet constraints (§3.5, Fig. 3).

    During analysis every [castan_havoc] replaced a hash output with a fresh
    unconstrained symbol, leaving the path constraint talking about both the
    packet and the hash value.  Reconciliation runs the paper's three-step
    procedure per havoc:

    + solve for candidate hash values compatible with the path constraint;
    + invert each candidate through the rainbow table into candidate keys;
    + check with the solver that some key is compatible with the constraints
      on the packet, and commit the pair as new equalities.

    Havocs for which no (value, key) pair fits remain {e unreconciled}: the
    output is a partially-symbolic packet — the analysis still reports the
    expected bad performance, but the emitted workload cannot force that
    hash's behaviour (the NAT hash-table case in the paper's evaluation). *)

type havoc = {
  hv_pkt : int;  (** packet index the havoc occurred in *)
  hv_hash : string;  (** hash-function name *)
  hv_input : Ir.Expr.sexpr;  (** symbolic hash input (the packed key) *)
  hv_output : Ir.Expr.sym;  (** the fresh symbol that replaced the output *)
}

type outcome = {
  constraints : Ir.Expr.sexpr list;
      (** input path constraints plus committed reconciliation equalities *)
  reconciled : havoc list;
  unreconciled : havoc list;
}

val run :
  tables:(string -> Rainbow.t option) ->
  ?rng:Util.Rng.t ->
  ?value_candidates:int ->
  pcs:Ir.Expr.sexpr list ->
  havocs:havoc list ->
  unit ->
  outcome
(** Havocs are processed in packet order; constraints committed for earlier
    havocs restrict the later ones (the paper's related-keys NAT challenge
    arises exactly here).  [value_candidates] bounds step 1 (default 24).
    A havoc whose hash has no table is left unreconciled. *)
