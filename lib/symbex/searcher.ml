type strategy = Castan | Dfs | Bfs | Random of int

let strategy_name = function
  | Castan -> "castan"
  | Dfs -> "dfs"
  | Bfs -> "bfs"
  | Random _ -> "random"

module Pq = Map.Make (Int)

type impl =
  | Prio of State.t list Pq.t ref  (* key: priority; pop max *)
  | Stack of State.t list ref
  | Queue of State.t Queue.t
  | Rand of State.t list ref * Util.Rng.t

type t = { impl : impl; annot : Cost.t; mutable count : int }

let create strategy ~annot =
  let impl =
    match strategy with
    | Castan -> Prio (ref Pq.empty)
    | Dfs -> Stack (ref [])
    | Bfs -> Queue (Queue.create ())
    | Random seed -> Rand (ref [], Util.Rng.create seed)
  in
  { impl; annot; count = 0 }

let add t s =
  t.count <- t.count + 1;
  match t.impl with
  | Prio pq ->
      let key = State.priority s t.annot in
      let cur = match Pq.find_opt key !pq with Some l -> l | None -> [] in
      pq := Pq.add key (s :: cur) !pq
  | Stack l -> l := s :: !l
  | Queue q -> Queue.push s q
  | Rand (l, _) -> l := s :: !l

let pop t =
  let result =
    match t.impl with
    | Prio pq -> (
        match Pq.max_binding_opt !pq with
        | None -> None
        | Some (key, states) -> (
            match states with
            | [] ->
                pq := Pq.remove key !pq;
                None
            | [ s ] ->
                pq := Pq.remove key !pq;
                Some s
            | s :: rest ->
                pq := Pq.add key rest !pq;
                Some s))
    | Stack l -> (
        match !l with
        | [] -> None
        | s :: rest ->
            l := rest;
            Some s)
    | Queue q -> if Queue.is_empty q then None else Some (Queue.pop q)
    | Rand (l, rng) -> (
        match !l with
        | [] -> None
        | states ->
            let n = List.length states in
            let k = Util.Rng.int rng n in
            let picked = List.nth states k in
            l := List.filteri (fun i _ -> i <> k) states;
            Some picked)
  in
  (match result with Some _ -> t.count <- t.count - 1 | None -> ());
  result

let size t = t.count

let drain t =
  let rec go acc = match pop t with None -> List.rev acc | Some s -> go (s :: acc) in
  go []
