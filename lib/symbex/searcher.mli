(** State-selection strategies (KLEE "searchers", §4).

    CASTAN's searcher orders pending states by estimated cycles-per-packet
    (current + potential cost) and explores the most expensive first.  DFS,
    BFS and random searchers are provided as ablation baselines for the
    directed-search experiment. *)

type strategy =
  | Castan  (** max [current_cost + potential] first *)
  | Dfs
  | Bfs
  | Random of int  (** seed *)

val strategy_name : strategy -> string

type t

val create : strategy -> annot:Cost.t -> t
val add : t -> State.t -> unit
val pop : t -> State.t option
val size : t -> int

val drain : t -> State.t list
(** Removes and returns all pending states (used at budget exhaustion to
    rank incomplete states against completed ones). *)
