(** Potential-cost annotation of the ICFG (§3.4).

    During pre-processing, every instruction is annotated with an estimate of
    the maximum cycles that can be consumed from it to the end of the
    per-packet entry function, assuming all memory accesses hit L1.  Loops
    would make the estimate infinite, so a node may appear at most [M] times
    on any path — the static assumption that every loop runs exactly [M - 1]
    times.  [M = 2] by default, as in the paper's evaluation: deep enough to
    see a loop body's cost, shallow enough not to drown everything in
    over-estimation.

    Function calls are summarized by the callee's full entry-to-return cost
    (computed callees-first; NFIR forbids recursion), and a symbolic state's
    total potential adds the annotations of every return site on its call
    stack — the "calling and returning from functions in a chain" footnote of
    the paper. *)

type t

val annotate : ?m:int -> Costs.t -> Ir.Cfg.t -> t
(** @raise Invalid_argument via {!Ir.Icfg.make} on recursive programs. *)

val full_cost : t -> string -> int
(** Estimated maximum entry-to-return cycles of a whole function. *)

val to_return : t -> func:string -> pc:int -> int
(** Estimated maximum cycles from the instruction at [pc] (inclusive) to the
    function's return. *)

val m : t -> int
