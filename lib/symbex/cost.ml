type t = {
  m : int;
  full : (string, int) Hashtbl.t;
  to_ret : (string, int array) Hashtbl.t;
}

let m t = t.m

(* Maximum-cost path from each pc to the return, bounding loop-head
   repetitions by [m].  Memoized on (pc, encoded loop-head context): in a
   reducible CFG every cycle passes through its loop head, so bounding heads
   bounds all repetition. *)
let annotate_func ~m costs (f : Ir.Cfg.func) full_tbl =
  let n = Array.length f.body in
  let heads = Array.make n (-1) in
  let n_heads = ref 0 in
  Array.iteri
    (fun pc instr ->
      match instr with
      | Ir.Cfg.Branch { loop_head = true; _ } ->
          heads.(pc) <- !n_heads;
          incr n_heads
      | _ -> ())
    f.body;
  let counts = Array.make (max !n_heads 1) 0 in
  let signature () =
    let s = ref 0 in
    for i = 0 to !n_heads - 1 do
      s := (!s * (m + 1)) + counts.(i)
    done;
    !s
  in
  let local pc =
    let instr = f.body.(pc) in
    let base = Costs.instr_local costs instr in
    match instr with
    | Ir.Cfg.Call { func; _ } -> (
        base
        + match Hashtbl.find_opt full_tbl func with Some c -> c | None -> 0)
    | _ -> base
  in
  let memo : (int * int, int option) Hashtbl.t = Hashtbl.create (n * 4) in
  let rec go pc =
    if pc >= n then Some 0
    else
      let head = heads.(pc) in
      if head >= 0 && counts.(head) >= m then None
      else begin
        if head >= 0 then counts.(head) <- counts.(head) + 1;
        let key = (pc, signature ()) in
        let result =
          match Hashtbl.find_opt memo key with
          | Some r -> r
          | None ->
              let r =
                match Ir.Cfg.successors f pc with
                | [] -> Some (local pc)
                | succs ->
                    let best =
                      List.fold_left
                        (fun acc s ->
                          match go s with
                          | Some c -> max acc c
                          | None -> acc)
                        min_int succs
                    in
                    if best = min_int then None else Some (local pc + best)
              in
              Hashtbl.replace memo key r;
              r
        in
        if head >= 0 then counts.(head) <- counts.(head) - 1;
        result
      end
  in
  let to_ret =
    Array.init n (fun pc -> match go pc with Some c -> c | None -> 0)
  in
  to_ret

let annotate ?(m = 2) costs program =
  let icfg = Ir.Icfg.make program in
  let full = Hashtbl.create 16 in
  let to_ret = Hashtbl.create 16 in
  List.iter
    (fun fname ->
      let f = Ir.Cfg.func program fname in
      let arr = annotate_func ~m costs f full in
      Hashtbl.replace to_ret fname arr;
      Hashtbl.replace full fname (if Array.length arr > 0 then arr.(0) else 0))
    (Ir.Icfg.topo_order icfg);
  { m; full; to_ret }

let full_cost t fname =
  match Hashtbl.find_opt t.full fname with Some c -> c | None -> 0

let to_return t ~func ~pc =
  match Hashtbl.find_opt t.to_ret func with
  | Some arr when pc >= 0 && pc < Array.length arr -> arr.(pc)
  | _ -> 0
