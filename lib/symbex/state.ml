module Smap = Map.Make (String)

type metrics = {
  instrs : int;
  loads : int;
  stores : int;
  l3_misses : int;
  cycles : int;
}

let zero_metrics = { instrs = 0; loads = 0; stores = 0; l3_misses = 0; cycles = 0 }

let pp_metrics ppf m =
  Format.fprintf ppf "instrs=%d loads=%d stores=%d l3miss=%d cycles=%d"
    m.instrs m.loads m.stores m.l3_misses m.cycles

type frame = {
  func : Ir.Cfg.func;
  pc : int;
  env : Ir.Expr.sexpr Smap.t;
  ret_to : string option;
}

type t = {
  program : Ir.Cfg.t;
  frame : frame;
  stack : frame list;
  mem : Ir.Expr.sexpr Ir.Memory.t;
  pcs : Ir.Expr.sexpr list;
  cache : Cache.Model.t;
  pkt : int;
  n_packets : int;
  finished : bool;
  done_metrics : metrics list;
  cur : metrics;
  havocs : (int * string * Ir.Expr.sexpr * Ir.Expr.sym) list;
  steps : int;
  id : int;
}

(* Domain-local so concurrent analyses on pool workers allocate independent
   dense sequences; [reset_ids] (called per analysis) makes the ids a pure
   function of the NF being explored. *)
let next_id : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)
let reset_ids () = Domain.DLS.get next_id := 0

let fresh_id () =
  let r = Domain.DLS.get next_id in
  incr r;
  !r

let packet_sym pkt field : Ir.Expr.sexpr = Leaf (Ir.Expr.Pkt { pkt; field })

let field_of_param name =
  match
    List.find_opt
      (fun f -> Ir.Expr.field_name f = name)
      Ir.Expr.all_fields
  with
  | Some f -> f
  | None ->
      invalid_arg
        ("State: entry parameter '" ^ name ^ "' is not a packet field")

let entry_frame program pkt =
  let f = Ir.Cfg.entry_func program in
  let env =
    List.fold_left
      (fun env param ->
        Smap.add param (packet_sym pkt (field_of_param param)) env)
      Smap.empty f.params
  in
  { func = f; pc = 0; env; ret_to = None }

let initial program ~cache ~n_packets ~mem =
  {
    program;
    frame = entry_frame program 0;
    stack = [];
    mem;
    pcs = [];
    cache;
    pkt = 0;
    n_packets;
    finished = false;
    done_metrics = [];
    cur = zero_metrics;
    havocs = [];
    steps = 0;
    id = fresh_id ();
  }

let add_pc t c =
  match c with
  | Ir.Expr.Const k when k <> 0 -> t
  | _ ->
      if List.exists (Ir.Expr.equal_sexpr c) t.pcs then t
      else { t with pcs = c :: t.pcs }

let start_packet t =
  let done_metrics = t.cur :: t.done_metrics in
  if t.pkt + 1 >= t.n_packets then
    { t with done_metrics; cur = zero_metrics; finished = true; steps = 0 }
  else
    {
      t with
      frame = entry_frame t.program (t.pkt + 1);
      stack = [];
      pkt = t.pkt + 1;
      done_metrics;
      cur = zero_metrics;
      steps = 0;
      id = t.id;
    }

let current_cost t =
  List.fold_left (fun acc m -> acc + m.cycles) t.cur.cycles t.done_metrics

let potential t annot =
  if t.finished then 0
  else
    let here =
      Cost.to_return annot ~func:t.frame.func.Ir.Cfg.fname ~pc:t.frame.pc
    in
    let stack =
      List.fold_left
        (fun acc fr ->
          acc + Cost.to_return annot ~func:fr.func.Ir.Cfg.fname ~pc:fr.pc)
        0 t.stack
    in
    let remaining_packets = t.n_packets - t.pkt - 1 in
    here + stack
    + (remaining_packets * Cost.full_cost annot t.program.Ir.Cfg.entry)

let priority t annot = current_cost t + potential t annot

let all_metrics t =
  let completed = List.rev t.done_metrics in
  if t.finished then completed else completed @ [ t.cur ]

let pp ppf t =
  Format.fprintf ppf "state#%d pkt=%d/%d %s pc=%s:%d cost=%d pcs=%d" t.id
    t.pkt t.n_packets
    (if t.finished then "done" else "live")
    t.frame.func.Ir.Cfg.fname t.frame.pc (current_cost t)
    (List.length t.pcs)
