(** The cycle cost model: fixed per-instruction costs learned empirically
    plus per-memory-level costs (§3.3).

    Non-memory NFIR operations retire on a superscalar core at less than one
    cycle each; memory operations cost the latency of the level that serves
    them.  Hash weights come from the analysis configuration because the IR
    layer does not know hash implementations. *)

type t = {
  op_cycles_num : int;  (** non-memory cost = weight * num / den cycles *)
  op_cycles_den : int;
  geom : Cache.Geometry.t;
  hash_weight : string -> int;  (** instructions per hash application *)
}

val default : ?hash_weight:(string -> int) -> Cache.Geometry.t -> t
(** 3/5 of a cycle per retired instruction; unknown hashes weigh 24. *)

val compute_cycles : t -> weight:int -> int
(** Cycles to retire [weight] non-memory instructions (at least 1). *)

val instr_local : t -> Ir.Cfg.instr -> int
(** Local cost of an instruction assuming memory accesses hit L1 — the
    pre-processing assumption of §3.4. *)
