type config = {
  n_packets : int;
  strategy : Searcher.strategy;
  costs : Costs.t;
  m : int;
  hash_bits : string -> int;
  packet_budget : int;
  instr_budget : int;
  time_budget : float;
  max_completed : int;
  max_states : int;
  mem_budget_mb : int;
}

let default_config ?(n_packets = 30) costs =
  {
    n_packets;
    strategy = Searcher.Castan;
    costs;
    m = 2;
    hash_bits = (fun _ -> 16);
    packet_budget = 100_000;
    instr_budget = 5_000_000;
    time_budget = 30.0;
    max_completed = 32;
    max_states = 0;
    mem_budget_mb = 0;
  }

type stats = {
  explored : int;
  forks : int;
  killed : int;
  kill_reasons : (string * int) list;
  executed_instrs : int;
  wall_time : float;
  degraded : bool;
  watchdog_kills : int;
}

type result = {
  best : State.t option;
  ranked : State.t list;
  completed : State.t list;
  annot : Cost.t;
  stats : stats;
}

(* Telemetry.  Totals are wired from [stats] once at the end of [run] (the
   per-event counting already happens for the stats record); only the
   queue-depth gauge and the per-slice spans touch the exploration loop, and
   both are gated so a disabled run does no extra work. *)
let m_explored = Obs.Metrics.counter "symbex.explored"
let m_forks = Obs.Metrics.counter "symbex.forks"
let m_killed = Obs.Metrics.counter "symbex.killed"
let m_executed = Obs.Metrics.counter "symbex.executed_instrs"
let m_completed = Obs.Metrics.counter "symbex.completed_paths"
let m_degraded = Obs.Metrics.counter "symbex.degraded_runs"
let g_queue = Obs.Metrics.gauge "symbex.queue_depth"

let record_run_metrics stats ~completed =
  if Obs.Metrics.active () then begin
    Obs.Metrics.incr ~by:stats.explored m_explored;
    Obs.Metrics.incr ~by:stats.forks m_forks;
    Obs.Metrics.incr ~by:stats.killed m_killed;
    Obs.Metrics.incr ~by:stats.executed_instrs m_executed;
    Obs.Metrics.incr ~by:completed m_completed;
    if stats.degraded then Obs.Metrics.incr m_degraded;
    List.iter
      (fun (label, n) ->
        Obs.Metrics.incr ~by:n (Obs.Metrics.counter ("symbex.kills." ^ label)))
      stats.kill_reasons
  end

(* Process-lifetime watchdog accounting, summed across analyses (and pool
   worker domains — hence atomic).  The CLI reads it to pick exit code 2
   when any exploration had to degrade under a resource budget; it is an
   exit-code signal only, never part of the deterministic output. *)
let watchdog_total = Atomic.make 0
let watchdog_kill_total () = Atomic.get watchdog_total
let reset_watchdog_total () = Atomic.set watchdog_total 0

let run program ~mem ~cache config =
  (* A fresh query cache per exploration: results must never depend on what
     else ran earlier in the process, and entries from another NF's symbols
     would only pollute the canonical index. *)
  Solver.Qcache.clear ();
  let annot = Cost.annotate ~m:config.m config.costs program in
  let searcher = Searcher.create config.strategy ~annot in
  let exec_cfg =
    {
      Exec.costs = config.costs;
      hash_bits = config.hash_bits;
      packet_budget = config.packet_budget;
    }
  in
  let start = Unix.gettimeofday () in
  let deadline = Util.Resilience.deadline_in config.time_budget in
  let explored = ref 0
  and forks = ref 0
  and killed = ref 0
  and executed = ref 0 in
  let kill_counts : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let fault_kill = ref false in
  let count_kill reason =
    incr killed;
    if Exec.reason_is_fault reason then fault_kill := true;
    let label = Exec.reason_label reason in
    let cur =
      match Hashtbl.find_opt kill_counts label with Some n -> n | None -> 0
    in
    Hashtbl.replace kill_counts label (cur + 1)
  in
  let completed = ref [] and n_completed = ref 0 in
  (* The wall clock is polled every 1024 executed instructions, *inside*
     [advance]: a single 20k-instruction slice must not overshoot
     [time_budget].  Once tripped, the flag is sticky. *)
  let deadline_hit = ref false in
  let over_deadline () =
    !deadline_hit
    || (!executed land 1023 = 0 && Util.Resilience.expired deadline
        && (deadline_hit := true;
            true))
  in
  (* Resource watchdog (max_states / mem_budget_mb).  Both budgets degrade
     the exploration instead of letting the OOM killer abort the process:
     excess pending states are killed deepest-first — depth ordered by
     (packet index, raw steps into the packet, state id), the later-forked
     state dying first on ties — under a structured [watchdog-*] kill
     reason, and survivors re-enter the searcher in their original queue
     order.  The heap budget is polled in-slice at the deadline's
     1024-instruction cadence ([Gc.quick_stat] reads the major-heap size
     without walking it); a trip ends the slice so the prune runs between
     slices, where the only live states are the pending ones. *)
  let watchdog = ref 0 in
  let mem_budget_words =
    if config.mem_budget_mb <= 0 then 0
    else config.mem_budget_mb * 1024 * 1024 / (Sys.word_size / 8)
  in
  let mem_tripped = ref false in
  let over_mem_budget () =
    !mem_tripped
    || (mem_budget_words > 0
        && !executed land 1023 = 0
        && (Gc.quick_stat ()).Gc.heap_words > mem_budget_words
        && (mem_tripped := true;
            true))
  in
  let out_of_budget () =
    !executed >= config.instr_budget
    || !deadline_hit
    || Util.Resilience.expired deadline
    || !n_completed >= config.max_completed
  in
  (* Execute one state until it forks at a plain branch, finishes a packet,
     or dies; loop-head forks continue greedily on the "one more iteration"
     side (§3.4). *)
  let rec advance s slice =
    if slice = 0 || over_deadline () || over_mem_budget () then
      Searcher.add searcher s
    else
      match Exec.step exec_cfg s with
      | Exec.Running s' ->
          incr executed;
          advance s' (slice - 1)
      | Exec.Forked { preferred; deferred; at_loop_head } ->
          incr executed;
          incr forks;
          List.iter (Searcher.add searcher) deferred;
          if at_loop_head then advance preferred (slice - 1)
          else Searcher.add searcher preferred
      | Exec.Packet_done s' ->
          incr executed;
          if Obs.Trace.enabled () then
            Obs.Trace.instant "symbex.packet_done"
              ~args:
                [ ("state", Obs.Json.Int s'.State.id);
                  ("pkt", Obs.Json.Int s'.State.pkt) ];
          let s'' = State.start_packet s' in
          if s''.State.finished then begin
            completed := s'' :: !completed;
            incr n_completed
          end
          else Searcher.add searcher s''
      | Exec.Killed (_, reason) ->
          incr executed;
          count_kill reason
  in
  let depth_key (s : State.t) = (s.State.pkt, s.State.steps, s.State.id) in
  let kill_deepest ~keep ~label =
    let pending = Searcher.drain searcher in
    let n = List.length pending in
    if n <= keep then List.iter (Searcher.add searcher) pending
    else begin
      let doomed = Hashtbl.create 16 in
      List.stable_sort (fun a b -> compare (depth_key b) (depth_key a)) pending
      |> List.iteri (fun i s ->
             if i < n - keep then Hashtbl.replace doomed s.State.id ());
      List.iter
        (fun (s : State.t) ->
          if Hashtbl.mem doomed s.State.id then begin
            incr killed;
            incr watchdog;
            let cur =
              match Hashtbl.find_opt kill_counts label with
              | Some n -> n
              | None -> 0
            in
            Hashtbl.replace kill_counts label (cur + 1)
          end
          else Searcher.add searcher s)
        pending
    end
  in
  let watchdog_check () =
    if config.max_states > 0 && Searcher.size searcher > config.max_states then
      kill_deepest ~keep:config.max_states ~label:"watchdog-states";
    if !mem_tripped then begin
      (* Keep the shallow half (at least one state so exploration can
         still make progress), then actually return the freed memory —
         re-tripping next slice prunes further if that was not enough. *)
      mem_tripped := false;
      kill_deepest
        ~keep:(max 1 (Searcher.size searcher / 2))
        ~label:"watchdog-memory";
      Gc.full_major ()
    end
  in
  let initial = State.initial program ~cache ~n_packets:config.n_packets ~mem in
  Searcher.add searcher initial;
  let slice = 20_000 in
  let rec loop () =
    if out_of_budget () then ()
    else
      match Searcher.pop searcher with
      | None -> ()
      | Some s ->
          incr explored;
          if Obs.Metrics.active () then
            Obs.Metrics.gauge_set g_queue (Searcher.size searcher);
          (* One span per execution slice: enough to see where the budget
             goes without tracing individual instructions. *)
          if Obs.Trace.enabled () then begin
            let sp =
              Obs.Trace.enter "symbex.slice"
                ~args:
                  [ ("state", Obs.Json.Int s.State.id);
                    ("pkt", Obs.Json.Int s.State.pkt);
                    ("queue", Obs.Json.Int (Searcher.size searcher)) ]
            in
            advance s slice;
            ignore (Obs.Trace.exit sp : float)
          end
          else advance s slice;
          watchdog_check ();
          loop ()
  in
  loop ();
  let budget_stop =
    !deadline_hit
    || !executed >= config.instr_budget
    || Util.Resilience.expired deadline
  in
  let pending = Searcher.drain searcher in
  let score s = State.priority s annot in
  let ranked =
    List.stable_sort
      (fun a b -> compare (score b) (score a))
      (!completed @ pending)
  in
  let stats =
    {
      explored = !explored;
      forks = !forks;
      killed = !killed;
      kill_reasons =
        Hashtbl.fold (fun k n acc -> (k, n) :: acc) kill_counts []
        |> List.sort compare;
      executed_instrs = !executed;
      wall_time = Unix.gettimeofday () -. start;
      (* Degraded: the budget truncated exploration with work pending, any
         state died of a fault (as opposed to normal exploration
         outcomes), or the resource watchdog had to prune. *)
      degraded = (budget_stop && pending <> []) || !fault_kill || !watchdog > 0;
      watchdog_kills = !watchdog;
    }
  in
  if !watchdog > 0 then
    ignore (Atomic.fetch_and_add watchdog_total !watchdog : int);
  record_run_metrics stats ~completed:!n_completed;
  if Obs.Profile.enabled () then
    Obs.Profile.add_timer "symbex" stats.wall_time;
  {
    best = (match ranked with [] -> None | s :: _ -> Some s);
    ranked;
    completed = !completed;
    annot;
    stats;
  }
