type config = {
  n_packets : int;
  strategy : Searcher.strategy;
  costs : Costs.t;
  m : int;
  hash_bits : string -> int;
  packet_budget : int;
  instr_budget : int;
  time_budget : float;
  max_completed : int;
}

let default_config ?(n_packets = 30) costs =
  {
    n_packets;
    strategy = Searcher.Castan;
    costs;
    m = 2;
    hash_bits = (fun _ -> 16);
    packet_budget = 100_000;
    instr_budget = 5_000_000;
    time_budget = 30.0;
    max_completed = 32;
  }

type stats = {
  explored : int;
  forks : int;
  killed : int;
  kill_reasons : (string * int) list;
  executed_instrs : int;
  wall_time : float;
  degraded : bool;
}

type result = {
  best : State.t option;
  ranked : State.t list;
  completed : State.t list;
  annot : Cost.t;
  stats : stats;
}

(* Telemetry.  Totals are wired from [stats] once at the end of [run] (the
   per-event counting already happens for the stats record); only the
   queue-depth gauge and the per-slice spans touch the exploration loop, and
   both are gated so a disabled run does no extra work. *)
let m_explored = Obs.Metrics.counter "symbex.explored"
let m_forks = Obs.Metrics.counter "symbex.forks"
let m_killed = Obs.Metrics.counter "symbex.killed"
let m_executed = Obs.Metrics.counter "symbex.executed_instrs"
let m_completed = Obs.Metrics.counter "symbex.completed_paths"
let m_degraded = Obs.Metrics.counter "symbex.degraded_runs"
let g_queue = Obs.Metrics.gauge "symbex.queue_depth"

let record_run_metrics stats ~completed =
  if Obs.Metrics.active () then begin
    Obs.Metrics.incr ~by:stats.explored m_explored;
    Obs.Metrics.incr ~by:stats.forks m_forks;
    Obs.Metrics.incr ~by:stats.killed m_killed;
    Obs.Metrics.incr ~by:stats.executed_instrs m_executed;
    Obs.Metrics.incr ~by:completed m_completed;
    if stats.degraded then Obs.Metrics.incr m_degraded;
    List.iter
      (fun (label, n) ->
        Obs.Metrics.incr ~by:n (Obs.Metrics.counter ("symbex.kills." ^ label)))
      stats.kill_reasons
  end

let run program ~mem ~cache config =
  (* A fresh query cache per exploration: results must never depend on what
     else ran earlier in the process, and entries from another NF's symbols
     would only pollute the canonical index. *)
  Solver.Qcache.clear ();
  let annot = Cost.annotate ~m:config.m config.costs program in
  let searcher = Searcher.create config.strategy ~annot in
  let exec_cfg =
    {
      Exec.costs = config.costs;
      hash_bits = config.hash_bits;
      packet_budget = config.packet_budget;
    }
  in
  let start = Unix.gettimeofday () in
  let deadline = Util.Resilience.deadline_in config.time_budget in
  let explored = ref 0
  and forks = ref 0
  and killed = ref 0
  and executed = ref 0 in
  let kill_counts : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let fault_kill = ref false in
  let count_kill reason =
    incr killed;
    if Exec.reason_is_fault reason then fault_kill := true;
    let label = Exec.reason_label reason in
    let cur =
      match Hashtbl.find_opt kill_counts label with Some n -> n | None -> 0
    in
    Hashtbl.replace kill_counts label (cur + 1)
  in
  let completed = ref [] and n_completed = ref 0 in
  (* The wall clock is polled every 1024 executed instructions, *inside*
     [advance]: a single 20k-instruction slice must not overshoot
     [time_budget].  Once tripped, the flag is sticky. *)
  let deadline_hit = ref false in
  let over_deadline () =
    !deadline_hit
    || (!executed land 1023 = 0 && Util.Resilience.expired deadline
        && (deadline_hit := true;
            true))
  in
  let out_of_budget () =
    !executed >= config.instr_budget
    || !deadline_hit
    || Util.Resilience.expired deadline
    || !n_completed >= config.max_completed
  in
  (* Execute one state until it forks at a plain branch, finishes a packet,
     or dies; loop-head forks continue greedily on the "one more iteration"
     side (§3.4). *)
  let rec advance s slice =
    if slice = 0 || over_deadline () then Searcher.add searcher s
    else
      match Exec.step exec_cfg s with
      | Exec.Running s' ->
          incr executed;
          advance s' (slice - 1)
      | Exec.Forked { preferred; deferred; at_loop_head } ->
          incr executed;
          incr forks;
          List.iter (Searcher.add searcher) deferred;
          if at_loop_head then advance preferred (slice - 1)
          else Searcher.add searcher preferred
      | Exec.Packet_done s' ->
          incr executed;
          if Obs.Trace.enabled () then
            Obs.Trace.instant "symbex.packet_done"
              ~args:
                [ ("state", Obs.Json.Int s'.State.id);
                  ("pkt", Obs.Json.Int s'.State.pkt) ];
          let s'' = State.start_packet s' in
          if s''.State.finished then begin
            completed := s'' :: !completed;
            incr n_completed
          end
          else Searcher.add searcher s''
      | Exec.Killed (_, reason) ->
          incr executed;
          count_kill reason
  in
  let initial = State.initial program ~cache ~n_packets:config.n_packets ~mem in
  Searcher.add searcher initial;
  let slice = 20_000 in
  let rec loop () =
    if out_of_budget () then ()
    else
      match Searcher.pop searcher with
      | None -> ()
      | Some s ->
          incr explored;
          if Obs.Metrics.active () then
            Obs.Metrics.gauge_set g_queue (Searcher.size searcher);
          (* One span per execution slice: enough to see where the budget
             goes without tracing individual instructions. *)
          if Obs.Trace.enabled () then begin
            let sp =
              Obs.Trace.enter "symbex.slice"
                ~args:
                  [ ("state", Obs.Json.Int s.State.id);
                    ("pkt", Obs.Json.Int s.State.pkt);
                    ("queue", Obs.Json.Int (Searcher.size searcher)) ]
            in
            advance s slice;
            ignore (Obs.Trace.exit sp : float)
          end
          else advance s slice;
          loop ()
  in
  loop ();
  let budget_stop =
    !deadline_hit
    || !executed >= config.instr_budget
    || Util.Resilience.expired deadline
  in
  let pending = Searcher.drain searcher in
  let score s = State.priority s annot in
  let ranked =
    List.stable_sort
      (fun a b -> compare (score b) (score a))
      (!completed @ pending)
  in
  let stats =
    {
      explored = !explored;
      forks = !forks;
      killed = !killed;
      kill_reasons =
        Hashtbl.fold (fun k n acc -> (k, n) :: acc) kill_counts []
        |> List.sort compare;
      executed_instrs = !executed;
      wall_time = Unix.gettimeofday () -. start;
      (* Degraded: the budget truncated exploration with work pending, or
         any state died of a fault (as opposed to normal exploration
         outcomes). *)
      degraded = (budget_stop && pending <> []) || !fault_kill;
    }
  in
  record_run_metrics stats ~completed:!n_completed;
  if Obs.Profile.enabled () then
    Obs.Profile.add_timer "symbex" stats.wall_time;
  {
    best = (match ranked with [] -> None | s :: _ -> Some s);
    ranked;
    completed = !completed;
    annot;
    stats;
  }
