(** The analysis driver: explore, rank, and return the most expensive states.

    Runs the engine over [n_packets] symbolic packets, following the paper's
    §3.1 loop: always work on the most promising state (per the searcher),
    greedily finish loop iterations, and when the budget runs out return the
    state with the highest cost together with the ranked runners-up.  The
    caller (the CASTAN core) then solves the winner's path constraint and
    reconciles its havocs into a concrete workload. *)

type config = {
  n_packets : int;
  strategy : Searcher.strategy;
  costs : Costs.t;
  m : int;  (** loop bound for potential-cost annotation *)
  hash_bits : string -> int;
  packet_budget : int;  (** raw instructions per packet per state *)
  instr_budget : int;  (** total executed instructions across all states *)
  time_budget : float;  (** seconds of wall time *)
  max_completed : int;  (** stop after this many full-length paths *)
  max_states : int;
      (** watchdog: pending-state budget, 0 = unlimited.  When the queue
          exceeds it, the deepest pending states are killed (reason
          ["watchdog-states"]) until it fits. *)
  mem_budget_mb : int;
      (** watchdog: major-heap budget in MB, 0 = unlimited.  Polled
          in-slice at the deadline cadence via [Gc.quick_stat]; a trip
          kills the deeper half of the pending queue (reason
          ["watchdog-memory"]) and compacts, instead of letting the OS OOM
          killer abort the process. *)
}

val default_config : ?n_packets:int -> Costs.t -> config
(** 30 packets, castan searcher, M = 2, 5M total instructions, 30s, both
    watchdog budgets off. *)

type stats = {
  explored : int;  (** states whose execution advanced at least once *)
  forks : int;
  killed : int;
  kill_reasons : (string * int) list;
      (** kill counts per {!Exec.reason_label}, sorted by label *)
  executed_instrs : int;
  wall_time : float;
  degraded : bool;
      (** the run was budget-truncated with states still pending, at least
          one state died of a fault ({!Exec.reason_is_fault}), or the
          resource watchdog pruned states *)
  watchdog_kills : int;
      (** states killed by the resource watchdog (the ["watchdog-states"]
          and ["watchdog-memory"] entries of [kill_reasons]).  The kill set
          is deterministic in the budgets: deepest pending states first,
          depth ordered by (packet, steps, state id). *)
}

type result = {
  best : State.t option;  (** highest-cost state seen (complete or not) *)
  ranked : State.t list;  (** all surviving states, best first *)
  completed : State.t list;  (** states that processed every packet *)
  annot : Cost.t;
  stats : stats;
}

val run :
  Ir.Cfg.t -> mem:Ir.Expr.sexpr Ir.Memory.t -> cache:Cache.Model.t -> config -> result
(** Exploration is strictly bounded: the wall-clock budget is polled every
    ~1k executed instructions {e inside} a slice (a single 20k-instruction
    slice cannot overshoot [time_budget]), and state-local faults (heap
    exhaustion, out-of-bounds pointers, undefined variables) kill the
    offending state — accounted in [stats.kill_reasons] — rather than
    raising out of the driver. *)

val watchdog_kill_total : unit -> int
(** Process-lifetime watchdog kills summed across analyses (atomic — pool
    workers included).  The CLI maps a nonzero total to exit code 2:
    budget exhaustion degrades, it never aborts. *)

val reset_watchdog_total : unit -> unit
