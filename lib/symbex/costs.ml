type t = {
  op_cycles_num : int;
  op_cycles_den : int;
  geom : Cache.Geometry.t;
  hash_weight : string -> int;
}

let default ?(hash_weight = fun _ -> 24) geom =
  { op_cycles_num = 3; op_cycles_den = 5; geom; hash_weight }

let compute_cycles t ~weight = max 1 (weight * t.op_cycles_num / t.op_cycles_den)

let instr_local t instr =
  let base = compute_cycles t ~weight:(Ir.Cfg.weight instr) in
  match instr with
  | Ir.Cfg.Load _ | Ir.Cfg.Store _ -> base + t.geom.Cache.Geometry.lat_l1
  | Ir.Cfg.Havoc { hash; _ } ->
      base + compute_cycles t ~weight:(t.hash_weight hash)
  | _ -> base
