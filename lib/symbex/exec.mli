(** The symbolic-execution stepper: NFIR "analysis build" semantics.

    One call executes the current instruction of a state.  Symbolic branch
    conditions fork (both outcomes feasibility-checked against the path
    constraint); symbolic pointers are concretized adversarially by the cache
    model; [Havoc] replaces hash outputs by fresh symbols and records the
    pair for reconciliation. *)

type config = {
  costs : Costs.t;
  hash_bits : string -> int;  (** output width of a hash, for fresh symbols *)
  packet_budget : int;
      (** max raw instructions per packet; guards against loops the loop
          bound cannot see *)
}

val default_config : ?packet_budget:int -> Costs.t -> config
(** Hash widths default to 16 bits; packet budget to 100,000. *)

type fork = {
  preferred : State.t;
      (** at a loop head, the "one more iteration" outcome (§3.4) *)
  deferred : State.t list;
  at_loop_head : bool;
}

type step_result =
  | Running of State.t
  | Forked of fork
  | Packet_done of State.t  (** the entry function returned *)
  | Killed of State.t * string  (** infeasible branch, budget, or fault *)

val step : config -> State.t -> step_result
(** @raise Invalid_argument on malformed programs (undefined variables,
    arity mismatches). *)
