(** The symbolic-execution stepper: NFIR "analysis build" semantics.

    One call executes the current instruction of a state.  Symbolic branch
    conditions fork (both outcomes feasibility-checked against the path
    constraint); symbolic pointers are concretized adversarially by the cache
    model; [Havoc] replaces hash outputs by fresh symbols and records the
    pair for reconciliation. *)

type config = {
  costs : Costs.t;
  hash_bits : string -> int;  (** output width of a hash, for fresh symbols *)
  packet_budget : int;
      (** max raw instructions per packet; guards against loops the loop
          bound cannot see *)
}

val default_config : ?packet_budget:int -> Costs.t -> config
(** Hash widths default to 16 bits; packet budget to 100,000. *)

type fork = {
  preferred : State.t;
      (** at a loop head, the "one more iteration" outcome (§3.4) *)
  deferred : State.t list;
  at_loop_head : bool;
}

type kill_reason =
  | Packet_budget  (** per-packet raw instruction budget exhausted *)
  | Heap_exhausted of string  (** [Alloc] with no heap left *)
  | Memory_fault of string  (** out-of-bounds, misaligned or wrong-width *)
  | Undefined_var of string
  | Arity_mismatch of string  (** callee name *)
  | No_pointer_target of string  (** ["load"] or ["store"] *)
  | Infeasible_branch  (** both outcomes contradict the path constraint *)

val reason_label : kill_reason -> string
(** Coarse bucket for accounting (e.g. ["heap-exhausted"]) — the keys of
    {!Driver.stats.kill_reasons}. *)

val reason_message : kill_reason -> string
(** Human-readable detail. *)

val reason_is_fault : kill_reason -> bool
(** True for state-local faults (heap exhaustion, memory faults, undefined
    variables, arity mismatches) as opposed to normal exploration outcomes
    (budget, infeasibility).  Any fault kill marks the driver run
    degraded. *)

val reset_fork_ids : unit -> unit
(** Resets this domain's fork-id counter (see {!State.reset_ids}). *)

type step_result =
  | Running of State.t
  | Forked of fork
  | Packet_done of State.t  (** the entry function returned *)
  | Killed of State.t * kill_reason
      (** the state died; the engine and its siblings continue *)

val step : config -> State.t -> step_result
(** Never raises for state-local conditions — heap exhaustion, undefined
    variables, arity mismatches, out-of-bounds accesses all come back as
    [Killed] with a structured reason.
    @raise Invalid_argument only on engine misuse (stepping a finished
    state, unknown callee in a malformed program). *)
