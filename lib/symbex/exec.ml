type config = {
  costs : Costs.t;
  hash_bits : string -> int;
  packet_budget : int;
}

let default_config ?(packet_budget = 100_000) costs =
  { costs; hash_bits = (fun _ -> 16); packet_budget }

type fork = {
  preferred : State.t;
  deferred : State.t list;
  at_loop_head : bool;
}

type kill_reason =
  | Packet_budget
  | Heap_exhausted of string
  | Memory_fault of string
  | Undefined_var of string
  | Arity_mismatch of string
  | No_pointer_target of string
  | Infeasible_branch

let reason_label = function
  | Packet_budget -> "packet-budget"
  | Heap_exhausted _ -> "heap-exhausted"
  | Memory_fault _ -> "memory-fault"
  | Undefined_var _ -> "undefined-var"
  | Arity_mismatch _ -> "arity-mismatch"
  | No_pointer_target _ -> "no-pointer-target"
  | Infeasible_branch -> "infeasible-branch"

let reason_message = function
  | Packet_budget -> "packet instruction budget exhausted"
  | Heap_exhausted msg -> msg
  | Memory_fault msg -> "memory fault: " ^ msg
  | Undefined_var name -> "undefined variable " ^ name
  | Arity_mismatch func -> "arity mismatch calling " ^ func
  | No_pointer_target op -> op ^ ": no feasible pointer target"
  | Infeasible_branch -> "branch: both outcomes infeasible"

(* A state-local fault, distinct from engine bugs: kills the state, never
   the driver. *)
let reason_is_fault = function
  | Heap_exhausted _ | Memory_fault _ | Undefined_var _ | Arity_mismatch _ ->
      true
  | Packet_budget | No_pointer_target _ | Infeasible_branch -> false

type step_result =
  | Running of State.t
  | Forked of fork
  | Packet_done of State.t
  | Killed of State.t * kill_reason

open State

(* Internal signal for state-local faults detected mid-instruction; [step]
   converts it into [Killed]. *)
exception Fault of kill_reason

(* Evaluate a program expression to a symbolic value under the frame
   environment. *)
let eval_pexpr (frame : frame) (e : Ir.Expr.pexpr) : Ir.Expr.sexpr =
  let lookup name =
    match Smap.find_opt name frame.env with
    | Some v -> v
    | None -> raise (Fault (Undefined_var name))
  in
  Solver.Simplify.expr (Ir.Expr.subst lookup e)

let set_var (t : State.t) name value =
  { t with frame = { t.frame with env = Smap.add name value t.frame.env } }

let advance (t : State.t) pc = { t with frame = { t.frame with pc } }

(* Account one executed instruction: weighted retirement cost plus optional
   memory latency. *)
let charge cfg (t : State.t) instr ?(mem_latency = 0) ?(load = false)
    ?(store = false) ?(miss = false) ?(extra_weight = 0) () =
  let weight = Ir.Cfg.weight instr + extra_weight in
  let cycles = Costs.compute_cycles cfg.costs ~weight + mem_latency in
  if Obs.Profile.enabled () then
    Obs.Profile.add_exec ~instrs:weight ~cycles
      ~loads:(if load then 1 else 0)
      ~stores:(if store then 1 else 0);
  let c = t.cur in
  {
    t with
    cur =
      {
        instrs = c.instrs + weight;
        loads = (c.loads + if load then 1 else 0);
        stores = (c.stores + if store then 1 else 0);
        l3_misses = (c.l3_misses + if miss then 1 else 0);
        cycles = c.cycles + cycles;
      };
    steps = t.steps + 1;
  }

(* Forked children get distinct ids for diagnostics.  Domain-local (plus a
   per-analysis reset) for the same reason as [State.fresh_id]: ids must
   depend only on the NF, not on sibling analyses in a pool campaign. *)
let fork_counter : int ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref 1_000_000)

let reset_fork_ids () = Domain.DLS.get fork_counter := 1_000_000

let fresh_fork_id () =
  let r = Domain.DLS.get fork_counter in
  incr r;
  !r

(* Pointers whose constrained domain is this small fork one state per
   feasible target — standard KLEE behaviour for tiny resolutions (a trie
   node's two children).  Anything larger goes through the cache model's
   greedy adversarial concretization (§3.3, limitation 3). *)
let fork_domain_limit = 8

(* Resolve a symbolic pointer: either a forked list of (value, constraint)
   pairs, or a single adversarial choice from the cache model. *)
type resolution =
  | Small of (int * Ir.Expr.sexpr) list
  | Adversarial

let resolve_pointer (t : State.t) addr_e =
  match addr_e with
  | Ir.Expr.Const _ -> Adversarial (* concrete: model handles directly *)
  | _ ->
      let dom = Solver.Solve.domain_of t.pcs addr_e in
      if Solver.Domain.cardinal dom > fork_domain_limit then Adversarial
      else begin
        let feasible = ref [] in
        Solver.Domain.iter dom (fun v ->
            let c = Solver.Simplify.expr (Ir.Expr.Cmp (Eq, addr_e, Const v)) in
            if Solver.Solve.feasible_cached ~query:c t.pcs then
              feasible := (v, c) :: !feasible);
        Small (List.rev !feasible)
      end

(* A branch condition as a path-constraint pair (taken, not taken). *)
let branch_constraints cond =
  let taken = Solver.Simplify.expr cond in
  let not_taken = Solver.Simplify.negate cond in
  (taken, not_taken)

let rec step cfg (t : State.t) : step_result =
  if t.finished then invalid_arg "Exec.step: state already finished";
  if t.steps >= cfg.packet_budget then Killed (t, Packet_budget)
  else
    let frame = t.frame in
    let instr = frame.func.Ir.Cfg.body.(frame.pc) in
    if Obs.Profile.enabled () then
      Obs.Profile.enter ~func:frame.func.Ir.Cfg.fname ~pc:frame.pc;
    try step_instr cfg t frame instr with
    | Fault reason -> Killed (t, reason)
    | Invalid_argument msg
      when String.length msg >= 6 && String.sub msg 0 6 = "Memory" ->
        (* An infeasible pointer slipped past the solver (Unknown verdicts
           are treated as feasible); the state dies here rather than the
           engine. *)
        Killed (t, Memory_fault msg)

and step_instr cfg (t : State.t) frame instr : step_result =
    match instr with
    | Ir.Cfg.Assign (x, e) ->
        let v = eval_pexpr frame e in
        let t = charge cfg t instr () in
        Running (advance (set_var t x v) (frame.pc + 1))
    | Ir.Cfg.Load { dst; addr; width } -> (
        let addr_e = eval_pexpr frame addr in
        let finish t concrete_addr o_latency o_miss extra_pc =
          let value =
            match Ir.Memory.try_read t.State.mem ~addr:concrete_addr ~width with
            | Ok v -> v
            | Error msg -> raise (Fault (Memory_fault msg))
          in
          let t = match extra_pc with Some c -> State.add_pc t c | None -> t in
          let t =
            charge cfg t instr ~mem_latency:o_latency ~load:true ~miss:o_miss ()
          in
          advance (set_var t dst value) (frame.pc + 1)
        in
        match resolve_pointer t addr_e with
        | Adversarial ->
            let cache, o =
              Cache.Model.access_symbolic t.cache ~pcs:t.pcs addr_e
            in
            Running (finish { t with cache } o.addr o.latency o.miss o.added)
        | Small [] -> Killed (t, No_pointer_target "load")
        | Small [ (v, c) ] ->
            let cache, o = Cache.Model.access_concrete t.cache v in
            Running (finish { t with cache } o.addr o.latency o.miss (Some c))
        | Small targets ->
            let children =
              List.map
                (fun (v, c) ->
                  let cache, o = Cache.Model.access_concrete t.cache v in
                  {
                    (finish { t with cache } o.addr o.latency o.miss (Some c)) with
                    id = fresh_fork_id ();
                  })
                targets
            in
            Forked
              {
                preferred = List.hd children;
                deferred = List.tl children;
                at_loop_head = false;
              })
    | Ir.Cfg.Store { addr; value; width } -> (
        let addr_e = eval_pexpr frame addr in
        let v = eval_pexpr frame value in
        let finish t concrete_addr o_latency o_miss extra_pc =
          let mem =
            match Ir.Memory.try_write t.State.mem ~addr:concrete_addr ~width v with
            | Ok mem -> mem
            | Error msg -> raise (Fault (Memory_fault msg))
          in
          let t = match extra_pc with Some c -> State.add_pc t c | None -> t in
          let t = { t with State.mem } in
          let t =
            charge cfg t instr ~mem_latency:o_latency ~store:true ~miss:o_miss ()
          in
          advance t (frame.pc + 1)
        in
        match resolve_pointer t addr_e with
        | Adversarial ->
            let cache, o =
              Cache.Model.access_symbolic t.cache ~pcs:t.pcs addr_e
            in
            Running (finish { t with cache } o.addr o.latency o.miss o.added)
        | Small [] -> Killed (t, No_pointer_target "store")
        | Small [ (v, c) ] ->
            let cache, o = Cache.Model.access_concrete t.cache v in
            Running (finish { t with cache } o.addr o.latency o.miss (Some c))
        | Small targets ->
            let children =
              List.map
                (fun (v, c) ->
                  let cache, o = Cache.Model.access_concrete t.cache v in
                  {
                    (finish { t with cache } o.addr o.latency o.miss (Some c)) with
                    id = fresh_fork_id ();
                  })
                targets
            in
            Forked
              {
                preferred = List.hd children;
                deferred = List.tl children;
                at_loop_head = false;
              })
    | Ir.Cfg.Alloc { dst; bytes } -> (
        match Ir.Memory.try_alloc t.mem ~bytes with
        | Error msg -> Killed (t, Heap_exhausted msg)
        | Ok (mem, base) ->
            let t = charge cfg { t with mem } instr () in
            Running (advance (set_var t dst (Ir.Expr.Const base)) (frame.pc + 1)))
    | Ir.Cfg.Jump target ->
        let t = charge cfg t instr () in
        Running (advance t target)
    | Ir.Cfg.Branch { cond; if_true; if_false; loop_head } -> (
        let cond_e = eval_pexpr frame cond in
        let t = charge cfg t instr () in
        match cond_e with
        | Ir.Expr.Const c ->
            Running (advance t (if c <> 0 then if_true else if_false))
        | _ -> (
            let taken_c, not_taken_c = branch_constraints cond_e in
            let feasible c = Solver.Solve.feasible_cached ~query:c t.pcs in
            let mk c pc = State.add_pc (advance t pc) c in
            match (feasible taken_c, feasible not_taken_c) with
            | true, false -> Running (mk taken_c if_true)
            | false, true -> Running (mk not_taken_c if_false)
            | false, false -> Killed (t, Infeasible_branch)
            | true, true ->
                let taken = { (mk taken_c if_true) with id = fresh_fork_id () } in
                let not_taken =
                  { (mk not_taken_c if_false) with id = fresh_fork_id () }
                in
                (* At a loop head, the taken branch is "one more iteration" —
                   the SEE greedily explores it (§3.4). *)
                Forked
                  {
                    preferred = taken;
                    deferred = [ not_taken ];
                    at_loop_head = loop_head;
                  }))
    | Ir.Cfg.Call { dst; func; args } ->
        let callee = Ir.Cfg.func t.program func in
        if List.length args <> List.length callee.params then
          raise (Fault (Arity_mismatch func));
        let bindings =
          List.map2
            (fun param arg -> (param, eval_pexpr frame arg))
            callee.params args
        in
        let env =
          List.fold_left (fun env (p, v) -> Smap.add p v env) Smap.empty bindings
        in
        let t = charge cfg t instr () in
        let caller = { t.frame with pc = frame.pc + 1 } in
        Running
          {
            t with
            frame = { func = callee; pc = 0; env; ret_to = dst };
            stack = caller :: t.stack;
          }
    | Ir.Cfg.Return e -> (
        let v =
          match e with
          | Some e -> eval_pexpr frame e
          | None -> Ir.Expr.Const 0
        in
        let t = charge cfg t instr () in
        match t.stack with
        | [] -> Packet_done t
        | caller :: rest ->
            let caller =
              match frame.ret_to with
              | Some x -> { caller with env = Smap.add x v caller.env }
              | None -> caller
            in
            Running { t with frame = caller; stack = rest })
    | Ir.Cfg.Havoc { dst; input; hash } ->
        let input_e = eval_pexpr frame input in
        let out_sym =
          Ir.Expr.fresh ~label:hash ~width:(cfg.hash_bits hash)
        in
        let t =
          charge cfg t instr ~extra_weight:(cfg.costs.Costs.hash_weight hash) ()
        in
        let t = set_var t dst (Ir.Expr.Leaf out_sym) in
        let t =
          { t with havocs = (t.pkt, hash, input_e, out_sym) :: t.havocs }
        in
        Running (advance t (frame.pc + 1))
