(** Symbolic execution states.

    A state is one partially-explored execution of the NF over a sequence of
    symbolic packets: register environments per frame, symbolic memory, the
    path constraint, the cache-model state, accumulated havoc records and
    per-packet performance metrics.  All components are persistent, so
    forking at a branch is O(1). *)

module Smap : Map.S with type key = string

type metrics = {
  instrs : int;  (** weighted instructions retired *)
  loads : int;
  stores : int;
  l3_misses : int;  (** DRAM accesses predicted by the cache model *)
  cycles : int;
}

val zero_metrics : metrics
val pp_metrics : Format.formatter -> metrics -> unit

type frame = {
  func : Ir.Cfg.func;
  pc : int;
  env : Ir.Expr.sexpr Smap.t;
  ret_to : string option;
}

type t = {
  program : Ir.Cfg.t;
  frame : frame;
  stack : frame list;
  mem : Ir.Expr.sexpr Ir.Memory.t;
  pcs : Ir.Expr.sexpr list;  (** path constraints, newest first *)
  cache : Cache.Model.t;
  pkt : int;  (** index of the packet currently being processed *)
  n_packets : int;
  finished : bool;  (** all [n_packets] have been processed *)
  done_metrics : metrics list;  (** completed packets, most recent first *)
  cur : metrics;
  havocs : (int * string * Ir.Expr.sexpr * Ir.Expr.sym) list;
      (** (packet, hash, input, fresh output), newest first *)
  steps : int;  (** raw instructions executed for the current packet *)
  id : int;
}

val packet_sym : int -> Ir.Expr.field -> Ir.Expr.sexpr

val reset_ids : unit -> unit
(** Resets this domain's state-id counter.  Called by [Core.Analyze.run] at
    the start of every analysis so ids depend only on the NF, not on what
    was explored before (or concurrently on other pool workers). *)

val initial :
  Ir.Cfg.t -> cache:Cache.Model.t -> n_packets:int -> mem:Ir.Expr.sexpr Ir.Memory.t -> t
(** The entry function's parameters must be named after packet fields
    ([src_ip], [dst_ip], [proto], [src_port], [dst_port]); each is bound to
    the corresponding symbol of packet 0.
    @raise Invalid_argument on a parameter that is not a field name. *)

val add_pc : t -> Ir.Expr.sexpr -> t
(** Push a path constraint (newest first).  Trivially-true constants and
    constraints already present structurally are dropped — re-taken branches
    and re-touched pointers otherwise append the same constraint over and
    over, inflating every downstream solver call. *)

val start_packet : t -> t
(** Begin processing the next symbolic packet: archive the current packet's
    metrics and re-enter the entry function on fresh symbols.  Sets
    [finished] instead when all packets are done. *)

val current_cost : t -> int
(** Cycles consumed so far across all packets (the "current cost"). *)

val potential : t -> Cost.t -> int
(** The §3.4 heuristic: max cycles still obtainable — from the current
    position to the entry's return (through the call stack), plus a full
    worst-case execution for every remaining packet. *)

val priority : t -> Cost.t -> int
(** [current_cost + potential]: the searcher's ranking key. *)

val all_metrics : t -> metrics list
(** Per-packet metrics, oldest first, including the in-progress packet. *)

val pp : Format.formatter -> t -> unit
