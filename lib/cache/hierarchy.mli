(** The simulated CPU cache hierarchy, operating on physical addresses.

    L1d and L2 are indexed in the traditional way by low physical-address
    bits; the L3 is physically indexed and split into slices selected by a
    {e hidden} hash of the physical line address — the simulator's stand-in
    for Intel's proprietary slice-selection function.  The L3 is inclusive:
    evicting a line from L3 back-invalidates it from L1d and L2, which is
    what makes L3 contention-set attacks effective end to end.

    The slice hash is deliberately not exported except through
    {!ground_truth_slice}, which exists for the oracle cache model and for
    validating contention-set discovery in tests; the discovery procedure
    itself ({!Contention}) never calls it. *)

type t

type hit = L1 | L2 | L3 | Dram

val create : ?slice_seed:int -> ?prefetch:bool -> Geometry.t -> t
(** [slice_seed] perturbs the hidden slice hash, modeling different CPU
    models. Default 0 = the repository's canonical "Xeon".

    [prefetch] (default false) enables a next-line prefetcher: an access
    that misses L2 also fills the following line, uncounted.  The paper
    argues prefetching barely affects NF performance because NF access
    patterns are traffic-driven, not sequential (§3.3); the
    [ablation-prefetch] experiment checks that claim in this simulator. *)

val access : t -> int -> hit
(** [access t paddr] performs a load/store at a physical byte address,
    updating all levels; returns the level that served it. *)

val latency : Geometry.t -> hit -> int
(** Cycle cost of a memory access served at the given level. *)

val flush : t -> unit

val invalidate_line : t -> int -> unit
(** Evict the line holding this physical address from every level — what a
    NIC's DMA write does to a packet buffer on systems without DDIO. *)

val ground_truth_slice : t -> int -> int
(** Hidden slice of a physical address; see module comment. *)

val l3_set : t -> int -> int
(** In-slice L3 set index of a physical address (page-independent bits are
    not guaranteed; callers must treat this as physical). *)

val geometry : t -> Geometry.t
