type level = { size_kib : int; ways : int }

type t = {
  line : int;
  l1d : level;
  l2 : level;
  l3 : level;
  l3_slices : int;
  lat_l1 : int;
  lat_l2 : int;
  lat_l3 : int;
  lat_dram : int;
  clock_ghz : float;
}

let xeon_e5_2667v2 =
  {
    line = 64;
    l1d = { size_kib = 32; ways = 8 };
    l2 = { size_kib = 256; ways = 8 };
    l3 = { size_kib = 25600; ways = 20 };
    l3_slices = 8;
    lat_l1 = 4;
    lat_l2 = 12;
    lat_l3 = 40;
    lat_dram = 290;
    clock_ghz = 3.3;
  }

let sets t level = level.size_kib * 1024 / t.line / level.ways
let l3_sets_per_slice t = sets t t.l3 / t.l3_slices
let l3_assoc t = t.l3.ways
let line_of_addr t a = a / t.line
