(** One set-associative LRU cache level.

    Tags are full line ids (so that an evicted tag can be re-located in other
    levels for inclusive back-invalidation); the caller computes the set
    index. *)

type t

val create : sets:int -> ways:int -> t

val access : t -> set:int -> tag:int -> bool
(** [access t ~set ~tag] looks the line up, promotes it to MRU on a hit, or
    inserts it on a miss; returns whether it hit.  On a miss that pushed out
    an LRU victim, {!last_evicted} returns its tag (allocation-free API: this
    is on the hot path of every simulated memory access). *)

val last_evicted : t -> int
(** Tag evicted by the most recent {!access}, or [-1] if none was. *)

val invalidate : t -> set:int -> tag:int -> unit
(** Removes the line if present (inclusive-hierarchy back-invalidation). *)

val resident : t -> set:int -> tag:int -> bool
val flush : t -> unit
val occupancy : t -> int
(** Number of valid lines currently held. *)
