(* Exact LRU over flat arrays: [tags] holds sets*ways line ids (-1 = empty
   way) and [stamps] the last-use tick of each way.  A hit rewrites one
   stamp; a miss scans the set twice (membership, then the minimum stamp)
   and overwrites the victim way in place.  Observably identical to the
   classic MRU-ordered-array formulation — the victim is always the
   least-recently-used resident tag, and empty ways (stamp 0, below every
   live stamp) fill before anything real is evicted — but with no
   [Array.blit] shifting on the hot path, which is what every simulated
   memory access pays. *)
type t = {
  ways : int;
  tags : int array;
  stamps : int array;
  mutable tick : int;
  mutable last_evicted : int;
}

let create ~sets ~ways =
  {
    ways;
    tags = Array.make (sets * ways) (-1);
    stamps = Array.make (sets * ways) 0;
    tick = 0;
    last_evicted = -1;
  }

let access t ~set ~tag =
  let base = set * t.ways in
  let tags = t.tags and stamps = t.stamps in
  let limit = base + t.ways in
  let rec find i =
    if i >= limit then -1
    else if Array.unsafe_get tags i = tag then i
    else find (i + 1)
  in
  let pos = find base in
  t.tick <- t.tick + 1;
  if pos >= 0 then begin
    Array.unsafe_set stamps pos t.tick;
    t.last_evicted <- -1;
    true
  end
  else begin
    (* Victim: the way with the oldest stamp; empty ways are stamp 0 and
       therefore always chosen first, mirroring the fill-before-evict
       behavior of the ordered-array representation. *)
    let victim = ref base and oldest = ref (Array.unsafe_get stamps base) in
    for i = base + 1 to limit - 1 do
      let s = Array.unsafe_get stamps i in
      if s < !oldest then begin
        oldest := s;
        victim := i
      end
    done;
    t.last_evicted <- Array.unsafe_get tags !victim;
    Array.unsafe_set tags !victim tag;
    Array.unsafe_set stamps !victim t.tick;
    false
  end

let last_evicted t = t.last_evicted

let invalidate t ~set ~tag =
  let base = set * t.ways in
  let limit = base + t.ways in
  let rec find i =
    if i >= limit then -1
    else if Array.unsafe_get t.tags i = tag then i
    else find (i + 1)
  in
  let pos = find base in
  if pos >= 0 then begin
    Array.unsafe_set t.tags pos (-1);
    (* Stamp 0 parks the freed way at the back of the LRU order, exactly
       where the shifting representation leaves invalidated ways. *)
    Array.unsafe_set t.stamps pos 0
  end

let resident t ~set ~tag =
  let base = set * t.ways in
  let limit = base + t.ways in
  let rec find i =
    if i >= limit then false
    else if Array.unsafe_get t.tags i = tag then true
    else find (i + 1)
  in
  find base

let flush t =
  t.last_evicted <- -1;
  t.tick <- 0;
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0

let occupancy t =
  Array.fold_left (fun acc tag -> if tag >= 0 then acc + 1 else acc) 0 t.tags
