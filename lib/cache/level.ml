(* Each set is an array of tags ordered MRU-first; -1 marks an empty way. *)
type t = { ways : int; sets : int array array; mutable last_evicted : int }

let create ~sets ~ways =
  { ways; sets = Array.init sets (fun _ -> Array.make ways (-1)); last_evicted = -1 }

let find set tag =
  let n = Array.length set in
  let rec go i = if i >= n then -1 else if set.(i) = tag then i else go (i + 1) in
  go 0

(* Move the entry at [pos] to the front, shifting the prefix down. *)
let promote set pos =
  let tag = set.(pos) in
  Array.blit set 0 set 1 pos;
  set.(0) <- tag

let access t ~set ~tag =
  let s = t.sets.(set) in
  let pos = find s tag in
  if pos = 0 then begin
    t.last_evicted <- -1;
    true
  end
  else if pos > 0 then begin
    promote s pos;
    t.last_evicted <- -1;
    true
  end
  else begin
    let evicted = s.(t.ways - 1) in
    Array.blit s 0 s 1 (t.ways - 1);
    s.(0) <- tag;
    t.last_evicted <- evicted;
    false
  end

let last_evicted t = t.last_evicted

let invalidate t ~set ~tag =
  let s = t.sets.(set) in
  let pos = find s tag in
  if pos >= 0 then begin
    (* Shift the suffix up and clear the last way. *)
    Array.blit s (pos + 1) s pos (t.ways - pos - 1);
    s.(t.ways - 1) <- -1
  end

let resident t ~set ~tag = find t.sets.(set) tag >= 0

let flush t =
  t.last_evicted <- -1;
  Array.iter (fun s -> Array.fill s 0 (Array.length s) (-1)) t.sets

let occupancy t =
  Array.fold_left
    (fun acc s ->
      Array.fold_left (fun acc tag -> if tag >= 0 then acc + 1 else acc) acc s)
    0 t.sets
