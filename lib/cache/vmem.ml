let page_bits = 30
let offset_mask = (1 lsl page_bits) - 1
let offset_of addr = addr land offset_mask

type t = {
  rng : Util.Rng.t;
  mapping : (int, int) Hashtbl.t;  (* virtual page -> physical page *)
  used : (int, unit) Hashtbl.t;  (* physical pages already handed out *)
}

let create ~seed =
  {
    rng = Util.Rng.create (0x9a9e + seed);
    mapping = Hashtbl.create 8;
    used = Hashtbl.create 8;
  }

let physical_page t vpage =
  match Hashtbl.find_opt t.mapping vpage with
  | Some p -> p
  | None ->
      (* Model a machine with 1024 physical 1GB page frames. *)
      let rec pick () =
        let p = Util.Rng.int t.rng 1024 in
        if Hashtbl.mem t.used p then pick () else p
      in
      let p = pick () in
      Hashtbl.replace t.used p ();
      Hashtbl.replace t.mapping vpage p;
      p

let translate t vaddr =
  let vpage = vaddr lsr page_bits in
  (physical_page t vpage lsl page_bits) lor offset_of vaddr
