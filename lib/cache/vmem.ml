let page_bits = 30
let offset_mask = (1 lsl page_bits) - 1
let offset_of addr = addr land offset_mask

(* TLB-style memo in front of the hashtable: a small direct-mapped array of
   (vpage, ppage) pairs.  Mappings are assigned once and never change, so
   the memo can't go stale; it only saves the Hashtbl probe every simulated
   access pays. *)
let tlb_slots = 64
let tlb_mask = tlb_slots - 1

type t = {
  rng : Util.Rng.t;
  mapping : (int, int) Hashtbl.t;  (* virtual page -> physical page *)
  used : (int, unit) Hashtbl.t;  (* physical pages already handed out *)
  tlb_vpage : int array;
  tlb_ppage : int array;
}

let create ~seed =
  {
    rng = Util.Rng.create (0x9a9e + seed);
    mapping = Hashtbl.create 8;
    used = Hashtbl.create 8;
    tlb_vpage = Array.make tlb_slots (-1);
    tlb_ppage = Array.make tlb_slots 0;
  }

let physical_page t vpage =
  match Hashtbl.find_opt t.mapping vpage with
  | Some p -> p
  | None ->
      (* Model a machine with 1024 physical 1GB page frames. *)
      let rec pick () =
        let p = Util.Rng.int t.rng 1024 in
        if Hashtbl.mem t.used p then pick () else p
      in
      let p = pick () in
      Hashtbl.replace t.used p ();
      Hashtbl.replace t.mapping vpage p;
      p

let translate t vaddr =
  let vpage = vaddr lsr page_bits in
  let slot = vpage land tlb_mask in
  let ppage =
    if Array.unsafe_get t.tlb_vpage slot = vpage then
      Array.unsafe_get t.tlb_ppage slot
    else begin
      let p = physical_page t vpage in
      Array.unsafe_set t.tlb_vpage slot vpage;
      Array.unsafe_set t.tlb_ppage slot p;
      p
    end
  in
  (ppage lsl page_bits) lor (vaddr land offset_mask)
