type hit = L1 | L2 | L3 | Dram

type t = {
  geom : Geometry.t;
  l1d : Level.t;
  l2 : Level.t;
  l3 : Level.t array;  (* one Level per slice *)
  slice_masks : int array;  (* hidden XOR-parity hash *)
  l1_sets : int;
  l2_sets : int;
  l3_sets : int;
  line_shift : int;  (* -1 when geom.line is not a power of two *)
  l1_mask : int;  (* set-index masks; -1 = fall back to mod *)
  l2_mask : int;
  prefetch : bool;
}

(* The hidden slice hash: each output bit is the XOR-parity of the physical
   line address masked by a per-bit pattern — the same family as the
   reverse-engineered Intel functions (Apecechea et al., 2015). *)
let make_slice_masks ~seed ~bits =
  let rng = Util.Rng.create (0x51ce + seed) in
  Array.init bits (fun _ ->
      (* Mix plenty of physical-address bits, up to bit 34 of the line id. *)
      Int64.to_int (Int64.logand (Util.Rng.bits64 rng) 0x7_FFFF_FFFFL))

let parity x =
  let x = x lxor (x lsr 32) in
  let x = x lxor (x lsr 16) in
  let x = x lxor (x lsr 8) in
  let x = x lxor (x lsr 4) in
  let x = x lxor (x lsr 2) in
  let x = x lxor (x lsr 1) in
  x land 1

let log2 n =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v / 2) in
  go 0 n

let is_pow2 n = n > 0 && n land (n - 1) = 0

let create ?(slice_seed = 0) ?(prefetch = false) geom =
  let l1_sets = Geometry.sets geom geom.l1d in
  let l2_sets = Geometry.sets geom geom.l2 in
  let l3_sets = Geometry.l3_sets_per_slice geom in
  {
    geom;
    l1d = Level.create ~sets:l1_sets ~ways:geom.l1d.ways;
    l2 = Level.create ~sets:l2_sets ~ways:geom.l2.ways;
    l3 =
      Array.init geom.l3_slices (fun _ ->
          Level.create ~sets:l3_sets ~ways:geom.l3.ways);
    slice_masks = make_slice_masks ~seed:slice_seed ~bits:(log2 geom.l3_slices);
    l1_sets;
    l2_sets;
    l3_sets;
    line_shift = (if is_pow2 geom.line then log2 geom.line else -1);
    l1_mask = (if is_pow2 l1_sets then l1_sets - 1 else -1);
    l2_mask = (if is_pow2 l2_sets then l2_sets - 1 else -1);
    prefetch;
  }

let line t paddr =
  if t.line_shift >= 0 then paddr lsr t.line_shift else paddr / t.geom.line

let l1_set t line = if t.l1_mask >= 0 then line land t.l1_mask else line mod t.l1_sets
let l2_set t line = if t.l2_mask >= 0 then line land t.l2_mask else line mod t.l2_sets

let slice_of_line t line =
  let masks = t.slice_masks in
  let acc = ref 0 in
  for bit = 0 to Array.length masks - 1 do
    acc := !acc lor (parity (line land Array.unsafe_get masks bit) lsl bit)
  done;
  !acc

let ground_truth_slice t paddr = slice_of_line t (line t paddr)
let l3_set t paddr = line t paddr mod t.l3_sets

let latency (geom : Geometry.t) = function
  | L1 -> geom.lat_l1
  | L2 -> geom.lat_l2
  | L3 -> geom.lat_l3
  | Dram -> geom.lat_dram

let rec access_line t line ~allow_prefetch =
  if Level.access t.l1d ~set:(l1_set t line) ~tag:line then L1
  else if Level.access t.l2 ~set:(l2_set t line) ~tag:line then L2
  else begin
    let slice = slice_of_line t line in
    let l3 = t.l3.(slice) in
    let l3_hit = Level.access l3 ~set:(line mod t.l3_sets) ~tag:line in
    (* Inclusive L3: a victim disappears from the inner levels too. *)
    let victim = Level.last_evicted l3 in
    if victim >= 0 then begin
      Level.invalidate t.l1d ~set:(l1_set t victim) ~tag:victim;
      Level.invalidate t.l2 ~set:(l2_set t victim) ~tag:victim
    end;
    (* Next-line prefetch on an L2 miss; the fill itself never recurses. *)
    if t.prefetch && allow_prefetch then
      ignore (access_line t (line + 1) ~allow_prefetch:false);
    if l3_hit then L3 else Dram
  end

let access t paddr = access_line t (line t paddr) ~allow_prefetch:true

let flush t =
  Level.flush t.l1d;
  Level.flush t.l2;
  Array.iter Level.flush t.l3

let invalidate_line t paddr =
  let line = line t paddr in
  Level.invalidate t.l1d ~set:(l1_set t line) ~tag:line;
  Level.invalidate t.l2 ~set:(l2_set t line) ~tag:line;
  let slice = slice_of_line t line in
  Level.invalidate t.l3.(slice) ~set:(line mod t.l3_sets) ~tag:line

let geometry t = t.geom
