(** The cache model consulted by the symbolic-execution engine (§3.3, §4).

    On every symbolic [load]/[store], the model (1) inspects its current
    state, picks the {e worst} concrete address compatible with the pointer's
    constraints — preferring lines whose contention set is closest to
    spilling associativity — and returns the constraint that concretizes the
    pointer; (2) updates its state so future accesses account for it.

    Following the paper, only the L3 is modeled: a tracked line re-accessed
    while resident costs an L3 hit; anything else costs a DRAM access.
    Contention sets bound residency: once a class holds [α] lines, a new
    member evicts the least recently used one.

    Three variants support the ablation study:
    - {!contention}: classes from empirically discovered contention sets —
      the paper's default;
    - {!oracle}: classes from the ground-truth slice hash and set index (what
      a perfect reverse-engineering would give);
    - {!baseline}: no contention knowledge — only cold misses are predicted,
      and symbolic pointers concretize to the first compatible value. *)

type t

type outcome = {
  addr : int;  (** the (possibly just) concretized address *)
  miss : bool;  (** DRAM access predicted *)
  latency : int;  (** cycles for this access *)
  added : Ir.Expr.sexpr option;  (** pointer-concretization constraint *)
}

val contention : Geometry.t -> Contention.t -> t
val oracle : Geometry.t -> slice_of:(int -> int) -> t
(** [slice_of] maps a {e virtual} address to its ground-truth slice (the
    caller bakes in the translation). *)

val baseline : Geometry.t -> t

val access_concrete : t -> int -> t * outcome
(** Account a load/store at a concrete virtual address. *)

val access_symbolic :
  t -> pcs:Ir.Expr.sexpr list -> Ir.Expr.sexpr -> t * outcome
(** Concretize and account a symbolic pointer under the given path
    constraints.  The returned [added] constraint (absent when the pointer
    simplified to a constant) must be appended to the state's path
    constraint. *)

val resident_lines : t -> int
(** Number of lines the model believes are cached (diagnostics). *)

val name : t -> string
