(* The three-step discovery of §3.2.  [S] is kept as a list of virtual
   addresses; probing time is measured on the simulated machine. *)

let probe m s = Probe.probe_time m (Array.of_list s)

(* Step 1: grow S until adding some address A bumps probing time past δ.
   Returns (S including A, A, remaining candidates). *)
let grow m ~delta candidates =
  let rec go s time = function
    | [] -> None
    | a :: rest ->
        let s' = a :: s in
        let time' = probe m s' in
        if time > 0 && time' - time > delta then Some (s', rest)
        else go s' time' rest
  in
  go [] 0 candidates

(* Step 2: shrink S to exactly the α+1 members of the contention set C:
   removing a member of C relieves the thrashing (drop > δ), removing an
   unrelated address does not. *)
let shrink m ~delta s =
  let full_time = probe m s in
  let rec go kept pending time =
    match pending with
    | [] -> kept
    | a :: rest ->
        let s' = kept @ rest in
        let time' = probe m s' in
        if time - time' > delta then go (a :: kept) rest time
        else go kept rest time'
  in
  go [] s full_time

(* Step 3: classify remaining candidates: swapping a member of C for A keeps
   the probing time high iff A also belongs to C. *)
let classify m ~delta core candidates =
  match core with
  | [] -> []
  | victim :: rest ->
      let base_time = probe m core in
      List.filter
        (fun a ->
          let time = probe m (a :: rest) in
          base_time - time <= delta)
        candidates
      |> fun extra -> victim :: rest @ extra

let discover_sets m ~pool ?(max_sets = 64) () =
  let delta = Probe.delta m.Probe.geom in
  let rec loop sets candidates n =
    if n = 0 || List.length candidates <= Geometry.l3_assoc m.Probe.geom then
      List.rev sets
    else
      match grow m ~delta candidates with
      | None -> List.rev sets
      | Some (s, _unused_rest) ->
          let core = shrink m ~delta s in
          if core = [] then List.rev sets
          else
            let others = List.filter (fun a -> not (List.mem a core)) candidates in
            let full_set = classify m ~delta core others in
            let remaining =
              List.filter (fun a -> not (List.mem a full_set)) candidates
            in
            loop (full_set :: sets) remaining (n - 1)
  in
  loop [] (Array.to_list pool) max_sets

type t = {
  alpha : int;
  line : int;
  class_of : (int, int) Hashtbl.t;
  n_classes : int;
}

let consistent ?(slice_seed = 0) ?(pages = 8) ?(reboots = 2) ~geom ~offsets () =
  (* Each run assigns every offset a local set id (or none).  Offsets are
     consistently co-located iff their id vectors across all runs agree. *)
  let runs = ref [] in
  for reboot = 0 to reboots - 1 do
    let m = Probe.machine ~slice_seed ~vmem_seed:(1 + reboot) geom in
    for page = 1 to pages do
      let base = page lsl Vmem.page_bits in
      let pool = Array.map (fun o -> base + o) offsets in
      let sets = discover_sets m ~pool () in
      let ids = Hashtbl.create (Array.length offsets) in
      List.iteri
        (fun id members ->
          List.iter (fun a -> Hashtbl.replace ids (Vmem.offset_of a) id) members)
        sets;
      runs := ids :: !runs
    done
  done;
  let signature o =
    List.map
      (fun ids -> match Hashtbl.find_opt ids o with Some id -> id | None -> -1)
      !runs
  in
  (* Offsets unclassified in any run are dropped; the rest are grouped by
     their cross-run signature. *)
  let groups : (int list, int list) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun o ->
      let s = signature o in
      if not (List.mem (-1) s) then
        let cur = match Hashtbl.find_opt groups s with Some l -> l | None -> [] in
        Hashtbl.replace groups s (o :: cur))
    offsets;
  let class_of = Hashtbl.create (Array.length offsets) in
  let n = ref 0 in
  Hashtbl.iter
    (fun _sig members ->
      if List.length members >= 2 then begin
        List.iter
          (fun o -> Hashtbl.replace class_of (o / geom.line) !n)
          members;
        incr n
      end)
    groups;
  { alpha = Geometry.l3_assoc geom; line = geom.line; class_of; n_classes = !n }

let standard_offsets geom ~count =
  let unit = Geometry.l3_sets_per_slice geom * geom.Geometry.line in
  let page = 1 lsl Vmem.page_bits in
  let spread = max 1 (page / unit / count) in
  Array.init count (fun i -> i * spread * unit)

let class_of_vaddr t vaddr =
  Hashtbl.find_opt t.class_of (Vmem.offset_of vaddr / t.line)

let classes t =
  let acc = Hashtbl.create 16 in
  Hashtbl.iter
    (fun line_id cls ->
      let cur = match Hashtbl.find_opt acc cls with Some l -> l | None -> [] in
      Hashtbl.replace acc cls (line_id * t.line :: cur))
    t.class_of;
  Hashtbl.fold (fun cls members l -> (cls, List.sort compare members) :: l) acc []
  |> List.sort compare

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "castan-contention-sets v1 alpha=%d line=%d classes=%d\n"
        t.alpha t.line t.n_classes;
      Hashtbl.iter
        (fun line_id cls -> Printf.fprintf oc "%d %d\n" (line_id * t.line) cls)
        t.class_of)

exception Parse_error of string

let load_result path =
  let parse ic =
    let lineno = ref 1 in
    let fail reason =
      raise (Parse_error (Printf.sprintf "%s: line %d: %s" path !lineno reason))
    in
    let header =
      try input_line ic with End_of_file -> fail "empty file (missing header)"
    in
    let alpha, line, n_classes =
      try
        Scanf.sscanf header "castan-contention-sets v1 alpha=%d line=%d classes=%d"
          (fun a l c -> (a, l, c))
      with Scanf.Scan_failure _ | Failure _ | End_of_file ->
        fail
          (Printf.sprintf
             "bad header %S (expected \"castan-contention-sets v1 alpha=.. \
              line=.. classes=..\")"
             header)
    in
    if line <= 0 then fail (Printf.sprintf "non-positive line size %d" line);
    let class_of = Hashtbl.create 256 in
    (try
       while true do
         incr lineno;
         let l = input_line ic in
         if String.trim l <> "" then begin
           let offset, cls =
             try Scanf.sscanf l " %d %d" (fun o c -> (o, c))
             with Scanf.Scan_failure _ | Failure _ | End_of_file ->
               fail
                 (Printf.sprintf "malformed entry %S (expected \"offset class\")" l)
           in
           if offset mod line <> 0 then
             fail
               (Printf.sprintf "misaligned offset %d (line size %d)" offset line);
           Hashtbl.replace class_of (offset / line) cls
         end
       done
     with End_of_file -> ());
    { alpha; line; class_of; n_classes }
  in
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match parse ic with
          | t -> Ok t
          | exception Parse_error reason -> Error reason)

let load path =
  match load_result path with
  | Ok t -> t
  | Error reason -> failwith ("Contention.load: " ^ reason)
