module Imap = Map.Make (Int)
module Iset = Set.Make (Int)

(* A class key identifies one contention set instance.  For the empirical
   model the key combines the 1GB page with the discovered class (same page
   offsets only contend when they share a physical page); lines with no
   discovered class get singleton negative keys and thus never contend. *)
type kind =
  | Contention of { sets : Contention.t; members : int list array }
      (* members.(cls) = page offsets of the class, ascending *)
  | Oracle of { slice_of : int -> int }
  | Baseline

type t = {
  kind : kind;
  geom : Geometry.t;
  alpha : int;
  resident : int list Imap.t;  (* class key -> resident lines, MRU first *)
  cached : Iset.t;  (* union of resident lines *)
  touched : Iset.t;  (* every line ever accessed (grows monotonically) *)
}

type outcome = {
  addr : int;
  miss : bool;
  latency : int;
  added : Ir.Expr.sexpr option;
}

let contention geom sets =
  let members = Array.make (max sets.Contention.n_classes 1) [] in
  List.iter
    (fun (cls, offsets) -> members.(cls) <- offsets)
    (Contention.classes sets);
  {
    kind = Contention { sets; members };
    geom;
    alpha = Geometry.l3_assoc geom;
    resident = Imap.empty;
    cached = Iset.empty;
    touched = Iset.empty;
  }

let oracle geom ~slice_of =
  {
    kind = Oracle { slice_of };
    geom;
    alpha = Geometry.l3_assoc geom;
    resident = Imap.empty;
    cached = Iset.empty;
    touched = Iset.empty;
  }

let baseline geom =
  {
    kind = Baseline;
    geom;
    alpha = Geometry.l3_assoc geom;
    resident = Imap.empty;
    cached = Iset.empty;
    touched = Iset.empty;
  }

let name t =
  match t.kind with
  | Contention _ -> "contention-sets"
  | Oracle _ -> "oracle"
  | Baseline -> "baseline"

let line_of t vaddr = vaddr / t.geom.Geometry.line

let class_key t line =
  let vaddr = line * t.geom.Geometry.line in
  match t.kind with
  | Contention { sets; _ } -> (
      match Contention.class_of_vaddr sets vaddr with
      | Some cls -> ((vaddr lsr Vmem.page_bits) * sets.Contention.n_classes) + cls
      | None -> -line - 1)
  | Oracle { slice_of } ->
      let set = line mod Geometry.l3_sets_per_slice t.geom in
      (slice_of vaddr * Geometry.l3_sets_per_slice t.geom) + set
  | Baseline -> -line - 1

let residents t key =
  match Imap.find_opt key t.resident with Some l -> l | None -> []

(* Bring [line] in: MRU-promote on hit, insert + evict beyond α on miss. *)
let touch t line =
  let key = class_key t line in
  let lines = residents t key in
  if List.mem line lines then
    let lines = line :: List.filter (fun l -> l <> line) lines in
    ({ t with resident = Imap.add key lines t.resident;
       touched = Iset.add line t.touched }, false)
  else
    let lines = line :: lines in
    let lines, evicted =
      if List.length lines > t.alpha then
        let rec split acc = function
          | [] -> (List.rev acc, None)
          | [ last ] -> (List.rev acc, Some last)
          | x :: rest -> split (x :: acc) rest
        in
        split [] lines
      else (lines, None)
    in
    let cached = Iset.add line t.cached in
    let cached =
      match evicted with Some e -> Iset.remove e cached | None -> cached
    in
    ({ t with resident = Imap.add key lines t.resident; cached;
       touched = Iset.add line t.touched }, true)

(* Telemetry: the model's own hit/miss balance (the adversarial-search side,
   not the measurement testbed) plus how symbolic pointers were pinned. *)
let m_hit = Obs.Metrics.counter "cache.model.hit"
let m_miss = Obs.Metrics.counter "cache.model.miss"
let m_concretized = Obs.Metrics.counter "cache.model.concretizations"
let m_fallback = Obs.Metrics.counter "cache.model.concretization_fallbacks"

let access_concrete t vaddr =
  let line = line_of t vaddr in
  let t', miss = touch t line in
  Obs.Metrics.incr (if miss then m_miss else m_hit);
  (* Only the level count: the engine's [charge] attributes the latency. *)
  if Obs.Profile.enabled () then
    Obs.Profile.add_level (if miss then Obs.Profile.Dram else Obs.Profile.L3);
  let latency =
    if miss then t.geom.Geometry.lat_dram else t.geom.Geometry.lat_l3
  in
  (t', { addr = vaddr; miss; latency; added = None })

(* ------------------------------------------------------------------ *)
(* Symbolic pointers: candidate generation and scoring                 *)
(* ------------------------------------------------------------------ *)

(* The first domain value landing inside the given line, if any. *)
let value_in_line dom line_base line_size =
  let d : Solver.Domain.t = dom in
  if d.hi < line_base || d.lo >= line_base + line_size then None
  else
    let v =
      if d.lo >= line_base then d.lo
      else d.lo + ((line_base - d.lo + d.step - 1) / d.step * d.step)
    in
    if v < line_base + line_size && v <= d.hi then Some v else None

(* Candidate concrete values for a symbolic pointer, worst first.  Each
   candidate is (value, score); higher scores promise more cache damage:
   a base bonus for lines whose contention set is known at all (only those
   can be pushed past associativity), +2 per resident line already in the
   class (saturating at α, where one more access guarantees an eviction),
   +1 for lines not yet cached. *)
let candidates t dom ~limit =
  let line_size = t.geom.Geometry.line in
  let class_score key =
    let known = match t.kind with
      | Contention _ -> key >= 0
      | Oracle _ -> true
      | Baseline -> false
    in
    let n = List.length (residents t key) in
    (if known then 4 else 0) + (2 * min n t.alpha)
  in
  (* Fresh lines (never accessed) grow the contention group; evicted lines
     would re-miss too but shrink the distinct working set the emitted
     workload cycles over. *)
  let score line =
    class_score (class_key t line)
    + (if Iset.mem line t.cached then 0 else 1)
    + if Iset.mem line t.touched then 0 else 1
  in
  let out = ref [] in
  let count = ref 0 in
  let consider v =
    if !count < limit then begin
      out := (v, score (v / line_size)) :: !out;
      incr count
    end
  in
  (match t.kind with
  | Contention { sets; members } ->
      (* Enumerate lines from discovered classes, most-loaded classes first,
         then fall back to a spread sample of the domain. *)
      let d : Solver.Domain.t = dom in
      let page_lo = d.lo lsr Vmem.page_bits
      and page_hi = d.hi lsr Vmem.page_bits in
      let by_load =
        List.init sets.Contention.n_classes (fun c -> c)
        |> List.map (fun c ->
               let load =
                 (* heaviest page instance of this class *)
                 let rec best p acc =
                   if p > page_hi then acc
                   else
                     let key = (p * sets.Contention.n_classes) + c in
                     best (p + 1) (max acc (List.length (residents t key)))
                 in
                 best page_lo 0
               in
               (c, load))
        |> List.sort (fun (_, a) (_, b) -> compare b a)
      in
      List.iter
        (fun (cls, _) ->
          for page = page_lo to min page_hi (page_lo + 3) do
            List.iter
              (fun off ->
                match
                  value_in_line dom ((page lsl Vmem.page_bits) + off) line_size
                with
                | Some v -> consider v
                | None -> ())
              members.(cls)
          done)
        by_load
  | Oracle { slice_of } ->
      (* Enumerate lines sharing the set index of the most loaded class, a
         set stride apart, keeping only those the hidden hash maps to the
         same slice — what a perfect reverse-engineering permits. *)
      let d : Solver.Domain.t = dom in
      let sets_per_slice = Geometry.l3_sets_per_slice t.geom in
      let target =
        (* most-loaded class, if any; otherwise the class of the domain
           floor so accesses concentrate deterministically *)
        match
          Imap.fold
            (fun key lines best ->
              match best with
              | Some (_, n) when n >= List.length lines -> best
              | _ -> Some (key, List.length lines))
            t.resident None
        with
        | Some (key, _) -> key
        | None -> class_key t (d.lo / line_size)
      in
      let slice = target / sets_per_slice and set = target mod sets_per_slice in
      let first_line = d.lo / line_size in
      let base_line = first_line + ((set - (first_line mod sets_per_slice) + sets_per_slice) mod sets_per_slice) in
      let k = ref 0 in
      while !count < limit && base_line + (!k * sets_per_slice) <= d.hi / line_size do
        let line = base_line + (!k * sets_per_slice) in
        if slice_of (line * line_size) = slice then begin
          match value_in_line dom (line * line_size) line_size with
          | Some v -> consider v
          | None -> ()
        end;
        incr k
      done
  | Baseline -> ());
  (* Spread sample across the domain so there are always candidates. *)
  let d : Solver.Domain.t = dom in
  let card = Solver.Domain.cardinal d in
  let samples = 64 in
  let stride_steps = max 1 (card / samples) in
  let k = ref 0 in
  let taken = ref 0 in
  while !k < card && !taken < samples do
    let v = d.lo + (!k * d.step) in
    out := (v, score (v / line_size)) :: !out;
    incr taken;
    k := !k + stride_steps
  done;
  (* Stable sort, best score first; deterministic tie-break on value. *)
  List.sort
    (fun (v1, s1) (v2, s2) ->
      if s1 <> s2 then compare s2 s1 else compare v1 v2)
    !out

let access_symbolic t ~pcs expr =
  match Solver.Simplify.expr expr with
  | Ir.Expr.Const v ->
      let t', o = access_concrete t v in
      (t', { o with added = None })
  | e ->
      Obs.Metrics.incr m_concretized;
      if Obs.Profile.enabled () then Obs.Profile.add_concretization ();
      let dom = Solver.Solve.domain_of pcs e in
      let cands = candidates t dom ~limit:96 in
      let rec first_compatible tried = function
        | [] -> None
        | (v, _) :: rest ->
            if tried > 24 then None
            else
              let c = Ir.Expr.Cmp (Eq, e, Const v) in
              if Solver.Solve.feasible_cached ~query:c pcs then Some (v, c)
              else first_compatible (tried + 1) rest
      in
      let v, added =
        match first_compatible 0 cands with
        | Some (v, c) -> (v, Some c)
        | None -> (
            (* No scored candidate fits; fall back to whatever a satisfying
               model of the path constraint makes the pointer evaluate to —
               compatible by construction. *)
            Obs.Metrics.incr m_fallback;
            match Solver.Solve.sat pcs with
            | Sat m ->
                let v = Solver.Solve.Model.eval m e in
                (v, Some (Ir.Expr.Cmp (Eq, e, Const v)))
            | Unsat | Unknown ->
                let v = (dom : Solver.Domain.t).lo in
                (v, Some (Ir.Expr.Cmp (Eq, e, Const v))))
      in
      let t', o = access_concrete t v in
      (t', { o with added })

let resident_lines t = Iset.cardinal t.cached
