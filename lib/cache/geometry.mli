(** Cache-hierarchy geometry and cycle costs.

    The default instance mirrors the paper's Intel Xeon E5-2667v2 (Fig. 1):
    L1d 32KiB 8-way, L2 256KiB 8-way, L3 25600KiB 20-way split into 8 slices
    selected by an undocumented hash of the physical address, 64-byte lines,
    3.3GHz. *)

type level = { size_kib : int; ways : int }

type t = {
  line : int;  (** line size in bytes *)
  l1d : level;
  l2 : level;
  l3 : level;
  l3_slices : int;
  lat_l1 : int;  (** load-to-use latencies, cycles *)
  lat_l2 : int;
  lat_l3 : int;
  lat_dram : int;
  clock_ghz : float;
}

val xeon_e5_2667v2 : t

val sets : t -> level -> int
(** Number of sets of a non-sliced level. *)

val l3_sets_per_slice : t -> int
val l3_assoc : t -> int
(** Associativity [α] of the L3: the contention-set spill threshold. *)

val line_of_addr : t -> int -> int
(** [line_of_addr g a] is the line id [a / line]. *)
