(** Probing-time measurement on a simulated machine.

    A machine is a cache hierarchy plus a virtual-memory mapping.  Probing a
    set of virtual addresses replays the paper's measurement: flush, then
    pointer-chase through the set sequentially for a number of iterations,
    summing per-access latencies.  The contention threshold [delta] is the
    extra time one additional DRAM access per iteration costs. *)

type machine = {
  hier : Hierarchy.t;
  vmem : Vmem.t;
  geom : Geometry.t;
}

val machine :
  ?slice_seed:int -> ?vmem_seed:int -> ?prefetch:bool -> Geometry.t -> machine

val iterations : int
(** Probing repetitions per measurement. The paper uses 100 on real
    hardware; the simulator is noise-free so 40 gives the same margins at
    2.5x the speed (δ scales with it automatically). *)

val probe_time : machine -> int array -> int
(** [probe_time m addrs] returns the total cycles to read all [addrs] in
    order, [iterations] times, starting from a flushed cache. *)

val delta : Geometry.t -> int
(** The contention threshold δ. *)

val access_virtual : machine -> int -> Hierarchy.hit
(** A single load at a virtual address (used by the testbed DUT). *)
