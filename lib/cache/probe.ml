type machine = { hier : Hierarchy.t; vmem : Vmem.t; geom : Geometry.t }

let machine ?(slice_seed = 0) ?(vmem_seed = 0) ?(prefetch = false) geom =
  {
    hier = Hierarchy.create ~slice_seed ~prefetch geom;
    vmem = Vmem.create ~seed:vmem_seed;
    geom;
  }

let iterations = 40

let access_virtual m vaddr = Hierarchy.access m.hier (Vmem.translate m.vmem vaddr)

let probe_time m addrs =
  Hierarchy.flush m.hier;
  let total = ref 0 in
  for _ = 1 to iterations do
    Array.iter
      (fun a -> total := !total + Hierarchy.latency m.geom (access_virtual m a))
      addrs
  done;
  !total

(* The paper thresholds on "one extra DRAM access per iteration".  Under LRU,
   spilling a set is more violent than that: cyclically accessing α+1 lines
   of an α-way set makes every one of them miss, so the spill signal is
   ~α·(dram−l3) per iteration.  Meanwhile growing the probe set past the
   L1/L2 associativity also bumps probing time (every line moves from L1/L2
   hits to L3 hits) — a spurious jump the threshold must ignore.  Three DRAM
   deltas sits comfortably between the two. *)
let delta (geom : Geometry.t) = iterations * (geom.lat_dram - geom.lat_l3) * 3
