(** Reverse-engineering L3 cache contention sets (§3.2).

    A contention set is a maximal group of addresses such that bringing
    [α + 1] of them into an empty L3 evicts one, where [α] is the L3
    associativity.  Because the slice-selection algorithm is hidden, the
    discovery is purely empirical: grow a probe set until its probing time
    jumps by more than the contention threshold δ, shrink it to exactly the
    [α + 1] contending members, then classify every remaining candidate by
    substitution.  Never consults {!Hierarchy.ground_truth_slice}.

    Physical indexing makes raw results run-specific, so {!consistent}
    repeats the discovery over several 1GB virtual pages and simulated
    reboots and keeps only the classes of page offsets that co-locate every
    time. *)

val discover_sets :
  Probe.machine -> pool:int array -> ?max_sets:int -> unit -> int list list
(** [discover_sets m ~pool ()] partitions (a subset of) the candidate virtual
    addresses into contention sets, largest signal first.  Addresses whose
    set could not be established are omitted. *)

type t = {
  alpha : int;  (** L3 associativity used during discovery *)
  line : int;
  class_of : (int, int) Hashtbl.t;  (** page-offset line id -> class id *)
  n_classes : int;
}

val consistent :
  ?slice_seed:int ->
  ?pages:int ->
  ?reboots:int ->
  geom:Geometry.t ->
  offsets:int array ->
  unit ->
  t
(** [consistent ~geom ~offsets ()] runs the discovery on [pages] distinct 1GB
    virtual pages across [reboots] simulated reboots (fresh page placements,
    same CPU) and intersects the results.  [offsets] are line-aligned byte
    offsets within a 1GB page.  Defaults: 8 pages, 2 reboots, matching the
    paper's methodology. *)

val standard_offsets : Geometry.t -> count:int -> int array
(** The canonical candidate pool: [count] line-aligned page offsets that all
    share the in-slice L3 set index (stride = sets-per-slice × line size),
    spread evenly across the 1GB page.  Keeping the set index fixed makes the
    only unknown the slice, which is exactly what discovery must recover. *)

val class_of_vaddr : t -> int -> int option
(** Consistent class of a virtual address (by its page offset), if known. *)

val classes : t -> (int * int list) list
(** [(class id, member page offsets)] pairs. *)

val save : t -> string -> unit
(** Persist the discovered sets (discovery is the expensive step of the
    workflow: probe the machine once, analyze many NFs).  Plain text:
    a header line, then one "offset class" pair per line. *)

val load_result : string -> (t, string) result
(** Non-raising loader.  [Error] carries a descriptive message — file, line
    number and reason — for unreadable or malformed files (bad header,
    malformed entry, misaligned offset). *)

val load : string -> t
(** Raising convenience wrapper over {!load_result}.
    @raise Failure on unreadable or malformed files. *)
