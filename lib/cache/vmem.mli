(** Virtual-to-physical translation with 1GB pages.

    Bits 0–29 of an address are the page offset and are identical between
    virtual and physical addresses; the physical page number is assigned
    randomly per process run, which is exactly why contention sets differ
    across runs and must be post-processed for consistency (§3.2). *)

type t

val page_bits : int
(** 30: 1GB pages. *)

val offset_of : int -> int
(** Bits 0-29 of an address. *)

val create : seed:int -> t
(** A fresh process run / reboot: a new random page placement. *)

val translate : t -> int -> int
(** Virtual byte address to physical byte address; the mapping of each 1GB
    virtual page is assigned lazily on first touch. *)

val physical_page : t -> int -> int
(** Physical page number backing the given virtual page number. *)
