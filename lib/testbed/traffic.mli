(** The generic workloads of §5.1.

    - {e 1 Packet}: one packet replayed forever — best-case performance;
    - {e Zipfian}: flows drawn from a Zipf distribution with s = 1.26 (fitted
      to a university traffic capture) — typical real-world traffic;
    - {e UniRand}: uniformly random flows, one per packet — DoS-style
      stress-test traffic;
    - {e UniRand-CASTAN}: UniRand restricted to as many flows as the CASTAN
      workload, for volume-fair comparisons.

    Sizes default to a scaled-down testbed (the simulator executes every
    packet); pass [`Paper] for the paper's exact sizes: 100,005 packets /
    6,674 flows Zipfian, 1,000,472 packets / 1,000,001 flows UniRand. *)

type scale = [ `Quick | `Default | `Paper ]

val zipf_exponent : float
(** 1.26 *)

val one_packet : unit -> Workload.t

val zipfian : ?scale:scale -> seed:int -> unit -> Workload.t
val unirand : ?scale:scale -> seed:int -> unit -> Workload.t

val unirand_castan : seed:int -> flows:int -> Workload.t
(** [flows] packets in [flows] flows, uniform random. *)

val random_packet : Util.Rng.t -> Nf.Packet.t
(** A uniformly random TCP/UDP 5-tuple. *)

val sizes : scale -> [ `Zipf | `Uni ] -> int * int
(** (packets, flows) for each generic workload at a scale. *)

val mix : seed:int -> fraction:float -> Workload.t -> Workload.t -> Workload.t
(** [mix ~fraction adversarial benign] interleaves the two traces, drawing
    from the first with probability [fraction] — the partially-adversarial
    DDoS scenario the paper's §5.5 discusses. *)
