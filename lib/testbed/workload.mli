(** A named packet trace, the unit the traffic generator replays. *)

type t = { name : string; packets : Nf.Packet.t array }

val make : name:string -> Nf.Packet.t list -> t
val length : t -> int

val flows : t -> int
(** Number of distinct 5-tuple flows. *)

val shape : (Nf.Packet.t -> Nf.Packet.t) -> t -> t
(** Apply an NF's workload shaper to every packet (e.g. aim at the LB's
    VIP), keeping the name. *)

val nth_looped : t -> int -> Nf.Packet.t
(** [nth_looped w k] replays the trace in a loop, as the TG does when a PCAP
    is shorter than the experiment. *)

val save_pcap : t -> string -> unit
val load_pcap : name:string -> string -> t
