(* Classic libpcap format, little-endian, linktype 1 (Ethernet). *)

let magic = 0xA1B2C3D4
let frame_len = 60
let eth_header = 14
let ip_header = 20

let set_u16le b off v =
  Bytes.set_uint8 b off (v land 0xFF);
  Bytes.set_uint8 b (off + 1) ((v lsr 8) land 0xFF)

let set_u32le b off v =
  set_u16le b off (v land 0xFFFF);
  set_u16le b (off + 2) ((v lsr 16) land 0xFFFF)

let set_u16be b off v =
  Bytes.set_uint8 b off ((v lsr 8) land 0xFF);
  Bytes.set_uint8 b (off + 1) (v land 0xFF)

let set_u32be b off v =
  set_u16be b off ((v lsr 16) land 0xFFFF);
  set_u16be b (off + 2) (v land 0xFFFF)

let get_u16le b off = Bytes.get_uint8 b off lor (Bytes.get_uint8 b (off + 1) lsl 8)
let get_u32le b off = get_u16le b off lor (get_u16le b (off + 2) lsl 16)
let get_u16be b off = (Bytes.get_uint8 b off lsl 8) lor Bytes.get_uint8 b (off + 1)
let get_u32be b off = (get_u16be b off lsl 16) lor get_u16be b (off + 2)

let ipv4_checksum b ~off =
  let sum = ref 0 in
  for k = 0 to (ip_header / 2) - 1 do
    sum := !sum + get_u16be b (off + (k * 2))
  done;
  let sum = (!sum land 0xFFFF) + (!sum lsr 16) in
  let sum = (sum land 0xFFFF) + (sum lsr 16) in
  lnot sum land 0xFFFF

let frame_of_packet (p : Nf.Packet.t) =
  let b = Bytes.make frame_len '\000' in
  (* Ethernet: locally-administered MACs, IPv4 ethertype. *)
  Bytes.blit_string "\x02\x00\x00\x00\x00\x02" 0 b 0 6;
  Bytes.blit_string "\x02\x00\x00\x00\x00\x01" 0 b 6 6;
  set_u16be b 12 0x0800;
  let ip = eth_header in
  Bytes.set_uint8 b ip 0x45;
  set_u16be b (ip + 2) (frame_len - eth_header);
  Bytes.set_uint8 b (ip + 8) 64 (* TTL *);
  Bytes.set_uint8 b (ip + 9) p.proto;
  set_u32be b (ip + 12) p.src_ip;
  set_u32be b (ip + 16) p.dst_ip;
  set_u16be b (ip + 10) 0;
  set_u16be b (ip + 10) (ipv4_checksum b ~off:ip);
  let l4 = ip + ip_header in
  set_u16be b l4 p.src_port;
  set_u16be b (l4 + 2) p.dst_port;
  (if p.proto = Nf.Packet.udp then
     (* UDP length covers header + payload. *)
     set_u16be b (l4 + 4) (frame_len - l4)
   else if p.proto = Nf.Packet.tcp then begin
     set_u32be b (l4 + 4) 1 (* seq *);
     Bytes.set_uint8 b (l4 + 12) 0x50 (* data offset 5 *);
     Bytes.set_uint8 b (l4 + 13) 0x10 (* ACK *)
   end);
  b

let packet_of_frame b off len =
  if len < eth_header + ip_header + 4 then failwith "Pcap: truncated frame";
  if get_u16be b (off + 12) <> 0x0800 then failwith "Pcap: not IPv4";
  let ip = off + eth_header in
  let ihl = (Bytes.get_uint8 b ip land 0xF) * 4 in
  let proto = Bytes.get_uint8 b (ip + 9) in
  let src_ip = get_u32be b (ip + 12) in
  let dst_ip = get_u32be b (ip + 16) in
  let l4 = ip + ihl in
  let src_port = get_u16be b l4 in
  let dst_port = get_u16be b (l4 + 2) in
  { Nf.Packet.src_ip; dst_ip; proto; src_port; dst_port }

let to_bytes packets =
  let n = List.length packets in
  let b = Bytes.make (24 + (n * (16 + frame_len))) '\000' in
  set_u32le b 0 magic;
  set_u16le b 4 2;
  set_u16le b 6 4;
  set_u32le b 16 65535 (* snaplen *);
  set_u32le b 20 1 (* Ethernet *);
  List.iteri
    (fun k p ->
      let off = 24 + (k * (16 + frame_len)) in
      set_u32le b off (k / 1_000_000);
      set_u32le b (off + 4) (k mod 1_000_000);
      set_u32le b (off + 8) frame_len;
      set_u32le b (off + 12) frame_len;
      Bytes.blit (frame_of_packet p) 0 b (off + 16) frame_len)
    packets;
  b

let of_bytes b =
  if Bytes.length b < 24 then failwith "Pcap: truncated file";
  if get_u32le b 0 <> magic then failwith "Pcap: bad magic (expect LE classic)";
  let rec go off acc =
    if off + 16 > Bytes.length b then List.rev acc
    else
      let incl = get_u32le b (off + 8) in
      if off + 16 + incl > Bytes.length b then failwith "Pcap: truncated record"
      else go (off + 16 + incl) (packet_of_frame b (off + 16) incl :: acc)
  in
  go 24 []

let write path packets =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc (to_bytes packets))

let read path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let b = Bytes.create len in
      really_input ic b 0 len;
      of_bytes b)
