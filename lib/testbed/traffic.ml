type scale = [ `Quick | `Default | `Paper ]

let zipf_exponent = 1.26

let sizes scale kind =
  match (scale, kind) with
  | `Quick, `Zipf -> (2_001, 300)
  | `Quick, `Uni -> (10_047, 10_001)
  | `Default, `Zipf -> (10_005, 1_334)
  | `Default, `Uni -> (100_047, 100_001)
  | `Paper, `Zipf -> (100_005, 6_674)
  | `Paper, `Uni -> (1_000_472, 1_000_001)

let one_packet () = Workload.make ~name:"1 Packet" [ Nf.Packet.make () ]

let random_packet rng =
  Nf.Packet.make
    ~src_ip:(Util.Rng.int rng (1 lsl 32))
    ~dst_ip:(Util.Rng.int rng (1 lsl 32))
    ~proto:(if Util.Rng.int rng 100 < 70 then Nf.Packet.udp else Nf.Packet.tcp)
    ~src_port:(Util.Rng.int rng 65536)
    ~dst_port:(Util.Rng.int rng 65536)
    ()

let zipfian ?(scale = `Default) ~seed () =
  let packets, flows = sizes scale `Zipf in
  let rng = Util.Rng.create (0x21bf + seed) in
  let pool = Array.init flows (fun _ -> random_packet rng) in
  let z = Util.Zipf.create ~s:zipf_exponent ~n:flows in
  let pkts =
    List.init packets (fun _ -> pool.(Util.Zipf.sample z rng - 1))
  in
  Workload.make ~name:"Zipfian" pkts

let unirand ?(scale = `Default) ~seed () =
  let packets, flows = sizes scale `Uni in
  let rng = Util.Rng.create (0x412a + seed) in
  (* One flow per packet up to [flows], then reuse (matching the paper's
     slightly-more-packets-than-flows trace). *)
  let pool = Array.init flows (fun _ -> random_packet rng) in
  let pkts =
    List.init packets (fun k ->
        if k < flows then pool.(k) else pool.(Util.Rng.int rng flows))
  in
  Workload.make ~name:"UniRand" pkts

let unirand_castan ~seed ~flows =
  let rng = Util.Rng.create (0xca57 + seed) in
  Workload.make ~name:"UniRand CASTAN"
    (List.init flows (fun _ -> random_packet rng))

let mix ~seed ~fraction a b =
  assert (fraction >= 0.0 && fraction <= 1.0);
  let rng = Util.Rng.create (0x313c + seed) in
  let n = max (Workload.length a) (Workload.length b) in
  let ca = ref 0 and cb = ref 0 in
  let pkts =
    List.init n (fun _ ->
        if Util.Rng.float rng < fraction then begin
          incr ca;
          Workload.nth_looped a (!ca - 1)
        end
        else begin
          incr cb;
          Workload.nth_looped b (!cb - 1)
        end)
  in
  Workload.make
    ~name:(Printf.sprintf "%.0f%% %s + %s" (fraction *. 100.) a.Workload.name
             b.Workload.name)
    pkts
