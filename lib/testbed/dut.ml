type t = {
  nf : Nf.Nf_def.t;
  compiled : Ir.Compile.t;
  machine : Cache.Probe.machine;
  mem : int Ir.Memory.t ref;
  hooks : Ir.Interp.hooks;
  cycles_acc : int ref;
  misses_acc : int ref;
  pkt_count : int ref;
  mbuf_base : int;
  desc_base : int;
  ddio : bool;
}

type sample = { cycles : int; instrs : int; l3_misses : int; ret : int }

let overhead_instrs = 270
let overhead_cycles = 700

(* The mbuf pool and descriptor ring live outside the NF's address space;
   place them in a high 1GB page of their own. *)
let mbuf_pool_lines = 4096
let desc_ring_lines = 512

let op_cycles weight = max 1 (weight * 3 / 5)

let profile_level = function
  | Cache.Hierarchy.L1 -> Obs.Profile.L1
  | Cache.Hierarchy.L2 -> Obs.Profile.L2
  | Cache.Hierarchy.L3 -> Obs.Profile.L3
  | Cache.Hierarchy.Dram -> Obs.Profile.Dram

let create ?(slice_seed = 0) ?(vmem_seed = 17) ?(geom = Cache.Geometry.xeon_e5_2667v2)
    ?(prefetch = false) ?(ddio = false) nf =
  let machine = Cache.Probe.machine ~slice_seed ~vmem_seed ~prefetch geom in
  let cycles_acc = ref 0 and misses_acc = ref 0 in
  let hooks =
    {
      Ir.Interp.on_access =
        (fun ~addr ~width:_ ~write ->
          let hit = Cache.Probe.access_virtual machine addr in
          let lat = Cache.Hierarchy.latency geom hit in
          cycles_acc := !cycles_acc + lat;
          if hit = Cache.Hierarchy.Dram then incr misses_acc;
          (* Attributes to the site the executor entered for this
             instruction, so replay and symbex profile the same places. *)
          if Obs.Profile.enabled () then
            Obs.Profile.add_access ~write (profile_level hit) ~cycles:lat);
      hash_apply = (fun name key -> (Hashrev.Hashes.lookup name).apply key);
      hash_weight = (fun name -> (Hashrev.Hashes.lookup name).weight);
    }
  in
  {
    nf;
    compiled = Ir.Compile.program nf.Nf.Nf_def.program;
    machine;
    mem = ref (Nf.Nf_def.fresh_memory nf);
    hooks;
    cycles_acc;
    misses_acc;
    pkt_count = ref 0;
    mbuf_base = 40 lsl Cache.Vmem.page_bits;
    desc_base = 41 lsl Cache.Vmem.page_bits;
    ddio;
  }

let geometry t = t.machine.Cache.Probe.geom
let nf t = t.nf
let machine t = t.machine

(* The per-packet DPDK path: poll the descriptor ring, then read the frame
   the NIC just DMA-wrote into the next mbuf (mandatory DRAM trip: the DMA
   invalidated that line). *)
let dpdk_path t =
  let geom = geometry t in
  let k = !(t.pkt_count) in
  let desc = t.desc_base + (k mod desc_ring_lines * geom.Cache.Geometry.line) in
  let mbuf = t.mbuf_base + (k mod mbuf_pool_lines * geom.Cache.Geometry.line) in
  (* Driver overhead outside NF code attributes to a pseudo-function. *)
  if Obs.Profile.enabled () then begin
    Obs.Profile.enter ~func:"<dpdk>" ~pc:0;
    Obs.Profile.add_exec ~instrs:overhead_instrs ~cycles:overhead_cycles
      ~loads:0 ~stores:0
  end;
  let charge vaddr =
    let hit = Cache.Probe.access_virtual t.machine vaddr in
    let lat = Cache.Hierarchy.latency geom hit in
    t.cycles_acc := !(t.cycles_acc) + lat;
    if hit = Cache.Hierarchy.Dram then incr t.misses_acc;
    if Obs.Profile.enabled () then
      Obs.Profile.add_access ~write:false (profile_level hit) ~cycles:lat
  in
  charge desc;
  (* The DMA write lands just before the CPU read.  Without DDIO it goes to
     DRAM and invalidates the line; with DDIO the NIC writes straight into
     the cache, avoiding the previously mandatory miss — which improves all
     workloads the same (the paper's §3.3 point). *)
  let paddr = Cache.Vmem.translate t.machine.Cache.Probe.vmem mbuf in
  if t.ddio then ignore (Cache.Hierarchy.access t.machine.Cache.Probe.hier paddr)
  else Cache.Hierarchy.invalidate_line t.machine.Cache.Probe.hier paddr;
  charge mbuf;
  t.cycles_acc := !(t.cycles_acc) + overhead_cycles

let process t p =
  t.cycles_acc := 0;
  t.misses_acc := 0;
  dpdk_path t;
  incr t.pkt_count;
  let entry = Ir.Cfg.entry_func t.nf.Nf.Nf_def.program in
  let o =
    Ir.Compile.call t.compiled ~mem:t.mem ~hooks:t.hooks "process"
      (Nf.Packet.args_for entry p)
  in
  (* Non-memory work: instruction retirement at the calibrated CPI.  Memory
     latencies were accumulated by the access hook. *)
  let nf_cycles = op_cycles o.Ir.Interp.instrs in
  {
    cycles = !(t.cycles_acc) + nf_cycles;
    instrs = overhead_instrs + o.Ir.Interp.instrs;
    l3_misses = !(t.misses_acc);
    ret = o.Ir.Interp.ret;
  }

let replay t w ~samples =
  let r, dt =
    Obs.Trace.timed "dut.replay"
      ~args:[ ("samples", Obs.Json.Int samples) ]
      (fun () -> Array.init samples (fun k -> process t (Workload.nth_looped w k)))
  in
  if Obs.Profile.enabled () then Obs.Profile.add_timer "replay" dt;
  r
