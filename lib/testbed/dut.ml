type t = {
  nf : Nf.Nf_def.t;
  compiled : Ir.Compile.t;
  (* Resolved once at creation: the entry point's compiled body, its packet-
     field parameter order, and a reusable argument buffer — the per-packet
     path never re-resolves the NF or allocates an argument list. *)
  entry_fn : Ir.Compile.fn;
  entry_fields : Ir.Expr.field array;
  argv : int array;
  machine : Cache.Probe.machine;
  (* Flat mutable memory: replay never needs snapshot/rollback, and the
     persistent overlay's tree descent per access would dominate the
     packet loop. *)
  fmem : Ir.Memory.Flat.t;
  hooks : Ir.Interp.hooks;
  cycles_acc : int ref;
  misses_acc : int ref;
  pkt_count : int ref;
  mbuf_base : int;
  desc_base : int;
  ddio : bool;
}

type sample = { cycles : int; instrs : int; l3_misses : int; ret : int }

let overhead_instrs = 270
let overhead_cycles = 700

(* The mbuf pool and descriptor ring live outside the NF's address space;
   place them in a high 1GB page of their own. *)
let mbuf_pool_lines = 4096
let desc_ring_lines = 512

(* DPDK-style burst size: how many packets one replay dispatch pushes
   through the DUT back to back.  Replay output is identical for every
   value (bursts only group the same per-packet pipeline); the knob exists
   for the perf gate and is recorded in run manifests. *)
let default_batch_ref = ref 32
let set_default_batch b = if b >= 1 then default_batch_ref := b
let default_batch () = !default_batch_ref

let op_cycles weight = max 1 (weight * 3 / 5)

let profile_level = function
  | Cache.Hierarchy.L1 -> Obs.Profile.L1
  | Cache.Hierarchy.L2 -> Obs.Profile.L2
  | Cache.Hierarchy.L3 -> Obs.Profile.L3
  | Cache.Hierarchy.Dram -> Obs.Profile.Dram

let create ?(slice_seed = 0) ?(vmem_seed = 17) ?(geom = Cache.Geometry.xeon_e5_2667v2)
    ?(prefetch = false) ?(ddio = false) nf =
  let machine = Cache.Probe.machine ~slice_seed ~vmem_seed ~prefetch geom in
  let cycles_acc = ref 0 and misses_acc = ref 0 in
  let hooks =
    {
      Ir.Interp.on_access =
        (fun ~addr ~width:_ ~write ->
          let hit = Cache.Probe.access_virtual machine addr in
          let lat = Cache.Hierarchy.latency geom hit in
          cycles_acc := !cycles_acc + lat;
          if hit = Cache.Hierarchy.Dram then incr misses_acc;
          (* Attributes to the site the executor entered for this
             instruction, so replay and symbex profile the same places. *)
          if Obs.Profile.enabled () then
            Obs.Profile.add_access ~write (profile_level hit) ~cycles:lat);
      hash_apply = (fun name key -> (Hashrev.Hashes.lookup name).apply key);
      hash_weight = (fun name -> (Hashrev.Hashes.lookup name).weight);
    }
  in
  let compiled = Ir.Compile.program nf.Nf.Nf_def.program in
  let entry = Ir.Cfg.entry_func nf.Nf.Nf_def.program in
  let entry_fields = Nf.Packet.fields_for entry in
  {
    nf;
    compiled;
    entry_fn = Ir.Compile.lookup compiled "process";
    entry_fields;
    argv = Array.make (Array.length entry_fields) 0;
    machine;
    fmem = Ir.Memory.flat_of_memory (Nf.Nf_def.fresh_memory nf);
    hooks;
    cycles_acc;
    misses_acc;
    pkt_count = ref 0;
    mbuf_base = 40 lsl Cache.Vmem.page_bits;
    desc_base = 41 lsl Cache.Vmem.page_bits;
    ddio;
  }

let geometry t = t.machine.Cache.Probe.geom
let nf t = t.nf
let machine t = t.machine

(* The per-packet DPDK path: poll the descriptor ring, then read the frame
   the NIC just DMA-wrote into the next mbuf (mandatory DRAM trip: the DMA
   invalidated that line). *)
let dpdk_path t =
  let geom = geometry t in
  let k = !(t.pkt_count) in
  let desc = t.desc_base + (k mod desc_ring_lines * geom.Cache.Geometry.line) in
  let mbuf = t.mbuf_base + (k mod mbuf_pool_lines * geom.Cache.Geometry.line) in
  (* Driver overhead outside NF code attributes to a pseudo-function. *)
  if Obs.Profile.enabled () then begin
    Obs.Profile.enter ~func:"<dpdk>" ~pc:0;
    Obs.Profile.add_exec ~instrs:overhead_instrs ~cycles:overhead_cycles
      ~loads:0 ~stores:0
  end;
  let charge vaddr =
    let hit = Cache.Probe.access_virtual t.machine vaddr in
    let lat = Cache.Hierarchy.latency geom hit in
    t.cycles_acc := !(t.cycles_acc) + lat;
    if hit = Cache.Hierarchy.Dram then incr t.misses_acc;
    if Obs.Profile.enabled () then
      Obs.Profile.add_access ~write:false (profile_level hit) ~cycles:lat
  in
  charge desc;
  (* The DMA write lands just before the CPU read.  Without DDIO it goes to
     DRAM and invalidates the line; with DDIO the NIC writes straight into
     the cache, avoiding the previously mandatory miss — which improves all
     workloads the same (the paper's §3.3 point). *)
  let paddr = Cache.Vmem.translate t.machine.Cache.Probe.vmem mbuf in
  if t.ddio then ignore (Cache.Hierarchy.access t.machine.Cache.Probe.hier paddr)
  else Cache.Hierarchy.invalidate_line t.machine.Cache.Probe.hier paddr;
  charge mbuf;
  t.cycles_acc := !(t.cycles_acc) + overhead_cycles

let process t p =
  t.cycles_acc := 0;
  t.misses_acc := 0;
  dpdk_path t;
  incr t.pkt_count;
  Nf.Packet.fill_args t.entry_fields p t.argv;
  let o = Ir.Compile.call_fn_flat t.entry_fn ~fmem:t.fmem ~hooks:t.hooks t.argv in
  (* Non-memory work: instruction retirement at the calibrated CPI.  Memory
     latencies were accumulated by the access hook. *)
  let nf_cycles = op_cycles o.Ir.Interp.instrs in
  {
    cycles = !(t.cycles_acc) + nf_cycles;
    instrs = overhead_instrs + o.Ir.Interp.instrs;
    l3_misses = !(t.misses_acc);
    ret = o.Ir.Interp.ret;
  }

(* Observationally [Array.map (process t)]: the burst only amortizes
   dispatch around the identical per-packet pipeline, which is what makes
   batch size a pure performance knob (pinned by qcheck). *)
let process_burst t pkts =
  let n = Array.length pkts in
  let out =
    Array.make n { cycles = 0; instrs = 0; l3_misses = 0; ret = 0 }
  in
  for i = 0 to n - 1 do
    Array.unsafe_set out i (process t (Array.unsafe_get pkts i))
  done;
  out

let m_replay_packets = Obs.Metrics.counter "replay.packets"
let m_replay_bursts = Obs.Metrics.counter "replay.bursts"
let m_replay_shards = Obs.Metrics.counter "replay.shards"

let replay ?batch t w ~samples =
  let batch = match batch with Some b -> max 1 b | None -> !default_batch_ref in
  let r, dt =
    Obs.Trace.timed "dut.replay"
      ~args:
        [
          ("samples", Obs.Json.Int samples); ("batch", Obs.Json.Int batch);
        ]
      (fun () ->
        let out =
          Array.make samples { cycles = 0; instrs = 0; l3_misses = 0; ret = 0 }
        in
        let burst = ref [||] in
        let k = ref 0 in
        while !k < samples do
          let n = min batch (samples - !k) in
          if Array.length !burst <> n then
            burst := Array.make n (Workload.nth_looped w 0);
          let b = !burst in
          for i = 0 to n - 1 do
            Array.unsafe_set b i (Workload.nth_looped w (!k + i))
          done;
          let s = process_burst t b in
          Array.blit s 0 out !k n;
          Obs.Metrics.incr m_replay_bursts;
          k := !k + n
        done;
        Obs.Metrics.incr ~by:samples m_replay_packets;
        out)
  in
  if Obs.Profile.enabled () then Obs.Profile.add_timer "replay" dt;
  r

(* Shard boundaries depend only on (samples, shards) — never on the job
   count — so the merged stream is bit-identical for every [-j]. *)
let shard_range ~samples ~shards i =
  let base = samples / shards and rem = samples mod shards in
  let lo = (i * base) + min i rem in
  let hi = lo + base + (if i < rem then 1 else 0) in
  (lo, hi)

let replay_sharded ?batch ?(shards = 1) ~make w ~samples =
  if shards <= 1 then replay ?batch (make ~shard:0) w ~samples
  else begin
    (* Each shard is its own simulated core: a fresh DUT (own cache
       hierarchy, own page placement, own descriptor/mbuf rings) replaying
       a contiguous slice of the packet index space; slices are then
       concatenated in shard-index order.  One pool task per shard. *)
    let slices =
      Util.Pool.map
        (fun i ->
          let lo, hi = shard_range ~samples ~shards i in
          let dut = make ~shard:i in
          let shifted =
            {
              Workload.name = w.Workload.name;
              packets =
                Array.init (max 1 (hi - lo)) (fun j ->
                    Workload.nth_looped w (lo + j));
            }
          in
          if hi > lo then replay ?batch dut shifted ~samples:(hi - lo)
          else [||])
        (List.init shards (fun i -> i))
    in
    Obs.Metrics.incr ~by:shards m_replay_shards;
    Array.concat slices
  end
