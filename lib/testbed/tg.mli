(** The traffic generator / sink (the paper's MoonGen box).

    Latency experiments keep at most one outstanding packet, so a packet's
    end-to-end latency is the fixed TG↔DUT path (wire, NIC timestamping, DMA
    — modeled as a seeded noise distribution around 4µs, matching the NOP
    baseline of Fig. 4) plus the DUT's processing time.  Dropped packets are
    still forwarded back and measured, as in §5.1.

    Throughput experiments find the highest offered rate at which the DUT
    drops less than 1% of packets: the replay's recorded per-packet service
    times feed a deterministic-arrival, finite-queue simulation, and the
    rate is bisected. *)

type measurement = {
  workload : string;
  latencies_ns : float array;  (** per sampled packet *)
  samples : Dut.sample array;
}

val measure :
  ?seed:int -> ?samples:int -> ?prefetch:bool -> ?ddio:bool ->
  ?slice_seed:int -> ?shards:int -> ?batch:int -> Nf.Nf_def.t -> Workload.t ->
  measurement
(** Fresh DUT, replay for [samples] packets (default 20,000).  [prefetch]
    and [ddio] configure the DUT machine (both default off); [slice_seed]
    selects the CPU's hidden slice hash (a different value models running
    the workload on a different processor model).  Packet [i]'s TG-path
    noise is drawn from an index-derived RNG stream, so the result is a
    pure function of the arguments.

    [shards] (default 1) splits the replay across per-shard DUTs — shard 0
    keeps the canonical page placement, so [shards = 1] reproduces the
    classic serial replay byte for byte; [batch] overrides the replay burst
    size ({!Dut.default_batch}), with identical output for every value. *)

val measure_all :
  ?seed:int -> ?samples:int -> ?prefetch:bool -> ?ddio:bool ->
  ?slice_seed:int -> ?shards:int -> ?batch:int -> Nf.Nf_def.t ->
  (string * Workload.t) list -> (string * measurement) list
(** [measure_all nf [(label, w); ...]] measures each labeled workload —
    one {!Util.Pool} task per workload, each wrapped in a ["measure"] trace
    span — and returns results in input order.  Each task builds its own
    DUT from the same seeds, so results are identical to mapping {!measure}
    serially. *)

val latency_cdf : measurement -> Util.Stats.cdf
val cycles_cdf : measurement -> Util.Stats.cdf
val median_latency_ns : measurement -> float
val median_instrs : measurement -> int
val median_l3_misses : measurement -> int

val nop_baseline : ?seed:int -> ?samples:int -> unit -> measurement
(** The NOP NF under its own single-packet workload — the baseline curve in
    every latency figure. *)

val deviation_from_nop_ns : measurement -> nop:measurement -> float
(** Median latency deviation (Table 5). *)

val latency_under_load :
  ?queue_depth:int -> rate_mpps:float -> measurement -> Util.Stats.cdf * float
(** Per-packet sojourn-time CDF (ns, queueing included) and loss fraction at
    a fixed offered rate — the head-of-line-blocking view of §5.5's
    partially-adversarial-traffic discussion. *)

val max_throughput_mpps :
  ?queue_depth:int -> ?loss_target:float -> measurement -> float
(** Bisects the offered rate over the measured service times; defaults:
    512-descriptor queue, 1% loss. *)
