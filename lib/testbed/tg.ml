type measurement = {
  workload : string;
  latencies_ns : float array;
  samples : Dut.sample array;
}

(* TG-side fixed path: wire + NIC + DMA + DPDK on both ends, observed by the
   hardware timestamps.  A right-skewed distribution around 4.05µs puts the
   NOP median at ≈4.3µs, as in the paper's figures. *)
let tg_base_ns rng =
  let u = Util.Rng.float rng in
  3980.0 +. (-50.0 *. log (1.0 -. u))

let clock_ghz = 3.3

let measure ?(seed = 42) ?(samples = 20_000) ?(prefetch = false) ?(ddio = false)
    ?(slice_seed = 0) ?(shards = 1) ?batch nf w =
  (* Shard [i] is its own simulated core: shard 0 keeps the canonical page
     placement (so [shards = 1] is bit-for-bit the classic serial replay);
     each further shard draws a fresh placement from an index-derived
     stream, like a separate process pinned to another core. *)
  let shard_root = Util.Rng.create (0xd0 + seed) in
  let make ~shard =
    if shard = 0 then Dut.create ~slice_seed ~prefetch ~ddio nf
    else
      let vmem_seed = Util.Rng.int (Util.Rng.split_ix shard_root shard) 0x3FFFFFFF in
      Dut.create ~slice_seed ~vmem_seed ~prefetch ~ddio nf
  in
  (* Packet [i]'s TG-path noise comes from its own index-derived stream
     ({!Util.Rng.split_ix}), so the latency array depends only on (seed, i)
     — not on how many draws preceded it — which keeps measurements
     identical whether workloads run serially or on pool workers. *)
  let root = Util.Rng.create (0x7b + seed) in
  let dut_samples = Dut.replay_sharded ?batch ~shards ~make w ~samples in
  let latencies =
    Array.mapi
      (fun i (s : Dut.sample) ->
        tg_base_ns (Util.Rng.split_ix root i)
        +. (float_of_int s.cycles /. clock_ghz))
      dut_samples
  in
  { workload = w.Workload.name; latencies_ns = latencies; samples = dut_samples }

let measure_all ?seed ?samples ?prefetch ?ddio ?slice_seed ?shards ?batch nf
    pairs =
  (* One pool task per workload.  The DUT is stateful across packets (cache
     warming), so the parallel grain is a whole measurement, never slices of
     one; each task builds its own DUT from the same seeds.  (Sharded
     replay inside a task runs serial: nested pool maps don't spawn.) *)
  Util.Pool.map
    (fun (label, w) ->
      Obs.Trace.with_span "measure"
        ~args:
          [
            ("workload", Obs.Json.Str label);
            ("nf", Obs.Json.Str nf.Nf.Nf_def.name);
          ]
        (fun () ->
          ( label,
            measure ?seed ?samples ?prefetch ?ddio ?slice_seed ?shards ?batch
              nf w )))
    pairs

let latency_cdf m = Util.Stats.cdf_of_samples m.latencies_ns

let cycles_cdf m =
  Util.Stats.cdf_of_samples
    (Array.map (fun (s : Dut.sample) -> float_of_int s.cycles) m.samples)

let median_latency_ns m = Util.Stats.median (latency_cdf m)

let median_instrs m =
  Util.Stats.median_int (Array.map (fun (s : Dut.sample) -> s.instrs) m.samples)

let median_l3_misses m =
  Util.Stats.median_int
    (Array.map (fun (s : Dut.sample) -> s.l3_misses) m.samples)

let nop_baseline ?(seed = 42) ?(samples = 20_000) () =
  let nop = Nf.Registry.nop () in
  let m = measure ~seed ~samples nop (Traffic.one_packet ()) in
  { m with workload = "NOP" }

let deviation_from_nop_ns m ~nop = median_latency_ns m -. median_latency_ns nop

(* Deterministic arrivals at [rate_pps] against recorded service times;
   finite descriptor queue.  The backlog of departure deadlines lives in a
   fixed circular float array (never more than [queue_depth] entries), not a
   [Queue.t] of boxed floats — the bisection in {!max_throughput_mpps} runs
   this loop a dozen times over every recorded sample, so per-packet
   allocation is what the experiment ends up timing.  [max_dropped < n]
   turns it into a feasibility check with an early exit: the moment the drop
   count exceeds the budget, the verdict is known.  Returns the drop count,
   or [max_dropped + 1] on early exit. *)
let drops_at_rate ~queue_depth ~service_s ?(max_dropped = max_int) rate_pps =
  let n = Array.length service_s in
  let interval = 1.0 /. rate_pps in
  let dropped = ref 0 in
  (* [busy_until] is when the server frees up after finishing everything
     accepted so far; the ring holds the deadlines still waiting or in
     service, oldest at [head]. *)
  let busy_until = ref 0.0 in
  let ring = Array.make (queue_depth + 1) 0.0 in
  let head = ref 0 and len = ref 0 in
  let cap = queue_depth + 1 in
  let k = ref 0 in
  while !k < n && !dropped <= max_dropped do
    let now = float_of_int !k *. interval in
    (* Retire everything that finished by now. *)
    while !len > 0 && ring.(!head) <= now do
      head := if !head + 1 = cap then 0 else !head + 1;
      decr len
    done;
    if !len >= queue_depth then incr dropped
    else begin
      let start = if !busy_until > now then !busy_until else now in
      let finish = start +. service_s.(!k) in
      busy_until := finish;
      let tail = !head + !len in
      ring.(if tail >= cap then tail - cap else tail) <- finish;
      incr len
    end;
    incr k
  done;
  !dropped

(* Per-packet sojourn times (queueing + service) at a fixed offered rate:
   what a partially adversarial stream does to everyone behind it in the
   descriptor queue (head-of-line blocking, §5.5). *)
let latency_under_load ?(queue_depth = 512) ~rate_mpps m =
  let service_s =
    Array.map
      (fun (s : Dut.sample) -> float_of_int s.cycles /. clock_ghz /. 1e9)
      m.samples
  in
  let n = Array.length service_s in
  let interval = 1.0 /. (rate_mpps *. 1e6) in
  let sojourn = ref [] and dropped = ref 0 in
  let busy_until = ref 0.0 in
  let backlog = Queue.create () in
  for k = 0 to n - 1 do
    let now = float_of_int k *. interval in
    while (not (Queue.is_empty backlog)) && Queue.peek backlog <= now do
      ignore (Queue.pop backlog)
    done;
    if Queue.length backlog >= queue_depth then incr dropped
    else begin
      let start = if !busy_until > now then !busy_until else now in
      let finish = start +. service_s.(k) in
      busy_until := finish;
      Queue.push finish backlog;
      sojourn := ((finish -. now) *. 1e9) :: !sojourn
    end
  done;
  let measured = Array.of_list (List.rev !sojourn) in
  let loss = float_of_int !dropped /. float_of_int n in
  (Util.Stats.cdf_of_samples measured, loss)

let max_throughput_mpps ?(queue_depth = 512) ?(loss_target = 0.01) m =
  let service_s =
    Array.map
      (fun (s : Dut.sample) -> float_of_int s.cycles /. clock_ghz /. 1e9)
      m.samples
  in
  let n = Array.length service_s in
  (* The largest drop count whose fraction still passes the target, under
     the same float division the loss fraction would go through — so the
     early-exit feasibility check below agrees bit-for-bit with comparing
     [loss_at_rate] against [loss_target]. *)
  let max_dropped =
    let d = ref (int_of_float (loss_target *. float_of_int n)) in
    while float_of_int (!d + 1) /. float_of_int n <= loss_target do incr d done;
    while !d > 0 && float_of_int !d /. float_of_int n > loss_target do
      decr d
    done;
    !d
  in
  let ok rate =
    drops_at_rate ~queue_depth ~service_s ~max_dropped (rate *. 1e6)
    <= max_dropped
  in
  (* NIC line rate bounds the search; bisect to 0.01 Mpps. *)
  let lo = ref 0.05 and hi = ref 14.88 in
  if ok !hi then !hi
  else begin
    while !hi -. !lo > 0.01 do
      let mid = (!lo +. !hi) /. 2.0 in
      if ok mid then lo := mid else hi := mid
    done;
    !lo
  end
