type t = { name : string; packets : Nf.Packet.t array }

let make ~name packets =
  assert (packets <> []);
  { name; packets = Array.of_list packets }

let length t = Array.length t.packets

let flows t =
  let seen = Hashtbl.create (Array.length t.packets) in
  Array.iter (fun p -> Hashtbl.replace seen (Nf.Packet.flow_key p) ()) t.packets;
  Hashtbl.length seen

let shape f t = { t with packets = Array.map f t.packets }

let nth_looped t k = t.packets.(k mod Array.length t.packets)

let save_pcap t path = Pcap.write path (Array.to_list t.packets)

let load_pcap ~name path = { name; packets = Array.of_list (Pcap.read path) }
