(** The device under test: one NF running over the simulated machine.

    Per packet, the DUT models the full DPDK receive/transmit path — a fixed
    instruction/cycle overhead, a descriptor-ring access, and a DMA write
    landing the frame in a rotating mbuf pool (which costs the mandatory
    DRAM access the paper discusses under DDIO) — then interprets the NF
    concretely, sending every data-structure access through the cache
    hierarchy and charging per-level latencies. *)

type t

val create :
  ?slice_seed:int -> ?vmem_seed:int -> ?geom:Cache.Geometry.t ->
  ?prefetch:bool -> ?ddio:bool -> Nf.Nf_def.t -> t
(** A fresh DUT: cold caches, empty flow state.  [prefetch] enables the
    next-line prefetcher; [ddio] makes the NIC's DMA write allocate into the
    cache instead of invalidating (Intel Data Direct I/O) — both off by
    default, matching the paper's model; the ablation experiments turn them
    on. *)

type sample = {
  cycles : int;  (** total, including the DPDK path *)
  instrs : int;  (** instructions retired, including the DPDK path *)
  l3_misses : int;  (** DRAM accesses *)
  ret : int;  (** the NF's verdict for the packet *)
}

val process : t -> Nf.Packet.t -> sample

val process_burst : t -> Nf.Packet.t array -> sample array
(** DPDK-style burst receive: pushes a batch of packets through the
    compiled NF back to back.  Observationally identical to
    [Array.map (process t)] (pinned by qcheck); exists to amortize
    dispatch and bookkeeping across the burst. *)

val set_default_batch : int -> unit
(** Process-wide replay burst size (default 32; values < 1 are ignored).
    Replay output is bit-identical for every batch size. *)

val default_batch : unit -> int

val replay : ?batch:int -> t -> Workload.t -> samples:int -> sample array
(** Replays the workload (looping as needed) for [samples] packets, in
    bursts of [batch] (default {!default_batch}).  The sample array is
    identical for every [batch]. *)

val shard_range : samples:int -> shards:int -> int -> (int * int)
(** [shard_range ~samples ~shards i] is shard [i]'s half-open packet-index
    slice [\[lo, hi)].  The slices partition [\[0, samples)] contiguously in
    shard order and depend only on [samples] and [shards] — never on the job
    count — which is what makes the sharded merge deterministic. *)

val replay_sharded :
  ?batch:int ->
  ?shards:int ->
  make:(shard:int -> t) ->
  Workload.t ->
  samples:int ->
  sample array
(** Shards the packet index space into [shards] contiguous slices (split
    arithmetic depends only on [samples] and [shards]), replays each slice
    on its own DUT — [make ~shard:i] builds shard [i]'s simulated core,
    typically with a {!Util.Rng.split_ix}-derived page placement — as one
    {!Util.Pool} task per shard, and concatenates the slices in shard-index
    order.  Bit-identical for every job count and batch size; [shards = 1]
    (the default) is exactly [replay (make ~shard:0)]. *)

val overhead_instrs : int
(** The DPDK/driver path: 270 instructions... *)

val overhead_cycles : int
(** ...and 640 cycles per packet (the mandatory mbuf DRAM access adds the
    rest), calibrated so the NOP NF reproduces the
    paper's baselines (271 instructions retired, ≈3.45 Mpps). *)

val geometry : t -> Cache.Geometry.t
val nf : t -> Nf.Nf_def.t

val machine : t -> Cache.Probe.machine
(** The underlying simulated machine (exposed for the oracle cache model and
    diagnostics). *)
