(** The device under test: one NF running over the simulated machine.

    Per packet, the DUT models the full DPDK receive/transmit path — a fixed
    instruction/cycle overhead, a descriptor-ring access, and a DMA write
    landing the frame in a rotating mbuf pool (which costs the mandatory
    DRAM access the paper discusses under DDIO) — then interprets the NF
    concretely, sending every data-structure access through the cache
    hierarchy and charging per-level latencies. *)

type t

val create :
  ?slice_seed:int -> ?vmem_seed:int -> ?geom:Cache.Geometry.t ->
  ?prefetch:bool -> ?ddio:bool -> Nf.Nf_def.t -> t
(** A fresh DUT: cold caches, empty flow state.  [prefetch] enables the
    next-line prefetcher; [ddio] makes the NIC's DMA write allocate into the
    cache instead of invalidating (Intel Data Direct I/O) — both off by
    default, matching the paper's model; the ablation experiments turn them
    on. *)

type sample = {
  cycles : int;  (** total, including the DPDK path *)
  instrs : int;  (** instructions retired, including the DPDK path *)
  l3_misses : int;  (** DRAM accesses *)
  ret : int;  (** the NF's verdict for the packet *)
}

val process : t -> Nf.Packet.t -> sample

val replay : t -> Workload.t -> samples:int -> sample array
(** Replays the workload (looping as needed) for [samples] packets. *)

val overhead_instrs : int
(** The DPDK/driver path: 270 instructions... *)

val overhead_cycles : int
(** ...and 640 cycles per packet (the mandatory mbuf DRAM access adds the
    rest), calibrated so the NOP NF reproduces the
    paper's baselines (271 instructions retired, ≈3.45 Mpps). *)

val geometry : t -> Cache.Geometry.t
val nf : t -> Nf.Nf_def.t

val machine : t -> Cache.Probe.machine
(** The underlying simulated machine (exposed for the oracle cache model and
    diagnostics). *)
