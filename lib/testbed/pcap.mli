(** Reading and writing libpcap capture files.

    CASTAN's output is a PCAP file that MoonGen replays at the traffic
    generator; this module produces byte-compatible classic (2.4) captures
    with Ethernet/IPv4/UDP-or-TCP frames, and parses them back.  IPv4 header
    checksums are computed for real — the files load in standard tools. *)

val write : string -> Nf.Packet.t list -> unit
(** 60-byte frames, one per packet, microsecond timestamps 1µs apart.
    @raise Sys_error on I/O failure. *)

val read : string -> Nf.Packet.t list
(** Parses frames back to 5-tuples.
    @raise Failure on malformed files or non-IPv4 frames. *)

val to_bytes : Nf.Packet.t list -> Bytes.t
val of_bytes : Bytes.t -> Nf.Packet.t list

val ipv4_checksum : Bytes.t -> off:int -> int
(** One's-complement sum over the 20-byte header at [off] (checksum field
    zeroed by the caller or included — standard semantics). *)
