type t = { lo : int; hi : int; step : int }

(* Bounds are kept well inside OCaml int range so arithmetic on them cannot
   overflow when two domain bounds are combined. *)
let bound = 1 lsl 55

let clamp v = if v > bound then bound else if v < -bound then -bound else v

(* Saturating arithmetic: domain bounds must never wrap around, or intervals
   invert and every downstream judgement is garbage. *)
let sat_mul a b =
  if a = 0 || b = 0 then 0
  else if abs a > bound / abs b then if (a > 0) = (b > 0) then bound else -bound
  else a * b

let sat_shl a k = sat_mul a (1 lsl min k 58)

let make ~lo ~hi ~step =
  let lo = clamp lo and hi = clamp hi in
  assert (lo <= hi);
  let step = max step 1 in
  let hi = lo + ((hi - lo) / step * step) in
  { lo; hi; step }

let const c = make ~lo:c ~hi:c ~step:1
let interval ~lo ~hi = make ~lo ~hi ~step:1
let of_width w = make ~lo:0 ~hi:((1 lsl w) - 1) ~step:1
(* [top] must contain negative values: the bitwise fallbacks below reach for
   it when an operand may be negative, and an interval excluding the true
   value turns the Lt/Le pruning in Solve unsound. *)
let top = make ~lo:(-bound) ~hi:bound ~step:1

let is_const d = if d.lo = d.hi then Some d.lo else None
let mem d v = v >= d.lo && v <= d.hi && (v - d.lo) mod d.step = 0
let cardinal d = ((d.hi - d.lo) / d.step) + 1

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let join a b =
  let step = gcd (gcd a.step b.step) (abs (a.lo - b.lo)) in
  make ~lo:(min a.lo b.lo) ~hi:(max a.hi b.hi) ~step:(max step 1)

(* Extended gcd: egcd a b = (g, x, y) with a*x + b*y = g. *)
let rec egcd a b = if b = 0 then (a, 1, 0) else
  let g, x, y = egcd b (a mod b) in
  (g, y, x - (a / b * y))

(* Exact intersection of two arithmetic progressions (CRT).  Exactness
   matters: the symbolic engine relies on an empty meet to reject
   contradictory pointer concretizations. *)
let meet a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo > hi then None
  else
    let g, p, _q = egcd a.step b.step in
    if (b.lo - a.lo) mod g <> 0 then None
    else if a.step / g > (1 lsl 60) / b.step then
      (* lcm would overflow; fall back to a sound over-approximation. *)
      Some (make ~lo ~hi ~step:g)
    else
      let lcm = a.step / g * b.step in
      (* x ≡ a.lo (mod a.step) and x ≡ b.lo (mod b.step):
         x = a.lo + a.step * t with t ≡ (b.lo - a.lo)/g * p (mod b.step/g) *)
      let m2 = b.step / g in
      let t0 = ((b.lo - a.lo) / g * p) mod m2 in
      let x0 = a.lo + (a.step * (((t0 mod m2) + m2) mod m2)) in
      (* x0 is the smallest solution >= a.lo; lift it to >= lo. *)
      let x =
        if x0 >= lo then x0 else x0 + ((lo - x0 + lcm - 1) / lcm * lcm)
      in
      if x > hi then None else Some (make ~lo:x ~hi ~step:lcm)

let nonneg d = d.lo >= 0

(* Smallest all-ones mask covering hi, for bitwise over-approximations. *)
let mask_up v =
  let rec go m = if m >= v then m else go ((m lsl 1) lor 1) in
  if v <= 0 then 0 else go 1

let unop (op : Ir.Expr.unop) d =
  match op with
  | Neg -> make ~lo:(-d.hi) ~hi:(-d.lo) ~step:d.step
  | Bnot -> make ~lo:(lnot d.hi) ~hi:(lnot d.lo) ~step:1

(* Singleton operands do not disturb the other side's stride. *)
let sum_step a b =
  if a.lo = a.hi then b.step
  else if b.lo = b.hi then a.step
  else max (gcd a.step b.step) 1

let binop (op : Ir.Expr.binop) a b =
  match op with
  | Add -> make ~lo:(a.lo + b.lo) ~hi:(a.hi + b.hi) ~step:(sum_step a b)
  | Sub -> make ~lo:(a.lo - b.hi) ~hi:(a.hi - b.lo) ~step:(sum_step a b)
  | Mul -> (
      match (is_const a, is_const b) with
      | Some k, _ when k >= 0 ->
          make ~lo:(sat_mul k b.lo) ~hi:(sat_mul k b.hi)
            ~step:(max (sat_mul k b.step) 1)
      | _, Some k when k >= 0 ->
          make ~lo:(sat_mul k a.lo) ~hi:(sat_mul k a.hi)
            ~step:(max (sat_mul k a.step) 1)
      | _ ->
          if nonneg a && nonneg b then
            make ~lo:(sat_mul a.lo b.lo) ~hi:(sat_mul a.hi b.hi) ~step:1
          else top)
  | Div -> (
      match is_const b with
      | Some k when k > 0 -> make ~lo:(a.lo / k) ~hi:(a.hi / k) ~step:1
      | _ -> if nonneg a then make ~lo:0 ~hi:a.hi ~step:1 else top)
  | Rem -> (
      match is_const b with
      | Some k when k > 0 ->
          if nonneg a && a.hi < k then a
          else if nonneg a && a.step mod k = 0 then
            (* Every member is congruent to lo mod k. *)
            const (a.lo mod k)
          else make ~lo:0 ~hi:(k - 1) ~step:1
      | _ -> if nonneg a then make ~lo:0 ~hi:a.hi ~step:1 else top)
  | And -> (
      match (is_const a, is_const b) with
      | Some ka, Some kb -> const (ka land kb)
      | _ ->
          if nonneg a && nonneg b then make ~lo:0 ~hi:(min a.hi b.hi) ~step:1
          else top)
  | Or ->
      (* For non-negative x, y: x lor y >= max x y. *)
      if nonneg a && nonneg b then
        make ~lo:(max a.lo b.lo) ~hi:(mask_up a.hi lor mask_up b.hi) ~step:1
      else top
  | Xor ->
      if nonneg a && nonneg b then
        make ~lo:0 ~hi:(mask_up a.hi lor mask_up b.hi) ~step:1
      else top
  | Shl -> (
      match is_const b with
      | Some k when k >= 0 && k < 55 ->
          make ~lo:(sat_shl a.lo k) ~hi:(sat_shl a.hi k)
            ~step:(max (min (sat_shl a.step k) bound) 1)
      | _ -> top)
  | Lshr -> (
      match is_const b with
      | Some k when k >= 0 && nonneg a ->
          let step = if a.step land ((1 lsl k) - 1) = 0 then max (a.step lsr k) 1 else 1 in
          make ~lo:(a.lo lsr k) ~hi:(a.hi lsr k) ~step
      | _ -> if nonneg a then make ~lo:0 ~hi:a.hi ~step:1 else top)

let cmp = make ~lo:0 ~hi:1 ~step:1

let refine_le d c =
  if c < d.lo then None
  else if c >= d.hi then Some d
  else Some (make ~lo:d.lo ~hi:c ~step:d.step)

let refine_ge d c =
  if c > d.hi then None
  else if c <= d.lo then Some d
  else
    (* Align the new lower bound up to the stride grid. *)
    let lo = d.lo + ((c - d.lo + d.step - 1) / d.step * d.step) in
    if lo > d.hi then None else Some (make ~lo ~hi:d.hi ~step:d.step)

let iter d ?(limit = 1_000_000) f =
  let n = min limit (cardinal d) in
  for k = 0 to n - 1 do
    f (d.lo + (k * d.step))
  done

let sample d rng =
  let n = cardinal d in
  if n = 1 then d.lo else d.lo + (Util.Rng.int rng n * d.step)

let pp ppf d =
  if d.lo = d.hi then Format.fprintf ppf "{%d}" d.lo
  else Format.fprintf ppf "[%d..%d /%d]" d.lo d.hi d.step
