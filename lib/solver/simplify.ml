open Ir.Expr

(* 0/1-valued expressions: comparisons, and boolean combinations thereof. *)
let rec is_boolean = function
  | Cmp _ -> true
  | Const (0 | 1) -> true
  | Binop ((And | Or | Xor), a, b) -> is_boolean a && is_boolean b
  | Ite (_, a, b) -> is_boolean a && is_boolean b
  | _ -> false

let rec expr (e : sexpr) : sexpr =
  match e with
  | Const _ | Leaf _ -> e
  | Unop (op, a) -> (
      match expr a with
      | Const c -> Const (apply_unop op c)
      | Unop (Neg, inner) when op = Neg -> inner
      | Unop (Bnot, inner) when op = Bnot -> inner
      | a' -> Unop (op, a'))
  | Binop (op, a, b) -> binop op (expr a) (expr b)
  | Cmp (op, a, b) -> cmp op (expr a) (expr b)
  | Ite (c, a, b) -> (
      match expr c with
      | Const 0 -> expr b
      | Const _ -> expr a
      | c' ->
          let a' = expr a and b' = expr b in
          if a' = b' then a' else Ite (c', a', b'))

and binop op a b : sexpr =
  match (op, a, b) with
  | _, Const x, Const y when not ((op = Div || op = Rem) && y = 0) ->
      Const (apply_binop op x y)
  | Add, x, Const 0 | Add, Const 0, x -> x
  | Sub, x, Const 0 -> x
  | Sub, x, y when x = y -> Const 0
  | Mul, _, Const 0 | Mul, Const 0, _ -> Const 0
  | Mul, x, Const 1 | Mul, Const 1, x -> x
  | Div, x, Const 1 -> x
  | And, _, Const 0 | And, Const 0, _ -> Const 0
  | And, x, y when x = y -> x
  | Or, x, Const 0 | Or, Const 0, x -> x
  | Or, x, y when x = y -> x
  | Xor, x, y when x = y -> Const 0
  | Xor, x, Const 0 | Xor, Const 0, x -> x
  | Shl, x, Const 0 | Lshr, x, Const 0 -> x
  | Shl, Const 0, _ | Lshr, Const 0, _ -> Const 0
  (* Collapse mask chains: (x & m1) & m2 = x & (m1 & m2). *)
  | And, Binop (And, x, Const m1), Const m2 -> binop And x (Const (m1 land m2))
  (* Reassociate constant addition: (x + k1) + k2 = x + (k1+k2). *)
  | Add, Binop (Add, x, Const k1), Const k2 -> binop Add x (Const (k1 + k2))
  | Add, Const k1, Binop (Add, x, Const k2) -> binop Add x (Const (k1 + k2))
  | _ -> Binop (op, a, b)

and cmp op a b : sexpr =
  match (op, a, b) with
  | _, Const x, Const y -> Const (if apply_cmp op x y then 1 else 0)
  | Eq, x, y when x = y -> Const 1
  | (Ne | Lt), x, y when x = y -> Const 0
  | Le, x, y when x = y -> Const 1
  (* (bool == 0) is logical negation; push it inward. *)
  | Eq, inner, Const 0 when is_boolean inner -> negate_simplified inner
  | Eq, Const 0, inner when is_boolean inner -> negate_simplified inner
  | Ne, inner, Const 0 when is_boolean inner -> inner
  | Ne, Const 0, inner when is_boolean inner -> inner
  (* Normalize constants to the right for Eq/Ne. *)
  | (Eq | Ne), Const c, x -> Cmp (op, x, Const c)
  | _ -> Cmp (op, a, b)

(* Negation of an already-simplified boolean expression. *)
and negate_simplified (e : sexpr) : sexpr =
  match e with
  | Const 0 -> Const 1
  | Const _ -> Const 0
  | Cmp (Eq, a, b) -> Cmp (Ne, a, b)
  | Cmp (Ne, a, b) -> Cmp (Eq, a, b)
  | Cmp (Lt, a, b) -> Cmp (Le, b, a)
  | Cmp (Le, a, b) -> Cmp (Lt, b, a)
  | other -> Cmp (Eq, other, Const 0)

let negate e = negate_simplified (expr e)
