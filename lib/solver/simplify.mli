(** Algebraic simplification of symbolic expressions.

    Keeps the expressions produced by symbolic execution small: constant
    folding, neutral/absorbing elements, double negation, comparison
    canonicalization.  Semantics-preserving: for every leaf assignment the
    simplified expression evaluates to the same value (a qcheck property in
    the test suite). *)

val expr : Ir.Expr.sexpr -> Ir.Expr.sexpr

val negate : Ir.Expr.sexpr -> Ir.Expr.sexpr
(** Logical negation of a 0/1-valued expression, pushed through comparisons
    where possible ([negate (a < b)] is [b <= a]). *)

val is_boolean : Ir.Expr.sexpr -> bool
(** Conservatively recognizes 0/1-valued expressions. *)
