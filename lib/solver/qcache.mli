(** Canonicalized query cache for feasibility checks.

    Sits between the symbolic-execution hot path and the solver: sliced
    feasibility queries (see {!Slice}) are looked up before any solver work.
    Three answer paths, in order of cost:

    - {e exact hit}: the query's canonical shape — the simplified constraint
      list in its original order, symbols renamed to dense ids in
      first-occurrence order, widths preserved — matches a cached entry, so
      structurally identical queries hit even across packets (packet 2's
      constraint cluster is an alpha-renaming of packet 1's).  A cached
      satisfying assignment is translated back through the query's own
      symbols and re-verified by evaluation before being trusted; a cached
      [Unsat] is trusted because with order preserved the solver's verdict
      is a deterministic function of the shape (its Unsat proofs process
      constraints in list order and are invariant under injective
      width-preserving renaming).
    - {e subset/superset} (the KLEE counterexample-cache rules): a cached
      assignment that satisfies the query proves sat — candidates are found
      through a per-constraint index, so this fires when the query is a
      subset of a cached satisfiable set; a cached unsatisfiable set that is
      an {e order-preserving subsequence} of the query proves the query
      unsat (interleaving extra constraints only adds monotone knowledge to
      the propagator, so the cached set's contradiction still fires;
      reordering is never assumed, since it can flip provability).
    - {e model reuse}: the most recent satisfying assignment is evaluated
      against the query — pointer-fork enumeration asks about N sibling
      constraints under one path condition, and one model frequently
      satisfies several of them.

    Every [`Sat] answer is certified by evaluating the actual query under
    the proposed assignment, so a wrong cache entry (or hash collision) can
    never produce a wrong positive; [`Unsat] answers rest on the two
    invariants above.  Lookups draw no randomness and never mutate solver
    state, so cached and uncached runs produce identical verdicts.

    The cache is process-ambient like {!Obs.Metrics}: entries are cleared
    at the start of every exploration ({!clear}) so results never depend on
    what ran earlier in the process; cumulative statistics survive for
    run manifests. *)

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Default [true]. Disabling makes {!find} answer [`Unknown] and every
    [store_*]/[note_*] a no-op, restoring the pre-cache solver behaviour
    exactly ([--no-solver-cache]). *)

val clear : unit -> unit
(** Drops all entries and the last-model slot. Statistics are preserved. *)

type model = (Ir.Expr.sym * int) list
(** A satisfying assignment as bindings; unbound symbols read as 0 (the
    solver's own convention for unconstrained symbols). *)

val find : Ir.Expr.sexpr list -> [ `Sat | `Unsat | `Unknown ]
(** [find cs] answers the satisfiability of the conjunction [cs]: the
    simplified constraints in their original solver order, trivially-true
    ones dropped ([Solve.feasible_cached] builds this).  Order matters and
    is part of the cache key.  [`Unknown] means the caller must consult the
    solver; hit/miss statistics are recorded here. *)

val store_sat : Ir.Expr.sexpr list -> model -> unit
(** Record a solver-verified satisfying assignment for [cs] (same
    normalization contract as {!find}); also seeds the model-reuse slot. *)

val store_unsat : Ir.Expr.sexpr list -> unit
(** Record a solver-proved unsatisfiable set. *)

val note_dropped : int -> unit
(** Account constraints removed by slicing (for the
    [solver.slice.constraints_dropped] counter). *)

type stats = {
  queries : int;  (** [find] calls while enabled *)
  hits : int;  (** exact canonical hits (sat or unsat) *)
  subset_hits : int;  (** subset-sat and superset-unsat answers *)
  model_reuse : int;  (** last-model fast-path answers *)
  misses : int;  (** fell through to the solver *)
  constraints_dropped : int;  (** slicing total via {!note_dropped} *)
  evictions : int;  (** whole-cache flushes on overflow *)
}

val stats : unit -> stats
(** Cumulative since process start (or {!reset_stats}); {!clear} does not
    zero these. *)

val reset_stats : unit -> unit
