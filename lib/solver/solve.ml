open Ir.Expr

module SymMap = Map.Make (struct
  type t = sym

  let compare = compare_sym
end)

module Model = struct
  type t = int SymMap.t

  let empty = SymMap.empty
  let find m s = SymMap.find_opt s m
  let get m s = match SymMap.find_opt s m with Some v -> v | None -> 0
  let add = SymMap.add
  let of_list l = List.fold_left (fun m (s, v) -> SymMap.add s v m) empty l
  let bindings = SymMap.bindings
  let eval m e = eval ~leaf:(get m) e

  let pp ppf m =
    SymMap.iter (fun s v -> Format.fprintf ppf "%a = %d@ " pp_sym s v) m
end

type verdict = Sat of Model.t | Unsat | Unknown

let check m cs =
  try List.for_all (fun c -> Model.eval m c <> 0) cs
  with Division_by_zero -> false

let syms_of cs =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  List.iter
    (iter_leaves (fun s ->
         if not (Hashtbl.mem seen s) then begin
           Hashtbl.add seen s ();
           acc := s :: !acc
         end))
    cs;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Propagation: turn constraints into per-symbol knowledge.            *)
(* ------------------------------------------------------------------ *)

exception Contradiction

type info = {
  known_mask : int;  (* bits whose value is forced *)
  known_value : int;  (* value of those bits; subset of known_mask *)
  dom : Domain.t;  (* interval knowledge *)
}

type store = {
  mutable infos : info SymMap.t;
  mutable residual : sexpr list;  (* constraints we could not decompose *)
  mutable changed : bool;
}

let width_mask w = if w >= 62 then -1 else (1 lsl w) - 1

let initial_info s =
  let w = sym_width s in
  { known_mask = 0; known_value = 0; dom = Domain.of_width w }

let get_info st s =
  match SymMap.find_opt s st.infos with
  | Some i -> i
  | None -> initial_info s

let set_info st s i =
  st.infos <- SymMap.add s i st.infos;
  st.changed <- true

let set_bits st s ~mask ~value =
  let w = sym_width s in
  let wm = width_mask w in
  if value land lnot mask <> 0 then raise Contradiction;
  (* Forcing bits beyond the symbol's width to 1 is impossible. *)
  if value land lnot wm <> 0 then raise Contradiction;
  let mask = mask land wm in
  let value = value land wm in
  let i = get_info st s in
  let overlap = i.known_mask land mask in
  if i.known_value land overlap <> value land overlap then raise Contradiction;
  let known_mask = i.known_mask lor mask in
  let known_value = i.known_value lor value in
  if known_mask <> i.known_mask || known_value <> i.known_value then
    set_info st s { i with known_mask; known_value }

let refine_dom st s refine =
  let i = get_info st s in
  match refine i.dom with
  | None -> raise Contradiction
  | Some d -> if d <> i.dom then set_info st s { i with dom = d }

(* assert e = c, decomposing through invertible operations *)
let rec propagate_eq st (e : sexpr) c =
  match e with
  | Const k -> if k <> c then raise Contradiction
  | Leaf s ->
      let w = sym_width s in
      if c land lnot (width_mask w) <> 0 || c < 0 then raise Contradiction;
      set_bits st s ~mask:(width_mask w) ~value:c;
      refine_dom st s (fun d -> Domain.meet d (Domain.const c))
  | Binop (Add, x, Const k) | Binop (Add, Const k, x) ->
      propagate_eq st x (c - k)
  | Binop (Sub, x, Const k) -> propagate_eq st x (c + k)
  | Binop (Sub, Const k, x) -> propagate_eq st x (k - c)
  | Binop (Mul, x, Const k) when k > 0 ->
      if c mod k = 0 then propagate_eq st x (c / k) else raise Contradiction
  | Binop (Mul, Const k, x) when k > 0 ->
      if c mod k = 0 then propagate_eq st x (c / k) else raise Contradiction
  | Binop (Shl, x, Const k) when k >= 0 ->
      if c land ((1 lsl k) - 1) <> 0 then raise Contradiction
      else propagate_eq st x (c asr k)
  | Binop (Lshr, x, Const k) when k >= 0 ->
      set_bits_expr st x ~mask:(lnot ((1 lsl k) - 1)) ~value:(c lsl k)
  | Binop (And, x, Const m) | Binop (And, Const m, x) ->
      if c land lnot m <> 0 then raise Contradiction
      else set_bits_expr st x ~mask:m ~value:c
  | Binop (Xor, x, Const m) | Binop (Xor, Const m, x) ->
      propagate_eq st x (c lxor m)
  | Binop (Or, x, Const m) | Binop (Or, Const m, x) ->
      if c land m <> m then raise Contradiction
      else set_bits_expr st x ~mask:(lnot m) ~value:(c land lnot m)
  | Binop ((Or | Xor), a, b) ->
      (* Field packing: disjoint possible-bits lets us split the equality
         (xor coincides with or on disjoint bits). *)
      let ma = possible_mask st a and mb = possible_mask st b in
      if ma land mb = 0 then begin
        if c land lnot (ma lor mb) <> 0 then raise Contradiction;
        propagate_eq st a (c land ma);
        propagate_eq st b (c land mb)
      end
      else residual st (Cmp (Eq, e, Const c))
  | Binop (Rem, x, Const m) when m > 0 ->
      if c < 0 || c >= m then raise Contradiction
      else refine_congruence st x ~modulus:m ~rem:c
  | Cmp _ ->
      if c = 1 then assert_true st e
      else if c = 0 then assert_true st (Simplify.negate e)
      else raise Contradiction
  | Ite (cond, Const a, Const b) ->
      let can_a = a = c and can_b = b = c in
      if can_a && not can_b then assert_true st cond
      else if can_b && not can_a then assert_true st (Simplify.negate cond)
      else if not (can_a || can_b) then raise Contradiction
  | _ -> residual st (Cmp (Eq, e, Const c))

(* assert (e & mask) has the given bit values *)
and set_bits_expr st (e : sexpr) ~mask ~value =
  let value = value land mask in
  match e with
  | Leaf s -> set_bits st s ~mask ~value
  | Const k -> if k land mask <> value then raise Contradiction
  | Binop (Shl, x, Const k) when k >= 0 ->
      if value land ((1 lsl k) - 1) <> 0 then raise Contradiction;
      set_bits_expr st x ~mask:(mask asr k) ~value:(value asr k)
  | Binop (Lshr, x, Const k) when k >= 0 ->
      set_bits_expr st x ~mask:(mask lsl k) ~value:(value lsl k)
  | Binop (And, x, Const m) | Binop (And, Const m, x) ->
      (* Result bits where m is 0 are 0. *)
      if value land mask land lnot m <> 0 then raise Contradiction;
      set_bits_expr st x ~mask:(mask land m) ~value:(value land m)
  | Binop (Xor, x, Const k) | Binop (Xor, Const k, x) ->
      set_bits_expr st x ~mask ~value:((value lxor k) land mask)
  | Binop (Or, x, Const k) | Binop (Or, Const k, x) ->
      (* Result bits where k is 1 are 1. *)
      if lnot value land mask land k <> 0 then raise Contradiction;
      set_bits_expr st x ~mask:(mask land lnot k) ~value:(value land lnot k)
  | Binop (Add, x, Const k) when mask land (mask + 1) = 0 && mask > 0 ->
      (* Low-contiguous mask: (x + k) mod 2^n is known — a congruence. *)
      let modulus = mask + 1 in
      refine_congruence st x ~modulus
        ~rem:(((value - k) mod modulus + modulus) mod modulus)
  | _ -> residual st (Cmp (Eq, Binop (And, e, Const mask), Const value))

(* assert e ≡ rem (mod modulus), pushing through +/- constants *)
and refine_congruence st (e : sexpr) ~modulus ~rem =
  let norm v = ((v mod modulus) + modulus) mod modulus in
  match e with
  | Const k -> if norm k <> rem then raise Contradiction
  | Leaf s ->
      let w = sym_width s in
      let wm = width_mask w in
      if rem > wm then raise Contradiction;
      refine_dom st s (fun d ->
          Domain.meet d (Domain.make ~lo:rem ~hi:(max rem wm) ~step:modulus))
  | Binop (Add, x, Const k) | Binop (Add, Const k, x) ->
      refine_congruence st x ~modulus ~rem:(norm (rem - k))
  | Binop (Sub, x, Const k) -> refine_congruence st x ~modulus ~rem:(norm (rem + k))
  | Binop (Mul, x, Const k) when k > 0 && modulus mod k = 0 ->
      if rem mod k <> 0 then raise Contradiction
      else refine_congruence st x ~modulus:(modulus / k) ~rem:(rem / k)
  | _ -> residual st (Cmp (Eq, Binop (Rem, e, Const modulus), Const rem))

and assert_true st (e : sexpr) =
  match e with
  | Const 0 -> raise Contradiction
  | Const _ -> ()
  | Cmp (Eq, x, Const c) | Cmp (Eq, Const c, x) -> propagate_eq st x c
  | Cmp (Le, x, Const c) -> refine_expr_le st x c
  | Cmp (Lt, x, Const c) -> refine_expr_le st x (c - 1)
  | Cmp (Le, Const c, x) -> refine_expr_ge st x c
  | Cmp (Lt, Const c, x) -> refine_expr_ge st x (c + 1)
  | Binop (And, a, b) when Simplify.is_boolean a && Simplify.is_boolean b ->
      assert_true st a;
      assert_true st b
  | Cmp (Lt, a, b) ->
      (* Interval check on fully symbolic comparisons: prune impossible
         orderings (e.g. a tagged return key below an untagged forward
         key), drop trivially true ones. *)
      let da = abstract_eval st a and db = abstract_eval st b in
      if (da : Domain.t).lo >= (db : Domain.t).hi then raise Contradiction
      else if (da : Domain.t).hi >= (db : Domain.t).lo then residual st e
  | Cmp (Le, a, b) ->
      let da = abstract_eval st a and db = abstract_eval st b in
      if (da : Domain.t).lo > (db : Domain.t).hi then raise Contradiction
      else if (da : Domain.t).hi > (db : Domain.t).lo then residual st e
  | _ -> residual st e

(* Interval refinement through shifted/offset chains. *)
and refine_expr_le st (e : sexpr) c =
  match e with
  | Leaf s -> refine_dom st s (fun d -> Domain.refine_le d c)
  | Const k -> if k > c then raise Contradiction
  | Binop (Add, x, Const k) | Binop (Add, Const k, x) ->
      refine_expr_le st x (c - k)
  | Binop (Sub, x, Const k) -> refine_expr_le st x (c + k)
  | Binop (Mul, x, Const k) when k > 0 ->
      refine_expr_le st x (if c < 0 then -(((-c) + k - 1) / k) else c / k)
  | Binop (Mul, Const k, x) when k > 0 ->
      refine_expr_le st x (if c < 0 then -(((-c) + k - 1) / k) else c / k)
  | Binop (Shl, x, Const k) when k >= 0 -> refine_expr_le st x (c asr k)
  | Binop (Or, a, b) ->
      (* Necessary, not sufficient (a, b <= a|b for non-negatives): refine
         both sides but keep the constraint for final checking. *)
      refine_expr_le st a c;
      refine_expr_le st b c;
      residual st (Cmp (Le, e, Const c))
  | _ -> residual st (Cmp (Le, e, Const c))

and refine_expr_ge st (e : sexpr) c =
  match e with
  | Leaf s -> refine_dom st s (fun d -> Domain.refine_ge d c)
  | Const k -> if k < c then raise Contradiction
  | Binop (Add, x, Const k) | Binop (Add, Const k, x) ->
      refine_expr_ge st x (c - k)
  | Binop (Sub, x, Const k) -> refine_expr_ge st x (c + k)
  | Binop (Mul, x, Const k) when k > 0 -> refine_expr_ge st x ((c + k - 1) / k)
  | Binop (Mul, Const k, x) when k > 0 -> refine_expr_ge st x ((c + k - 1) / k)
  | Binop (Shl, x, Const k) when k >= 0 ->
      refine_expr_ge st x ((c + (1 lsl k) - 1) asr k)
  | Binop (Or, a, b) ->
      (* a = (a|b) - (bits from b) >= c - max(b), and symmetrically. *)
      let ma = possible_mask st a and mb = possible_mask st b in
      if c - mb > 0 then refine_expr_ge st a (c - mb);
      if c - ma > 0 then refine_expr_ge st b (c - ma);
      residual st (Cmp (Le, Const c, e))
  | _ -> residual st (Cmp (Le, Const c, e))

and residual st e = st.residual <- e :: st.residual

(* Mask of bits an expression can possibly have set; used to recognize
   disjoint field packing.  Structural on the bit-manipulation operators
   (shifts keep field masks exact, which is what packing needs), falling
   back to the abstract domain elsewhere. *)
and possible_mask st e =
  let rec mask_up m v = if m >= v then m else mask_up ((m lsl 1) lor 1) v in
  match e with
  | Const c -> if c >= 0 then c else -1
  | Leaf s -> width_mask (sym_width s)
  | Binop (Shl, x, Const k) when k >= 0 -> possible_mask st x lsl k
  | Binop (Lshr, x, Const k) when k >= 0 -> possible_mask st x lsr k
  | Binop (And, a, b) -> possible_mask st a land possible_mask st b
  | Binop ((Or | Xor), a, b) -> possible_mask st a lor possible_mask st b
  | Cmp _ -> 1
  | _ -> (
      let d = abstract_eval st e in
      match Domain.is_const d with
      | Some c when c >= 0 -> c
      | _ ->
          let hi = (d : Domain.t).hi in
          if hi < 0 then -1
          else if (d : Domain.t).lo < 0 then -1
          else mask_up 0 hi)

(* Abstract evaluation of an expression under current symbol knowledge. *)
and abstract_eval st (e : sexpr) : Domain.t =
  match e with
  | Const c -> Domain.const c
  | Leaf s -> sym_domain st s
  | Unop (op, a) -> Domain.unop op (abstract_eval st a)
  | Binop (op, a, b) -> Domain.binop op (abstract_eval st a) (abstract_eval st b)
  | Cmp _ -> Domain.cmp
  | Ite (_, a, b) -> Domain.join (abstract_eval st a) (abstract_eval st b)

and sym_domain st s =
  let i = get_info st s in
  let w = sym_width s in
  let wm = width_mask w in
  let from_bits =
    if i.known_mask = wm then Domain.const i.known_value
    else
      (* Contiguous high-bit knowledge gives a tight interval; contiguous
         low-bit knowledge gives a stride. *)
      let low_free = lnot i.known_mask land wm in
      let k =
        (* number of trailing free bits *)
        let rec count n m = if m land 1 = 1 then n else if m = 0 then n else count (n + 1) (m lsr 1) in
        if i.known_mask = 0 then 0 else count 0 (i.known_mask land wm)
      in
      if i.known_mask <> 0 && i.known_mask land wm = lnot ((1 lsl k) - 1) land wm
      then
        (* High bits known: values in [v, v + 2^k - 1]. *)
        Domain.make ~lo:i.known_value ~hi:(i.known_value + (1 lsl k) - 1) ~step:1
      else
        let low_known =
          (* number of contiguous known low bits *)
          let rec count n m = if m land 1 = 0 then n else count (n + 1) (m lsr 1) in
          count 0 i.known_mask
        in
        if low_known > 0 then
          let stride = 1 lsl low_known in
          let base = i.known_value land (stride - 1) in
          Domain.make ~lo:base ~hi:(wm land lnot (stride - 1) lor base) ~step:stride
        else begin
          ignore low_free;
          Domain.of_width w
        end
  in
  match Domain.meet from_bits i.dom with Some d -> d | None -> raise Contradiction

(* ------------------------------------------------------------------ *)
(* Pipeline driver                                                     *)
(* ------------------------------------------------------------------ *)

let fully_known st s =
  let i = get_info st s in
  i.known_mask = width_mask (sym_width s)

(* ------------------------------------------------------------------ *)
(* Overflow guard                                                      *)
(* ------------------------------------------------------------------ *)

(* The decomposition rules above invert arithmetic assuming it is exact,
   and the interval domain saturates its bounds at ±2^55 — but [eval]
   computes in native OCaml integers.  An expression that wraps around
   (or outgrows the domain's clamp window) satisfies equalities that exact
   reasoning "refutes", so feeding it to the propagator can yield an
   unsound Unsat.  [decomposable] over-approximates the range of every
   subexpression in floats; constraints that could leave the exact window
   anywhere are kept whole as residuals — the search phase and [check]
   share [eval]'s native semantics — trading a possible Unknown for a
   wrong verdict.  Real NF path constraints (packed flow keys, table
   indices, hashes) stay far below the 2^54 window, so they are
   unaffected. *)

let exact_window = 2. ** 54.

let decomposable (c0 : sexpr) =
  let ok = ref true in
  let flag ((lo, hi) as r) =
    if not (lo >= -.exact_window && hi <= exact_window) then ok := false;
    r
  in
  let rec range (e : sexpr) : float * float =
    match e with
    | Const c -> (float_of_int c, float_of_int c)
    | Leaf s -> (0., (2. ** float_of_int (min (sym_width s) 62)) -. 1.)
    | Cmp (_, a, b) ->
        ignore (range a : float * float);
        ignore (range b : float * float);
        (0., 1.)
    | Ite (c, a, b) ->
        ignore (range c : float * float);
        let la, ha = range a and lb, hb = range b in
        (Float.min la lb, Float.max ha hb)
    | Unop (Neg, a) ->
        let lo, hi = range a in
        flag (-.hi, -.lo)
    | Unop (Bnot, a) ->
        let lo, hi = range a in
        flag (-.hi -. 1., -.lo -. 1.)
    | Binop (op, a, b) ->
        let ((la, ha) as ra) = range a and ((lb, hb) as rb) = range b in
        let mag (lo, hi) = Float.max (Float.abs lo) (Float.abs hi) in
        flag
          (match op with
          | Add -> (la +. lb, ha +. hb)
          | Sub -> (la -. hb, ha -. lb)
          | Mul ->
              let ps = [ la *. lb; la *. hb; ha *. lb; ha *. hb ] in
              ( List.fold_left Float.min infinity ps,
                List.fold_left Float.max neg_infinity ps )
          | Div -> (-.(mag ra), mag ra)
          | Rem ->
              let m = Float.min (mag ra) (mag rb) in
              (-.m, m)
          | And | Or | Xor ->
              (* two's complement: the result stays within one bit of the
                 wider operand *)
              let m = (2. *. Float.max (mag ra) (mag rb)) +. 1. in
              if la >= 0. && lb >= 0. then (0., m) else (-.m, m)
          | Shl -> (
              match b with
              | Const k when k >= 0 && k < 62 ->
                  let f = 2. ** float_of_int k in
                  (la *. f, ha *. f)
              | _ -> (neg_infinity, infinity))
          | Lshr ->
              if la >= 0. then
                match b with
                | Const k when k >= 0 -> (0., ha /. (2. ** float_of_int k))
                | _ -> (0., ha)
              else (neg_infinity, infinity))
  in
  ignore (range c0 : float * float);
  !ok

let build_store cs =
  let st = { infos = SymMap.empty; residual = []; changed = false } in
  List.iter
    (fun c -> if decomposable c then assert_true st c else residual st c)
    cs;
  st

(* Iterate: substitute fully-determined symbols into residual constraints and
   re-propagate, so chains like "h = H(k); idx = h & m; idx = 5" resolve even
   when information arrives out of order. *)
let propagate_rounds cs =
  let st = build_store cs in
  let round () =
    let bound s =
      if fully_known st s then Some ((get_info st s).known_value) else None
    in
    let substitute c =
      Simplify.expr
        (subst
           (fun s ->
             match bound s with Some v -> Const v | None -> Leaf s)
           c)
    in
    let res = List.rev st.residual in
    st.residual <- [];
    st.changed <- false;
    let progressed = ref false in
    List.iter
      (fun c ->
        let c' = substitute c in
        if c' <> c then progressed := true;
        (* Substitution shrinks value ranges, so a residual parked by the
           overflow guard may become decomposable once its symbols pin. *)
        if decomposable c' then assert_true st c' else residual st c')
      res;
    st.changed || !progressed
  in
  let rec loop n = if n > 0 && round () then loop (n - 1) in
  loop 8;
  st

(* A value for [s] consistent with its known bits and, when possible, its
   interval domain. [zero_free] selects the deterministic all-zero-free-bits
   candidate used for the first attempt. *)
let sample_value st rng ~zero_free s =
  let i = get_info st s in
  let w = sym_width s in
  let wm = width_mask w in
  let free = lnot i.known_mask land wm in
  let candidate bits = i.known_value lor (bits land free) in
  if zero_free then
    let v = candidate 0 in
    if Domain.mem i.dom v then v
    else
      (* All-zero free bits fall outside the interval; aim for its floor. *)
      candidate (i.dom : Domain.t).lo
  else
    let rec try_random k =
      if k = 0 then
        candidate (Domain.sample i.dom rng)
      else
        let v = candidate (Int64.to_int (Int64.logand (Util.Rng.bits64 rng) (Int64.of_int max_int))) in
        if Domain.mem i.dom v then v else try_random (k - 1)
    in
    try_random 8

let model_of_tbl tbl =
  Hashtbl.fold (fun s v m -> Model.add s v m) tbl Model.empty

(* ------------------------------------------------------------------ *)
(* Ordering pre-phase                                                   *)
(* ------------------------------------------------------------------ *)

(* Path constraints from comparison-based containers (trees) are long chains
   of strict orderings between packed flow keys.  Local search converges
   poorly on total orders, but the structure is trivial globally: treat each
   distinct compared expression as a node, topologically sort the DAG, assign
   monotone values within each node's abstract domain, and invert each
   assignment into its (per-packet, disjoint) symbols. *)
(* The comparison graph: distinct non-constant compared expressions as
   nodes, one edge per Lt (strict) / Le residual. *)
let comparison_graph cs =
  let nodes = Hashtbl.create 16 in
  let node_list = ref [] in
  let node_id e =
    match Hashtbl.find_opt nodes e with
    | Some id -> id
    | None ->
        let id = Hashtbl.length nodes in
        Hashtbl.add nodes e id;
        node_list := e :: !node_list;
        id
  in
  let edges = ref [] in
  List.iter
    (fun c ->
      match c with
      | Cmp (Lt, a, b) -> (
          match (a, b) with
          | Const _, _ | _, Const _ -> ()
          | _ when a = b -> ()
          | _ -> edges := (node_id a, node_id b, 1) :: !edges)
      | Cmp (Le, a, b) -> (
          match (a, b) with
          | Const _, _ | _, Const _ -> ()
          | _ when a = b -> ()
          | _ -> edges := (node_id a, node_id b, 0) :: !edges)
      | _ -> ())
    cs;
  (Array.of_list (List.rev !node_list), !edges)

(* Kahn's algorithm; [None] when a cycle remains. *)
let topo_order n edges =
  let indeg = Array.make (max n 1) 0 in
  let succ = Array.make (max n 1) [] in
  List.iter
    (fun (a, b, strict) ->
      indeg.(b) <- indeg.(b) + 1;
      succ.(a) <- (b, strict) :: succ.(a))
    edges;
  let queue = Queue.create () in
  Array.iteri (fun i d -> if i < n && d = 0 then Queue.push i queue) indeg;
  let order = ref [] and seen = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    order := u :: !order;
    incr seen;
    List.iter
      (fun (v, _) ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.push v queue)
      succ.(u)
  done;
  if !seen = n then Some (List.rev !order, succ) else None

(* A cycle containing a strict edge is a genuine contradiction: it entails
   e < e.  This catches "the lookup went left of a node, the insert went
   right of the same node" inconsistencies that bit/interval propagation
   cannot see. *)
let order_contradiction cs =
  let exprs, edges = comparison_graph cs in
  let n = Array.length exprs in
  if n = 0 || edges = [] then false
  else
    match topo_order n edges with
    | Some _ -> false
    | None -> (
        (* A cycle exists; decide whether some cycle is strict by checking
           the strongly-connected components. Simple O(E·V) pass is fine at
           these sizes: a strict edge inside an SCC means contradiction. *)
        let reachable =
          (* reach.(u) = set of nodes reachable from u, as bool array *)
          let succ = Array.make n [] in
          List.iter (fun (a, b, _) -> succ.(a) <- b :: succ.(a)) edges;
          Array.init n (fun u ->
              let seen = Array.make n false in
              let rec dfs v =
                List.iter
                  (fun w ->
                    if not seen.(w) then begin
                      seen.(w) <- true;
                      dfs w
                    end)
                  succ.(v)
              in
              dfs u;
              seen)
        in
        match
          List.find_opt
            (fun (a, b, strict) -> strict = 1 && reachable.(b).(a))
            edges
        with
        | Some _ -> true
        | None -> false)

let order_phase st cs tbl rng =
  let exprs, edges = comparison_graph cs in
  let n = Array.length exprs in
  if n = 0 || edges = [] then ()
  else begin
    match topo_order n edges with
    | None -> ()
    | Some (order, succ) ->
      let value = Array.make n min_int in
      let minimum = Array.make n min_int in
      List.iter
        (fun u ->
          let e = exprs.(u) in
          let dom = try abstract_eval st e with Contradiction -> Domain.top in
          let lo = (dom : Domain.t).lo and hi = (dom : Domain.t).hi in
          (* Fixed nodes (all symbols already forced) keep their value. *)
          let all_known = List.for_all (fully_known st) (syms_of [ e ]) in
          let v =
            if all_known then
              eval ~leaf:(fun s -> (get_info st s).known_value) e
            else
              (* Leave slack after each node so successors fit. *)
              let base = max lo minimum.(u) in
              min hi (base + Util.Rng.int rng 1024)
          in
          value.(u) <- v;
          List.iter
            (fun (s, strict) -> minimum.(s) <- max minimum.(s) (v + strict))
            succ.(u))
        order;
      (* Invert each node's value into its symbols via a scratch store. *)
      List.iter
        (fun u ->
          let e = exprs.(u) in
          if not (List.for_all (fully_known st) (syms_of [ e ])) then
            let st1 =
              { infos = st.infos; residual = []; changed = false }
            in
            match propagate_eq st1 e value.(u) with
            | exception Contradiction -> ()
            | () ->
                List.iter
                  (fun s ->
                    if not (fully_known st s) then
                      let i = get_info st1 s in
                      let w = sym_width s in
                      if i.known_mask = width_mask w then
                        Hashtbl.replace tbl s i.known_value
                      else
                        match Domain.is_const i.dom with
                        | Some v -> Hashtbl.replace tbl s v
                        | None -> ())
                  (syms_of [ e ]))
        order
  end

(* WalkSAT-style completion: start from the deterministic candidate, then
   repeatedly resample one symbol of one violated constraint. *)
let complete st cs rng attempts =
  let syms = syms_of cs in
  let tbl = Hashtbl.create 32 in
  List.iter (fun s -> Hashtbl.replace tbl s (sample_value st rng ~zero_free:true s)) syms;
  (* Seed comparison chains (tree paths) with a consistent global order. *)
  order_phase st cs tbl rng;
  let eval_c c =
    try Model.eval (model_of_tbl tbl) c <> 0 with Division_by_zero -> false
  in
  (* Evaluating through the Hashtbl directly avoids rebuilding the map. *)
  let eval_fast c =
    try
      eval ~leaf:(fun s -> match Hashtbl.find_opt tbl s with Some v -> v | None -> 0) c <> 0
    with Division_by_zero -> false
  in
  ignore eval_c;
  let violated () = List.filter (fun c -> not (eval_fast c)) cs in
  (* Targeted repair: freeze every other symbol at its current value,
     re-propagate the violated constraint for [s] alone, and draw [s] from
     the refined knowledge.  This is what makes packed-field and
     cross-symbol (xor, ordering) equalities solvable — blind resampling of
     a 32-bit field never hits them. *)
  let frozen_except s s' =
    if compare_sym s' s = 0 then Leaf s'
    else Const (match Hashtbl.find_opt tbl s' with Some v -> v | None -> 0)
  in
  let mini_store s =
    { infos = SymMap.singleton s (get_info st s); residual = []; changed = false }
  in
  (* Disjunctions have no propagation rule; during repair, committing to a
     random disjunct is a sound heuristic move (the outer loop re-verifies
     everything). *)
  let rec assert_for_repair st1 (c : sexpr) =
    match c with
    | Binop (Or, a, b) when Simplify.is_boolean a && Simplify.is_boolean b ->
        assert_for_repair st1 (if Util.Rng.bool rng then a else b)
    | _ -> assert_true st1 c
  in
  (* Strong repair: freeze everything but [s] and propagate every constraint
     mentioning [s], so the sample respects all its bounds at once (an
     ordering chain pins a symbol between two neighbours). *)
  let repair_all s =
    let st1 = mini_store s in
    let relevant c = List.exists (fun s' -> compare_sym s' s = 0) (syms_of [ c ]) in
    match
      List.iter
        (fun c ->
          if relevant c then
            assert_for_repair st1 (Simplify.expr (subst (frozen_except s) c)))
        cs
    with
    | exception Contradiction -> None
    | () -> Some (sample_value st1 rng ~zero_free:false s)
  in
  let repair c s =
    let st1 = mini_store s in
    match assert_for_repair st1 (Simplify.expr (subst (frozen_except s) c)) with
    | exception Contradiction -> None
    | () -> Some (sample_value st1 rng ~zero_free:false s)
  in
  let resample_one vs =
    let c = List.nth vs (Util.Rng.int rng (List.length vs)) in
    let cs_syms = syms_of [ c ] in
    let flexible = List.filter (fun s -> not (fully_known st s)) cs_syms in
    let targets = if flexible = [] then cs_syms else flexible in
    match targets with
    | [] -> ()
    | _ -> (
        let s = List.nth targets (Util.Rng.int rng (List.length targets)) in
        let choice = Util.Rng.int rng 10 in
        let attempt =
          if choice < 5 then repair_all s
          else if choice < 8 then repair c s
          else None
        in
        match attempt with
        | Some v -> Hashtbl.replace tbl s v
        | None ->
            Hashtbl.replace tbl s (sample_value st rng ~zero_free:false s))
  in
  let debug = Sys.getenv_opt "CASTAN_SOLVER_DEBUG" <> None in
  let rec walk k =
    match violated () with
    | [] -> Some (model_of_tbl tbl)
    | vs ->
        if k = 0 then begin
          if debug then begin
            Format.eprintf "solver: %d violated after search:@." (List.length vs);
            List.iteri
              (fun i c ->
                if i < 12 then Format.eprintf "  V: %a@." Ir.Expr.pp_sexpr c)
              vs
          end;
          None
        end
        else begin
          resample_one vs;
          walk (k - 1)
        end
  in
  walk attempts

(* Telemetry: verdict counters, how each Unsat was decided (pure
   propagation vs the ordering pre-phase) vs how many calls fell through to
   the WalkSAT-style search, and a per-call latency histogram.  Instruments
   are module-level so the disabled path costs one ref read per bump. *)
let m_verdict_sat = Obs.Metrics.counter "solver.verdict.sat"
let m_verdict_unsat = Obs.Metrics.counter "solver.verdict.unsat"
let m_verdict_unknown = Obs.Metrics.counter "solver.verdict.unknown"
let m_unsat_ordering = Obs.Metrics.counter "solver.unsat.ordering"
let m_unsat_propagation = Obs.Metrics.counter "solver.unsat.propagation"
let m_walksat = Obs.Metrics.counter "solver.walksat.searches"
let h_sat_latency = Obs.Metrics.histogram "solver.sat.latency_us"

let sat_inner rng attempts cs =
  let cs = List.map Simplify.expr cs in
  if List.exists (fun c -> c = Const 0) cs then Unsat
  else
    let cs = List.filter (fun c -> c <> Const 1) cs in
    if cs = [] then Sat Model.empty
    else if order_contradiction cs then begin
      Obs.Metrics.incr m_unsat_ordering;
      Unsat
    end
    else
      match propagate_rounds cs with
      | exception Contradiction ->
          Obs.Metrics.incr m_unsat_propagation;
          Unsat
      | st -> (
          Obs.Metrics.incr m_walksat;
          match complete st cs rng attempts with
          | exception Contradiction -> Unsat
          | Some m -> if check m cs then Sat m else Unknown
          | None -> Unknown)

let sat ?(rng = Util.Rng.create 0x5eed) ?(attempts = 2000) cs =
  let want_metrics = Obs.Metrics.active () in
  let want_profile = Obs.Profile.enabled () in
  if not (want_metrics || want_profile) then sat_inner rng attempts cs
  else begin
    let t_start = Unix.gettimeofday () in
    let v = sat_inner rng attempts cs in
    let dt = Unix.gettimeofday () -. t_start in
    if want_profile then Obs.Profile.add_timer "solver" dt;
    if want_metrics then begin
      Obs.Metrics.observe_span_us h_sat_latency dt;
      Obs.Metrics.incr
        (match v with
        | Sat _ -> m_verdict_sat
        | Unsat -> m_verdict_unsat
        | Unknown -> m_verdict_unknown)
    end;
    v
  end

let feasible ?rng cs =
  match sat ?rng ~attempts:200 cs with Unsat -> false | Sat _ | Unknown -> true

(* Cached feasibility for the hot path.  The query is sliced to its
   connected component of [pcs] (correct because the engine only inserts
   constraints that passed a feasibility check, so no *other* component can
   be provably unsat — see Slice), normalized (per-constraint
   simplification, trivial-true constraints dropped, sorted, deduplicated)
   and looked up in Qcache before the solver runs.  Cache bookkeeping time
   is segregated into its own profiler bucket so the "solver" bucket keeps
   measuring actual solving. *)
let feasible_cached ?rng ~query pcs =
  if not (Qcache.enabled ()) then feasible ?rng (query :: pcs)
  else begin
    let want_profile = Obs.Profile.enabled () in
    let t0 = if want_profile then Unix.gettimeofday () else 0. in
    let close_timer () =
      if want_profile then
        Obs.Profile.add_timer "solver.cache" (Unix.gettimeofday () -. t0)
    in
    match Simplify.expr query with
    | Const 0 ->
        close_timer ();
        false
    | Const _ ->
        (* A trivially-true query adds nothing; keep the uncached
           behaviour (the verdict is then about [pcs] alone). *)
        close_timer ();
        feasible ?rng (query :: pcs)
    | q -> (
        let slice, dropped = Slice.relevant ~query:q pcs in
        Qcache.note_dropped dropped;
        let simplified = List.map Simplify.expr slice in
        if List.exists (fun c -> c = Const 0) simplified then begin
          close_timer ();
          false
        end
        else begin
          (* The cache key is the simplified constraint list in its
             original order (query first, then the slice in path-condition
             order), trivially-true constraints dropped.  Order is
             deliberately preserved: the solver's Unsat *proofs* are
             order-sensitive (propagation processes constraints in list
             order), so a key that reordered constraints could map two
             queries with different uncached verdicts to one entry.  With
             order kept, sat's verdict is a deterministic function of the
             key (it re-simplifies idempotently, filters the same trivial
             constraints, and seeds its own rng), which is what makes a
             cached Unsat safe to replay. *)
          let key = q :: List.filter (fun c -> c <> Const 1) simplified in
          match Qcache.find key with
          | `Sat ->
              close_timer ();
              true
          | `Unsat ->
              close_timer ();
              false
          | `Unknown -> (
              close_timer ();
              match sat ?rng ~attempts:200 (query :: slice) with
              | Sat m ->
                  Qcache.store_sat key (Model.bindings m);
                  true
              | Unsat ->
                  Qcache.store_unsat key;
                  false
              | Unknown -> true)
        end)
  end

let domain_of cs e =
  let e = Simplify.expr e in
  (* Only the query's connected component can shape its abstract value, by
     the same argument as [feasible_cached]; gated on the cache switch so
     [--no-solver-cache] restores the exact pre-cache pipeline. *)
  let cs = if Qcache.enabled () then fst (Slice.relevant ~query:e cs) else cs in
  let cs = List.map Simplify.expr cs in
  match propagate_rounds cs with
  | exception Contradiction -> Domain.const 0
  | st -> ( try abstract_eval st e with Contradiction -> Domain.const 0)
