(** Independent-constraint slicing.

    A path condition accumulated by symbolic execution is mostly a union of
    constraints over {e disjoint} symbol sets: each packet's fields, each
    havoced hash output, each concretized pointer touch its own little
    cluster.  Feasibility of one new constraint only depends on the
    connected component (by shared symbols) it touches, so a query can be
    answered against that slice alone — the KLEE independent-solver trick,
    which keeps per-branch solver work near-constant as the path condition
    grows.

    Dropping an independent component is exact for the verdicts
    [Solve.feasible] reports as long as no {e other} component of the path
    condition is unsatisfiable on its own.  The engine maintains exactly
    that invariant: every constraint enters a state's path condition only
    after a feasibility check of the whole condition, and the solver proves
    [Unsat] component-locally (per-symbol propagation, per-constraint
    decomposition, ordering cycles within one component). *)

val free_syms : Ir.Expr.sexpr -> Ir.Expr.sym list
(** Distinct symbols of the expression, in first-occurrence order. *)

val relevant :
  query:Ir.Expr.sexpr -> Ir.Expr.sexpr list -> Ir.Expr.sexpr list * int
(** [relevant ~query pcs] is [(slice, dropped)]: [slice] keeps every
    constraint of [pcs] whose connected component (union-find over shared
    symbols, computed on [pcs] alone) contains a free symbol of [query],
    plus every ground constraint (no symbols — a ground contradiction must
    never be sliced away); [dropped] is how many constraints were left out.
    Preserves the relative order of [pcs].  A ground [query] returns [pcs]
    unsliced. *)
