module Expr = Ir.Expr
module SymMap = Map.Make (struct
  type t = Expr.sym

  let compare = Expr.compare_sym
end)

let free_syms e =
  let seen = ref SymMap.empty and acc = ref [] in
  Expr.iter_leaves
    (fun s ->
      if not (SymMap.mem s !seen) then begin
        seen := SymMap.add s () !seen;
        acc := s :: !acc
      end)
    e;
  List.rev !acc

(* Union-find over the indices of [pcs]; symbols are mapped to the index of
   the first constraint mentioning them, and each later mention unions the
   two constraints. Path-halving keeps finds near-constant. *)
let relevant ~query pcs =
  match free_syms query with
  | [] -> (pcs, 0)
  | qsyms -> (
      let n = List.length pcs in
      let parent = Array.init n Fun.id in
      let rec find i =
        let p = parent.(i) in
        if p = i then i
        else begin
          parent.(i) <- parent.(p);
          find parent.(i)
        end
      in
      let union i j =
        let ri = find i and rj = find j in
        if ri <> rj then parent.(ri) <- rj
      in
      let owner = ref SymMap.empty in
      List.iteri
        (fun i c ->
          Expr.iter_leaves
            (fun s ->
              match SymMap.find_opt s !owner with
              | Some j -> union i j
              | None -> owner := SymMap.add s i !owner)
            c)
        pcs;
      (* Roots of the components the query's symbols touch. A query symbol
         absent from every constraint contributes nothing. *)
      let wanted =
        List.filter_map
          (fun s ->
            Option.map (fun i -> find i) (SymMap.find_opt s !owner))
          qsyms
      in
      match wanted with
      | [] ->
          (* The query shares no symbol with the path condition: only the
             ground constraints (kept below, and there are none among the
             indexed ones unless symbol-free) can affect it. *)
          let slice =
            List.filter (fun c -> free_syms c = []) pcs
          in
          (slice, n - List.length slice)
      | _ ->
          let keep i c =
            free_syms c = [] || List.mem (find i) wanted
          in
          let kept = ref 0 in
          let slice =
            List.filteri
              (fun i c ->
                let k = keep i c in
                if k then incr kept;
                k)
              pcs
          in
          (slice, n - !kept))
