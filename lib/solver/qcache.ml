module Expr = Ir.Expr

type model = (Expr.sym * int) list

(* Canonical shape: symbols renamed to dense ids in first-occurrence order
   over the constraint list, widths preserved.  Constraint order is part of
   the shape on purpose: the solver's Unsat proofs are order-sensitive, so
   only queries that would feed the solver the *same ordered list* may share
   a cached verdict.  Structural equality of shapes = alpha-equivalence. *)
type shape = (int * int) Expr.t list

type entry = {
  canon_model : (int * int) list;  (* canonical id -> value; [] for unsat *)
  real_model : model;  (* over the syms the entry was stored with *)
  sat : bool;
}

let max_entries = 4096
let max_scan = 8

(* --- statistics ------------------------------------------------------ *)

type stats = {
  queries : int;
  hits : int;
  subset_hits : int;
  model_reuse : int;
  misses : int;
  constraints_dropped : int;
  evictions : int;
}

let zero =
  {
    queries = 0;
    hits = 0;
    subset_hits = 0;
    model_reuse = 0;
    misses = 0;
    constraints_dropped = 0;
    evictions = 0;
  }

(* --- ambient state ---------------------------------------------------- *)

let enabled_ref = ref true
let enabled () = !enabled_ref
let set_enabled b = enabled_ref := b

(* The whole cache lives in a state record so that each {!Util.Pool} task
   gets a private one (the tables are not domain-safe, and sharing them
   across workers would make hit patterns scheduling-dependent).  The
   per-task lifecycle is deterministic because [Symbex.Driver.run] clears
   the cache at the start of every exploration anyway — a fresh state per
   task reproduces exactly what a serial run sees at that point.  At join,
   only the integer counters are folded into the main state; the worker
   tables are dropped. *)
type state = {
  qc_table : (shape, entry) Hashtbl.t;
  qc_sat_index : (Expr.sexpr, entry) Hashtbl.t;
      (* per-constraint index into satisfiable entries: any cached
         assignment whose entry shares a constraint with the query is a
         candidate model *)
  mutable qc_unsat_sets : Expr.sexpr list list;
      (* recent unsatisfiable sets, newest first, for the superset rule *)
  mutable qc_last_model : model option;
  mutable qc_st : stats;
}

let make_state () =
  {
    qc_table = Hashtbl.create 512;
    qc_sat_index = Hashtbl.create 512;
    qc_unsat_sets = [];
    qc_last_model = None;
    qc_st = zero;
  }

let main_state = make_state ()

let state_key : state option Stdlib.Domain.DLS.key = Stdlib.Domain.DLS.new_key (fun () -> None)

let state () =
  match Stdlib.Domain.DLS.get state_key with Some s -> s | None -> main_state

let clear () =
  let t = state () in
  Hashtbl.reset t.qc_table;
  Hashtbl.reset t.qc_sat_index;
  t.qc_unsat_sets <- [];
  t.qc_last_model <- None

let stats () = (state ()).qc_st
let reset_stats () = (state ()).qc_st <- zero

let m_hit = Obs.Metrics.counter "solver.cache.hit"
let m_miss = Obs.Metrics.counter "solver.cache.miss"
let m_subset = Obs.Metrics.counter "solver.cache.subset_hit"
let m_reuse = Obs.Metrics.counter "solver.cache.model_reuse"
let m_dropped = Obs.Metrics.counter "solver.slice.constraints_dropped"

let bump f =
  let t = state () in
  t.qc_st <- f t.qc_st

let note_dropped n =
  if !enabled_ref && n > 0 then begin
    bump (fun s -> { s with constraints_dropped = s.constraints_dropped + n });
    Obs.Metrics.incr ~by:n m_dropped
  end

(* Capture provider: fresh cache state per pool task; counters folded into
   the main state at join so manifests report campaign-wide totals. *)
let () =
  Util.Pool.register_provider (fun () ->
      Stdlib.Domain.DLS.set state_key (Some (make_state ()));
      fun () ->
        let t =
          match Stdlib.Domain.DLS.get state_key with
          | Some t -> t
          | None -> assert false
        in
        Stdlib.Domain.DLS.set state_key None;
        fun () ->
          let a = main_state.qc_st and b = t.qc_st in
          main_state.qc_st <-
            {
              queries = a.queries + b.queries;
              hits = a.hits + b.hits;
              subset_hits = a.subset_hits + b.subset_hits;
              model_reuse = a.model_reuse + b.model_reuse;
              misses = a.misses + b.misses;
              constraints_dropped =
                a.constraints_dropped + b.constraints_dropped;
              evictions = a.evictions + b.evictions;
            })

(* --- canonicalization ----------------------------------------------- *)

(* Returns the shape plus the id -> real-symbol table needed to translate a
   cached canonical assignment back into the query's own symbols. *)
let canon cs =
  let ids = Hashtbl.create 16 in
  let inv = ref [] in
  let id_of s =
    match Hashtbl.find_opt ids s with
    | Some i -> i
    | None ->
        let i = Hashtbl.length ids in
        Hashtbl.add ids s i;
        inv := (i, s) :: !inv;
        i
  in
  let shape =
    List.map (Expr.subst (fun s -> Expr.Leaf (id_of s, Expr.sym_width s))) cs
  in
  (shape, !inv)

(* --- verification --------------------------------------------------- *)

let holds (m : model) cs =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (s, v) -> Hashtbl.replace tbl s v) m;
  let leaf s = match Hashtbl.find_opt tbl s with Some v -> v | None -> 0 in
  try List.for_all (fun c -> Expr.eval ~leaf c <> 0) cs
  with Division_by_zero -> false

(* Is [sub] an order-preserving subsequence of [super]?  The superset-unsat
   rule needs order preservation, not mere set inclusion: interleaving extra
   constraints only adds monotone knowledge to the propagator (the cached
   set's contradiction still fires), whereas *reordering* can change which
   facts are pinned when a constraint is asserted and flip a provable Unsat
   to Unknown. *)
let rec subseq sub super =
  match (sub, super) with
  | [], _ -> true
  | _ :: _, [] -> false
  | c :: sub', d :: super' ->
      if Expr.compare_sexpr c d = 0 then subseq sub' super'
      else subseq sub super'

(* --- lookup ---------------------------------------------------------- *)

let exact_hit cs =
  let t = state () in
  let shape, inv = canon cs in
  match Hashtbl.find_opt t.qc_table shape with
  | None -> None
  | Some e when not e.sat -> Some `Unsat
  | Some e ->
      (* Translate the canonical assignment through the query's own symbol
         numbering (the shapes are equal, so ids coincide positionally) and
         certify it against the real constraints. *)
      let m =
        List.filter_map
          (fun (i, v) ->
            Option.map (fun s -> (s, v)) (List.assoc_opt i inv))
          e.canon_model
      in
      if holds m cs then begin
        t.qc_last_model <- Some m;
        Some `Sat
      end
      else None

(* Probe the index through every constraint of the query (the head is the
   query itself, which is usually fresh; the tail constraints are the shared
   ones that cached entries were stored under), under one shared scan
   budget.  Verified models are safe from any source. *)
let subset_sat cs =
  let t = state () in
  let budget = ref max_scan in
  let found = ref None in
  let try_entry e =
    if !found = None && !budget > 0 then begin
      decr budget;
      if holds e.real_model cs then begin
        t.qc_last_model <- Some e.real_model;
        found := Some `Sat
      end
    end
  in
  List.iter
    (fun c ->
      if !found = None && !budget > 0 then
        List.iter try_entry (Hashtbl.find_all t.qc_sat_index c))
    cs;
  !found

let superset_unsat cs =
  let rec scan n = function
    | [] -> None
    | _ when n = 0 -> None
    | ucs :: rest ->
        if subseq ucs cs then Some `Unsat else scan (n - 1) rest
  in
  scan max_scan (state ()).qc_unsat_sets

let reuse_last cs =
  match (state ()).qc_last_model with
  | Some m when holds m cs -> Some `Sat
  | _ -> None

let find cs =
  if not !enabled_ref then `Unknown
  else begin
    bump (fun s -> { s with queries = s.queries + 1 });
    match exact_hit cs with
    | Some v ->
        bump (fun s -> { s with hits = s.hits + 1 });
        Obs.Metrics.incr m_hit;
        v
    | None -> (
        match subset_sat cs with
        | Some v ->
            bump (fun s -> { s with subset_hits = s.subset_hits + 1 });
            Obs.Metrics.incr m_subset;
            v
        | None -> (
            match superset_unsat cs with
            | Some v ->
                bump (fun s -> { s with subset_hits = s.subset_hits + 1 });
                Obs.Metrics.incr m_subset;
                v
            | None -> (
                match reuse_last cs with
                | Some v ->
                    bump (fun s -> { s with model_reuse = s.model_reuse + 1 });
                    Obs.Metrics.incr m_reuse;
                    v
                | None ->
                    bump (fun s -> { s with misses = s.misses + 1 });
                    Obs.Metrics.incr m_miss;
                    `Unknown)))
  end

(* --- insertion ------------------------------------------------------- *)

let room_for_one () =
  if Hashtbl.length (state ()).qc_table >= max_entries then begin
    clear ();
    bump (fun s -> { s with evictions = s.evictions + 1 })
  end

let store_sat cs m =
  if !enabled_ref then begin
    room_for_one ();
    let t = state () in
    let shape, inv = canon cs in
    (* Invert the sym -> id table: the stored assignment must survive alpha
       hits, so it is kept in canonical ids alongside the concrete one. *)
    let canon_model =
      List.filter_map
        (fun (s, v) ->
          List.find_map
            (fun (i, s') -> if Expr.compare_sym s s' = 0 then Some (i, v) else None)
            inv)
        m
    in
    let e = { canon_model; real_model = m; sat = true } in
    Hashtbl.replace t.qc_table shape e;
    List.iter (fun c -> Hashtbl.add t.qc_sat_index c e) cs;
    t.qc_last_model <- Some m
  end

let store_unsat cs =
  if !enabled_ref then begin
    room_for_one ();
    let t = state () in
    let shape, _ = canon cs in
    Hashtbl.replace t.qc_table shape
      { canon_model = []; real_model = []; sat = false };
    t.qc_unsat_sets <- cs :: t.qc_unsat_sets;
    (* The superset rule only ever scans the newest few; cap the list. *)
    if List.length t.qc_unsat_sets > 4 * max_scan then
      t.qc_unsat_sets <- List.filteri (fun i _ -> i < 2 * max_scan) t.qc_unsat_sets
  end
