(** Interval-with-stride abstract domain.

    A domain [{lo; hi; step}] over-approximates a set of integers as
    [{lo, lo+step, lo+2*step, ...} ∩ \[lo, hi\]].  The cache model uses it to
    enumerate the candidate concrete addresses of a symbolic pointer (array
    accesses produce exactly base + index*stride shapes); the solver uses it
    for cheap pruning.  All operations are over-approximations: the result
    domain contains every value the operation can produce on members of the
    argument domains. *)

type t = private { lo : int; hi : int; step : int }

val make : lo:int -> hi:int -> step:int -> t
(** Normalizes: clamps [hi] down to [lo + k*step], forces [step >= 1];
    requires [lo <= hi]. *)

val const : int -> t
val interval : lo:int -> hi:int -> t
val of_width : int -> t
(** [of_width w] is [\[0, 2^w - 1\]]. *)

val top : t
(** A wide non-negative range used when nothing better is known. *)

val is_const : t -> int option
val mem : t -> int -> bool
val cardinal : t -> int
val join : t -> t -> t

val meet : t -> t -> t option
(** [None] when the approximated sets are provably disjoint. *)

val unop : Ir.Expr.unop -> t -> t
val binop : Ir.Expr.binop -> t -> t -> t
val cmp : t
(** Domain of any comparison result: [\[0, 1\]]. *)

val refine_le : t -> int -> t option
(** [refine_le d c] intersects with [(-inf, c\]]; [None] if empty. *)

val refine_ge : t -> int -> t option

val iter : t -> ?limit:int -> (int -> unit) -> unit
(** Enumerates members in increasing order, at most [limit] (default 10^6). *)

val sample : t -> Util.Rng.t -> int
(** A uniformly random member. *)

val pp : Format.formatter -> t -> unit
