(** Satisfiability and model generation for NFIR path constraints.

    This is the repository's stand-in for the SMT solver CASTAN delegates to
    (STP/Z3).  It is specialized to the constraint fragment NF code produces:
    equalities and inequalities over packet-field symbols combined with
    addition, multiplication/shift by constants, bit masks and packing.

    The pipeline: simplify each constraint, then {e invert} equalities through
    invertible operator chains into per-symbol bit knowledge (known-bit
    mask/value) and interval domains, then complete the remaining free bits by
    randomized local search, validating candidate models by concrete
    evaluation of the original constraints.

    Verdicts are sound: [Unsat] is returned only when propagation derives a
    genuine contradiction; [Sat] models are always verified by evaluation;
    everything else is [Unknown]. *)

module Model : sig
  type t

  val empty : t
  val find : t -> Ir.Expr.sym -> int option
  val get : t -> Ir.Expr.sym -> int
  (** [get m s] defaults to 0 for unbound symbols (they are unconstrained). *)

  val add : Ir.Expr.sym -> int -> t -> t
  val of_list : (Ir.Expr.sym * int) list -> t
  val bindings : t -> (Ir.Expr.sym * int) list
  val eval : t -> Ir.Expr.sexpr -> int
  val pp : Format.formatter -> t -> unit
end

type verdict = Sat of Model.t | Unsat | Unknown

val check : Model.t -> Ir.Expr.sexpr list -> bool
(** [check m cs] holds when every constraint evaluates non-zero under [m]
    (and evaluation does not fault). *)

val sat :
  ?rng:Util.Rng.t -> ?attempts:int -> Ir.Expr.sexpr list -> verdict
(** [attempts] bounds the local-search steps of the completion phase
    (default 2000). *)

val feasible : ?rng:Util.Rng.t -> Ir.Expr.sexpr list -> bool
(** Fast-path check used on every symbolic branch: [false] only on [Unsat],
    so no feasible path is ever dropped. Uses a reduced search budget. *)

val feasible_cached :
  ?rng:Util.Rng.t -> query:Ir.Expr.sexpr -> Ir.Expr.sexpr list -> bool
(** [feasible_cached ~query pcs] = [feasible (query :: pcs)], optimized for
    the symbex hot path where [pcs] is a path condition whose every
    constraint already passed a feasibility check at insertion: the query is
    answered against only the connected component of [pcs] it shares
    symbols with ({!Slice}), after consulting the canonicalized query cache
    ({!Qcache}) — exact/alpha-renamed hits, cached-model subset answers,
    unsat-core superset answers and a last-model fast path — so most calls
    never reach the solver.  Under that insertion invariant (or any
    satisfiable [pcs]) the result is identical to the uncached call; with
    the cache disabled ({!Qcache.set_enabled}[ false]) it {e is} the
    uncached call. *)

val domain_of : Ir.Expr.sexpr list -> Ir.Expr.sexpr -> Domain.t
(** Over-approximates the values [e] can take under the constraints; used by
    the cache model to enumerate candidate concrete addresses of a symbolic
    pointer. *)

val syms_of : Ir.Expr.sexpr list -> Ir.Expr.sym list
(** Symbols occurring in the constraints, deduplicated. *)
