(** Rendering experiment results in the paper's formats.

    Figures are printed as CDF series (one column per workload, rows at
    fixed quantiles — directly plottable), tables as aligned text mirroring
    Tables 1-5. *)

val print_cdf_figure :
  id:string ->
  title:string ->
  unit_label:string ->
  (string * Util.Stats.cdf) list ->
  unit
(** Quantile grid of 21 rows (0%, 5%, ..., 100%). *)

val latency_series : Experiment.nf_run -> (string * Util.Stats.cdf) list
(** NOP first, then the run's workloads — the latency figures' legends. *)

val cycles_series : Experiment.nf_run -> (string * Util.Stats.cdf) list

val print_throughput_table :
  ?failed:(string * Util.Resilience.failure) list ->
  Experiment.nf_run list ->
  unit
(** Table 1: max throughput (Mpps) per NF and workload.  [failed] lists the
    NFs whose campaign died — each keeps a column, filled with
    [failed:<stage>] cells, so one broken NF never loses the table. *)

val print_instrs_table :
  ?failed:(string * Util.Resilience.failure) list ->
  Experiment.nf_run list ->
  unit
(** Table 2: median instructions retired per packet. *)

val print_misses_table :
  ?failed:(string * Util.Resilience.failure) list ->
  Experiment.nf_run list ->
  unit
(** Table 3: median L3 misses per packet. *)

val print_analysis_table :
  ?failed:(string * Util.Resilience.failure) list ->
  Experiment.nf_run list ->
  unit
(** Table 4: packets generated and analysis run time; failed NFs get a
    [failed:<stage>] row. *)

val print_deviation_table :
  ?failed:(string * Util.Resilience.failure) list ->
  Experiment.nf_run list ->
  unit
(** Table 5: median latency deviation from NOP (ns). *)

val print_failure_summary : Util.Resilience.failure list -> unit
(** The end-of-run error report: per-stage failure counts followed by one
    line per failure.  Prints nothing for an empty list. *)
