(** Rendering experiment results in the paper's formats.

    Figures are printed as CDF series (one column per workload, rows at
    fixed quantiles — directly plottable), tables as aligned text mirroring
    Tables 1-5. *)

val print_cdf_figure :
  id:string ->
  title:string ->
  unit_label:string ->
  (string * Util.Stats.cdf) list ->
  unit
(** Quantile grid of 21 rows (0%, 5%, ..., 100%). *)

val latency_series : Experiment.nf_run -> (string * Util.Stats.cdf) list
(** NOP first, then the run's workloads — the latency figures' legends. *)

val cycles_series : Experiment.nf_run -> (string * Util.Stats.cdf) list

val print_throughput_table : Experiment.nf_run list -> unit
(** Table 1: max throughput (Mpps) per NF and workload. *)

val print_instrs_table : Experiment.nf_run list -> unit
(** Table 2: median instructions retired per packet. *)

val print_misses_table : Experiment.nf_run list -> unit
(** Table 3: median L3 misses per packet. *)

val print_analysis_table : Experiment.nf_run list -> unit
(** Table 4: packets generated and analysis run time. *)

val print_deviation_table : Experiment.nf_run list -> unit
(** Table 5: median latency deviation from NOP (ns). *)
