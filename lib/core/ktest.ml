let ktest_string (o : Analyze.outcome) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "ktest file\n";
  Buffer.add_string buf (Printf.sprintf "args: ['%s.bc']\n" o.Analyze.nf);
  let n = Testbed.Workload.length o.Analyze.workload in
  Buffer.add_string buf (Printf.sprintf "num objects: %d\n" (n * 5));
  Array.iteri
    (fun pkt p ->
      List.iteri
        (fun k field ->
          let width_bytes = (Ir.Expr.field_width field + 7) / 8 in
          Buffer.add_string buf
            (Printf.sprintf
               "object %d: name: 'pkt%d.%s'\nobject %d: size: %d\nobject %d: \
                data: 0x%0*x\n"
               ((pkt * 5) + k) pkt (Ir.Expr.field_name field)
               ((pkt * 5) + k) width_bytes
               ((pkt * 5) + k) (width_bytes * 2)
               (Nf.Packet.field p field)))
        Ir.Expr.all_fields)
    o.Analyze.workload.Testbed.Workload.packets;
  Buffer.contents buf

let metrics_string (o : Analyze.outcome) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "# CASTAN CPU model metrics, one row per packet of the generated path\n";
  Buffer.add_string buf "packet\tinstructions\tloads\tstores\tcache_hits\tcache_misses\tcycles\n";
  let total = ref Symbex.State.zero_metrics in
  List.iteri
    (fun k (m : Symbex.State.metrics) ->
      let hits = m.loads + m.stores - m.l3_misses in
      Buffer.add_string buf
        (Printf.sprintf "%d\t%d\t%d\t%d\t%d\t%d\t%d\n" k m.instrs m.loads
           m.stores hits m.l3_misses m.cycles);
      total :=
        {
          Symbex.State.instrs = !total.Symbex.State.instrs + m.instrs;
          loads = !total.loads + m.loads;
          stores = !total.stores + m.stores;
          l3_misses = !total.l3_misses + m.l3_misses;
          cycles = !total.cycles + m.cycles;
        })
    o.Analyze.predicted;
  let t = !total in
  Buffer.add_string buf
    (Printf.sprintf "# total\t%d\t%d\t%d\t%d\t%d\t%d\n" t.instrs t.loads
       t.stores (t.loads + t.stores - t.l3_misses) t.l3_misses t.cycles);
  Buffer.contents buf

let write ~prefix o =
  let write_file path contents =
    Util.Durable.write_string ~path contents;
    path
  in
  [
    write_file (prefix ^ ".ktest") (ktest_string o);
    write_file (prefix ^ ".metrics") (metrics_string o);
  ]
