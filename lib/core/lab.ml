(* The performance lab's run ledger and analysis pass.  See lab.mli for the
   determinism contract; the shape of the loop (read ledger -> rank ->
   suggest -> run -> re-ingest) follows the Latency Lab exemplar in
   SNIPPETS.md, rebuilt natively on Util.Durable + Obs.Json. *)

type source = Bench | Run_manifest | Profile | Journal_ledger

let source_name = function
  | Bench -> "bench"
  | Run_manifest -> "manifest"
  | Profile -> "profile"
  | Journal_ledger -> "journal"

let source_of_name = function
  | "bench" -> Ok Bench
  | "manifest" -> Ok Run_manifest
  | "profile" -> Ok Profile
  | "journal" -> Ok Journal_ledger
  | s -> Error (Printf.sprintf "unknown source %S" s)

type entry = {
  id : string;
  seconds : float;
  counters : (string * int) list;
  identity : Manifest.identity option;
  status : string;
}

type run = {
  run_id : string;
  source : source;
  file : string;
  generated_at : float;
  identity : Manifest.identity;
  schema : int;
  total_seconds : float;
  pool_tasks : int;
  pool_busy_ns : int;
  entries : entry list;
}

type store = {
  dir : string;
  runs : run list;
  duplicates : int;
  rejected : int;
  torn : int;
}

let ledger_schema_version = 1
let report_schema_version = 1

(* The newest bench --json schema this build can normalize. *)
let max_bench_schema = 3

(* ------------------------------------------------------------------ *)
(* JSON helpers                                                        *)
(* ------------------------------------------------------------------ *)

let member = Obs.Json.member

let str_of = function Obs.Json.Str s -> Some s | _ -> None

let num_of = function
  | Obs.Json.Float f -> Some f
  | Obs.Json.Int i -> Some (float_of_int i)
  | _ -> None

let int_of = function Obs.Json.Int i -> Some i | _ -> None

let get_str j k = Option.bind (member k j) str_of
let get_num j k = Option.bind (member k j) num_of
let get_int j k = Option.bind (member k j) int_of

(* ------------------------------------------------------------------ *)
(* Ledger record codec                                                 *)
(* ------------------------------------------------------------------ *)

let entry_json (e : entry) =
  Obs.Json.Obj
    ([
       ("id", Obs.Json.Str e.id);
       ("seconds", Obs.Json.Float e.seconds);
       ("status", Obs.Json.Str e.status);
       ( "counters",
         Obs.Json.Obj (List.map (fun (k, v) -> (k, Obs.Json.Int v)) e.counters)
       );
     ]
    @
    match e.identity with
    | Some i -> [ ("identity", Manifest.identity_json i) ]
    | None -> [])

let entry_of_json j =
  match (get_str j "id", get_num j "seconds", get_str j "status") with
  | Some id, Some seconds, Some status ->
      let counters =
        match member "counters" j with
        | Some (Obs.Json.Obj kvs) ->
            List.filter_map
              (fun (k, v) -> Option.map (fun n -> (k, n)) (int_of v))
              kvs
        | _ -> []
      in
      let identity =
        Option.bind (member "identity" j) (fun i ->
            Result.to_option (Manifest.identity_of_json i))
      in
      Ok { id; seconds; counters; identity; status }
  | _ -> Error "entry: missing id/seconds/status"

(* [for_id] blanks the provenance fields (run_id, file) so the digest is a
   pure function of the normalized content — the same artifact ingests to
   the same run_id from any path or filename. *)
let run_json ?(for_id = false) (r : run) =
  Obs.Json.Obj
    ([
       ("schema_version", Obs.Json.Int ledger_schema_version);
       ("kind", Obs.Json.Str "run");
     ]
    @ (if for_id then [] else [ ("run_id", Obs.Json.Str r.run_id) ])
    @ [
        ("source", Obs.Json.Str (source_name r.source));
        ("file", Obs.Json.Str (if for_id then "" else r.file));
        ("generated_at", Obs.Json.Float r.generated_at);
        ("identity", Manifest.identity_json r.identity);
        ("source_schema", Obs.Json.Int r.schema);
        ("total_seconds", Obs.Json.Float r.total_seconds);
        ( "pool",
          Obs.Json.Obj
            [
              ("tasks", Obs.Json.Int r.pool_tasks);
              ("busy_ns", Obs.Json.Int r.pool_busy_ns);
            ] );
        ("entries", Obs.Json.List (List.map entry_json r.entries));
      ])

let with_run_id r =
  let digest =
    Digest.to_hex (Digest.string (Obs.Json.to_string (run_json ~for_id:true r)))
  in
  { r with run_id = digest }

let run_of_json j =
  match get_int j "schema_version" with
  | Some v when v = ledger_schema_version -> (
      match get_str j "kind" with
      | Some "run" -> (
          match
            ( get_str j "run_id",
              Option.bind (get_str j "source") (fun s ->
                  Result.to_option (source_of_name s)),
              get_str j "file",
              get_num j "generated_at",
              Option.bind (member "identity" j) (fun i ->
                  Result.to_option (Manifest.identity_of_json i)),
              get_int j "source_schema",
              get_num j "total_seconds" )
          with
          | ( Some run_id,
              Some source,
              Some file,
              Some generated_at,
              Some identity,
              Some schema,
              Some total_seconds ) -> (
              let pool_tasks, pool_busy_ns =
                match member "pool" j with
                | Some p ->
                    ( Option.value ~default:0 (get_int p "tasks"),
                      Option.value ~default:0 (get_int p "busy_ns") )
                | None -> (0, 0)
              in
              match member "entries" j with
              | Some (Obs.Json.List es) -> (
                  let rec decode acc = function
                    | [] -> Ok (List.rev acc)
                    | e :: rest -> (
                        match entry_of_json e with
                        | Ok d -> decode (d :: acc) rest
                        | Error _ as err -> err)
                  in
                  match decode [] es with
                  | Ok entries ->
                      Ok
                        {
                          run_id;
                          source;
                          file;
                          generated_at;
                          identity;
                          schema;
                          total_seconds;
                          pool_tasks;
                          pool_busy_ns;
                          entries;
                        }
                  | Error e -> Error e)
              | _ -> Error "run record without an entries list")
          | _ -> Error "run record with missing or mistyped fields")
      | _ -> Error "not a run record")
  | Some v ->
      Error
        (Printf.sprintf "ledger schema_version %d (this build reads %d)" v
           ledger_schema_version)
  | None -> Error "record without schema_version"

(* ------------------------------------------------------------------ *)
(* Normalization                                                       *)
(* ------------------------------------------------------------------ *)

(* Identity of an artifact that predates per-entry identities: assembled
   from the top-level fields old manifests do carry.  The config digest is
   taken over the config object exactly as stored, which matches what the
   same build would have computed. *)
let fallback_identity j =
  match member "identity" j with
  | Some i when Result.is_ok (Manifest.identity_of_json i) ->
      Result.get_ok (Manifest.identity_of_json i)
  | _ ->
      {
        Manifest.git = Option.value ~default:"unknown" (get_str j "git");
        config_digest =
          (match member "config" j with
          | Some c -> Digest.to_hex (Digest.string (Obs.Json.to_string c))
          | None -> "");
        seed = Option.value ~default:0 (get_int j "seed");
        jobs = Option.value ~default:0 (get_int j "jobs");
        injection = "none";
      }

let counters_of_metrics m =
  match member "counters" m with
  | Some (Obs.Json.Obj kvs) ->
      List.filter_map
        (fun (k, v) -> Option.map (fun n -> (k, n)) (int_of v))
        kvs
  | _ -> []

let sort_counters l = List.sort (fun (a, _) (b, _) -> compare a b) l

let pool_of j =
  match member "pool" j with
  | Some p ->
      ( Option.value ~default:0 (get_int p "tasks"),
        Option.value ~default:0 (get_int p "worker_busy_ns") )
  | None -> (0, 0)

(* bench --json: one entry per experiments_timed element.  Metrics
   snapshots are cumulative over the campaign, so each entry's counters are
   the delta against the previous snapshot — the growth this experiment
   caused.  (Under -j > 1 the prewarm entry absorbs most of it.) *)
let normalize_bench ~file j =
  let schema = Option.value ~default:1 (get_int j "schema_version") in
  if schema > max_bench_schema then
    Error
      (Printf.sprintf "bench schema_version %d is newer than this build's %d"
         schema max_bench_schema)
  else
    match member "experiments_timed" j with
    | Some (Obs.Json.List timed) ->
        let prev = Hashtbl.create 32 in
        let entries =
          List.filter_map
            (fun ej ->
              match (get_str ej "id", get_num ej "seconds") with
              | Some id, Some seconds ->
                  let counters =
                    match member "metrics" ej with
                    | Some m ->
                        let cur = counters_of_metrics m in
                        let delta =
                          List.map
                            (fun (k, v) ->
                              let p =
                                Option.value ~default:0 (Hashtbl.find_opt prev k)
                              in
                              (k, v - p))
                            cur
                        in
                        List.iter (fun (k, v) -> Hashtbl.replace prev k v) cur;
                        sort_counters delta
                    | None -> []
                  in
                  let identity =
                    Option.bind (member "identity" ej) (fun i ->
                        Result.to_option (Manifest.identity_of_json i))
                  in
                  Some { id; seconds; counters; identity; status = "ok" }
              | _ -> None)
            timed
        in
        if entries = [] then Error "bench manifest with no timed experiments"
        else
          let total_seconds =
            List.fold_left (fun a e -> a +. e.seconds) 0.0 entries
          in
          let pool_tasks, pool_busy_ns = pool_of j in
          Ok
            (with_run_id
               {
                 run_id = "";
                 source = Bench;
                 file = Filename.basename file;
                 generated_at =
                   Option.value ~default:0.0 (get_num j "generated_at_unix");
                 identity = fallback_identity j;
                 schema;
                 total_seconds;
                 pool_tasks;
                 pool_busy_ns;
                 entries;
               })
    | _ -> Error "experiments_timed is not a list"

(* A run manifest (--metrics): one snapshot, one entry.  The counters are
   absolute (nothing to delta against) and there is no per-experiment wall
   time, so these runs feed counter analyses and provenance, not the wall
   rankings. *)
let normalize_manifest ~file j =
  let id =
    match get_str j "nf" with
    | Some nf -> nf
    | None -> (
        match member "experiments" j with
        | Some (Obs.Json.List ids) ->
            let names = List.filter_map str_of ids in
            if names = [] then "run" else String.concat "+" names
        | _ -> "run")
  in
  let counters =
    match member "metrics" j with
    | Some m -> sort_counters (counters_of_metrics m)
    | None -> []
  in
  let pool_tasks, pool_busy_ns = pool_of j in
  Ok
    (with_run_id
       {
         run_id = "";
         source = Run_manifest;
         file = Filename.basename file;
         generated_at =
           Option.value ~default:0.0 (get_num j "generated_at_unix");
         identity = fallback_identity j;
         schema = 1;
         total_seconds = 0.0;
         pool_tasks;
         pool_busy_ns;
         entries =
           [ { id; seconds = 0.0; counters; identity = None; status = "ok" } ];
       })

let normalize_profile ~file j =
  match (get_int j "total_cycles", member "blocks" j) with
  | Some total, Some (Obs.Json.List blocks) ->
      let id = Option.value ~default:"profile" (get_str j "nf") in
      let counters =
        sort_counters
          [
            ("profile.total_cycles", total);
            ("profile.blocks", List.length blocks);
          ]
      in
      Ok
        (with_run_id
           {
             run_id = "";
             source = Profile;
             file = Filename.basename file;
             generated_at = 0.0;
             (* Profile JSON carries no provenance fields; a fixed blank
                identity keeps the run_id a pure function of the content. *)
             identity =
               {
                 Manifest.git = "unknown";
                 config_digest = "";
                 seed = 0;
                 jobs = 0;
                 injection = "none";
               };
             schema = Option.value ~default:1 (get_int j "schema_version");
             total_seconds = 0.0;
             pool_tasks = 0;
             pool_busy_ns = 0;
             entries =
               [ { id; seconds = 0.0; counters; identity = None; status = "ok" } ];
           })
  | _ -> Error "profile JSON without total_cycles/blocks"

let normalize ~file j =
  match get_str j "kind" with
  | Some ("run" | "lab-report") ->
      Error "already a lab record (ingest the original artifact instead)"
  | _ -> (
      match member "experiments_timed" j with
      | Some _ -> normalize_bench ~file j
      | None -> (
          match (member "total_cycles" j, member "blocks" j) with
          | Some _, Some _ -> normalize_profile ~file j
          | _ -> (
              match (get_str j "tool", member "metrics" j) with
              | Some "castan", Some _ -> normalize_manifest ~file j
              | _ ->
                  Error
                    "unrecognized artifact (expected a bench manifest, run \
                     manifest, profile JSON or journal ledger)")))

(* A whole journal directory is one run: identity from the last open
   record, one entry per cell (last record per key wins, as on resume).
   Journal runs carry no wall time; they feed the failure-pattern scan. *)
let normalize_journal ~dir =
  let dir =
    if Filename.basename dir = "ledger.jsonl" then Filename.dirname dir
    else dir
  in
  let path = Filename.concat dir "ledger.jsonl" in
  match
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Ok s
    with Sys_error m -> Error m
  with
  | Error m -> Error (Printf.sprintf "cannot read %s: %s" path m)
  | Ok content ->
      let lines =
        String.split_on_char '\n' content
        |> List.filter (fun l -> String.trim l <> "")
      in
      let n = List.length lines in
      let identity = ref None and opens = ref 0 in
      let cells : (string, string * string) Hashtbl.t = Hashtbl.create 16 in
      let order = ref [] in
      List.iteri
        (fun i line ->
          match Obs.Json.parse line with
          | Error _ when i = n - 1 -> () (* torn final line *)
          | Error _ -> ()
          | Ok j -> (
              match get_str j "kind" with
              | Some "open" ->
                  incr opens;
                  Option.iter
                    (fun id ->
                      match Manifest.identity_of_json id with
                      | Ok id -> identity := Some id
                      | Error _ -> ())
                    (member "identity" j)
              | Some "cell" -> (
                  match (get_str j "key", get_str j "nf", get_str j "status")
                  with
                  | Some key, Some nf, Some status ->
                      if not (Hashtbl.mem cells key) then
                        order := key :: !order;
                      Hashtbl.replace cells key (nf, status)
                  | _ -> ())
              | _ -> ()))
        lines;
      (match !identity with
      | None -> Error (Printf.sprintf "%s: no open record with an identity" path)
      | Some identity ->
          let entries =
            List.rev_map
              (fun key ->
                let nf, status = Hashtbl.find cells key in
                { id = nf; seconds = 0.0; counters = []; identity = None;
                  status })
              !order
          in
          Ok
            (with_run_id
               {
                 run_id = "";
                 source = Journal_ledger;
                 file = Filename.concat (Filename.basename dir) "ledger.jsonl";
                 generated_at = 0.0;
                 identity;
                 schema = 1;
                 total_seconds = 0.0;
                 pool_tasks = 0;
                 pool_busy_ns = 0;
                 entries;
               }))

(* ------------------------------------------------------------------ *)
(* Ingestion                                                           *)
(* ------------------------------------------------------------------ *)

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Ok s
  with Sys_error m -> Error m

let normalize_file path =
  match read_file path with
  | Error m -> Error (Printf.sprintf "cannot read: %s" m)
  | Ok content -> (
      match Obs.Json.parse content with
      | Error e -> Error (Printf.sprintf "not JSON: %s" e)
      | Ok j -> normalize ~file:path j)

let ingest_paths paths =
  List.concat_map
    (fun path ->
      if Sys.file_exists path && Sys.is_directory path then
        if Sys.file_exists (Filename.concat path "ledger.jsonl") then
          [ (path, normalize_journal ~dir:path) ]
        else
          Sys.readdir path |> Array.to_list
          |> List.filter (fun f -> Filename.check_suffix f ".json")
          |> List.sort compare
          |> List.map (fun f ->
                 let full = Filename.concat path f in
                 (full, normalize_file full))
      else if Filename.basename path = "ledger.jsonl" then
        [ (path, normalize_journal ~dir:path) ]
      else [ (path, normalize_file path) ])
    paths

let ledger_path dir = Filename.concat dir "ledger.jsonl"

let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let load ~dir =
  let path = ledger_path dir in
  if not (Sys.file_exists path) then
    Ok { dir; runs = []; duplicates = 0; rejected = 0; torn = 0 }
  else
    match read_file path with
    | Error m -> Error (Printf.sprintf "cannot read %s: %s" path m)
    | Ok content ->
        let lines =
          String.split_on_char '\n' content
          |> List.filter (fun l -> String.trim l <> "")
        in
        let n = List.length lines in
        let seen = Hashtbl.create 64 in
        let runs = ref [] in
        let duplicates = ref 0 and rejected = ref 0 and torn = ref 0 in
        List.iteri
          (fun i line ->
            match Obs.Json.parse line with
            | Error _ when i = n - 1 -> incr torn
            | Error _ -> incr rejected
            | Ok j -> (
                match run_of_json j with
                | Error _ -> incr rejected
                | Ok r ->
                    if Hashtbl.mem seen r.run_id then incr duplicates
                    else begin
                      Hashtbl.add seen r.run_id ();
                      runs := r :: !runs
                    end))
          lines;
        let runs =
          List.sort
            (fun a b ->
              compare (a.generated_at, a.run_id) (b.generated_at, b.run_id))
            (List.rev !runs)
        in
        Ok { dir; runs; duplicates = !duplicates; rejected = !rejected;
             torn = !torn }

type ingest_stats = {
  ingested : int;
  duplicate : int;
  errors : (string * string) list;
}

let ingest ~dir paths =
  mkdir_p dir;
  match load ~dir with
  | Error e -> Error e
  | Ok store ->
      let known = Hashtbl.create 64 in
      List.iter (fun r -> Hashtbl.replace known r.run_id ()) store.runs;
      let results = ingest_paths paths in
      let appender = Util.Durable.append_open (ledger_path dir) in
      let ingested = ref 0 and duplicate = ref 0 and errors = ref [] in
      List.iter
        (fun (path, result) ->
          match result with
          | Error e -> errors := (path, e) :: !errors
          | Ok run ->
              if Hashtbl.mem known run.run_id then incr duplicate
              else begin
                Hashtbl.replace known run.run_id ();
                Util.Durable.append_line appender
                  (Obs.Json.to_string (run_json run));
                incr ingested
              end)
        results;
      Util.Durable.append_close appender;
      Ok
        { ingested = !ingested; duplicate = !duplicate;
          errors = List.rev !errors }

(* ------------------------------------------------------------------ *)
(* Lookup and diffing                                                  *)
(* ------------------------------------------------------------------ *)

let short id = if String.length id > 12 then String.sub id 0 12 else id

let find_run store selector =
  let newest_first = List.rev store.runs in
  let describe r =
    Printf.sprintf "  %s  %s (%s)" (short r.run_id) r.file
      (source_name r.source)
  in
  let no_match () =
    Error
      (Printf.sprintf
         "no run matches %S; ledger holds %d run(s):\n%s" selector
         (List.length store.runs)
         (String.concat "\n" (List.map describe newest_first)))
  in
  if store.runs = [] then Error "the lab ledger is empty (run `lab ingest')"
  else if selector = "latest" then Ok (List.hd newest_first)
  else if String.length selector > 7 && String.sub selector 0 7 = "latest~"
  then
    match
      int_of_string_opt
        (String.sub selector 7 (String.length selector - 7))
    with
    | Some k when k >= 0 && k < List.length newest_first ->
        Ok (List.nth newest_first k)
    | Some _ -> no_match ()
    | None -> Error (Printf.sprintf "bad selector %S" selector)
  else
    let prefix_matches =
      List.filter
        (fun r ->
          String.length selector <= String.length r.run_id
          && String.sub r.run_id 0 (String.length selector) = selector)
        newest_first
    in
    match prefix_matches with
    | [ r ] -> Ok r
    | _ :: _ :: _ ->
        Error
          (Printf.sprintf "run id prefix %S is ambiguous:\n%s" selector
             (String.concat "\n" (List.map describe prefix_matches)))
    | [] -> (
        let base = Filename.basename selector in
        match List.filter (fun r -> r.file = base) newest_first with
        | r :: _ -> Ok r
        | [] -> no_match ())

let timings run =
  List.filter_map
    (fun e ->
      if e.status = "ok" && e.seconds > 0.0 then Some (e.id, e.seconds)
      else None)
    run.entries

let comparable a b =
  a.identity.Manifest.config_digest = b.identity.Manifest.config_digest
  && a.identity.Manifest.seed = b.identity.Manifest.seed
  && a.identity.Manifest.jobs = b.identity.Manifest.jobs
  && a.identity.Manifest.injection = b.identity.Manifest.injection

let latest_pair store =
  let newest_first = List.rev store.runs in
  match List.filter (fun r -> r.total_seconds > 0.0) newest_first with
  | [] -> Error "no wall-bearing runs in the ledger"
  | newest :: older -> (
      match List.find_opt (comparable newest) older with
      | Some base -> Ok (base, newest)
      | None ->
          Error
            (Printf.sprintf
               "no earlier run is comparable to %s (%s): same config \
                digest, seed, -j %d and injection signature required"
               (short newest.run_id) newest.file newest.identity.Manifest.jobs))

let render_diff ~noise ~max_regress ~base_label ~next_label ~base ~next =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "diff: %s -> %s (gate %.0f%%, noise %.3fs)\n"
    base_label next_label max_regress noise;
  let regressions = ref 0 in
  List.iter
    (fun (id, t1) ->
      match List.assoc_opt id base with
      | None -> Printf.bprintf buf "  %-24s %8.3fs  (new experiment)\n" id t1
      | Some t0 ->
          let delta = t1 -. t0 in
          let pct = if t0 > 0.0 then 100.0 *. delta /. t0 else 0.0 in
          let gated = delta > noise && pct > max_regress in
          if gated then incr regressions;
          Printf.bprintf buf "  %-24s %8.3fs -> %8.3fs  %+7.1f%%%s\n" id t0 t1
            pct
            (if gated then "  REGRESSION"
             else if abs_float delta <= noise then "  (noise)"
             else ""))
    next;
  List.iter
    (fun (id, _) ->
      if not (List.mem_assoc id next) then
        Printf.bprintf buf "  %-24s (dropped from new run)\n" id)
    base;
  (Buffer.contents buf, !regressions)

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)
(* ------------------------------------------------------------------ *)

let counter name l = Option.value ~default:0 (List.assoc_opt name l)

let solver_queries c =
  counter "solver.verdict.sat" c
  + counter "solver.verdict.unsat" c
  + counter "solver.verdict.unknown" c

let cache_hit_rate c =
  let avoided =
    counter "solver.cache.hit" c
    + counter "solver.cache.subset_hit" c
    + counter "solver.cache.model_reuse" c
  in
  let queries = avoided + counter "solver.cache.miss" c in
  if queries = 0 then -1.0 else float_of_int avoided /. float_of_int queries

(* Which subsystem an entry's counter growth points at.  The weights are a
   documented heuristic (DESIGN.md §12): one solved query outweighs ~1000
   interpreted instructions, one cache-model access ~10.  "unknown" means
   the entry grew no counters at all (e.g. a pure replay experiment served
   from the campaign memo). *)
let bound_of c =
  let scores =
    [
      ("solver", 1000 * solver_queries c);
      ("symbex", counter "symbex.executed_instrs" c);
      ("cache-model",
       10 * (counter "cache.model.hit" c + counter "cache.model.miss" c));
    ]
  in
  let name, best =
    List.fold_left
      (fun (bn, bs) (n, s) -> if s > bs then (n, s) else (bn, bs))
      ("unknown", 0) scores
  in
  if best = 0 then "unknown" else name

type ranking = {
  rk_id : string;
  rk_runs : int;
  rk_latest : float;
  rk_best : float;
  rk_worst : float;
  rk_mean : float;
  rk_solver_queries : int;
  rk_cache_hit_rate : float;
  rk_bound : string;
}

type regression = {
  rg_id : string;
  rg_jobs : int;
  rg_streak : int;
  rg_base : float;
  rg_last : float;
  rg_pct : float;
  rg_bound : string;
  rg_from_run : string;
  rg_to_run : string;
}

type suggestion = {
  sg_kind : string;
  sg_experiment : string option;
  sg_action : string;
  sg_rationale : string;
}

type report = {
  rp_store : store;
  rp_rankings : ranking list;
  rp_regressions : regression list;
  rp_failures : (string * int) list;
  rp_suggestions : suggestion list;
}

(* Experiment rankings across history: one record per experiment id that
   carries wall time anywhere, aggregated over wall-bearing runs in ledger
   (content) order; "latest" fields come from the newest run. *)
let rankings store =
  let tbl : (string, (run * entry) list) Hashtbl.t = Hashtbl.create 64 in
  let ids = ref [] in
  List.iter
    (fun r ->
      if r.total_seconds > 0.0 then
        List.iter
          (fun e ->
            if e.status = "ok" && e.seconds > 0.0 then begin
              if not (Hashtbl.mem tbl e.id) then ids := e.id :: !ids;
              Hashtbl.replace tbl e.id
                ((r, e) :: Option.value ~default:[] (Hashtbl.find_opt tbl e.id))
            end)
          r.entries)
    store.runs;
  let records =
    List.rev_map
      (fun id ->
        let occurrences = Hashtbl.find tbl id in
        (* built newest-last reversed: head is the newest occurrence *)
        let _, latest = List.hd occurrences in
        let seconds = List.map (fun (_, e) -> e.seconds) occurrences in
        let n = List.length seconds in
        {
          rk_id = id;
          rk_runs = n;
          rk_latest = latest.seconds;
          rk_best = List.fold_left min infinity seconds;
          rk_worst = List.fold_left max 0.0 seconds;
          rk_mean = List.fold_left ( +. ) 0.0 seconds /. float_of_int n;
          rk_solver_queries = solver_queries latest.counters;
          rk_cache_hit_rate = cache_hit_rate latest.counters;
          rk_bound = bound_of latest.counters;
        })
      !ids
  in
  List.sort
    (fun a b -> compare (b.rk_latest, a.rk_id) (a.rk_latest, b.rk_id))
    records

(* The regression scan walks each comparable group (identity up to git) in
   ledger order and reports experiments whose *last* transition regressed,
   with the streak of consecutive regressing transitions behind it. *)
let regressions ~noise ~max_regress store =
  let groups : (string, run list) Hashtbl.t = Hashtbl.create 8 in
  let keys = ref [] in
  List.iter
    (fun r ->
      if r.total_seconds > 0.0 then begin
        let k =
          Printf.sprintf "%s|%d|%d|%s" r.identity.Manifest.config_digest
            r.identity.Manifest.seed r.identity.Manifest.jobs
            r.identity.Manifest.injection
        in
        if not (Hashtbl.mem groups k) then keys := k :: !keys;
        Hashtbl.replace groups k
          (r :: Option.value ~default:[] (Hashtbl.find_opt groups k))
      end)
    store.runs;
  let findings = ref [] in
  List.iter
    (fun key ->
      let runs = List.rev (Hashtbl.find groups key) in
      (* per id: the (run, seconds, counters) sequence in run order *)
      let seqs : (string, (run * entry) list) Hashtbl.t = Hashtbl.create 32 in
      let ids = ref [] in
      List.iter
        (fun r ->
          List.iter
            (fun e ->
              if e.status = "ok" && e.seconds > 0.0 then begin
                if not (Hashtbl.mem seqs e.id) then ids := e.id :: !ids;
                Hashtbl.replace seqs e.id
                  ((r, e)
                  :: Option.value ~default:[] (Hashtbl.find_opt seqs e.id))
              end)
            r.entries)
        runs;
      List.iter
        (fun id ->
          match List.rev (Hashtbl.find seqs id) with
          | [] | [ _ ] -> ()
          | seq ->
              let arr = Array.of_list seq in
              let n = Array.length arr in
              let regress i =
                (* transition arr.(i-1) -> arr.(i) *)
                let _, p = arr.(i - 1) and _, c = arr.(i) in
                let delta = c.seconds -. p.seconds in
                delta > noise
                && 100.0 *. delta /. p.seconds > max_regress
              in
              if regress (n - 1) then begin
                let start = ref (n - 1) in
                while !start > 1 && regress (!start - 1) do
                  decr start
                done;
                let base_run, base_entry = arr.(!start - 1) in
                let last_run, last_entry = arr.(n - 1) in
                findings :=
                  {
                    rg_id = id;
                    rg_jobs = last_run.identity.Manifest.jobs;
                    rg_streak = n - !start;
                    rg_base = base_entry.seconds;
                    rg_last = last_entry.seconds;
                    rg_pct =
                      100.0
                      *. (last_entry.seconds -. base_entry.seconds)
                      /. base_entry.seconds;
                    rg_bound = bound_of last_entry.counters;
                    rg_from_run = short base_run.run_id;
                    rg_to_run = short last_run.run_id;
                  }
                  :: !findings
              end)
        (List.rev !ids))
    (List.rev !keys);
  List.sort (fun a b -> compare (b.rg_pct, a.rg_id) (a.rg_pct, b.rg_id))
    (List.rev !findings)

(* Failure patterns: "<id> <status>" for failed cells/entries, "<id>
   degraded" for entries whose delta counters show degraded symbex runs.
   Counted per distinct run. *)
let failure_patterns store =
  let tbl : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let note pattern run_id =
    let prev = Option.value ~default:[] (Hashtbl.find_opt tbl pattern) in
    if prev = [] then order := pattern :: !order;
    if not (List.mem run_id prev) then
      Hashtbl.replace tbl pattern (run_id :: prev)
  in
  List.iter
    (fun r ->
      List.iter
        (fun e ->
          if e.status <> "ok" then
            note (Printf.sprintf "%s %s" e.id e.status) r.run_id;
          if counter "symbex.degraded_runs" e.counters > 0 then
            note (Printf.sprintf "%s degraded" e.id) r.run_id)
        r.entries)
    store.runs;
  List.rev_map
    (fun p -> (p, List.length (Hashtbl.find tbl p)))
    !order
  |> List.sort (fun (pa, ca) (pb, cb) -> compare (cb, pa) (ca, pb))

let suggestions ~regressions:regs ~failures store =
  let of_regression rg =
    let id = rg.rg_id in
    let streak =
      if rg.rg_streak > 1 then
        Printf.sprintf "regressed %d runs straight" rg.rg_streak
      else "regressed in the latest run"
    in
    match rg.rg_bound with
    | "solver" ->
        {
          sg_kind = "regression-ab";
          sg_experiment = Some id;
          sg_action =
            Printf.sprintf
              "castan experiment %s --metrics ab-%s-nocache.json \
               --no-solver-cache  # then diff vs a default run" id id;
          sg_rationale =
            Printf.sprintf
              "%s %s (%.3fs -> %.3fs, +%.0f%%) and its counter growth is \
               solver-bound: A/B --no-solver-cache to confirm the \
               regression lives in the solver layer" id streak rg.rg_base
              rg.rg_last rg.rg_pct;
        }
    | "cache-model" ->
        {
          sg_kind = "regression-ab";
          sg_experiment = Some id;
          sg_action =
            Printf.sprintf
              "castan experiment ablation-cache-model --metrics \
               ab-%s-cachemodel.json  # cache-model ablation" id;
          sg_rationale =
            Printf.sprintf
              "%s %s (%.3fs -> %.3fs, +%.0f%%) and is cache-model-bound: \
               re-run the cache-model ablation to isolate the simulator" id
              streak rg.rg_base rg.rg_last rg.rg_pct;
        }
    | "symbex" ->
        {
          sg_kind = "regression-ab";
          sg_experiment = Some id;
          sg_action =
            Printf.sprintf
              "castan profile --nf <nf> --analyze --profile-json \
               ab-%s-profile.json  # attribute the new cycles" id;
          sg_rationale =
            Printf.sprintf
              "%s %s (%.3fs -> %.3fs, +%.0f%%) and is symbex-bound: \
               profile the exploration to find the hot blocks" id streak
              rg.rg_base rg.rg_last rg.rg_pct;
        }
    | _ ->
        {
          sg_kind = "regression-ab";
          sg_experiment = Some id;
          sg_action =
            Printf.sprintf "castan experiment %s --metrics recheck-%s.json"
              id id;
          sg_rationale =
            Printf.sprintf
              "%s %s (%.3fs -> %.3fs, +%.0f%%) with no counter growth to \
               attribute: re-run with --metrics to collect one" id streak
              rg.rg_base rg.rg_last rg.rg_pct;
        }
  in
  (* The ROADMAP's single-core-only baseline gap: a -jN / -j1 pair under
     the same code and config whose speedup never materialized, or a
     ledger that has never seen a multicore run at all. *)
  let jobs_gap () =
    let wall = List.filter (fun r -> r.total_seconds > 0.0) store.runs in
    let pair_key r =
      Printf.sprintf "%s|%s|%d|%s" r.identity.Manifest.git
        r.identity.Manifest.config_digest r.identity.Manifest.seed
        r.identity.Manifest.injection
    in
    let groups : (string, run list) Hashtbl.t = Hashtbl.create 8 in
    let keys = ref [] in
    List.iter
      (fun r ->
        let k = pair_key r in
        if not (Hashtbl.mem groups k) then keys := k :: !keys;
        Hashtbl.replace groups k
          (r :: Option.value ~default:[] (Hashtbl.find_opt groups k)))
      wall;
    let pair_suggestions =
      List.filter_map
        (fun k ->
          let runs = Hashtbl.find groups k in
          let j1 =
            List.find_opt (fun r -> r.identity.Manifest.jobs = 1) runs
          in
          let jn =
            List.fold_left
              (fun acc r ->
                if r.identity.Manifest.jobs > 1 then
                  match acc with
                  | Some b
                    when b.identity.Manifest.jobs >= r.identity.Manifest.jobs
                    -> acc
                  | _ -> Some r
                else acc)
              None runs
          in
          match (j1, jn) with
          | Some a, Some b ->
              let speedup = a.total_seconds /. b.total_seconds in
              (* Below half the ideal speedup the pair does not prove
                 scaling — e.g. baselines produced on a single real core
                 (the ROADMAP gap) land well under this line. *)
              if
                speedup < float_of_int b.identity.Manifest.jobs /. 2.0
              then
                Some
                  {
                    sg_kind = "jobs-sweep";
                    sg_experiment = None;
                    sg_action =
                      Printf.sprintf
                        "bench/main.exe --quick -j %d --json \
                         bench/baselines/  # on a machine with >= %d real \
                         cores" b.identity.Manifest.jobs
                        b.identity.Manifest.jobs;
                    sg_rationale =
                      Printf.sprintf
                        "baseline pair %s / %s shows only %.2fx at -j %d \
                         vs -j 1 (under half the ideal) — the \
                         single-core-only baseline gap (ROADMAP): \
                         multicore speedup is still unproven; re-run the \
                         sweep on real cores" a.file b.file speedup
                        b.identity.Manifest.jobs;
                  }
              else None
          | _ -> None)
        (List.rev !keys)
    in
    if pair_suggestions <> [] then pair_suggestions
    else if
      List.length wall >= 3
      && List.for_all (fun r -> r.identity.Manifest.jobs <= 1) wall
    then
      [
        {
          sg_kind = "jobs-sweep";
          sg_experiment = None;
          sg_action = "bench/main.exe --quick -j 4 --json bench/baselines/";
          sg_rationale =
            Printf.sprintf
              "all %d wall-bearing runs in the ledger are -j 1 only: run a \
               -j 4 sweep so the pool's scaling is measured, not assumed"
              (List.length wall);
        };
      ]
    else []
  in
  let of_failures =
    List.filter_map
      (fun (pattern, count) ->
        if count < 2 then None
        else
          let id =
            match String.index_opt pattern ' ' with
            | Some sp -> String.sub pattern 0 sp
            | None -> pattern
          in
          Some
            {
              sg_kind = "failure";
              sg_experiment = Some id;
              sg_action =
                Printf.sprintf
                  "castan experiment %s --fail-fast --log-level debug" id;
              sg_rationale =
                Printf.sprintf
                  "recurring failure pattern %S (seen in %d runs): \
                   reproduce under --fail-fast before trusting its timings"
                  pattern count;
            })
      failures
  in
  if store.runs = [] then
    [
      {
        sg_kind = "ingest";
        sg_experiment = None;
        sg_action = "castan lab ingest bench/baselines";
        sg_rationale =
          "the ledger is empty: ingest the committed baselines, then run \
           and ingest a fresh campaign";
      };
    ]
  else List.map of_regression regs @ jobs_gap () @ of_failures

let report ?(noise = 0.05) ?(max_regress = 20.0) store =
  let rp_rankings = rankings store in
  let rp_regressions = regressions ~noise ~max_regress store in
  let rp_failures = failure_patterns store in
  let rp_suggestions =
    suggestions ~regressions:rp_regressions ~failures:rp_failures store
  in
  { rp_store = store; rp_rankings; rp_regressions; rp_failures;
    rp_suggestions }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let take n l =
  let rec go n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: rest -> x :: go (n - 1) rest
  in
  go n l

let ranking_json r =
  Obs.Json.Obj
    [
      ("id", Obs.Json.Str r.rk_id);
      ("runs", Obs.Json.Int r.rk_runs);
      ("latest_seconds", Obs.Json.Float r.rk_latest);
      ("best_seconds", Obs.Json.Float r.rk_best);
      ("worst_seconds", Obs.Json.Float r.rk_worst);
      ("mean_seconds", Obs.Json.Float r.rk_mean);
      ("solver_queries", Obs.Json.Int r.rk_solver_queries);
      ("cache_hit_rate", Obs.Json.Float r.rk_cache_hit_rate);
      ("bound", Obs.Json.Str r.rk_bound);
    ]

let report_json ?(top = 20) rp =
  let s = rp.rp_store in
  let entries = List.fold_left (fun a r -> a + List.length r.entries) 0 s.runs in
  Obs.Json.Obj
    [
      ("schema_version", Obs.Json.Int report_schema_version);
      ("kind", Obs.Json.Str "lab-report");
      ( "ledger",
        Obs.Json.Obj
          [
            ("dir", Obs.Json.Str s.dir);
            ("runs", Obs.Json.Int (List.length s.runs));
            ("entries", Obs.Json.Int entries);
            ("duplicates", Obs.Json.Int s.duplicates);
            ("rejected", Obs.Json.Int s.rejected);
            ("torn", Obs.Json.Int s.torn);
          ] );
      ( "runs",
        Obs.Json.List
          (List.map
             (fun r ->
               Obs.Json.Obj
                 [
                   ("run_id", Obs.Json.Str (short r.run_id));
                   ("source", Obs.Json.Str (source_name r.source));
                   ("file", Obs.Json.Str r.file);
                   ("generated_at", Obs.Json.Float r.generated_at);
                   ("git", Obs.Json.Str r.identity.Manifest.git);
                   ("jobs", Obs.Json.Int r.identity.Manifest.jobs);
                   ("total_seconds", Obs.Json.Float r.total_seconds);
                   ("experiments", Obs.Json.Int (List.length r.entries));
                 ])
             s.runs) );
      ( "rankings",
        Obs.Json.Obj
          [
            ( "by_wall_time",
              Obs.Json.List (List.map ranking_json (take top rp.rp_rankings))
            );
            ( "by_solver_queries",
              Obs.Json.List
                (List.map ranking_json
                   (take top
                      (List.filter (fun r -> r.rk_solver_queries > 0)
                         rp.rp_rankings
                      |> List.sort (fun a b ->
                             compare
                               (b.rk_solver_queries, a.rk_id)
                               (a.rk_solver_queries, b.rk_id))))) );
            ( "by_cache_hit_rate",
              Obs.Json.List
                (List.map ranking_json
                   (take top
                      (List.filter (fun r -> r.rk_cache_hit_rate >= 0.0)
                         rp.rp_rankings
                      |> List.sort (fun a b ->
                             compare
                               (a.rk_cache_hit_rate, a.rk_id)
                               (b.rk_cache_hit_rate, b.rk_id)))) ) );
          ] );
      ( "regressions",
        Obs.Json.List
          (List.map
             (fun rg ->
               Obs.Json.Obj
                 [
                   ("id", Obs.Json.Str rg.rg_id);
                   ("jobs", Obs.Json.Int rg.rg_jobs);
                   ("streak", Obs.Json.Int rg.rg_streak);
                   ("base_seconds", Obs.Json.Float rg.rg_base);
                   ("last_seconds", Obs.Json.Float rg.rg_last);
                   ("pct", Obs.Json.Float rg.rg_pct);
                   ("bound", Obs.Json.Str rg.rg_bound);
                   ("from_run", Obs.Json.Str rg.rg_from_run);
                   ("to_run", Obs.Json.Str rg.rg_to_run);
                 ])
             rp.rp_regressions) );
      ( "failure_patterns",
        Obs.Json.List
          (List.map
             (fun (pattern, count) ->
               Obs.Json.Obj
                 [
                   ("pattern", Obs.Json.Str pattern);
                   ("runs", Obs.Json.Int count);
                 ])
             rp.rp_failures) );
      ( "suggested_next",
        Obs.Json.List
          (List.map
             (fun sg ->
               Obs.Json.Obj
                 ([ ("kind", Obs.Json.Str sg.sg_kind) ]
                 @ (match sg.sg_experiment with
                   | Some e -> [ ("experiment", Obs.Json.Str e) ]
                   | None -> [])
                 @ [
                     ("action", Obs.Json.Str sg.sg_action);
                     ("rationale", Obs.Json.Str sg.sg_rationale);
                   ]))
             rp.rp_suggestions) );
    ]

let report_table ?(top = 20) rp =
  let buf = Buffer.create 1024 in
  let s = rp.rp_store in
  Printf.bprintf buf
    "lab: %d run(s) in %s (%d duplicate, %d rejected, %d torn record(s) \
     skipped)\n"
    (List.length s.runs) s.dir s.duplicates s.rejected s.torn;
  List.iter
    (fun r ->
      Printf.bprintf buf "  %s  %-8s -j%-2s %8.1fs  %s\n" (short r.run_id)
        (source_name r.source)
        (if r.identity.Manifest.jobs > 0 then
           string_of_int r.identity.Manifest.jobs
         else "?")
        r.total_seconds r.file)
    s.runs;
  if rp.rp_rankings <> [] then begin
    Buffer.add_string buf "\nslowest experiments (latest wall time):\n";
    Buffer.add_string buf
      (Util.Table.render
         ~header:
           [ "experiment"; "runs"; "latest s"; "best s"; "worst s"; "bound";
             "cache hit" ]
         ~rows:
           (List.map
              (fun r ->
                [
                  r.rk_id;
                  string_of_int r.rk_runs;
                  Printf.sprintf "%.3f" r.rk_latest;
                  Printf.sprintf "%.3f" r.rk_best;
                  Printf.sprintf "%.3f" r.rk_worst;
                  r.rk_bound;
                  (if r.rk_cache_hit_rate < 0.0 then "-"
                   else Printf.sprintf "%.0f%%" (100.0 *. r.rk_cache_hit_rate));
                ])
              (take top rp.rp_rankings)))
  end;
  if rp.rp_regressions <> [] then begin
    Buffer.add_string buf "\nregressions (latest run vs its predecessor):\n";
    List.iter
      (fun rg ->
        Printf.bprintf buf
          "  %-24s %8.3fs -> %8.3fs  +%.0f%%  streak %d  %s-bound  (%s -> \
           %s)\n"
          rg.rg_id rg.rg_base rg.rg_last rg.rg_pct rg.rg_streak rg.rg_bound
          rg.rg_from_run rg.rg_to_run)
      rp.rp_regressions
  end;
  if rp.rp_failures <> [] then begin
    Buffer.add_string buf "\nfailure patterns:\n";
    List.iter
      (fun (pattern, count) ->
        Printf.bprintf buf "  %-40s seen in %d run(s)\n" pattern count)
      rp.rp_failures
  end;
  if rp.rp_suggestions <> [] then begin
    Buffer.add_string buf "\nsuggested next experiments:\n";
    List.iter
      (fun sg ->
        Printf.bprintf buf "  [%s] %s\n      $ %s\n" sg.sg_kind
          sg.sg_rationale sg.sg_action)
      rp.rp_suggestions
  end;
  Buffer.contents buf
