(* The performance lab's run ledger and analysis pass.  See lab.mli for the
   determinism contract; the shape of the loop (read ledger -> rank ->
   suggest -> run -> re-ingest) follows the Latency Lab exemplar in
   SNIPPETS.md, rebuilt natively on Util.Durable + Obs.Json. *)

type source = Bench | Run_manifest | Profile | Journal_ledger

let source_name = function
  | Bench -> "bench"
  | Run_manifest -> "manifest"
  | Profile -> "profile"
  | Journal_ledger -> "journal"

let source_of_name = function
  | "bench" -> Ok Bench
  | "manifest" -> Ok Run_manifest
  | "profile" -> Ok Profile
  | "journal" -> Ok Journal_ledger
  | s -> Error (Printf.sprintf "unknown source %S" s)

type entry = {
  id : string;
  seconds : float;
  counters : (string * int) list;
  identity : Manifest.identity option;
  status : string;
}

type run = {
  run_id : string;
  source : source;
  file : string;
  generated_at : float;
  identity : Manifest.identity;
  schema : int;
  total_seconds : float;
  pool_tasks : int;
  pool_busy_ns : int;
  entries : entry list;
  (* Hypothesis-arm provenance.  Evidence runs (everything a user ingests)
     carry role "evidence" and empty hypothesis/arm; runs produced by the
     run-next engine carry role "hypothesis" plus the hypothesis key and
     arm name, and are excluded from rankings/regressions/failures so an
     A/B arm can never masquerade as a fresh regression and re-trigger
     the very suggestion it is testing. *)
  role : string;
  hypothesis : string;
  arm : string;
}

type outcome = Held | Refuted | Inconclusive

let outcome_name = function
  | Held -> "held"
  | Refuted -> "refuted"
  | Inconclusive -> "inconclusive"

let outcome_of_name = function
  | "held" -> Ok Held
  | "refuted" -> Ok Refuted
  | "inconclusive" -> Ok Inconclusive
  | s -> Error (Printf.sprintf "unknown outcome %S" s)

type verdict = {
  vd_id : string;
  vd_hypothesis : string;
  vd_kind : string;
  vd_experiment : string option;
  vd_outcome : outcome;
  vd_base_run : string;
  vd_test_run : string;
  vd_base_seconds : float;
  vd_test_seconds : float;
  vd_delta_pct : float;
  vd_noise : float;
  vd_max_regress : float;
  vd_runs_performed : int;
  vd_generated_at : float;
  vd_detail : string;
}

type store = {
  dir : string;
  runs : run list;
  verdicts : verdict list;
  duplicates : int;
  rejected : int;
  torn : int;
}

let ledger_schema_version = 1
let report_schema_version = 2

(* The newest bench --json schema this build can normalize. *)
let max_bench_schema = 3

(* ------------------------------------------------------------------ *)
(* JSON helpers                                                        *)
(* ------------------------------------------------------------------ *)

let member = Obs.Json.member

let str_of = function Obs.Json.Str s -> Some s | _ -> None

let num_of = function
  | Obs.Json.Float f -> Some f
  | Obs.Json.Int i -> Some (float_of_int i)
  | _ -> None

let int_of = function Obs.Json.Int i -> Some i | _ -> None

let get_str j k = Option.bind (member k j) str_of
let get_num j k = Option.bind (member k j) num_of
let get_int j k = Option.bind (member k j) int_of

(* ------------------------------------------------------------------ *)
(* Ledger record codec                                                 *)
(* ------------------------------------------------------------------ *)

let entry_json (e : entry) =
  Obs.Json.Obj
    ([
       ("id", Obs.Json.Str e.id);
       ("seconds", Obs.Json.Float e.seconds);
       ("status", Obs.Json.Str e.status);
       ( "counters",
         Obs.Json.Obj (List.map (fun (k, v) -> (k, Obs.Json.Int v)) e.counters)
       );
     ]
    @
    match e.identity with
    | Some i -> [ ("identity", Manifest.identity_json i) ]
    | None -> [])

let entry_of_json j =
  match (get_str j "id", get_num j "seconds", get_str j "status") with
  | Some id, Some seconds, Some status ->
      let counters =
        match member "counters" j with
        | Some (Obs.Json.Obj kvs) ->
            List.filter_map
              (fun (k, v) -> Option.map (fun n -> (k, n)) (int_of v))
              kvs
        | _ -> []
      in
      let identity =
        Option.bind (member "identity" j) (fun i ->
            Result.to_option (Manifest.identity_of_json i))
      in
      Ok { id; seconds; counters; identity; status }
  | _ -> Error "entry: missing id/seconds/status"

(* [for_id] blanks the provenance fields (run_id, file) so the digest is a
   pure function of the normalized content — the same artifact ingests to
   the same run_id from any path or filename. *)
let run_json ?(for_id = false) (r : run) =
  Obs.Json.Obj
    ([
       ("schema_version", Obs.Json.Int ledger_schema_version);
       ("kind", Obs.Json.Str "run");
     ]
    @ (if for_id then [] else [ ("run_id", Obs.Json.Str r.run_id) ])
    @ [
        ("source", Obs.Json.Str (source_name r.source));
        ("file", Obs.Json.Str (if for_id then "" else r.file));
        ("generated_at", Obs.Json.Float r.generated_at);
        ("identity", Manifest.identity_json r.identity);
        ("source_schema", Obs.Json.Int r.schema);
        ("total_seconds", Obs.Json.Float r.total_seconds);
        ( "pool",
          Obs.Json.Obj
            [
              ("tasks", Obs.Json.Int r.pool_tasks);
              ("busy_ns", Obs.Json.Int r.pool_busy_ns);
            ] );
        ("entries", Obs.Json.List (List.map entry_json r.entries));
      ]
    @
    (* Evidence runs omit the role triple entirely, so ledgers written
       before hypothesis runs existed re-encode byte-identically (and keep
       their run_ids). *)
    if r.role = "evidence" then []
    else
      [
        ("role", Obs.Json.Str r.role);
        ("hypothesis", Obs.Json.Str r.hypothesis);
        ("arm", Obs.Json.Str r.arm);
      ])

let with_run_id r =
  let digest =
    Digest.to_hex (Digest.string (Obs.Json.to_string (run_json ~for_id:true r)))
  in
  { r with run_id = digest }

let run_of_json j =
  match get_int j "schema_version" with
  | Some v when v = ledger_schema_version -> (
      match get_str j "kind" with
      | Some "run" -> (
          match
            ( get_str j "run_id",
              Option.bind (get_str j "source") (fun s ->
                  Result.to_option (source_of_name s)),
              get_str j "file",
              get_num j "generated_at",
              Option.bind (member "identity" j) (fun i ->
                  Result.to_option (Manifest.identity_of_json i)),
              get_int j "source_schema",
              get_num j "total_seconds" )
          with
          | ( Some run_id,
              Some source,
              Some file,
              Some generated_at,
              Some identity,
              Some schema,
              Some total_seconds ) -> (
              let pool_tasks, pool_busy_ns =
                match member "pool" j with
                | Some p ->
                    ( Option.value ~default:0 (get_int p "tasks"),
                      Option.value ~default:0 (get_int p "busy_ns") )
                | None -> (0, 0)
              in
              match member "entries" j with
              | Some (Obs.Json.List es) -> (
                  let rec decode acc = function
                    | [] -> Ok (List.rev acc)
                    | e :: rest -> (
                        match entry_of_json e with
                        | Ok d -> decode (d :: acc) rest
                        | Error _ as err -> err)
                  in
                  match decode [] es with
                  | Ok entries ->
                      Ok
                        {
                          run_id;
                          source;
                          file;
                          generated_at;
                          identity;
                          schema;
                          total_seconds;
                          pool_tasks;
                          pool_busy_ns;
                          entries;
                          role =
                            Option.value ~default:"evidence"
                              (get_str j "role");
                          hypothesis =
                            Option.value ~default:"" (get_str j "hypothesis");
                          arm = Option.value ~default:"" (get_str j "arm");
                        }
                  | Error e -> Error e)
              | _ -> Error "run record without an entries list")
          | _ -> Error "run record with missing or mistyped fields")
      | _ -> Error "not a run record")
  | Some v ->
      Error
        (Printf.sprintf "ledger schema_version %d (this build reads %d)" v
           ledger_schema_version)
  | None -> Error "record without schema_version"

(* Verdict records live in the same ledger file as runs, one JSON object
   per line, kind "verdict".  [for_id] blanks the id so the digest is a
   pure function of the verdict's content. *)
let verdict_json ?(for_id = false) (v : verdict) =
  Obs.Json.Obj
    ([
       ("schema_version", Obs.Json.Int ledger_schema_version);
       ("kind", Obs.Json.Str "verdict");
     ]
    @ (if for_id then [] else [ ("verdict_id", Obs.Json.Str v.vd_id) ])
    @ [
        ("hypothesis", Obs.Json.Str v.vd_hypothesis);
        ("suggestion_kind", Obs.Json.Str v.vd_kind);
      ]
    @ (match v.vd_experiment with
      | Some e -> [ ("experiment", Obs.Json.Str e) ]
      | None -> [])
    @ [
        ("outcome", Obs.Json.Str (outcome_name v.vd_outcome));
        ("base_run", Obs.Json.Str v.vd_base_run);
        ("test_run", Obs.Json.Str v.vd_test_run);
        ("base_seconds", Obs.Json.Float v.vd_base_seconds);
        ("test_seconds", Obs.Json.Float v.vd_test_seconds);
        ("delta_pct", Obs.Json.Float v.vd_delta_pct);
        ("noise", Obs.Json.Float v.vd_noise);
        ("max_regress", Obs.Json.Float v.vd_max_regress);
        ("runs_performed", Obs.Json.Int v.vd_runs_performed);
        ("generated_at", Obs.Json.Float v.vd_generated_at);
        ("detail", Obs.Json.Str v.vd_detail);
      ])

let with_verdict_id v =
  let digest =
    Digest.to_hex
      (Digest.string (Obs.Json.to_string (verdict_json ~for_id:true v)))
  in
  { v with vd_id = digest }

let verdict_of_json j =
  match get_int j "schema_version" with
  | Some v when v = ledger_schema_version -> (
      match get_str j "kind" with
      | Some "verdict" -> (
          match
            ( get_str j "verdict_id",
              get_str j "hypothesis",
              get_str j "suggestion_kind",
              Option.bind (get_str j "outcome") (fun s ->
                  Result.to_option (outcome_of_name s)),
              get_str j "base_run",
              get_str j "test_run",
              get_str j "detail" )
          with
          | ( Some vd_id,
              Some vd_hypothesis,
              Some vd_kind,
              Some vd_outcome,
              Some vd_base_run,
              Some vd_test_run,
              Some vd_detail ) -> (
              match
                ( get_num j "base_seconds",
                  get_num j "test_seconds",
                  get_num j "delta_pct",
                  get_num j "noise",
                  get_num j "max_regress",
                  get_int j "runs_performed",
                  get_num j "generated_at" )
              with
              | ( Some vd_base_seconds,
                  Some vd_test_seconds,
                  Some vd_delta_pct,
                  Some vd_noise,
                  Some vd_max_regress,
                  Some vd_runs_performed,
                  Some vd_generated_at ) ->
                  Ok
                    {
                      vd_id;
                      vd_hypothesis;
                      vd_kind;
                      vd_experiment = get_str j "experiment";
                      vd_outcome;
                      vd_base_run;
                      vd_test_run;
                      vd_base_seconds;
                      vd_test_seconds;
                      vd_delta_pct;
                      vd_noise;
                      vd_max_regress;
                      vd_runs_performed;
                      vd_generated_at;
                      vd_detail;
                    }
              | _ -> Error "verdict record with missing numeric fields")
          | _ -> Error "verdict record with missing or mistyped fields")
      | _ -> Error "not a verdict record")
  | Some v ->
      Error
        (Printf.sprintf "ledger schema_version %d (this build reads %d)" v
           ledger_schema_version)
  | None -> Error "record without schema_version"

(* ------------------------------------------------------------------ *)
(* Normalization                                                       *)
(* ------------------------------------------------------------------ *)

(* Identity of an artifact that predates per-entry identities: assembled
   from the top-level fields old manifests do carry.  The config digest is
   taken over the config object exactly as stored, which matches what the
   same build would have computed. *)
let fallback_identity j =
  match member "identity" j with
  | Some i when Result.is_ok (Manifest.identity_of_json i) ->
      Result.get_ok (Manifest.identity_of_json i)
  | _ ->
      {
        Manifest.git = Option.value ~default:"unknown" (get_str j "git");
        config_digest =
          (match member "config" j with
          | Some c -> Digest.to_hex (Digest.string (Obs.Json.to_string c))
          | None -> "");
        seed = Option.value ~default:0 (get_int j "seed");
        jobs = Option.value ~default:0 (get_int j "jobs");
        injection = "none";
        batch = Option.value ~default:0 (get_int j "batch");
        compile_mode = Option.value ~default:"" (get_str j "compile_mode");
      }

let counters_of_metrics m =
  match member "counters" m with
  | Some (Obs.Json.Obj kvs) ->
      List.filter_map
        (fun (k, v) -> Option.map (fun n -> (k, n)) (int_of v))
        kvs
  | _ -> []

let sort_counters l = List.sort (fun (a, _) (b, _) -> compare a b) l

let pool_of j =
  match member "pool" j with
  | Some p ->
      ( Option.value ~default:0 (get_int p "tasks"),
        Option.value ~default:0 (get_int p "worker_busy_ns") )
  | None -> (0, 0)

(* bench --json: one entry per experiments_timed element.  Metrics
   snapshots are cumulative over the campaign, so each entry's counters are
   the delta against the previous snapshot — the growth this experiment
   caused.  (Under -j > 1 the prewarm entry absorbs most of it.) *)
let normalize_bench ~file j =
  let schema = Option.value ~default:1 (get_int j "schema_version") in
  if schema > max_bench_schema then
    Error
      (Printf.sprintf "bench schema_version %d is newer than this build's %d"
         schema max_bench_schema)
  else
    match member "experiments_timed" j with
    | Some (Obs.Json.List timed) ->
        let prev = Hashtbl.create 32 in
        let entries =
          List.filter_map
            (fun ej ->
              match (get_str ej "id", get_num ej "seconds") with
              | Some id, Some seconds ->
                  let counters =
                    match member "metrics" ej with
                    | Some m ->
                        let cur = counters_of_metrics m in
                        let delta =
                          List.map
                            (fun (k, v) ->
                              let p =
                                Option.value ~default:0 (Hashtbl.find_opt prev k)
                              in
                              (k, v - p))
                            cur
                        in
                        List.iter (fun (k, v) -> Hashtbl.replace prev k v) cur;
                        sort_counters delta
                    | None -> []
                  in
                  let identity =
                    Option.bind (member "identity" ej) (fun i ->
                        Result.to_option (Manifest.identity_of_json i))
                  in
                  let status =
                    Option.value ~default:"ok" (get_str ej "status")
                  in
                  Some { id; seconds; counters; identity; status }
              | _ -> None)
            timed
        in
        if entries = [] then Error "bench manifest with no timed experiments"
        else
          let total_seconds =
            List.fold_left (fun a e -> a +. e.seconds) 0.0 entries
          in
          let pool_tasks, pool_busy_ns = pool_of j in
          Ok
            (with_run_id
               {
                 run_id = "";
                 source = Bench;
                 file = Filename.basename file;
                 generated_at =
                   Option.value ~default:0.0 (get_num j "generated_at_unix");
                 identity = fallback_identity j;
                 schema;
                 total_seconds;
                 pool_tasks;
                 pool_busy_ns;
                 entries;
                 (* Artifacts synthesized by the run-next engine mark
                    themselves; everything else is evidence. *)
                 role =
                   Option.value ~default:"evidence" (get_str j "lab_role");
                 hypothesis =
                   Option.value ~default:"" (get_str j "lab_hypothesis");
                 arm = Option.value ~default:"" (get_str j "lab_arm");
               })
    | _ -> Error "experiments_timed is not a list"

(* A run manifest (--metrics): one snapshot, one entry.  The counters are
   absolute (nothing to delta against) and there is no per-experiment wall
   time, so these runs feed counter analyses and provenance, not the wall
   rankings. *)
let normalize_manifest ~file j =
  let id =
    match get_str j "nf" with
    | Some nf -> nf
    | None -> (
        match member "experiments" j with
        | Some (Obs.Json.List ids) ->
            let names = List.filter_map str_of ids in
            if names = [] then "run" else String.concat "+" names
        | _ -> "run")
  in
  let counters =
    match member "metrics" j with
    | Some m -> sort_counters (counters_of_metrics m)
    | None -> []
  in
  let pool_tasks, pool_busy_ns = pool_of j in
  Ok
    (with_run_id
       {
         run_id = "";
         source = Run_manifest;
         file = Filename.basename file;
         generated_at =
           Option.value ~default:0.0 (get_num j "generated_at_unix");
         identity = fallback_identity j;
         schema = 1;
         total_seconds = 0.0;
         pool_tasks;
         pool_busy_ns;
         entries =
           [ { id; seconds = 0.0; counters; identity = None; status = "ok" } ];
         role = "evidence";
         hypothesis = "";
         arm = "";
       })

let normalize_profile ~file j =
  match (get_int j "total_cycles", member "blocks" j) with
  | Some total, Some (Obs.Json.List blocks) ->
      let id = Option.value ~default:"profile" (get_str j "nf") in
      let counters =
        sort_counters
          [
            ("profile.total_cycles", total);
            ("profile.blocks", List.length blocks);
          ]
      in
      Ok
        (with_run_id
           {
             run_id = "";
             source = Profile;
             file = Filename.basename file;
             generated_at = 0.0;
             (* Profile JSON carries no provenance fields; a fixed blank
                identity keeps the run_id a pure function of the content. *)
             identity =
               {
                 Manifest.git = "unknown";
                 config_digest = "";
                 seed = 0;
                 jobs = 0;
                 injection = "none";
                 batch = 0;
                 compile_mode = "";
               };
             schema = Option.value ~default:1 (get_int j "schema_version");
             total_seconds = 0.0;
             pool_tasks = 0;
             pool_busy_ns = 0;
             entries =
               [ { id; seconds = 0.0; counters; identity = None; status = "ok" } ];
             role = "evidence";
             hypothesis = "";
             arm = "";
           })
  | _ -> Error "profile JSON without total_cycles/blocks"

let normalize ~file j =
  match get_str j "kind" with
  | Some ("run" | "lab-report" | "verdict" | "event") ->
      Error "already a lab record (ingest the original artifact instead)"
  | _ -> (
      match member "experiments_timed" j with
      | Some _ -> normalize_bench ~file j
      | None -> (
          match (member "total_cycles" j, member "blocks" j) with
          | Some _, Some _ -> normalize_profile ~file j
          | _ -> (
              match (get_str j "tool", member "metrics" j) with
              | Some "castan", Some _ -> normalize_manifest ~file j
              | _ ->
                  Error
                    "unrecognized artifact (expected a bench manifest, run \
                     manifest, profile JSON or journal ledger)")))

(* A whole journal directory is one run: identity from the last open
   record, one entry per cell (last record per key wins, as on resume).
   Journal runs carry no wall time; they feed the failure-pattern scan. *)
let normalize_journal ~dir =
  let dir =
    if Filename.basename dir = "ledger.jsonl" then Filename.dirname dir
    else dir
  in
  let path = Filename.concat dir "ledger.jsonl" in
  match
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Ok s
    with Sys_error m -> Error m
  with
  | Error m -> Error (Printf.sprintf "cannot read %s: %s" path m)
  | Ok content ->
      let lines =
        String.split_on_char '\n' content
        |> List.filter (fun l -> String.trim l <> "")
      in
      let n = List.length lines in
      let identity = ref None and opens = ref 0 in
      let cells : (string, string * string) Hashtbl.t = Hashtbl.create 16 in
      let order = ref [] in
      List.iteri
        (fun i line ->
          match Obs.Json.parse line with
          | Error _ when i = n - 1 -> () (* torn final line *)
          | Error _ -> ()
          | Ok j -> (
              match get_str j "kind" with
              | Some "open" ->
                  incr opens;
                  Option.iter
                    (fun id ->
                      match Manifest.identity_of_json id with
                      | Ok id -> identity := Some id
                      | Error _ -> ())
                    (member "identity" j)
              | Some "cell" -> (
                  match (get_str j "key", get_str j "nf", get_str j "status")
                  with
                  | Some key, Some nf, Some status ->
                      if not (Hashtbl.mem cells key) then
                        order := key :: !order;
                      Hashtbl.replace cells key (nf, status)
                  | _ -> ())
              | _ -> ()))
        lines;
      (match !identity with
      | None -> Error (Printf.sprintf "%s: no open record with an identity" path)
      | Some identity ->
          let entries =
            List.rev_map
              (fun key ->
                let nf, status = Hashtbl.find cells key in
                { id = nf; seconds = 0.0; counters = []; identity = None;
                  status })
              !order
          in
          Ok
            (with_run_id
               {
                 run_id = "";
                 source = Journal_ledger;
                 file = Filename.concat (Filename.basename dir) "ledger.jsonl";
                 generated_at = 0.0;
                 identity;
                 schema = 1;
                 total_seconds = 0.0;
                 pool_tasks = 0;
                 pool_busy_ns = 0;
                 entries;
                 role = "evidence";
                 hypothesis = "";
                 arm = "";
               }))

(* ------------------------------------------------------------------ *)
(* Ingestion                                                           *)
(* ------------------------------------------------------------------ *)

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Ok s
  with Sys_error m -> Error m

let normalize_file path =
  match read_file path with
  | Error m -> Error (Printf.sprintf "cannot read: %s" m)
  | Ok content -> (
      match Obs.Json.parse content with
      | Error e -> Error (Printf.sprintf "not JSON: %s" e)
      | Ok j -> normalize ~file:path j)

let ingest_paths paths =
  List.concat_map
    (fun path ->
      if Sys.file_exists path && Sys.is_directory path then
        if Sys.file_exists (Filename.concat path "ledger.jsonl") then
          [ (path, normalize_journal ~dir:path) ]
        else
          Sys.readdir path |> Array.to_list
          |> List.filter (fun f -> Filename.check_suffix f ".json")
          |> List.sort compare
          |> List.map (fun f ->
                 let full = Filename.concat path f in
                 (full, normalize_file full))
      else if Filename.basename path = "ledger.jsonl" then
        [ (path, normalize_journal ~dir:path) ]
      else [ (path, normalize_file path) ])
    paths

let ledger_path dir = Filename.concat dir "ledger.jsonl"

let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let load ~dir =
  let path = ledger_path dir in
  if not (Sys.file_exists path) then
    Ok { dir; runs = []; verdicts = []; duplicates = 0; rejected = 0;
         torn = 0 }
  else
    match read_file path with
    | Error m -> Error (Printf.sprintf "cannot read %s: %s" path m)
    | Ok content ->
        let lines =
          String.split_on_char '\n' content
          |> List.filter (fun l -> String.trim l <> "")
        in
        let n = List.length lines in
        let seen = Hashtbl.create 64 in
        let vseen = Hashtbl.create 16 in
        let runs = ref [] and verdicts = ref [] in
        let duplicates = ref 0 and rejected = ref 0 and torn = ref 0 in
        List.iteri
          (fun i line ->
            match Obs.Json.parse line with
            | Error _ when i = n - 1 -> incr torn
            | Error _ -> incr rejected
            | Ok j -> (
                match get_str j "kind" with
                | Some "verdict" -> (
                    match verdict_of_json j with
                    | Error _ -> incr rejected
                    | Ok v ->
                        if Hashtbl.mem vseen v.vd_id then incr duplicates
                        else begin
                          Hashtbl.add vseen v.vd_id ();
                          verdicts := v :: !verdicts
                        end)
                | _ -> (
                    match run_of_json j with
                    | Error _ -> incr rejected
                    | Ok r ->
                        if Hashtbl.mem seen r.run_id then incr duplicates
                        else begin
                          Hashtbl.add seen r.run_id ();
                          runs := r :: !runs
                        end)))
          lines;
        let runs =
          List.sort
            (fun a b ->
              compare (a.generated_at, a.run_id) (b.generated_at, b.run_id))
            (List.rev !runs)
        in
        let verdicts =
          List.sort
            (fun a b ->
              compare (a.vd_generated_at, a.vd_id) (b.vd_generated_at, b.vd_id))
            (List.rev !verdicts)
        in
        Ok { dir; runs; verdicts; duplicates = !duplicates;
             rejected = !rejected; torn = !torn }

type ingest_stats = {
  ingested : int;
  duplicate : int;
  errors : (string * string) list;
}

let ingest ~dir paths =
  mkdir_p dir;
  match load ~dir with
  | Error e -> Error e
  | Ok store ->
      let known = Hashtbl.create 64 in
      List.iter (fun r -> Hashtbl.replace known r.run_id ()) store.runs;
      let results = ingest_paths paths in
      let appender = Util.Durable.append_open (ledger_path dir) in
      let ingested = ref 0 and duplicate = ref 0 and errors = ref [] in
      List.iter
        (fun (path, result) ->
          match result with
          | Error e -> errors := (path, e) :: !errors
          | Ok run ->
              if Hashtbl.mem known run.run_id then incr duplicate
              else begin
                Hashtbl.replace known run.run_id ();
                Util.Durable.append_line appender
                  (Obs.Json.to_string (run_json run));
                incr ingested
              end)
        results;
      Util.Durable.append_close appender;
      Ok
        { ingested = !ingested; duplicate = !duplicate;
          errors = List.rev !errors }

(* Appends one verdict record unless an identical one (same content id)
   is already present — the dedupe that makes re-running an already
   resolved action a no-op on the ledger file. *)
let append_verdict ~dir v =
  mkdir_p dir;
  match load ~dir with
  | Error e -> Error e
  | Ok store ->
      if List.exists (fun o -> o.vd_id = v.vd_id) store.verdicts then
        Ok false
      else begin
        let appender = Util.Durable.append_open (ledger_path dir) in
        Util.Durable.append_line appender
          (Obs.Json.to_string (verdict_json v));
        Util.Durable.append_close appender;
        Ok true
      end

(* ------------------------------------------------------------------ *)
(* Lookup and diffing                                                  *)
(* ------------------------------------------------------------------ *)

let short id = if String.length id > 12 then String.sub id 0 12 else id

let find_run store selector =
  let newest_first = List.rev store.runs in
  let describe r =
    Printf.sprintf "  %s  %s (%s)" (short r.run_id) r.file
      (source_name r.source)
  in
  let no_match () =
    Error
      (Printf.sprintf
         "no run matches %S; ledger holds %d run(s):\n%s" selector
         (List.length store.runs)
         (String.concat "\n" (List.map describe newest_first)))
  in
  if store.runs = [] then Error "the lab ledger is empty (run `lab ingest')"
  else if selector = "latest" then Ok (List.hd newest_first)
  else if String.length selector > 7 && String.sub selector 0 7 = "latest~"
  then
    match
      int_of_string_opt
        (String.sub selector 7 (String.length selector - 7))
    with
    | Some k when k >= 0 && k < List.length newest_first ->
        Ok (List.nth newest_first k)
    | Some k when k >= 0 ->
        Error
          (Printf.sprintf
             "%S is out of range: the ledger has %d run(s) (deepest \
              selector is latest~%d)"
             selector (List.length newest_first)
             (List.length newest_first - 1))
    | Some _ | None -> Error (Printf.sprintf "bad selector %S" selector)
  else
    let prefix_matches =
      List.filter
        (fun r ->
          String.length selector <= String.length r.run_id
          && String.sub r.run_id 0 (String.length selector) = selector)
        newest_first
    in
    match prefix_matches with
    | [ r ] -> Ok r
    | _ :: _ :: _ ->
        Error
          (Printf.sprintf "run id prefix %S is ambiguous:\n%s" selector
             (String.concat "\n" (List.map describe prefix_matches)))
    | [] -> (
        let base = Filename.basename selector in
        match List.filter (fun r -> r.file = base) newest_first with
        | r :: _ -> Ok r
        | [] -> no_match ())

(* `lab runs` filters: each is a pure function of the ledger contents, so
   the filtered list is independent of ingest order (the store is already
   sorted by content).  All given filters must hold (conjunction). *)
let filter_runs ?experiment ?since ?verdict store =
  let starts_with ~prefix s =
    String.length prefix <= String.length s
    && String.sub s 0 (String.length prefix) = prefix
  in
  let by_experiment runs =
    match experiment with
    | None -> Ok runs
    | Some prefix ->
        Ok
          (List.filter
             (fun r ->
               List.exists (fun e -> starts_with ~prefix e.id) r.entries)
             runs)
  in
  let by_since runs =
    match since with
    | None -> Ok runs
    | Some selector -> (
        match find_run store selector with
        | Error e -> Error e
        | Ok pivot ->
            Ok
              (List.filter
                 (fun r ->
                   compare (r.generated_at, r.run_id)
                     (pivot.generated_at, pivot.run_id)
                   > 0)
                 runs))
  in
  let by_verdict runs =
    match verdict with
    | None -> Ok runs
    | Some name -> (
        match outcome_of_name name with
        | Error e -> Error e
        | Ok outcome ->
            let referenced = Hashtbl.create 16 in
            List.iter
              (fun v ->
                if v.vd_outcome = outcome then begin
                  if v.vd_base_run <> "" then
                    Hashtbl.replace referenced v.vd_base_run ();
                  if v.vd_test_run <> "" then
                    Hashtbl.replace referenced v.vd_test_run ()
                end)
              store.verdicts;
            Ok (List.filter (fun r -> Hashtbl.mem referenced r.run_id) runs))
  in
  Result.bind (by_experiment store.runs) (fun runs ->
      Result.bind (by_since runs) by_verdict)

let timings run =
  List.filter_map
    (fun e ->
      if e.status = "ok" && e.seconds > 0.0 then Some (e.id, e.seconds)
      else None)
    run.entries

let comparable a b =
  a.identity.Manifest.config_digest = b.identity.Manifest.config_digest
  && a.identity.Manifest.seed = b.identity.Manifest.seed
  && a.identity.Manifest.jobs = b.identity.Manifest.jobs
  && a.identity.Manifest.injection = b.identity.Manifest.injection
  (* Replay knobs postdate older ledgers: 0 / "" mean "unknown" and match
     anything (so pre-replay fixtures stay pairable); two known-but-different
     values are never comparable. *)
  && (a.identity.Manifest.batch = b.identity.Manifest.batch
     || a.identity.Manifest.batch = 0
     || b.identity.Manifest.batch = 0)
  && (a.identity.Manifest.compile_mode = b.identity.Manifest.compile_mode
     || a.identity.Manifest.compile_mode = ""
     || b.identity.Manifest.compile_mode = "")

let latest_pair store =
  let newest_first = List.rev store.runs in
  match List.filter (fun r -> r.total_seconds > 0.0) newest_first with
  | [] -> Error "no wall-bearing runs in the ledger"
  | newest :: older -> (
      match List.find_opt (comparable newest) older with
      | Some base -> Ok (base, newest)
      | None ->
          Error
            (Printf.sprintf
               "no earlier run is comparable to %s (%s): same config \
                digest, seed, -j %d, injection signature, replay batch %d \
                and compile mode required"
               (short newest.run_id) newest.file newest.identity.Manifest.jobs
               newest.identity.Manifest.batch))

let render_diff ~noise ~max_regress ~base_label ~next_label ~base ~next =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "diff: %s -> %s (gate %.0f%%, noise %.3fs)\n"
    base_label next_label max_regress noise;
  let regressions = ref 0 in
  List.iter
    (fun (id, t1) ->
      match List.assoc_opt id base with
      | None -> Printf.bprintf buf "  %-24s %8.3fs  (new experiment)\n" id t1
      | Some t0 ->
          let delta = t1 -. t0 in
          let pct = if t0 > 0.0 then 100.0 *. delta /. t0 else 0.0 in
          let gated = delta > noise && pct > max_regress in
          if gated then incr regressions;
          Printf.bprintf buf "  %-24s %8.3fs -> %8.3fs  %+7.1f%%%s\n" id t0 t1
            pct
            (if gated then "  REGRESSION"
             else if abs_float delta <= noise then "  (noise)"
             else ""))
    next;
  List.iter
    (fun (id, _) ->
      if not (List.mem_assoc id next) then
        Printf.bprintf buf "  %-24s (dropped from new run)\n" id)
    base;
  (Buffer.contents buf, !regressions)

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)
(* ------------------------------------------------------------------ *)

let counter name l = Option.value ~default:0 (List.assoc_opt name l)

let solver_queries c =
  counter "solver.verdict.sat" c
  + counter "solver.verdict.unsat" c
  + counter "solver.verdict.unknown" c

let cache_hit_rate c =
  let avoided =
    counter "solver.cache.hit" c
    + counter "solver.cache.subset_hit" c
    + counter "solver.cache.model_reuse" c
  in
  let queries = avoided + counter "solver.cache.miss" c in
  if queries = 0 then -1.0 else float_of_int avoided /. float_of_int queries

(* Which subsystem an entry's counter growth points at.  The weights are a
   documented heuristic (DESIGN.md §12): one solved query outweighs ~1000
   interpreted instructions, one cache-model access ~10.  "unknown" means
   the entry grew no counters at all (e.g. a pure replay experiment served
   from the campaign memo). *)
let bound_of c =
  let scores =
    [
      ("solver", 1000 * solver_queries c);
      ("symbex", counter "symbex.executed_instrs" c);
      ("cache-model",
       10 * (counter "cache.model.hit" c + counter "cache.model.miss" c));
    ]
  in
  let name, best =
    List.fold_left
      (fun (bn, bs) (n, s) -> if s > bs then (n, s) else (bn, bs))
      ("unknown", 0) scores
  in
  if best = 0 then "unknown" else name

type ranking = {
  rk_id : string;
  rk_runs : int;
  rk_latest : float;
  rk_best : float;
  rk_worst : float;
  rk_mean : float;
  rk_solver_queries : int;
  rk_cache_hit_rate : float;
  rk_bound : string;
}

type regression = {
  rg_id : string;
  rg_jobs : int;
  rg_streak : int;
  rg_base : float;
  rg_last : float;
  rg_pct : float;
  rg_bound : string;
  rg_from_run : string;
  rg_to_run : string;
}

type suggestion = {
  sg_kind : string;
  sg_experiment : string option;
  sg_action : string;
  sg_rationale : string;
  sg_hypothesis : string;
}

type hypothesis = {
  hy_key : string;
  hy_kind : string;
  hy_experiment : string option;
  hy_status : string;
  hy_verdicts : int;
  hy_streak : int;
}

type report = {
  rp_store : store;
  rp_rankings : ranking list;
  rp_regressions : regression list;
  rp_failures : (string * int) list;
  rp_suggestions : suggestion list;
  rp_hypotheses : hypothesis list;
}

(* The hypothesis key names what a suggestion proposes to test, pinned to
   the evidence that raised it: a verdict recorded against the key resolves
   exactly this finding, and new evidence (a different to_run, a different
   baseline pair) opens a fresh key. *)
let regression_hypothesis rg =
  Printf.sprintf "regression-ab|%s|%s" rg.rg_id rg.rg_to_run

(* Experiment rankings across history: one record per experiment id that
   carries wall time anywhere, aggregated over wall-bearing runs in ledger
   (content) order; "latest" fields come from the newest run. *)
(* The analysis pass reads evidence only: hypothesis-arm runs answer a
   question the verdict records, they are not part of history. *)
let evidence store = List.filter (fun r -> r.role = "evidence") store.runs

let rankings store =
  let tbl : (string, (run * entry) list) Hashtbl.t = Hashtbl.create 64 in
  let ids = ref [] in
  List.iter
    (fun r ->
      if r.total_seconds > 0.0 then
        List.iter
          (fun e ->
            if e.status = "ok" && e.seconds > 0.0 then begin
              if not (Hashtbl.mem tbl e.id) then ids := e.id :: !ids;
              Hashtbl.replace tbl e.id
                ((r, e) :: Option.value ~default:[] (Hashtbl.find_opt tbl e.id))
            end)
          r.entries)
    (evidence store);
  let records =
    List.rev_map
      (fun id ->
        let occurrences = Hashtbl.find tbl id in
        (* built newest-last reversed: head is the newest occurrence *)
        let _, latest = List.hd occurrences in
        let seconds = List.map (fun (_, e) -> e.seconds) occurrences in
        let n = List.length seconds in
        {
          rk_id = id;
          rk_runs = n;
          rk_latest = latest.seconds;
          rk_best = List.fold_left min infinity seconds;
          rk_worst = List.fold_left max 0.0 seconds;
          rk_mean = List.fold_left ( +. ) 0.0 seconds /. float_of_int n;
          rk_solver_queries = solver_queries latest.counters;
          rk_cache_hit_rate = cache_hit_rate latest.counters;
          rk_bound = bound_of latest.counters;
        })
      !ids
  in
  List.sort
    (fun a b -> compare (b.rk_latest, a.rk_id) (a.rk_latest, b.rk_id))
    records

(* The regression scan walks each comparable group (identity up to git) in
   ledger order and reports experiments whose *last* transition regressed,
   with the streak of consecutive regressing transitions behind it. *)
let regressions ~noise ~max_regress store =
  let groups : (string, run list) Hashtbl.t = Hashtbl.create 8 in
  let keys = ref [] in
  List.iter
    (fun r ->
      if r.total_seconds > 0.0 then begin
        let k =
          Printf.sprintf "%s|%d|%d|%s" r.identity.Manifest.config_digest
            r.identity.Manifest.seed r.identity.Manifest.jobs
            r.identity.Manifest.injection
        in
        if not (Hashtbl.mem groups k) then keys := k :: !keys;
        Hashtbl.replace groups k
          (r :: Option.value ~default:[] (Hashtbl.find_opt groups k))
      end)
    (evidence store);
  let findings = ref [] in
  List.iter
    (fun key ->
      let runs = List.rev (Hashtbl.find groups key) in
      (* per id: the (run, seconds, counters) sequence in run order *)
      let seqs : (string, (run * entry) list) Hashtbl.t = Hashtbl.create 32 in
      let ids = ref [] in
      List.iter
        (fun r ->
          List.iter
            (fun e ->
              if e.status = "ok" && e.seconds > 0.0 then begin
                if not (Hashtbl.mem seqs e.id) then ids := e.id :: !ids;
                Hashtbl.replace seqs e.id
                  ((r, e)
                  :: Option.value ~default:[] (Hashtbl.find_opt seqs e.id))
              end)
            r.entries)
        runs;
      List.iter
        (fun id ->
          match List.rev (Hashtbl.find seqs id) with
          | [] | [ _ ] -> ()
          | seq ->
              let arr = Array.of_list seq in
              let n = Array.length arr in
              let regress i =
                (* transition arr.(i-1) -> arr.(i) *)
                let _, p = arr.(i - 1) and _, c = arr.(i) in
                let delta = c.seconds -. p.seconds in
                delta > noise
                && 100.0 *. delta /. p.seconds > max_regress
              in
              if regress (n - 1) then begin
                let start = ref (n - 1) in
                while !start > 1 && regress (!start - 1) do
                  decr start
                done;
                let base_run, base_entry = arr.(!start - 1) in
                let last_run, last_entry = arr.(n - 1) in
                findings :=
                  {
                    rg_id = id;
                    rg_jobs = last_run.identity.Manifest.jobs;
                    rg_streak = n - !start;
                    rg_base = base_entry.seconds;
                    rg_last = last_entry.seconds;
                    rg_pct =
                      100.0
                      *. (last_entry.seconds -. base_entry.seconds)
                      /. base_entry.seconds;
                    rg_bound = bound_of last_entry.counters;
                    rg_from_run = short base_run.run_id;
                    rg_to_run = short last_run.run_id;
                  }
                  :: !findings
              end)
        (List.rev !ids))
    (List.rev !keys);
  List.sort (fun a b -> compare (b.rg_pct, a.rg_id) (a.rg_pct, b.rg_id))
    (List.rev !findings)

(* Failure patterns: "<id> <status>" for failed cells/entries, "<id>
   degraded" for entries whose delta counters show degraded symbex runs.
   Counted per distinct run. *)
let failure_patterns store =
  let tbl : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let note pattern run_id =
    let prev = Option.value ~default:[] (Hashtbl.find_opt tbl pattern) in
    if prev = [] then order := pattern :: !order;
    if not (List.mem run_id prev) then
      Hashtbl.replace tbl pattern (run_id :: prev)
  in
  List.iter
    (fun r ->
      List.iter
        (fun e ->
          if e.status <> "ok" then
            note (Printf.sprintf "%s %s" e.id e.status) r.run_id;
          if counter "symbex.degraded_runs" e.counters > 0 then
            note (Printf.sprintf "%s degraded" e.id) r.run_id)
        r.entries)
    (evidence store);
  List.rev_map
    (fun p -> (p, List.length (Hashtbl.find tbl p)))
    !order
  |> List.sort (fun (pa, ca) (pb, cb) -> compare (cb, pa) (ca, pb))

let suggestions ~regressions:regs ~failures store =
  let of_regression rg =
    let id = rg.rg_id in
    let key = regression_hypothesis rg in
    let streak =
      if rg.rg_streak > 1 then
        Printf.sprintf "regressed %d runs straight" rg.rg_streak
      else "regressed in the latest run"
    in
    match rg.rg_bound with
    | "solver" ->
        {
          sg_kind = "regression-ab";
          sg_hypothesis = key;
          sg_experiment = Some id;
          sg_action =
            Printf.sprintf
              "castan experiment %s --metrics ab-%s-nocache.json \
               --no-solver-cache  # then diff vs a default run" id id;
          sg_rationale =
            Printf.sprintf
              "%s %s (%.3fs -> %.3fs, +%.0f%%) and its counter growth is \
               solver-bound: A/B --no-solver-cache to confirm the \
               regression lives in the solver layer" id streak rg.rg_base
              rg.rg_last rg.rg_pct;
        }
    | "cache-model" ->
        {
          sg_kind = "regression-ab";
          sg_hypothesis = key;
          sg_experiment = Some id;
          sg_action =
            Printf.sprintf
              "castan experiment ablation-cache-model --metrics \
               ab-%s-cachemodel.json  # cache-model ablation" id;
          sg_rationale =
            Printf.sprintf
              "%s %s (%.3fs -> %.3fs, +%.0f%%) and is cache-model-bound: \
               re-run the cache-model ablation to isolate the simulator" id
              streak rg.rg_base rg.rg_last rg.rg_pct;
        }
    | "symbex" ->
        {
          sg_kind = "regression-ab";
          sg_hypothesis = key;
          sg_experiment = Some id;
          sg_action =
            Printf.sprintf
              "castan profile --nf <nf> --analyze --profile-json \
               ab-%s-profile.json  # attribute the new cycles" id;
          sg_rationale =
            Printf.sprintf
              "%s %s (%.3fs -> %.3fs, +%.0f%%) and is symbex-bound: \
               profile the exploration to find the hot blocks" id streak
              rg.rg_base rg.rg_last rg.rg_pct;
        }
    | _ ->
        {
          sg_kind = "regression-ab";
          sg_hypothesis = key;
          sg_experiment = Some id;
          sg_action =
            Printf.sprintf "castan experiment %s --metrics recheck-%s.json"
              id id;
          sg_rationale =
            Printf.sprintf
              "%s %s (%.3fs -> %.3fs, +%.0f%%) with no counter growth to \
               attribute: re-run with --metrics to collect one" id streak
              rg.rg_base rg.rg_last rg.rg_pct;
        }
  in
  (* The ROADMAP's single-core-only baseline gap: a -jN / -j1 pair under
     the same code and config whose speedup never materialized, or a
     ledger that has never seen a multicore run at all. *)
  let jobs_gap () =
    let wall = List.filter (fun r -> r.total_seconds > 0.0) (evidence store) in
    let pair_key r =
      Printf.sprintf "%s|%s|%d|%s" r.identity.Manifest.git
        r.identity.Manifest.config_digest r.identity.Manifest.seed
        r.identity.Manifest.injection
    in
    let groups : (string, run list) Hashtbl.t = Hashtbl.create 8 in
    let keys = ref [] in
    List.iter
      (fun r ->
        let k = pair_key r in
        if not (Hashtbl.mem groups k) then keys := k :: !keys;
        Hashtbl.replace groups k
          (r :: Option.value ~default:[] (Hashtbl.find_opt groups k)))
      wall;
    let pair_suggestions =
      List.filter_map
        (fun k ->
          let runs = Hashtbl.find groups k in
          let j1 =
            List.find_opt (fun r -> r.identity.Manifest.jobs = 1) runs
          in
          let jn =
            List.fold_left
              (fun acc r ->
                if r.identity.Manifest.jobs > 1 then
                  match acc with
                  | Some b
                    when b.identity.Manifest.jobs >= r.identity.Manifest.jobs
                    -> acc
                  | _ -> Some r
                else acc)
              None runs
          in
          match (j1, jn) with
          | Some a, Some b ->
              let speedup = a.total_seconds /. b.total_seconds in
              (* Below half the ideal speedup the pair does not prove
                 scaling — e.g. baselines produced on a single real core
                 (the ROADMAP gap) land well under this line. *)
              if
                speedup < float_of_int b.identity.Manifest.jobs /. 2.0
              then
                Some
                  {
                    sg_kind = "jobs-sweep";
                    sg_hypothesis =
                      Printf.sprintf "jobs-sweep|%s|%s" (short a.run_id)
                        (short b.run_id);
                    sg_experiment = None;
                    sg_action =
                      Printf.sprintf
                        "bench/main.exe --quick -j %d --json \
                         bench/baselines/  # on a machine with >= %d real \
                         cores" b.identity.Manifest.jobs
                        b.identity.Manifest.jobs;
                    sg_rationale =
                      Printf.sprintf
                        "baseline pair %s / %s shows only %.2fx at -j %d \
                         vs -j 1 (under half the ideal) — the \
                         single-core-only baseline gap (ROADMAP): \
                         multicore speedup is still unproven; re-run the \
                         sweep on real cores" a.file b.file speedup
                        b.identity.Manifest.jobs;
                  }
              else None
          | _ -> None)
        (List.rev !keys)
    in
    if pair_suggestions <> [] then pair_suggestions
    else if
      List.length wall >= 3
      && List.for_all (fun r -> r.identity.Manifest.jobs <= 1) wall
    then
      [
        {
          sg_kind = "jobs-sweep";
          sg_hypothesis = "jobs-sweep|serial-only";
          sg_experiment = None;
          sg_action = "bench/main.exe --quick -j 4 --json bench/baselines/";
          sg_rationale =
            Printf.sprintf
              "all %d wall-bearing runs in the ledger are -j 1 only: run a \
               -j 4 sweep so the pool's scaling is measured, not assumed"
              (List.length wall);
        };
      ]
    else []
  in
  let of_failures =
    List.filter_map
      (fun (pattern, count) ->
        if count < 2 then None
        else
          let id =
            match String.index_opt pattern ' ' with
            | Some sp -> String.sub pattern 0 sp
            | None -> pattern
          in
          Some
            {
              sg_kind = "failure";
              sg_hypothesis = Printf.sprintf "failure|%s" pattern;
              sg_experiment = Some id;
              sg_action =
                Printf.sprintf
                  "castan experiment %s --fail-fast --log-level debug" id;
              sg_rationale =
                Printf.sprintf
                  "recurring failure pattern %S (seen in %d runs): \
                   reproduce under --fail-fast before trusting its timings"
                  pattern count;
            })
      failures
  in
  if store.runs = [] then
    [
      {
        sg_kind = "ingest";
        sg_hypothesis = "";
        sg_experiment = None;
        sg_action = "castan lab ingest bench/baselines";
        sg_rationale =
          "the ledger is empty: ingest the committed baselines, then run \
           and ingest a fresh campaign";
      };
    ]
  else List.map of_regression regs @ jobs_gap () @ of_failures

let report ?(noise = 0.05) ?(max_regress = 20.0) store =
  let rp_rankings = rankings store in
  let rp_regressions = regressions ~noise ~max_regress store in
  let rp_failures = failure_patterns store in
  let raw =
    suggestions ~regressions:rp_regressions ~failures:rp_failures store
  in
  (* Verdicts per hypothesis key, oldest first (store.verdicts is already
     sorted by content time). *)
  let by_key : (string, verdict list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun v ->
      Hashtbl.replace by_key v.vd_hypothesis
        (v :: Option.value ~default:[] (Hashtbl.find_opt by_key v.vd_hypothesis)))
    store.verdicts;
  let verdicts_for key =
    List.rev (Option.value ~default:[] (Hashtbl.find_opt by_key key))
  in
  let latest_outcome key =
    match Hashtbl.find_opt by_key key with
    | Some (v :: _) -> Some v.vd_outcome
    | _ -> None
  in
  (* Arm evidence already in the ledger for a key — the satellite-1 dedupe:
     the action ran (possibly in a crashed prior invocation), so the report
     must not re-emit the same command verbatim. *)
  let evidence_ready key =
    key <> ""
    && List.exists (fun r -> r.role = "hypothesis" && r.hypothesis = key)
         store.runs
  in
  let streak_of vs =
    match List.rev vs with
    | [] -> 0
    | last :: older ->
        let rec count n = function
          | v :: rest when v.vd_outcome = last.vd_outcome ->
              count (n + 1) rest
          | _ -> n
        in
        count 1 older
  in
  let status_of key =
    match latest_outcome key with
    | Some o -> outcome_name o
    | None -> if evidence_ready key then "evidence-ready" else "open"
  in
  let rp_suggestions =
    List.filter_map
      (fun sg ->
        if sg.sg_hypothesis = "" then Some sg
        else
          match latest_outcome sg.sg_hypothesis with
          | Some (Held | Refuted) -> None (* resolved: suppressed *)
          | Some Inconclusive | None ->
              if evidence_ready sg.sg_hypothesis then
                Some
                  {
                    sg with
                    sg_action =
                      "castan lab run-next  # arm evidence for this \
                       hypothesis is already ingested";
                  }
              else Some sg)
      raw
  in
  (* One hypothesis row per distinct suggestion key (suggestion order),
     then verdict-only keys whose finding has since left the report,
     oldest verdict first. *)
  let seen_keys = Hashtbl.create 8 in
  let from_suggestions =
    List.filter_map
      (fun sg ->
        if sg.sg_hypothesis = "" || Hashtbl.mem seen_keys sg.sg_hypothesis
        then None
        else begin
          Hashtbl.add seen_keys sg.sg_hypothesis ();
          let vs = verdicts_for sg.sg_hypothesis in
          Some
            {
              hy_key = sg.sg_hypothesis;
              hy_kind = sg.sg_kind;
              hy_experiment = sg.sg_experiment;
              hy_status = status_of sg.sg_hypothesis;
              hy_verdicts = List.length vs;
              hy_streak = streak_of vs;
            }
        end)
      raw
  in
  let from_verdicts =
    List.filter_map
      (fun v ->
        if Hashtbl.mem seen_keys v.vd_hypothesis then None
        else begin
          Hashtbl.add seen_keys v.vd_hypothesis ();
          let vs = verdicts_for v.vd_hypothesis in
          Some
            {
              hy_key = v.vd_hypothesis;
              hy_kind = v.vd_kind;
              hy_experiment = v.vd_experiment;
              hy_status = status_of v.vd_hypothesis;
              hy_verdicts = List.length vs;
              hy_streak = streak_of vs;
            }
        end)
      store.verdicts
  in
  { rp_store = store; rp_rankings; rp_regressions; rp_failures;
    rp_suggestions; rp_hypotheses = from_suggestions @ from_verdicts }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let take n l =
  let rec go n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: rest -> x :: go (n - 1) rest
  in
  go n l

let ranking_json r =
  Obs.Json.Obj
    [
      ("id", Obs.Json.Str r.rk_id);
      ("runs", Obs.Json.Int r.rk_runs);
      ("latest_seconds", Obs.Json.Float r.rk_latest);
      ("best_seconds", Obs.Json.Float r.rk_best);
      ("worst_seconds", Obs.Json.Float r.rk_worst);
      ("mean_seconds", Obs.Json.Float r.rk_mean);
      ("solver_queries", Obs.Json.Int r.rk_solver_queries);
      ("cache_hit_rate", Obs.Json.Float r.rk_cache_hit_rate);
      ("bound", Obs.Json.Str r.rk_bound);
    ]

let report_json ?(top = 20) rp =
  let s = rp.rp_store in
  let entries = List.fold_left (fun a r -> a + List.length r.entries) 0 s.runs in
  Obs.Json.Obj
    [
      ("schema_version", Obs.Json.Int report_schema_version);
      ("kind", Obs.Json.Str "lab-report");
      ( "ledger",
        Obs.Json.Obj
          [
            ("dir", Obs.Json.Str s.dir);
            ("runs", Obs.Json.Int (List.length s.runs));
            ("entries", Obs.Json.Int entries);
            ("duplicates", Obs.Json.Int s.duplicates);
            ("rejected", Obs.Json.Int s.rejected);
            ("torn", Obs.Json.Int s.torn);
          ] );
      ( "runs",
        Obs.Json.List
          (List.map
             (fun r ->
               Obs.Json.Obj
                 [
                   ("run_id", Obs.Json.Str (short r.run_id));
                   ("source", Obs.Json.Str (source_name r.source));
                   ("file", Obs.Json.Str r.file);
                   ("generated_at", Obs.Json.Float r.generated_at);
                   ("git", Obs.Json.Str r.identity.Manifest.git);
                   ("jobs", Obs.Json.Int r.identity.Manifest.jobs);
                   ("total_seconds", Obs.Json.Float r.total_seconds);
                   ("experiments", Obs.Json.Int (List.length r.entries));
                 ])
             s.runs) );
      ( "rankings",
        Obs.Json.Obj
          [
            ( "by_wall_time",
              Obs.Json.List (List.map ranking_json (take top rp.rp_rankings))
            );
            ( "by_solver_queries",
              Obs.Json.List
                (List.map ranking_json
                   (take top
                      (List.filter (fun r -> r.rk_solver_queries > 0)
                         rp.rp_rankings
                      |> List.sort (fun a b ->
                             compare
                               (b.rk_solver_queries, a.rk_id)
                               (a.rk_solver_queries, b.rk_id))))) );
            ( "by_cache_hit_rate",
              Obs.Json.List
                (List.map ranking_json
                   (take top
                      (List.filter (fun r -> r.rk_cache_hit_rate >= 0.0)
                         rp.rp_rankings
                      |> List.sort (fun a b ->
                             compare
                               (a.rk_cache_hit_rate, a.rk_id)
                               (b.rk_cache_hit_rate, b.rk_id)))) ) );
          ] );
      ( "regressions",
        Obs.Json.List
          (List.map
             (fun rg ->
               Obs.Json.Obj
                 [
                   ("id", Obs.Json.Str rg.rg_id);
                   ("jobs", Obs.Json.Int rg.rg_jobs);
                   ("streak", Obs.Json.Int rg.rg_streak);
                   ("base_seconds", Obs.Json.Float rg.rg_base);
                   ("last_seconds", Obs.Json.Float rg.rg_last);
                   ("pct", Obs.Json.Float rg.rg_pct);
                   ("bound", Obs.Json.Str rg.rg_bound);
                   ("from_run", Obs.Json.Str rg.rg_from_run);
                   ("to_run", Obs.Json.Str rg.rg_to_run);
                 ])
             rp.rp_regressions) );
      ( "failure_patterns",
        Obs.Json.List
          (List.map
             (fun (pattern, count) ->
               Obs.Json.Obj
                 [
                   ("pattern", Obs.Json.Str pattern);
                   ("runs", Obs.Json.Int count);
                 ])
             rp.rp_failures) );
      ( "suggested_next",
        Obs.Json.List
          (List.map
             (fun sg ->
               Obs.Json.Obj
                 ([ ("kind", Obs.Json.Str sg.sg_kind) ]
                 @ (match sg.sg_experiment with
                   | Some e -> [ ("experiment", Obs.Json.Str e) ]
                   | None -> [])
                 @ [
                     ("action", Obs.Json.Str sg.sg_action);
                     ("rationale", Obs.Json.Str sg.sg_rationale);
                   ]
                 @
                 if sg.sg_hypothesis = "" then []
                 else [ ("hypothesis", Obs.Json.Str sg.sg_hypothesis) ]))
             rp.rp_suggestions) );
      ( "hypotheses",
        Obs.Json.List
          (List.map
             (fun hy ->
               Obs.Json.Obj
                 ([
                    ("key", Obs.Json.Str hy.hy_key);
                    ("kind", Obs.Json.Str hy.hy_kind);
                  ]
                 @ (match hy.hy_experiment with
                   | Some e -> [ ("experiment", Obs.Json.Str e) ]
                   | None -> [])
                 @ [
                     ("status", Obs.Json.Str hy.hy_status);
                     ("verdicts", Obs.Json.Int hy.hy_verdicts);
                     ("streak", Obs.Json.Int hy.hy_streak);
                   ]))
             rp.rp_hypotheses) );
    ]

let report_table ?(top = 20) rp =
  let buf = Buffer.create 1024 in
  let s = rp.rp_store in
  Printf.bprintf buf
    "lab: %d run(s) in %s (%d duplicate, %d rejected, %d torn record(s) \
     skipped)\n"
    (List.length s.runs) s.dir s.duplicates s.rejected s.torn;
  List.iter
    (fun r ->
      Printf.bprintf buf "  %s  %-8s -j%-2s %8.1fs  %s\n" (short r.run_id)
        (source_name r.source)
        (if r.identity.Manifest.jobs > 0 then
           string_of_int r.identity.Manifest.jobs
         else "?")
        r.total_seconds r.file)
    s.runs;
  if rp.rp_rankings <> [] then begin
    Buffer.add_string buf "\nslowest experiments (latest wall time):\n";
    Buffer.add_string buf
      (Util.Table.render
         ~header:
           [ "experiment"; "runs"; "latest s"; "best s"; "worst s"; "bound";
             "cache hit" ]
         ~rows:
           (List.map
              (fun r ->
                [
                  r.rk_id;
                  string_of_int r.rk_runs;
                  Printf.sprintf "%.3f" r.rk_latest;
                  Printf.sprintf "%.3f" r.rk_best;
                  Printf.sprintf "%.3f" r.rk_worst;
                  r.rk_bound;
                  (if r.rk_cache_hit_rate < 0.0 then "-"
                   else Printf.sprintf "%.0f%%" (100.0 *. r.rk_cache_hit_rate));
                ])
              (take top rp.rp_rankings)))
  end;
  if rp.rp_regressions <> [] then begin
    Buffer.add_string buf "\nregressions (latest run vs its predecessor):\n";
    List.iter
      (fun rg ->
        Printf.bprintf buf
          "  %-24s %8.3fs -> %8.3fs  +%.0f%%  streak %d  %s-bound  (%s -> \
           %s)\n"
          rg.rg_id rg.rg_base rg.rg_last rg.rg_pct rg.rg_streak rg.rg_bound
          rg.rg_from_run rg.rg_to_run)
      rp.rp_regressions
  end;
  if rp.rp_failures <> [] then begin
    Buffer.add_string buf "\nfailure patterns:\n";
    List.iter
      (fun (pattern, count) ->
        Printf.bprintf buf "  %-40s seen in %d run(s)\n" pattern count)
      rp.rp_failures
  end;
  if rp.rp_hypotheses <> [] then begin
    Buffer.add_string buf "\nhypotheses:\n";
    List.iter
      (fun hy ->
        Printf.bprintf buf "  %-14s %s%s\n"
          (if hy.hy_streak > 1 then
             Printf.sprintf "%s x%d" hy.hy_status hy.hy_streak
           else hy.hy_status)
          hy.hy_key
          (if hy.hy_verdicts > 0 then
             Printf.sprintf "  (%d verdict(s))" hy.hy_verdicts
           else ""))
      rp.rp_hypotheses
  end;
  if rp.rp_suggestions <> [] then begin
    Buffer.add_string buf "\nsuggested next experiments:\n";
    List.iter
      (fun sg ->
        Printf.bprintf buf "  [%s] %s\n      $ %s\n" sg.sg_kind
          sg.sg_rationale sg.sg_action)
      rp.rp_suggestions
  end;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* The hypothesis engine: run-next and loop                            *)
(* ------------------------------------------------------------------ *)

type executor = argv:string list -> log:string -> (int * float, string) result

let default_executor ~argv ~log =
  match argv with
  | [] -> Error "empty command line"
  | prog :: _ -> (
      try
        let fd =
          Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
        in
        let t0 = Unix.gettimeofday () in
        let pid =
          Unix.create_process prog (Array.of_list argv) Unix.stdin fd fd
        in
        let _, status = Unix.waitpid [] pid in
        let wall = Unix.gettimeofday () -. t0 in
        Unix.close fd;
        match status with
        | Unix.WEXITED code -> Ok (code, wall)
        | Unix.WSIGNALED s ->
            Error (Printf.sprintf "%s killed by signal %d" prog s)
        | Unix.WSTOPPED s ->
            Error (Printf.sprintf "%s stopped by signal %d" prog s)
      with
      | Unix.Unix_error (e, fn, _) ->
          Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
      | Sys_error m -> Error m)

type arm_output = Metrics_manifest | Profile_json | Journal_dir

type arm = {
  am_name : string;
  am_argv : string list;
  am_out : string;
  am_output : arm_output;
}

type compare_rule =
  | Cmp_ab_wall
  | Cmp_profile
  | Cmp_recheck of string
  | Cmp_jobs of int
  | Cmp_failure

type plan = {
  pl_hypothesis : string;
  pl_kind : string;
  pl_experiment : string;
  pl_arms : arm list;
  pl_rule : compare_rule;
}

let hyp_dir dir = Filename.concat dir "hypotheses"
let hyp_slug key = String.sub (Digest.to_hex (Digest.string key)) 0 12

(* Translate a suggestion into concrete subprocess arms.  Every arm runs
   under --quick so a verdict costs seconds, not a full campaign, and the
   comparison is always between arms executed in this invocation (or a
   crashed predecessor on the same machine) — never a fresh wall time
   against a historical one that may come from different hardware. *)
let plan_of ~dir ~castan rp sg =
  let hd = hyp_dir dir in
  let s = hyp_slug sg.sg_hypothesis in
  let out name ext =
    Filename.concat hd (Printf.sprintf "arm-%s-%s.%s" s name ext)
  in
  let experiment_arm ?(extra = []) ~name ~jobs id =
    let o = out name "metrics.json" in
    {
      am_name = name;
      am_argv =
        [ castan; "experiment"; id; "--quick"; "-j"; string_of_int jobs;
          "--metrics"; o ]
        @ extra;
      am_out = o;
      am_output = Metrics_manifest;
    }
  in
  let mk ~experiment ~arms ~rule =
    Some
      {
        pl_hypothesis = sg.sg_hypothesis;
        pl_kind = sg.sg_kind;
        pl_experiment = experiment;
        pl_arms = arms;
        pl_rule = rule;
      }
  in
  match sg.sg_kind with
  | "regression-ab" -> (
      match
        List.find_opt
          (fun rg -> regression_hypothesis rg = sg.sg_hypothesis)
          rp.rp_regressions
      with
      | None -> None
      | Some rg -> (
          let id = rg.rg_id in
          let jobs = max 1 rg.rg_jobs in
          let recheck expected =
            mk ~experiment:id
              ~arms:[ experiment_arm ~name:"recheck" ~jobs id ]
              ~rule:(Cmp_recheck expected)
          in
          match rg.rg_bound with
          | "solver" ->
              mk ~experiment:id
                ~arms:
                  [
                    experiment_arm ~name:"on" ~jobs id;
                    experiment_arm ~extra:[ "--no-solver-cache" ] ~name:"off"
                      ~jobs id;
                  ]
                ~rule:Cmp_ab_wall
          | "symbex" -> (
              match List.assoc_opt id Harness.figure_nfs with
              | Some nf ->
                  let o = out "profile" "profile.json" in
                  mk ~experiment:id
                    ~arms:
                      [
                        {
                          am_name = "profile";
                          am_argv =
                            [ castan; "profile"; "--nf"; nf; "--analyze";
                              "--profile-json"; o ];
                          am_out = o;
                          am_output = Profile_json;
                        };
                      ]
                    ~rule:Cmp_profile
              | None -> recheck "symbex")
          | "cache-model" -> recheck "cache-model"
          | _ -> recheck "unknown"))
  | "jobs-sweep" ->
      (* A quick fixed-experiment pair probes the machine's actual scaling;
         fig13 is the fastest wall-bearing figure in the quick harness. *)
      let id = "fig13" and n = 4 in
      mk ~experiment:id
        ~arms:
          [
            experiment_arm ~name:"j1" ~jobs:1 id;
            experiment_arm ~name:(Printf.sprintf "j%d" n) ~jobs:n id;
          ]
        ~rule:(Cmp_jobs n)
  | "failure" -> (
      match sg.sg_experiment with
      | None -> None
      | Some id ->
          let o = out "repro" "journal" in
          mk ~experiment:id
            ~arms:
              [
                {
                  am_name = "repro";
                  am_argv =
                    [ castan; "experiment"; id; "--quick"; "--journal"; o ];
                  am_out = o;
                  am_output = Journal_dir;
                };
              ]
            ~rule:Cmp_failure)
  | _ -> None

(* The synthesized per-arm artifact: a schema-3 bench-shaped manifest (so
   ingestion reuses normalize_bench wholesale) whose seconds are the
   subprocess wall measured by the engine, whose identity and counters come
   from the artifact the arm itself wrote, and whose lab_* markers make the
   ledger run a hypothesis arm rather than evidence. *)
let synth_arm_artifact ~key ~experiment ~(arm : arm) ~code ~wall ~now =
  let status =
    (* Exit 2 is "completed degraded" for castan subcommands: the artifact
       is still written and its counters are real. *)
    if code = 0 || code = 2 then "ok"
    else Printf.sprintf "failed:exit-%d" code
  in
  let parsed path =
    match read_file path with
    | Error _ -> None
    | Ok c -> Result.to_option (Obs.Json.parse c)
  in
  let fallback = ([ (experiment, wall, status, []) ], None) in
  let entries, identity =
    match arm.am_output with
    | Metrics_manifest -> (
        match parsed arm.am_out with
        | None -> fallback
        | Some j ->
            let counters =
              match member "metrics" j with
              | Some m -> sort_counters (counters_of_metrics m)
              | None -> []
            in
            let identity =
              Option.bind (member "identity" j) (fun i ->
                  Result.to_option (Manifest.identity_of_json i))
            in
            ([ (experiment, wall, status, counters) ], identity))
    | Profile_json -> (
        match parsed arm.am_out with
        | None -> fallback
        | Some j ->
            let counters =
              sort_counters
                [
                  ( "profile.total_cycles",
                    Option.value ~default:0 (get_int j "total_cycles") );
                  ( "profile.blocks",
                    match member "blocks" j with
                    | Some (Obs.Json.List l) -> List.length l
                    | _ -> 0 );
                ]
            in
            ([ (experiment, wall, status, counters) ], None))
    | Journal_dir -> (
        match normalize_journal ~dir:arm.am_out with
        | Error _ -> fallback
        | Ok jr ->
            ( (experiment, wall, status, [])
              :: List.map (fun e -> (e.id, 0.0, e.status, e.counters))
                   jr.entries,
              Some jr.identity ))
  in
  let entry_j (id, secs, st, counters) =
    Obs.Json.Obj
      ([
         ("id", Obs.Json.Str id);
         ("seconds", Obs.Json.Float secs);
         ("status", Obs.Json.Str st);
       ]
      @
      if counters = [] then []
      else
        [
          ( "metrics",
            Obs.Json.Obj
              [
                ( "counters",
                  Obs.Json.Obj
                    (List.map (fun (k, v) -> (k, Obs.Json.Int v)) counters)
                );
              ] );
        ])
  in
  Obs.Json.Obj
    ([
       ("schema_version", Obs.Json.Int 3);
       ("tool", Obs.Json.Str "castan-lab");
       ("generated_at_unix", Obs.Json.Float now);
       ("lab_role", Obs.Json.Str "hypothesis");
       ("lab_hypothesis", Obs.Json.Str key);
       ("lab_arm", Obs.Json.Str arm.am_name);
     ]
    @ (match identity with
      | Some i -> [ ("identity", Manifest.identity_json i) ]
      | None -> [])
    @ [ ("experiments_timed", Obs.Json.List (List.map entry_j entries)) ])

let counters_of_run r =
  match r.entries with e :: _ -> e.counters | [] -> []

(* Verdict comparison, one rule per plan kind.  Every rule reads only runs
   ingested for this hypothesis key. *)
let judge ~noise ~max_regress plan arm_run v0 =
  let missing name =
    {
      v0 with
      vd_outcome = Inconclusive;
      vd_detail = Printf.sprintf "arm %s left no ledger run" name;
    }
  in
  match plan.pl_rule with
  | Cmp_ab_wall -> (
      match (arm_run "on", arm_run "off") with
      | Some on, Some off ->
          let t_on = on.total_seconds and t_off = off.total_seconds in
          let delta = t_off -. t_on in
          let pct = if t_on > 0.0 then 100.0 *. delta /. t_on else 0.0 in
          let outcome, detail =
            if delta > noise && pct > max_regress then
              ( Held,
                Printf.sprintf
                  "disabling the solver cache costs %.3fs (+%.0f%%): the \
                   cache is load-bearing here, consistent with a \
                   solver-bound regression"
                  delta pct )
            else if delta <= noise then
              ( Refuted,
                Printf.sprintf
                  "cache-off is within the noise floor of cache-on \
                   (%+.3fs): this experiment's time is not made of solver \
                   work the cache can save"
                  delta )
            else
              ( Inconclusive,
                Printf.sprintf
                  "cache-off is %.3fs (+%.0f%%) slower — above the noise \
                   floor but under the %.0f%% gate"
                  delta pct max_regress )
          in
          {
            v0 with
            vd_outcome = outcome;
            vd_base_run = on.run_id;
            vd_test_run = off.run_id;
            vd_base_seconds = t_on;
            vd_test_seconds = t_off;
            vd_delta_pct = pct;
            vd_detail = detail;
          }
      | None, _ -> missing "on"
      | _, None -> missing "off")
  | Cmp_profile -> (
      match arm_run "profile" with
      | None -> missing "profile"
      | Some r ->
          let c = counters_of_run r in
          let cycles = counter "profile.total_cycles" c in
          let blocks = counter "profile.blocks" c in
          if cycles > 0 then
            {
              v0 with
              vd_outcome = Held;
              vd_test_run = r.run_id;
              vd_test_seconds = r.total_seconds;
              vd_detail =
                Printf.sprintf
                  "profile attributed %d cycles over %d block(s); the hot \
                   blocks are in the ingested profile run"
                  cycles blocks;
            }
          else
            {
              v0 with
              vd_outcome = Inconclusive;
              vd_test_run = r.run_id;
              vd_detail = "profile run produced no cycle attribution";
            })
  | Cmp_recheck expected -> (
      match arm_run "recheck" with
      | None -> missing "recheck"
      | Some r ->
          let b = bound_of (counters_of_run r) in
          let v1 =
            { v0 with vd_test_run = r.run_id;
              vd_test_seconds = r.total_seconds }
          in
          if expected = "unknown" then
            if b <> "unknown" then
              {
                v1 with
                vd_outcome = Held;
                vd_detail =
                  Printf.sprintf
                    "re-run collected counters: the cost is %s-bound" b;
              }
            else
              {
                v1 with
                vd_outcome = Inconclusive;
                vd_detail = "re-run still grew no counters to attribute";
              }
          else if b = expected then
            {
              v1 with
              vd_outcome = Held;
              vd_detail =
                Printf.sprintf "fresh counters confirm the %s bound" expected;
            }
          else if b = "unknown" then
            {
              v1 with
              vd_outcome = Inconclusive;
              vd_detail = "re-run grew no counters to attribute";
            }
          else
            {
              v1 with
              vd_outcome = Refuted;
              vd_detail =
                Printf.sprintf
                  "fresh counters attribute the cost to %s, not %s" b
                  expected;
            })
  | Cmp_jobs n -> (
      match (arm_run "j1", arm_run (Printf.sprintf "j%d" n)) with
      | Some a, Some b ->
          let t1 = a.total_seconds and tn = b.total_seconds in
          let speedup = if tn > 0.0 then t1 /. tn else 0.0 in
          let ideal = float_of_int n in
          let outcome, detail =
            if speedup < ideal /. 2.0 then
              ( Held,
                Printf.sprintf
                  "-j%d is only %.2fx faster than -j1 (ideal %.0fx): the \
                   scaling gap is real on this machine"
                  n speedup ideal )
            else
              ( Refuted,
                Printf.sprintf
                  "-j%d runs %.2fx faster than -j1 (at least half ideal): \
                   scaling holds here; the flagged gap came from the \
                   baseline environment"
                  n speedup )
          in
          {
            v0 with
            vd_outcome = outcome;
            vd_base_run = a.run_id;
            vd_test_run = b.run_id;
            vd_base_seconds = t1;
            vd_test_seconds = tn;
            vd_delta_pct = (if t1 > 0.0 then 100.0 *. (tn -. t1) /. t1 else 0.0);
            vd_detail = detail;
          }
      | None, _ -> missing "j1"
      | _, None -> missing (Printf.sprintf "j%d" n))
  | Cmp_failure -> (
      match arm_run "repro" with
      | None -> missing "repro"
      | Some r ->
          let failed = List.filter (fun e -> e.status <> "ok") r.entries in
          if failed <> [] then
            {
              v0 with
              vd_outcome = Held;
              vd_test_run = r.run_id;
              vd_detail =
                Printf.sprintf "reproduced: %d cell(s) still failing (%s)"
                  (List.length failed)
                  (String.concat ", "
                     (List.map (fun e -> e.id ^ " " ^ e.status) failed));
            }
          else
            {
              v0 with
              vd_outcome = Refuted;
              vd_test_run = r.run_id;
              vd_detail =
                "clean re-run: the failure pattern did not reproduce";
            })

type exec_outcome = {
  xo_verdict : verdict option;
  xo_runs_performed : int;
  xo_message : string;
}

let run_next ?(noise = 0.05) ?(max_regress = 20.0)
    ?(deadline = Util.Resilience.no_deadline) ?(executor = default_executor)
    ?(emit = fun ~name:_ _ -> ()) ?(skip = fun _ -> false) ~dir
    ~castan () =
  match load ~dir with
  | Error e -> Error e
  | Ok store -> (
      let rp = report ~noise ~max_regress store in
      let arm_of key name =
        List.fold_left
          (fun acc r ->
            if r.role = "hypothesis" && r.hypothesis = key && r.arm = name
            then Some r
            else acc)
          None store.runs
      in
      (* A plan with every arm already ingested *and* a verdict already
         recorded has nothing left to learn: judging the same arms again
         would only mint a near-duplicate verdict.  (Held/refuted are
         already suppressed at the report level; this covers inconclusive,
         which deliberately stays open until fresh evidence arrives.)
         Arms-present-without-a-verdict is the crash-recovery path and
         falls through to judgement. *)
      let exhausted plan =
        List.for_all (fun a -> arm_of plan.pl_hypothesis a.am_name <> None)
          plan.pl_arms
        && List.exists
             (fun v -> v.vd_hypothesis = plan.pl_hypothesis)
             store.verdicts
      in
      let rec pick = function
        | [] -> None
        | sg :: rest ->
            if sg.sg_hypothesis = "" || skip sg.sg_hypothesis then pick rest
            else (
              match plan_of ~dir ~castan rp sg with
              | Some plan when not (exhausted plan) -> Some plan
              | Some _ | None -> pick rest)
      in
      match pick rp.rp_suggestions with
      | None ->
          Ok
            {
              xo_verdict = None;
              xo_runs_performed = 0;
              xo_message = "suggestion queue is empty";
            }
      | Some plan -> (
          let key = plan.pl_hypothesis in
          let hd = hyp_dir dir and s = hyp_slug key in
          let logdir = Filename.concat hd "logs" in
          mkdir_p logdir;
          let find_arm st name =
            List.fold_left
              (fun acc r ->
                if r.role = "hypothesis" && r.hypothesis = key && r.arm = name
                then Some r
                else acc)
              None st.runs
          in
          let runs_performed = ref 0 in
          let trouble = ref None in
          List.iter
            (fun arm ->
              if !trouble = None && find_arm store arm.am_name = None then
                if Util.Resilience.expired deadline then
                  trouble :=
                    Some
                      (Printf.sprintf "deadline expired before arm %s"
                         arm.am_name)
                else begin
                  emit ~name:"action_started"
                    [
                      ("hypothesis", Obs.Json.Str key);
                      ("kind", Obs.Json.Str plan.pl_kind);
                      ("experiment", Obs.Json.Str plan.pl_experiment);
                      ("arm", Obs.Json.Str arm.am_name);
                      ("command", Obs.Json.Str (String.concat " " arm.am_argv));
                    ];
                  Util.Resilience.checkpoint ~stage:"lab-exec" ();
                  let log =
                    Filename.concat logdir
                      (Printf.sprintf "%s-%s.log" s arm.am_name)
                  in
                  match executor ~argv:arm.am_argv ~log with
                  | Error e ->
                      trouble :=
                        Some
                          (Printf.sprintf "arm %s failed to run: %s"
                             arm.am_name e)
                  | Ok (code, wall) -> (
                      incr runs_performed;
                      let artifact =
                        Filename.concat hd
                          (Printf.sprintf "hyp-%s-%s.json" s arm.am_name)
                      in
                      Util.Durable.write_string ~path:artifact
                        (Obs.Json.to_string
                           (synth_arm_artifact ~key
                              ~experiment:plan.pl_experiment ~arm ~code ~wall
                              ~now:(Unix.gettimeofday ()))
                        ^ "\n");
                      Util.Resilience.checkpoint ~stage:"lab-ingest" ();
                      match ingest ~dir [ artifact ] with
                      | Error e -> trouble := Some e
                      | Ok _ ->
                          emit ~name:"artifact_ingested"
                            [
                              ("hypothesis", Obs.Json.Str key);
                              ("arm", Obs.Json.Str arm.am_name);
                              ("file",
                               Obs.Json.Str (Filename.basename artifact));
                              ("seconds", Obs.Json.Float wall);
                              ("exit_code", Obs.Json.Int code);
                            ])
                end)
            plan.pl_arms;
          match load ~dir with
          | Error e -> Error e
          | Ok store' -> (
              let v0 =
                {
                  vd_id = "";
                  vd_hypothesis = key;
                  vd_kind = plan.pl_kind;
                  vd_experiment =
                    (if plan.pl_experiment = "" then None
                     else Some plan.pl_experiment);
                  vd_outcome = Inconclusive;
                  vd_base_run = "";
                  vd_test_run = "";
                  vd_base_seconds = 0.0;
                  vd_test_seconds = 0.0;
                  vd_delta_pct = 0.0;
                  vd_noise = noise;
                  vd_max_regress = max_regress;
                  vd_runs_performed = !runs_performed;
                  vd_generated_at = Unix.gettimeofday ();
                  vd_detail = "";
                }
              in
              let v =
                match !trouble with
                | Some reason ->
                    { v0 with vd_outcome = Inconclusive; vd_detail = reason }
                | None ->
                    judge ~noise ~max_regress plan (find_arm store') v0
              in
              let v = with_verdict_id v in
              Util.Resilience.checkpoint ~stage:"lab-verdict" ();
              match append_verdict ~dir v with
              | Error e -> Error e
              | Ok _appended ->
                  emit ~name:"verdict"
                    [
                      ("hypothesis", Obs.Json.Str key);
                      ("outcome", Obs.Json.Str (outcome_name v.vd_outcome));
                      ("delta_pct", Obs.Json.Float v.vd_delta_pct);
                      ("runs_performed", Obs.Json.Int !runs_performed);
                      ("detail", Obs.Json.Str v.vd_detail);
                    ];
                  Ok
                    {
                      xo_verdict = Some v;
                      xo_runs_performed = !runs_performed;
                      xo_message =
                        Printf.sprintf "[%s] %s: %s — %s" plan.pl_kind key
                          (outcome_name v.vd_outcome) v.vd_detail;
                    })))

type loop_stats = {
  lo_iterations : int;
  lo_runs_performed : int;
  lo_verdicts : verdict list;
  lo_stop : string;
}

let loop ?(noise = 0.05) ?(max_regress = 20.0) ?(budget_runs = max_int)
    ?(deadline = Util.Resilience.no_deadline) ?(executor = default_executor)
    ?(emit = fun ~name:_ _ -> ()) ~dir ~castan () =
  (* Hypothesis keys already attempted this invocation: an inconclusive
     verdict leaves its suggestion open by design, but retrying it in the
     same loop would spin. *)
  let seen = Hashtbl.create 8 in
  let rec go iters runs acc =
    let stop reason =
      Ok
        {
          lo_iterations = iters;
          lo_runs_performed = runs;
          lo_verdicts = List.rev acc;
          lo_stop = reason;
        }
    in
    if Util.Resilience.expired deadline then stop "deadline"
    else if runs >= budget_runs then stop "budget-runs"
    else
      match
        run_next ~noise ~max_regress ~deadline ~executor ~emit
          ~skip:(Hashtbl.mem seen) ~dir ~castan ()
      with
      | Error e -> Error e
      | Ok { xo_verdict = None; _ } -> stop "queue-empty"
      | Ok { xo_verdict = Some v; xo_runs_performed; _ } ->
          Hashtbl.replace seen v.vd_hypothesis ();
          go (iters + 1) (runs + xo_runs_performed) (v :: acc)
  in
  go 0 0 []
