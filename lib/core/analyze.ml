type cache_kind =
  | Contention_sets of Cache.Contention.t
  | Oracle
  | Baseline

type config = {
  n_packets : int option;
  strategy : Symbex.Searcher.strategy;
  cache : cache_kind;
  m : int;
  time_budget : float;
  instr_budget : int;
  max_states_tried : int;
  seed : int;
  max_states : int;
  mem_budget_mb : int;
}

let default_config ?(cache = Baseline) () =
  {
    n_packets = None;
    strategy = Symbex.Searcher.Castan;
    cache;
    m = 2;
    time_budget = 30.0;
    instr_budget = 5_000_000;
    max_states_tried = 16;
    seed = 7;
    max_states = 0;
    mem_budget_mb = 0;
  }

type outcome = {
  nf : string;
  workload : Testbed.Workload.t;
  predicted : Symbex.State.metrics list;
  predicted_cost : int;
  n_havocs : int;
  reconciled : int;
  unreconciled : int;
  states_tried : int;
  analysis_time : float;
  stats : Symbex.Driver.stats;
}

(* ------------------------------------------------------------------ *)
(* Memoized rainbow tables and contention sets                         *)
(* ------------------------------------------------------------------ *)

(* Both memo tables are shared across pool workers (campaigns for different
   NFs reuse the same rainbow tables), so lookups are Mutex-guarded with
   double-checked insertion: losing a race costs one redundant deterministic
   build, never an inconsistent table. *)
let rainbow_mu = Mutex.create ()
let rainbow_cache : (string, Hashrev.Rainbow.t) Hashtbl.t = Hashtbl.create 8

let rainbow_for hash_name ks =
  let key = hash_name ^ "/" ^ ks.Hashrev.Rainbow.ks_name in
  match Mutex.protect rainbow_mu (fun () -> Hashtbl.find_opt rainbow_cache key) with
  | Some t -> t
  | None ->
      let hash = Hashrev.Hashes.lookup hash_name in
      let t =
        (* Small hash spaces get the brute-force inverse index; large ones
           the chain table (§3.5: "brute-force methods augmented by the use
           of rainbow tables"). *)
        if hash.Hashrev.Hashes.bits <= 16 then
          Hashrev.Rainbow.build_exhaustive ~hash ks
        else
          (* Scale the chain count to the key space: with chain merges, a
             few times |keys| worth of chain steps is needed for coverage
             past associativity on the ring. *)
          let chains = max 32768 (ks.Hashrev.Rainbow.count / 64) in
          Hashrev.Rainbow.build ~hash ks ~chains ~chain_len:256 ()
      in
      Mutex.protect rainbow_mu (fun () ->
          match Hashtbl.find_opt rainbow_cache key with
          | Some t -> t
          | None ->
              Hashtbl.replace rainbow_cache key t;
              t)

let contention_mu = Mutex.create ()

let contention_cache : (int * int * int * int, Cache.Contention.t) Hashtbl.t =
  Hashtbl.create 4

let discover_contention_sets ?(slice_seed = 0) ?(pool = 512) ?(pages = 2)
    ?(reboots = 2) () =
  let key = (slice_seed, pool, pages, reboots) in
  match
    Mutex.protect contention_mu (fun () -> Hashtbl.find_opt contention_cache key)
  with
  | Some t -> t
  | None ->
      let geom = Cache.Geometry.xeon_e5_2667v2 in
      let offsets = Cache.Contention.standard_offsets geom ~count:pool in
      let t =
        Cache.Contention.consistent ~slice_seed ~pages ~reboots ~geom ~offsets ()
      in
      Mutex.protect contention_mu (fun () ->
          match Hashtbl.find_opt contention_cache key with
          | Some t -> t
          | None ->
              Hashtbl.replace contention_cache key t;
              t)

(* ------------------------------------------------------------------ *)
(* The pipeline                                                        *)
(* ------------------------------------------------------------------ *)

let cache_model kind =
  let geom = Cache.Geometry.xeon_e5_2667v2 in
  match kind with
  | Contention_sets sets -> Cache.Model.contention geom sets
  | Baseline -> Cache.Model.baseline geom
  | Oracle ->
      (* Perfect knowledge of the DUT machine: same seeds as Dut.create. *)
      let m = Cache.Probe.machine ~slice_seed:0 ~vmem_seed:17 geom in
      Cache.Model.oracle geom ~slice_of:(fun vaddr ->
          Cache.Hierarchy.ground_truth_slice m.Cache.Probe.hier
            (Cache.Vmem.translate m.Cache.Probe.vmem vaddr))

(* Reconcile and solve one candidate state; None if its constraints defeat
   the solver. *)
let synthesize (nf : Nf.Nf_def.t) ~rng ~n_packets (s : Symbex.State.t) =
  let havocs =
    List.rev_map
      (fun (pkt, hash, input, output) ->
        { Hashrev.Reconcile.hv_pkt = pkt; hv_hash = hash; hv_input = input;
          hv_output = output })
      s.Symbex.State.havocs
  in
  let tables name =
    match List.assoc_opt name nf.Nf.Nf_def.keyspaces with
    | Some ks -> Some (rainbow_for name ks)
    | None -> None
  in
  let r =
    Obs.Trace.with_span "analyze.reconcile"
      ~args:[ ("havocs", Obs.Json.Int (List.length havocs)) ]
      (fun () ->
        Hashrev.Reconcile.run ~tables ~rng ~pcs:s.Symbex.State.pcs ~havocs ())
  in
  match
    Obs.Trace.with_span "analyze.solve"
      ~args:
        [ ("constraints", Obs.Json.Int (List.length r.Hashrev.Reconcile.constraints)) ]
      (fun () ->
        Solver.Solve.sat ~rng ~attempts:4000 r.Hashrev.Reconcile.constraints)
  with
  | Sat model ->
      (* The paper's workloads are "N packets, each in a different flow".
         Fields the path never constrained come back identical; perturb them
         (validating against the full constraint set) so every packet is its
         own flow. *)
      let model = ref model in
      let seen = Hashtbl.create n_packets in
      let cs = r.Hashrev.Reconcile.constraints in
      for pkt = 0 to n_packets - 1 do
        let tuple () =
          List.map
            (fun f -> Solver.Solve.Model.get !model (Ir.Expr.Pkt { pkt; field = f }))
            Ir.Expr.all_fields
        in
        let tries = ref 0 in
        while Hashtbl.mem seen (tuple ()) && !tries < 64 do
          incr tries;
          let field =
            if !tries mod 2 = 1 then Ir.Expr.Src_port else Ir.Expr.Dst_port
          in
          let sym = Ir.Expr.Pkt { pkt; field } in
          let candidate =
            Solver.Solve.Model.add sym
              (Util.Rng.int rng 64511 + 1024)
              !model
          in
          if Solver.Solve.check candidate cs then model := candidate
        done;
        Hashtbl.replace seen (tuple ()) ()
      done;
      let packets = Nf.Packet.of_model !model ~n:n_packets in
      Some
        ( Testbed.Workload.make ~name:"CASTAN" packets,
          List.length r.Hashrev.Reconcile.reconciled,
          List.length r.Hashrev.Reconcile.unreconciled,
          List.length havocs )
  | Unsat | Unknown -> None

let run ?config (nf : Nf.Nf_def.t) =
  let cfg = match config with Some c -> c | None -> default_config () in
  (* Pin every id sequence an analysis consumes to its start: symbol,
     state and fork ids become pure functions of the NF + config, so a
     campaign produces identical constraints (and ktest files) no matter
     what ran before it — serially or on a sibling pool worker.  This must
     happen before [fresh_symbolic_memory] below, which already allocates
     fresh symbols. *)
  Ir.Expr.reset_fresh ();
  Symbex.State.reset_ids ();
  Symbex.Exec.reset_fork_ids ();
  let n_packets =
    match cfg.n_packets with Some n -> n | None -> nf.Nf.Nf_def.castan_packets
  in
  let t0 = Unix.gettimeofday () in
  let nf_arg = [ ("nf", Obs.Json.Str nf.Nf.Nf_def.name) ] in
  let driver_cfg, mem, cache =
    Obs.Trace.with_span "analyze.build" ~args:nf_arg (fun () ->
        let geom = Cache.Geometry.xeon_e5_2667v2 in
        let costs =
          Symbex.Costs.default
            ~hash_weight:(fun name ->
              match Hashrev.Hashes.lookup name with
              | h -> h.Hashrev.Hashes.weight
              | exception Invalid_argument _ -> 24)
            geom
        in
        let driver_cfg =
          {
            (Symbex.Driver.default_config ~n_packets costs) with
            strategy = cfg.strategy;
            m = cfg.m;
            hash_bits = nf.Nf.Nf_def.hash_bits;
            time_budget = cfg.time_budget;
            instr_budget = cfg.instr_budget;
            max_states = cfg.max_states;
            mem_budget_mb = cfg.mem_budget_mb;
          }
        in
        (driver_cfg, Nf.Nf_def.fresh_symbolic_memory nf, cache_model cfg.cache))
  in
  let result =
    Obs.Trace.with_span "analyze.explore" ~args:nf_arg (fun () ->
        Symbex.Driver.run nf.Nf.Nf_def.program ~mem ~cache driver_cfg)
  in
  Obs.Log.debug "analyze %s: explored %d states (%d completed paths)"
    nf.Nf.Nf_def.name result.Symbex.Driver.stats.Symbex.Driver.explored
    (List.length result.Symbex.Driver.completed);
  (let s = Solver.Qcache.stats () in
   if s.queries > 0 then
     Obs.Log.debug
       "analyze %s: solver cache %d/%d queries answered (%d exact, %d \
        subset, %d model-reuse), %d constraints sliced away"
       nf.Nf.Nf_def.name
       (s.hits + s.subset_hits + s.model_reuse)
       s.queries s.hits s.subset_hits s.model_reuse s.constraints_dropped);
  let rng = Util.Rng.create (0xadd + cfg.seed) in
  let rec try_states tried = function
    | [] ->
        failwith
          (Printf.sprintf "Castan.Analyze: no solvable state for %s"
             nf.Nf.Nf_def.name)
    | s :: rest -> (
        if tried >= cfg.max_states_tried then
          failwith
            (Printf.sprintf "Castan.Analyze: gave up solving states for %s"
               nf.Nf.Nf_def.name)
        else
          match synthesize nf ~rng ~n_packets s with
          | Some (workload, reconciled, unreconciled, n_havocs) ->
              {
                nf = nf.Nf.Nf_def.name;
                workload;
                predicted = Symbex.State.all_metrics s;
                predicted_cost = Symbex.State.current_cost s;
                n_havocs;
                reconciled;
                unreconciled;
                states_tried = tried + 1;
                analysis_time = Unix.gettimeofday () -. t0;
                stats = result.Symbex.Driver.stats;
              }
          | None -> try_states (tried + 1) rest)
  in
  Obs.Trace.with_span "analyze.synthesize" ~args:nf_arg (fun () ->
      try_states 0 result.Symbex.Driver.ranked)
