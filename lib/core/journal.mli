(** The crash-safe run journal: checkpoint/resume for campaigns.

    A journal directory records every completed per-NF campaign cell as it
    finishes, so a run that dies — OOM killer, SIGKILL, power loss — can be
    resumed with [--journal DIR --resume] and re-runs {e zero} completed
    cells.  Layout:

    - [DIR/ledger.jsonl] — append-only JSONL ledger, fsynced per line.
      Record kinds: ["open"] (one per session, carrying the run
      {!identity}), ["cell"] (one per completed campaign cell, pointing at
      its segment and carrying its deterministic fingerprint), ["mark"]
      (one per completed experiment id, progress markers for humans and
      {!val:Check}-style tooling).
    - [DIR/cells/cell-<md5(key)>.json] — one atomically-written segment per
      cell, the full serialized {!Experiment.nf_run} (failed cells live
      entirely in their ledger record).

    Cells are only reused under the exact {!identity} that produced them:
    git revision, a digest of the canonical config JSON, the seed, the job
    count, and the fault-injection signature.  A ledger can hold cells from
    many identities (sessions append, never truncate); foreign cells are
    counted as stale and ignored.

    Crash tolerance on load: a torn {e final} ledger line (the crash hit
    mid-append) is silently dropped; corruption anywhere else is an error.
    A segment whose bytes no longer match the ledger's [segment_md5], or
    whose decoded value no longer matches the recorded fingerprint, is
    skipped with a warning — the cell is recomputed rather than trusted. *)

type identity = Manifest.identity = {
  git : string;  (** [git describe --always --dirty] *)
  config_digest : string;  (** MD5 of the canonical config JSON *)
  seed : int;
  jobs : int;
  injection : string;  (** {!Util.Resilience.injection_signature} *)
  batch : int;  (** replay burst size; [0] = unknown *)
  compile_mode : string;  (** {!Ir.Compile.mode_to_string}; [""] = unknown *)
}

val current_identity : Experiment.config -> identity
(** The identity a cell produced {e now} would be journaled under. *)

type stats = {
  cells_written : int;  (** cells journaled by this session *)
  cells_reused : int;  (** hydrated cells that satisfied a lookup *)
  hydrated : int;  (** cells loaded from the ledger at enable time *)
  stale : int;  (** ledger cells under a foreign identity, ignored *)
  resumes : int;  (** prior sessions ([open] records) in the ledger *)
}

val enable :
  dir:string -> config:Experiment.config -> resume:bool -> (unit, string) result
(** Opens (creating if needed) the journal at [dir] and installs the
    {!Experiment} observers that record each freshly computed cell.  With
    [resume = true], first loads the ledger and seeds the campaign memo
    with every cell recorded under {!current_identity} — those campaigns
    will not run again.  [Error] on an unreadable or corrupt ledger (a torn
    final line is not corruption). *)

val active : unit -> bool

val mark : string -> unit
(** Append a progress marker (an experiment id that completed).  No-op when
    no journal is enabled. *)

val disable : unit -> unit
(** Close the ledger and uninstall the observers.  {!stats} keeps returning
    the final counts.  (The CLI just exits; tests re-enable.) *)

val stats : unit -> stats

val stats_json : unit -> Obs.Json.t
(** The manifest's ["journal"] section: enabled flag, directory, identity,
    and the {!stats} counters. *)

(** {2 Serialization} — exposed for the tests and [check_telemetry].  All
    encoders are deterministic except that [deterministic:true] additionally
    zeroes wall-clock fields ([analysis_time], [wall_time]) and drops
    backtraces, making the encoding — and hence {!fingerprint} — a pure
    function of the computed result. *)

val encode_run : deterministic:bool -> Experiment.nf_run -> Obs.Json.t

val decode_run : Obs.Json.t -> (Experiment.nf_run, string) result
(** Strict: any missing field, wrong type, or unknown NF name is [Error]. *)

val fingerprint :
  (Experiment.nf_run, Util.Resilience.failure) result -> string
(** MD5 hex over the deterministic encoding.  Equal fingerprints between a
    crashed-and-resumed run and an uninterrupted one are the journal's
    correctness contract. *)

val identity_json : identity -> Obs.Json.t
val identity_of_json : Obs.Json.t -> (identity, string) result
