type entry = {
  id : string;
  descr : string;
  run : Experiment.config -> unit;
}

(* ------------------------------------------------------------------ *)
(* Figures (§5.2-§5.4)                                                 *)
(* ------------------------------------------------------------------ *)

type figure = {
  fid : string;
  nf_name : string;
  kind : [ `Latency | `Cycles ];
  caption : string;
}

let figures =
  [
    { fid = "fig4"; nf_name = "lpm-1stage-dl"; kind = `Latency;
      caption = "End-to-end latency CDF for LPM with 1-stage Direct Lookup" };
    { fid = "fig5"; nf_name = "lpm-1stage-dl"; kind = `Cycles;
      caption = "CPU reference cycles CDF for LPM with 1-stage Direct Lookup" };
    { fid = "fig6"; nf_name = "lpm-2stage-dl"; kind = `Latency;
      caption = "End-to-end latency CDF for LPM with 2-stage Direct Lookup" };
    { fid = "fig7"; nf_name = "lpm-btrie"; kind = `Latency;
      caption = "End-to-end latency CDF for LPM with a Patricia trie" };
    { fid = "fig8"; nf_name = "lpm-btrie"; kind = `Cycles;
      caption = "CPU reference cycles CDF for LPM with a Patricia trie" };
    { fid = "fig9"; nf_name = "nat-unbalanced-tree"; kind = `Latency;
      caption = "End-to-end latency CDF for NAT with an unbalanced tree" };
    { fid = "fig10"; nf_name = "nat-unbalanced-tree"; kind = `Cycles;
      caption = "CPU reference cycles CDF for NAT with an unbalanced tree" };
    { fid = "fig11"; nf_name = "nat-red-black-tree"; kind = `Latency;
      caption = "End-to-end latency CDF for NAT with a red-black tree" };
    { fid = "fig12"; nf_name = "lb-hash-table"; kind = `Latency;
      caption = "End-to-end latency CDF for LB with a hash table" };
    { fid = "fig13"; nf_name = "lb-hash-ring"; kind = `Latency;
      caption = "End-to-end latency CDF for LB with a hash ring" };
    { fid = "fig14"; nf_name = "nat-hash-table"; kind = `Latency;
      caption = "End-to-end latency CDF for NAT with a hash table" };
    { fid = "fig15"; nf_name = "nat-hash-ring"; kind = `Latency;
      caption = "End-to-end latency CDF for NAT with a hash ring" };
  ]

let figure_nfs = List.map (fun f -> (f.fid, f.nf_name)) figures

let run_figure f config =
  match Experiment.try_run ~config f.nf_name with
  | Error fl ->
      (* The figure degrades to a stub; the campaign's failure is already in
         the resilience sink for the end-of-run summary. *)
      Printf.printf "\n== %s: %s ==\nfailed:%s (%s)\n" f.fid f.caption
        fl.Util.Resilience.stage fl.Util.Resilience.reason
  | Ok r -> (
      match f.kind with
      | `Latency ->
          Report.print_cdf_figure ~id:f.fid ~title:f.caption
            ~unit_label:"latency ns" (Report.latency_series r)
      | `Cycles ->
          Report.print_cdf_figure ~id:f.fid ~title:f.caption ~unit_label:"cycles"
            (Report.cycles_series r))

(* ------------------------------------------------------------------ *)
(* Tables 1-5                                                          *)
(* ------------------------------------------------------------------ *)

let table_nfs = List.filter (fun n -> n <> "nop") Nf.Registry.names

(* Discover contention sets once on the main domain before fanning out:
   otherwise every worker races into the (Mutex-guarded, but expensive)
   discovery and duplicates the work. *)
let predis_contention (config : Experiment.config) =
  if config.use_contention_model && Util.Pool.default_jobs () > 1 then
    ignore (Analyze.discover_contention_sets () : Cache.Contention.t)

(* Per-NF isolation: each campaign is guarded, so the result splits into
   completed runs plus [failed:<stage>] columns — the table always renders.
   Campaigns fan out on the pool (one task per NF, memoized), so at [-j 1]
   this is exactly the old serial loop. *)
let all_runs config =
  predis_contention config;
  List.partition_map Fun.id
    (Util.Pool.map
       (fun n ->
         match Experiment.try_run ~config n with
         | Ok r -> Either.Left r
         | Error f -> Either.Right (n, f))
       table_nfs)

let tables =
  [
    ("table1", "maximum throughput (Mpps) per NF and workload",
     fun c -> let ok, failed = all_runs c in
       Report.print_throughput_table ~failed ok);
    ("table2", "median instructions retired per packet",
     fun c -> let ok, failed = all_runs c in
       Report.print_instrs_table ~failed ok);
    ("table3", "median L3 misses per packet",
     fun c -> let ok, failed = all_runs c in
       Report.print_misses_table ~failed ok);
    ("table4", "CASTAN analysis: packets generated, run time",
     fun c -> let ok, failed = all_runs c in
       Report.print_analysis_table ~failed ok);
    ("table5", "median latency deviation from NOP (ns)",
     fun c -> let ok, failed = all_runs c in
       Report.print_deviation_table ~failed ok);
  ]

(* ------------------------------------------------------------------ *)
(* Ablations of the design choices                                     *)
(* ------------------------------------------------------------------ *)

let analysis_budget (c : Experiment.config) frac =
  (max 1.0 (c.analysis_time *. frac), max 100_000 (c.analysis_instrs / 4))

(* Directed search: compare the best predicted cost each strategy reaches
   under the same budget. *)
let ablation_searcher (config : Experiment.config) =
  Printf.printf "\n== ablation-searcher: best predicted cost by strategy ==\n";
  let time, instrs = analysis_budget config 0.3 in
  let nfs = [ "lpm-btrie"; "nat-unbalanced-tree"; "lb-hash-table" ] in
  let strategies = Symbex.Searcher.[ Castan; Dfs; Bfs; Random 11 ] in
  let header = "NF" :: List.map Symbex.Searcher.strategy_name strategies in
  let rows =
    List.map
      (fun name ->
        let nf = Nf.Registry.find name in
        name
        :: List.map
             (fun strategy ->
               let cfg =
                 { (Analyze.default_config ()) with
                   strategy; n_packets = Some 10;
                   time_budget = time; instr_budget = instrs }
               in
               match Analyze.run ~config:cfg nf with
               | o -> string_of_int o.Analyze.predicted_cost
               | exception Failure _ -> "fail")
             strategies)
      nfs
  in
  Util.Table.print ~header ~rows

(* Cache-model quality: empirical contention sets vs the ground-truth oracle
   vs no model, measured end to end on the cache-sensitive NF. *)
let ablation_cache_model (config : Experiment.config) =
  Printf.printf
    "\n== ablation-cache-model: LPM 1-stage DL, measured CASTAN workload ==\n";
  let nf = Nf.Registry.find "lpm-1stage-dl" in
  let samples = max 4000 (config.samples / 2) in
  let nop = Testbed.Tg.nop_baseline ~samples () in
  let kinds =
    [
      ("baseline", Analyze.Baseline);
      ("contention-sets",
       Analyze.Contention_sets (Analyze.discover_contention_sets ()));
      ("oracle", Analyze.Oracle);
    ]
  in
  let header =
    [ "cache model"; "dev vs NOP (ns)"; "L3 miss/pkt"; "tput (Mpps)" ]
  in
  let rows =
    List.map
      (fun (label, kind) ->
        let cfg =
          { (Analyze.default_config ~cache:kind ()) with
            time_budget = fst (analysis_budget config 1.0) }
        in
        let o = Analyze.run ~config:cfg nf in
        let m = Testbed.Tg.measure ~samples nf o.Analyze.workload in
        [
          label;
          Printf.sprintf "%.0f" (Testbed.Tg.deviation_from_nop_ns m ~nop);
          string_of_int (Testbed.Tg.median_l3_misses m);
          Printf.sprintf "%.2f" (Testbed.Tg.max_throughput_mpps m);
        ])
      kinds
  in
  Util.Table.print ~header ~rows

(* The loop bound M of the potential-cost annotation. *)
let ablation_loop_bound (config : Experiment.config) =
  Printf.printf "\n== ablation-loop-bound: best cost found vs M ==\n";
  let time, instrs = analysis_budget config 0.3 in
  let nfs = [ "lpm-btrie"; "nat-unbalanced-tree" ] in
  let header = [ "NF"; "M=1"; "M=2"; "M=3" ] in
  let rows =
    List.map
      (fun name ->
        let nf = Nf.Registry.find name in
        name
        :: List.map
             (fun m ->
               let cfg =
                 { (Analyze.default_config ()) with
                   m; n_packets = Some 10;
                   time_budget = time; instr_budget = instrs }
               in
               match Analyze.run ~config:cfg nf with
               | o -> string_of_int o.Analyze.predicted_cost
               | exception Failure _ -> "fail")
             [ 1; 2; 3 ])
      nfs
  in
  Util.Table.print ~header ~rows

(* Tailored rainbow tables vs none (§3.5). *)
let ablation_rainbow (config : Experiment.config) =
  Printf.printf "\n== ablation-rainbow: havoc reconciliation success ==\n";
  let time, _ = analysis_budget config 0.5 in
  let header =
    [ "NF"; "havocs"; "reconciled (tailored)"; "reconciled (none)" ]
  in
  let rows =
    List.map
      (fun name ->
        let nf = Nf.Registry.find name in
        let cfg =
          { (Analyze.default_config
               ~cache:
                 (Analyze.Contention_sets (Analyze.discover_contention_sets ()))
               ())
            with time_budget = time; n_packets = Some 12 }
        in
        let o = Analyze.run ~config:cfg nf in
        let no_tables = { nf with Nf.Nf_def.keyspaces = [] } in
        let o2 = Analyze.run ~config:cfg no_tables in
        [
          name;
          string_of_int o.Analyze.n_havocs;
          string_of_int o.Analyze.reconciled;
          string_of_int o2.Analyze.reconciled;
        ])
      [ "lb-hash-table"; "lb-hash-ring"; "nat-hash-table"; "nat-hash-ring" ]
  in
  Util.Table.print ~header ~rows

(* Contention sets are processor-specific: a workload synthesized against
   one hidden slice hash loses its teeth on a different CPU model. *)
let ablation_cpu_transfer (config : Experiment.config) =
  Printf.printf
    "\n== ablation-cpu-transfer: CASTAN workload measured on other CPUs ==\n";
  let nf = Nf.Registry.find "lpm-1stage-dl" in
  let samples = max 4000 (config.samples / 2) in
  let cfg =
    { (Analyze.default_config
         ~cache:(Analyze.Contention_sets (Analyze.discover_contention_sets ())) ())
      with time_budget = fst (analysis_budget config 1.0) }
  in
  let o = Analyze.run ~config:cfg nf in
  let header = [ "DUT CPU (slice hash)"; "dev vs NOP (ns)"; "L3 miss/pkt" ] in
  let rows =
    List.map
      (fun slice_seed ->
        let nop = Testbed.Tg.nop_baseline ~samples () in
        let m = Testbed.Tg.measure ~samples ~slice_seed nf o.Analyze.workload in
        [
          (if slice_seed = 0 then "analyzed CPU (seed 0)"
           else Printf.sprintf "different CPU (seed %d)" slice_seed);
          Printf.sprintf "%.0f" (Testbed.Tg.deviation_from_nop_ns m ~nop);
          string_of_int (Testbed.Tg.median_l3_misses m);
        ])
      [ 0; 1; 2 ]
  in
  Util.Table.print ~header ~rows

(* Workloads for the machine-feature ablations. *)
let ablation_cases scale =
  [
    ("nop / 1 Packet", Nf.Registry.nop (), Testbed.Traffic.one_packet ());
    ( "lpm-1stage-dl / Zipfian",
      Nf.Registry.find "lpm-1stage-dl",
      Testbed.Traffic.zipfian ~scale ~seed:3 () );
    ( "lpm-btrie / UniRand",
      Nf.Registry.find "lpm-btrie",
      Testbed.Traffic.unirand ~scale ~seed:3 () );
  ]

(* The paper's §3.3 claims: prefetching barely matters for NF traffic, and
   DDIO improves all workloads the same. *)
let ablation_prefetch (config : Experiment.config) =
  Printf.printf "\n== ablation-prefetch: next-line prefetcher on/off ==\n";
  let samples = max 4000 (config.samples / 2) in
  let header = [ "NF x workload"; "median cycles (off)"; "median cycles (on)" ] in
  let rows =
    List.map
      (fun (label, nf, w) ->
        let med prefetch =
          Util.Stats.median
            (Testbed.Tg.cycles_cdf (Testbed.Tg.measure ~samples ~prefetch nf w))
        in
        [ label; Printf.sprintf "%.0f" (med false); Printf.sprintf "%.0f" (med true) ])
      (ablation_cases config.scale)
  in
  Util.Table.print ~header ~rows

let ablation_ddio (config : Experiment.config) =
  Printf.printf "\n== ablation-ddio: DMA writes allocate into the cache ==\n";
  let samples = max 4000 (config.samples / 2) in
  let header =
    [ "NF x workload"; "cycles (no ddio)"; "cycles (ddio)"; "delta" ]
  in
  let rows =
    List.map
      (fun (label, nf, w) ->
        let med ddio =
          Util.Stats.median
            (Testbed.Tg.cycles_cdf (Testbed.Tg.measure ~samples ~ddio nf w))
        in
        let off = med false and on = med true in
        [
          label;
          Printf.sprintf "%.0f" off;
          Printf.sprintf "%.0f" on;
          Printf.sprintf "%+.0f" (on -. off);
        ])
      (ablation_cases config.scale)
  in
  Util.Table.print ~header ~rows

(* ------------------------------------------------------------------ *)
(* Replay-only experiments                                             *)
(* ------------------------------------------------------------------ *)

(* The testbed stage of fig13/fig15 in isolation: no symbolic execution —
   the workload is deterministic synthetic traffic — so wall time is
   dominated by [Dut.replay].  These are the entries bench_diff gates the
   replay engine's performance on; the full figures bury the replay under
   the (much larger) analysis stage. *)
let replay_experiment ~fid ~nf_name (config : Experiment.config) =
  Printf.printf "\n== %s: replay-only testbed stage (%s) ==\n" fid nf_name;
  let nf = Nf.Registry.find nf_name in
  let samples = max 400_000 (config.samples * 20) in
  (* Quick-scale workloads on purpose: replay loops over the trace, so a
     small trace yields the same measured stream while keeping synthesis
     (which this experiment does not gate) off the critical path. *)
  let workloads =
    [
      ("UniRand", Testbed.Traffic.unirand ~scale:`Quick ~seed:config.seed ());
      ("Zipfian", Testbed.Traffic.zipfian ~scale:`Quick ~seed:config.seed ());
    ]
  in
  let header =
    [ "workload"; "median latency (ns)"; "median instrs"; "tput (Mpps)" ]
  in
  let rows =
    List.map
      (fun (label, w) ->
        let m = Testbed.Tg.measure ~samples ~seed:config.seed nf w in
        [
          label;
          Printf.sprintf "%.0f" (Testbed.Tg.median_latency_ns m);
          string_of_int (Testbed.Tg.median_instrs m);
          Printf.sprintf "%.2f" (Testbed.Tg.max_throughput_mpps m);
        ])
      workloads
  in
  Util.Table.print ~header ~rows

(* ------------------------------------------------------------------ *)
(* §5.5 discussion experiments                                         *)
(* ------------------------------------------------------------------ *)

(* A partially adversarial stream: even a small CASTAN fraction hurts every
   packet behind it in the queue (head-of-line blocking). *)
let discussion_mixed_traffic (config : Experiment.config) =
  Printf.printf
    "\n== discussion-mixed-traffic: CASTAN fraction vs latency under load ==\n";
  let nf = Nf.Registry.find "lpm-1stage-dl" in
  let cfg =
    { (Analyze.default_config
         ~cache:(Analyze.Contention_sets (Analyze.discover_contention_sets ())) ())
      with time_budget = fst (analysis_budget config 1.0) }
  in
  let o = Analyze.run ~config:cfg nf in
  let zipf = Testbed.Traffic.zipfian ~scale:config.scale ~seed:config.seed () in
  let samples = max 8000 config.samples in
  let rate = 2.6 in
  Printf.printf "offered load %.1f Mpps, 512-descriptor queue\n" rate;
  let header =
    [ "CASTAN fraction"; "median sojourn (ns)"; "p99 sojourn (ns)"; "loss" ]
  in
  let rows =
    List.map
      (fun fraction ->
        let w =
          if fraction = 0.0 then zipf
          else if fraction = 1.0 then o.Analyze.workload
          else
            Testbed.Traffic.mix ~seed:config.seed ~fraction o.Analyze.workload
              zipf
        in
        let m = Testbed.Tg.measure ~samples nf w in
        let cdf, loss = Testbed.Tg.latency_under_load ~rate_mpps:rate m in
        [
          Printf.sprintf "%.0f%%" (fraction *. 100.0);
          Printf.sprintf "%.0f" (Util.Stats.median cdf);
          Printf.sprintf "%.0f" (Util.Stats.quantile cdf 0.99);
          Printf.sprintf "%.3f" loss;
        ])
      [ 0.0; 0.05; 0.1; 0.25; 0.5; 1.0 ]
  in
  Util.Table.print ~header ~rows

(* CASTAN under-approximates the worst case; the annotated ICFG (with every
   memory access charged a DRAM trip) over-approximates it — the WCET-style
   contrast of §6. *)
let discussion_wcet (config : Experiment.config) =
  Printf.printf
    "\n== discussion-wcet: ICFG upper bound vs CASTAN lower bound (cycles/packet) ==\n";
  let geom = Cache.Geometry.xeon_e5_2667v2 in
  let pessimistic = { geom with lat_l1 = geom.lat_dram } in
  let header =
    [ "NF"; "ICFG bound (M=34)"; "CASTAN worst packet"; "measured median" ]
  in
  let time, instrs = analysis_budget config 0.5 in
  let rows =
    List.map
      (fun name ->
        let nf = Nf.Registry.find name in
        (* M = 34 lets the bound unroll a 32-bit trie/tree descent fully;
           for data-dependent loops it stays a structural assumption. *)
        let upper =
          Symbex.Cost.full_cost
            (Symbex.Cost.annotate ~m:34 (Symbex.Costs.default pessimistic)
               nf.Nf.Nf_def.program)
            nf.Nf.Nf_def.program.Ir.Cfg.entry
        in
        let cfg =
          { (Analyze.default_config ()) with
            n_packets = Some 10; time_budget = time; instr_budget = instrs }
        in
        let o = Analyze.run ~config:cfg nf in
        (* the most expensive single packet on the chosen path: the state the
           cyclically replayed workload keeps the NF in *)
        let lower =
          List.fold_left
            (fun acc (m : Symbex.State.metrics) -> max acc m.cycles)
            0 o.Analyze.predicted
        in
        let measured =
          Util.Stats.median
            (Testbed.Tg.cycles_cdf
               (Testbed.Tg.measure ~samples:4000 nf o.Analyze.workload))
          -. float_of_int (Testbed.Dut.overhead_cycles + 290)
        in
        [
          name;
          string_of_int upper;
          string_of_int lower;
          Printf.sprintf "%.0f" measured;
        ])
      [ "lpm-btrie"; "lpm-1stage-dl"; "lb-hash-table"; "nat-unbalanced-tree" ]
  in
  Util.Table.print ~header ~rows;
  print_endline
    "(the ICFG bound assumes every access is a DRAM miss and each loop runs\n\
    \ M-1 = 33 times: safe for loop-free NFs, structural otherwise — unlike\n\
    \ CASTAN's lower bound it comes with no witness workload)"

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let all =
  List.map
    (fun f -> { id = f.fid; descr = f.caption; run = run_figure f })
    figures
  @ List.map (fun (id, descr, run) -> { id; descr; run }) tables
  @ [
      { id = "ablation-searcher";
        descr = "directed search vs DFS/BFS/random";
        run = ablation_searcher };
      { id = "ablation-cache-model";
        descr = "contention sets vs oracle vs none";
        run = ablation_cache_model };
      { id = "ablation-loop-bound";
        descr = "potential-cost loop bound M";
        run = ablation_loop_bound };
      { id = "ablation-rainbow";
        descr = "tailored rainbow tables vs none";
        run = ablation_rainbow };
      { id = "ablation-cpu-transfer";
        descr = "contention workload on a different CPU model";
        run = ablation_cpu_transfer };
      { id = "ablation-prefetch";
        descr = "next-line prefetcher on/off (§3.3 claim)";
        run = ablation_prefetch };
      { id = "ablation-ddio";
        descr = "DDIO on/off (§3.3 claim)";
        run = ablation_ddio };
      { id = "fig13-replay";
        descr = "replay-only testbed stage of fig13 (lb-hash-ring)";
        run = replay_experiment ~fid:"fig13-replay" ~nf_name:"lb-hash-ring" };
      { id = "fig15-replay";
        descr = "replay-only testbed stage of fig15 (nat-hash-ring)";
        run = replay_experiment ~fid:"fig15-replay" ~nf_name:"nat-hash-ring" };
      { id = "discussion-mixed-traffic";
        descr = "partially adversarial traffic under load (§5.5)";
        run = discussion_mixed_traffic };
      { id = "discussion-wcet";
        descr = "ICFG upper bound vs CASTAN lower bound (§6)";
        run = discussion_wcet };
    ]

let ids = List.map (fun e -> e.id) all

let find id = List.find_opt (fun e -> e.id = id) all

(* Meta-ids expand to groups so `castan experiment tables` regenerates the
   whole evaluation in one command. *)
let expand_id = function
  | "tables" -> List.map (fun (id, _, _) -> id) tables
  | "figures" -> List.map (fun f -> f.fid) figures
  | "all" -> ids
  | id -> [ id ]

(* Campaign NFs behind a list of experiment ids, in first-use order — the
   order a serial run would execute them in, which is the order the pool
   commits their telemetry in.  Ablations and discussion entries drive
   [Analyze.run] directly (unmemoized), so they contribute nothing here. *)
let campaign_nfs ids =
  let nf_of_id id =
    match List.assoc_opt id figure_nfs with
    | Some nf -> [ nf ]
    | None ->
        if List.exists (fun (tid, _, _) -> tid = id) tables then table_nfs
        else []
  in
  let seen = Hashtbl.create 16 in
  List.concat_map nf_of_id ids
  |> List.filter (fun n ->
         if Hashtbl.mem seen n then false
         else begin
           Hashtbl.add seen n ();
           true
         end)

let prewarm config ids =
  let nfs = campaign_nfs ids in
  if Util.Pool.default_jobs () <= 1 || List.length nfs < 2 then None
  else begin
    predis_contention config;
    let (), elapsed =
      Obs.Trace.timed "prewarm"
        ~args:[ ("nfs", Obs.Json.Int (List.length nfs)) ]
        (fun () ->
          ignore
            (Util.Pool.map (fun n -> Experiment.try_run ~config n) nfs
              : (Experiment.nf_run, Util.Resilience.failure) result list))
    in
    Some elapsed
  end

let run_id config id : float =
  match find id with
  | None ->
      invalid_arg
        (Printf.sprintf "Harness.run_id: unknown experiment %s (known: %s)" id
           (String.concat ", " (ids @ [ "tables"; "figures"; "all" ])))
  | Some e ->
      (* The whole entry is guarded too: an ablation dying (beyond the
         per-NF isolation of the tables) degrades to a one-line failure
         instead of aborting the run.  With fail-fast on, the exception
         propagates.  The trailer's wall time comes from the same span the
         trace file records, so human and machine output cannot disagree. *)
      let result, elapsed =
        Obs.Trace.timed ("experiment:" ^ id)
          ~args:[ ("descr", Obs.Json.Str e.descr) ]
          (fun () ->
            Util.Resilience.guard ~stage:("experiment:" ^ id) (fun () ->
                e.run config))
      in
      (match result with
      | Ok () ->
          (* Progress marker: with a journal enabled, a resumed run can see
             which experiment ids already rendered (their cells are in the
             ledger regardless — marks are the human-readable breadcrumb). *)
          Journal.mark id;
          Printf.printf "[%s done in %.1fs]\n%!" id elapsed
      | Error f ->
          Printf.printf "[%s failed: %s]\n%!" id (Util.Resilience.to_string f));
      elapsed
