type row = { func : string; block : int; stats : Obs.Profile.stats }

(* Sorted leader pcs of a function's basic blocks: pc 0, every branch/jump
   target, and every fall-through point after an instruction that ends a
   block. *)
let leaders (f : Ir.Cfg.func) =
  let n = Array.length f.Ir.Cfg.body in
  let is_leader = Array.make (max n 1) false in
  if n > 0 then is_leader.(0) <- true;
  let mark pc = if pc >= 0 && pc < n then is_leader.(pc) <- true in
  Array.iteri
    (fun pc instr ->
      match instr with
      | Ir.Cfg.Branch { if_true; if_false; _ } ->
          mark if_true;
          mark if_false;
          mark (pc + 1)
      | Ir.Cfg.Jump target ->
          mark target;
          mark (pc + 1)
      | Ir.Cfg.Return _ -> mark (pc + 1)
      | _ -> ())
    f.Ir.Cfg.body;
  let out = ref [] in
  for pc = n - 1 downto 0 do
    if is_leader.(pc) then out := pc :: !out
  done;
  Array.of_list !out

(* Greatest leader <= pc (leaders is sorted ascending and contains 0). *)
let block_of leaders pc =
  let lo = ref 0 and hi = ref (Array.length leaders - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if leaders.(mid) <= pc then lo := mid else hi := mid - 1
  done;
  leaders.(!lo)

let add_into (dst : Obs.Profile.stats) (s : Obs.Profile.stats) =
  dst.Obs.Profile.cycles <- dst.Obs.Profile.cycles + s.Obs.Profile.cycles;
  dst.instrs <- dst.instrs + s.Obs.Profile.instrs;
  dst.loads <- dst.loads + s.Obs.Profile.loads;
  dst.stores <- dst.stores + s.Obs.Profile.stores;
  dst.l1 <- dst.l1 + s.Obs.Profile.l1;
  dst.l2 <- dst.l2 + s.Obs.Profile.l2;
  dst.l3 <- dst.l3 + s.Obs.Profile.l3;
  dst.dram <- dst.dram + s.Obs.Profile.dram;
  dst.concretizations <- dst.concretizations + s.Obs.Profile.concretizations

let zero_stats () =
  {
    Obs.Profile.cycles = 0;
    instrs = 0;
    loads = 0;
    stores = 0;
    l1 = 0;
    l2 = 0;
    l3 = 0;
    dram = 0;
    concretizations = 0;
  }

let rows program =
  let leaders_cache : (string, int array) Hashtbl.t = Hashtbl.create 16 in
  let leaders_for func =
    match Hashtbl.find_opt leaders_cache func with
    | Some l -> Some l
    | None -> (
        match Hashtbl.find_opt program.Ir.Cfg.funcs func with
        | None -> None (* pseudo-function: one block at pc 0 *)
        | Some f ->
            let l = leaders f in
            Hashtbl.add leaders_cache func l;
            Some l)
  in
  let blocks : (string * int, Obs.Profile.stats) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun ((func, pc), s) ->
      let block =
        match leaders_for func with
        | Some l when Array.length l > 0 -> block_of l pc
        | _ -> 0
      in
      let key = (func, block) in
      let dst =
        match Hashtbl.find_opt blocks key with
        | Some dst -> dst
        | None ->
            let dst = zero_stats () in
            Hashtbl.add blocks key dst;
            dst
      in
      add_into dst s)
    (Obs.Profile.sites ());
  Hashtbl.fold
    (fun (func, block) stats acc -> { func; block; stats } :: acc)
    blocks []
  |> List.sort (fun a b ->
         let c =
           compare b.stats.Obs.Profile.cycles a.stats.Obs.Profile.cycles
         in
         if c <> 0 then c else compare (a.func, a.block) (b.func, b.block))

let total_cycles rows =
  List.fold_left (fun acc r -> acc + r.stats.Obs.Profile.cycles) 0 rows

let table ~nf ?(top = 20) program =
  let all = rows program in
  let total = total_cycles all in
  let header =
    [ "func"; "block"; "cycles"; "%"; "instrs"; "loads"; "stores";
      "l1"; "l2"; "l3"; "dram"; "concr" ]
  in
  let pct c =
    if total = 0 then "0.0"
    else Printf.sprintf "%.1f" (100.0 *. float_of_int c /. float_of_int total)
  in
  let row r =
    let s = r.stats in
    [
      r.func;
      Printf.sprintf "blk%d" r.block;
      string_of_int s.Obs.Profile.cycles;
      pct s.Obs.Profile.cycles;
      string_of_int s.Obs.Profile.instrs;
      string_of_int s.Obs.Profile.loads;
      string_of_int s.Obs.Profile.stores;
      string_of_int s.Obs.Profile.l1;
      string_of_int s.Obs.Profile.l2;
      string_of_int s.Obs.Profile.l3;
      string_of_int s.Obs.Profile.dram;
      string_of_int s.Obs.Profile.concretizations;
    ]
  in
  let shown = List.filteri (fun i _ -> i < top) all in
  Printf.sprintf "%s: %d blocks, %d cycles attributed\n%s" nf
    (List.length all) total
    (Util.Table.render ~header ~rows:(List.map row shown))

let collapsed ~nf program =
  let buf = Buffer.create 1024 in
  rows program
  |> List.filter (fun r -> r.stats.Obs.Profile.cycles > 0)
  |> List.sort (fun a b -> compare (a.func, a.block) (b.func, b.block))
  |> List.iter (fun r ->
         Buffer.add_string buf
           (Printf.sprintf "%s;%s;blk%d %d\n" nf r.func r.block
              r.stats.Obs.Profile.cycles));
  Buffer.contents buf

let to_json ~nf program =
  let all = rows program in
  let block_json r =
    let s = r.stats in
    Obs.Json.Obj
      [
        ("func", Obs.Json.Str r.func);
        ("block", Obs.Json.Int r.block);
        ("cycles", Obs.Json.Int s.Obs.Profile.cycles);
        ("instrs", Obs.Json.Int s.Obs.Profile.instrs);
        ("loads", Obs.Json.Int s.Obs.Profile.loads);
        ("stores", Obs.Json.Int s.Obs.Profile.stores);
        ("l1", Obs.Json.Int s.Obs.Profile.l1);
        ("l2", Obs.Json.Int s.Obs.Profile.l2);
        ("l3", Obs.Json.Int s.Obs.Profile.l3);
        ("dram", Obs.Json.Int s.Obs.Profile.dram);
        ("concretizations", Obs.Json.Int s.Obs.Profile.concretizations);
      ]
  in
  Obs.Json.Obj
    [
      ("schema_version", Obs.Json.Int 1);
      ("nf", Obs.Json.Str nf);
      ("total_cycles", Obs.Json.Int (total_cycles all));
      ( "timers_s",
        Obs.Json.Obj
          (List.map
             (fun (k, v) -> (k, Obs.Json.Float v))
             (Obs.Profile.timers ())) );
      ("blocks", Obs.Json.List (List.map block_json all));
    ]
