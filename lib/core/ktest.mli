(** CASTAN's analysis output files (§4).

    A successful run generates two files per path: a KTEST file with the
    concrete symbol assignments that exercise it (KLEE's test format — here
    a faithful text rendering of the same content), and a CPU-model metrics
    file listing, per packet, the instructions executed, loads and stores,
    and how many memory accesses hit the cache.  The PCAP conversion lives
    in {!Testbed.Workload.save_pcap}. *)

val ktest_string : Analyze.outcome -> string
(** One `object` per packet field, KLEE-style name/size/value triples. *)

val metrics_string : Analyze.outcome -> string
(** Tab-separated per-packet predictions with a header row and totals. *)

val write : prefix:string -> Analyze.outcome -> string list
(** Writes [prefix.ktest] and [prefix.metrics]; returns the paths. *)
