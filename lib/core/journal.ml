type identity = Manifest.identity = {
  git : string;
  config_digest : string;
  seed : int;
  jobs : int;
  injection : string;
  batch : int;
  compile_mode : string;
}

type stats = {
  cells_written : int;
  cells_reused : int;
  hydrated : int;
  stale : int;
  resumes : int;
}

let zero_stats =
  { cells_written = 0; cells_reused = 0; hydrated = 0; stale = 0; resumes = 0 }

(* Mirrored into the metrics registry so `--metrics` manifests carry the
   journal's effectiveness alongside everything else. *)
let m_written = Obs.Metrics.counter "journal.cells_written"
let m_reused = Obs.Metrics.counter "journal.cells_reused"
let m_resumes = Obs.Metrics.counter "journal.resumes"

let current_identity (config : Experiment.config) =
  Manifest.current_identity ~config ()

(* ------------------------------------------------------------------ *)
(* JSON helpers                                                        *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let field name j =
  match Obs.Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let as_int = function
  | Obs.Json.Int i -> Ok i
  | _ -> Error "expected int"

let as_float = function
  | Obs.Json.Float f -> Ok f
  | Obs.Json.Int i -> Ok (float_of_int i)
  | _ -> Error "expected float"

let as_str = function
  | Obs.Json.Str s -> Ok s
  | _ -> Error "expected string"

let as_bool = function
  | Obs.Json.Bool b -> Ok b
  | _ -> Error "expected bool"

let as_list = function
  | Obs.Json.List l -> Ok l
  | _ -> Error "expected list"

let int_field name j = Result.bind (field name j) as_int
let float_field name j = Result.bind (field name j) as_float
let str_field name j = Result.bind (field name j) as_str
let bool_field name j = Result.bind (field name j) as_bool
let list_field name j = Result.bind (field name j) as_list

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

(* ------------------------------------------------------------------ *)
(* Codecs                                                              *)
(* ------------------------------------------------------------------ *)

let identity_json = Manifest.identity_json
let identity_of_json = Manifest.identity_of_json

let sample_json (s : Testbed.Dut.sample) =
  Obs.Json.List
    [
      Obs.Json.Int s.Testbed.Dut.cycles;
      Obs.Json.Int s.Testbed.Dut.instrs;
      Obs.Json.Int s.Testbed.Dut.l3_misses;
      Obs.Json.Int s.Testbed.Dut.ret;
    ]

let sample_of_json j =
  let* l = as_list j in
  match l with
  | [ a; b; c; d ] ->
      let* cycles = as_int a in
      let* instrs = as_int b in
      let* l3_misses = as_int c in
      let* ret = as_int d in
      Ok { Testbed.Dut.cycles; instrs; l3_misses; ret }
  | _ -> Error "sample: expected 4 ints"

let measurement_json (m : Testbed.Tg.measurement) =
  Obs.Json.Obj
    [
      ("workload", Obs.Json.Str m.Testbed.Tg.workload);
      ( "latencies_ns",
        Obs.Json.List
          (Array.to_list
             (Array.map (fun f -> Obs.Json.Float f) m.Testbed.Tg.latencies_ns))
      );
      ( "samples",
        Obs.Json.List (Array.to_list (Array.map sample_json m.Testbed.Tg.samples))
      );
    ]

let measurement_of_json j =
  let* workload = str_field "workload" j in
  let* lats = list_field "latencies_ns" j in
  let* lats = map_result as_float lats in
  let* samples = list_field "samples" j in
  let* samples = map_result sample_of_json samples in
  Ok
    {
      Testbed.Tg.workload;
      latencies_ns = Array.of_list lats;
      samples = Array.of_list samples;
    }

let packet_json (p : Nf.Packet.t) =
  Obs.Json.List
    [
      Obs.Json.Int p.Nf.Packet.src_ip;
      Obs.Json.Int p.Nf.Packet.dst_ip;
      Obs.Json.Int p.Nf.Packet.proto;
      Obs.Json.Int p.Nf.Packet.src_port;
      Obs.Json.Int p.Nf.Packet.dst_port;
    ]

let packet_of_json j =
  let* l = as_list j in
  match l with
  | [ a; b; c; d; e ] ->
      let* src_ip = as_int a in
      let* dst_ip = as_int b in
      let* proto = as_int c in
      let* src_port = as_int d in
      let* dst_port = as_int e in
      Ok { Nf.Packet.src_ip; dst_ip; proto; src_port; dst_port }
  | _ -> Error "packet: expected 5 ints"

let workload_json (w : Testbed.Workload.t) =
  Obs.Json.Obj
    [
      ("name", Obs.Json.Str w.Testbed.Workload.name);
      ( "packets",
        Obs.Json.List
          (Array.to_list (Array.map packet_json w.Testbed.Workload.packets)) );
    ]

let workload_of_json j =
  let* name = str_field "name" j in
  let* pkts = list_field "packets" j in
  let* pkts = map_result packet_of_json pkts in
  Ok (Testbed.Workload.make ~name pkts)

let metrics_json (m : Symbex.State.metrics) =
  Obs.Json.List
    [
      Obs.Json.Int m.Symbex.State.instrs;
      Obs.Json.Int m.Symbex.State.loads;
      Obs.Json.Int m.Symbex.State.stores;
      Obs.Json.Int m.Symbex.State.l3_misses;
      Obs.Json.Int m.Symbex.State.cycles;
    ]

let metrics_of_json j =
  let* l = as_list j in
  match l with
  | [ a; b; c; d; e ] ->
      let* instrs = as_int a in
      let* loads = as_int b in
      let* stores = as_int c in
      let* l3_misses = as_int d in
      let* cycles = as_int e in
      Ok { Symbex.State.instrs; loads; stores; l3_misses; cycles }
  | _ -> Error "metrics: expected 5 ints"

let driver_stats_json ~deterministic (s : Symbex.Driver.stats) =
  Obs.Json.Obj
    [
      ("explored", Obs.Json.Int s.Symbex.Driver.explored);
      ("forks", Obs.Json.Int s.Symbex.Driver.forks);
      ("killed", Obs.Json.Int s.Symbex.Driver.killed);
      ( "kill_reasons",
        Obs.Json.List
          (List.map
             (fun (label, n) ->
               Obs.Json.List [ Obs.Json.Str label; Obs.Json.Int n ])
             s.Symbex.Driver.kill_reasons) );
      ("executed_instrs", Obs.Json.Int s.Symbex.Driver.executed_instrs);
      ( "wall_time",
        Obs.Json.Float (if deterministic then 0.0 else s.Symbex.Driver.wall_time)
      );
      ("degraded", Obs.Json.Bool s.Symbex.Driver.degraded);
      ("watchdog_kills", Obs.Json.Int s.Symbex.Driver.watchdog_kills);
    ]

let driver_stats_of_json j =
  let* explored = int_field "explored" j in
  let* forks = int_field "forks" j in
  let* killed = int_field "killed" j in
  let* reasons = list_field "kill_reasons" j in
  let* kill_reasons =
    map_result
      (fun r ->
        let* l = as_list r in
        match l with
        | [ a; b ] ->
            let* label = as_str a in
            let* n = as_int b in
            Ok (label, n)
        | _ -> Error "kill_reasons: expected [label, n]")
      reasons
  in
  let* executed_instrs = int_field "executed_instrs" j in
  let* wall_time = float_field "wall_time" j in
  let* degraded = bool_field "degraded" j in
  let* watchdog_kills = int_field "watchdog_kills" j in
  Ok
    {
      Symbex.Driver.explored;
      forks;
      killed;
      kill_reasons;
      executed_instrs;
      wall_time;
      degraded;
      watchdog_kills;
    }

let outcome_json ~deterministic (o : Analyze.outcome) =
  Obs.Json.Obj
    [
      ("nf", Obs.Json.Str o.Analyze.nf);
      ("workload", workload_json o.Analyze.workload);
      ("predicted", Obs.Json.List (List.map metrics_json o.Analyze.predicted));
      ("predicted_cost", Obs.Json.Int o.Analyze.predicted_cost);
      ("n_havocs", Obs.Json.Int o.Analyze.n_havocs);
      ("reconciled", Obs.Json.Int o.Analyze.reconciled);
      ("unreconciled", Obs.Json.Int o.Analyze.unreconciled);
      ("states_tried", Obs.Json.Int o.Analyze.states_tried);
      ( "analysis_time",
        Obs.Json.Float (if deterministic then 0.0 else o.Analyze.analysis_time)
      );
      ("stats", driver_stats_json ~deterministic o.Analyze.stats);
    ]

let outcome_of_json j =
  let* nf = str_field "nf" j in
  let* workload = Result.bind (field "workload" j) workload_of_json in
  let* predicted = list_field "predicted" j in
  let* predicted = map_result metrics_of_json predicted in
  let* predicted_cost = int_field "predicted_cost" j in
  let* n_havocs = int_field "n_havocs" j in
  let* reconciled = int_field "reconciled" j in
  let* unreconciled = int_field "unreconciled" j in
  let* states_tried = int_field "states_tried" j in
  let* analysis_time = float_field "analysis_time" j in
  let* stats = Result.bind (field "stats" j) driver_stats_of_json in
  Ok
    {
      Analyze.nf;
      workload;
      predicted;
      predicted_cost;
      n_havocs;
      reconciled;
      unreconciled;
      states_tried;
      analysis_time;
      stats;
    }

let encode_run ~deterministic (r : Experiment.nf_run) =
  Obs.Json.Obj
    [
      ("nf", Obs.Json.Str r.Experiment.nf.Nf.Nf_def.name);
      ("nop", measurement_json r.Experiment.nop);
      ( "rows",
        Obs.Json.List
          (List.map
             (fun (row : Experiment.row) ->
               Obs.Json.Obj
                 [
                   ("label", Obs.Json.Str row.Experiment.label);
                   ("measurement", measurement_json row.Experiment.measurement);
                 ])
             r.Experiment.rows) );
      ("castan", outcome_json ~deterministic r.Experiment.castan);
    ]

let decode_run j =
  let* name = str_field "nf" j in
  let* nf =
    match Nf.Registry.find name with
    | nf -> Ok nf
    | exception _ -> Error (Printf.sprintf "unknown NF %S" name)
  in
  let* nop = Result.bind (field "nop" j) measurement_of_json in
  let* rows = list_field "rows" j in
  let* rows =
    map_result
      (fun row ->
        let* label = str_field "label" row in
        let* measurement =
          Result.bind (field "measurement" row) measurement_of_json
        in
        Ok { Experiment.label; measurement })
      rows
  in
  let* castan = Result.bind (field "castan" j) outcome_of_json in
  Ok { Experiment.nf; nop; rows; castan }

let failure_json ~deterministic (f : Util.Resilience.failure) =
  Obs.Json.Obj
    [
      ("stage", Obs.Json.Str f.Util.Resilience.stage);
      ( "nf",
        match f.Util.Resilience.nf with
        | Some n -> Obs.Json.Str n
        | None -> Obs.Json.Null );
      ("reason", Obs.Json.Str f.Util.Resilience.reason);
      (* Backtraces carry build- and environment-specific text; they stay
         out of the deterministic form so fingerprints survive recompiles
         of the same logic. *)
      ( "backtrace",
        Obs.Json.Str (if deterministic then "" else f.Util.Resilience.backtrace)
      );
    ]

let failure_of_json j =
  let* stage = str_field "stage" j in
  let* nf =
    match Obs.Json.member "nf" j with
    | Some (Obs.Json.Str n) -> Ok (Some n)
    | Some Obs.Json.Null | None -> Ok None
    | Some _ -> Error "nf: expected string or null"
  in
  let* reason = str_field "reason" j in
  let* backtrace = str_field "backtrace" j in
  Ok (Util.Resilience.failure ?nf ~backtrace ~stage reason)

let result_json ~deterministic = function
  | Ok run -> Obs.Json.Obj [ ("ok", encode_run ~deterministic run) ]
  | Error f -> Obs.Json.Obj [ ("failed", failure_json ~deterministic f) ]

let fingerprint r =
  Digest.to_hex (Digest.string (Obs.Json.to_string (result_json ~deterministic:true r)))

(* ------------------------------------------------------------------ *)
(* The journal state                                                   *)
(* ------------------------------------------------------------------ *)

type t = {
  jdir : string;
  ident : identity;
  ledger : Util.Durable.appender;
  mu : Mutex.t;
  mutable written : int;
  mutable reused : int;
  base : stats;  (* hydrated/stale/resumes, fixed at enable time *)
}

let current : t option ref = ref None
let latest : stats ref = ref zero_stats

let active () = !current <> None

let stats () =
  match !current with
  | None -> !latest
  | Some j ->
      Mutex.protect j.mu (fun () ->
          { j.base with cells_written = j.written; cells_reused = j.reused })

let stats_json () =
  let s = stats () in
  Obs.Json.Obj
    ([ ("enabled", Obs.Json.Bool (active ())) ]
    @ (match !current with
      | Some j ->
          [ ("dir", Obs.Json.Str j.jdir); ("identity", identity_json j.ident) ]
      | None -> [])
    @ [
        ("cells_written", Obs.Json.Int s.cells_written);
        ("cells_reused", Obs.Json.Int s.cells_reused);
        ("hydrated", Obs.Json.Int s.hydrated);
        ("stale", Obs.Json.Int s.stale);
        ("resumes", Obs.Json.Int s.resumes);
      ])

let ledger_path dir = Filename.concat dir "ledger.jsonl"
let cells_dir dir = Filename.concat dir "cells"

let segment_name key = "cell-" ^ Digest.to_hex (Digest.string key) ^ ".json"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Crash repair, run before re-opening the ledger for append: a crash
   mid-append can leave a final line without its newline, and appending a
   fresh record after it would fuse the two into one corrupt line in the
   *middle* of the ledger.  Truncating back to the last complete line keeps
   the mid-file-corruption-is-an-error load policy honest. *)
let truncate_torn_tail path =
  if Sys.file_exists path then begin
    let content = read_file path in
    let len = String.length content in
    if len > 0 && content.[len - 1] <> '\n' then begin
      let keep =
        match String.rindex_opt content '\n' with Some i -> i + 1 | None -> 0
      in
      Obs.Log.info "journal: truncating %d torn byte(s) off %s" (len - keep)
        path;
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          Unix.ftruncate fd keep;
          try Unix.fsync fd with Unix.Unix_error _ -> ())
    end
  end

(* ------------------------------------------------------------------ *)
(* Appending                                                           *)
(* ------------------------------------------------------------------ *)

let append_json j line =
  Util.Durable.append_line j.ledger (Obs.Json.to_string line)

(* Called from [Experiment]'s on_fresh observer — possibly on a pool
   worker, hence the lock around the ledger and counters.  The segment is
   written (atomically) before its ledger record: a crash between the two
   leaves an orphan segment, never a dangling record. *)
let record_cell j ~key ~nf r =
  let fp = fingerprint r in
  let common status rest =
    Mutex.protect j.mu (fun () ->
        append_json j
          (Obs.Json.Obj
             ([
                ("kind", Obs.Json.Str "cell");
                ("key", Obs.Json.Str key);
                ("nf", Obs.Json.Str nf);
                ("status", Obs.Json.Str status);
                ("fingerprint", Obs.Json.Str fp);
              ]
             @ rest));
        j.written <- j.written + 1);
    if Obs.Metrics.active () then Obs.Metrics.incr m_written
  in
  match r with
  | Ok run ->
      let seg = segment_name key in
      let content =
        Obs.Json.to_string (encode_run ~deterministic:false run) ^ "\n"
      in
      Util.Durable.write_string
        ~path:(Filename.concat (cells_dir j.jdir) seg)
        content;
      common "ok"
        [
          ("segment", Obs.Json.Str seg);
          ("segment_md5", Obs.Json.Str (Digest.to_hex (Digest.string content)));
        ]
  | Error f ->
      common
        ("failed:" ^ f.Util.Resilience.stage)
        [ ("failure", failure_json ~deterministic:false f) ]

let record_reuse j ~key:_ =
  Mutex.protect j.mu (fun () -> j.reused <- j.reused + 1);
  if Obs.Metrics.active () then Obs.Metrics.incr m_reused

let mark id =
  match !current with
  | None -> ()
  | Some j ->
      Mutex.protect j.mu (fun () ->
          append_json j
            (Obs.Json.Obj
               [ ("kind", Obs.Json.Str "mark"); ("id", Obs.Json.Str id) ]))

(* ------------------------------------------------------------------ *)
(* Loading                                                             *)
(* ------------------------------------------------------------------ *)

(* One pass over the ledger: cells recorded under [ident] (by the most
   recent preceding [open] record) hydrate; everything else counts as
   stale.  Later records win over earlier ones for the same key — they are
   either identical (deterministic recompute) or newer sessions'. *)
let load_ledger ~dir ~ident =
  let path = ledger_path dir in
  if not (Sys.file_exists path) then Ok ([], zero_stats)
  else begin
    let lines =
      String.split_on_char '\n' (read_file path)
      |> List.filter (fun l -> String.trim l <> "")
    in
    let n_lines = List.length lines in
    let entries : (string, (Experiment.nf_run, Util.Resilience.failure) result) Hashtbl.t =
      Hashtbl.create 16
    in
    let order = ref [] in
    let cur : identity option ref = ref None in
    let resumes = ref 0 and stale = ref 0 in
    let err = ref None in
    let skip key reason =
      Obs.Log.info "journal: skipping cell %s (%s); it will be recomputed" key
        reason
    in
    List.iteri
      (fun i line ->
        if !err = None then
          match Obs.Json.parse line with
          | Error e ->
              (* A torn final line is the crash we are designed for;
                 corruption in the middle of the ledger is not. *)
              if i = n_lines - 1 then
                Obs.Log.info "journal: dropping torn final ledger line (%s)" e
              else err := Some (Printf.sprintf "ledger line %d: %s" (i + 1) e)
          | Ok j -> (
              match Obs.Json.member "kind" j with
              | Some (Obs.Json.Str "open") -> (
                  incr resumes;
                  match Result.bind (field "identity" j) identity_of_json with
                  | Ok id -> cur := Some id
                  | Error e ->
                      err := Some (Printf.sprintf "ledger line %d: %s" (i + 1) e)
                  )
              | Some (Obs.Json.Str "cell") -> (
                  match
                    let* key = str_field "key" j in
                    let* status = str_field "status" j in
                    Ok (key, status)
                  with
                  | Error e ->
                      err := Some (Printf.sprintf "ledger line %d: %s" (i + 1) e)
                  | Ok (key, status) ->
                      if !cur <> Some ident then incr stale
                      else if status = "ok" then begin
                        match
                          let* seg = str_field "segment" j in
                          let* md5 = str_field "segment_md5" j in
                          let* fp = str_field "fingerprint" j in
                          let path = Filename.concat (cells_dir dir) seg in
                          if not (Sys.file_exists path) then
                            Error "segment file missing"
                          else
                            let content = read_file path in
                            if Digest.to_hex (Digest.string content) <> md5 then
                              Error "segment bytes do not match ledger md5"
                            else
                              let* sj =
                                Result.map_error
                                  (fun e -> "segment parse: " ^ e)
                                  (Obs.Json.parse content)
                              in
                              let* run = decode_run sj in
                              if fingerprint (Ok run) <> fp then
                                Error "decoded run does not match fingerprint"
                              else Ok run
                        with
                        | Ok run ->
                            if not (Hashtbl.mem entries key) then
                              order := key :: !order;
                            Hashtbl.replace entries key (Ok run)
                        | Error reason -> skip key reason
                      end
                      else if String.length status > 7
                              && String.sub status 0 7 = "failed:" then begin
                        match Result.bind (field "failure" j) failure_of_json with
                        | Ok f ->
                            if not (Hashtbl.mem entries key) then
                              order := key :: !order;
                            Hashtbl.replace entries key (Error f)
                        | Error reason -> skip key reason
                      end
                      else skip key ("unknown status " ^ status))
              | Some (Obs.Json.Str "mark") | Some (Obs.Json.Str _) ->
                  (* marks are progress breadcrumbs; unknown kinds are
                     forward compatibility *)
                  ()
              | _ ->
                  err := Some (Printf.sprintf "ledger line %d: no kind" (i + 1))))
      lines;
    match !err with
    | Some e -> Error e
    | None ->
        let entries =
          List.rev_map (fun key -> (key, Hashtbl.find entries key)) !order
        in
        Ok
          ( entries,
            {
              zero_stats with
              hydrated = List.length entries;
              stale = !stale;
              resumes = !resumes;
            } )
  end

(* ------------------------------------------------------------------ *)
(* Enable / disable                                                    *)
(* ------------------------------------------------------------------ *)

let disable () =
  (match !current with
  | None -> ()
  | Some j ->
      latest := stats ();
      Util.Durable.append_close j.ledger;
      Experiment.set_on_fresh None;
      Experiment.set_on_reuse None);
  current := None

let enable ~dir ~config ~resume =
  disable ();
  let ident = current_identity config in
  match
    mkdir_p (cells_dir dir);
    if resume then load_ledger ~dir ~ident else Ok ([], zero_stats)
  with
  | exception Unix.Unix_error (e, _, arg) ->
      Error (Printf.sprintf "journal: cannot create %s: %s" arg (Unix.error_message e))
  | Error e -> Error e
  | Ok (entries, base) ->
      Experiment.seed_cache entries;
      if base.resumes > 0 && Obs.Metrics.active () then
        Obs.Metrics.incr ~by:base.resumes m_resumes;
      truncate_torn_tail (ledger_path dir);
      let ledger = Util.Durable.append_open (ledger_path dir) in
      let j =
        { jdir = dir; ident; ledger; mu = Mutex.create (); written = 0;
          reused = 0; base }
      in
      append_json j
        (Obs.Json.Obj
           [
             ("kind", Obs.Json.Str "open");
             ("schema_version", Obs.Json.Int 1);
             ("identity", identity_json ident);
             ("resume", Obs.Json.Bool resume);
           ]);
      Experiment.set_on_fresh (Some (fun ~key ~nf r -> record_cell j ~key ~nf r));
      Experiment.set_on_reuse (Some (fun ~key -> record_reuse j ~key));
      current := Some j;
      latest := zero_stats;
      if base.hydrated > 0 then
        Obs.Log.info "journal: resumed %d cell(s) from %s%s" base.hydrated dir
          (if base.stale > 0 then
             Printf.sprintf " (%d stale cell(s) ignored)" base.stale
           else "");
      Ok ()
