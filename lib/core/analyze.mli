(** The CASTAN pipeline (§3.1): from an NF to an adversarial workload.

    Runs directed symbolic execution over [n] symbolic packets with the
    configured cache model, then post-processes the most expensive states:
    havoced hashes are reconciled through rainbow tables (§3.5), the path
    constraint is solved, and the model's packets become the workload.  If
    the best state's constraints cannot be solved, the next-ranked states
    are tried — mirroring the tool's "pick the state with the highest
    cost" step with a practical fallback.

    Rainbow tables are built once per (hash, key-space) pair and memoized
    across analyses. *)

type cache_kind =
  | Contention_sets of Cache.Contention.t  (** the paper's default *)
  | Oracle  (** ground-truth slice hash: the perfect-knowledge ablation *)
  | Baseline  (** no contention knowledge: cold-miss-only ablation *)

type config = {
  n_packets : int option;  (** default: the NF's Table-4 size *)
  strategy : Symbex.Searcher.strategy;
  cache : cache_kind;
  m : int;
  time_budget : float;
  instr_budget : int;
  max_states_tried : int;  (** ranked states to attempt solving *)
  seed : int;
  max_states : int;  (** watchdog pending-state budget, 0 = unlimited *)
  mem_budget_mb : int;  (** watchdog heap budget in MB, 0 = unlimited *)
}

val default_config : ?cache:cache_kind -> unit -> config
(** Castan searcher, M = 2, 30s/5M-instruction budget, watchdog budgets
    off, baseline-free contention model must be provided by [cache]
    (default {!Baseline} so the call works without a discovery run;
    experiments pass discovered sets). *)

type outcome = {
  nf : string;
  workload : Testbed.Workload.t;  (** named "CASTAN" *)
  predicted : Symbex.State.metrics list;  (** per packet, from the model *)
  predicted_cost : int;  (** total cycles of the chosen state *)
  n_havocs : int;
  reconciled : int;
  unreconciled : int;
  states_tried : int;
  analysis_time : float;
  stats : Symbex.Driver.stats;
}

val run : ?config:config -> Nf.Nf_def.t -> outcome
(** @raise Failure if no explored state yields a solvable workload (does not
    happen for the 11 evaluation NFs). *)

val discover_contention_sets :
  ?slice_seed:int -> ?pool:int -> ?pages:int -> ?reboots:int -> unit ->
  Cache.Contention.t
(** Convenience wrapper running §3.2 discovery with the standard candidate
    pool; memoized on its arguments (the empirical model is reused across
    NF analyses, as one would reuse the files on disk). *)
