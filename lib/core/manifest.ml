let git_describe () =
  try
    let ic =
      Unix.open_process_in "git describe --always --dirty 2>/dev/null"
    in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with _ -> "unknown"

let scale_name = function `Quick -> "quick" | `Default -> "default" | `Paper -> "paper"

(* ------------------------------------------------------------------ *)
(* Run identity                                                        *)
(* ------------------------------------------------------------------ *)

type identity = {
  git : string;
  config_digest : string;
  seed : int;
  jobs : int;
  injection : string;
  batch : int;
  compile_mode : string;
}

let config_json (c : Experiment.config) =
  Obs.Json.Obj
    [
      ("scale", Obs.Json.Str (scale_name c.Experiment.scale));
      ("samples", Obs.Json.Int c.Experiment.samples);
      ("analysis_time", Obs.Json.Float c.Experiment.analysis_time);
      ("analysis_instrs", Obs.Json.Int c.Experiment.analysis_instrs);
      ("use_contention_model", Obs.Json.Bool c.Experiment.use_contention_model);
      ("seed", Obs.Json.Int c.Experiment.seed);
      ("max_states", Obs.Json.Int c.Experiment.max_states);
      ("mem_budget_mb", Obs.Json.Int c.Experiment.mem_budget_mb);
    ]

let config_digest c =
  Digest.to_hex (Digest.string (Obs.Json.to_string (config_json c)))

let current_identity ?config () =
  {
    git = git_describe ();
    config_digest =
      (match config with Some c -> config_digest c | None -> "");
    seed = (match config with Some c -> c.Experiment.seed | None -> 0);
    jobs = Util.Pool.default_jobs ();
    injection = Util.Resilience.injection_signature ();
    batch = Testbed.Dut.default_batch ();
    compile_mode = Ir.Compile.mode_to_string (Ir.Compile.default_mode ());
  }

let identity_json (i : identity) =
  Obs.Json.Obj
    [
      ("git", Obs.Json.Str i.git);
      ("config_digest", Obs.Json.Str i.config_digest);
      ("seed", Obs.Json.Int i.seed);
      ("jobs", Obs.Json.Int i.jobs);
      ("injection", Obs.Json.Str i.injection);
      ("batch", Obs.Json.Int i.batch);
      ("compile_mode", Obs.Json.Str i.compile_mode);
    ]

let identity_of_json j =
  let str k =
    match Obs.Json.member k j with
    | Some (Obs.Json.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "identity: missing string field %S" k)
  in
  let int k =
    match Obs.Json.member k j with
    | Some (Obs.Json.Int n) -> Ok n
    | _ -> Error (Printf.sprintf "identity: missing int field %S" k)
  in
  (* [batch]/[compile_mode] postdate the replay-pipeline work; identities
     recorded before it parse with the "unknown" markers (0 / ""), which the
     comparability gates treat like a missing jobs count. *)
  let batch = match Obs.Json.member "batch" j with
    | Some (Obs.Json.Int n) -> n
    | _ -> 0
  in
  let compile_mode = match Obs.Json.member "compile_mode" j with
    | Some (Obs.Json.Str s) -> s
    | _ -> ""
  in
  match (str "git", str "config_digest", int "seed", int "jobs",
         str "injection")
  with
  | Ok git, Ok config_digest, Ok seed, Ok jobs, Ok injection ->
      Ok { git; config_digest; seed; jobs; injection; batch; compile_mode }
  | Error e, _, _, _, _
  | _, Error e, _, _, _
  | _, _, Error e, _, _
  | _, _, _, Error e, _
  | _, _, _, _, Error e ->
      Error e

(* Cache effectiveness at a glance: how many feasibility queries the solver
   never saw, and what fraction of slicing's work paid off.  Rates are
   derived here rather than left to consumers because hit-rate is the
   number people grep manifests for. *)
let solver_cache_json () =
  let s = Solver.Qcache.stats () in
  let avoided = s.hits + s.subset_hits + s.model_reuse in
  let rate =
    if s.queries = 0 then 0.0 else float_of_int avoided /. float_of_int s.queries
  in
  Obs.Json.Obj
    [
      ("enabled", Obs.Json.Bool (Solver.Qcache.enabled ()));
      ("queries", Obs.Json.Int s.queries);
      ("hits", Obs.Json.Int s.hits);
      ("subset_hits", Obs.Json.Int s.subset_hits);
      ("model_reuse", Obs.Json.Int s.model_reuse);
      ("misses", Obs.Json.Int s.misses);
      ("queries_avoided", Obs.Json.Int avoided);
      ("hit_rate", Obs.Json.Float rate);
      ("constraints_dropped", Obs.Json.Int s.constraints_dropped);
      ("evictions", Obs.Json.Int s.evictions);
    ]

(* Worker-pool accounting: how parallel the run actually was.  [tasks] and
   [steals]/[worker_busy_ns] let a manifest reader tell a genuinely serial
   run (jobs = 1, zero tasks) from a parallel one, and [bench_diff] warns
   when two compared runs used different job counts. *)
let pool_json () =
  let s = Util.Pool.stats () in
  Obs.Json.Obj
    [
      ("tasks", Obs.Json.Int s.Util.Pool.tasks);
      ("steals", Obs.Json.Int s.Util.Pool.steals);
      ("worker_busy_ns", Obs.Json.Int s.Util.Pool.worker_busy_ns);
    ]

let make ?ids ?config ?(extra = []) () =
  Obs.Json.Obj
    ([
       ("tool", Obs.Json.Str "castan");
       ("version", Obs.Json.Str "1.0.0");
       ("generated_at_unix", Obs.Json.Float (Unix.gettimeofday ()));
       ("git", Obs.Json.Str (git_describe ()));
       ("jobs", Obs.Json.Int (Util.Pool.default_jobs ()));
       (* Replay configuration: burst size and NFIR compile mode.  Top-level
          (like [jobs]) so bench_diff's comparability gate can read them
          without digging into per-entry identities. *)
       ("batch", Obs.Json.Int (Testbed.Dut.default_batch ()));
       ( "compile_mode",
         Obs.Json.Str (Ir.Compile.mode_to_string (Ir.Compile.default_mode ()))
       );
     ]
    @ (match ids with
      | Some l -> [ ("experiments", Obs.Json.List (List.map (fun i -> Obs.Json.Str i) l)) ]
      | None -> [])
    @ (match config with
      | Some c ->
          [
            ("config", config_json c);
            ("seed", Obs.Json.Int c.Experiment.seed);
            ("identity", identity_json (current_identity ~config:c ()));
          ]
      | None -> [])
    @ extra
    @ [
        ("metrics", Obs.Metrics.snapshot ());
        ("solver_cache", solver_cache_json ());
        ("pool", pool_json ());
        ( "replay",
          Obs.Json.Obj
            [
              ("batch", Obs.Json.Int (Testbed.Dut.default_batch ()));
              ( "compile_mode",
                Obs.Json.Str
                  (Ir.Compile.mode_to_string (Ir.Compile.default_mode ())) );
            ] );
      ]
    (* Profiled runs carry their site-level attribution alongside the
       metrics snapshot, so one manifest fully describes the run. *)
    @
    if Obs.Profile.sites () <> [] then
      [ ("profile", Obs.Profile.snapshot ()) ]
    else [])

let write ~path json =
  Util.Durable.write_string ~path (Obs.Json.to_string json ^ "\n")
