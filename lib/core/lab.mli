(** The performance lab: a schema-versioned, append-only run ledger over
    every perf artifact the tool emits, plus the analysis pass that turns
    the ledger into rankings, regression findings, and machine-readable
    suggested-next experiments.

    The ledger ([LAB_DIR/ledger.jsonl], one JSON record per line, written
    through {!Util.Durable}) holds {e normalized runs}: a bench manifest
    ([bench --json]), a run manifest ([--metrics]), a profile JSON
    ([castan profile --profile-json]) or a journal ledger ([--journal DIR])
    all normalize to the same [run] record — a {!Manifest.identity}, a
    timestamp, and per-experiment entries carrying wall seconds and
    {e delta} counters (bench metrics snapshots are cumulative; ingestion
    subtracts consecutive snapshots so each entry owns the counter growth
    it caused).

    Determinism contract: a [run]'s id is the MD5 of its canonical
    encoding with the source filename blanked, so the same content ingests
    to the same id from any path; re-ingesting the same inputs appends
    nothing (the ledger file is byte-identical); and {!report} orders runs
    by [(generated_at, run_id)] — content, not ingest order — so the
    report is a pure function of the ingested {e set}.  No part of the
    analysis reads the clock. *)

type source = Bench | Run_manifest | Profile | Journal_ledger

val source_name : source -> string

type entry = {
  id : string;  (** experiment id, NF name, or synthetic label *)
  seconds : float;  (** wall time; [0.] for sources that carry none *)
  counters : (string * int) list;
      (** per-entry counter {e deltas}, sorted by name *)
  identity : Manifest.identity option;  (** per-entry identity (schema 3) *)
  status : string;  (** ["ok"] or ["failed:<stage>"] *)
}

type run = {
  run_id : string;  (** MD5 hex over the canonical, filename-free encoding *)
  source : source;
  file : string;  (** basename of the ingested file — provenance only *)
  generated_at : float;  (** the artifact's own timestamp; [0.] if absent *)
  identity : Manifest.identity;
  schema : int;  (** the {e source} artifact's schema version *)
  total_seconds : float;
  pool_tasks : int;
  pool_busy_ns : int;
  entries : entry list;
}

type store = {
  dir : string;
  runs : run list;  (** sorted by [(generated_at, run_id)] *)
  duplicates : int;  (** ledger records collapsed onto an earlier run_id *)
  rejected : int;  (** unparsable or schema-skewed ledger lines dropped *)
  torn : int;  (** torn final line dropped (1 or 0) *)
}

val ledger_schema_version : int
val report_schema_version : int

(** {2 Normalization and ingestion} *)

val normalize : file:string -> Obs.Json.t -> (run, string) result
(** Classify a parsed artifact by shape — [experiments_timed] = bench
    manifest, [blocks] + [total_cycles] = profile, [tool]/[metrics] = run
    manifest — and normalize it.  [Error] on unrecognized shapes and on
    source schema versions newer than this build understands. *)

val normalize_journal : dir:string -> (run, string) result
(** One run for a whole journal directory (or a bare [ledger.jsonl] path):
    identity from the last [open] record, one entry per cell (last record
    per key wins) carrying the cell's NF name and status. *)

val ingest_paths : string list -> (string * (run, string) result) list
(** Expand and normalize, no ledger writes: a directory containing
    [ledger.jsonl] is a journal; any other directory contributes its
    [*.json] files in name order.  Returns one (path, result) per
    candidate artifact. *)

type ingest_stats = {
  ingested : int;
  duplicate : int;  (** content already in the ledger (or repeated input) *)
  errors : (string * string) list;  (** (path, reason), in input order *)
}

val ingest : dir:string -> string list -> (ingest_stats, string) result
(** Load the ledger at [dir] (created if missing), normalize every input,
    and append the runs not already present.  Appends are fsynced line
    writes; ingesting the same inputs twice leaves the ledger
    byte-identical.  [Error] only when the ledger itself cannot be read or
    written. *)

val load : dir:string -> (store, string) result
(** A missing ledger is an empty store, not an error. *)

(** {2 Run lookup and diffing} *)

val find_run : store -> string -> (run, string) result
(** Selector forms: [latest] / [latest~K] (K runs before the newest),
    a [run_id] prefix (must be unique), or an ingested file's basename
    (newest match wins).  The error message lists near misses. *)

val timings : run -> (string * float) list
(** The ok entries that carry wall time, in entry order. *)

val comparable : run -> run -> bool
(** Same identity up to git: equal config digest, seed, jobs and injection
    signature.  Wall times of non-comparable runs answer different
    questions; {!diff} and the regression scan never cross them. *)

val latest_pair : store -> (run * run, string) result
(** The newest wall-bearing run and the newest earlier run comparable to
    it — the ledger-native replacement for "latest two BENCH_*.json in a
    dir". *)

val render_diff :
  noise:float ->
  max_regress:float ->
  base_label:string ->
  next_label:string ->
  base:(string * float) list ->
  next:(string * float) list ->
  string * int
(** The bench_diff gate, shared with [tools/bench_diff]: returns the
    rendered per-experiment table and the number of experiments whose
    slowdown exceeds both the noise floor (seconds) and the percentage
    gate. *)

(** {2 Reports} *)

type ranking = {
  rk_id : string;
  rk_runs : int;  (** wall-bearing runs containing this experiment *)
  rk_latest : float;  (** seconds in the newest such run *)
  rk_best : float;
  rk_worst : float;
  rk_mean : float;
  rk_solver_queries : int;  (** delta verdicts in the newest entry *)
  rk_cache_hit_rate : float;  (** solver-cache hit rate, [-1.] if no queries *)
  rk_bound : string;  (** ["solver"], ["symbex"], ["cache-model"], ["unknown"] *)
}

type regression = {
  rg_id : string;
  rg_jobs : int;
  rg_streak : int;  (** trailing consecutive regressing transitions *)
  rg_base : float;  (** seconds before the streak began *)
  rg_last : float;
  rg_pct : float;  (** total slowdown over the streak *)
  rg_bound : string;
  rg_from_run : string;  (** run_id prefix *)
  rg_to_run : string;
}

type suggestion = {
  sg_kind : string;  (** ["regression-ab"], ["jobs-sweep"], ["failure"], ["ingest"] *)
  sg_experiment : string option;
  sg_action : string;  (** a runnable command line *)
  sg_rationale : string;
}

type report = {
  rp_store : store;
  rp_rankings : ranking list;  (** by latest wall time, slowest first *)
  rp_regressions : regression list;
  rp_failures : (string * int) list;  (** failure pattern -> runs seen in *)
  rp_suggestions : suggestion list;
}

val report : ?noise:float -> ?max_regress:float -> store -> report
(** Pure.  Regression thresholds default to the bench_diff gate (0.05 s
    noise floor, 20%). *)

val report_json : ?top:int -> report -> Obs.Json.t
(** Schema-versioned ({!report_schema_version}); rankings truncated to
    [top] (default 20) entries per axis. *)

val report_table : ?top:int -> report -> string
(** The human rendering: summary, rankings table, regressions, failure
    patterns, suggested-next list. *)
