(** The performance lab: a schema-versioned, append-only run ledger over
    every perf artifact the tool emits, plus the analysis pass that turns
    the ledger into rankings, regression findings, and machine-readable
    suggested-next experiments.

    The ledger ([LAB_DIR/ledger.jsonl], one JSON record per line, written
    through {!Util.Durable}) holds {e normalized runs}: a bench manifest
    ([bench --json]), a run manifest ([--metrics]), a profile JSON
    ([castan profile --profile-json]) or a journal ledger ([--journal DIR])
    all normalize to the same [run] record — a {!Manifest.identity}, a
    timestamp, and per-experiment entries carrying wall seconds and
    {e delta} counters (bench metrics snapshots are cumulative; ingestion
    subtracts consecutive snapshots so each entry owns the counter growth
    it caused).

    Determinism contract: a [run]'s id is the MD5 of its canonical
    encoding with the source filename blanked, so the same content ingests
    to the same id from any path; re-ingesting the same inputs appends
    nothing (the ledger file is byte-identical); and {!report} orders runs
    by [(generated_at, run_id)] — content, not ingest order — so the
    report is a pure function of the ingested {e set}.  No part of the
    analysis reads the clock. *)

type source = Bench | Run_manifest | Profile | Journal_ledger

val source_name : source -> string

type entry = {
  id : string;  (** experiment id, NF name, or synthetic label *)
  seconds : float;  (** wall time; [0.] for sources that carry none *)
  counters : (string * int) list;
      (** per-entry counter {e deltas}, sorted by name *)
  identity : Manifest.identity option;  (** per-entry identity (schema 3) *)
  status : string;  (** ["ok"] or ["failed:<stage>"] *)
}

type run = {
  run_id : string;  (** MD5 hex over the canonical, filename-free encoding *)
  source : source;
  file : string;  (** basename of the ingested file — provenance only *)
  generated_at : float;  (** the artifact's own timestamp; [0.] if absent *)
  identity : Manifest.identity;
  schema : int;  (** the {e source} artifact's schema version *)
  total_seconds : float;
  pool_tasks : int;
  pool_busy_ns : int;
  entries : entry list;
  role : string;
      (** ["evidence"] (everything a user ingests) or ["hypothesis"] (an
          arm executed by {!run_next}).  Hypothesis runs are excluded from
          rankings, the regression scan and failure patterns, so an A/B arm
          can never masquerade as fresh evidence and re-trigger the
          suggestion it is testing.  Evidence runs encode without the role
          fields, keeping pre-engine ledgers (and their run_ids)
          byte-identical. *)
  hypothesis : string;  (** hypothesis key; [""] for evidence *)
  arm : string;  (** arm name, e.g. ["on"]/["off"]; [""] for evidence *)
}

(** {2 Verdicts}

    A verdict is the engine's answer to one suggestion: it names the
    hypothesis key, the runs on both sides of the comparison, the applied
    thresholds and the outcome.  Verdicts are first-class ledger citizens —
    appended to the same [ledger.jsonl] (kind ["verdict"]), content-addressed
    like runs, deduped on re-append. *)

type outcome = Held | Refuted | Inconclusive

val outcome_name : outcome -> string
(** ["held"] / ["refuted"] / ["inconclusive"]. *)

val outcome_of_name : string -> (outcome, string) result

type verdict = {
  vd_id : string;  (** MD5 hex over the canonical, id-free encoding *)
  vd_hypothesis : string;  (** the suggestion's hypothesis key *)
  vd_kind : string;  (** the suggestion kind that raised it *)
  vd_experiment : string option;
  vd_outcome : outcome;
  vd_base_run : string;  (** full run_id of the baseline arm; [""] if none *)
  vd_test_run : string;  (** full run_id of the arm under test *)
  vd_base_seconds : float;
  vd_test_seconds : float;
  vd_delta_pct : float;
  vd_noise : float;  (** noise floor applied (seconds) *)
  vd_max_regress : float;  (** percentage gate applied *)
  vd_runs_performed : int;  (** subprocesses this verdict cost *)
  vd_generated_at : float;
  vd_detail : string;  (** one human sentence of why *)
}

val verdict_json : ?for_id:bool -> verdict -> Obs.Json.t

val verdict_of_json : Obs.Json.t -> (verdict, string) result

val with_verdict_id : verdict -> verdict
(** Fills [vd_id] with the digest of the id-blanked encoding. *)

val append_verdict : dir:string -> verdict -> (bool, string) result
(** Appends one verdict to the ledger unless an identical one (same
    [vd_id]) is already present; [Ok true] iff a line was written. *)

type store = {
  dir : string;
  runs : run list;  (** sorted by [(generated_at, run_id)] *)
  verdicts : verdict list;  (** sorted by [(vd_generated_at, vd_id)] *)
  duplicates : int;  (** ledger records collapsed onto an earlier id *)
  rejected : int;  (** unparsable or schema-skewed ledger lines dropped *)
  torn : int;  (** torn final line dropped (1 or 0) *)
}

val ledger_schema_version : int
val report_schema_version : int

(** {2 Normalization and ingestion} *)

val normalize : file:string -> Obs.Json.t -> (run, string) result
(** Classify a parsed artifact by shape — [experiments_timed] = bench
    manifest, [blocks] + [total_cycles] = profile, [tool]/[metrics] = run
    manifest — and normalize it.  [Error] on unrecognized shapes and on
    source schema versions newer than this build understands. *)

val normalize_journal : dir:string -> (run, string) result
(** One run for a whole journal directory (or a bare [ledger.jsonl] path):
    identity from the last [open] record, one entry per cell (last record
    per key wins) carrying the cell's NF name and status. *)

val ingest_paths : string list -> (string * (run, string) result) list
(** Expand and normalize, no ledger writes: a directory containing
    [ledger.jsonl] is a journal; any other directory contributes its
    [*.json] files in name order.  Returns one (path, result) per
    candidate artifact. *)

type ingest_stats = {
  ingested : int;
  duplicate : int;  (** content already in the ledger (or repeated input) *)
  errors : (string * string) list;  (** (path, reason), in input order *)
}

val ingest : dir:string -> string list -> (ingest_stats, string) result
(** Load the ledger at [dir] (created if missing), normalize every input,
    and append the runs not already present.  Appends are fsynced line
    writes; ingesting the same inputs twice leaves the ledger
    byte-identical.  [Error] only when the ledger itself cannot be read or
    written. *)

val load : dir:string -> (store, string) result
(** A missing ledger is an empty store, not an error. *)

(** {2 Run lookup and diffing} *)

val find_run : store -> string -> (run, string) result
(** Selector forms: [latest] / [latest~K] (K runs before the newest),
    a [run_id] prefix (must be unique), or an ingested file's basename
    (newest match wins).  The error message lists near misses; a
    [latest~K] beyond the ledger's depth says how many runs it holds. *)

val filter_runs :
  ?experiment:string ->
  ?since:string ->
  ?verdict:string ->
  store ->
  (run list, string) result
(** Conjunction of filters over [store.runs]: [experiment] keeps runs with
    an entry whose id starts with the prefix; [since] keeps runs strictly
    after the resolved selector in [(generated_at, run_id)] order;
    [verdict] ("held"/"refuted"/"inconclusive") keeps runs referenced on
    either side of a verdict with that outcome.  Each is a pure function
    of the ledger contents, so the result is ingest-order independent. *)

val timings : run -> (string * float) list
(** The ok entries that carry wall time, in entry order. *)

val comparable : run -> run -> bool
(** Same identity up to git: equal config digest, seed, jobs and injection
    signature.  Wall times of non-comparable runs answer different
    questions; {!diff} and the regression scan never cross them. *)

val latest_pair : store -> (run * run, string) result
(** The newest wall-bearing run and the newest earlier run comparable to
    it — the ledger-native replacement for "latest two BENCH_*.json in a
    dir". *)

val render_diff :
  noise:float ->
  max_regress:float ->
  base_label:string ->
  next_label:string ->
  base:(string * float) list ->
  next:(string * float) list ->
  string * int
(** The bench_diff gate, shared with [tools/bench_diff]: returns the
    rendered per-experiment table and the number of experiments whose
    slowdown exceeds both the noise floor (seconds) and the percentage
    gate. *)

(** {2 Reports} *)

type ranking = {
  rk_id : string;
  rk_runs : int;  (** wall-bearing runs containing this experiment *)
  rk_latest : float;  (** seconds in the newest such run *)
  rk_best : float;
  rk_worst : float;
  rk_mean : float;
  rk_solver_queries : int;  (** delta verdicts in the newest entry *)
  rk_cache_hit_rate : float;  (** solver-cache hit rate, [-1.] if no queries *)
  rk_bound : string;  (** ["solver"], ["symbex"], ["cache-model"], ["unknown"] *)
}

type regression = {
  rg_id : string;
  rg_jobs : int;
  rg_streak : int;  (** trailing consecutive regressing transitions *)
  rg_base : float;  (** seconds before the streak began *)
  rg_last : float;
  rg_pct : float;  (** total slowdown over the streak *)
  rg_bound : string;
  rg_from_run : string;  (** run_id prefix *)
  rg_to_run : string;
}

type suggestion = {
  sg_kind : string;  (** ["regression-ab"], ["jobs-sweep"], ["failure"], ["ingest"] *)
  sg_experiment : string option;
  sg_action : string;  (** a runnable command line *)
  sg_rationale : string;
  sg_hypothesis : string;
      (** key naming what the action would test, pinned to the evidence
          that raised it (e.g. ["regression-ab|fig12|<run>"]); [""] for
          suggestions that test nothing (ingest nags) *)
}

type hypothesis = {
  hy_key : string;
  hy_kind : string;
  hy_experiment : string option;
  hy_status : string;
      (** ["open"] (no evidence yet), ["evidence-ready"] (arms ingested,
          verdict pending), or the latest verdict's outcome name *)
  hy_verdicts : int;
  hy_streak : int;  (** trailing verdicts sharing the latest outcome *)
}

type report = {
  rp_store : store;
  rp_rankings : ranking list;  (** by latest wall time, slowest first *)
  rp_regressions : regression list;
  rp_failures : (string * int) list;  (** failure pattern -> runs seen in *)
  rp_suggestions : suggestion list;
      (** suggestions whose hypothesis was already held or refuted are
          suppressed; ones whose arm evidence is already ingested (same
          identity and flags) have their action rewritten instead of
          re-emitted verbatim *)
  rp_hypotheses : hypothesis list;
      (** every live suggestion key plus every key verdicts have been
          recorded against *)
}

val regression_hypothesis : regression -> string
(** The hypothesis key a regression finding's suggestion carries. *)

val report : ?noise:float -> ?max_regress:float -> store -> report
(** Pure.  Regression thresholds default to the bench_diff gate (0.05 s
    noise floor, 20%). *)

val report_json : ?top:int -> report -> Obs.Json.t
(** Schema-versioned ({!report_schema_version}); rankings truncated to
    [top] (default 20) entries per axis. *)

val report_table : ?top:int -> report -> string
(** The human rendering: summary, rankings table, regressions, failure
    patterns, hypotheses, suggested-next list. *)

(** {2 The hypothesis engine}

    {!run_next} closes the lab's loop: it takes the top suggestion, runs
    its action as subprocess {e arms} (the [--no-solver-cache] A/B for
    solver-bound regressions, the profile run for symbex-bound ones, the
    cache-model / unknown recheck, the [-j] pair, the failure repro),
    wraps each arm's output in a role-marked bench-shaped artifact,
    ingests it, compares the arms, and appends one verdict.  All arms run
    [--quick]; comparisons are always between arms run on this machine,
    never against historical wall times.  Arms already present in the
    ledger for the same hypothesis key are not re-executed — which makes a
    crashed invocation resumable and a resolved one free. *)

type executor = argv:string list -> log:string -> (int * float, string) result
(** Runs one command, stdout+stderr redirected to [log]; returns the exit
    code and wall seconds.  Injectable for tests. *)

val default_executor : executor
(** [Unix.create_process] + [waitpid]. *)

type exec_outcome = {
  xo_verdict : verdict option;  (** [None]: the queue was empty *)
  xo_runs_performed : int;  (** subprocesses actually executed *)
  xo_message : string;
}

val run_next :
  ?noise:float ->
  ?max_regress:float ->
  ?deadline:Util.Resilience.deadline ->
  ?executor:executor ->
  ?emit:(name:string -> (string * Obs.Json.t) list -> unit) ->
  ?skip:(string -> bool) ->
  dir:string ->
  castan:string ->
  unit ->
  (exec_outcome, string) result
(** Execute the top suggestion's plan and append its verdict.  [castan] is
    the binary to invoke (normally [Sys.executable_name]).  [emit] receives
    [action_started] / [artifact_ingested] / [verdict] progress events;
    [skip] drops suggestions by hypothesis key.  An expired [deadline]
    yields an [Inconclusive] verdict rather than a half-run comparison.
    Arms whose runs are already in the ledger are not re-executed (the
    crash-recovery path); a suggestion whose arms are all ingested and
    which already has a verdict — any outcome — is passed over entirely,
    so re-invoking [run_next] never mints near-duplicate verdicts.
    [Error] is infrastructure only (unreadable/unwritable ledger). *)

type loop_stats = {
  lo_iterations : int;
  lo_runs_performed : int;
  lo_verdicts : verdict list;  (** oldest first *)
  lo_stop : string;  (** ["queue-empty"], ["budget-runs"] or ["deadline"] *)
}

val loop :
  ?noise:float ->
  ?max_regress:float ->
  ?budget_runs:int ->
  ?deadline:Util.Resilience.deadline ->
  ?executor:executor ->
  ?emit:(name:string -> (string * Obs.Json.t) list -> unit) ->
  dir:string ->
  castan:string ->
  unit ->
  (loop_stats, string) result
(** Iterate {!run_next} until the queue is empty or a cap trips.  The
    budget is checked between actions (an A/B is atomic, so the last
    action may overshoot by its arm count); a hypothesis attempted once is
    not retried within the same loop even if its verdict was
    inconclusive. *)
