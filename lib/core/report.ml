let print_cdf_figure ~id ~title ~unit_label series =
  Printf.printf "\n== %s: %s ==\n" id title;
  let header = "CDF" :: List.map fst series in
  let rows =
    List.init 21 (fun k ->
        let q = float_of_int k /. 20.0 in
        Printf.sprintf "%.2f" q
        :: List.map
             (fun (_, cdf) ->
               Printf.sprintf "%.0f" (Util.Stats.quantile cdf q))
             series)
  in
  Util.Table.print ~header:(header @ [ Printf.sprintf "(%s)" unit_label ]) ~rows

let latency_series (r : Experiment.nf_run) =
  ("NOP", Testbed.Tg.latency_cdf r.nop)
  :: List.map
       (fun (row : Experiment.row) ->
         (row.label, Testbed.Tg.latency_cdf row.measurement))
       r.rows

let cycles_series (r : Experiment.nf_run) =
  ("NOP", Testbed.Tg.cycles_cdf r.nop)
  :: List.map
       (fun (row : Experiment.row) ->
         (row.label, Testbed.Tg.cycles_cdf row.measurement))
       r.rows

(* Tables 1-3, 5 share a layout: workloads as rows, NFs as columns.  NFs
   whose campaign failed keep their column, rendered as a [failed:<stage>]
   cell in every row — a degraded table is still a table. *)
let workload_order =
  [ "NOP"; "1 Packet"; "Zipfian"; "UniRand"; "UniRand CASTAN"; "CASTAN"; "Manual" ]

let failed_cell (f : Util.Resilience.failure) = "failed:" ^ f.Util.Resilience.stage

let grid_table ~title ~cell ?(failed = []) runs =
  Printf.printf "\n== %s ==\n" title;
  let header =
    ("Workload" :: List.map (fun (r : Experiment.nf_run) -> r.nf.Nf.Nf_def.name) runs)
    @ List.map fst failed
  in
  let failed_cells = List.map (fun (_, f) -> failed_cell f) failed in
  let rows =
    List.filter_map
      (fun wl ->
        let cells =
          List.map
            (fun (r : Experiment.nf_run) ->
              if wl = "NOP" then cell r (Some r.Experiment.nop)
              else
                match List.find_opt (fun (row : Experiment.row) -> row.label = wl) r.rows with
                | Some row -> cell r (Some row.measurement)
                | None -> "-")
            runs
        in
        if List.for_all (( = ) "-") cells then None
        else Some ((wl :: cells) @ failed_cells))
      workload_order
  in
  Util.Table.print ~header ~rows

let print_throughput_table ?failed runs =
  grid_table ~title:"Table 1: maximum throughput (Mpps)"
    ~cell:(fun _ m ->
      match m with
      | Some m -> Printf.sprintf "%.2f" (Testbed.Tg.max_throughput_mpps m)
      | None -> "-")
    ?failed runs

let print_instrs_table ?failed runs =
  grid_table ~title:"Table 2: median instructions retired per packet"
    ~cell:(fun _ m ->
      match m with
      | Some m -> string_of_int (Testbed.Tg.median_instrs m)
      | None -> "-")
    ?failed runs

let print_misses_table ?failed runs =
  grid_table ~title:"Table 3: median L3 misses per packet"
    ~cell:(fun _ m ->
      match m with
      | Some m -> string_of_int (Testbed.Tg.median_l3_misses m)
      | None -> "-")
    ?failed runs

let print_deviation_table ?failed runs =
  grid_table ~title:"Table 5: median latency deviation from NOP (ns)"
    ~cell:(fun (r : Experiment.nf_run) m ->
      match m with
      | Some m when m != r.Experiment.nop ->
          Printf.sprintf "%.0f" (Testbed.Tg.deviation_from_nop_ns m ~nop:r.Experiment.nop)
      | Some _ -> "0"
      | None -> "-")
    ?failed runs

let print_analysis_table ?(failed = []) runs =
  Printf.printf "\n== Table 4: CASTAN analysis (packets generated, run time) ==\n";
  let header = [ "NF"; "# Packets"; "Time (s)"; "Explored"; "Reconciled" ] in
  let rows =
    List.map
      (fun (r : Experiment.nf_run) ->
        let c = r.Experiment.castan in
        [
          r.nf.Nf.Nf_def.name;
          string_of_int (Testbed.Workload.length c.Analyze.workload);
          Printf.sprintf "%.1f" c.Analyze.analysis_time;
          string_of_int c.Analyze.stats.Symbex.Driver.explored;
          Printf.sprintf "%d/%d" c.Analyze.reconciled c.Analyze.n_havocs;
        ])
      runs
    @ List.map
        (fun (name, f) -> [ name; failed_cell f; "-"; "-"; "-" ])
        failed
  in
  Util.Table.print ~header ~rows

let print_failure_summary failures =
  if failures <> [] then begin
    Printf.printf "\n== failure summary: %d contained failure(s) ==\n"
      (List.length failures);
    List.iter
      (fun (stage, n) -> Printf.printf "  %-12s %d\n" stage n)
      (Util.Resilience.by_stage failures);
    List.iter
      (fun f -> Printf.printf "  - %s\n" (Util.Resilience.to_string f))
      failures
  end
