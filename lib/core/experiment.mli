(** Orchestration of the paper's measurement campaign (§5).

    One [nf_run] reproduces everything §5 measures for one NF: the NOP
    baseline, the generic workloads (1 Packet, Zipfian, UniRand), the
    volume-fair UniRand-CASTAN, the synthesized CASTAN workload, and — where
    the paper has one — the hand-crafted Manual workload.  Runs are memoized
    by (NF, scale), since every table and figure draws on the same eleven
    campaigns. *)

type row = { label : string; measurement : Testbed.Tg.measurement }

type nf_run = {
  nf : Nf.Nf_def.t;
  nop : Testbed.Tg.measurement;
  rows : row list;  (** in the paper's legend order *)
  castan : Analyze.outcome;
}

type config = {
  scale : Testbed.Traffic.scale;
  samples : int;  (** latency samples per workload *)
  analysis_time : float;  (** symbex budget per NF, seconds *)
  analysis_instrs : int;
  use_contention_model : bool;  (** false = baseline cache-model ablation *)
  seed : int;
  max_states : int;  (** symbex watchdog pending-state budget, 0 = off *)
  mem_budget_mb : int;  (** symbex watchdog heap budget in MB, 0 = off *)
}

val default_config : config
(** Default scale, 20,000 samples, 10s/3M-instruction analysis budget,
    contention model on. *)

val quick_config : config
(** Scaled down for tests and smoke runs. *)

val try_run :
  ?config:config -> string -> (nf_run, Util.Resilience.failure) result
(** [try_run name] looks the NF up in {!Nf.Registry} and runs (or returns
    the memoized) campaign with every pipeline stage guarded: a failing NF
    comes back as [Error] naming the stage (["symbex"] or ["testbed"]) and
    the reason, so callers (the harness, the tables) can render a
    [failed:<stage>] cell and continue with the other NFs.  Failures are
    memoized like successes, keeping repeated table renders consistent.
    The memo table is Mutex-guarded: concurrent calls from {!Util.Pool}
    workers (the harness prewarm) are safe, and racing callers agree on one
    canonical cached value. *)

val run : ?config:config -> string -> nf_run
(** Raising wrapper over {!try_run}.
    @raise Failure when the campaign failed. *)

val find_row : nf_run -> string -> Testbed.Tg.measurement
(** @raise Not_found for labels absent from this run (e.g. "Manual"). *)

val workload_labels : nf_run -> string list

val clear_cache : unit -> unit
(** Forget memoized campaigns (tests use it to vary configurations).
    Also forgets which entries were journal-hydrated.  Thread-safe. *)

(** {2 Journal integration}

    The run journal ({!Journal}) depends on this module, so the coupling
    runs through observers installed here rather than direct calls. *)

val cache_key : string -> config -> string
(** The memo (and journal cell) key for one NF campaign under one config. *)

val seed_cache :
  (string * (nf_run, Util.Resilience.failure) result) list -> unit
(** Pre-populate the memo with journal-hydrated cells.  Existing entries
    win; seeded keys are tracked so their first reuse can be counted. *)

val set_on_fresh :
  (key:string -> nf:string -> (nf_run, Util.Resilience.failure) result -> unit)
  option ->
  unit
(** Observer called once per key actually computed in this process (the
    insertion winner under races), with the canonical memoized value.
    Called outside the memo lock. *)

val set_on_reuse : (key:string -> unit) option -> unit
(** Observer called the first time a {!seed_cache}-hydrated entry satisfies
    a lookup — i.e. once per cell a resumed run did not have to re-run. *)
