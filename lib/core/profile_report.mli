(** Basic-block aggregation of {!Obs.Profile} samples, and the three
    surfaces the profiler is consumed through: a top-N hot-block table, a
    flamegraph-compatible collapsed-stack file, and profile JSON.

    The profiler attributes at [(func, pc)] granularity; this module derives
    each function's basic-block leaders from its flat CFG (a leader is pc 0,
    any branch/jump target, and any instruction following a branch, jump or
    return) and folds every site into the block holding it.  Pseudo-functions
    the executors use for runtime overhead (["<dpdk>"]) are treated as a
    single block at pc 0.

    Everything emitted here is derived from deterministic integer samples,
    so two identical runs produce byte-identical [table]/[collapsed]/JSON
    block sections; wall-clock timers appear only under ["timers_s"] in the
    JSON. *)

type row = {
  func : string;
  block : int;  (** leader pc of the block ([0] for pseudo-functions) *)
  stats : Obs.Profile.stats;
}

val rows : Ir.Cfg.t -> row list
(** Aggregates the current {!Obs.Profile} sites into blocks, sorted by
    cycles (descending), ties broken by [(func, block)]. *)

val total_cycles : row list -> int

val table : nf:string -> ?top:int -> Ir.Cfg.t -> string
(** The hot-block table (default [top] 20): cycles, share of total,
    instructions, loads/stores and the L1/L2/L3/DRAM mix per block. *)

val collapsed : nf:string -> Ir.Cfg.t -> string
(** Collapsed-stack lines [nf;func;blkN cycles], one per block with a
    non-zero cycle count, sorted by [(func, block)] — loadable by standard
    flamegraph tooling.  Counts sum to {!total_cycles}. *)

val to_json : nf:string -> Ir.Cfg.t -> Obs.Json.t
(** [{"schema_version", "nf", "total_cycles", "timers_s", "blocks": [...]}]
    with one object per block, in [rows] order. *)
