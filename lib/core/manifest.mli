(** Run manifests: a machine-readable record of what produced a set of
    results — tool version, git revision, experiment ids, the full
    {!Experiment.config} (including the seed), and the final
    {!Obs.Metrics.snapshot}.

    Written by [castan experiment --metrics FILE] and (with bench timings
    spliced in) by [bench/main.exe --json PATH], so every artifact of a run
    names the code and configuration that made it. *)

val git_describe : unit -> string
(** [git describe --always --dirty] of the working tree, or ["unknown"] when
    git (or the repository) is unavailable.  Never raises. *)

val config_json : Experiment.config -> Obs.Json.t

(** {2 Run identity}

    The five facts that decide whether two results are comparable — and
    whether a journal cell or lab-ledger run may be reused: git revision,
    a digest of the canonical config JSON, the seed, the worker-pool job
    count, and the fault-injection signature.  {!Journal} keys its cells by
    this record; {!Lab} keys ledger runs by it; [bench --json] (schema 3)
    embeds it in every per-experiment entry so ingestion never guesses
    provenance. *)

type identity = {
  git : string;  (** [git describe --always --dirty] *)
  config_digest : string;  (** MD5 of the canonical config JSON; [""] when
                               no config describes the run *)
  seed : int;
  jobs : int;
  injection : string;  (** {!Util.Resilience.injection_signature} *)
  batch : int;  (** replay burst size; [0] = unknown (identity predates the
                    replay pipeline) *)
  compile_mode : string;  (** {!Ir.Compile.mode_to_string}; [""] = unknown *)
}

val config_digest : Experiment.config -> string
(** MD5 hex of {!config_json}'s rendering — the canonical config digest. *)

val current_identity : ?config:Experiment.config -> unit -> identity
(** The identity a result produced {e now} would carry.  Without [?config],
    [config_digest] is [""] and [seed] is [0]. *)

val identity_json : identity -> Obs.Json.t
val identity_of_json : Obs.Json.t -> (identity, string) result

val make :
  ?ids:string list ->
  ?config:Experiment.config ->
  ?extra:(string * Obs.Json.t) list ->
  unit ->
  Obs.Json.t
(** Builds the manifest object.  [extra] fields are appended at the top
    level (the bench harness adds per-experiment wall times).  The metrics
    snapshot is taken at call time — build the manifest {e after} the run.
    When the {!Obs.Profile} registry holds attribution samples, a
    ["profile"] section (site-level cycles/accesses plus wall-time buckets)
    is embedded too.  A top-level ["jobs"] field records the worker-pool
    default in effect ([-j]), and a ["pool"] section its
    [tasks]/[steals]/[worker_busy_ns] counters; apart from those (and the
    timestamp and wall times), manifests are byte-identical across job
    counts. *)

val write : path:string -> Obs.Json.t -> unit
(** Writes the manifest followed by a newline, atomically: the bytes land
    in [path ^ ".tmp"] and are fsynced before renaming over [path], so a
    crash never leaves a torn manifest ({!Util.Durable}). *)
