(** The experiment registry behind `bench/main.exe` and
    `castan experiment`.

    Every table and figure of the paper's §5, the ablation studies of the
    design choices DESIGN.md calls out, and the §5.5 discussion experiments,
    addressable by id.  Running an entry prints its report to stdout. *)

type entry = {
  id : string;
  descr : string;
  run : Experiment.config -> unit;
}

val all : entry list
val ids : string list

val find : string -> entry option

val run_id : Experiment.config -> string -> unit
(** Runs one entry and prints a timing trailer.
    @raise Invalid_argument on unknown ids (message lists known ones). *)

val figure_nfs : (string * string) list
(** [(figure id, NF name)] for the CDF figures — used by tests and docs. *)
