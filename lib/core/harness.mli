(** The experiment registry behind `bench/main.exe` and
    `castan experiment`.

    Every table and figure of the paper's §5, the ablation studies of the
    design choices DESIGN.md calls out, and the §5.5 discussion experiments,
    addressable by id.  Running an entry prints its report to stdout. *)

type entry = {
  id : string;
  descr : string;
  run : Experiment.config -> unit;
}

val all : entry list
val ids : string list

val find : string -> entry option

val expand_id : string -> string list
(** Meta-ids: ["tables"], ["figures"] and ["all"] expand to their groups;
    any other id expands to itself (validity checked by {!run_id}). *)

val run_id : Experiment.config -> string -> float
(** Runs one entry (guarded: a failing entry prints [\[id failed: ...\]] and
    records the failure instead of raising, unless fail-fast is on) and
    prints a timing trailer; returns the entry's wall time in seconds.  The
    trailer and the return value both come from the {!Obs.Trace.timed} span
    the trace stream records, so the three can never disagree.
    @raise Invalid_argument on unknown ids (message lists known ones). *)

val figure_nfs : (string * string) list
(** [(figure id, NF name)] for the CDF figures — used by tests and docs. *)

val prewarm : Experiment.config -> string list -> float option
(** [prewarm config ids] runs the memoized per-NF campaigns behind [ids] on
    the {!Util.Pool} — one task per distinct NF, in the order a serial run
    would first need them — so the subsequent serial rendering pass hits
    the memo table.  This is where [-j N] buys its campaign-level
    parallelism.  Returns the wall seconds spent (recorded as a ["prewarm"]
    trace span), or [None] when it would be pointless: fewer than two
    distinct campaign NFs, or a default job count of 1 (keeping [-j 1]
    exactly the pre-pool code path). *)
