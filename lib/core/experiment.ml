type row = { label : string; measurement : Testbed.Tg.measurement }

type nf_run = {
  nf : Nf.Nf_def.t;
  nop : Testbed.Tg.measurement;
  rows : row list;
  castan : Analyze.outcome;
}

type config = {
  scale : Testbed.Traffic.scale;
  samples : int;
  analysis_time : float;
  analysis_instrs : int;
  use_contention_model : bool;
  seed : int;
  max_states : int;
  mem_budget_mb : int;
}

let default_config =
  {
    scale = `Default;
    samples = 20_000;
    analysis_time = 10.0;
    analysis_instrs = 3_000_000;
    use_contention_model = true;
    seed = 42;
    max_states = 0;
    mem_budget_mb = 0;
  }

let quick_config =
  {
    scale = `Quick;
    samples = 4_000;
    analysis_time = 3.0;
    analysis_instrs = 800_000;
    use_contention_model = true;
    seed = 42;
    max_states = 0;
    mem_budget_mb = 0;
  }

(* The memo table is shared across pool workers (Harness prewarms campaigns
   in parallel), so access is Mutex-guarded with double-checked insertion:
   two workers racing on the same key both run the (deterministic) campaign
   but agree on one canonical cached value. *)
let cache_mu = Mutex.create ()

let cache : (string, (nf_run, Util.Resilience.failure) result) Hashtbl.t =
  Hashtbl.create 16

(* Keys seeded from a journal (guarded by [cache_mu]); an entry leaves the
   set on its first reuse so each resumed cell is counted once. *)
let hydrated : (string, unit) Hashtbl.t = Hashtbl.create 16

let clear_cache () =
  Mutex.protect cache_mu (fun () ->
      Hashtbl.reset cache;
      Hashtbl.reset hydrated)

let cache_key name (c : config) =
  Printf.sprintf "%s/%s/%d/%b/%d/%d" name
    (match c.scale with `Quick -> "q" | `Default -> "d" | `Paper -> "p")
    c.samples c.use_contention_model c.max_states c.mem_budget_mb

(* Journal integration.  The journal module (which depends on this one)
   installs observers instead of this module calling it directly:
   [on_fresh] fires once per key actually computed in this process, with
   the canonical memoized value; [on_reuse] fires the first time a
   journal-hydrated entry satisfies a lookup.  Hooks are called outside
   the cache mutex — the journal takes its own lock. *)
let on_fresh :
    (key:string -> nf:string -> (nf_run, Util.Resilience.failure) result -> unit)
    option
    ref =
  ref None

let set_on_fresh f = on_fresh := f

let on_reuse : (key:string -> unit) option ref = ref None
let set_on_reuse f = on_reuse := f

let seed_cache entries =
  Mutex.protect cache_mu (fun () ->
      List.iter
        (fun (key, r) ->
          if not (Hashtbl.mem cache key) then begin
            Hashtbl.replace cache key r;
            Hashtbl.replace hydrated key ()
          end)
        entries)

(* One NF campaign, split into guarded stages so a failure names where the
   pipeline died.  The [checkpoint] calls are the fault-injection points:
   no-ops unless `--inject-faults` installed an injector. *)
let campaign name config =
  let ( let* ) = Result.bind in
  let nf_arg = [ ("nf", Obs.Json.Str name) ] in
  let* nf, castan =
    Util.Resilience.guard ~nf:name ~stage:"symbex" (fun () ->
        Obs.Trace.with_span "stage.symbex" ~args:nf_arg @@ fun () ->
        Obs.Log.info "campaign %s: symbex (budget %.1fs, %d instrs)" name
          config.analysis_time config.analysis_instrs;
        Util.Resilience.checkpoint ~nf:name ~stage:"symbex" ();
        let nf = Nf.Registry.find name in
        let analysis_cfg =
          {
            (Analyze.default_config
               ~cache:
                 (if config.use_contention_model then
                    Analyze.Contention_sets
                      (Analyze.discover_contention_sets ())
                  else Analyze.Baseline)
               ())
            with
            time_budget = config.analysis_time;
            instr_budget = config.analysis_instrs;
            seed = config.seed;
            max_states = config.max_states;
            mem_budget_mb = config.mem_budget_mb;
          }
        in
        (nf, Analyze.run ~config:analysis_cfg nf))
  in
  Util.Resilience.guard ~nf:name ~stage:"testbed" (fun () ->
      Obs.Trace.with_span "stage.testbed" ~args:nf_arg @@ fun () ->
      Obs.Log.info "campaign %s: testbed (%d samples)" name config.samples;
      Util.Resilience.checkpoint ~nf:name ~stage:"testbed" ();
      let shape = Testbed.Workload.shape nf.Nf.Nf_def.shape in
      let seed = config.seed in
      let samples = config.samples in
      let castan_flows = Testbed.Workload.flows castan.Analyze.workload in
      let generic =
        [
          ("1 Packet", shape (Testbed.Traffic.one_packet ()));
          ("Zipfian", shape (Testbed.Traffic.zipfian ~scale:config.scale ~seed ()));
          ("UniRand", shape (Testbed.Traffic.unirand ~scale:config.scale ~seed ()));
          ( "UniRand CASTAN",
            shape (Testbed.Traffic.unirand_castan ~seed ~flows:(max castan_flows 1)) );
          ("CASTAN", castan.Analyze.workload);
        ]
      in
      let manual =
        match nf.Nf.Nf_def.manual with
        | Some gen ->
            let rng = Util.Rng.create (0x3a41 + seed) in
            [
              ( "Manual",
                Testbed.Workload.make ~name:"Manual"
                  (gen rng nf.Nf.Nf_def.castan_packets) );
            ]
        | None -> []
      in
      let rows =
        (* One pool task per workload; results come back in input order and
           each measurement is a pure function of (nf, workload, seed). *)
        List.map
          (fun (label, m) -> { label; measurement = m })
          (Testbed.Tg.measure_all ~seed ~samples nf (generic @ manual))
      in
      { nf; nop = Testbed.Tg.nop_baseline ~seed ~samples (); rows; castan })

let try_run ?(config = default_config) name =
  let key = cache_key name config in
  let lookup () =
    Mutex.protect cache_mu (fun () ->
        match Hashtbl.find_opt cache key with
        | Some r ->
            let reused = Hashtbl.mem hydrated key in
            if reused then Hashtbl.remove hydrated key;
            Some (r, reused)
        | None -> None)
  in
  match lookup () with
  | Some (r, reused) ->
      if reused then
        (match !on_reuse with Some f -> f ~key | None -> ());
      r
  | None -> (
      let r = campaign name config in
      let canonical, inserted =
        Mutex.protect cache_mu (fun () ->
            match Hashtbl.find_opt cache key with
            | Some canonical -> (canonical, false)
            | None ->
                Hashtbl.replace cache key r;
                (r, true))
      in
      (* Only the insertion winner journals the cell: a racing loser holds
         an identical value, and one ledger record per key is enough. *)
      if inserted then
        (match !on_fresh with Some f -> f ~key ~nf:name canonical | None -> ());
      canonical)

let run ?(config = default_config) name =
  match try_run ~config name with
  | Ok r -> r
  | Error f -> failwith (Util.Resilience.to_string f)

let find_row r label =
  match List.find_opt (fun row -> row.label = label) r.rows with
  | Some row -> row.measurement
  | None -> raise Not_found

let workload_labels r = List.map (fun row -> row.label) r.rows
