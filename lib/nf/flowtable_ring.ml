open Ir.Dsl

(* Entry layout: 64 bytes, cache-aligned; slot+0 holds the tagged key
   (key | 1<<50, so an occupied slot is never 0), slot+8 the value. *)

let occupied_tag = 1 lsl 50

let make (cfg : Config.t) =
  let ring =
    Ir.Memory.array_spec ~name:"ring" ~elem_width:8
      ~count:(cfg.ring_entries * 8) (* 64B per entry *) ()
  in
  let regions = [ ring ] in
  let base = Nf_def.region_base regions "ring" in
  let mask = cfg.ring_entries - 1 in
  let slot idx = i base +: (idx *: i 64) in
  let functions =
    [
      func Flowtable.lookup_name [ "key"; "h" ]
        [
          "idx" <-- (v "h" &: i mask);
          "tagged" <-- (v "key" |: i occupied_tag);
          while_ (i 1)
            [
              load8 "e" (slot (v "idx"));
              if_ (v "e" =: i 0) [ ret (i 0) ] [];
              if_ (v "e" =: v "tagged")
                [ load8 "val" (slot (v "idx") +: i 8); ret (v "val") ]
                [];
              "idx" <-- ((v "idx" +: i 1) &: i mask);
            ];
          ret (i 0);
        ];
      func Flowtable.insert_name [ "key"; "h"; "value" ]
        [
          "idx" <-- (v "h" &: i mask);
          while_ (i 1)
            [
              load8 "e" (slot (v "idx"));
              if_ (v "e" =: i 0)
                [
                  store8 (slot (v "idx")) (v "key" |: i occupied_tag);
                  store8 (slot (v "idx") +: i 8) (v "value");
                  ret_none;
                ]
                [];
              "idx" <-- ((v "idx" +: i 1) &: i mask);
            ];
          ret_none;
        ];
    ]
  in
  {
    Flowtable.ft_name = "hash-ring";
    regions;
    heap_bytes = 1024 * 1024;
    functions;
    hash = Some Hashrev.Hashes.ring24;
    manual_skew = false;
  }
