(** Stateful L4 load balancer over a pluggable flow table (§5.1).

    VIP-to-DIP translation: connections addressed to the virtual IP are
    pinned to a backend chosen round-robin on first sight; everything else is
    statically routed without touching the flow table (hence the workload
    shaper that rewrites generic traffic onto the VIP, as the paper does). *)

val make : Config.t -> Flowtable.t -> Nf_def.t
