(** Common shape of the per-flow state containers used by NAT and LB
    (§5.1, "Data Structures").

    Each implementation provides two NFIR functions with fixed signatures:

    - [ft_lookup(key, h)] — returns the stored value, or 0 on a miss;
    - [ft_insert(key, h, value)] — stores a new entry ([value] non-zero).

    [key] is the packed flow key (at most 50 bits); [h] is the hash value the
    NF computed via [castan_havoc] before calling — ignored by the tree
    variants, which are comparison-based.  Hashing once in the NF and passing
    the result mirrors real NF code and ensures lookup and insert agree on
    the bucket under analysis. *)

type t = {
  ft_name : string;
  regions : Ir.Memory.spec list;
  heap_bytes : int;
  functions : Ir.Ast.fdef list;  (** defining [ft_lookup] and [ft_insert] *)
  hash : Hashrev.Hashes.t option;
      (** the hash the NF must havoc before calling, if any *)
  manual_skew : bool;
      (** whether a hand-crafted skew workload exists for this structure
          (the unbalanced tree); red-black trees and hash structures have
          none in the paper *)
}

val lookup_name : string
val insert_name : string
