open Ir.Dsl

let make (cfg : Config.t) (ft : Flowtable.t) =
  ignore cfg;
  let port_region =
    Ir.Memory.array_spec ~name:"nat_next_port" ~elem_width:8 ~count:1 ()
  in
  let regions = ft.Flowtable.regions @ [ port_region ] in
  let port_ctr = i (Nf_def.region_base regions "nat_next_port") in
  let name = "nat-" ^ ft.Flowtable.ft_name in
  let process =
    func "process" Parse.params
      ([
         call "csum" Parse.name Parse.call_args;
         Flownf.proto_guard;
         "fwd_key" <-- Flownf.fwd_key_expr;
       ]
      @ Flownf.hash_stmts ft ~dst:"h" ~key:(v "fwd_key")
      @ [
          call "val" Flowtable.lookup_name [ v "fwd_key"; v "h" ];
          if_
            (v "val" =: i 0)
            ([
               (* allocate an external port for the new flow *)
               load8 "p" port_ctr;
               store8 port_ctr (v "p" +: i 1);
               "ext_port" <-- (v "p" &: i 0x3FFF) +: i 1024;
               call_ Flowtable.insert_name
                 [ v "fwd_key"; v "h"; v "ext_port" ];
               "ret_key" <-- Flownf.ret_key_expr;
             ]
            @ Flownf.hash_stmts ft ~dst:"h2" ~key:(v "ret_key")
            @ [
                call_ Flowtable.insert_name
                  [ v "ret_key"; v "h2"; v "ext_port" ];
                "val" <-- v "ext_port";
              ])
            [];
          (* header rewrite: source becomes the NAT's address/port *)
          "out" <-- ((v "val" <<: i 8) |: (v "csum" &: i 0xFF));
          ret (v "out");
        ])
  in
  let manual =
    if ft.Flowtable.manual_skew then
      Some
        (fun _rng n ->
          (* Sorted-key insertion degenerates the unbalanced tree into a
             list: same endpoints, monotonically increasing source port. *)
          List.init n (fun k -> Packet.make ~src_port:(1024 + k) ()))
    else None
  in
  let prog =
    program ~name ~entry:"process" ~regions
      ~heap_bytes:ft.Flowtable.heap_bytes
      ([ Parse.fdef; process ] @ ft.Flowtable.functions)
  in
  {
    Nf_def.name;
    descr = "source NAT over " ^ ft.Flowtable.ft_name;
    program = Ir.Lower.program prog;
    hash_bits = Flownf.hash_bits ft;
    keyspaces = Flownf.keyspaces ft ~with_ret_keys:true;
    shape = Fun.id;
    manual;
    castan_packets =
      (match ft.Flowtable.ft_name with
      | "hash-table" -> 30
      | "hash-ring" -> 40
      | "red-black-tree" -> 35
      | _ -> 50);
  }
