(** LPM via two-stage hierarchical direct lookup — the DPDK scheme (§5.1,
    data structure 3).

    The first 24 destination bits index a 2^24-entry (64MB) first-stage
    array; entries covering a /24 that contains longer prefixes carry a flag
    and the index of a 256-entry second-stage group indexed by the last 8
    bits.  At most two memory accesses per lookup.  Smaller tables make small
    contention-causing workloads much harder to find (Fig. 6) — the paper's
    robustness argument for this structure. *)

val make : Config.t -> Nf_def.t
