(** LPM via single-stage Direct Lookup (§5.1, data structure 2).

    The forwarding table is expanded into equal-length /27 routes stored in
    one flat array of 2^27 8-byte entries — exactly 1GB, the size of one huge
    page.  Lookup is a single array index: minimal, predictable instruction
    count, but a textbook target for adversarial memory access because the
    table dwarfs the 25.6MB L3 (Fig. 4, Fig. 5, Tables 1-3). *)

val make : Config.t -> Nf_def.t
