(** The 11 evaluation network functions of §5, by the paper's names. *)

val all : ?cfg:Config.t -> unit -> Nf_def.t list
(** All 11 NFs (NOP excluded), in the order of Table 4. *)

val nop : ?cfg:Config.t -> unit -> Nf_def.t

val find : ?cfg:Config.t -> string -> Nf_def.t
(** Lookup by name, e.g. ["lpm-btrie"], ["nat-hash-ring"], ["nop"].
    @raise Invalid_argument on unknown names (the message lists them). *)

val names : string list
