open Ir.Dsl

let fwd_key_expr = (v "src_ip" <<: i 16) |: v "src_port"

let ret_key_tag = 1 lsl 49

let ret_key_expr = i ret_key_tag |: (v "dst_ip" <<: i 16) |: v "dst_port"

let hash_stmts (ft : Flowtable.t) ~dst ~key =
  match ft.hash with
  | Some h -> [ havoc dst ~input:key ~hash:h.Hashrev.Hashes.name ]
  | None -> [ dst <-- i 0 ]

let hash_bits (ft : Flowtable.t) name =
  match ft.hash with
  | Some h when h.Hashrev.Hashes.name = name -> h.bits
  | _ -> 16

(* Forward keys: (x << 16) | port with x drawn from an address band and
   ports above 1024 — values that satisfy the NFs' packet constraints (the
   tailored-table idea of §3.5). *)
let fwd_key_of_index idx =
  let x = 0x0A000000 + (idx lsr 12) in
  let port = 1024 + (idx land 0xFFF) in
  (x lsl 16) lor port

let ret_key_of_index idx =
  let dst = 0xC0A80000 + (idx lsr 12) in
  let port = 1024 + (idx land 0xFFF) in
  ret_key_tag lor (dst lsl 16) lor port

let keyspaces (ft : Flowtable.t) ~with_ret_keys =
  match ft.hash with
  | None -> []
  | Some h ->
      (* ~2^|hash value| entries so every value has a few preimages — and
         enough distinct preimages per value to give each packet of a
         colliding workload its own flow.  The 24-bit ring hash needs a
         key space larger than its output space (the paper: "a few millions
         of entries"). *)
      let count = if h.Hashrev.Hashes.bits > 16 then 1 lsl 25 else 1 lsl 22 in
      let ks =
        if with_ret_keys then
          Hashrev.Rainbow.keyspace
            ~name:(h.Hashrev.Hashes.name ^ "-nat")
            ~count
            ~key_of_index:(fun idx ->
              if idx land 1 = 0 then fwd_key_of_index (idx lsr 1)
              else ret_key_of_index (idx lsr 1))
        else
          Hashrev.Rainbow.keyspace
            ~name:(h.Hashrev.Hashes.name ^ "-fwd")
            ~count ~key_of_index:fwd_key_of_index
      in
      [ (h.Hashrev.Hashes.name, ks) ]

let proto_guard =
  if_
    ((v "proto" =: i Packet.tcp) |: (v "proto" =: i Packet.udp))
    []
    [ ret (i 0) ]
