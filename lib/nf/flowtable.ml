type t = {
  ft_name : string;
  regions : Ir.Memory.spec list;
  heap_bytes : int;
  functions : Ir.Ast.fdef list;
  hash : Hashrev.Hashes.t option;
  manual_skew : bool;
}

let lookup_name = "ft_lookup"
let insert_name = "ft_insert"
