open Ir.Dsl

(* Node layout: [key; value; left; right], 8 bytes each. *)

let make (_cfg : Config.t) =
  let root_region =
    Ir.Memory.array_spec ~name:"bst_root" ~elem_width:8 ~count:1 ()
  in
  let regions = [ root_region ] in
  let root = i (Nf_def.region_base regions "bst_root") in
  let functions =
    [
      func Flowtable.lookup_name [ "key"; "h" ]
        [
          load8 "node" root;
          while_
            (v "node" <>: i 0)
            [
              load8 "k" (v "node");
              if_ (v "key" =: v "k")
                [ load8 "val" (v "node" +: i 8); ret (v "val") ]
                [];
              if_ (v "key" <: v "k")
                [ load8 "node" (v "node" +: i 16) ]
                [ load8 "node" (v "node" +: i 24) ];
            ];
          ret (i 0);
        ];
      func Flowtable.insert_name [ "key"; "h"; "value" ]
        [
          alloc "n" 32;
          store8 (v "n") (v "key");
          store8 (v "n" +: i 8) (v "value");
          store8 (v "n" +: i 16) (i 0);
          store8 (v "n" +: i 24) (i 0);
          load8 "cur" root;
          if_ (v "cur" =: i 0) [ store8 root (v "n"); ret_none ] [];
          while_ (i 1)
            [
              load8 "k" (v "cur");
              if_ (v "key" <: v "k")
                [
                  load8 "nxt" (v "cur" +: i 16);
                  if_ (v "nxt" =: i 0)
                    [ store8 (v "cur" +: i 16) (v "n"); ret_none ]
                    [ "cur" <-- v "nxt" ];
                ]
                [
                  load8 "nxt" (v "cur" +: i 24);
                  if_ (v "nxt" =: i 0)
                    [ store8 (v "cur" +: i 24) (v "n"); ret_none ]
                    [ "cur" <-- v "nxt" ];
                ];
            ];
          ret_none;
        ];
    ]
  in
  {
    Flowtable.ft_name = "unbalanced-tree";
    regions;
    heap_bytes = 256 * 1024 * 1024;
    functions;
    hash = None;
    manual_skew = true;
  }
