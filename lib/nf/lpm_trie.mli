(** LPM via a binary (Patricia-style) trie (§5.1, data structure 1).

    Each trie node corresponds to an IP prefix; children refine it by one
    bit.  Lookup walks from the root consuming destination bits and
    remembers the last next-hop seen, so its cost is proportional to the
    longest matching prefix — up to 32 steps.  The adversarial workload is
    algorithmic: packets that match the most specific routes (Fig. 7, 8).

    The Manual workload is the paper's: the 8 packets matching the /32
    routes (plus single-bit variants at the end of the prefix when more
    packets are requested — which is what CASTAN itself discovered). *)

val make : Config.t -> Nf_def.t
