(** Shared scaffolding for the stateful flow-processing NFs (NAT, LB).

    Packs flow keys from header fields, emits the [castan_havoc] hash
    annotation when the underlying table hashes, and provides the tailored
    rainbow-table key spaces that reconciliation needs (§3.5: "populate the
    rainbow table with values that are more likely to fit the
    constraints"). *)

val fwd_key_expr : Ir.Dsl.e
(** [(src_ip << 16) | src_port] — the forward-flow key (the internal
    endpoint). *)

val ret_key_expr : Ir.Dsl.e
(** [(1 << 49) | (dst_ip << 16) | dst_port] — the NAT return-flow key,
    sharing the external endpoint with the forward key (the related-keys
    challenge of §5.4). *)

val ret_key_tag : int

val hash_stmts :
  Flowtable.t -> dst:string -> key:Ir.Dsl.e -> Ir.Ast.stmt list
(** [castan_havoc(key, dst, hash)] when the table hashes, else [dst <- 0]. *)

val hash_bits : Flowtable.t -> string -> int

val keyspaces :
  Flowtable.t -> with_ret_keys:bool -> (string * Hashrev.Rainbow.keyspace) list
(** Key spaces tailored to this NF's reachable keys; forward keys only, or
    alternating forward/return keys for the NAT. *)

val proto_guard : Ir.Ast.stmt
(** Drop (return 0) anything that is not TCP or UDP. *)
