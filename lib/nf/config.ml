type route = { prefix : int; len : int; next_hop : int }

type t = {
  routes32 : route list;
  routes27 : route list;
  vip : int;
  n_backends : int;
  chain_buckets : int;
  ring_entries : int;
}

let mask_of_len len = if len = 0 then 0 else -1 lsl (32 - len) land 0xFFFFFFFF

let route_matches r ip = ip land mask_of_len r.len = r.prefix

(* 8 overlapping families: 10.f.*, each /8 containing a /16 containing a /24
   containing the most specific route. *)
let family ~longest f =
  let b1 = 10 + f in
  let p8 = b1 lsl 24 in
  let p16 = p8 lor ((f + 1) lsl 16) in
  let p24 = p16 lor ((f + 2) lsl 8) in
  let deepest = p24 lor (f + 3) in
  [
    { prefix = p8; len = 8; next_hop = (f * 4) + 1 };
    { prefix = p16; len = 16; next_hop = (f * 4) + 2 };
    { prefix = p24; len = 24; next_hop = (f * 4) + 3 };
    {
      prefix = deepest land mask_of_len longest;
      len = longest;
      next_hop = (f * 4) + 4;
    };
  ]

let make_routes ~longest = List.concat_map (family ~longest) (List.init 8 Fun.id)

let default =
  {
    routes32 = make_routes ~longest:32;
    routes27 = make_routes ~longest:27;
    vip = 0xC0A80101 (* 192.168.1.1 *);
    n_backends = 16;
    chain_buckets = 65_536;
    ring_entries = 1 lsl 24;
  }

let lpm_lookup routes ip =
  List.fold_left
    (fun (best_len, best_nh) r ->
      if route_matches r ip && r.len >= best_len then (r.len, r.next_hop)
      else (best_len, best_nh))
    (-1, 0) routes
  |> snd
