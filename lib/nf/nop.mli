(** The NOP network function: forwards packets untouched.

    Used to isolate the fixed DPDK/driver/testbed overhead from the NF's own
    processing — every latency figure in §5 plots it as the baseline. *)

val make : Config.t -> Nf_def.t
