(** Flow table as a 65,536-entry hash table with separate chaining
    (§5.1, associative array 1).

    Buckets hold list heads; collision resolution walks the chain.  Lookup
    cost is the length of the longest chain an adversary can grow — the hash
    collision attack of §5.4 (Fig. 12, 14). *)

val make : Config.t -> Flowtable.t
