open Ir.Dsl

(* Heap node layout: [key; value; next], 8 bytes each. *)

let make (cfg : Config.t) =
  let buckets =
    Ir.Memory.array_spec ~name:"ht_buckets" ~elem_width:8
      ~count:cfg.chain_buckets ()
  in
  let regions = [ buckets ] in
  let base = Nf_def.region_base regions "ht_buckets" in
  let bucket_addr = i base +: ((v "h" &: i (cfg.chain_buckets - 1)) *: i 8) in
  let functions =
    [
      func Flowtable.lookup_name [ "key"; "h" ]
        [
          load8 "node" bucket_addr;
          while_
            (v "node" <>: i 0)
            [
              load8 "k" (v "node");
              if_ (v "k" =: v "key")
                [ load8 "val" (v "node" +: i 8); ret (v "val") ]
                [];
              load8 "node" (v "node" +: i 16);
            ];
          ret (i 0);
        ];
      func Flowtable.insert_name [ "key"; "h"; "value" ]
        [
          load8 "head" bucket_addr;
          alloc "n" 24;
          store8 (v "n") (v "key");
          store8 (v "n" +: i 8) (v "value");
          store8 (v "n" +: i 16) (v "head");
          store8 bucket_addr (v "n");
          ret_none;
        ];
    ]
  in
  {
    Flowtable.ft_name = "hash-table";
    regions;
    heap_bytes = 256 * 1024 * 1024;
    functions;
    hash = Some Hashrev.Hashes.flow16;
    manual_skew = false;
  }
