(** Flow table as a 16.7M-entry open-addressing hash ring (§5.1,
    associative array 2).

    Entries live in a circular array inside a single 1GB page, one cache
    line per entry; a full hash collision probes forward to the next free
    slot.  The sheer size of the array makes the dominant adversarial
    behaviour cache contention rather than probe chains — which is exactly
    what CASTAN finds (Fig. 13, 15). *)

val make : Config.t -> Flowtable.t
