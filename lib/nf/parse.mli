(** Shared packet-ingest prologue.

    Real NFs spend a fixed budget of instructions per packet on header
    validation and checksum adjustment before touching their data
    structures.  This function models that cost: branch-free arithmetic over
    the header fields (so it adds instructions, not execution paths),
    returning a folded "checksum" the NFs mix into their result to keep the
    computation live. *)

val fdef : Ir.Ast.fdef
(** [parse_headers(src_ip, dst_ip, proto, src_port, dst_port)]. *)

val name : string

(** The five packet-field parameter names, in order. *)
val params : string list
val call_args : Ir.Dsl.e list
(** The standard argument list (the entry function's field parameters). *)
