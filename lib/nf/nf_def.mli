(** The packaged form of an evaluation network function.

    Everything CASTAN and the testbed need: the lowered NFIR program, the
    widths of its havoced hashes, tailored rainbow-table key spaces for
    reconciliation, a shaper that adapts generic workloads to the NF (the LB
    only exercises its data structure for VIP-addressed traffic), and — where
    the paper's authors crafted one — the Manual adversarial workload. *)

type t = {
  name : string;
  descr : string;
  program : Ir.Cfg.t;
  hash_bits : string -> int;
  keyspaces : (string * Hashrev.Rainbow.keyspace) list;
      (** per hash name; empty when the NF does not hash *)
  shape : Packet.t -> Packet.t;
      (** force generic traffic onto the interesting path *)
  manual : (Util.Rng.t -> int -> Packet.t list) option;
      (** hand-crafted adversarial workload of the requested size *)
  castan_packets : int;  (** workload size used in the paper (Table 4) *)
}

val fresh_memory : t -> int Ir.Memory.t
(** A concrete memory for running the NF on the testbed. *)

val fresh_symbolic_memory : t -> Ir.Expr.sexpr Ir.Memory.t
(** A symbolic memory (constant-injected) for analysis. *)

val region_base : Ir.Memory.spec list -> string -> int
(** Base address a region will get; for embedding in program text. *)
