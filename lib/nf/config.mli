(** Table-population configuration shared by the evaluation NFs (§5.1).

    The LPM forwarding table holds 8 routes each of /8, /16, /24 and — where
    the data structure supports it — /32 (or /27 for single-stage direct
    lookup), chosen to overlap maximally: each prefix contains a more
    specific one. *)

type route = { prefix : int; len : int; next_hop : int }

type t = {
  routes32 : route list;  (** longest prefix 32: trie and DPDK LPM *)
  routes27 : route list;  (** longest prefix 27: 1-stage direct lookup *)
  vip : int;  (** the load balancer's virtual IP *)
  n_backends : int;
  chain_buckets : int;  (** 65,536 *)
  ring_entries : int;  (** 2^24 ≈ 16.7M *)
}

val default : t

val lpm_lookup : route list -> int -> int
(** Reference longest-prefix-match over a route list; 0 when nothing
    matches.  Used to initialize tables and as the test oracle. *)

val route_matches : route -> int -> bool
