open Ir.Dsl

let name = "parse_headers"

let params = [ "src_ip"; "dst_ip"; "proto"; "src_port"; "dst_port" ]

(* IPv4-checksum-flavoured 16-bit folding plus a TTL rewrite: about 20
   retired instructions of per-packet header work. *)
let fdef =
  func name params
    [
      "s" <-- (v "src_ip" >>: i 16) +: (v "src_ip" &: i 0xFFFF);
      "s" <-- v "s" +: (v "dst_ip" >>: i 16) +: (v "dst_ip" &: i 0xFFFF);
      "s" <-- v "s" +: (v "proto" <<: i 8) +: v "src_port" +: v "dst_port";
      (* end-around carry folds *)
      "s" <-- (v "s" &: i 0xFFFF) +: (v "s" >>: i 16);
      "s" <-- (v "s" &: i 0xFFFF) +: (v "s" >>: i 16);
      (* TTL decrement adjusts the checksum by a constant *)
      "s" <-- ((v "s" +: i 0x0100) &: i 0xFFFF);
      ret (v "s");
    ]

let call_args = List.map v params
