type t = {
  src_ip : int;
  dst_ip : int;
  proto : int;
  src_port : int;
  dst_port : int;
}

let tcp = 6
let udp = 17

let make ?(src_ip = 0x0A000001) ?(dst_ip = 0xC0A80101) ?(proto = udp)
    ?(src_port = 1000) ?(dst_port = 80) () =
  { src_ip; dst_ip; proto; src_port; dst_port }

let field p = function
  | Ir.Expr.Src_ip -> p.src_ip
  | Ir.Expr.Dst_ip -> p.dst_ip
  | Ir.Expr.Proto -> p.proto
  | Ir.Expr.Src_port -> p.src_port
  | Ir.Expr.Dst_port -> p.dst_port

let with_field p f v =
  match f with
  | Ir.Expr.Src_ip -> { p with src_ip = v }
  | Ir.Expr.Dst_ip -> { p with dst_ip = v }
  | Ir.Expr.Proto -> { p with proto = v }
  | Ir.Expr.Src_port -> { p with src_port = v }
  | Ir.Expr.Dst_port -> { p with dst_port = v }

let field_of_name name =
  match
    List.find_opt (fun f -> Ir.Expr.field_name f = name) Ir.Expr.all_fields
  with
  | Some f -> f
  | None -> invalid_arg ("Packet.args_for: non-field parameter " ^ name)

let args_for (f : Ir.Cfg.func) p =
  List.map (fun param -> field p (field_of_name param)) f.params

(* Resolve the parameter-name -> field mapping once; the replay hot path
   then fills a caller-owned buffer with no per-packet name lookups or list
   allocation. *)
let fields_for (f : Ir.Cfg.func) =
  Array.of_list (List.map field_of_name f.params)

let fill_args fields p argv =
  Array.iteri (fun i fld -> argv.(i) <- field p fld) fields

let of_model m ~n =
  List.init n (fun pkt ->
      let get f = Solver.Solve.Model.get m (Ir.Expr.Pkt { pkt; field = f }) in
      let p =
        {
          src_ip = get Src_ip;
          dst_ip = get Dst_ip;
          proto = get Proto;
          src_port = get Src_port;
          dst_port = get Dst_port;
        }
      in
      (* A path that never inspected the protocol leaves it 0; emit a real
         protocol so the frame is well-formed on the wire. *)
      if p.proto = 0 then { p with proto = udp } else p)

(* A well-mixed 61-bit digest of the 5-tuple; used only to count distinct
   flows in workloads (collisions are birthday-negligible at that scale). *)
let flow_key p =
  let m = (1 lsl 61) - 1 in
  let mix acc v =
    let x = (acc lxor v) * 0x9E3779B97F4A7C1 land m in
    x lxor (x lsr 29)
  in
  List.fold_left mix 0x1234567
    [ p.src_ip; p.dst_ip; p.proto; p.src_port; p.dst_port ]

let ip_to_string ip =
  Printf.sprintf "%d.%d.%d.%d" ((ip lsr 24) land 0xFF) ((ip lsr 16) land 0xFF)
    ((ip lsr 8) land 0xFF) (ip land 0xFF)

let pp ppf p =
  Format.fprintf ppf "%s:%d > %s:%d %s" (ip_to_string p.src_ip) p.src_port
    (ip_to_string p.dst_ip) p.dst_port
    (if p.proto = tcp then "tcp" else if p.proto = udp then "udp"
     else string_of_int p.proto)

let to_string p = Format.asprintf "%a" pp p
let compare = compare
let equal a b = a = b
