open Ir.Dsl

let make (_cfg : Config.t) =
  let prog =
    program ~name:"nop" ~entry:"process" ~regions:[]
      [ func "process" Parse.params [ ret (i 1) ] ]
  in
  {
    Nf_def.name = "nop";
    descr = "forwards packets without any processing";
    program = Ir.Lower.program prog;
    hash_bits = (fun _ -> 16);
    keyspaces = [];
    shape = Fun.id;
    manual = None;
    castan_packets = 1;
  }
