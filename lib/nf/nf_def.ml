type t = {
  name : string;
  descr : string;
  program : Ir.Cfg.t;
  hash_bits : string -> int;
  keyspaces : (string * Hashrev.Rainbow.keyspace) list;
  shape : Packet.t -> Packet.t;
  manual : (Util.Rng.t -> int -> Packet.t list) option;
  castan_packets : int;
}

let fresh_memory t =
  Ir.Memory.create ~regions:t.program.Ir.Cfg.regions
    ~heap_bytes:t.program.Ir.Cfg.heap_bytes ~inject:Fun.id

let fresh_symbolic_memory t =
  Ir.Memory.create ~regions:t.program.Ir.Cfg.regions
    ~heap_bytes:t.program.Ir.Cfg.heap_bytes
    ~inject:(fun v -> Ir.Expr.Const v)

let region_base regions name =
  match List.assoc_opt name (Ir.Memory.layout regions) with
  | Some r -> r.Ir.Memory.base
  | None -> invalid_arg ("Nf_def.region_base: unknown region " ^ name)
