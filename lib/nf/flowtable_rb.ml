open Ir.Dsl

(* Node layout (8-byte fields): key +0, value +8, left +16, right +24,
   parent +32, color +40 (1 = red, 0 = black).  The null pointer 0 acts as
   the black sentinel; its color is never loaded — guards check for 0
   first. *)

let o_key = 0
let o_val = 8
let o_left = 16
let o_right = 24
let o_parent = 32
let o_color = 40
let red = 1
let black = 0

let fld node off : Ir.Dsl.e = v node +: i off

(* left_rotate(x): pivot x's right child y above x.  right_rotate is the
   mirror image; [rotate ~left] generates either. *)
let rotate ~left name root =
  let down = if left then o_right else o_left in
  let up = if left then o_left else o_right in
  func name [ "x" ]
    [
      load8 "y" (fld "x" down);
      (* x.down = y.up *)
      load8 "b" (fld "y" up);
      store8 (fld "x" down) (v "b");
      if_ (v "b" <>: i 0) [ store8 (fld "b" o_parent) (v "x") ] [];
      (* y replaces x under x's parent *)
      load8 "xp" (fld "x" o_parent);
      store8 (fld "y" o_parent) (v "xp");
      if_ (v "xp" =: i 0)
        [ store8 root (v "y") ]
        [
          load8 "pl" (fld "xp" o_left);
          if_ (v "x" =: v "pl")
            [ store8 (fld "xp" o_left) (v "y") ]
            [ store8 (fld "xp" o_right) (v "y") ];
        ];
      (* x becomes y's [up] child *)
      store8 (fld "y" up) (v "x");
      store8 (fld "x" o_parent) (v "y");
      ret_none;
    ]

(* One side of the fixup loop body; mirrored by [side]. *)
let fixup_case ~left_side =
  let gp_other = if left_side then o_right else o_left in
  let rot_inner = if left_side then "rb_rotate_left" else "rb_rotate_right" in
  let rot_outer = if left_side then "rb_rotate_right" else "rb_rotate_left" in
  [
    (* uncle *)
    load8 "u" (fld "gp" gp_other);
    "ucolor" <-- i black;
    if_ (v "u" <>: i 0) [ load8 "ucolor" (fld "u" o_color) ] [];
    if_
      (v "ucolor" =: i red)
      [
        (* case 1: recolor and ascend *)
        store8 (fld "p" o_color) (i black);
        store8 (fld "u" o_color) (i black);
        store8 (fld "gp" o_color) (i red);
        "z" <-- v "gp";
      ]
      [
        (* case 2: inner child — rotate z's parent *)
        load8 "same" (fld "p" gp_other);
        if_ (v "z" =: v "same")
          [ "z" <-- v "p"; call_ rot_inner [ v "z" ] ]
          [];
        (* case 3: recolor and rotate grandparent *)
        load8 "p2" (fld "z" o_parent);
        store8 (fld "p2" o_color) (i black);
        load8 "gp2" (fld "p2" o_parent);
        if_ (v "gp2" <>: i 0)
          [ store8 (fld "gp2" o_color) (i red); call_ rot_outer [ v "gp2" ] ]
          [];
      ];
  ]

let make (_cfg : Config.t) =
  let root_region =
    Ir.Memory.array_spec ~name:"rb_root" ~elem_width:8 ~count:1 ()
  in
  let regions = [ root_region ] in
  let root = i (Nf_def.region_base regions "rb_root") in
  let fixup =
    func "rb_fixup" [ "z" ]
      [
        while_ (i 1)
          [
            load8 "p" (fld "z" o_parent);
            if_ (v "p" =: i 0) [ break_ ] [];
            load8 "pcolor" (fld "p" o_color);
            if_ (v "pcolor" =: i black) [ break_ ] [];
            (* parent is red, hence not the root: grandparent exists *)
            load8 "gp" (fld "p" o_parent);
            load8 "gl" (fld "gp" o_left);
            if_ (v "p" =: v "gl") (fixup_case ~left_side:true)
              (fixup_case ~left_side:false);
          ];
        (* root is always black *)
        load8 "r" root;
        if_ (v "r" <>: i 0) [ store8 (fld "r" o_color) (i black) ] [];
        ret_none;
      ]
  in
  let functions =
    [
      rotate ~left:true "rb_rotate_left" root;
      rotate ~left:false "rb_rotate_right" root;
      fixup;
      func Flowtable.lookup_name [ "key"; "h" ]
        [
          load8 "node" root;
          while_
            (v "node" <>: i 0)
            [
              load8 "k" (v "node");
              if_ (v "key" =: v "k")
                [ load8 "val" (v "node" +: i o_val); ret (v "val") ]
                [];
              if_ (v "key" <: v "k")
                [ load8 "node" (v "node" +: i o_left) ]
                [ load8 "node" (v "node" +: i o_right) ];
            ];
          ret (i 0);
        ];
      func Flowtable.insert_name [ "key"; "h"; "value" ]
        [
          alloc "z" 48;
          store8 (fld "z" o_key) (v "key");
          store8 (fld "z" o_val) (v "value");
          store8 (fld "z" o_left) (i 0);
          store8 (fld "z" o_right) (i 0);
          store8 (fld "z" o_parent) (i 0);
          store8 (fld "z" o_color) (i red);
          load8 "x" root;
          if_ (v "x" =: i 0)
            [ store8 (fld "z" o_color) (i black); store8 root (v "z"); ret_none ]
            [];
          (* BST descent tracking the parent *)
          "y" <-- i 0;
          while_
            (v "x" <>: i 0)
            [
              "y" <-- v "x";
              load8 "k" (v "x");
              if_ (v "key" <: v "k")
                [ load8 "x" (v "x" +: i o_left) ]
                [ load8 "x" (v "x" +: i o_right) ];
            ];
          store8 (fld "z" o_parent) (v "y");
          load8 "ky" (v "y");
          if_ (v "key" <: v "ky")
            [ store8 (fld "y" o_left) (v "z") ]
            [ store8 (fld "y" o_right) (v "z") ];
          call_ "rb_fixup" [ v "z" ];
          ret_none;
        ];
    ]
  in
  {
    Flowtable.ft_name = "red-black-tree";
    regions;
    heap_bytes = 256 * 1024 * 1024;
    functions;
    hash = None;
    manual_skew = false;
  }
