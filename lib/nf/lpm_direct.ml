open Ir.Dsl

let make (cfg : Config.t) =
  let routes = cfg.routes27 in
  let table =
    Ir.Memory.array_spec ~name:"dl_table" ~elem_width:8 ~count:(1 lsl 27)
      ~init:(fun idx -> Config.lpm_lookup routes (idx lsl 5))
      ()
  in
  let regions = [ table ] in
  let base = Nf_def.region_base regions "dl_table" in
  let prog =
    program ~name:"lpm-1stage-dl" ~entry:"process" ~regions
      [
        Parse.fdef;
        func "process" Parse.params
          [
            call "csum" Parse.name Parse.call_args;
            "idx" <-- (v "dst_ip" >>: i 5);
            load8 "nh" (i base +: (v "idx" *: i 8));
            ret (v "nh");
          ];
      ]
  in
  {
    Nf_def.name = "lpm-1stage-dl";
    descr = "LPM, one-stage direct lookup (1GB flat /27 table)";
    program = Ir.Lower.program prog;
    hash_bits = (fun _ -> 16);
    keyspaces = [];
    shape = Fun.id;
    manual = None;
    castan_packets = 40;
  }
