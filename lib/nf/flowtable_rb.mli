(** Flow table as a red-black tree — the [std::map] stand-in (§5.1,
    associative array 4).

    A full CLRS insertion with recoloring and rotations, written in NFIR.
    Rebalancing bounds lookups at O(log n) regardless of insertion order,
    which is why CASTAN fails to find a small adversarial workload for it:
    every time the searcher grows a deep path, the fixup flattens it — the
    local-maxima behaviour discussed in §5.3 (Fig. 11). *)

val make : Config.t -> Flowtable.t
