(** Source NAT over a pluggable flow table (§5.1).

    Maintains per-flow state keyed two ways — by the internal flow (to
    rewrite outgoing packets) and by the external endpoint (to match
    returning traffic) — so every new flow hashes and stores {e two} entries,
    which is what makes NAT reconciliation so much harder than LB's (§5.4).
    New flows allocate an external port from a counter. *)

val make : Config.t -> Flowtable.t -> Nf_def.t
