open Ir.Dsl

let flag = 1 lsl 31

let make (cfg : Config.t) =
  let routes = cfg.routes32 in
  (* /24 prefixes that contain routes longer than 24 bits get a second-stage
     group each. *)
  let deep_prefixes =
    List.filter_map
      (fun (r : Config.route) ->
        if r.len > 24 then Some (r.prefix lsr 8) else None)
      routes
    |> List.sort_uniq compare
  in
  let group_of_p24 = Hashtbl.create 16 in
  List.iteri (fun g p24 -> Hashtbl.replace group_of_p24 p24 g) deep_prefixes;
  let p24_of_group = Array.of_list deep_prefixes in
  let n_groups = max 1 (Array.length p24_of_group) in
  (* Routes of length <= 24, for first-stage defaults. *)
  let shallow = List.filter (fun (r : Config.route) -> r.len <= 24) routes in
  let stage1 =
    Ir.Memory.array_spec ~name:"lpm24" ~elem_width:4 ~count:(1 lsl 24)
      ~init:(fun idx ->
        match Hashtbl.find_opt group_of_p24 idx with
        | Some g -> flag lor g
        | None -> Config.lpm_lookup shallow (idx lsl 8))
      ()
  in
  let stage2 =
    Ir.Memory.array_spec ~name:"lpm8" ~elem_width:4 ~count:(n_groups * 256)
      ~init:(fun idx ->
        let g = idx / 256 and off = idx land 0xFF in
        Config.lpm_lookup routes ((p24_of_group.(g) lsl 8) lor off))
      ()
  in
  let regions = [ stage1; stage2 ] in
  let b1 = Nf_def.region_base regions "lpm24" in
  let b2 = Nf_def.region_base regions "lpm8" in
  let prog =
    program ~name:"lpm-2stage-dl" ~entry:"process" ~regions
      [
        Parse.fdef;
        func "process" Parse.params
          [
            call "csum" Parse.name Parse.call_args;
            "idx" <-- (v "dst_ip" >>: i 8);
            load4 "e" (i b1 +: (v "idx" *: i 4));
            if_
              ((v "e" >>: i 31) &: i 1)
              [
                "g" <-- (v "e" &: i 0xFFFF);
                load4 "nh"
                  (i b2
                  +: (((v "g" *: i 256) +: (v "dst_ip" &: i 0xFF)) *: i 4));
                ret (v "nh");
              ]
              [ ret (v "e") ];
          ];
      ]
  in
  {
    Nf_def.name = "lpm-2stage-dl";
    descr = "LPM, two-stage direct lookup (DPDK-style 64MB + groups)";
    program = Ir.Lower.program prog;
    hash_bits = (fun _ -> 16);
    keyspaces = [];
    shape = Fun.id;
    manual = None;
    castan_packets = 40;
  }
