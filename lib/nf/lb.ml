open Ir.Dsl

let make (cfg : Config.t) (ft : Flowtable.t) =
  let rr_region =
    Ir.Memory.array_spec ~name:"lb_rr" ~elem_width:8 ~count:1 ()
  in
  let regions = ft.Flowtable.regions @ [ rr_region ] in
  let rr = i (Nf_def.region_base regions "lb_rr") in
  let name = "lb-" ^ ft.Flowtable.ft_name in
  let process =
    func "process" Parse.params
      ([
         call "csum" Parse.name Parse.call_args;
         (* non-VIP traffic is statically routed: no data-structure access *)
         if_ (v "dst_ip" <>: i cfg.vip) [ ret (i 1) ] [];
         Flownf.proto_guard;
         "key" <-- ((v "src_ip" <<: i 16) |: v "src_port");
       ]
      @ Flownf.hash_stmts ft ~dst:"h" ~key:(v "key")
      @ [
          call "backend" Flowtable.lookup_name [ v "key"; v "h" ];
          if_
            (v "backend" =: i 0)
            [
              load8 "c" rr;
              store8 rr (v "c" +: i 1);
              "backend" <-- (v "c" %: i cfg.n_backends) +: i 1;
              call_ Flowtable.insert_name [ v "key"; v "h"; v "backend" ];
            ]
            [];
          ret (v "backend");
        ])
  in
  let manual =
    if ft.Flowtable.manual_skew then
      Some
        (fun _rng n ->
          List.init n (fun k ->
              Packet.make ~dst_ip:cfg.vip ~src_port:(1024 + k) ()))
    else None
  in
  let prog =
    program ~name ~entry:"process" ~regions
      ~heap_bytes:ft.Flowtable.heap_bytes
      ([ Parse.fdef; process ] @ ft.Flowtable.functions)
  in
  {
    Nf_def.name;
    descr = "L4 load balancer over " ^ ft.Flowtable.ft_name;
    program = Ir.Lower.program prog;
    hash_bits = Flownf.hash_bits ft;
    keyspaces = Flownf.keyspaces ft ~with_ret_keys:false;
    shape = (fun p -> { p with Packet.dst_ip = cfg.vip });
    manual;
    castan_packets =
      (match ft.Flowtable.ft_name with "hash-ring" -> 40 | _ -> 30);
  }
