(** Flow table as an unbalanced binary search tree (§5.1, associative
    array 3).

    No rebalancing: inserting keys in sorted order degenerates the tree into
    a linked list, so lookup cost is attacker-controlled up to the number of
    flows — the classic algorithmic-complexity attack (Fig. 9, 10).  This is
    the structure for which the paper hand-crafts a Manual skew workload. *)

val make : Config.t -> Flowtable.t
