let builders : (string * (Config.t -> Nf_def.t)) list =
  [
    ("lb-hash-table", fun c -> Lb.make c (Flowtable_chain.make c));
    ("lb-hash-ring", fun c -> Lb.make c (Flowtable_ring.make c));
    ("lb-red-black-tree", fun c -> Lb.make c (Flowtable_rb.make c));
    ("lb-unbalanced-tree", fun c -> Lb.make c (Flowtable_bst.make c));
    ("lpm-btrie", fun c -> Lpm_trie.make c);
    ("lpm-1stage-dl", fun c -> Lpm_direct.make c);
    ("lpm-2stage-dl", fun c -> Lpm_dpdk.make c);
    ("nat-hash-table", fun c -> Nat.make c (Flowtable_chain.make c));
    ("nat-hash-ring", fun c -> Nat.make c (Flowtable_ring.make c));
    ("nat-red-black-tree", fun c -> Nat.make c (Flowtable_rb.make c));
    ("nat-unbalanced-tree", fun c -> Nat.make c (Flowtable_bst.make c));
  ]

let names = List.map fst builders @ [ "nop" ]

let all ?(cfg = Config.default) () = List.map (fun (_, b) -> b cfg) builders

let nop ?(cfg = Config.default) () = Nop.make cfg

let find ?(cfg = Config.default) name =
  if name = "nop" then nop ~cfg ()
  else
    match List.assoc_opt name builders with
    | Some b -> b cfg
    | None ->
        invalid_arg
          (Printf.sprintf "Registry.find: unknown NF %s (known: %s)" name
             (String.concat ", " names))
