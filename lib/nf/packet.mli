(** Concrete packets: the 5-tuple the evaluation NFs process.

    The testbed serializes these to real PCAP frames; the analysis extracts
    them from solver models of a path constraint. *)

type t = {
  src_ip : int;
  dst_ip : int;
  proto : int;  (** 6 = TCP, 17 = UDP *)
  src_port : int;
  dst_port : int;
}

val tcp : int
val udp : int

val make :
  ?src_ip:int -> ?dst_ip:int -> ?proto:int -> ?src_port:int -> ?dst_port:int ->
  unit -> t
(** Defaults: 10.0.0.1 -> 192.168.1.1, UDP 1000 -> 80. *)

val field : t -> Ir.Expr.field -> int
val with_field : t -> Ir.Expr.field -> int -> t

val args_for : Ir.Cfg.func -> t -> int list
(** Arguments for an NF entry function, in its parameter order (parameters
    are named after packet fields). *)

val fields_for : Ir.Cfg.func -> Ir.Expr.field array
(** The packet fields behind an entry function's parameters, resolved once
    (each parameter is named after a field). *)

val fill_args : Ir.Expr.field array -> t -> int array -> unit
(** [fill_args fields p argv] writes [field p fields.(i)] into [argv.(i)] —
    the allocation-free counterpart of {!args_for} for the replay path. *)

val of_model : Solver.Solve.Model.t -> n:int -> t list
(** Extracts the [n] packets of a satisfying model; unconstrained fields
    default to 0 and are then normalized to benign values (proto becomes UDP
    when the model left it 0). *)

val flow_key : t -> int
(** Canonical 5-tuple flow identity (for flow counting in workloads). *)

val ip_to_string : int -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val compare : t -> t -> int
val equal : t -> t -> bool
