open Ir.Dsl

(* Concrete trie construction at NF-build time (the NF's control plane). *)
type tnode = {
  id : int;
  mutable nh : int;
  mutable left : tnode option;
  mutable right : tnode option;
}

(* Atomic: NF builds can run concurrently on pool workers.  Ids are only
   used as Hashtbl keys inside [flatten] (addresses come from preorder
   position), so they need to be unique, not sequential. *)
let node_counter = Atomic.make 0

let new_node () =
  { id = Atomic.fetch_and_add node_counter 1; nh = 0; left = None; right = None }

let insert root (r : Config.route) =
  let rec go node depth =
    if depth = r.len then node.nh <- r.next_hop
    else
      let bit = (r.prefix lsr (31 - depth)) land 1 in
      let child =
        match if bit = 0 then node.left else node.right with
        | Some c -> c
        | None ->
            let c = new_node () in
            if bit = 0 then node.left <- Some c else node.right <- Some c;
            c
      in
      go child (depth + 1)
  in
  go root 0

(* Flatten to arrays of (nh, left addr, right addr) triples, 24 bytes per
   node, root first. *)
let flatten root ~base =
  let rec collect node acc =
    let acc = node :: acc in
    let acc = match node.left with Some c -> collect c acc | None -> acc in
    match node.right with Some c -> collect c acc | None -> acc
  in
  let ordered = List.rev (collect root []) in
  let index = Hashtbl.create 64 in
  List.iteri (fun i n -> Hashtbl.replace index n.id i) ordered;
  let addr_of = function
    | None -> 0
    | Some c -> base + (Hashtbl.find index c.id * 24)
  in
  let slots = Array.make (List.length ordered * 3) 0 in
  List.iteri
    (fun i n ->
      slots.((i * 3) + 0) <- n.nh;
      slots.((i * 3) + 1) <- addr_of n.left;
      slots.((i * 3) + 2) <- addr_of n.right)
    ordered;
  slots

let make (cfg : Config.t) =
  let root = new_node () in
  List.iter (insert root) cfg.routes32;
  (* The region's base is determined by layout; since this is the only/first
     region it equals the layout origin regardless of node count. *)
  let probe_region =
    Ir.Memory.array_spec ~name:"trie" ~elem_width:8 ~count:3 ()
  in
  let base = Nf_def.region_base [ probe_region ] "trie" in
  let slots = flatten root ~base in
  let region =
    Ir.Memory.array_spec ~name:"trie" ~elem_width:8 ~count:(Array.length slots)
      ~init:(fun idx -> slots.(idx))
      ()
  in
  let regions = [ region ] in
  let prog =
    program ~name:"lpm-btrie" ~entry:"process" ~regions
      [
        Parse.fdef;
        func "process" Parse.params
          [
            call "csum" Parse.name Parse.call_args;
            "node" <-- i base;
            "best" <-- i 0;
            "depth" <-- i 31;
            while_
              (v "node" <>: i 0)
              [
                load8 "nh" (v "node");
                when_ (v "nh" <>: i 0) [ "best" <-- v "nh" ];
                "bit" <-- ((v "dst_ip" >>: v "depth") &: i 1);
                load8 "next" (v "node" +: i 8 +: (v "bit" *: i 8));
                "node" <-- v "next";
                "depth" <-- v "depth" -: i 1;
              ];
            ret (v "best");
          ];
      ]
  in
  (* Manual workload: the /32 routes, then end-bit variants. *)
  let deepest =
    List.filter_map
      (fun (r : Config.route) -> if r.len = 32 then Some r.prefix else None)
      cfg.routes32
  in
  let manual _rng n =
    List.init n (fun k ->
        let m = List.length deepest in
        let ip = List.nth deepest (k mod m) in
        let variant = k / m in
        (* Flip low bits: stays on (almost) the longest trie path. *)
        Packet.make ~dst_ip:(ip lxor variant) ~src_port:(5000 + k) ())
  in
  {
    Nf_def.name = "lpm-btrie";
    descr = "LPM, binary (Patricia) trie over 32-bit prefixes";
    program = Ir.Lower.program prog;
    hash_bits = (fun _ -> 16);
    keyspaces = [];
    shape = Fun.id;
    manual = Some manual;
    castan_packets = 30;
  }
