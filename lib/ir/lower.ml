(* Lowering uses a mutable buffer of instructions with back-patching of
   branch targets: [emit] appends and returns the pc; forward targets are
   patched once known. *)

type ctx = {
  buf : Cfg.instr option array ref;
  mutable len : int;
  mutable break_patches : int list;  (* pcs of Jumps awaiting the loop exit *)
}

let emit ctx instr =
  let cap = Array.length !(ctx.buf) in
  if ctx.len = cap then begin
    let bigger = Array.make (cap * 2) None in
    Array.blit !(ctx.buf) 0 bigger 0 cap;
    ctx.buf := bigger
  end;
  !(ctx.buf).(ctx.len) <- Some instr;
  ctx.len <- ctx.len + 1;
  ctx.len - 1

let patch ctx pc instr = !(ctx.buf).(pc) <- Some instr

let rec lower_stmt ctx (s : Ast.stmt) =
  match s with
  | Ast.Assign (x, e) -> ignore (emit ctx (Cfg.Assign (x, e)))
  | Ast.Load (dst, addr, width) ->
      ignore (emit ctx (Cfg.Load { dst; addr; width }))
  | Ast.Store (addr, value, width) ->
      ignore (emit ctx (Cfg.Store { addr; value; width }))
  | Ast.Alloc (dst, bytes) -> ignore (emit ctx (Cfg.Alloc { dst; bytes }))
  | Ast.Call (dst, func, args) ->
      ignore (emit ctx (Cfg.Call { dst; func; args }))
  | Ast.Return e -> ignore (emit ctx (Cfg.Return e))
  | Ast.Havoc (dst, input, hash) ->
      ignore (emit ctx (Cfg.Havoc { dst; input; hash }))
  | Ast.Break ->
      let pc = emit ctx (Cfg.Jump (-1)) in
      ctx.break_patches <- pc :: ctx.break_patches
  | Ast.If (cond, then_b, else_b) ->
      let br = emit ctx (Cfg.Jump (-1)) (* placeholder for the branch *) in
      List.iter (lower_stmt ctx) then_b;
      if else_b = [] then begin
        let exit_pc = ctx.len in
        patch ctx br
          (Cfg.Branch
             { cond; if_true = br + 1; if_false = exit_pc; loop_head = false })
      end
      else begin
        let skip = emit ctx (Cfg.Jump (-1)) in
        let else_start = ctx.len in
        List.iter (lower_stmt ctx) else_b;
        let exit_pc = ctx.len in
        patch ctx br
          (Cfg.Branch
             { cond; if_true = br + 1; if_false = else_start; loop_head = false });
        patch ctx skip (Cfg.Jump exit_pc)
      end
  | Ast.While (cond, body) ->
      let saved_breaks = ctx.break_patches in
      ctx.break_patches <- [];
      let head = emit ctx (Cfg.Jump (-1)) in
      List.iter (lower_stmt ctx) body;
      ignore (emit ctx (Cfg.Jump head));
      let exit_pc = ctx.len in
      patch ctx head
        (Cfg.Branch
           { cond; if_true = head + 1; if_false = exit_pc; loop_head = true });
      List.iter (fun pc -> patch ctx pc (Cfg.Jump exit_pc)) ctx.break_patches;
      ctx.break_patches <- saved_breaks

let func (f : Ast.fdef) : Cfg.func =
  let ctx = { buf = ref (Array.make 64 None); len = 0; break_patches = [] } in
  List.iter (lower_stmt ctx) f.body;
  (* Functions may fall off the end; make the return explicit. *)
  (match if ctx.len = 0 then None else !(ctx.buf).(ctx.len - 1) with
  | Some (Cfg.Return _) -> ()
  | _ -> ignore (emit ctx (Cfg.Return None)));
  let body =
    Array.init ctx.len (fun i ->
        match !(ctx.buf).(i) with
        | Some instr -> instr
        | None -> assert false)
  in
  { Cfg.fname = f.name; params = f.params; body }

let program (p : Ast.program) : Cfg.t =
  let funcs = Hashtbl.create 16 in
  List.iter
    (fun (fdef : Ast.fdef) ->
      if Hashtbl.mem funcs fdef.Ast.name then
        invalid_arg ("Lower.program: duplicate function " ^ fdef.Ast.name);
      Hashtbl.replace funcs fdef.Ast.name (func fdef))
    p.functions;
  if not (Hashtbl.mem funcs p.entry) then
    invalid_arg ("Lower.program: missing entry function " ^ p.entry);
  {
    Cfg.name = p.name;
    funcs;
    entry = p.entry;
    regions = p.regions;
    heap_bytes = p.heap_bytes;
  }
