(* Compilation strategy: one pass resolves every variable of a function to a
   slot in a flat int array; a second turns each expression into nested
   closures over that array and each instruction into a [ctx -> env -> int]
   closure returning the next program counter.  Function calls recurse
   through a patched table, returns unwind with a local exception.

   On top of the per-instruction closures, [Superblock] mode (the default)
   fuses maximal straight-line runs of statically-weighted instructions —
   Assign/Load/Store/Alloc, chained through unconditional jumps — into one
   closure per run head that charges the whole run's retirement weight once
   and then executes effect-only action closures back to back.  The fused
   closure keeps a guard to the original per-instruction path, taken when
   the profiler is live (per-instruction attribution must stay bit-identical)
   or when the remaining budget is below the run's total weight (so
   {!Interp.Budget_exhausted} fires at exactly the same instruction as the
   unfused executor).  Dynamic-weight instructions (Call, Havoc) and control
   (Branch, Return) always terminate a run.

   One semantic delta vs {!Interp}: reading a never-written variable yields
   0 instead of raising — well-formed NF code never does either. *)

type mode = Instr | Superblock

let default_mode_ref = ref Superblock
let set_default_mode m = default_mode_ref := m
let default_mode () = !default_mode_ref
let mode_to_string = function Instr -> "instr" | Superblock -> "superblock"

let mode_of_string = function
  | "instr" -> Some Instr
  | "superblock" -> Some Superblock
  | _ -> None

(* Concrete memory backing: the persistent overlay (rollback-on-raise, used
   by {!call}/{!call_fn}) or the flat mutable store (no per-access tree
   descent or allocation, used by the replay path).  The values read and
   written are identical either way. *)
type cmem = Persistent of int Memory.t | Flat of Memory.Flat.t

type ctx = {
  mutable mem : cmem;
  hooks : Interp.hooks;
  mutable instrs : int;
  mutable loads : int;
  mutable stores : int;
  mutable remaining : int;
}

let mem_read m ~addr ~width =
  match m with
  | Persistent m -> Memory.read m ~addr ~width
  | Flat f -> Memory.Flat.read f ~addr ~width

exception Ret of int

type cfunc = {
  cf_name : string;
  nslots : int;
  param_slots : int array;
  mutable code : (ctx -> int array -> int) array;
}

type t = { funcs : (string, cfunc) Hashtbl.t; entry : string }

(* ------------------------------------------------------------------ *)
(* Slot assignment                                                      *)
(* ------------------------------------------------------------------ *)

let collect_vars (f : Cfg.func) =
  let slots = Hashtbl.create 16 in
  let add name =
    if not (Hashtbl.mem slots name) then
      Hashtbl.replace slots name (Hashtbl.length slots)
  in
  List.iter add f.params;
  let add_expr e = Expr.iter_leaves add e in
  Array.iter
    (fun instr ->
      match instr with
      | Cfg.Assign (x, e) ->
          add x;
          add_expr e
      | Cfg.Load { dst; addr; _ } ->
          add dst;
          add_expr addr
      | Cfg.Store { addr; value; _ } ->
          add_expr addr;
          add_expr value
      | Cfg.Alloc { dst; _ } -> add dst
      | Cfg.Branch { cond; _ } -> add_expr cond
      | Cfg.Jump _ -> ()
      | Cfg.Call { dst; args; _ } ->
          (match dst with Some d -> add d | None -> ());
          List.iter add_expr args
      | Cfg.Return (Some e) -> add_expr e
      | Cfg.Return None -> ()
      | Cfg.Havoc { dst; input; _ } ->
          add dst;
          add_expr input)
    f.body;
  slots

(* ------------------------------------------------------------------ *)
(* Expression compilation                                               *)
(* ------------------------------------------------------------------ *)

let compile_expr slots (e : Expr.pexpr) : int array -> int =
  let slot name =
    match Hashtbl.find_opt slots name with
    | Some s -> s
    | None -> invalid_arg ("Compile: unknown variable " ^ name)
  in
  let rec go : Expr.pexpr -> int array -> int = function
    | Const c -> fun _ -> c
    | Leaf name ->
        let s = slot name in
        fun env -> env.(s)
    | Unop (Neg, a) ->
        let fa = go a in
        fun env -> -fa env
    | Unop (Bnot, a) ->
        let fa = go a in
        fun env -> lnot (fa env)
    | Binop (op, a, b) -> (
        let fa = go a and fb = go b in
        match op with
        | Add -> fun env -> fa env + fb env
        | Sub -> fun env -> fa env - fb env
        | Mul -> fun env -> fa env * fb env
        | Div -> fun env -> fa env / fb env
        | Rem -> fun env -> fa env mod fb env
        | And -> fun env -> fa env land fb env
        | Or -> fun env -> fa env lor fb env
        | Xor -> fun env -> fa env lxor fb env
        | Shl -> fun env -> fa env lsl fb env
        | Lshr -> fun env -> fa env lsr fb env)
    | Cmp (op, a, b) -> (
        let fa = go a and fb = go b in
        match op with
        | Eq -> fun env -> if fa env = fb env then 1 else 0
        | Ne -> fun env -> if fa env <> fb env then 1 else 0
        | Lt -> fun env -> if fa env < fb env then 1 else 0
        | Le -> fun env -> if fa env <= fb env then 1 else 0)
    | Ite (c, a, b) ->
        let fc = go c and fa = go a and fb = go b in
        fun env -> if fc env <> 0 then fa env else fb env
  in
  go e

(* ------------------------------------------------------------------ *)
(* Instruction compilation                                              *)
(* ------------------------------------------------------------------ *)

let spend ctx w =
  ctx.instrs <- ctx.instrs + w;
  ctx.remaining <- ctx.remaining - w;
  if ctx.remaining < 0 then raise Interp.Budget_exhausted

(* The function-call path needs to execute other compiled functions; tied
   through a forward reference patched below. *)
let exec_ref : (ctx -> cfunc -> int array -> int) ref =
  ref (fun _ _ _ -> assert false)

let compile_instr funcs slots pc (instr : Cfg.instr) : ctx -> int array -> int =
  let w = Cfg.weight instr in
  let slot name = Hashtbl.find slots name in
  match instr with
  | Cfg.Assign (x, e) ->
      let fe = compile_expr slots e in
      let sx = slot x and next = pc + 1 in
      fun ctx env ->
        spend ctx w;
        env.(sx) <- fe env;
        next
  | Cfg.Load { dst; addr; width } ->
      let fa = compile_expr slots addr in
      let sd = slot dst and next = pc + 1 in
      fun ctx env ->
        spend ctx w;
        let a = fa env in
        ctx.hooks.Interp.on_access ~addr:a ~width ~write:false;
        ctx.loads <- ctx.loads + 1;
        env.(sd) <- mem_read ctx.mem ~addr:a ~width;
        next
  | Cfg.Store { addr; value; width } ->
      let fa = compile_expr slots addr and fv = compile_expr slots value in
      let next = pc + 1 in
      fun ctx env ->
        spend ctx w;
        let a = fa env in
        ctx.hooks.Interp.on_access ~addr:a ~width ~write:true;
        ctx.stores <- ctx.stores + 1;
        (match ctx.mem with
        | Persistent m ->
            ctx.mem <- Persistent (Memory.write m ~addr:a ~width (fv env))
        | Flat f -> Memory.Flat.write f ~addr:a ~width (fv env));
        next
  | Cfg.Alloc { dst; bytes } ->
      let sd = slot dst and next = pc + 1 in
      fun ctx env ->
        spend ctx w;
        (match ctx.mem with
        | Persistent m ->
            let mem', base = Memory.alloc m ~bytes in
            ctx.mem <- Persistent mem';
            env.(sd) <- base
        | Flat f -> env.(sd) <- Memory.Flat.alloc f ~bytes);
        next
  | Cfg.Branch { cond; if_true; if_false; loop_head = _ } ->
      let fc = compile_expr slots cond in
      fun ctx env ->
        spend ctx w;
        if fc env <> 0 then if_true else if_false
  | Cfg.Jump target ->
      fun ctx _ ->
        spend ctx w;
        target
  | Cfg.Call { dst; func; args } ->
      let fargs = Array.of_list (List.map (compile_expr slots) args) in
      let sd = match dst with Some d -> slot d | None -> -1 in
      let next = pc + 1 in
      let callee =
        match Hashtbl.find_opt funcs func with
        | Some c -> c
        | None -> invalid_arg ("Compile: call to unknown function " ^ func)
      in
      fun ctx env ->
        spend ctx w;
        let argv = Array.map (fun f -> f env) fargs in
        let v = !exec_ref ctx callee argv in
        if sd >= 0 then env.(sd) <- v;
        next
  | Cfg.Return None ->
      fun ctx _ ->
        spend ctx w;
        raise (Ret 0)
  | Cfg.Return (Some e) ->
      let fe = compile_expr slots e in
      fun ctx env ->
        spend ctx w;
        raise (Ret (fe env))
  | Cfg.Havoc { dst; input; hash } ->
      let fi = compile_expr slots input in
      let sd = slot dst and next = pc + 1 in
      fun ctx env ->
        spend ctx w;
        let v = fi env in
        let hw = ctx.hooks.Interp.hash_weight hash in
        if Obs.Profile.enabled () then Obs.Profile.add_retire ~weight:hw;
        spend ctx hw;
        env.(sd) <- ctx.hooks.Interp.hash_apply hash v;
        next

(* Profiler shim around one compiled instruction: marks the attribution site
   and charges retirement before the instruction body runs (so its memory
   hooks attribute here too).  One ref read when the profiler is off. *)
let instrument fname pc w code =
 fun ctx env ->
  if Obs.Profile.enabled () then begin
    Obs.Profile.enter ~func:fname ~pc;
    Obs.Profile.add_retire ~weight:w
  end;
  code ctx env

(* ------------------------------------------------------------------ *)
(* Superblock fusion                                                    *)
(* ------------------------------------------------------------------ *)

(* Statically-weighted, fall-through instructions: the only ones whose cost
   can be prefunded in one batch without moving the budget-exhaustion
   point. *)
let fusible = function
  | Cfg.Assign _ | Cfg.Load _ | Cfg.Store _ | Cfg.Alloc _ -> true
  | Cfg.Branch _ | Cfg.Jump _ | Cfg.Call _ | Cfg.Return _ | Cfg.Havoc _ ->
      false

(* Effect-only compilation of a fusible instruction: same memory, hook and
   load/store-counter behavior as {!compile_instr}, but no [spend] (the
   superblock prefunds it) and no next-pc (control is static). *)
let compile_action slots (instr : Cfg.instr) : ctx -> int array -> unit =
  let slot name = Hashtbl.find slots name in
  match instr with
  | Cfg.Assign (x, e) ->
      let fe = compile_expr slots e in
      let sx = slot x in
      fun _ env -> env.(sx) <- fe env
  | Cfg.Load { dst; addr; width } ->
      let fa = compile_expr slots addr in
      let sd = slot dst in
      fun ctx env ->
        let a = fa env in
        ctx.hooks.Interp.on_access ~addr:a ~width ~write:false;
        ctx.loads <- ctx.loads + 1;
        env.(sd) <- mem_read ctx.mem ~addr:a ~width
  | Cfg.Store { addr; value; width } ->
      let fa = compile_expr slots addr and fv = compile_expr slots value in
      fun ctx env ->
        let a = fa env in
        ctx.hooks.Interp.on_access ~addr:a ~width ~write:true;
        ctx.stores <- ctx.stores + 1;
        (match ctx.mem with
        | Persistent m ->
            ctx.mem <- Persistent (Memory.write m ~addr:a ~width (fv env))
        | Flat f -> Memory.Flat.write f ~addr:a ~width (fv env))
  | Cfg.Alloc { dst; bytes } ->
      let sd = slot dst in
      fun ctx env ->
        (match ctx.mem with
        | Persistent m ->
            let mem', base = Memory.alloc m ~bytes in
            ctx.mem <- Persistent mem';
            env.(sd) <- base
        | Flat f -> env.(sd) <- Memory.Flat.alloc f ~bytes)
  | Cfg.Branch _ | Cfg.Jump _ | Cfg.Call _ | Cfg.Return _ | Cfg.Havoc _ ->
      invalid_arg "Compile.compile_action: not a fusible instruction"

(* Cap on how many instructions one superblock may absorb; bounds both the
   chain walk at compile time and the prefunded weight at run time. *)
let max_chain = 128

(* Fuse runs into [base] (the per-instruction closure array).  Control can
   enter an instruction only at pc 0, a branch/jump target, or by fall-
   through; fused closures are installed at run heads, so entering a run
   mid-way (necessarily at a jump target, which is itself a run head) never
   double-charges. *)
let superblockify slots (body : Cfg.instr array) base =
  let n = Array.length body in
  let is_leader = Array.make n false in
  if n > 0 then is_leader.(0) <- true;
  Array.iter
    (fun instr ->
      match instr with
      | Cfg.Branch { if_true; if_false; _ } ->
          if if_true < n then is_leader.(if_true) <- true;
          if if_false < n then is_leader.(if_false) <- true;
      | Cfg.Jump target -> if target < n then is_leader.(target) <- true
      | _ -> ())
    body;
  let code = Array.copy base in
  for start = 0 to n - 1 do
    let starts_run =
      fusible body.(start)
      && (start = 0 || is_leader.(start) || not (fusible body.(start - 1)))
    in
    if starts_run then begin
      (* Walk the unique control path: fusible fall-throughs, chaining
         through unconditional jumps (each visited at most once per chain,
         so jump-only cycles terminate). *)
      let visited = Hashtbl.create 8 in
      let actions = ref [] and total = ref 0 and steps = ref 0 in
      let pc = ref start in
      let stop = ref false in
      while (not !stop) && !steps < max_chain && !pc < n do
        if Hashtbl.mem visited !pc then stop := true
        else begin
          Hashtbl.replace visited !pc ();
          match body.(!pc) with
          | Cfg.Jump target ->
              total := !total + Cfg.weight body.(!pc);
              incr steps;
              pc := target
          | instr when fusible instr ->
              total := !total + Cfg.weight instr;
              actions := compile_action slots instr :: !actions;
              incr steps;
              incr pc
          | _ -> stop := true
        end
      done;
      if !steps >= 2 then begin
        let acts = Array.of_list (List.rev !actions) in
        let na = Array.length acts in
        let w_total = !total and n_steps = !steps and next = !pc in
        code.(start) <-
          (fun ctx env ->
            if Obs.Profile.enabled () || ctx.remaining < w_total then begin
              (* Per-instruction path: exact profile attribution, and the
                 budget raises at precisely the unfused instruction. *)
              let pc = ref start in
              for _ = 1 to n_steps do
                pc := (Array.unsafe_get base !pc) ctx env
              done;
              !pc
            end
            else begin
              ctx.instrs <- ctx.instrs + w_total;
              ctx.remaining <- ctx.remaining - w_total;
              for i = 0 to na - 1 do
                (Array.unsafe_get acts i) ctx env
              done;
              next
            end)
      end
    end
  done;
  code

let exec ctx (f : cfunc) argv =
  if Array.length argv <> Array.length f.param_slots then
    invalid_arg ("Compile: arity mismatch calling " ^ f.cf_name);
  let env = Array.make f.nslots 0 in
  Array.iteri (fun k s -> env.(s) <- argv.(k)) f.param_slots;
  let pc = ref 0 in
  try
    while true do
      pc := f.code.(!pc) ctx env
    done;
    assert false
  with Ret v -> v

let () = exec_ref := exec

let program ?mode (p : Cfg.t) =
  let mode = match mode with Some m -> m | None -> !default_mode_ref in
  let funcs = Hashtbl.create 16 in
  (* placeholders first so calls can resolve in one pass *)
  Hashtbl.iter
    (fun name (f : Cfg.func) ->
      let slots = collect_vars f in
      Hashtbl.replace funcs name
        {
          cf_name = name;
          nslots = max 1 (Hashtbl.length slots);
          param_slots =
            Array.of_list (List.map (Hashtbl.find slots) f.params);
          code = [||];
        })
    p.Cfg.funcs;
  Hashtbl.iter
    (fun name (f : Cfg.func) ->
      let slots = collect_vars f in
      let cf = Hashtbl.find funcs name in
      let base =
        Array.mapi
          (fun pc instr ->
            instrument name pc (Cfg.weight instr)
              (compile_instr funcs slots pc instr))
          f.body
      in
      cf.code <-
        (match mode with
        | Instr -> base
        | Superblock -> superblockify slots f.body base))
    p.Cfg.funcs;
  { funcs; entry = p.Cfg.entry }

type fn = cfunc

let lookup t fname =
  match Hashtbl.find_opt t.funcs fname with
  | Some f -> f
  | None -> invalid_arg ("Compile.lookup: unknown function " ^ fname)

let call_fn (f : fn) ~mem ~hooks ?(budget = 10_000_000) argv =
  let ctx =
    {
      mem = Persistent !mem;
      hooks;
      instrs = 0;
      loads = 0;
      stores = 0;
      remaining = budget;
    }
  in
  let ret = exec ctx f argv in
  (match ctx.mem with Persistent m -> mem := m | Flat _ -> assert false);
  { Interp.ret; instrs = ctx.instrs; loads = ctx.loads; stores = ctx.stores }

let call_fn_flat (f : fn) ~fmem ~hooks ?(budget = 10_000_000) argv =
  let ctx =
    {
      mem = Flat fmem;
      hooks;
      instrs = 0;
      loads = 0;
      stores = 0;
      remaining = budget;
    }
  in
  let ret = exec ctx f argv in
  { Interp.ret; instrs = ctx.instrs; loads = ctx.loads; stores = ctx.stores }

let call t ~mem ~hooks ?budget fname args =
  call_fn (lookup t fname) ~mem ~hooks ?budget (Array.of_list args)
