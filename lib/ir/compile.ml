(* Compilation strategy: one pass resolves every variable of a function to a
   slot in a flat int array; a second turns each expression into nested
   closures over that array and each instruction into a [ctx -> env -> int]
   closure returning the next program counter.  Function calls recurse
   through a patched table, returns unwind with a local exception.

   One semantic delta vs {!Interp}: reading a never-written variable yields
   0 instead of raising — well-formed NF code never does either. *)

type ctx = {
  mutable mem : int Memory.t;
  hooks : Interp.hooks;
  mutable instrs : int;
  mutable loads : int;
  mutable stores : int;
  mutable remaining : int;
}

exception Ret of int

type cfunc = {
  cf_name : string;
  nslots : int;
  param_slots : int array;
  mutable code : (ctx -> int array -> int) array;
}

type t = { funcs : (string, cfunc) Hashtbl.t; entry : string }

(* ------------------------------------------------------------------ *)
(* Slot assignment                                                      *)
(* ------------------------------------------------------------------ *)

let collect_vars (f : Cfg.func) =
  let slots = Hashtbl.create 16 in
  let add name =
    if not (Hashtbl.mem slots name) then
      Hashtbl.replace slots name (Hashtbl.length slots)
  in
  List.iter add f.params;
  let add_expr e = Expr.iter_leaves add e in
  Array.iter
    (fun instr ->
      match instr with
      | Cfg.Assign (x, e) ->
          add x;
          add_expr e
      | Cfg.Load { dst; addr; _ } ->
          add dst;
          add_expr addr
      | Cfg.Store { addr; value; _ } ->
          add_expr addr;
          add_expr value
      | Cfg.Alloc { dst; _ } -> add dst
      | Cfg.Branch { cond; _ } -> add_expr cond
      | Cfg.Jump _ -> ()
      | Cfg.Call { dst; args; _ } ->
          (match dst with Some d -> add d | None -> ());
          List.iter add_expr args
      | Cfg.Return (Some e) -> add_expr e
      | Cfg.Return None -> ()
      | Cfg.Havoc { dst; input; _ } ->
          add dst;
          add_expr input)
    f.body;
  slots

(* ------------------------------------------------------------------ *)
(* Expression compilation                                               *)
(* ------------------------------------------------------------------ *)

let compile_expr slots (e : Expr.pexpr) : int array -> int =
  let slot name =
    match Hashtbl.find_opt slots name with
    | Some s -> s
    | None -> invalid_arg ("Compile: unknown variable " ^ name)
  in
  let rec go : Expr.pexpr -> int array -> int = function
    | Const c -> fun _ -> c
    | Leaf name ->
        let s = slot name in
        fun env -> env.(s)
    | Unop (Neg, a) ->
        let fa = go a in
        fun env -> -fa env
    | Unop (Bnot, a) ->
        let fa = go a in
        fun env -> lnot (fa env)
    | Binop (op, a, b) -> (
        let fa = go a and fb = go b in
        match op with
        | Add -> fun env -> fa env + fb env
        | Sub -> fun env -> fa env - fb env
        | Mul -> fun env -> fa env * fb env
        | Div -> fun env -> fa env / fb env
        | Rem -> fun env -> fa env mod fb env
        | And -> fun env -> fa env land fb env
        | Or -> fun env -> fa env lor fb env
        | Xor -> fun env -> fa env lxor fb env
        | Shl -> fun env -> fa env lsl fb env
        | Lshr -> fun env -> fa env lsr fb env)
    | Cmp (op, a, b) -> (
        let fa = go a and fb = go b in
        match op with
        | Eq -> fun env -> if fa env = fb env then 1 else 0
        | Ne -> fun env -> if fa env <> fb env then 1 else 0
        | Lt -> fun env -> if fa env < fb env then 1 else 0
        | Le -> fun env -> if fa env <= fb env then 1 else 0)
    | Ite (c, a, b) ->
        let fc = go c and fa = go a and fb = go b in
        fun env -> if fc env <> 0 then fa env else fb env
  in
  go e

(* ------------------------------------------------------------------ *)
(* Instruction compilation                                              *)
(* ------------------------------------------------------------------ *)

let spend ctx w =
  ctx.instrs <- ctx.instrs + w;
  ctx.remaining <- ctx.remaining - w;
  if ctx.remaining < 0 then raise Interp.Budget_exhausted

(* The function-call path needs to execute other compiled functions; tied
   through a forward reference patched below. *)
let exec_ref : (ctx -> cfunc -> int array -> int) ref =
  ref (fun _ _ _ -> assert false)

let compile_instr funcs slots pc (instr : Cfg.instr) : ctx -> int array -> int =
  let w = Cfg.weight instr in
  let slot name = Hashtbl.find slots name in
  match instr with
  | Cfg.Assign (x, e) ->
      let fe = compile_expr slots e in
      let sx = slot x and next = pc + 1 in
      fun ctx env ->
        spend ctx w;
        env.(sx) <- fe env;
        next
  | Cfg.Load { dst; addr; width } ->
      let fa = compile_expr slots addr in
      let sd = slot dst and next = pc + 1 in
      fun ctx env ->
        spend ctx w;
        let a = fa env in
        ctx.hooks.Interp.on_access ~addr:a ~width ~write:false;
        ctx.loads <- ctx.loads + 1;
        env.(sd) <- Memory.read ctx.mem ~addr:a ~width;
        next
  | Cfg.Store { addr; value; width } ->
      let fa = compile_expr slots addr and fv = compile_expr slots value in
      let next = pc + 1 in
      fun ctx env ->
        spend ctx w;
        let a = fa env in
        ctx.hooks.Interp.on_access ~addr:a ~width ~write:true;
        ctx.stores <- ctx.stores + 1;
        ctx.mem <- Memory.write ctx.mem ~addr:a ~width (fv env);
        next
  | Cfg.Alloc { dst; bytes } ->
      let sd = slot dst and next = pc + 1 in
      fun ctx env ->
        spend ctx w;
        let mem', base = Memory.alloc ctx.mem ~bytes in
        ctx.mem <- mem';
        env.(sd) <- base;
        next
  | Cfg.Branch { cond; if_true; if_false; loop_head = _ } ->
      let fc = compile_expr slots cond in
      fun ctx env ->
        spend ctx w;
        if fc env <> 0 then if_true else if_false
  | Cfg.Jump target ->
      fun ctx _ ->
        spend ctx w;
        target
  | Cfg.Call { dst; func; args } ->
      let fargs = Array.of_list (List.map (compile_expr slots) args) in
      let sd = match dst with Some d -> slot d | None -> -1 in
      let next = pc + 1 in
      let callee =
        match Hashtbl.find_opt funcs func with
        | Some c -> c
        | None -> invalid_arg ("Compile: call to unknown function " ^ func)
      in
      fun ctx env ->
        spend ctx w;
        let argv = Array.map (fun f -> f env) fargs in
        let v = !exec_ref ctx callee argv in
        if sd >= 0 then env.(sd) <- v;
        next
  | Cfg.Return None ->
      fun ctx _ ->
        spend ctx w;
        raise (Ret 0)
  | Cfg.Return (Some e) ->
      let fe = compile_expr slots e in
      fun ctx env ->
        spend ctx w;
        raise (Ret (fe env))
  | Cfg.Havoc { dst; input; hash } ->
      let fi = compile_expr slots input in
      let sd = slot dst and next = pc + 1 in
      fun ctx env ->
        spend ctx w;
        let v = fi env in
        let hw = ctx.hooks.Interp.hash_weight hash in
        if Obs.Profile.enabled () then Obs.Profile.add_retire ~weight:hw;
        spend ctx hw;
        env.(sd) <- ctx.hooks.Interp.hash_apply hash v;
        next

(* Profiler shim around one compiled instruction: marks the attribution site
   and charges retirement before the instruction body runs (so its memory
   hooks attribute here too).  One ref read when the profiler is off. *)
let instrument fname pc w code =
 fun ctx env ->
  if Obs.Profile.enabled () then begin
    Obs.Profile.enter ~func:fname ~pc;
    Obs.Profile.add_retire ~weight:w
  end;
  code ctx env

let exec ctx (f : cfunc) argv =
  if Array.length argv <> Array.length f.param_slots then
    invalid_arg ("Compile: arity mismatch calling " ^ f.cf_name);
  let env = Array.make f.nslots 0 in
  Array.iteri (fun k s -> env.(s) <- argv.(k)) f.param_slots;
  let pc = ref 0 in
  try
    while true do
      pc := f.code.(!pc) ctx env
    done;
    assert false
  with Ret v -> v

let () = exec_ref := exec

let program (p : Cfg.t) =
  let funcs = Hashtbl.create 16 in
  (* placeholders first so calls can resolve in one pass *)
  Hashtbl.iter
    (fun name (f : Cfg.func) ->
      let slots = collect_vars f in
      Hashtbl.replace funcs name
        {
          cf_name = name;
          nslots = max 1 (Hashtbl.length slots);
          param_slots =
            Array.of_list (List.map (Hashtbl.find slots) f.params);
          code = [||];
        })
    p.Cfg.funcs;
  Hashtbl.iter
    (fun name (f : Cfg.func) ->
      let slots = collect_vars f in
      let cf = Hashtbl.find funcs name in
      cf.code <-
        Array.mapi
          (fun pc instr ->
            instrument name pc (Cfg.weight instr)
              (compile_instr funcs slots pc instr))
          f.body)
    p.Cfg.funcs;
  { funcs; entry = p.Cfg.entry }

let call t ~mem ~hooks ?(budget = 10_000_000) fname args =
  let f =
    match Hashtbl.find_opt t.funcs fname with
    | Some f -> f
    | None -> invalid_arg ("Compile.call: unknown function " ^ fname)
  in
  let ctx =
    { mem = !mem; hooks; instrs = 0; loads = 0; stores = 0; remaining = budget }
  in
  let ret = exec ctx f (Array.of_list args) in
  mem := ctx.mem;
  { Interp.ret; instrs = ctx.instrs; loads = ctx.loads; stores = ctx.stores }
