(** The flat, LLVM-like form of NFIR that the engines interpret.

    A function body is an array of simple instructions addressed by program
    counter; control flow is explicit [Branch]/[Jump].  Structured programs
    written in the {!Dsl} are translated here by {!Lower}. *)

type pexpr = Expr.pexpr

type instr =
  | Assign of string * pexpr
  | Load of { dst : string; addr : pexpr; width : int }
  | Store of { addr : pexpr; value : pexpr; width : int }
  | Alloc of { dst : string; bytes : int }
      (** Heap allocation of a statically-known size (rounded to cache
          lines); yields the base address. *)
  | Branch of { cond : pexpr; if_true : int; if_false : int; loop_head : bool }
      (** [loop_head] marks the head test of a [while]; the engine treats the
          two outcomes as "one more iteration" vs "exit now" (§3.4). *)
  | Jump of int
  | Call of { dst : string option; func : string; args : pexpr list }
  | Return of pexpr option
  | Havoc of { dst : string; input : pexpr; hash : string }
      (** [castan_havoc(input, dst, hash)]: in production semantics computes
          [dst = hash(input)]; under analysis the output is replaced by a
          fresh unconstrained symbol and the pair is recorded for later
          reconciliation (§3.5). *)

type func = { fname : string; params : string list; body : instr array }

type t = {
  name : string;
  funcs : (string, func) Hashtbl.t;
  entry : string;  (** per-packet entry point; its params are packet fields *)
  regions : Memory.spec list;
  heap_bytes : int;
}

val func : t -> string -> func
(** @raise Invalid_argument on an unknown function name. *)

val entry_func : t -> func

val successors : func -> int -> int list
(** Intra-procedural successor program counters of the instruction at [pc].
    [Call] falls through to [pc+1]; [Return] has none. *)

val instr_count : t -> int
(** Total number of instructions across all functions. *)

val weight : instr -> int
(** "Instructions retired" weight of one NFIR instruction: 1 plus the number
    of operator nodes in its expressions, so a flat NFIR instruction with a
    compound right-hand side counts like the equivalent LLVM sequence. *)

val pp_instr : Format.formatter -> instr -> unit
val pp : Format.formatter -> t -> unit
