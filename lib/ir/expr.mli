(** Expressions of NFIR, the network-function intermediate representation.

    A single polymorphic expression type serves two roles:

    - {e program expressions} ([string t]): leaves are local-variable names;
      these appear in NFIR instructions;
    - {e symbolic values} ([sym t]): leaves are input symbols (packet fields
      or havoc outputs); these are what the symbolic-execution engine
      manipulates and what path constraints range over.

    Values are OCaml [int]s (63-bit); all NF quantities — packet fields
    (at most 32 bits), table indices, byte addresses (under 2^40) — fit
    comfortably. Arithmetic follows OCaml [int] semantics; NF code keeps
    values non-negative and masks explicitly where width matters. *)

type field = Src_ip | Dst_ip | Proto | Src_port | Dst_port

val field_width : field -> int
(** Width of the field in bits: 32, 32, 8, 16, 16. *)

val all_fields : field list
val field_name : field -> string

type sym =
  | Pkt of { pkt : int; field : field }
      (** Field [field] of the [pkt]-th symbolic input packet. *)
  | Fresh of { id : int; label : string }
      (** An unconstrained symbol, e.g. a havoced hash output. *)

val sym_width : sym -> int
(** Bit width of the symbol's natural range. [Fresh] symbols report the width
    encoded at creation time via {!fresh}. *)

val fresh : label:string -> width:int -> sym
(** Allocates a fresh symbol with a domain-unique id (the counter and width
    table are domain-local, so concurrent analyses on {!Util.Pool} workers
    do not interleave id sequences). *)

val reset_fresh : unit -> unit
(** Resets this domain's fresh-symbol counter and width table.
    [Core.Analyze.run] calls this at the start of every analysis so symbol
    ids depend only on the NF being analyzed, never on what ran before —
    a precondition for [-j 1] and [-j N] campaigns producing identical
    constraints. *)

val pp_sym : Format.formatter -> sym -> unit
val compare_sym : sym -> sym -> int

type unop = Neg | Bnot
type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Lshr
type cmp = Eq | Ne | Lt | Le

type 'a t =
  | Const of int
  | Leaf of 'a
  | Unop of unop * 'a t
  | Binop of binop * 'a t * 'a t
  | Cmp of cmp * 'a t * 'a t  (** yields 1 or 0 *)
  | Ite of 'a t * 'a t * 'a t

val eval : leaf:('a -> int) -> 'a t -> int
(** Evaluates under a leaf assignment. [Div]/[Rem] by zero raise
    [Division_by_zero]. [Ite c a b] evaluates [a] iff [c] is non-zero. *)

val subst : ('a -> 'b t) -> 'a t -> 'b t
(** Substitutes every leaf by an expression (monadic bind). *)

val iter_leaves : ('a -> unit) -> 'a t -> unit
val fold_leaves : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val size : 'a t -> int
(** Number of nodes; used to keep symbolic expressions in check. *)

val ops : 'a t -> int
(** Number of operator nodes ([Unop]/[Binop]/[Cmp]/[Ite]); approximates how
    many machine instructions evaluating the expression costs. *)

val apply_unop : unop -> int -> int
val apply_binop : binop -> int -> int -> int
val apply_cmp : cmp -> int -> int -> bool

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
val to_string : (Format.formatter -> 'a -> unit) -> 'a t -> string

type pexpr = string t
(** Program expressions: leaves are local-variable names. *)

type sexpr = sym t
(** Symbolic values: leaves are input symbols. *)

val equal_sexpr : sexpr -> sexpr -> bool
val compare_sexpr : sexpr -> sexpr -> int
val pp_sexpr : Format.formatter -> sexpr -> unit
