type field = Src_ip | Dst_ip | Proto | Src_port | Dst_port

let field_width = function
  | Src_ip | Dst_ip -> 32
  | Proto -> 8
  | Src_port | Dst_port -> 16

let all_fields = [ Src_ip; Dst_ip; Proto; Src_port; Dst_port ]

let field_name = function
  | Src_ip -> "src_ip"
  | Dst_ip -> "dst_ip"
  | Proto -> "proto"
  | Src_port -> "src_port"
  | Dst_port -> "dst_port"

type sym =
  | Pkt of { pkt : int; field : field }
  | Fresh of { id : int; label : string }

(* Fresh symbols carry their width in a side table so that the variant stays
   comparable with the structural [compare].  Counter and table are
   domain-local: concurrent analyses on {!Util.Pool} workers each allocate
   their own dense id sequence (ids never cross domains — a Fresh sym is
   only ever compared against syms from the same analysis), which keeps the
   sequence independent of how analyses are scheduled. *)
type fresh_state = {
  mutable next_fresh : int;
  widths : (int, int) Hashtbl.t;
}

let fresh_key : fresh_state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { next_fresh = 0; widths = Hashtbl.create 64 })

let reset_fresh () =
  let fs = Domain.DLS.get fresh_key in
  fs.next_fresh <- 0;
  Hashtbl.reset fs.widths

let fresh ~label ~width =
  let fs = Domain.DLS.get fresh_key in
  fs.next_fresh <- fs.next_fresh + 1;
  let id = fs.next_fresh in
  Hashtbl.replace fs.widths id width;
  Fresh { id; label }

let sym_width = function
  | Pkt { field; _ } -> field_width field
  | Fresh { id; _ } -> (
      try Hashtbl.find (Domain.DLS.get fresh_key).widths id
      with Not_found -> 62)

let pp_sym ppf = function
  | Pkt { pkt; field } -> Format.fprintf ppf "pkt%d.%s" pkt (field_name field)
  | Fresh { id; label } -> Format.fprintf ppf "%s#%d" label id

let compare_sym = compare

type unop = Neg | Bnot
type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Lshr
type cmp = Eq | Ne | Lt | Le

type 'a t =
  | Const of int
  | Leaf of 'a
  | Unop of unop * 'a t
  | Binop of binop * 'a t * 'a t
  | Cmp of cmp * 'a t * 'a t
  | Ite of 'a t * 'a t * 'a t

let apply_unop op v = match op with Neg -> -v | Bnot -> lnot v

let apply_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> a / b
  | Rem -> a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl b
  | Lshr -> a lsr b

let apply_cmp op a b =
  match op with Eq -> a = b | Ne -> a <> b | Lt -> a < b | Le -> a <= b

let rec eval ~leaf = function
  | Const c -> c
  | Leaf x -> leaf x
  | Unop (op, e) -> apply_unop op (eval ~leaf e)
  | Binop (op, a, b) -> apply_binop op (eval ~leaf a) (eval ~leaf b)
  | Cmp (op, a, b) -> if apply_cmp op (eval ~leaf a) (eval ~leaf b) then 1 else 0
  | Ite (c, a, b) -> if eval ~leaf c <> 0 then eval ~leaf a else eval ~leaf b

let rec subst f = function
  | Const c -> Const c
  | Leaf x -> f x
  | Unop (op, e) -> Unop (op, subst f e)
  | Binop (op, a, b) -> Binop (op, subst f a, subst f b)
  | Cmp (op, a, b) -> Cmp (op, subst f a, subst f b)
  | Ite (c, a, b) -> Ite (subst f c, subst f a, subst f b)

let rec iter_leaves f = function
  | Const _ -> ()
  | Leaf x -> f x
  | Unop (_, e) -> iter_leaves f e
  | Binop (_, a, b) | Cmp (_, a, b) ->
      iter_leaves f a;
      iter_leaves f b
  | Ite (c, a, b) ->
      iter_leaves f c;
      iter_leaves f a;
      iter_leaves f b

let rec fold_leaves f acc = function
  | Const _ -> acc
  | Leaf x -> f acc x
  | Unop (_, e) -> fold_leaves f acc e
  | Binop (_, a, b) | Cmp (_, a, b) -> fold_leaves f (fold_leaves f acc a) b
  | Ite (c, a, b) ->
      fold_leaves f (fold_leaves f (fold_leaves f acc c) a) b

let rec size = function
  | Const _ | Leaf _ -> 1
  | Unop (_, e) -> 1 + size e
  | Binop (_, a, b) | Cmp (_, a, b) -> 1 + size a + size b
  | Ite (c, a, b) -> 1 + size c + size a + size b

let rec ops = function
  | Const _ | Leaf _ -> 0
  | Unop (_, e) -> 1 + ops e
  | Binop (_, a, b) | Cmp (_, a, b) -> 1 + ops a + ops b
  | Ite (c, a, b) -> 1 + ops c + ops a + ops b

let unop_name = function Neg -> "-" | Bnot -> "~"

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Rem -> "%"
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Shl -> "<<"
  | Lshr -> ">>"

let cmp_name = function Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<="

let rec pp pp_leaf ppf = function
  | Const c ->
      if c > 0xffff then Format.fprintf ppf "0x%x" c
      else Format.fprintf ppf "%d" c
  | Leaf x -> pp_leaf ppf x
  | Unop (op, e) -> Format.fprintf ppf "%s(%a)" (unop_name op) (pp pp_leaf) e
  | Binop (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" (pp pp_leaf) a (binop_name op)
        (pp pp_leaf) b
  | Cmp (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" (pp pp_leaf) a (cmp_name op) (pp pp_leaf)
        b
  | Ite (c, a, b) ->
      Format.fprintf ppf "(%a ? %a : %a)" (pp pp_leaf) c (pp pp_leaf) a
        (pp pp_leaf) b

let to_string pp_leaf e = Format.asprintf "%a" (pp pp_leaf) e

type pexpr = string t
type sexpr = sym t

let equal_sexpr (a : sexpr) (b : sexpr) = a = b
let compare_sexpr (a : sexpr) (b : sexpr) = compare a b
let pp_sexpr ppf (e : sexpr) = pp pp_sym ppf e
