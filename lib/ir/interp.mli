(** Concrete NFIR interpreter — the "production build" semantics.

    Runs a function on concrete arguments against a concrete memory, calling
    back on every memory access so the testbed can drive its cache simulator
    and cycle model.  [Havoc] executes the real hash function (production
    semantics of the [castan_havoc] annotation). *)

type hooks = {
  on_access : addr:int -> width:int -> write:bool -> unit;
      (** Called for every executed [Load]/[Store]. *)
  hash_apply : string -> int -> int;
      (** Resolves a [Havoc]'s hash function by name. *)
  hash_weight : string -> int;
      (** Instructions-retired cost of computing that hash once. *)
}

val no_hooks : hooks
(** No-op access hook; unknown hashes raise. *)

type outcome = {
  ret : int;  (** return value of the called function; 0 if [Return None] *)
  instrs : int;  (** weighted instructions retired (see {!Cfg.weight}) *)
  loads : int;
  stores : int;
}

exception Budget_exhausted

val call :
  Cfg.t ->
  mem:int Memory.t ref ->
  hooks:hooks ->
  ?budget:int ->
  string ->
  int list ->
  outcome
(** [call program ~mem ~hooks f args] executes [f] to completion.  [mem] is
    updated in place (rebound to the resulting persistent memory).  [budget]
    (default 10 million) bounds executed instructions and guards against
    non-terminating NF code.
    @raise Budget_exhausted when the bound is hit.
    @raise Invalid_argument on arity mismatch or undefined variables. *)
