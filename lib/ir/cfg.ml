type pexpr = Expr.pexpr

type instr =
  | Assign of string * pexpr
  | Load of { dst : string; addr : pexpr; width : int }
  | Store of { addr : pexpr; value : pexpr; width : int }
  | Alloc of { dst : string; bytes : int }
  | Branch of { cond : pexpr; if_true : int; if_false : int; loop_head : bool }
  | Jump of int
  | Call of { dst : string option; func : string; args : pexpr list }
  | Return of pexpr option
  | Havoc of { dst : string; input : pexpr; hash : string }

type func = { fname : string; params : string list; body : instr array }

type t = {
  name : string;
  funcs : (string, func) Hashtbl.t;
  entry : string;
  regions : Memory.spec list;
  heap_bytes : int;
}

let func t name =
  match Hashtbl.find_opt t.funcs name with
  | Some f -> f
  | None -> invalid_arg ("Cfg.func: unknown function " ^ name)

let entry_func t = func t t.entry

let successors f pc =
  match f.body.(pc) with
  | Branch { if_true; if_false; _ } ->
      if if_true = if_false then [ if_true ] else [ if_true; if_false ]
  | Jump target -> [ target ]
  | Return _ -> []
  | Assign _ | Load _ | Store _ | Alloc _ | Call _ | Havoc _ -> [ pc + 1 ]

let instr_count t =
  Hashtbl.fold (fun _ f acc -> acc + Array.length f.body) t.funcs 0

let weight = function
  | Assign (_, e) -> 1 + Expr.ops e
  | Load { addr; _ } -> 1 + Expr.ops addr
  | Store { addr; value; _ } -> 1 + Expr.ops addr + Expr.ops value
  | Alloc _ -> 1
  | Branch { cond; _ } -> 1 + Expr.ops cond
  | Jump _ -> 1
  | Call { args; _ } ->
      List.fold_left (fun acc a -> acc + Expr.ops a) 1 args
  | Return None -> 1
  | Return (Some e) -> 1 + Expr.ops e
  | Havoc { input; _ } -> 1 + Expr.ops input

let pp_var ppf s = Format.pp_print_string ppf s
let pp_pexpr = Expr.pp pp_var

let pp_instr ppf = function
  | Assign (x, e) -> Format.fprintf ppf "%s = %a" x pp_pexpr e
  | Load { dst; addr; width } ->
      Format.fprintf ppf "%s = load%d %a" dst width pp_pexpr addr
  | Store { addr; value; width } ->
      Format.fprintf ppf "store%d %a, %a" width pp_pexpr addr pp_pexpr value
  | Alloc { dst; bytes } -> Format.fprintf ppf "%s = alloc %d" dst bytes
  | Branch { cond; if_true; if_false; loop_head } ->
      Format.fprintf ppf "br%s %a, %d, %d"
        (if loop_head then ".loop" else "")
        pp_pexpr cond if_true if_false
  | Jump target -> Format.fprintf ppf "jmp %d" target
  | Call { dst; func; args } ->
      let pp_args = Format.pp_print_list ~pp_sep:(fun ppf () ->
          Format.pp_print_string ppf ", ") pp_pexpr in
      (match dst with
      | Some d -> Format.fprintf ppf "%s = call %s(%a)" d func pp_args args
      | None -> Format.fprintf ppf "call %s(%a)" func pp_args args)
  | Return None -> Format.fprintf ppf "ret"
  | Return (Some e) -> Format.fprintf ppf "ret %a" pp_pexpr e
  | Havoc { dst; input; hash } ->
      Format.fprintf ppf "%s = castan_havoc(%a, %s)" dst pp_pexpr input hash

let pp ppf t =
  Format.fprintf ppf "program %s (entry %s)@." t.name t.entry;
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) t.funcs [] in
  let names = List.sort compare names in
  let pp_func name =
    let f = Hashtbl.find t.funcs name in
    Format.fprintf ppf "fn %s(%s):@." f.fname (String.concat ", " f.params);
    Array.iteri
      (fun pc i -> Format.fprintf ppf "  %3d: %a@." pc pp_instr i)
      f.body
  in
  List.iter pp_func names
