(** The NFIR memory model.

    Memory is a set of {e regions} laid out in a byte-addressed virtual
    address space, plus a heap serving [alloc] instructions.  A region is an
    array of fixed-width elements with a {e lazy initializer}: reads that were
    never overwritten are served by calling [init] on the element index.  This
    is what makes gigabyte-scale NF tables (the 2^27-entry direct-lookup LPM
    array) representable without materializing them.

    Written values live in a persistent overlay map, so snapshotting memory
    for symbolic-state forking is O(1).  The value type is polymorphic: the
    concrete interpreter instantiates ['v = int], the symbolic engine
    ['v = Expr.sexpr]. *)

type region = {
  name : string;
  base : int;  (** assigned by {!create}; byte address *)
  elem_width : int;  (** bytes per element: 1, 2, 4 or 8 *)
  count : int;  (** number of elements *)
  init : int -> int;  (** element index -> initial value *)
}

val region_size : region -> int
(** Size in bytes. *)

val region_end : region -> int
(** One past the last byte. *)

type spec = { s_name : string; s_elem_width : int; s_count : int; s_init : int -> int }
(** A region before address assignment. *)

val array_spec : name:string -> elem_width:int -> count:int -> ?init:(int -> int) -> unit -> spec
(** Convenience constructor; default initializer is all-zeroes. *)

val layout : spec list -> (string * region) list
(** The deterministic address assignment {!create} uses (4KiB-aligned,
    sequential from 1GiB).  Exposed so program builders can embed region base
    addresses as constants, exactly like a linker resolving globals. *)

type 'v t

val create : regions:spec list -> heap_bytes:int -> inject:(int -> 'v) -> 'v t
(** Lays regions out sequentially (4KiB-aligned, starting at 1GiB) followed by
    the heap region. [inject] lifts initializer values into ['v]. *)

val regions : 'v t -> region list
(** All regions, including the heap, sorted by base address. *)

val find_region_opt : 'v t -> int -> region option
(** [find_region_opt t addr] returns the region containing byte [addr], or
    [None] when the address falls outside every region — the non-raising
    lookup the symbolic engine uses to kill a faulting state instead of
    crashing the driver. *)

val find_region : 'v t -> int -> region
(** [find_region t addr] returns the region containing byte [addr].
    @raise Invalid_argument on an out-of-bounds address. *)

val region_named : 'v t -> string -> region
(** @raise Not_found if no region has that name. *)

val read : 'v t -> addr:int -> width:int -> 'v
(** [read t ~addr ~width] requires [addr] to be element-aligned in its region
    and [width] to equal the region's element width.
    @raise Invalid_argument otherwise. *)

val write : 'v t -> addr:int -> width:int -> 'v -> 'v t
(** Same addressing discipline as {!read}; persistent update. *)

val try_read : 'v t -> addr:int -> width:int -> ('v, string) result
(** Non-raising {!read}: out-of-bounds, misaligned and wrong-width accesses
    come back as [Error] with a descriptive message. *)

val try_write : 'v t -> addr:int -> width:int -> 'v -> ('v t, string) result
(** Non-raising {!write}. *)

val alloc : 'v t -> bytes:int -> 'v t * int
(** Bump allocation from the heap, rounded up to 64-byte (cache-line)
    multiples so distinct nodes never share a line.
    @raise Invalid_argument when the heap is exhausted. *)

val try_alloc : 'v t -> bytes:int -> ('v t * int, string) result
(** Non-raising {!alloc}: [Error] describes the heap occupancy on
    exhaustion, so the symbolic engine can kill the offending state with a
    structured reason. *)

val heap_used : 'v t -> int
(** Bytes currently allocated from the heap. *)

val written_cells : 'v t -> int
(** Number of overlay cells (diagnostics). *)

(** {2 Flat concrete store}

    A mutable view for concrete replay: written cells live in chunked
    arrays allocated on first write (with a per-chunk written bitmap), and
    untouched cells still read through the region's lazy initializer — so
    gigabyte-scale tables stay unmaterialized, while the hot path is an
    array index instead of a persistent-map descent.  Same addressing
    discipline and error messages as {!read}/{!write}/{!alloc}.  Because
    updates mutate in place, a computation aborted mid-way (e.g. on
    {!Interp.Budget_exhausted}) leaves its partial writes behind — use the
    persistent [t] where rollback-on-raise matters. *)
module Flat : sig
  type t

  val read : t -> addr:int -> width:int -> int
  val write : t -> addr:int -> width:int -> int -> unit

  val alloc : t -> bytes:int -> int
  (** Bump allocation, 64-byte rounded, mutating the heap cursor.
      @raise Invalid_argument when the heap is exhausted. *)

  val heap_used : t -> int
end

val flat_of_memory : int t -> Flat.t
(** Materializes the region layout, heap cursor and current overlay of a
    concrete memory into a flat store (the overlay is replayed as writes;
    regions themselves stay lazy). *)
