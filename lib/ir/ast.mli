(** Structured NFIR, the form network functions are written in.

    Programs are authored with the {!Dsl} combinators, which produce this
    tree; {!Lower} flattens it to {!Cfg} instructions. *)

type pexpr = Expr.pexpr

type stmt =
  | Assign of string * pexpr
  | Load of string * pexpr * int  (** dst, address, width in bytes *)
  | Store of pexpr * pexpr * int  (** address, value, width in bytes *)
  | Alloc of string * int
  | If of pexpr * stmt list * stmt list
  | While of pexpr * stmt list
  | Break  (** exits the innermost [While] *)
  | Call of string option * string * pexpr list
  | Return of pexpr option
  | Havoc of string * pexpr * string

type fdef = { name : string; params : string list; body : stmt list }

type program = {
  name : string;
  entry : string;
  functions : fdef list;
  regions : Memory.spec list;
  heap_bytes : int;
}

val stmt_count : stmt list -> int
(** Number of statements, counting nested blocks. *)
