type pexpr = Expr.pexpr

type stmt =
  | Assign of string * pexpr
  | Load of string * pexpr * int
  | Store of pexpr * pexpr * int
  | Alloc of string * int
  | If of pexpr * stmt list * stmt list
  | While of pexpr * stmt list
  | Break
  | Call of string option * string * pexpr list
  | Return of pexpr option
  | Havoc of string * pexpr * string

type fdef = { name : string; params : string list; body : stmt list }

type program = {
  name : string;
  entry : string;
  functions : fdef list;
  regions : Memory.spec list;
  heap_bytes : int;
}

let rec stmt_count stmts =
  List.fold_left
    (fun acc s ->
      acc
      +
      match s with
      | If (_, a, b) -> 1 + stmt_count a + stmt_count b
      | While (_, b) -> 1 + stmt_count b
      | Assign _ | Load _ | Store _ | Alloc _ | Break | Call _ | Return _
      | Havoc _ ->
          1)
    0 stmts
