(** Combinators for writing network functions in structured NFIR.

    The DSL reads like a small C: expressions are built with suffixed infix
    operators ([+:], [=:], ...), statements are values of {!Ast.stmt}, and
    blocks are plain OCaml lists.  Example — count trailing zeroes:

    {[
      func "ctz" [ "x" ] [
        "n" <-- i 0;
        while_ ((v "x" &: i 1) =: i 0) [
          "x" <-- v "x" >>: i 1;
          "n" <-- v "n" +: i 1;
        ];
        ret (v "n");
      ]
    ]} *)

type e = Expr.pexpr

val v : string -> e
(** Variable reference. *)

val i : int -> e
(** Integer literal. *)

val ( +: ) : e -> e -> e
val ( -: ) : e -> e -> e
val ( *: ) : e -> e -> e
val ( /: ) : e -> e -> e
val ( %: ) : e -> e -> e
val ( &: ) : e -> e -> e
val ( |: ) : e -> e -> e
val ( ^: ) : e -> e -> e
val ( <<: ) : e -> e -> e
val ( >>: ) : e -> e -> e

val ( =: ) : e -> e -> e
val ( <>: ) : e -> e -> e
val ( <: ) : e -> e -> e
val ( <=: ) : e -> e -> e
val ( >: ) : e -> e -> e
val ( >=: ) : e -> e -> e

val not_ : e -> e
(** Logical negation of a 0/1 value. *)

val ( &&: ) : e -> e -> e
(** Logical conjunction of 0/1 values (bitwise [&], both sides evaluated). *)

val ( ||: ) : e -> e -> e

val ite : e -> e -> e -> e

val ( <-- ) : string -> e -> Ast.stmt

val load : string -> width:int -> e -> Ast.stmt
val store : e -> width:int -> e -> Ast.stmt
val load8 : string -> e -> Ast.stmt
val store8 : e -> e -> Ast.stmt
val load4 : string -> e -> Ast.stmt
val store4 : e -> e -> Ast.stmt
val load2 : string -> e -> Ast.stmt
val store2 : e -> e -> Ast.stmt
val load1 : string -> e -> Ast.stmt
val store1 : e -> e -> Ast.stmt

val alloc : string -> int -> Ast.stmt
val if_ : e -> Ast.stmt list -> Ast.stmt list -> Ast.stmt
val when_ : e -> Ast.stmt list -> Ast.stmt
(** [when_ c body] is [if_ c body \[\]]. *)

val while_ : e -> Ast.stmt list -> Ast.stmt
val break_ : Ast.stmt
val call : string -> string -> e list -> Ast.stmt
(** [call dst f args] assigns the result to [dst]. *)

val call_ : string -> e list -> Ast.stmt
(** Call for effect only. *)

val ret : e -> Ast.stmt
val ret_none : Ast.stmt

val havoc : string -> input:e -> hash:string -> Ast.stmt
(** The [castan_havoc(input, output, expr)] annotation of §4. *)

val func : string -> string list -> Ast.stmt list -> Ast.fdef

val program :
  name:string ->
  entry:string ->
  ?regions:Memory.spec list ->
  ?heap_bytes:int ->
  Ast.fdef list ->
  Ast.program
(** Default heap is 64 MiB. *)
