type t = {
  program : Cfg.t;
  callees : (string, string list) Hashtbl.t;
  topo : string list;
}

let direct_callees (f : Cfg.func) =
  let acc = ref [] in
  Array.iter
    (function
      | Cfg.Call { func; _ } -> if not (List.mem func !acc) then acc := func :: !acc
      | _ -> ())
    f.body;
  List.rev !acc

(* Depth-first post-order over the call graph; a gray node on the stack means
   recursion. *)
let toposort program callees entry =
  let color = Hashtbl.create 16 in
  let order = ref [] in
  let rec visit name =
    match Hashtbl.find_opt color name with
    | Some `Black -> ()
    | Some `Gray -> invalid_arg ("Icfg.make: recursive call involving " ^ name)
    | None ->
        Hashtbl.replace color name `Gray;
        let cs =
          match Hashtbl.find_opt callees name with Some l -> l | None -> []
        in
        List.iter visit cs;
        Hashtbl.replace color name `Black;
        order := name :: !order
  in
  (* Visit from the entry, then any unreached functions, so [topo] covers the
     whole program. *)
  visit entry;
  Hashtbl.iter
    (fun name _ -> if not (Hashtbl.mem color name) then visit name)
    program.Cfg.funcs;
  List.rev !order

let make (program : Cfg.t) =
  let callees = Hashtbl.create 16 in
  Hashtbl.iter
    (fun name f ->
      let cs = direct_callees f in
      List.iter
        (fun c ->
          if not (Hashtbl.mem program.funcs c) then
            invalid_arg
              (Printf.sprintf "Icfg.make: %s calls undefined function %s" name c))
        cs;
      Hashtbl.replace callees name cs)
    program.funcs;
  (* [toposort] already yields callees before callers. *)
  let topo = toposort program callees program.entry in
  { program; callees; topo }

let program t = t.program

let callees t name =
  match Hashtbl.find_opt t.callees name with Some l -> l | None -> []

let topo_order t = t.topo
let node_count t = Cfg.instr_count t.program
