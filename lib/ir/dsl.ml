type e = Expr.pexpr

let v name : e = Expr.Leaf name
let i n : e = Expr.Const n
let ( +: ) a b : e = Expr.Binop (Add, a, b)
let ( -: ) a b : e = Expr.Binop (Sub, a, b)
let ( *: ) a b : e = Expr.Binop (Mul, a, b)
let ( /: ) a b : e = Expr.Binop (Div, a, b)
let ( %: ) a b : e = Expr.Binop (Rem, a, b)
let ( &: ) a b : e = Expr.Binop (And, a, b)
let ( |: ) a b : e = Expr.Binop (Or, a, b)
let ( ^: ) a b : e = Expr.Binop (Xor, a, b)
let ( <<: ) a b : e = Expr.Binop (Shl, a, b)
let ( >>: ) a b : e = Expr.Binop (Lshr, a, b)
let ( =: ) a b : e = Expr.Cmp (Eq, a, b)
let ( <>: ) a b : e = Expr.Cmp (Ne, a, b)
let ( <: ) a b : e = Expr.Cmp (Lt, a, b)
let ( <=: ) a b : e = Expr.Cmp (Le, a, b)
let ( >: ) a b : e = Expr.Cmp (Lt, b, a)
let ( >=: ) a b : e = Expr.Cmp (Le, b, a)
let not_ a : e = Expr.Cmp (Eq, a, Expr.Const 0)
let ( &&: ) a b : e = Expr.Binop (And, a, b)
let ( ||: ) a b : e = Expr.Binop (Or, a, b)
let ite c a b : e = Expr.Ite (c, a, b)
let ( <-- ) name expr = Ast.Assign (name, expr)
let load dst ~width addr = Ast.Load (dst, addr, width)
let store addr ~width value = Ast.Store (addr, value, width)
let load8 dst addr = load dst ~width:8 addr
let store8 addr value = store addr ~width:8 value
let load4 dst addr = load dst ~width:4 addr
let store4 addr value = store addr ~width:4 value
let load2 dst addr = load dst ~width:2 addr
let store2 addr value = store addr ~width:2 value
let load1 dst addr = load dst ~width:1 addr
let store1 addr value = store addr ~width:1 value
let alloc dst bytes = Ast.Alloc (dst, bytes)
let if_ cond then_b else_b = Ast.If (cond, then_b, else_b)
let when_ cond body = Ast.If (cond, body, [])
let while_ cond body = Ast.While (cond, body)
let break_ = Ast.Break
let call dst f args = Ast.Call (Some dst, f, args)
let call_ f args = Ast.Call (None, f, args)
let ret expr = Ast.Return (Some expr)
let ret_none = Ast.Return None
let havoc dst ~input ~hash = Ast.Havoc (dst, input, hash)
let func name params body = { Ast.name; params; body }

let program ~name ~entry ?(regions = []) ?(heap_bytes = 64 * 1024 * 1024)
    functions =
  { Ast.name; entry; functions; regions; heap_bytes }
