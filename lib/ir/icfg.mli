(** Interprocedural control-flow graph extraction.

    The ICFG augments each function's flat CFG with call edges; it is the
    structure over which potential costs are annotated during pre-processing
    (§3.4).  NFIR forbids recursion — the call graph must be a DAG — which
    {!make} verifies. *)

type t

val make : Cfg.t -> t
(** @raise Invalid_argument if the call graph is recursive or a called
    function is undefined. *)

val program : t -> Cfg.t

val callees : t -> string -> string list
(** Functions directly called from [f] (deduplicated). *)

val topo_order : t -> string list
(** All function names, callees before callers; the entry function is
    last. *)

val node_count : t -> int
(** Number of ICFG nodes (= instructions). *)
