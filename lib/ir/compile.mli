(** A closure-compiling NFIR executor.

    Compiles each function once — variables resolved to integer slots,
    expressions to nested closures — and then runs packets without any
    per-instruction dispatch on syntax.  Semantically identical to
    {!Interp} (a differential qcheck property in the test suite), several
    times faster; the testbed DUT replays millions of packets through it.

    In [Superblock] mode (the default), maximal straight-line runs of
    statically-weighted instructions (chained through unconditional jumps)
    are additionally fused into single closures that charge the run's
    retirement weight once.  Outcomes, memory effects, hook-access
    sequences, budget-exhaustion points and — when the profiler is live —
    per-instruction attribution are all bit-identical to [Instr] mode,
    which executes one closure per instruction.

    Restrictions match {!Interp}: concrete values only, budget-guarded. *)

type t

type mode = Instr | Superblock

val set_default_mode : mode -> unit
(** Process-wide default for {!program} calls that don't pass [?mode]
    (set once at startup by the CLI's [--compile-mode]). *)

val default_mode : unit -> mode

val mode_to_string : mode -> string
(** ["instr"] / ["superblock"] — the manifest/CLI spelling. *)

val mode_of_string : string -> mode option

val program : ?mode:mode -> Cfg.t -> t
(** Compile all functions; [mode] defaults to {!default_mode}. *)

type fn
(** A resolved compiled function: look it up once, call it per packet
    without the per-call table probe. *)

val lookup : t -> string -> fn
(** @raise Invalid_argument on an unknown function name. *)

val call_fn :
  fn ->
  mem:int Memory.t ref ->
  hooks:Interp.hooks ->
  ?budget:int ->
  int array ->
  Interp.outcome
(** Same contract as {!call}, minus the name resolution and argument-list
    conversion.
    @raise Interp.Budget_exhausted when the instruction bound is hit. *)

val call_fn_flat :
  fn ->
  fmem:Memory.Flat.t ->
  hooks:Interp.hooks ->
  ?budget:int ->
  int array ->
  Interp.outcome
(** {!call_fn} against a {!Memory.Flat} store — the replay hot path: no
    per-access map descent, no per-store allocation.  Reads and writes the
    same values as the persistent path; on raise (budget exhaustion),
    partial writes stay in [fmem] instead of rolling back.
    @raise Interp.Budget_exhausted when the instruction bound is hit. *)

val call :
  t ->
  mem:int Memory.t ref ->
  hooks:Interp.hooks ->
  ?budget:int ->
  string ->
  int list ->
  Interp.outcome
(** Same contract as {!Interp.call}.
    @raise Interp.Budget_exhausted when the instruction bound is hit. *)
