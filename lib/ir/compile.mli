(** A closure-compiling NFIR executor.

    Compiles each function once — variables resolved to integer slots,
    expressions to nested closures — and then runs packets without any
    per-instruction dispatch on syntax.  Semantically identical to
    {!Interp} (a differential qcheck property in the test suite), several
    times faster; the testbed DUT replays millions of packets through it.

    Restrictions match {!Interp}: concrete values only, budget-guarded. *)

type t

val program : Cfg.t -> t
(** Compile all functions. *)

val call :
  t ->
  mem:int Memory.t ref ->
  hooks:Interp.hooks ->
  ?budget:int ->
  string ->
  int list ->
  Interp.outcome
(** Same contract as {!Interp.call}.
    @raise Interp.Budget_exhausted when the instruction bound is hit. *)
