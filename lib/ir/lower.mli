(** Lowering structured NFIR ({!Ast}) to the flat instruction form ({!Cfg}).

    [While] heads become [Branch] instructions flagged [loop_head]; [Break]
    becomes a [Jump] to the loop exit.  The translation is
    straight-line-faithful: one flat instruction per structured statement
    (plus explicit jumps), so instruction counts of lowered code are
    comparable to compiler output. *)

val func : Ast.fdef -> Cfg.func
val program : Ast.program -> Cfg.t
