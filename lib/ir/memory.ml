module Imap = Map.Make (Int)

type region = {
  name : string;
  base : int;
  elem_width : int;
  count : int;
  init : int -> int;
}

let region_size r = r.elem_width * r.count
let region_end r = r.base + region_size r

type spec = {
  s_name : string;
  s_elem_width : int;
  s_count : int;
  s_init : int -> int;
}

let array_spec ~name ~elem_width ~count ?(init = fun _ -> 0) () =
  assert (elem_width = 1 || elem_width = 2 || elem_width = 4 || elem_width = 8);
  assert (count > 0);
  { s_name = name; s_elem_width = elem_width; s_count = count; s_init = init }

type 'v t = {
  regions : region array;  (* sorted by base *)
  overlay : 'v Imap.t;
  inject : int -> 'v;
  heap_base : int;
  heap_next : int;
  heap_end : int;
}

let start_address = 0x4000_0000 (* 1 GiB *)
let page = 4096

let round_up v align = (v + align - 1) / align * align

let layout regions =
  let next = ref start_address in
  List.map
    (fun spec ->
      let base = !next in
      let r =
        {
          name = spec.s_name;
          base;
          elem_width = spec.s_elem_width;
          count = spec.s_count;
          init = spec.s_init;
        }
      in
      next := round_up (region_end r) page;
      (spec.s_name, r))
    regions

let create ~regions ~heap_bytes ~inject =
  let placed = List.map snd (layout regions) in
  let heap_base =
    match List.rev placed with
    | [] -> start_address
    | last :: _ -> round_up (region_end last) page
  in
  let heap =
    {
      name = "heap";
      base = heap_base;
      elem_width = 8;
      count = heap_bytes / 8;
      init = (fun _ -> 0);
    }
  in
  {
    regions = Array.of_list (placed @ [ heap ]);
    overlay = Imap.empty;
    inject;
    heap_base;
    heap_next = heap_base;
    heap_end = region_end heap;
  }

let regions t = Array.to_list t.regions

let find_region_opt t addr =
  let n = Array.length t.regions in
  let lo = ref 0 and hi = ref (n - 1) in
  let found = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let r = t.regions.(mid) in
    if addr < r.base then hi := mid - 1
    else if addr >= region_end r then lo := mid + 1
    else begin
      found := Some r;
      lo := !hi + 1
    end
  done;
  !found

let find_region t addr =
  match find_region_opt t addr with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Memory.find_region: 0x%x out of bounds" addr)

let region_named t name =
  match Array.to_list t.regions |> List.find_opt (fun r -> r.name = name) with
  | Some r -> r
  | None -> raise Not_found

let check_access r addr width =
  if width <> r.elem_width then
    Error
      (Printf.sprintf "Memory: %d-byte access in region %s (elem width %d)"
         width r.name r.elem_width)
  else if (addr - r.base) mod r.elem_width <> 0 then
    Error (Printf.sprintf "Memory: misaligned access 0x%x in region %s" addr r.name)
  else Ok r

let locate t addr width =
  match find_region_opt t addr with
  | None -> Error (Printf.sprintf "Memory: 0x%x out of bounds" addr)
  | Some r -> check_access r addr width

let try_read t ~addr ~width =
  match locate t addr width with
  | Error _ as e -> e
  | Ok r -> (
      match Imap.find_opt addr t.overlay with
      | Some v -> Ok v
      | None -> Ok (t.inject (r.init ((addr - r.base) / r.elem_width))))

let try_write t ~addr ~width v =
  match locate t addr width with
  | Error _ as e -> e
  | Ok _ -> Ok { t with overlay = Imap.add addr v t.overlay }

let read t ~addr ~width =
  let r = find_region t addr in
  (* find_region already raised on out-of-bounds; surface access errors *)
  match check_access r addr width with
  | Error msg -> invalid_arg msg
  | Ok r -> (
      match Imap.find_opt addr t.overlay with
      | Some v -> v
      | None -> t.inject (r.init ((addr - r.base) / r.elem_width)))

let write t ~addr ~width v =
  let r = find_region t addr in
  match check_access r addr width with
  | Error msg -> invalid_arg msg
  | Ok _ -> { t with overlay = Imap.add addr v t.overlay }

let try_alloc t ~bytes =
  let bytes = round_up (max bytes 1) 64 in
  if t.heap_next + bytes > t.heap_end then
    Error
      (Printf.sprintf "Memory.alloc: heap exhausted (%d used of %d bytes)"
         (t.heap_next - t.heap_base)
         (t.heap_end - t.heap_base))
  else Ok ({ t with heap_next = t.heap_next + bytes }, t.heap_next)

let alloc t ~bytes =
  match try_alloc t ~bytes with
  | Ok r -> r
  | Error _ -> invalid_arg "Memory.alloc: heap exhausted"

let heap_used t = t.heap_next - t.heap_base
let written_cells t = Imap.cardinal t.overlay

(* ------------------------------------------------------------------ *)
(* Flat concrete store                                                  *)
(* ------------------------------------------------------------------ *)

type 'v mem = 'v t

module Flat = struct
  (* Written cells live in a per-region mutable store; untouched cells
     still read through the region's lazy initializer, so a gigabyte-scale
     direct-lookup table stays unmaterialized exactly as in the persistent
     overlay.  Small regions (the heap, counters, hash-table buckets — the
     write-hot ones) get a dense value array plus a written bitmap: O(1)
     access, no allocation after creation.  Huge regions get a hashtable
     keyed by element index, so a single scattered write never materializes
     anything around it. *)
  let dense_max = 1 lsl 18 (* elements; 2 MiB of values per region *)

  type store =
    | Dense of { values : int array; written : Bytes.t }
    | Sparse of (int, int) Hashtbl.t (* element index -> written value *)

  type fregion = { r : region; store : store }

  type t = {
    fregions : fregion array; (* sorted by base, heap included *)
    inject : int -> int;
    mutable heap_next : int;
    heap_base : int;
    heap_end : int;
  }

  let of_memory (m : int mem) =
    let fregions =
      Array.map
        (fun r ->
          let store =
            if r.count <= dense_max then
              Dense
                {
                  values = Array.make r.count 0;
                  written = Bytes.make ((r.count + 7) / 8) '\000';
                }
            else Sparse (Hashtbl.create 64)
          in
          { r; store })
        m.regions
    in
    let t =
      {
        fregions;
        inject = m.inject;
        heap_next = m.heap_next;
        heap_base = m.heap_base;
        heap_end = m.heap_end;
      }
    in
    (t, Imap.bindings m.overlay)

  let find t addr =
    let n = Array.length t.fregions in
    let lo = ref 0 and hi = ref (n - 1) in
    let found = ref None in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let fr = Array.unsafe_get t.fregions mid in
      if addr < fr.r.base then hi := mid - 1
      else if addr >= region_end fr.r then lo := mid + 1
      else begin
        found := Some fr;
        lo := !hi + 1
      end
    done;
    match !found with
    | Some fr -> fr
    | None ->
        invalid_arg
          (Printf.sprintf "Memory.find_region: 0x%x out of bounds" addr)

  let checked_index fr addr width =
    if width <> fr.r.elem_width then
      invalid_arg
        (Printf.sprintf "Memory: %d-byte access in region %s (elem width %d)"
           width fr.r.name fr.r.elem_width)
    else if (addr - fr.r.base) mod fr.r.elem_width <> 0 then
      invalid_arg
        (Printf.sprintf "Memory: misaligned access 0x%x in region %s" addr
           fr.r.name)
    else (addr - fr.r.base) / fr.r.elem_width

  let read t ~addr ~width =
    let fr = find t addr in
    let idx = checked_index fr addr width in
    match fr.store with
    | Dense { values; written } ->
        if
          Char.code (Bytes.unsafe_get written (idx lsr 3))
          land (1 lsl (idx land 7))
          <> 0
        then Array.unsafe_get values idx
        else t.inject (fr.r.init idx)
    | Sparse h -> (
        match Hashtbl.find_opt h idx with
        | Some v -> v
        | None -> t.inject (fr.r.init idx))

  let write t ~addr ~width v =
    let fr = find t addr in
    let idx = checked_index fr addr width in
    match fr.store with
    | Dense { values; written } ->
        Array.unsafe_set values idx v;
        let byte = idx lsr 3 in
        Bytes.unsafe_set written byte
          (Char.unsafe_chr
             (Char.code (Bytes.unsafe_get written byte) lor (1 lsl (idx land 7))))
    | Sparse h -> Hashtbl.replace h idx v

  let alloc t ~bytes =
    let bytes = round_up (max bytes 1) 64 in
    if t.heap_next + bytes > t.heap_end then
      invalid_arg "Memory.alloc: heap exhausted"
    else begin
      let base = t.heap_next in
      t.heap_next <- t.heap_next + bytes;
      base
    end

  let heap_used t = t.heap_next - t.heap_base
end

let flat_of_memory m =
  let t, overlay = Flat.of_memory m in
  List.iter
    (fun (addr, v) ->
      let fr = Flat.find t addr in
      Flat.write t ~addr ~width:fr.Flat.r.elem_width v)
    overlay;
  t
