type hooks = {
  on_access : addr:int -> width:int -> write:bool -> unit;
  hash_apply : string -> int -> int;
  hash_weight : string -> int;
}

let no_hooks =
  {
    on_access = (fun ~addr:_ ~width:_ ~write:_ -> ());
    hash_apply = (fun name _ -> invalid_arg ("Interp: unknown hash " ^ name));
    hash_weight = (fun _ -> 0);
  }

type outcome = { ret : int; instrs : int; loads : int; stores : int }

exception Budget_exhausted

type frame = {
  func : Cfg.func;
  env : (string, int) Hashtbl.t;
  ret_to : string option;  (* caller variable receiving the return value *)
}

let eval_expr env e =
  let leaf name =
    match Hashtbl.find_opt env name with
    | Some value -> value
    | None -> invalid_arg ("Interp: undefined variable " ^ name)
  in
  Expr.eval ~leaf e

let new_frame (f : Cfg.func) args ret_to =
  if List.length args <> List.length f.params then
    invalid_arg ("Interp: arity mismatch calling " ^ f.fname);
  let env = Hashtbl.create 16 in
  List.iter2 (fun param arg -> Hashtbl.replace env param arg) f.params args;
  { func = f; env; ret_to }

let call program ~mem ~hooks ?(budget = 10_000_000) fname args =
  let f = Cfg.func program fname in
  let instrs = ref 0 and loads = ref 0 and stores = ref 0 in
  let spend n =
    instrs := !instrs + n;
    if !instrs > budget then raise Budget_exhausted
  in
  (* The stack holds suspended callers; [frame]/[pc] are the running ones. *)
  let rec exec stack frame pc =
    let instr = frame.func.body.(pc) in
    let w = Cfg.weight instr in
    if Obs.Profile.enabled () then begin
      Obs.Profile.enter ~func:frame.func.Cfg.fname ~pc;
      Obs.Profile.add_retire ~weight:w
    end;
    spend w;
    match instr with
    | Cfg.Assign (x, e) ->
        Hashtbl.replace frame.env x (eval_expr frame.env e);
        exec stack frame (pc + 1)
    | Cfg.Load { dst; addr; width } ->
        let a = eval_expr frame.env addr in
        hooks.on_access ~addr:a ~width ~write:false;
        incr loads;
        Hashtbl.replace frame.env dst (Memory.read !mem ~addr:a ~width);
        exec stack frame (pc + 1)
    | Cfg.Store { addr; value; width } ->
        let a = eval_expr frame.env addr in
        let value = eval_expr frame.env value in
        hooks.on_access ~addr:a ~width ~write:true;
        incr stores;
        mem := Memory.write !mem ~addr:a ~width value;
        exec stack frame (pc + 1)
    | Cfg.Alloc { dst; bytes } ->
        let mem', base = Memory.alloc !mem ~bytes in
        mem := mem';
        Hashtbl.replace frame.env dst base;
        exec stack frame (pc + 1)
    | Cfg.Branch { cond; if_true; if_false; loop_head = _ } ->
        let target =
          if eval_expr frame.env cond <> 0 then if_true else if_false
        in
        exec stack frame target
    | Cfg.Jump target -> exec stack frame target
    | Cfg.Call { dst; func; args } ->
        let callee = Cfg.func program func in
        let arg_values = List.map (eval_expr frame.env) args in
        let callee_frame = new_frame callee arg_values dst in
        exec ((frame, pc + 1) :: stack) callee_frame 0
    | Cfg.Return e -> (
        let value = match e with Some e -> eval_expr frame.env e | None -> 0 in
        match stack with
        | [] -> value
        | (caller, resume_pc) :: rest ->
            (match frame.ret_to with
            | Some x -> Hashtbl.replace caller.env x value
            | None -> ());
            exec rest caller resume_pc)
    | Cfg.Havoc { dst; input; hash } ->
        let input_value = eval_expr frame.env input in
        let hw = hooks.hash_weight hash in
        if Obs.Profile.enabled () then Obs.Profile.add_retire ~weight:hw;
        spend hw;
        Hashtbl.replace frame.env dst (hooks.hash_apply hash input_value);
        exec stack frame (pc + 1)
  in
  let ret = exec [] (new_frame f args None) 0 in
  { ret; instrs = !instrs; loads = !loads; stores = !stores }
