(* The measurement campaign of §5: every figure and table, the ablation and
   discussion studies (see Castan.Harness for the registry), and a Bechamel
   micro-benchmark per table.

     dune exec bench/main.exe                 -- everything (default scale)
     dune exec bench/main.exe -- -e fig4      -- one experiment
     dune exec bench/main.exe -- --quick      -- scaled-down smoke run
     dune exec bench/main.exe -- --full       -- paper-scale workloads
     dune exec bench/main.exe -- --micro      -- Bechamel micro-benchmarks
     dune exec bench/main.exe -- --json r.json -- machine-readable results *)

let experiment_config = ref Castan.Experiment.default_config
let selected : string list ref = ref []
let run_micro = ref false
let json_out : string option ref = ref None
let jobs = ref 0 (* 0 = unset: resolve to the recommended domain count *)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: the inner operation behind each table     *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let geom = Cache.Geometry.xeon_e5_2667v2 in
  (* tables 1-3 hinge on DUT packet processing and the cache simulator *)
  let dut = Testbed.Dut.create (Nf.Registry.find "lpm-btrie") in
  let rng = Util.Rng.create 3 in
  let pkt = Testbed.Traffic.random_packet rng in
  let hier = Cache.Hierarchy.create geom in
  let counter = ref 0 in
  (* table 4 hinges on symbolic stepping + solving *)
  let sat_instance =
    let dst : Ir.Expr.sexpr = Leaf (Ir.Expr.Pkt { pkt = 0; field = Dst_ip }) in
    [
      Ir.Expr.Cmp (Eq, Binop (Rem, dst, Const 4096), Const 77);
      Ir.Expr.Cmp (Lt, Const 1000, dst);
    ]
  in
  [
    Test.make ~name:"table1-3:dut-process-lpm-btrie"
      (Staged.stage (fun () -> ignore (Testbed.Dut.process dut pkt)));
    Test.make ~name:"table1-3:cache-hierarchy-access"
      (Staged.stage (fun () ->
           incr counter;
           ignore (Cache.Hierarchy.access hier (!counter * 8192 land 0xFFFFFFF))));
    Test.make ~name:"table4:solver-sat"
      (Staged.stage (fun () -> ignore (Solver.Solve.sat sat_instance)));
    Test.make ~name:"table4:hash-flow16"
      (Staged.stage (fun () ->
           incr counter;
           ignore (Hashrev.Hashes.flow16.apply !counter)));
    Test.make ~name:"table5:zipf-sample"
      (let z = Util.Zipf.create ~s:1.26 ~n:6674 in
       let zr = Util.Rng.create 4 in
       Staged.stage (fun () -> ignore (Util.Zipf.sample z zr)));
  ]

let run_micro_benchmarks () =
  let open Bechamel in
  Printf.printf "\n== micro-benchmarks (Bechamel) ==\n";
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let tests = micro_tests () in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances
          (Test.make_grouped ~name:"g" ~fmt:"%s %s" [ test ])
      in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-40s %10.1f ns/op\n" name est
          | _ -> Printf.printf "  %-40s (no estimate)\n" name)
        ols)
    tests

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse = function
    | [] -> ()
    | "-e" :: id :: rest ->
        selected := !selected @ [ id ];
        parse rest
    | "--quick" :: rest ->
        experiment_config := Castan.Experiment.quick_config;
        parse rest
    | "--full" :: rest ->
        experiment_config :=
          { !experiment_config with scale = `Paper; samples = 40_000 };
        parse rest
    | "--micro" :: rest ->
        run_micro := true;
        parse rest
    | "--json" :: path :: rest ->
        json_out := Some path;
        parse rest
    | "--no-solver-cache" :: rest ->
        Solver.Qcache.set_enabled false;
        parse rest
    | "--fail-fast" :: rest ->
        Util.Resilience.set_fail_fast true;
        parse rest
    | "--inject-faults" :: spec :: rest -> (
        match String.split_on_char ':' spec with
        | [ rate; seed ] -> (
            match (float_of_string_opt rate, int_of_string_opt seed) with
            | Some rate, Some seed when rate >= 0.0 && rate <= 1.0 ->
                Util.Resilience.set_injection
                  (Some (Util.Resilience.inject ~rate ~seed));
                parse rest
            | _ ->
                Printf.eprintf "--inject-faults expects RATE:SEED, got %s\n"
                  spec;
                exit 2)
        | _ ->
            Printf.eprintf "--inject-faults expects RATE:SEED, got %s\n" spec;
            exit 2)
    | ("-j" | "--jobs") :: n :: rest -> (
        match int_of_string_opt n with
        | Some k when k >= 1 ->
            jobs := k;
            parse rest
        | _ ->
            Printf.eprintf "-j expects a positive integer, got %s\n" n;
            exit 2)
    | "--batch" :: n :: rest -> (
        match int_of_string_opt n with
        | Some k when k >= 1 ->
            Testbed.Dut.set_default_batch k;
            parse rest
        | _ ->
            Printf.eprintf "--batch expects a positive integer, got %s\n" n;
            exit 2)
    | "--compile-mode" :: m :: rest -> (
        match Ir.Compile.mode_of_string m with
        | Some mode ->
            Ir.Compile.set_default_mode mode;
            parse rest
        | None ->
            Printf.eprintf
              "--compile-mode expects instr or superblock, got %s\n" m;
            exit 2)
    | arg :: _ ->
        Printf.eprintf "unknown argument %s\nknown experiments: %s\n" arg
          (String.concat ", " Castan.Harness.ids);
        exit 2
  in
  parse args;
  Util.Pool.set_default_jobs
    (if !jobs <= 0 then Util.Pool.recommended_jobs () else !jobs);
  let ids = if !selected = [] then Castan.Harness.ids else !selected in
  if !run_micro then run_micro_benchmarks ()
  else begin
    Printf.printf "CASTAN evaluation harness (%s scale)\n%!"
      (match !experiment_config.scale with
      | `Quick -> "quick"
      | `Default -> "default"
      | `Paper -> "paper");
    if Option.is_some !json_out then Obs.Metrics.set_active true;
    (* With --json, snapshot the (cumulative) metrics after each experiment
       so the file attributes counter growth to the experiment that caused
       it. *)
    (* Parallel phase: populate the campaign memo on the pool first, so the
       serial per-experiment loop below (whose order the timings report
       depends on) mostly renders cached results. *)
    let prewarm_timed =
      match Castan.Harness.prewarm !experiment_config ids with
      | Some dt ->
          Printf.printf "[prewarm done in %.1fs]\n%!" dt;
          [ ("prewarm", dt, None) ]
      | None -> []
    in
    let timed =
      prewarm_timed
      @ List.map
          (fun id ->
            let seconds = Castan.Harness.run_id !experiment_config id in
            let metrics =
              if Option.is_some !json_out then Some (Obs.Metrics.snapshot ())
              else None
            in
            (id, seconds, metrics))
          ids
    in
    (match !json_out with
    | None -> ()
    | Some path ->
        (* A directory target gets a date-stamped file so repeated campaigns
           accumulate instead of overwriting; same-day reruns get a -2, -3,
           ... suffix. *)
        let path =
          if Sys.file_exists path && Sys.is_directory path then begin
            let tm = Unix.localtime (Unix.gettimeofday ()) in
            let stamp =
              Printf.sprintf "BENCH_%04d-%02d-%02d" (tm.Unix.tm_year + 1900)
                (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
            in
            let candidate = Filename.concat path (stamp ^ ".json") in
            if not (Sys.file_exists candidate) then candidate
            else begin
              let k = ref 2 in
              while
                Sys.file_exists
                  (Filename.concat path (Printf.sprintf "%s-%d.json" stamp !k))
              do
                incr k
              done;
              Filename.concat path (Printf.sprintf "%s-%d.json" stamp !k)
            end
          end
          else path
        in
        (* Schema 3: every per-experiment entry carries the full run
           identity (git, config digest, seed, jobs, injection signature),
           not just the top-level manifest — lab-ledger ingestion must
           never have to guess an entry's provenance, even if entries are
           ever spliced across files. *)
        let identity_json =
          Castan.Manifest.identity_json
            (Castan.Manifest.current_identity ~config:!experiment_config ())
        in
        let manifest =
          Castan.Manifest.make ~ids ~config:!experiment_config
            ~extra:
              [
                ("schema_version", Obs.Json.Int 3);
                ( "experiments_timed",
                  Obs.Json.List
                    (List.map
                       (fun (id, seconds, metrics) ->
                         Obs.Json.Obj
                           ([
                              ("id", Obs.Json.Str id);
                              ("seconds", Obs.Json.Float seconds);
                              ("identity", identity_json);
                            ]
                           @
                           match metrics with
                           | Some m -> [ ("metrics", m) ]
                           | None -> []))
                       timed) );
              ]
            ()
        in
        Castan.Manifest.write ~path manifest;
        Printf.printf "wrote %s\n%!" path);
    (* Same contract as `castan experiment`: contained failures degrade the
       run (after the results file is written) instead of hiding in the
       transcript. *)
    let failures = Util.Resilience.recorded () in
    if failures <> [] then begin
      Castan.Report.print_failure_summary failures;
      Printf.printf "completed degraded: %d contained failure(s)\n%!"
        (List.length failures);
      exit 2
    end
  end
