(* The castan command-line tool.

   Subcommands mirror the workflow of the paper's artifact:
     castan list                      -- the 11 evaluation NFs
     castan analyze <nf> -o out.pcap  -- synthesize an adversarial workload
     castan probe-cache               -- reverse-engineer contention sets
     castan replay <nf> <pcap>        -- measure a workload on the testbed
     castan experiment <id>           -- regenerate a table/figure
     castan lab <ingest|report|diff>  -- run ledger + regression triage *)

open Cmdliner

let nf_arg =
  let doc = "Network function name (see `castan list')." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"NF" ~doc)

(* ---------------- telemetry plumbing ---------------- *)

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Stream hierarchical spans as Chrome trace_event JSON objects, \
               one per line, to FILE (wrap in [...] or `jq -s .' to load in \
               chrome://tracing or Perfetto).  FILE `-' prints an aggregate \
               per-span summary to stderr at exit instead.")

let metrics_arg =
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
         ~doc:"Write a run manifest (tool/git revision, configuration, and \
               the final metrics snapshot: counters, gauges, latency \
               histograms) as JSON to FILE at exit.")

let log_level_arg =
  let level_conv =
    Arg.enum
      [ ("quiet", Obs.Log.Quiet); ("info", Obs.Log.Info); ("debug", Obs.Log.Debug) ]
  in
  Arg.(value & opt level_conv Obs.Log.Quiet & info [ "log-level" ] ~docv:"LEVEL"
         ~doc:"Diagnostic verbosity on stderr: $(b,quiet) (default, output \
               identical to an un-instrumented run), $(b,info) or \
               $(b,debug).")

let no_solver_cache_arg =
  Arg.(value & flag & info [ "no-solver-cache" ]
         ~doc:"Disable the solver query-optimization layer (independent-\
               constraint slicing + canonicalized query cache): every \
               feasibility check goes straight to the solver with the full \
               path condition.  Analysis results are identical either way; \
               the flag exists for performance comparison and for pinning \
               that equivalence in CI.")

let jobs_arg =
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Worker domains for parallel sections (per-NF campaigns, \
               per-workload measurements, rainbow-table shards).  Output is \
               bit-identical for every N; $(b,-j 1) runs the exact serial \
               code path.  Default: the machine's recommended domain \
               count.")

(* 0 = unset sentinel: the default must be computed, not baked into the
   manpage. *)
let set_jobs j =
  Util.Pool.set_default_jobs
    (if j <= 0 then Util.Pool.recommended_jobs () else j)

let batch_arg =
  Arg.(value & opt int 0 & info [ "batch" ] ~docv:"N"
         ~doc:"Replay burst size: packets pushed through the DUT per burst \
               (DPDK-style).  Output is bit-identical for every N; the flag \
               only moves wall time.  0 (default) keeps the process default \
               of 32.")

let compile_mode_arg =
  Arg.(value & opt (some string) None & info [ "compile-mode" ] ~docv:"MODE"
         ~doc:"NFIR execution engine: $(b,superblock) (default; fuses \
               straight-line runs into single closures) or $(b,instr) (one \
               closure per instruction).  Samples, metrics and profiles are \
               bit-identical across modes; the flag exists for performance \
               comparison and for pinning that equivalence in CI.")

let set_replay batch compile_mode =
  if batch > 0 then Testbed.Dut.set_default_batch batch;
  match compile_mode with
  | None -> ()
  | Some s -> (
      match Ir.Compile.mode_of_string s with
      | Some m -> Ir.Compile.set_default_mode m
      | None ->
          Printf.eprintf
            "castan: unknown compile mode %s (expected instr or superblock)\n%!"
            s;
          exit 1)

let max_states_arg =
  Arg.(value & opt int 0 & info [ "max-states" ] ~docv:"N"
         ~doc:"Resource watchdog: cap the symbex pending-state queue at N \
               states; the deepest states beyond the cap are killed \
               (kill reason $(b,watchdog-states)) and the run is reported \
               degraded (exit code 2) instead of exhausting memory.  0 \
               (default) disables the cap.")

let mem_budget_arg =
  Arg.(value & opt int 0 & info [ "mem-budget-mb" ] ~docv:"MB"
         ~doc:"Resource watchdog: when the major heap exceeds MB megabytes \
               during exploration, kill the deeper half of the pending \
               states ($(b,watchdog-memory)) and compact, rather than \
               dying to the OOM killer.  0 (default) disables the budget.")

(* A caught SIGINT/SIGTERM becomes a clean [exit], so the [at_exit]
   telemetry/manifest/journal flushes run and a half-written run is
   resumable.  Conventional 128+signo codes. *)
let install_signal_handlers () =
  let clean code _ = exit code in
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle (clean 130))
   with Invalid_argument _ | Sys_error _ -> ());
  try Sys.set_signal Sys.sigterm (Sys.Signal_handle (clean 143))
  with Invalid_argument _ | Sys_error _ -> ()

(* Sinks are installed before the run; the manifest (which snapshots the
   metrics) is written and the trace sink closed from [at_exit], so the
   telemetry files are complete even on degraded (exit 2) runs. *)
let install_telemetry ~trace ~metrics ~log_level ~manifest =
  Obs.Log.set_level log_level;
  (match trace with
  | Some "-" -> Obs.Trace.set_sink (Obs.Sink.stderr_summary ())
  | Some path -> Obs.Trace.set_sink (Obs.Sink.file path)
  | None -> ());
  if Option.is_some metrics then Obs.Metrics.set_active true;
  if Option.is_some trace || Option.is_some metrics then
    at_exit (fun () ->
        (match metrics with
        | Some path ->
            Castan.Manifest.write ~path (manifest ());
            Obs.Log.info "wrote metrics manifest %s" path
        | None -> ());
        Obs.Trace.close ())

(* ---------------- list ---------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun name ->
        let nf = Nf.Registry.find name in
        Printf.printf "%-22s %s\n" name nf.Nf.Nf_def.descr)
      Nf.Registry.names
  in
  Cmd.v (Cmd.info "list" ~doc:"List the evaluation network functions")
    Term.(const run $ const ())

(* ---------------- analyze ---------------- *)

let analyze_cmd =
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the synthesized workload as a PCAP file.")
  in
  let packets =
    Arg.(value & opt (some int) None & info [ "n"; "packets" ] ~docv:"N"
           ~doc:"Number of packets to synthesize (default: the paper's size).")
  in
  let budget =
    Arg.(value & opt float 20.0 & info [ "t"; "time-budget" ] ~docv:"SECONDS"
           ~doc:"Symbolic-execution time budget.")
  in
  let no_contention =
    Arg.(value & flag & info [ "no-cache-model" ]
           ~doc:"Skip contention-set discovery (baseline cache model).")
  in
  let cache_model_file =
    Arg.(value & opt (some string) None & info [ "cache-model" ] ~docv:"FILE"
           ~doc:"Load contention sets saved by `probe-cache -o' instead of                  re-discovering them.")
  in
  let ktest =
    Arg.(value & opt (some string) None & info [ "ktest" ] ~docv:"PREFIX"
           ~doc:"Also write PREFIX.ktest and PREFIX.metrics (the analysis \
                 outputs of the paper's §4).")
  in
  let run name output packets budget no_contention cache_model_file ktest
      max_states mem_budget_mb no_solver_cache jobs trace metrics log_level =
    if no_solver_cache then Solver.Qcache.set_enabled false;
    set_jobs jobs;
    install_telemetry ~trace ~metrics ~log_level ~manifest:(fun () ->
        Castan.Manifest.make ~extra:[ ("nf", Obs.Json.Str name) ] ());
    let nf = Nf.Registry.find name in
    let cache =
      match cache_model_file with
      | Some path -> (
          match Cache.Contention.load_result path with
          | Ok sets -> Castan.Analyze.Contention_sets sets
          | Error reason ->
              Printf.eprintf "castan: cannot load cache model: %s\n%!" reason;
              exit 1)
      | None ->
          if no_contention then Castan.Analyze.Baseline
          else
            Castan.Analyze.Contention_sets
              (Castan.Analyze.discover_contention_sets ())
    in
    let config =
      {
        (Castan.Analyze.default_config ~cache ()) with
        n_packets = packets;
        time_budget = budget;
        max_states;
        mem_budget_mb;
      }
    in
    let o =
      Obs.Trace.with_span "run"
        ~args:[ ("nf", Obs.Json.Str name) ]
        (fun () -> Castan.Analyze.run ~config nf)
    in
    Printf.printf
      "%s: %d packets, predicted %d cycles total, %d/%d havocs reconciled, \
       %d states explored in %.1fs\n"
      name
      (Testbed.Workload.length o.Castan.Analyze.workload)
      o.Castan.Analyze.predicted_cost o.Castan.Analyze.reconciled
      o.Castan.Analyze.n_havocs o.Castan.Analyze.stats.Symbex.Driver.explored
      o.Castan.Analyze.analysis_time;
    List.iteri
      (fun k (m : Symbex.State.metrics) ->
        Printf.printf "  pkt %2d predicted: %s\n" k
          (Format.asprintf "%a" Symbex.State.pp_metrics m))
      o.Castan.Analyze.predicted;
    Array.iter
      (fun p -> Printf.printf "  %s\n" (Nf.Packet.to_string p))
      o.Castan.Analyze.workload.Testbed.Workload.packets;
    (match output with
    | Some path ->
        Testbed.Workload.save_pcap o.Castan.Analyze.workload path;
        Printf.printf "wrote %s\n" path
    | None -> ());
    (match ktest with
    | Some prefix ->
        List.iter (Printf.printf "wrote %s\n") (Castan.Ktest.write ~prefix o)
    | None -> ());
    (* Degraded, not failed: all artifacts above are written first.  The
       watchdog never aborts an analysis — it prunes states and the run
       completes — so the only signal left is the exit code. *)
    let wd = Symbex.Driver.watchdog_kill_total () in
    if wd > 0 then begin
      Printf.printf
        "completed degraded: resource watchdog killed %d state(s)\n%!" wd;
      exit 2
    end
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Synthesize an adversarial workload for an NF")
    Term.(
      const run $ nf_arg $ output $ packets $ budget $ no_contention
      $ cache_model_file $ ktest $ max_states_arg $ mem_budget_arg
      $ no_solver_cache_arg $ jobs_arg $ trace_arg $ metrics_arg
      $ log_level_arg)

(* ---------------- profile ---------------- *)

let profile_cmd =
  let nf_name =
    Arg.(required & opt (some string) None & info [ "nf" ] ~docv:"NF"
           ~doc:"Network function to profile (a unique prefix of a `castan \
                 list' name is accepted, e.g. $(b,nat)).")
  in
  let workload =
    Arg.(value & opt (some string) None & info [ "workload" ] ~docv:"PCAP"
           ~doc:"Replay this workload instead of generated uniform-random \
                 traffic.")
  in
  let samples =
    Arg.(value & opt int 2_000 & info [ "samples" ] ~docv:"N"
           ~doc:"Packets to replay through the DUT.")
  in
  let analyze =
    Arg.(value & flag & info [ "analyze" ]
           ~doc:"Synthesize the workload with the full CASTAN analysis \
                 (profiled too, so symbolic exploration and solver time \
                 appear in the output) instead of generating generic \
                 traffic.")
  in
  let budget =
    Arg.(value & opt float 5.0 & info [ "t"; "time-budget" ] ~docv:"SECONDS"
           ~doc:"Symbolic-execution time budget for --analyze.")
  in
  let seed =
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED"
           ~doc:"Seed for the generated workload.")
  in
  let top =
    Arg.(value & opt int 20 & info [ "top" ] ~docv:"N"
           ~doc:"Rows in the hot-block table.")
  in
  let collapsed =
    Arg.(value & opt (some string) None & info [ "collapsed" ] ~docv:"FILE"
           ~doc:"Write flamegraph-collapsed stacks (`nf;func;blkN cycles' \
                 lines) to FILE; feed to flamegraph.pl or speedscope.")
  in
  let profile_json =
    Arg.(value & opt (some string) None & info [ "profile-json" ] ~docv:"FILE"
           ~doc:"Write the per-block profile as JSON to FILE.")
  in
  (* Exact name, else unique-or-first prefix match, so `--nf nat' works. *)
  let resolve name =
    if List.mem name Nf.Registry.names then name
    else
      let matches =
        List.filter
          (fun n ->
            String.length n >= String.length name
            && String.sub n 0 (String.length name) = name)
          Nf.Registry.names
      in
      match matches with
      | [] ->
          Printf.eprintf "castan: unknown NF %s (known: %s)\n%!" name
            (String.concat ", " Nf.Registry.names);
          exit 1
      | [ one ] -> one
      | first :: _ ->
          Printf.printf "note: %s matches %s; profiling %s\n" name
            (String.concat ", " matches) first;
          first
  in
  let run name workload samples analyze budget seed top collapsed profile_json
      no_solver_cache jobs batch compile_mode trace metrics log_level =
    if no_solver_cache then Solver.Qcache.set_enabled false;
    set_jobs jobs;
    set_replay batch compile_mode;
    let name = resolve name in
    install_telemetry ~trace ~metrics ~log_level ~manifest:(fun () ->
        Castan.Manifest.make ~extra:[ ("nf", Obs.Json.Str name) ] ());
    let nf = Nf.Registry.find name in
    Obs.Profile.reset ();
    Obs.Profile.set_enabled true;
    let w =
      match workload with
      | Some path -> Testbed.Workload.load_pcap ~name:path path
      | None ->
          if analyze then begin
            let config =
              { (Castan.Analyze.default_config
                   ~cache:
                     (Castan.Analyze.Contention_sets
                        (Castan.Analyze.discover_contention_sets ()))
                   ())
                with time_budget = budget; seed }
            in
            (Castan.Analyze.run ~config nf).Castan.Analyze.workload
          end
          else
            Testbed.Workload.shape nf.Nf.Nf_def.shape
              (Testbed.Traffic.unirand ~scale:`Quick ~seed ())
    in
    let dut = Testbed.Dut.create nf in
    ignore (Testbed.Dut.replay dut w ~samples : Testbed.Dut.sample array);
    Obs.Profile.set_enabled false;
    let program = nf.Nf.Nf_def.program in
    Printf.printf "%s x %s: %d packets replayed %d times\n" name
      w.Testbed.Workload.name
      (Testbed.Workload.length w)
      samples;
    print_string (Castan.Profile_report.table ~nf:name ~top program);
    List.iter
      (fun (bucket, dt) -> Printf.printf "  %-8s %.3f s\n" bucket dt)
      (Obs.Profile.timers ());
    (match collapsed with
    | Some path ->
        Util.Durable.write_string ~path
          (Castan.Profile_report.collapsed ~nf:name program);
        Printf.printf "wrote %s\n" path
    | None -> ());
    match profile_json with
    | Some path ->
        Util.Durable.write_string ~path
          (Obs.Json.to_string (Castan.Profile_report.to_json ~nf:name program)
          ^ "\n");
        Printf.printf "wrote %s\n" path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Attribute an NF's cycles to basic blocks (table, flamegraph, \
             JSON)")
    Term.(
      const run $ nf_name $ workload $ samples $ analyze $ budget $ seed $ top
      $ collapsed $ profile_json $ no_solver_cache_arg $ jobs_arg $ batch_arg
      $ compile_mode_arg $ trace_arg $ metrics_arg $ log_level_arg)

(* ---------------- probe-cache ---------------- *)

let probe_cmd =
  let pool =
    Arg.(value & opt int 256 & info [ "pool" ] ~docv:"N"
           ~doc:"Candidate addresses per 1GB page.")
  in
  let pages =
    Arg.(value & opt int 2 & info [ "pages" ] ~docv:"N" ~doc:"1GB pages probed.")
  in
  let reboots =
    Arg.(value & opt int 2 & info [ "reboots" ] ~docv:"N"
           ~doc:"Simulated reboots (fresh page placements).")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Persist the sets for later `analyze --cache-model FILE' runs.")
  in
  let run pool pages reboots output =
    let t0 = Unix.gettimeofday () in
    let sets =
      Castan.Analyze.discover_contention_sets ~pool ~pages ~reboots ()
    in
    Printf.printf "discovered %d consistent contention sets in %.1fs\n"
      sets.Cache.Contention.n_classes
      (Unix.gettimeofday () -. t0);
    (match output with
    | Some path ->
        Cache.Contention.save sets path;
        Printf.printf "wrote %s\n" path
    | None -> ());
    List.iter
      (fun (cls, members) ->
        Printf.printf "  set %2d: %d members, first offsets %s\n" cls
          (List.length members)
          (String.concat ", "
             (List.filteri (fun i _ -> i < 4) members
             |> List.map (Printf.sprintf "0x%x"))))
      (Cache.Contention.classes sets)
  in
  Cmd.v
    (Cmd.info "probe-cache"
       ~doc:"Reverse-engineer L3 contention sets on the simulated machine")
    Term.(const run $ pool $ pages $ reboots $ output)

(* ---------------- replay ---------------- *)

let replay_cmd =
  let pcap =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"PCAP"
           ~doc:"Workload to replay.")
  in
  let samples =
    Arg.(value & opt int 20_000 & info [ "samples" ] ~docv:"N"
           ~doc:"Packets to measure.")
  in
  let samples_out =
    Arg.(value & opt (some string) None & info [ "samples-out" ] ~docv:"FILE"
           ~doc:"Dump the raw per-packet samples (cycles, instrs, L3 misses, \
                 verdict — one line each) to FILE.  The dump is a pure \
                 function of the NF, workload and sample count: byte-\
                 identical for every $(b,--batch), $(b,--compile-mode) and \
                 $(b,-j), which is what the replay-smoke CI leg pins.")
  in
  let run name pcap samples jobs batch compile_mode samples_out trace metrics
      log_level =
    set_jobs jobs;
    set_replay batch compile_mode;
    let nf = Nf.Registry.find name in
    install_telemetry ~trace ~metrics ~log_level ~manifest:(fun () ->
        Castan.Manifest.make ~extra:[ ("nf", Obs.Json.Str name) ] ());
    let w = Testbed.Workload.load_pcap ~name:pcap pcap in
    let nop = Testbed.Tg.nop_baseline ~samples () in
    let m = Testbed.Tg.measure ~samples nf w in
    Printf.printf "%s x %s (%d packets, %d flows):\n" name pcap
      (Testbed.Workload.length w) (Testbed.Workload.flows w);
    Printf.printf "  median latency   %.0f ns (NOP %+.0f)\n"
      (Testbed.Tg.median_latency_ns m)
      (Testbed.Tg.deviation_from_nop_ns m ~nop);
    Printf.printf "  median instrs    %d /pkt\n" (Testbed.Tg.median_instrs m);
    Printf.printf "  median L3 misses %d /pkt\n" (Testbed.Tg.median_l3_misses m);
    Printf.printf "  max throughput   %.2f Mpps (<1%% loss)\n"
      (Testbed.Tg.max_throughput_mpps m);
    match samples_out with
    | Some path ->
        let buf = Buffer.create (Array.length m.Testbed.Tg.samples * 24) in
        Array.iter
          (fun (s : Testbed.Dut.sample) ->
            Buffer.add_string buf
              (Printf.sprintf "%d %d %d %d\n" s.cycles s.instrs s.l3_misses
                 s.ret))
          m.Testbed.Tg.samples;
        Util.Durable.write_string ~path (Buffer.contents buf);
        Printf.printf "wrote %s\n" path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Measure a PCAP workload against an NF on the testbed")
    Term.(
      const run $ nf_arg $ pcap $ samples $ jobs_arg $ batch_arg
      $ compile_mode_arg $ samples_out $ trace_arg $ metrics_arg
      $ log_level_arg)

(* ---------------- dump ---------------- *)

let dump_cmd =
  let costs_flag =
    Arg.(value & flag & info [ "costs" ]
           ~doc:"Also print the potential-cost annotation per instruction.")
  in
  let run name costs_flag =
    let nf = Nf.Registry.find name in
    let prog = nf.Nf.Nf_def.program in
    if not costs_flag then Format.printf "%a@." Ir.Cfg.pp prog
    else begin
      let annot =
        Symbex.Cost.annotate
          (Symbex.Costs.default Cache.Geometry.xeon_e5_2667v2)
          prog
      in
      let names = Hashtbl.fold (fun k _ acc -> k :: acc) prog.Ir.Cfg.funcs [] in
      List.iter
        (fun fname ->
          let f = Ir.Cfg.func prog fname in
          Format.printf "fn %s  (full cost %d cycles)@." fname
            (Symbex.Cost.full_cost annot fname);
          Array.iteri
            (fun pc instr ->
              Format.printf "  %3d: [%6d] %a@." pc
                (Symbex.Cost.to_return annot ~func:fname ~pc)
                Ir.Cfg.pp_instr instr)
            f.Ir.Cfg.body)
        (List.sort compare names)
    end
  in
  Cmd.v
    (Cmd.info "dump"
       ~doc:"Print an NF's NFIR listing (with --costs, its §3.4 annotation)")
    Term.(const run $ nf_arg $ costs_flag)

(* ---------------- lab ---------------- *)

let lab_cmd =
  let lab_dir_arg =
    Arg.(value & opt string "bench/lab" & info [ "lab" ] ~docv:"DIR"
           ~doc:"The lab directory holding the run ledger \
                 ($(b,DIR/ledger.jsonl)).")
  in
  let noise_gate_arg =
    Arg.(value & opt float 0.05 & info [ "noise" ] ~docv:"SECONDS"
           ~doc:"Noise floor: wall-time deltas at or under this are never \
                 regressions.")
  in
  let max_regress_arg =
    Arg.(value & opt float 20.0 & info [ "max-regress" ] ~docv:"PCT"
           ~doc:"Regression gate: flag experiments more than PCT percent \
                 slower (and above the noise floor).")
  in
  let load_or_die dir =
    match Castan.Lab.load ~dir with
    | Ok store -> store
    | Error e ->
        Printf.eprintf "castan lab: %s\n%!" e;
        exit 1
  in
  let find_or_die store selector =
    match Castan.Lab.find_run store selector with
    | Ok r -> r
    | Error e ->
        Printf.eprintf "castan lab: %s\n%!" e;
        exit 1
  in
  let ingest_cmd =
    let paths =
      Arg.(non_empty & pos_all string [] & info [] ~docv:"PATH"
             ~doc:"Artifacts to ingest: bench manifests ($(b,bench --json)), \
                   run manifests ($(b,--metrics)), profile JSON \
                   ($(b,--profile-json)), journal directories \
                   ($(b,--journal DIR)), or directories of $(b,*.json) \
                   files.")
    in
    let run dir paths =
      match Castan.Lab.ingest ~dir paths with
      | Error e ->
          Printf.eprintf "castan lab: %s\n%!" e;
          exit 1
      | Ok stats ->
          List.iter
            (fun (path, reason) ->
              Printf.eprintf "castan lab: skipped %s: %s\n%!" path reason)
            stats.Castan.Lab.errors;
          Printf.printf
            "ingested %d run(s) into %s (%d duplicate, %d skipped)\n"
            stats.Castan.Lab.ingested
            (Filename.concat dir "ledger.jsonl")
            stats.Castan.Lab.duplicate
            (List.length stats.Castan.Lab.errors);
          if stats.Castan.Lab.ingested = 0 && stats.Castan.Lab.errors <> []
             && stats.Castan.Lab.duplicate = 0
          then exit 1
    in
    Cmd.v
      (Cmd.info "ingest"
         ~doc:"Normalize perf artifacts into the append-only run ledger")
      Term.(const run $ lab_dir_arg $ paths)
  in
  let report_cmd =
    let json_out =
      Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
             ~doc:"Also write the schema-versioned JSON report to FILE \
                   ($(b,-) for stdout, replacing the table).")
    in
    let top =
      Arg.(value & opt int 20 & info [ "top" ] ~docv:"N"
             ~doc:"Rows per ranking axis.")
    in
    let run dir json_out top noise max_regress =
      let store = load_or_die dir in
      let report = Castan.Lab.report ~noise ~max_regress store in
      let json () =
        Obs.Json.to_string (Castan.Lab.report_json ~top report) ^ "\n"
      in
      (match json_out with
      | Some "-" -> print_string (json ())
      | Some path ->
          print_string (Castan.Lab.report_table ~top report);
          Util.Durable.write_string ~path (json ());
          Printf.printf "wrote %s\n" path
      | None -> print_string (Castan.Lab.report_table ~top report));
      if report.Castan.Lab.rp_regressions <> [] then exit 1
    in
    Cmd.v
      (Cmd.info "report"
         ~doc:"Rank experiments across history, flag regressions and \
               recurring failures, and suggest the next experiments (exit 1 \
               when a regression is flagged)")
      Term.(
        const run $ lab_dir_arg $ json_out $ top $ noise_gate_arg
        $ max_regress_arg)
  in
  let diff_cmd =
    let base_sel =
      Arg.(value & pos 0 (some string) None & info [] ~docv:"BASE"
             ~doc:"Baseline run: $(b,latest), $(b,latest~K), a run-id \
                   prefix, or an ingested file's basename.  Omitted: the \
                   newest run comparable to NEXT.")
    in
    let next_sel =
      Arg.(value & pos 1 (some string) None & info [] ~docv:"NEXT"
             ~doc:"Run under test (same selector forms; default \
                   $(b,latest)).")
    in
    let run dir noise max_regress base_sel next_sel =
      let store = load_or_die dir in
      let base, next =
        match (base_sel, next_sel) with
        | Some b, Some n -> (find_or_die store b, find_or_die store n)
        | Some b, None -> (find_or_die store b, find_or_die store "latest")
        | None, _ -> (
            match Castan.Lab.latest_pair store with
            | Ok (b, n) -> (b, n)
            | Error e ->
                Printf.eprintf "castan lab: %s\n%!" e;
                exit 1)
      in
      let jb = base.Castan.Lab.identity.Castan.Manifest.jobs
      and jn = next.Castan.Lab.identity.Castan.Manifest.jobs in
      if jb <> jn then begin
        Printf.eprintf
          "castan lab: job counts differ (%s ran -j %d, %s ran -j %d); \
           wall times across job counts answer a scaling question, not a \
           regression question — skipping the regression gate\n%!"
          base.Castan.Lab.file jb next.Castan.Lab.file jn;
        exit 2
      end;
      (* Replay burst sizes shift where per-packet bookkeeping lands, so
         cross-batch wall times are no more comparable than cross-[-j] ones
         (batch 0 = recorded before the replay pipeline existed). *)
      let bb = base.Castan.Lab.identity.Castan.Manifest.batch
      and bn = next.Castan.Lab.identity.Castan.Manifest.batch in
      if bb <> bn && bb > 0 && bn > 0 then begin
        Printf.eprintf
          "castan lab: replay batch sizes differ (%s ran batch %d, %s ran \
           batch %d); wall times across batch sizes are not comparable — \
           skipping the regression gate\n%!"
          base.Castan.Lab.file bb next.Castan.Lab.file bn;
        exit 2
      end;
      let rendered, regressions =
        Castan.Lab.render_diff ~noise ~max_regress
          ~base_label:base.Castan.Lab.file ~next_label:next.Castan.Lab.file
          ~base:(Castan.Lab.timings base) ~next:(Castan.Lab.timings next)
      in
      print_string rendered;
      if regressions > 0 then begin
        Printf.printf "%d regression(s) above the gate\n" regressions;
        exit 1
      end
    in
    Cmd.v
      (Cmd.info "diff"
         ~doc:"Gate one ledger run against another (exit 1 on regression, \
               2 when the runs are not comparable)")
      Term.(
        const run $ lab_dir_arg $ noise_gate_arg $ max_regress_arg $ base_sel
        $ next_sel)
  in
  let runs_cmd =
    let experiment_filter =
      Arg.(value & opt (some string) None & info [ "experiment" ]
             ~docv:"PREFIX"
             ~doc:"Only runs containing an experiment whose id starts with \
                   PREFIX.")
    in
    let since_filter =
      Arg.(value & opt (some string) None & info [ "since" ] ~docv:"RUNID"
             ~doc:"Only runs strictly newer (in ledger content order) than \
                   the one RUNID selects ($(b,latest), $(b,latest~K), a \
                   run-id prefix, or a basename).")
    in
    let verdict_filter =
      Arg.(value & opt (some string) None & info [ "verdict" ]
             ~docv:"OUTCOME"
             ~doc:"Only runs referenced by a verdict with this outcome \
                   ($(b,held), $(b,refuted) or $(b,inconclusive)).")
    in
    let run dir experiment since verdict =
      let store = load_or_die dir in
      let runs =
        match Castan.Lab.filter_runs ?experiment ?since ?verdict store with
        | Ok runs -> runs
        | Error e ->
            Printf.eprintf "castan lab: %s\n%!" e;
            exit 1
      in
      Printf.printf
        "%d of %d run(s) in %s (%d verdict(s); %d duplicate, %d rejected, \
         %d torn record(s) skipped)\n"
        (List.length runs)
        (List.length store.Castan.Lab.runs)
        dir
        (List.length store.Castan.Lab.verdicts)
        store.Castan.Lab.duplicates store.Castan.Lab.rejected
        store.Castan.Lab.torn;
      List.iter
        (fun (r : Castan.Lab.run) ->
          Printf.printf "  %s  %-8s -j%-2s %8.1fs  %2d entries  %s%s\n"
            (String.sub r.Castan.Lab.run_id 0 12)
            (Castan.Lab.source_name r.Castan.Lab.source)
            (if r.Castan.Lab.identity.Castan.Manifest.jobs > 0 then
               string_of_int r.Castan.Lab.identity.Castan.Manifest.jobs
             else "?")
            r.Castan.Lab.total_seconds
            (List.length r.Castan.Lab.entries)
            r.Castan.Lab.file
            (if r.Castan.Lab.role = "hypothesis" then
               Printf.sprintf "  [arm %s]" r.Castan.Lab.arm
             else ""))
        (List.rev runs)
    in
    Cmd.v
      (Cmd.info "runs"
         ~doc:"List the ledger's runs, newest first (filterable by \
               experiment prefix, recency and verdict outcome)")
      Term.(
        const run $ lab_dir_arg $ experiment_filter $ since_filter
        $ verdict_filter)
  in
  (* run-next / loop: execute the top suggestion(s) and append verdicts.
     Exit codes: 0 = every verdict held (or nothing to do), 1 = a verdict
     was refuted or the final report still flags a regression, 2 =
     infrastructure (unreadable ledger, unrunnable action). *)
  let follow_arg =
    Arg.(value & flag & info [ "follow" ]
           ~doc:"Echo each progress event (action started, artifact \
                 ingested, verdict) as a human line while the loop runs.")
  in
  let with_events ~dir ~follow f =
    let sink =
      Obs.Events.open_sink
        ?echo:
          (if follow then
             Some (fun e -> Printf.printf "%s\n%!" (Obs.Events.render e))
           else None)
        (Filename.concat dir "events.jsonl")
    in
    Fun.protect
      ~finally:(fun () -> Obs.Events.close sink)
      (fun () ->
        f (fun ~name fields -> ignore (Obs.Events.emit sink ~name fields)))
  in
  let finish_hypotheses ~dir ~noise ~max_regress ~refuted =
    let store = load_or_die dir in
    let report = Castan.Lab.report ~noise ~max_regress store in
    if refuted || report.Castan.Lab.rp_regressions <> [] then exit 1
  in
  let run_next_cmd =
    let run dir noise max_regress follow =
      match
        with_events ~dir ~follow (fun emit ->
            Castan.Lab.run_next ~noise ~max_regress ~emit ~dir
              ~castan:Sys.executable_name ())
      with
      | Error e ->
          Printf.eprintf "castan lab: %s\n%!" e;
          exit 2
      | Ok o ->
          Printf.printf "%s\n" o.Castan.Lab.xo_message;
          finish_hypotheses ~dir ~noise ~max_regress
            ~refuted:
              (match o.Castan.Lab.xo_verdict with
              | Some v -> v.Castan.Lab.vd_outcome = Castan.Lab.Refuted
              | None -> false)
    in
    Cmd.v
      (Cmd.info "run-next"
         ~doc:"Execute the top suggested_next action as subprocess arms, \
               re-ingest the artifacts, and append a held/refuted/\
               inconclusive verdict to the ledger")
      Term.(
        const run $ lab_dir_arg $ noise_gate_arg $ max_regress_arg
        $ follow_arg)
  in
  let loop_cmd =
    let budget_runs =
      Arg.(value & opt (some int) None & info [ "budget-runs" ] ~docv:"N"
             ~doc:"Stop once N subprocess runs have been performed (checked \
                   between actions; the last A/B may overshoot by one arm).")
    in
    let deadline_s =
      Arg.(value & opt (some float) None & info [ "deadline" ]
             ~docv:"SECONDS"
             ~doc:"Stop after this much wall time; an action interrupted by \
                   the deadline records an inconclusive verdict.")
    in
    let run dir noise max_regress follow budget_runs deadline_s =
      let deadline =
        match deadline_s with
        | Some s -> Util.Resilience.deadline_in s
        | None -> Util.Resilience.no_deadline
      in
      match
        with_events ~dir ~follow (fun emit ->
            Castan.Lab.loop ~noise ~max_regress
              ?budget_runs ~deadline ~emit ~dir
              ~castan:Sys.executable_name ())
      with
      | Error e ->
          Printf.eprintf "castan lab: %s\n%!" e;
          exit 2
      | Ok stats ->
          List.iter
            (fun (v : Castan.Lab.verdict) ->
              Printf.printf "  %-12s %s — %s\n"
                (Castan.Lab.outcome_name v.Castan.Lab.vd_outcome)
                v.Castan.Lab.vd_hypothesis v.Castan.Lab.vd_detail)
            stats.Castan.Lab.lo_verdicts;
          Printf.printf
            "loop: %d action(s), %d subprocess run(s), stopped on %s\n"
            stats.Castan.Lab.lo_iterations
            stats.Castan.Lab.lo_runs_performed stats.Castan.Lab.lo_stop;
          finish_hypotheses ~dir ~noise ~max_regress
            ~refuted:
              (List.exists
                 (fun (v : Castan.Lab.verdict) ->
                   v.Castan.Lab.vd_outcome = Castan.Lab.Refuted)
                 stats.Castan.Lab.lo_verdicts)
    in
    Cmd.v
      (Cmd.info "loop"
         ~doc:"Iterate run-next until the suggestion queue is empty or a \
               --budget-runs/--deadline cap trips")
      Term.(
        const run $ lab_dir_arg $ noise_gate_arg $ max_regress_arg
        $ follow_arg $ budget_runs $ deadline_s)
  in
  Cmd.group
    (Cmd.info "lab"
       ~doc:"The performance lab: run ledger, rankings, regression triage, \
             suggested-next experiments and the hypothesis loop that \
             executes them")
    [ ingest_cmd; report_cmd; diff_cmd; runs_cmd; run_next_cmd; loop_cmd ]

(* ---------------- experiment ---------------- *)

let experiment_cmd =
  let id =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID"
           ~doc:"Experiment id, e.g. fig4 or table1 (or a group: tables, \
                 figures, all); `castan experiment list' enumerates them.")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Scaled-down workloads.")
  in
  let fail_fast =
    Arg.(value & flag & info [ "fail-fast" ]
           ~doc:"Abort on the first stage failure instead of containing it \
                 (exit code 1).")
  in
  let inject_conv =
    let parse s =
      match String.split_on_char ':' s with
      | [ rate; seed ] -> (
          match (float_of_string_opt rate, int_of_string_opt seed) with
          | Some rate, Some seed when rate >= 0.0 && rate <= 1.0 ->
              Ok (rate, seed)
          | _ -> Error (`Msg (Printf.sprintf "invalid RATE:SEED %S" s)))
      | _ -> Error (`Msg (Printf.sprintf "expected RATE:SEED, got %S" s))
    in
    let print fmt (rate, seed) = Format.fprintf fmt "%g:%d" rate seed in
    Arg.conv (parse, print)
  in
  let inject =
    Arg.(value & opt (some inject_conv) None & info [ "inject-faults" ]
           ~docv:"RATE:SEED"
           ~doc:"Probabilistically fail guarded pipeline stages (probability \
                 RATE per stage, deterministic from SEED) to exercise the \
                 degradation paths.  RATE 0.0 is bit-identical to no \
                 injection.")
  in
  let journal =
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"DIR"
           ~doc:"Record every completed per-NF campaign cell in a crash-safe \
                 journal at DIR (an fsynced append-only ledger plus one \
                 atomically-written segment per cell), so a killed run can \
                 be resumed with $(b,--resume).")
  in
  let resume =
    Arg.(value & flag & info [ "resume" ]
           ~doc:"Before running, hydrate the campaign memo from the journal \
                 at $(b,--journal) DIR: cells recorded under the same \
                 identity (git revision, config, seed, jobs, fault \
                 injection) are reused and their campaigns are not re-run.")
  in
  let crash_after =
    Arg.(value & opt (some int) None & info [ "crash-after" ] ~docv:"K"
           ~doc:"Testing hook: die (uncleanly, bypassing failure \
                 containment) at the K-th pipeline checkpoint reached — the \
                 crash half of the journal's crash/resume contract.")
  in
  let run id quick fail_fast inject journal resume crash_after max_states
      mem_budget_mb no_solver_cache jobs batch compile_mode trace metrics
      log_level =
    if no_solver_cache then Solver.Qcache.set_enabled false;
    set_jobs jobs;
    set_replay batch compile_mode;
    Util.Resilience.reset ();
    Util.Resilience.set_fail_fast fail_fast;
    Util.Resilience.set_injection
      (Option.map
         (fun (rate, seed) -> Util.Resilience.inject ~rate ~seed)
         inject);
    Util.Resilience.set_crash_point crash_after;
    if id = "list" then
      List.iter
        (fun (e : Castan.Harness.entry) ->
          Printf.printf "%-26s %s\n" e.id e.descr)
        Castan.Harness.all
    else begin
      let config =
        {
          (if quick then Castan.Experiment.quick_config
           else Castan.Experiment.default_config)
          with
          max_states;
          mem_budget_mb;
        }
      in
      let ids = Castan.Harness.expand_id id in
      (* The journal opens after the injector is installed (the injection
         signature is part of the cell identity) and before any campaign
         can run. *)
      (match journal with
      | Some dir -> (
          match Castan.Journal.enable ~dir ~config ~resume with
          | Ok () -> ()
          | Error e ->
              Printf.eprintf "castan: %s\n%!" e;
              exit 1)
      | None ->
          if resume then begin
            Printf.eprintf "castan: --resume requires --journal DIR\n%!";
            exit 1
          end);
      install_telemetry ~trace ~metrics ~log_level ~manifest:(fun () ->
          Castan.Manifest.make ~ids ~config
            ~extra:
              (if Castan.Journal.active () then
                 [ ("journal", Castan.Journal.stats_json ()) ]
               else [])
            ());
      (* Exit codes: 0 = clean, 2 = completed but degraded (failures were
         contained and summarized), 1 = fatal (fail-fast or unknown id). *)
      match
        Obs.Trace.with_span "run"
          ~args:[ ("id", Obs.Json.Str id) ]
          (fun () ->
            (* Parallel phase: run the per-NF campaigns on the pool so the
               serial rendering loop below hits the memo table. *)
            (match Castan.Harness.prewarm config ids with
            | Some dt -> Printf.printf "[prewarm done in %.1fs]\n%!" dt
            | None -> ());
            List.iter
              (fun i -> ignore (Castan.Harness.run_id config i : float))
              ids)
      with
      | () ->
          let failures = Util.Resilience.recorded () in
          let wd = Symbex.Driver.watchdog_kill_total () in
          if failures <> [] || wd > 0 then begin
            if failures <> [] then
              Castan.Report.print_failure_summary failures;
            Printf.printf
              "completed degraded: %d contained failure(s), %d watchdog \
               kill(s)\n%!"
              (List.length failures) wd;
            exit 2
          end
      | exception e ->
          let failures = Util.Resilience.recorded () in
          Castan.Report.print_failure_summary failures;
          Printf.eprintf "castan: fatal: %s\n%!" (Printexc.to_string e);
          exit 1
    end
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:"Regenerate one of the paper's tables, figures or ablations")
    Term.(
      const run $ id $ quick $ fail_fast $ inject $ journal $ resume
      $ crash_after $ max_states_arg $ mem_budget_arg $ no_solver_cache_arg
      $ jobs_arg $ batch_arg $ compile_mode_arg $ trace_arg $ metrics_arg
      $ log_level_arg)

let () =
  install_signal_handlers ();
  let doc = "CASTAN: automated synthesis of adversarial workloads for NFs" in
  let info = Cmd.info "castan" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info
    [ list_cmd; analyze_cmd; profile_cmd; probe_cmd; replay_cmd; dump_cmd;
      experiment_cmd; lab_cmd ]))
