(* Hash havocing and rainbow reconciliation (§3.5, §5.4): the LB hash ring
   is indexed by a 24-bit hash that symbolic execution cannot invert, so
   CASTAN havocs it, finds the slow path, and then reverses the required
   hash values through a rainbow table to emit concrete packets.

     dune exec examples/hashring_attack.exe *)

let smoke = Sys.getenv_opt "CASTAN_SMOKE" <> None

let () =
  let nf = Nf.Registry.find "lb-hash-ring" in
  let sets =
    if smoke then
      Castan.Analyze.discover_contention_sets ~pool:64 ~pages:1 ~reboots:1 ()
    else Castan.Analyze.discover_contention_sets ()
  in
  let config =
    {
      (Castan.Analyze.default_config
         ~cache:(Castan.Analyze.Contention_sets sets) ())
      with
      time_budget = (if smoke then 0.5 else 15.0);
      n_packets = Some (if smoke then 8 else 30);
    }
  in
  let o = Castan.Analyze.run ~config nf in
  Printf.printf
    "%d packets; %d hash havocs, %d reconciled through the rainbow table, \
     %d left partially symbolic\n"
    (Testbed.Workload.length o.workload)
    o.n_havocs o.reconciled o.unreconciled;

  (* Verify reconciliation for real: re-hash the emitted packets and check
     they land in the ring slots the analysis targeted. *)
  let hash = Hashrev.Hashes.ring24 in
  Printf.printf "ring slots hit by the emitted packets:\n";
  Array.iteri
    (fun k (p : Nf.Packet.t) ->
      if k < 8 then
        let key = (p.src_ip lsl 16) lor p.src_port in
        Printf.printf "  %-28s -> slot 0x%06x\n" (Nf.Packet.to_string p)
          (hash.apply key))
    o.workload.Testbed.Workload.packets;

  let samples = if smoke then 500 else 8_000 in
  let nop = Testbed.Tg.nop_baseline ~samples () in
  let z = Testbed.Tg.measure ~samples nf
      (Testbed.Workload.shape nf.Nf.Nf_def.shape (Testbed.Traffic.zipfian ~seed:7 ())) in
  let c = Testbed.Tg.measure ~samples nf o.workload in
  Printf.printf "Zipfian dev %+.0f ns | CASTAN dev %+.0f ns (L3 %d vs %d /pkt)\n"
    (Testbed.Tg.deviation_from_nop_ns z ~nop)
    (Testbed.Tg.deviation_from_nop_ns c ~nop)
    (Testbed.Tg.median_l3_misses z) (Testbed.Tg.median_l3_misses c)
