(* Algorithmic complexity attack (§5.3): skew the NAT's unbalanced binary
   tree into a linked list.  Compares CASTAN's synthesized workload with the
   hand-crafted Manual one (monotone ports) and shows the red-black tree
   shrugging the same attack off.

     dune exec examples/nat_tree_attack.exe *)

let smoke = Sys.getenv_opt "CASTAN_SMOKE" <> None

let measure_nf nf_name ~castan_budget =
  let nf = Nf.Registry.find nf_name in
  let config =
    { (Castan.Analyze.default_config ()) with
      time_budget = (if smoke then 0.5 else castan_budget);
      n_packets = Some (if smoke then 8 else 30) }
  in
  let o = Castan.Analyze.run ~config nf in
  let samples = if smoke then 500 else 8_000 in
  let nop = Testbed.Tg.nop_baseline ~samples () in
  let workloads =
    [ ("Zipfian", Testbed.Traffic.zipfian ~seed:5 ()); ("CASTAN", o.workload) ]
    @
    match nf.Nf.Nf_def.manual with
    | Some gen ->
        [ ("Manual",
           Testbed.Workload.make ~name:"Manual"
             (gen (Util.Rng.create 5) 30)) ]
    | None -> []
  in
  Printf.printf "\n%s:\n" nf_name;
  List.iter
    (fun (label, w) ->
      let m = Testbed.Tg.measure ~samples nf w in
      Printf.printf "  %-8s dev %+5.0f ns, %4d instrs/pkt\n" label
        (Testbed.Tg.deviation_from_nop_ns m ~nop)
        (Testbed.Tg.median_instrs m))
    workloads;
  o

let () =
  let o = measure_nf "nat-unbalanced-tree" ~castan_budget:8.0 in
  print_endline "\nfirst packets of the CASTAN workload (note the key order):";
  Array.iteri
    (fun k p -> if k < 6 then Printf.printf "  %s\n" (Nf.Packet.to_string p))
    o.workload.Testbed.Workload.packets;
  (* The same attack against the re-balancing tree goes nowhere (§5.3,
     Fig. 11): rebalancing creates local maxima the search cannot escape. *)
  ignore (measure_nf "nat-red-black-tree" ~castan_budget:8.0)
