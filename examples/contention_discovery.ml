(* Reverse-engineering L3 cache contention sets (§3.2).

   The simulated Xeon hides its slice-selection hash, exactly like the real
   part; this example runs the probing-time discovery, post-processes for
   consistency across pages and reboots, and then validates the result
   against the simulator's ground truth (which the discovery itself never
   consults).

     dune exec examples/contention_discovery.exe *)

let smoke = Sys.getenv_opt "CASTAN_SMOKE" <> None

let () =
  let geom = Cache.Geometry.xeon_e5_2667v2 in
  Printf.printf "machine: L3 %dKiB, %d-way, %d slices (hidden hash), δ = %d cycles\n"
    geom.l3.size_kib geom.l3.ways geom.l3_slices (Cache.Probe.delta geom);

  (* One raw discovery run on a single page. *)
  let m = Cache.Probe.machine ~slice_seed:0 ~vmem_seed:1 geom in
  let count = if smoke then 48 else 192 in
  let offsets = Cache.Contention.standard_offsets geom ~count in
  let pool = Array.map (fun o -> (1 lsl 30) + o) offsets in
  let t0 = Unix.gettimeofday () in
  let sets = Cache.Contention.discover_sets m ~pool () in
  Printf.printf "single run: %d sets (sizes %s) in %.1fs\n%!"
    (List.length sets)
    (String.concat "," (List.map (fun s -> string_of_int (List.length s)) sets))
    (Unix.gettimeofday () -. t0);

  (* Validate each set against ground truth. *)
  let truth a =
    let pa = Cache.Vmem.translate m.Cache.Probe.vmem a in
    ( Cache.Hierarchy.ground_truth_slice m.Cache.Probe.hier pa,
      Cache.Hierarchy.l3_set m.Cache.Probe.hier pa )
  in
  let pure =
    List.for_all
      (fun members ->
        match List.map truth members with
        | [] -> true
        | k0 :: rest -> List.for_all (( = ) k0) rest)
      sets
  in
  Printf.printf "ground-truth purity: %s\n%!" (if pure then "OK" else "FAILED");

  (* The consistent model used by the analysis: several pages x reboots. *)
  let t1 = Unix.gettimeofday () in
  let consistent =
    Cache.Contention.consistent ~pages:(if smoke then 1 else 2)
      ~reboots:(if smoke then 1 else 2) ~geom
      ~offsets:(Cache.Contention.standard_offsets geom ~count) ()
  in
  Printf.printf "consistent across pages/reboots: %d classes in %.1fs\n"
    consistent.Cache.Contention.n_classes
    (Unix.gettimeofday () -. t1);
  List.iter
    (fun (cls, members) ->
      Printf.printf "  class %d: %d page offsets\n" cls (List.length members))
    (Cache.Contention.classes consistent)
