(* Adversarial memory access (§5.2): a 40-packet workload against the
   1GB direct-lookup LPM that thrashes one L3 contention set — latency
   comparable to a million-flow UniRand DoS, from 4 orders of magnitude
   fewer packets.

     dune exec examples/lpm_cache_attack.exe *)

let smoke = Sys.getenv_opt "CASTAN_SMOKE" <> None

let () =
  let nf = Nf.Registry.find "lpm-1stage-dl" in

  (* The attack needs the empirical cache model: reverse-engineer the
     machine's contention sets first (§3.2). *)
  Printf.printf "discovering L3 contention sets...\n%!";
  let sets =
    if smoke then
      Castan.Analyze.discover_contention_sets ~pool:64 ~pages:1 ~reboots:1 ()
    else Castan.Analyze.discover_contention_sets ()
  in
  Printf.printf "  %d consistent sets\n%!" sets.Cache.Contention.n_classes;

  let config =
    {
      (Castan.Analyze.default_config
         ~cache:(Castan.Analyze.Contention_sets sets) ())
      with
      time_budget = (if smoke then 0.5 else 15.0);
    }
  in
  let o = Castan.Analyze.run ~config nf in
  Printf.printf "workload: %d packets, predicted %d L3 misses total\n%!"
    (Testbed.Workload.length o.workload)
    (List.fold_left
       (fun acc (m : Symbex.State.metrics) -> acc + m.l3_misses)
       0 o.predicted);

  let samples = if smoke then 500 else 10_000 in
  let nop = Testbed.Tg.nop_baseline ~samples () in
  let rows =
    [
      ("Zipfian", Testbed.Traffic.zipfian ~seed:3 ());
      ("UniRand", Testbed.Traffic.unirand ~seed:3 ());
      ( "UniRand CASTAN",
        Testbed.Traffic.unirand_castan ~seed:3
          ~flows:(Testbed.Workload.length o.workload) );
      ("CASTAN", o.workload);
    ]
  in
  Printf.printf "%-16s %9s %8s %7s %7s\n" "workload" "packets" "dev(ns)"
    "L3/pkt" "Mpps";
  List.iter
    (fun (label, w) ->
      let m = Testbed.Tg.measure ~samples nf w in
      Printf.printf "%-16s %9d %8.0f %7d %7.2f\n" label
        (Testbed.Workload.length w)
        (Testbed.Tg.deviation_from_nop_ns m ~nop)
        (Testbed.Tg.median_l3_misses m)
        (Testbed.Tg.max_throughput_mpps m))
    rows
