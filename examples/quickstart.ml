(* Quickstart: synthesize an adversarial workload for one NF and compare it
   against typical traffic on the simulated testbed.

     dune exec examples/quickstart.exe

   CASTAN_SMOKE=1 shrinks every budget so `dune build @smoke` finishes in
   seconds. *)

let smoke = Sys.getenv_opt "CASTAN_SMOKE" <> None

let () =
  (* 1. Pick a network function from the evaluation library. *)
  let nf = Nf.Registry.find "lpm-btrie" in
  Printf.printf "analyzing %s (%s)\n%!" nf.Nf.Nf_def.name nf.Nf.Nf_def.descr;

  (* 2. Run CASTAN: directed symbolic execution + cache model. *)
  let config =
    { (Castan.Analyze.default_config ()) with
      n_packets = Some (if smoke then 3 else 10);
      time_budget = (if smoke then 0.5 else 5.0) }
  in
  let outcome = Castan.Analyze.run ~config nf in
  Printf.printf "synthesized %d packets (%d states explored, %.1fs):\n"
    (Testbed.Workload.length outcome.workload)
    outcome.stats.Symbex.Driver.explored outcome.analysis_time;
  Array.iter
    (fun p -> Printf.printf "  %s\n" (Nf.Packet.to_string p))
    outcome.workload.Testbed.Workload.packets;

  (* 3. Export it as a real PCAP (what the paper feeds to MoonGen). *)
  Testbed.Workload.save_pcap outcome.workload "castan-quickstart.pcap";
  Printf.printf "wrote castan-quickstart.pcap\n";

  (* 4. Measure against the typical Zipfian workload. *)
  let samples = if smoke then 500 else 8_000 in
  let nop = Testbed.Tg.nop_baseline ~samples () in
  let castan = Testbed.Tg.measure ~samples nf outcome.workload in
  let zipf =
    Testbed.Tg.measure ~samples nf
      (Testbed.Workload.shape nf.Nf.Nf_def.shape
         (Testbed.Traffic.zipfian ~seed:1 ()))
  in
  let report label m =
    Printf.printf
      "  %-8s median latency %+5.0f ns vs NOP | %4d instrs/pkt | %.2f Mpps\n"
      label
      (Testbed.Tg.deviation_from_nop_ns m ~nop)
      (Testbed.Tg.median_instrs m)
      (Testbed.Tg.max_throughput_mpps m)
  in
  print_endline "measured on the simulated testbed:";
  report "Zipfian" zipf;
  report "CASTAN" castan
