(* Partially adversarial traffic (§5.5): a small CASTAN fraction mixed into
   an otherwise benign Zipfian stream inflates everyone's tail latency
   through head-of-line blocking in the descriptor queue.

     dune exec examples/mixed_traffic.exe *)

let smoke = Sys.getenv_opt "CASTAN_SMOKE" <> None

let () =
  let nf = Nf.Registry.find "lpm-1stage-dl" in
  let sets =
    if smoke then
      Castan.Analyze.discover_contention_sets ~pool:64 ~pages:1 ~reboots:1 ()
    else Castan.Analyze.discover_contention_sets ()
  in
  let config =
    { (Castan.Analyze.default_config
         ~cache:(Castan.Analyze.Contention_sets sets) ())
      with time_budget = (if smoke then 0.5 else 10.0) }
  in
  let o = Castan.Analyze.run ~config nf in
  let zipf = Testbed.Traffic.zipfian ~seed:11 () in
  let rate = 2.6 in
  Printf.printf
    "offered load %.1f Mpps against %s; CASTAN fraction vs sojourn time:\n"
    rate nf.Nf.Nf_def.name;
  Printf.printf "%10s %14s %14s %8s\n" "fraction" "median (ns)" "p99 (ns)" "loss";
  List.iter
    (fun fraction ->
      let w =
        if fraction = 0.0 then zipf
        else if fraction = 1.0 then o.Castan.Analyze.workload
        else Testbed.Traffic.mix ~seed:11 ~fraction o.Castan.Analyze.workload zipf
      in
      let m = Testbed.Tg.measure ~samples:(if smoke then 500 else 10_000) nf w in
      let cdf, loss = Testbed.Tg.latency_under_load ~rate_mpps:rate m in
      Printf.printf "%9.0f%% %14.0f %14.0f %8.3f\n" (fraction *. 100.0)
        (Util.Stats.median cdf)
        (Util.Stats.quantile cdf 0.99)
        loss)
    [ 0.0; 0.05; 0.1; 0.25; 0.5; 1.0 ]
