(* Validates the files the telemetry flags emit; the `dune build @obs-smoke`
   leg runs it against a real `castan experiment --trace/--metrics` run.

     check_telemetry trace FILE.jsonl   -- Chrome trace_event JSONL
     check_telemetry metrics FILE.json  -- run-manifest JSON
     check_telemetry cache FILE.json    -- manifest must show the solver
                                           query cache answered queries
     check_telemetry collapsed FILE     -- flamegraph collapsed stacks
     check_telemetry profile FILE.json [COLLAPSED]
                                        -- castan profile --profile-json
                                           output, optionally cross-checked
                                           against its collapsed twin
     check_telemetry pool FILE.json [MIN_TASKS]
                                        -- manifest records jobs + pool
                                           counters (and ran >= MIN_TASKS
                                           pool tasks)
     check_telemetry pool-eq A.json B.json
                                        -- two manifests agree on everything
                                           the worker pool promises to keep
                                           bit-identical (metrics, config,
                                           solver_cache) regardless of -j
     check_telemetry replay FILE.json [MIN_PACKETS]
                                        -- manifest records the replay
                                           configuration (batch/compile
                                           mode) and coherent replay.*
                                           counters (>= MIN_PACKETS packets
                                           if given)
     check_telemetry journal DIR [MANIFEST [WRITTEN REUSED]]
                                        -- a --journal directory: ledger
                                           well-formedness, segment md5 and
                                           fingerprint verification, and
                                           (optionally) consistency with the
                                           run manifest's journal section,
                                           whose cells_written/cells_reused
                                           must equal WRITTEN/REUSED if given
     check_telemetry journal-eq A B     -- two journal directories converged
                                           on the same cell fingerprints
                                           (the crash/resume contract)
     check_telemetry lab REPORT.json [MIN_REGRESSIONS [MIN_SUGGESTED]]
                                        -- `castan lab report --json` output:
                                           schema, rankings, regression
                                           findings and suggested_next are
                                           well-formed (and at least the
                                           given minimums are present)
     check_telemetry loop LAB_DIR [MIN_VERDICTS [MAX_VERDICTS]]
                                        -- the hypothesis loop's trail:
                                           verdict records resolve against
                                           the ledger's runs, events.jsonl
                                           is a well-formed stream with sane
                                           seq numbering, and the verdict
                                           count is within bounds

   Exit 0 when the file is well formed, 1 (with a diagnostic on stderr) when
   it is not.  Uses the same Obs.Json parser the tests use, so "well formed"
   here means "loadable by anything strict". *)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with Sys_error m -> fail "cannot read %s: %s" path m

let get_str obj key =
  match Obs.Json.member key obj with Some (Obs.Json.Str s) -> Some s | _ -> None

let is_number = function Obs.Json.Int _ | Obs.Json.Float _ -> true | _ -> false

let check_trace path =
  let lines =
    read_file path |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
  in
  if lines = [] then fail "%s: empty trace" path;
  List.iteri
    (fun i line ->
      let ln = i + 1 in
      match Obs.Json.parse line with
      | Error e -> fail "%s:%d: not JSON: %s" path ln e
      | Ok (Obs.Json.Obj _ as obj) -> (
          (match get_str obj "name" with
          | Some _ -> ()
          | None -> fail "%s:%d: event without a name" path ln);
          (match Obs.Json.member "ts" obj with
          | Some v when is_number v -> ()
          | _ -> fail "%s:%d: event without a numeric ts" path ln);
          match get_str obj "ph" with
          | Some "X" ->
              if
                not
                  (match Obs.Json.member "dur" obj with
                  | Some v -> is_number v
                  | None -> false)
              then fail "%s:%d: complete event without dur" path ln
          | Some "i" -> ()
          | Some ph -> fail "%s:%d: unexpected phase %S" path ln ph
          | None -> fail "%s:%d: event without ph" path ln)
      | Ok _ -> fail "%s:%d: not a JSON object" path ln)
    lines;
  Printf.printf "%s: %d trace events ok\n" path (List.length lines)

let check_metrics path =
  match Obs.Json.parse (read_file path) with
  | Error e -> fail "%s: not JSON: %s" path e
  | Ok obj ->
      (match get_str obj "tool" with
      | Some "castan" -> ()
      | _ -> fail "%s: missing tool tag" path);
      let metrics =
        match Obs.Json.member "metrics" obj with
        | Some m -> m
        | None -> fail "%s: no metrics snapshot" path
      in
      (match Obs.Json.member "counters" metrics with
      | Some (Obs.Json.Obj counters) ->
          if counters = [] then fail "%s: counters snapshot is empty" path;
          List.iter
            (fun c ->
              if not (List.mem_assoc c counters) then
                fail "%s: %s counter missing" path c)
            [
              "solver.verdict.sat";
              "solver.cache.hit";
              "solver.cache.miss";
              "solver.cache.subset_hit";
              "solver.cache.model_reuse";
              "solver.slice.constraints_dropped";
            ]
      | _ -> fail "%s: counters is not an object" path);
      (match Obs.Json.member "solver_cache" obj with
      | Some (Obs.Json.Obj sc) ->
          List.iter
            (fun k ->
              if not (List.mem_assoc k sc) then
                fail "%s: solver_cache section missing %s" path k)
            [ "enabled"; "queries"; "hits"; "queries_avoided"; "hit_rate" ]
      | _ -> fail "%s: no solver_cache section" path);
      Printf.printf "%s: manifest ok\n" path

(* `check_telemetry cache FILE.json`: beyond manifest well-formedness, the
   @cache-smoke leg demands evidence the query cache actually worked — the
   run must report at least one exact hit and a nonzero avoided-query
   count. *)
let check_cache path =
  match Obs.Json.parse (read_file path) with
  | Error e -> fail "%s: not JSON: %s" path e
  | Ok obj ->
      let sc =
        match Obs.Json.member "solver_cache" obj with
        | Some (Obs.Json.Obj sc) -> sc
        | _ -> fail "%s: no solver_cache section" path
      in
      let int_field k =
        match List.assoc_opt k sc with
        | Some (Obs.Json.Int n) -> n
        | _ -> fail "%s: solver_cache.%s missing or not an integer" path k
      in
      (match List.assoc_opt "enabled" sc with
      | Some (Obs.Json.Bool true) -> ()
      | _ -> fail "%s: solver_cache.enabled is not true" path);
      let hits = int_field "hits" and avoided = int_field "queries_avoided" in
      if hits < 1 then fail "%s: expected at least one exact cache hit" path;
      if avoided < 1 then fail "%s: expected at least one avoided query" path;
      Printf.printf "%s: cache effective (%d exact hits, %d queries avoided)\n"
        path hits avoided

(* Each collapsed-stack line is `frames count`: a space-free semicolon-joined
   frame stack, one space, a non-negative integer.  Returns the counts. *)
let collapsed_counts path =
  let lines =
    read_file path |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  if lines = [] then fail "%s: empty collapsed profile" path;
  List.mapi
    (fun i line ->
      let ln = i + 1 in
      match String.rindex_opt line ' ' with
      | None -> fail "%s:%d: no count field" path ln
      | Some sp ->
          let frames = String.sub line 0 sp in
          let count = String.sub line (sp + 1) (String.length line - sp - 1) in
          if frames = "" || String.contains frames ' ' then
            fail "%s:%d: malformed frame stack %S" path ln frames;
          (match int_of_string_opt count with
          | Some n when n >= 0 -> n
          | _ -> fail "%s:%d: count %S is not a non-negative integer" path ln count))
    lines

let check_collapsed path =
  let counts = collapsed_counts path in
  Printf.printf "%s: %d stacks, %d samples ok\n" path (List.length counts)
    (List.fold_left ( + ) 0 counts)

let check_profile path collapsed =
  match Obs.Json.parse (read_file path) with
  | Error e -> fail "%s: not JSON: %s" path e
  | Ok obj ->
      (match Obs.Json.member "schema_version" obj with
      | Some (Obs.Json.Int _) -> ()
      | _ -> fail "%s: missing schema_version" path);
      let total =
        match Obs.Json.member "total_cycles" obj with
        | Some (Obs.Json.Int n) -> n
        | _ -> fail "%s: missing total_cycles" path
      in
      let blocks =
        match Obs.Json.member "blocks" obj with
        | Some (Obs.Json.List l) -> l
        | _ -> fail "%s: blocks is not a list" path
      in
      if blocks = [] then fail "%s: no profiled blocks" path;
      let sum =
        List.fold_left
          (fun acc b ->
            match Obs.Json.member "cycles" b with
            | Some (Obs.Json.Int n) -> acc + n
            | _ -> fail "%s: block without integer cycles" path)
          0 blocks
      in
      if sum <> total then
        fail "%s: blocks sum to %d cycles but total_cycles is %d" path sum total;
      (match collapsed with
      | None -> ()
      | Some cpath ->
          let csum = List.fold_left ( + ) 0 (collapsed_counts cpath) in
          if csum <> total then
            fail "%s: collapsed stacks sum to %d cycles but %s reports %d"
              cpath csum path total);
      Printf.printf "%s: profile ok (%d blocks, %d cycles)\n" path
        (List.length blocks) total

(* `check_telemetry pool FILE.json [MIN_TASKS]`: the manifest must record
   which job count produced it and the pool's own accounting — and, when
   MIN_TASKS is given, prove the pool actually ran (a parallel smoke run
   that silently fell back to serial would pass every equality check). *)
let check_pool path min_tasks =
  match Obs.Json.parse (read_file path) with
  | Error e -> fail "%s: not JSON: %s" path e
  | Ok obj ->
      let jobs =
        match Obs.Json.member "jobs" obj with
        | Some (Obs.Json.Int j) when j >= 1 -> j
        | _ -> fail "%s: missing or non-positive jobs field" path
      in
      let pool =
        match Obs.Json.member "pool" obj with
        | Some (Obs.Json.Obj p) -> p
        | _ -> fail "%s: no pool section" path
      in
      let int_field k =
        match List.assoc_opt k pool with
        | Some (Obs.Json.Int n) when n >= 0 -> n
        | _ -> fail "%s: pool.%s missing or not a non-negative integer" path k
      in
      let tasks = int_field "tasks" in
      ignore (int_field "steals" : int);
      ignore (int_field "worker_busy_ns" : int);
      (match min_tasks with
      | Some m when tasks < m ->
          fail "%s: expected at least %d pool tasks, saw %d" path m tasks
      | _ -> ());
      Printf.printf "%s: pool ok (jobs %d, %d tasks)\n" path jobs tasks

(* `check_telemetry pool-eq A.json B.json`: everything the pool promises to
   keep bit-identical across job counts must match — experiment list,
   config, seed, every counter and gauge, solver-cache accounting, and
   histogram counts.  Exempt by design: generated_at_unix, jobs, pool,
   wall times (experiments_timed seconds, histogram value stats — the one
   histogram measures solver latency in wall microseconds), and the
   profile section's timer buckets. *)
let check_pool_eq path_a path_b =
  let load path =
    match Obs.Json.parse (read_file path) with
    | Error e -> fail "%s: not JSON: %s" path e
    | Ok obj -> obj
  in
  let a = load path_a and b = load path_b in
  let subtree obj path key =
    match Obs.Json.member key obj with
    | Some v -> v
    | None -> fail "%s: missing %s section" path key
  in
  (* [experiments]/[config]/[seed] appear only in experiment manifests;
     analyze manifests carry neither, which is fine as long as the two
     files agree on what they carry. *)
  let eq_subtree ~required key =
    match (Obs.Json.member key a, Obs.Json.member key b) with
    | None, None when not required -> ()
    | Some va, Some vb ->
        if Obs.Json.to_string va <> Obs.Json.to_string vb then
          fail "pool-eq: %s differs between %s and %s:\n  %s\n  %s" key path_a
            path_b
            (Obs.Json.to_string va)
            (Obs.Json.to_string vb)
    | _ ->
        fail "pool-eq: %s present in only one of %s and %s" key path_a path_b
  in
  List.iter
    (eq_subtree ~required:false)
    [ "experiments"; "config"; "seed" ];
  eq_subtree ~required:true "solver_cache";
  let metrics_a = subtree a path_a "metrics"
  and metrics_b = subtree b path_b "metrics" in
  List.iter
    (fun key ->
      let va = subtree metrics_a path_a key
      and vb = subtree metrics_b path_b key in
      if Obs.Json.to_string va <> Obs.Json.to_string vb then
        fail "pool-eq: metrics.%s differs between %s and %s:\n  %s\n  %s" key
          path_a path_b
          (Obs.Json.to_string va)
          (Obs.Json.to_string vb))
    [ "counters"; "gauges" ];
  (* Histogram values are wall times; only the sample counts are part of
     the determinism contract. *)
  let hist_counts m path =
    match Obs.Json.member "histograms" m with
    | Some (Obs.Json.Obj hs) ->
        List.map
          (fun (name, h) ->
            match Obs.Json.member "count" h with
            | Some (Obs.Json.Int n) -> (name, n)
            | _ -> fail "%s: histogram %s without a count" path name)
          hs
    | _ -> fail "%s: metrics.histograms is not an object" path
  in
  let ha = hist_counts metrics_a path_a and hb = hist_counts metrics_b path_b in
  if ha <> hb then
    fail "pool-eq: histogram counts differ between %s and %s" path_a path_b;
  Printf.printf "pool-eq: %s and %s agree on all deterministic sections\n"
    path_a path_b

(* `check_telemetry replay FILE.json [MIN_PACKETS]`: a manifest from a run
   that replayed packets must carry the replay configuration (top-level
   [batch]/[compile_mode] and the [replay] section that mirrors them) and
   the replay.* counters — with packets >= bursts >= 1 (a burst holds at
   least one packet) and, when MIN_PACKETS is given, at least that many
   packets replayed. *)
let check_replay path min_packets =
  match Obs.Json.parse (read_file path) with
  | Error e -> fail "%s: not JSON: %s" path e
  | Ok obj ->
      let batch =
        match Obs.Json.member "batch" obj with
        | Some (Obs.Json.Int b) when b >= 1 -> b
        | _ -> fail "%s: missing or non-positive batch field" path
      in
      let mode =
        match get_str obj "compile_mode" with
        | Some ("instr" | "superblock") as m -> Option.get m
        | Some m -> fail "%s: unknown compile_mode %S" path m
        | None -> fail "%s: missing compile_mode field" path
      in
      (match Obs.Json.member "replay" obj with
      | Some r -> (
          (match Obs.Json.member "batch" r with
          | Some (Obs.Json.Int b) when b = batch -> ()
          | _ -> fail "%s: replay.batch disagrees with top-level batch" path);
          match get_str r "compile_mode" with
          | Some m when m = mode -> ()
          | _ ->
              fail "%s: replay.compile_mode disagrees with top-level field"
                path)
      | None -> fail "%s: no replay section" path);
      let counters =
        match Obs.Json.member "metrics" obj with
        | Some m -> (
            match Obs.Json.member "counters" m with
            | Some (Obs.Json.Obj c) -> c
            | _ -> fail "%s: counters is not an object" path)
        | None -> fail "%s: no metrics snapshot" path
      in
      let counter k =
        match List.assoc_opt k counters with
        | Some (Obs.Json.Int n) when n >= 0 -> n
        | Some _ -> fail "%s: %s is not a non-negative integer" path k
        | None -> fail "%s: %s counter missing" path k
      in
      let packets = counter "replay.packets"
      and bursts = counter "replay.bursts" in
      ignore (counter "replay.shards" : int);
      if packets < 1 then fail "%s: replay.packets is 0" path;
      if bursts < 1 then fail "%s: replay.bursts is 0" path;
      if packets < bursts then
        fail "%s: replay.packets (%d) < replay.bursts (%d)" path packets
          bursts;
      (match min_packets with
      | Some m when packets < m ->
          fail "%s: expected at least %d replayed packet(s), saw %d" path m
            packets
      | _ -> ());
      Printf.printf
        "%s: replay ok (batch %d, %s, %d packet(s) in %d burst(s))\n" path
        batch mode packets bursts

(* ------------------------------------------------------------------ *)
(* Run journals                                                        *)
(* ------------------------------------------------------------------ *)

(* Parse a ledger into (kind, json) records.  A torn *final* line is the
   crash the journal is designed around, so it is dropped with a note;
   anything else unparsable is a hard failure. *)
let ledger_records dir =
  let path = Filename.concat dir "ledger.jsonl" in
  let lines =
    read_file path |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
  in
  if lines = [] then fail "%s: empty ledger" path;
  let n = List.length lines in
  List.filteri
    (fun i line ->
      match Obs.Json.parse line with
      | Ok _ -> true
      | Error e ->
          if i = n - 1 then begin
            Printf.printf "%s: note: dropping torn final line\n" path;
            false
          end
          else fail "%s:%d: not JSON: %s" path (i + 1) e)
    lines
  |> List.map (fun line ->
         let j = Result.get_ok (Obs.Json.parse line) in
         match get_str j "kind" with
         | Some kind -> (kind, j)
         | None -> fail "%s: ledger record without kind" path)

(* `check_telemetry journal DIR [MANIFEST]`: ledger well-formedness, every
   ok-cell's segment exists with the recorded md5 and decodes back to the
   recorded fingerprint, and (with MANIFEST) the manifest's journal section
   agrees with the ledger's last session. *)
let check_journal dir manifest expect =
  let records = ledger_records dir in
  (match records with
  | ("open", j) :: _ ->
      (match Obs.Json.member "schema_version" j with
      | Some (Obs.Json.Int 1) -> ()
      | _ -> fail "%s: first open record lacks schema_version 1" dir);
      (match Obs.Json.member "identity" j with
      | Some id -> (
          match Castan.Journal.identity_of_json id with
          | Ok _ -> ()
          | Error e -> fail "%s: malformed identity: %s" dir e)
      | None -> fail "%s: open record without identity" dir)
  | _ -> fail "%s: ledger does not start with an open record" dir);
  let opens = ref 0 and cells = ref 0 and marks = ref 0 in
  let last_session_cells = ref 0 in
  List.iter
    (fun (kind, j) ->
      match kind with
      | "open" ->
          incr opens;
          last_session_cells := 0
      | "mark" -> incr marks
      | "cell" -> (
          incr cells;
          incr last_session_cells;
          let str k =
            match get_str j k with
            | Some s -> s
            | None -> fail "%s: cell record without %s" dir k
          in
          let key = str "key" and status = str "status" in
          let fp = str "fingerprint" in
          if status = "ok" then begin
            let seg = Filename.concat (Filename.concat dir "cells") (str "segment") in
            let content = read_file seg in
            if Digest.to_hex (Digest.string content) <> str "segment_md5" then
              fail "%s: segment %s does not match its ledger md5" dir seg;
            match Obs.Json.parse content with
            | Error e -> fail "%s: segment %s: not JSON: %s" dir seg e
            | Ok sj -> (
                match Castan.Journal.decode_run sj with
                | Error e -> fail "%s: segment %s: %s" dir seg e
                | Ok run ->
                    if Castan.Journal.fingerprint (Ok run) <> fp then
                      fail "%s: cell %s decodes to a different fingerprint"
                        dir key)
          end
          else if not (String.length status > 7 && String.sub status 0 7 = "failed:")
          then fail "%s: cell %s has unknown status %s" dir key status)
      | _ -> (* forward compatibility *) ())
    records;
  (match manifest with
  | None -> ()
  | Some mpath -> (
      match Obs.Json.parse (read_file mpath) with
      | Error e -> fail "%s: not JSON: %s" mpath e
      | Ok obj -> (
          match Obs.Json.member "journal" obj with
          | Some jn ->
              let int k =
                match Obs.Json.member k jn with
                | Some (Obs.Json.Int n) -> n
                | _ -> fail "%s: journal.%s missing" mpath k
              in
              if int "cells_written" <> !last_session_cells then
                fail
                  "%s: journal.cells_written is %d but the ledger's last \
                   session wrote %d cell(s)"
                  mpath (int "cells_written") !last_session_cells;
              if int "cells_reused" > int "hydrated" then
                fail "%s: journal.cells_reused exceeds hydrated cells" mpath;
              (match expect with
              | None -> ()
              | Some (ew, er) ->
                  if int "cells_written" <> ew then
                    fail "%s: journal.cells_written is %d, expected %d" mpath
                      (int "cells_written") ew;
                  if int "cells_reused" <> er then
                    fail "%s: journal.cells_reused is %d, expected %d" mpath
                      (int "cells_reused") er)
          | None -> fail "%s: no journal section" mpath)));
  Printf.printf "%s: journal ok (%d session(s), %d cell(s), %d mark(s))\n" dir
    !opens !cells !marks

(* `check_telemetry journal-eq A B`: the two journals' final cell sets —
   key -> (status, fingerprint), last record per key, cells under each
   ledger's most recent identity only — must be equal and non-empty.  This
   is the crash/resume contract: a run crashed at an arbitrary checkpoint
   and resumed must converge on the same fingerprints as an uninterrupted
   one. *)
let check_journal_eq dir_a dir_b =
  let cell_map dir =
    let records = ledger_records dir in
    let last_ident =
      List.fold_left
        (fun acc (kind, j) ->
          if kind = "open" then Obs.Json.member "identity" j else acc)
        None records
    in
    let ident =
      match last_ident with
      | Some id -> Obs.Json.to_string id
      | None -> fail "%s: no open record" dir
    in
    let cur = ref "" in
    let cells = Hashtbl.create 16 in
    List.iter
      (fun (kind, j) ->
        match kind with
        | "open" ->
            cur :=
              (match Obs.Json.member "identity" j with
              | Some id -> Obs.Json.to_string id
              | None -> "")
        | "cell" when !cur = ident -> (
            match (get_str j "key", get_str j "status", get_str j "fingerprint")
            with
            | Some key, Some status, Some fp ->
                Hashtbl.replace cells key (status, fp)
            | _ -> fail "%s: malformed cell record" dir)
        | _ -> ())
      records;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) cells []
    |> List.sort compare
  in
  let a = cell_map dir_a and b = cell_map dir_b in
  if a = [] then fail "journal-eq: %s has no cells" dir_a;
  if a <> b then begin
    let show (k, (status, fp)) = Printf.sprintf "  %s %s %s" k status fp in
    fail "journal-eq: cell sets differ\n%s:\n%s\n%s:\n%s" dir_a
      (String.concat "\n" (List.map show a))
      dir_b
      (String.concat "\n" (List.map show b))
  end;
  Printf.printf "journal-eq: %s and %s agree on %d cell(s)\n" dir_a dir_b
    (List.length a)

(* `check_telemetry lab REPORT.json [MIN_REGRESSIONS [MIN_SUGGESTED]]`: a
   `castan lab report --json` file.  Structural: schema version this build
   knows, a ledger summary, a non-empty wall-time ranking whose entries
   carry the full stat record, well-formed regression findings (each
   pointing at the run pair it came from) and suggested_next entries (each
   with a runnable action and a rationale).  With minimums given, the
   report must contain at least that many regressions / suggestions — the
   @lab-smoke leg pins the synthetic-regression fixtures this way. *)
let check_lab path mins =
  let obj =
    match Obs.Json.parse (read_file path) with
    | Error e -> fail "%s: not JSON: %s" path e
    | Ok o -> o
  in
  (match Obs.Json.member "schema_version" obj with
  | Some (Obs.Json.Int v) when v = Castan.Lab.report_schema_version -> ()
  | Some (Obs.Json.Int v) ->
      fail "%s: report schema_version %d (this build reads %d)" path v
        Castan.Lab.report_schema_version
  | _ -> fail "%s: no integer schema_version" path);
  (match get_str obj "kind" with
  | Some "lab-report" -> ()
  | _ -> fail "%s: kind is not \"lab-report\"" path);
  (match Obs.Json.member "ledger" obj with
  | Some ledger -> (
      match Obs.Json.member "runs" ledger with
      | Some (Obs.Json.Int n) when n > 0 -> ()
      | Some (Obs.Json.Int _) -> fail "%s: ledger.runs is 0" path
      | _ -> fail "%s: ledger.runs missing" path)
  | None -> fail "%s: no ledger section" path);
  let list_member parent key =
    match Obs.Json.member key parent with
    | Some (Obs.Json.List l) -> l
    | _ -> fail "%s: %s is not a list" path key
  in
  let require_fields what fields entry =
    List.iter
      (fun f ->
        if Obs.Json.member f entry = None then
          fail "%s: a %s entry lacks %s" path what f)
      fields
  in
  (match Obs.Json.member "rankings" obj with
  | Some rankings ->
      let by_wall = list_member rankings "by_wall_time" in
      if by_wall = [] then fail "%s: rankings.by_wall_time is empty" path;
      List.iter
        (require_fields "ranking"
           [ "id"; "runs"; "latest_seconds"; "best_seconds"; "worst_seconds";
             "mean_seconds"; "solver_queries"; "cache_hit_rate"; "bound" ])
        by_wall;
      ignore (list_member rankings "by_solver_queries");
      ignore (list_member rankings "by_cache_hit_rate")
  | None -> fail "%s: no rankings section" path);
  let regressions = list_member obj "regressions" in
  List.iter
    (require_fields "regression"
       [ "id"; "jobs"; "streak"; "base_seconds"; "last_seconds"; "pct";
         "bound"; "from_run"; "to_run" ])
    regressions;
  let suggested = list_member obj "suggested_next" in
  List.iter
    (fun entry ->
      require_fields "suggested_next" [ "kind"; "action"; "rationale" ] entry;
      match get_str entry "rationale" with
      | Some r when String.length r > 10 -> ()
      | _ -> fail "%s: a suggested_next entry has no real rationale" path)
    suggested;
  ignore (list_member obj "failure_patterns");
  (match mins with
  | None -> ()
  | Some (min_regressions, min_suggested) ->
      if List.length regressions < min_regressions then
        fail "%s: %d regression finding(s), expected >= %d" path
          (List.length regressions) min_regressions;
      if List.length suggested < min_suggested then
        fail "%s: %d suggested_next entries, expected >= %d" path
          (List.length suggested) min_suggested);
  Printf.printf
    "lab: %s well-formed (%d regression(s), %d suggestion(s))\n" path
    (List.length regressions) (List.length suggested)

(* `check_telemetry loop LAB_DIR [MIN_V [MAX_V]]`: the hypothesis loop's
   durable trail.  The ledger must load, every verdict record must carry a
   non-empty hypothesis, sane thresholds and arm run_ids that resolve
   against the ledger's runs; `events.jsonl` must be a well-formed event
   stream whose seq numbers only ever advance by one or reset to 1 (a new
   session).  With MIN_V >= 1 the stream must show at least one
   action_started, artifact_ingested and verdict event, and the ledger's
   verdict count must land in [MIN_V, MAX_V]. *)
let check_loop dir mins =
  let store =
    match Castan.Lab.load ~dir with
    | Ok s -> s
    | Error e -> fail "%s: ledger unreadable: %s" dir e
  in
  if store.Castan.Lab.rejected > 0 then
    fail "%s: ledger has %d rejected record(s)" dir
      store.Castan.Lab.rejected;
  let run_ids =
    List.map (fun (r : Castan.Lab.run) -> r.Castan.Lab.run_id)
      store.Castan.Lab.runs
  in
  List.iter
    (fun (v : Castan.Lab.verdict) ->
      let where = String.sub v.Castan.Lab.vd_id 0 12 in
      if v.Castan.Lab.vd_hypothesis = "" then
        fail "%s: verdict %s has an empty hypothesis" dir where;
      if v.Castan.Lab.vd_noise < 0.0 || v.Castan.Lab.vd_max_regress < 0.0
      then fail "%s: verdict %s has negative thresholds" dir where;
      if v.Castan.Lab.vd_runs_performed < 0 then
        fail "%s: verdict %s has negative runs_performed" dir where;
      List.iter
        (fun arm ->
          if arm <> "" && not (List.mem arm run_ids) then
            fail "%s: verdict %s references run %s, not in the ledger" dir
              where (String.sub arm 0 12))
        [ v.Castan.Lab.vd_base_run; v.Castan.Lab.vd_test_run ])
    store.Castan.Lab.verdicts;
  let events_path = Filename.concat dir "events.jsonl" in
  if not (Sys.file_exists events_path) then
    fail "%s: no events.jsonl" dir;
  let lines =
    read_file events_path |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
  in
  if lines = [] then fail "%s: empty event stream" events_path;
  let counts = Hashtbl.create 8 in
  let prev = ref 0 in
  List.iteri
    (fun i line ->
      let ln = i + 1 in
      match Obs.Json.parse line with
      | Error e -> fail "%s:%d: not JSON: %s" events_path ln e
      | Ok j -> (
          match Obs.Events.event_of_json j with
          | Error e -> fail "%s:%d: %s" events_path ln e
          | Ok e ->
              if e.Obs.Events.ev_seq <> !prev + 1
                 && e.Obs.Events.ev_seq <> 1 then
                fail "%s:%d: seq %d after %d (must advance by 1 or reset)"
                  events_path ln e.Obs.Events.ev_seq !prev;
              prev := e.Obs.Events.ev_seq;
              let name = e.Obs.Events.ev_name in
              Hashtbl.replace counts name
                (1 + try Hashtbl.find counts name with Not_found -> 0)))
    lines;
  let count name = try Hashtbl.find counts name with Not_found -> 0 in
  let n_verdicts = List.length store.Castan.Lab.verdicts in
  (match mins with
  | None -> ()
  | Some (min_v, max_v) ->
      if min_v >= 1 then
        List.iter
          (fun name ->
            if count name = 0 then
              fail "%s: no %s event in the stream" events_path name)
          [ "action_started"; "artifact_ingested"; "verdict" ];
      if n_verdicts < min_v || n_verdicts > max_v then
        fail "%s: %d verdict(s) in the ledger, expected %d..%d" dir
          n_verdicts min_v max_v);
  Printf.printf
    "loop: %s ok (%d verdict(s); %d event(s): %d started, %d ingested, %d \
     judged)\n"
    dir n_verdicts (List.length lines)
    (count "action_started")
    (count "artifact_ingested")
    (count "verdict")

let () =
  match Sys.argv with
  | [| _; "trace"; path |] -> check_trace path
  | [| _; "metrics"; path |] -> check_metrics path
  | [| _; "cache"; path |] -> check_cache path
  | [| _; "collapsed"; path |] -> check_collapsed path
  | [| _; "profile"; path |] -> check_profile path None
  | [| _; "profile"; path; collapsed |] -> check_profile path (Some collapsed)
  | [| _; "pool"; path |] -> check_pool path None
  | [| _; "pool"; path; min_tasks |] -> (
      match int_of_string_opt min_tasks with
      | Some m when m >= 0 -> check_pool path (Some m)
      | _ -> fail "pool: MIN_TASKS must be a non-negative integer")
  | [| _; "pool-eq"; a; b |] -> check_pool_eq a b
  | [| _; "replay"; path |] -> check_replay path None
  | [| _; "replay"; path; min_packets |] -> (
      match int_of_string_opt min_packets with
      | Some m when m >= 0 -> check_replay path (Some m)
      | _ -> fail "replay: MIN_PACKETS must be a non-negative integer")
  | [| _; "journal"; dir |] -> check_journal dir None None
  | [| _; "journal"; dir; manifest |] -> check_journal dir (Some manifest) None
  | [| _; "journal"; dir; manifest; ew; er |] ->
      check_journal dir (Some manifest)
        (Some (int_of_string ew, int_of_string er))
  | [| _; "journal-eq"; a; b |] -> check_journal_eq a b
  | [| _; "lab"; path |] -> check_lab path None
  | [| _; "lab"; path; min_r |] -> (
      match int_of_string_opt min_r with
      | Some r when r >= 0 -> check_lab path (Some (r, 0))
      | _ -> fail "lab: MIN_REGRESSIONS must be a non-negative integer")
  | [| _; "lab"; path; min_r; min_s |] -> (
      match (int_of_string_opt min_r, int_of_string_opt min_s) with
      | Some r, Some s when r >= 0 && s >= 0 -> check_lab path (Some (r, s))
      | _ -> fail "lab: minimums must be non-negative integers")
  | [| _; "loop"; dir |] -> check_loop dir None
  | [| _; "loop"; dir; min_v |] -> (
      match int_of_string_opt min_v with
      | Some v when v >= 0 -> check_loop dir (Some (v, max_int))
      | _ -> fail "loop: MIN_VERDICTS must be a non-negative integer")
  | [| _; "loop"; dir; min_v; max_v |] -> (
      match (int_of_string_opt min_v, int_of_string_opt max_v) with
      | Some lo, Some hi when lo >= 0 && hi >= lo ->
          check_loop dir (Some (lo, hi))
      | _ -> fail "loop: verdict bounds must satisfy 0 <= MIN <= MAX")
  | _ ->
      fail
        "usage: check_telemetry {trace|metrics|cache|collapsed} FILE\n\
        \       check_telemetry profile FILE.json [COLLAPSED]\n\
        \       check_telemetry pool FILE.json [MIN_TASKS]\n\
        \       check_telemetry pool-eq A.json B.json\n\
        \       check_telemetry replay FILE.json [MIN_PACKETS]\n\
        \       check_telemetry journal DIR [MANIFEST [WRITTEN REUSED]]\n\
        \       check_telemetry journal-eq DIR_A DIR_B\n\
        \       check_telemetry lab REPORT.json [MIN_REGRESSIONS \
         [MIN_SUGGESTED]]\n\
        \       check_telemetry loop LAB_DIR [MIN_VERDICTS [MAX_VERDICTS]]"
