(* Compares two bench manifests (`bench/main.exe --json`) and gates on
   per-experiment wall-time regressions — the check every perf-sensitive PR
   runs before merging.

     bench_diff [OPTIONS] BASE.json NEW.json
     bench_diff [OPTIONS] DIR          -- picks the two latest BENCH_*.json

   Options:
     --max-regress PCT   fail when any experiment slows down more than PCT
                         percent (default 20)
     --noise SECONDS     ignore deltas smaller than this many seconds
                         (default 0.05); guards quick experiments whose wall
                         time is dominated by scheduler jitter

   Exit 0 when no experiment regressed beyond the gate, 1 when at least one
   did, 2 on usage or file errors — or when the two manifests record
   different worker-pool job counts ([jobs]), in which case their wall
   times are not comparable and the gate is skipped with a warning. *)

let usage_exit () =
  prerr_endline
    "usage: bench_diff [--max-regress PCT] [--noise SECONDS] \
     (BASE.json NEW.json | DIR)";
  exit 2

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with Sys_error m -> fail "cannot read %s: %s" path m

(* [experiments_timed] from a bench manifest, as (id, seconds) in file
   order. *)
let timings path =
  match Obs.Json.parse (read_file path) with
  | Error e -> fail "%s: not JSON: %s" path e
  | Ok obj -> (
      match Obs.Json.member "experiments_timed" obj with
      | Some (Obs.Json.List entries) ->
          List.map
            (fun entry ->
              let id =
                match Obs.Json.member "id" entry with
                | Some (Obs.Json.Str s) -> s
                | _ -> fail "%s: experiments_timed entry without an id" path
              in
              let seconds =
                match Obs.Json.member "seconds" entry with
                | Some (Obs.Json.Float f) -> f
                | Some (Obs.Json.Int i) -> float_of_int i
                | _ -> fail "%s: %s has no numeric seconds" path id
              in
              (id, seconds))
            entries
      | _ -> fail "%s: no experiments_timed section (bench --json output?)" path)

(* Top-level [jobs] of a bench manifest; [None] for manifests predating the
   worker pool. *)
let jobs_of path =
  match Obs.Json.parse (read_file path) with
  | Error e -> fail "%s: not JSON: %s" path e
  | Ok obj -> (
      match Obs.Json.member "jobs" obj with
      | Some (Obs.Json.Int j) -> Some j
      | _ -> None)

(* Latest two BENCH_*.json in [dir] by (mtime, name); the older of the pair
   is the baseline. *)
let latest_two dir =
  let is_bench name =
    String.length name > 10
    && String.sub name 0 6 = "BENCH_"
    && Filename.check_suffix name ".json"
  in
  let files =
    Sys.readdir dir |> Array.to_list |> List.filter is_bench
    |> List.map (fun name ->
           let path = Filename.concat dir name in
           ((Unix.stat path).Unix.st_mtime, name, path))
    |> List.sort compare
  in
  match List.rev files with
  | (_, _, newest) :: (_, _, previous) :: _ -> (previous, newest)
  | _ -> fail "%s: need at least two BENCH_*.json files to diff" dir

let () =
  let max_regress = ref 20.0 in
  let noise = ref 0.05 in
  let positional = ref [] in
  let rec parse = function
    | [] -> ()
    | "--max-regress" :: pct :: rest ->
        (match float_of_string_opt pct with
        | Some f when f >= 0.0 -> max_regress := f
        | _ -> usage_exit ());
        parse rest
    | "--noise" :: s :: rest ->
        (match float_of_string_opt s with
        | Some f when f >= 0.0 -> noise := f
        | _ -> usage_exit ());
        parse rest
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' -> usage_exit ()
    | arg :: rest ->
        positional := !positional @ [ arg ];
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let base_path, new_path =
    match !positional with
    | [ dir ] when Sys.file_exists dir && Sys.is_directory dir ->
        latest_two dir
    | [ base; next ] -> (base, next)
    | _ -> usage_exit ()
  in
  (* Wall times measured at different job counts answer different questions;
     refuse to gate on them rather than report a bogus regression. *)
  (match (jobs_of base_path, jobs_of new_path) with
  | Some jb, Some jn when jb <> jn ->
      Printf.eprintf
        "bench_diff: job counts differ (%s ran -j %d, %s ran -j %d); wall \
         times are not comparable, skipping the regression gate\n"
        base_path jb new_path jn;
      exit 2
  | _ -> ());
  let base = timings base_path and next = timings new_path in
  Printf.printf "bench_diff: %s -> %s (gate %.0f%%, noise %.3fs)\n" base_path
    new_path !max_regress !noise;
  let regressions = ref 0 in
  List.iter
    (fun (id, t1) ->
      match List.assoc_opt id base with
      | None -> Printf.printf "  %-24s %8.3fs  (new experiment)\n" id t1
      | Some t0 ->
          let delta = t1 -. t0 in
          let pct = if t0 > 0.0 then 100.0 *. delta /. t0 else 0.0 in
          let gated = delta > !noise && pct > !max_regress in
          if gated then incr regressions;
          Printf.printf "  %-24s %8.3fs -> %8.3fs  %+7.1f%%%s\n" id t0 t1 pct
            (if gated then "  REGRESSION"
             else if abs_float delta <= !noise then "  (noise)"
             else ""))
    next;
  List.iter
    (fun (id, _) ->
      if not (List.mem_assoc id next) then
        Printf.printf "  %-24s (dropped from new run)\n" id)
    base;
  if !regressions > 0 then begin
    Printf.printf "%d experiment(s) regressed beyond %.0f%%\n" !regressions
      !max_regress;
    exit 1
  end
  else print_endline "no regressions beyond gate"
