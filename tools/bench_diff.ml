(* Compares two bench manifests (`bench/main.exe --json`) and gates on
   per-experiment wall-time regressions — the check every perf-sensitive PR
   runs before merging.

     bench_diff [OPTIONS] BASE.json NEW.json
     bench_diff [OPTIONS] DIR          -- picks the two latest BENCH_*.json
     bench_diff [OPTIONS] --against RUN NEW.json
                                       -- baseline resolved from the lab
                                          run ledger (see `castan lab')

   Options:
     --max-regress PCT   fail when any experiment slows down more than PCT
                         percent (default 20)
     --noise SECONDS     ignore deltas smaller than this many seconds
                         (default 0.05); guards quick experiments whose wall
                         time is dominated by scheduler jitter
     --against RUN       baseline from the lab ledger instead of a file:
                         `latest', `latest~K', a run-id prefix, or an
                         ingested file's basename; a `latest~K' deeper
                         than the ledger exits 2 naming how many runs
                         the ledger actually has
     --lab DIR           the lab directory (default bench/lab)

   Exit 0 when no experiment regressed beyond the gate, 1 when at least one
   did, 2 on usage or file errors — or when the two sides record different
   worker-pool job counts ([jobs]) or replay burst sizes ([batch]), in which
   case their wall times are not comparable and the gate is skipped with a
   warning. *)

let usage_exit () =
  prerr_endline
    "usage: bench_diff [--max-regress PCT] [--noise SECONDS] \
     [--lab DIR] [--against RUN] (BASE.json NEW.json | NEW.json | DIR)";
  exit 2

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with Sys_error m -> fail "cannot read %s: %s" path m

(* [experiments_timed] from a bench manifest, as (id, seconds) in file
   order. *)
let timings path =
  match Obs.Json.parse (read_file path) with
  | Error e -> fail "%s: not JSON: %s" path e
  | Ok obj -> (
      match Obs.Json.member "experiments_timed" obj with
      | Some (Obs.Json.List entries) ->
          List.map
            (fun entry ->
              let id =
                match Obs.Json.member "id" entry with
                | Some (Obs.Json.Str s) -> s
                | _ -> fail "%s: experiments_timed entry without an id" path
              in
              let seconds =
                match Obs.Json.member "seconds" entry with
                | Some (Obs.Json.Float f) -> f
                | Some (Obs.Json.Int i) -> float_of_int i
                | _ -> fail "%s: %s has no numeric seconds" path id
              in
              (id, seconds))
            entries
      | _ -> fail "%s: no experiments_timed section (bench --json output?)" path)

(* Top-level [jobs] of a bench manifest; [None] for manifests predating the
   worker pool. *)
let jobs_of path =
  match Obs.Json.parse (read_file path) with
  | Error e -> fail "%s: not JSON: %s" path e
  | Ok obj -> (
      match Obs.Json.member "jobs" obj with
      | Some (Obs.Json.Int j) -> Some j
      | _ -> None)

(* Top-level [batch] (replay burst size); [None] for manifests predating the
   replay pipeline. *)
let batch_of path =
  match Obs.Json.parse (read_file path) with
  | Error e -> fail "%s: not JSON: %s" path e
  | Ok obj -> (
      match Obs.Json.member "batch" obj with
      | Some (Obs.Json.Int b) when b > 0 -> Some b
      | _ -> None)

(* Latest two BENCH_*.json in [dir] by (mtime, name); the older of the pair
   is the baseline. *)
let latest_two dir =
  let is_bench name =
    String.length name > 10
    && String.sub name 0 6 = "BENCH_"
    && Filename.check_suffix name ".json"
  in
  let files =
    Sys.readdir dir |> Array.to_list |> List.filter is_bench
    |> List.map (fun name ->
           let path = Filename.concat dir name in
           ((Unix.stat path).Unix.st_mtime, name, path))
    |> List.sort compare
  in
  match List.rev files with
  | (_, _, newest) :: (_, _, previous) :: _ -> (previous, newest)
  | _ -> fail "%s: need at least two BENCH_*.json files to diff" dir

let jobs_label = function Some j -> Printf.sprintf "-j %d" j | None -> "-j ?"

let batch_label = function
  | Some b -> Printf.sprintf "batch %d" b
  | None -> "batch ?"

let () =
  let max_regress = ref 20.0 in
  let noise = ref 0.05 in
  let lab_dir = ref "bench/lab" in
  let against = ref None in
  let positional = ref [] in
  let rec parse = function
    | [] -> ()
    | "--max-regress" :: pct :: rest ->
        (match float_of_string_opt pct with
        | Some f when f >= 0.0 -> max_regress := f
        | _ -> usage_exit ());
        parse rest
    | "--noise" :: s :: rest ->
        (match float_of_string_opt s with
        | Some f when f >= 0.0 -> noise := f
        | _ -> usage_exit ());
        parse rest
    | "--lab" :: dir :: rest ->
        lab_dir := dir;
        parse rest
    | "--against" :: selector :: rest ->
        against := Some selector;
        parse rest
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' -> usage_exit ()
    | arg :: rest ->
        positional := !positional @ [ arg ];
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  (* (label, jobs if known, batch if known, lazy (id, seconds) list) for
     each side.  Timings stay lazy so the identity gates below run first: a
     pair refused for mismatched jobs/batch is named as such even when one
     side is a run manifest with no [experiments_timed] at all.  With
     --against, the baseline comes out of the lab ledger; both paths share
     the same gate via Castan.Lab.render_diff. *)
  let (base_label, base_jobs, base_batch, base), (new_label, new_jobs,
                                                  new_batch, next) =
    match !against with
    | Some selector ->
        let new_path =
          match !positional with [ p ] -> p | _ -> usage_exit ()
        in
        let run =
          match Castan.Lab.load ~dir:!lab_dir with
          | Error e -> fail "bench_diff: %s" e
          | Ok store -> (
              match Castan.Lab.find_run store selector with
              | Ok run -> run
              | Error e -> fail "bench_diff: %s" e)
        in
        let base_jobs =
          let j = run.Castan.Lab.identity.Castan.Manifest.jobs in
          if j > 0 then Some j else None
        in
        let base_batch =
          let b = run.Castan.Lab.identity.Castan.Manifest.batch in
          if b > 0 then Some b else None
        in
        ( ( Printf.sprintf "%s@%s"
              (String.sub run.Castan.Lab.run_id 0 12)
              run.Castan.Lab.file,
            base_jobs,
            base_batch,
            lazy (Castan.Lab.timings run) ),
          ( new_path,
            jobs_of new_path,
            batch_of new_path,
            lazy (timings new_path) ) )
    | None ->
        let base_path, new_path =
          match !positional with
          | [ dir ] when Sys.file_exists dir && Sys.is_directory dir ->
              latest_two dir
          | [ base; next ] -> (base, next)
          | _ -> usage_exit ()
        in
        ( ( base_path,
            jobs_of base_path,
            batch_of base_path,
            lazy (timings base_path) ),
          ( new_path,
            jobs_of new_path,
            batch_of new_path,
            lazy (timings new_path) ) )
  in
  (* Wall times measured at different job counts answer different questions;
     refuse to gate on them rather than report a bogus regression.  The
     refusal names both counts so the fix (re-run one side at the other's
     -j) is obvious. *)
  if base_jobs <> new_jobs && (base_jobs <> None || new_jobs <> None) then begin
    Printf.eprintf
      "bench_diff: job counts differ (%s ran %s, %s ran %s); wall times are \
       not comparable, skipping the regression gate\n"
      base_label (jobs_label base_jobs) new_label (jobs_label new_jobs);
    exit 2
  end;
  (* Same story for the replay burst size: batching shifts dispatch and
     bookkeeping costs, so wall times at different batch sizes answer
     different questions.  A manifest predating the replay pipeline states
     no [batch] and is given the benefit of the doubt (the speedup-over-seed
     baseline pair depends on it); two manifests that both state a batch
     must agree. *)
  if base_batch <> new_batch && base_batch <> None && new_batch <> None
  then begin
    Printf.eprintf
      "bench_diff: replay batch sizes differ (%s ran %s, %s ran %s); wall \
       times are not comparable, skipping the regression gate\n"
      base_label (batch_label base_batch) new_label (batch_label new_batch);
    exit 2
  end;
  let rendered, regressions =
    Castan.Lab.render_diff ~noise:!noise ~max_regress:!max_regress
      ~base_label ~next_label:new_label ~base:(Lazy.force base)
      ~next:(Lazy.force next)
  in
  print_string rendered;
  if regressions > 0 then begin
    Printf.printf "%d experiment(s) regressed beyond %.0f%%\n" regressions
      !max_regress;
    exit 1
  end
  else print_endline "no regressions beyond gate"
