(* The replay pipeline's determinism contract (DESIGN.md §14): burst
   processing, superblock compilation and sharded replay are pure wall-time
   optimizations — samples, metrics and profile attribution are bit-identical
   to the per-packet, per-instruction baseline for every batch size, compile
   mode, shard count and job count. *)

let qtest = QCheck_alcotest.to_alcotest

(* Compile mode and batch size are process-wide defaults; every test that
   moves them must put them back or it would perturb its neighbours. *)
let with_mode mode f =
  let saved = Ir.Compile.default_mode () in
  Ir.Compile.set_default_mode mode;
  Fun.protect ~finally:(fun () -> Ir.Compile.set_default_mode saved) f

let with_jobs n f =
  let saved = Util.Pool.default_jobs () in
  Util.Pool.set_default_jobs n;
  Fun.protect ~finally:(fun () -> Util.Pool.set_default_jobs saved) f

let replay_nfs = [ "lb-hash-ring"; "nat-hash-ring"; "lpm-btrie" ]

let workload_for nf_name =
  let nf = Nf.Registry.find nf_name in
  let rng = Util.Rng.create 0x5eed in
  {
    Testbed.Workload.name = "test-replay";
    packets =
      Array.init 64 (fun _ -> nf.Nf.Nf_def.shape (Testbed.Traffic.random_packet rng));
  }

(* ---------------- burst ≡ per-packet ---------------- *)

(* process_burst on one DUT must equal Array.map process on another, for any
   packet sequence: the burst loop shares the DUT's warmed caches exactly
   like consecutive process calls do. *)
let burst_equals_map =
  QCheck.Test.make ~name:"process_burst = Array.map process" ~count:20
    QCheck.(
      pair (oneofl replay_nfs) (list_of_size (Gen.int_range 1 80) small_nat))
    (fun (name, picks) ->
      let nf = Nf.Registry.find name in
      let w = workload_for name in
      let pkts =
        Array.of_list
          (List.map
             (fun k -> Testbed.Workload.nth_looped w k)
             picks)
      in
      let a = Testbed.Dut.create nf in
      let b = Testbed.Dut.create nf in
      Testbed.Dut.process_burst a pkts = Array.map (Testbed.Dut.process b) pkts)

(* ---------------- batch size and compile mode ---------------- *)

let replay_with ~mode ~batch name ~samples =
  with_mode mode (fun () ->
      let nf = Nf.Registry.find name in
      let dut = Testbed.Dut.create nf in
      Testbed.Dut.replay ~batch dut (workload_for name) ~samples)

(* The per-instruction engine at batch 1 is the reference; the superblock
   engine must reproduce its samples byte for byte at every burst size. *)
let modes_and_batches_agree () =
  List.iter
    (fun name ->
      let reference =
        replay_with ~mode:Ir.Compile.Instr ~batch:1 name ~samples:700
      in
      List.iter
        (fun batch ->
          List.iter
            (fun mode ->
              let got = replay_with ~mode ~batch name ~samples:700 in
              Alcotest.(check bool)
                (Printf.sprintf "%s %s batch=%d" name
                   (Ir.Compile.mode_to_string mode)
                   batch)
                true
                (got = reference))
            [ Ir.Compile.Instr; Ir.Compile.Superblock ])
        [ 1; 7; 32; 257 ])
    replay_nfs

(* ---------------- sharding and job count ---------------- *)

let sharded ~shards ~batch name ~samples =
  let nf = Nf.Registry.find name in
  let make ~shard =
    if shard = 0 then Testbed.Dut.create nf
    else Testbed.Dut.create ~vmem_seed:(0x1000 + (shard * 7919)) nf
  in
  Testbed.Dut.replay_sharded ~batch ~shards ~make (workload_for name) ~samples

(* shards = 1 is the classic serial replay; more shards redistribute the
   index space deterministically — and neither the job count nor the batch
   size may change a single sample. *)
let sharded_deterministic () =
  let name = "lb-hash-ring" in
  let one = sharded ~shards:1 ~batch:32 name ~samples:500 in
  let legacy =
    let dut = Testbed.Dut.create (Nf.Registry.find name) in
    Testbed.Dut.replay ~batch:32 dut (workload_for name) ~samples:500
  in
  Alcotest.(check bool) "shards=1 = replay" true (one = legacy);
  let j1 = with_jobs 1 (fun () -> sharded ~shards:3 ~batch:32 name ~samples:500) in
  let j4 = with_jobs 4 (fun () -> sharded ~shards:3 ~batch:32 name ~samples:500) in
  Alcotest.(check bool) "-j1 = -j4" true (j1 = j4);
  let b7 = with_jobs 4 (fun () -> sharded ~shards:3 ~batch:7 name ~samples:500) in
  Alcotest.(check bool) "batch 32 = batch 7" true (j4 = b7);
  Alcotest.(check int) "sample count" 500 (Array.length j4)

let shard_ranges_partition =
  QCheck.Test.make ~name:"shard ranges partition the index space" ~count:200
    QCheck.(pair (int_range 1 10_000) (int_range 1 32))
    (fun (samples, shards) ->
      let ranges =
        List.init shards (fun i -> Testbed.Dut.shard_range ~samples ~shards i)
      in
      let covers =
        List.for_all2
          (fun i (lo, hi) ->
            lo <= hi
            && (i = 0 || snd (Testbed.Dut.shard_range ~samples ~shards (i - 1)) = lo))
          (List.init shards Fun.id) ranges
      in
      covers
      && fst (List.hd ranges) = 0
      && snd (List.nth ranges (shards - 1)) = samples)

(* ---------------- budget exhaustion ---------------- *)

(* The superblock fast path prefunds a whole run's weight; it must still
   give out at exactly the same instruction as the per-instruction engine
   (the fused closure falls back when the budget cannot cover the run). *)
let budget_exhaustion_agrees () =
  let nf = Nf.Registry.find "lpm-btrie" in
  let hooks =
    {
      Ir.Interp.no_hooks with
      hash_apply = (fun n k -> (Hashrev.Hashes.lookup n).apply k);
      hash_weight = (fun n -> (Hashrev.Hashes.lookup n).weight);
    }
  in
  let entry = Ir.Cfg.entry_func nf.Nf.Nf_def.program in
  let rng = Util.Rng.create 99 in
  let p = nf.Nf.Nf_def.shape (Testbed.Traffic.random_packet rng) in
  let args = Nf.Packet.args_for entry p in
  let outcome_at mode budget =
    with_mode mode (fun () ->
        let compiled = Ir.Compile.program nf.Nf.Nf_def.program in
        let mem = ref (Nf.Nf_def.fresh_memory nf) in
        match Ir.Compile.call compiled ~mem ~hooks ~budget "process" args with
        | o -> Some o
        | exception Ir.Interp.Budget_exhausted -> None)
  in
  (* Sweep budgets through the exhaustion boundary: both engines must agree
     on exactly which budgets complete and on the outcome when they do. *)
  for budget = 1 to 400 do
    let a = outcome_at Ir.Compile.Instr budget in
    let b = outcome_at Ir.Compile.Superblock budget in
    if a <> b then
      Alcotest.failf "budget %d: instr %s, superblock %s" budget
        (match a with Some _ -> "completes" | None -> "exhausts")
        (match b with Some _ -> "completes" | None -> "exhausts")
  done

(* ---------------- profile attribution ---------------- *)

(* Flamegraphs must not care which engine ran: per-(func, pc) attribution is
   identical because the fused closure falls back to per-instruction
   execution whenever the profiler is live. *)
let profile_attribution_identical () =
  let sites_with mode =
    with_mode mode (fun () ->
        let nf = Nf.Registry.find "nat-hash-ring" in
        let dut = Testbed.Dut.create nf in
        Obs.Profile.reset ();
        Obs.Profile.set_enabled true;
        ignore
          (Testbed.Dut.replay dut (workload_for "nat-hash-ring") ~samples:300
            : Testbed.Dut.sample array);
        Obs.Profile.set_enabled false;
        let sites = Obs.Profile.sites () in
        Obs.Profile.reset ();
        List.map
          (fun (site, (s : Obs.Profile.stats)) ->
            (site, (s.cycles, s.instrs, s.loads, s.stores, s.l1, s.l2, s.l3, s.dram)))
          sites)
  in
  let a = sites_with Ir.Compile.Instr in
  let b = sites_with Ir.Compile.Superblock in
  Alcotest.(check bool) "site attribution identical" true (a = b);
  Alcotest.(check bool) "profile non-empty" true (a <> [])

(* ---------------- replay telemetry ---------------- *)

let replay_counters () =
  Obs.Metrics.set_active true;
  Fun.protect ~finally:(fun () ->
      Obs.Metrics.set_active false;
      Obs.Metrics.reset ())
  @@ fun () ->
  let before name =
    match Obs.Json.member name (Obs.Metrics.snapshot ()) with
    | Some (Obs.Json.Obj counters) -> (
        match List.assoc_opt "replay.packets" counters with
        | Some (Obs.Json.Int n) -> n
        | _ -> 0)
    | _ -> 0
  in
  ignore (before "counters" : int);
  let nf = Nf.Registry.find "lb-hash-ring" in
  let dut = Testbed.Dut.create nf in
  let w = workload_for "lb-hash-ring" in
  ignore (Testbed.Dut.replay ~batch:32 dut w ~samples:100 : Testbed.Dut.sample array);
  let counters =
    match Obs.Json.member "counters" (Obs.Metrics.snapshot ()) with
    | Some (Obs.Json.Obj kv) -> kv
    | _ -> []
  in
  let value name =
    match List.assoc_opt name counters with
    | Some (Obs.Json.Int n) -> n
    | _ -> 0
  in
  Alcotest.(check bool) "replay.packets counts samples" true
    (value "replay.packets" >= 100);
  Alcotest.(check bool) "replay.bursts counts ceil(samples/batch)" true
    (value "replay.bursts" >= 4)

let tests =
  [
    qtest burst_equals_map;
    Alcotest.test_case "modes x batches bit-identical" `Quick
      modes_and_batches_agree;
    Alcotest.test_case "sharded replay deterministic" `Quick
      sharded_deterministic;
    qtest shard_ranges_partition;
    Alcotest.test_case "budget exhaustion agrees across engines" `Quick
      budget_exhaustion_agrees;
    Alcotest.test_case "profile attribution engine-independent" `Quick
      profile_attribution_identical;
    Alcotest.test_case "replay.* counters" `Quick replay_counters;
  ]
