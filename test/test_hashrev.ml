(* Tests for castan.hashrev: hash functions, rainbow tables, havoc
   reconciliation. *)

let qtest = QCheck_alcotest.to_alcotest

let hash_deterministic =
  QCheck.Test.make ~name:"hashes are deterministic and in range" ~count:500
    QCheck.(pair (oneofl [ "flow16"; "ring24" ]) (int_range 0 (1 lsl 48)))
    (fun (name, key) ->
      let h = Hashrev.Hashes.lookup name in
      let v1 = h.apply key and v2 = h.apply key in
      v1 = v2 && v1 >= 0 && v1 <= Hashrev.Hashes.mask h)

let hash_mixes_bits () =
  (* flipping one input bit should change the output most of the time *)
  let h = Hashrev.Hashes.flow16 in
  let changed = ref 0 in
  for bit = 0 to 47 do
    if h.apply 0x123456789AB <> h.apply (0x123456789AB lxor (1 lsl bit)) then
      incr changed
  done;
  Alcotest.(check bool) "avalanche" true (!changed > 40)

let hash_unknown_rejected () =
  match Hashrev.Hashes.lookup "sha256" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection"

(* 2^20 keys over a 16-bit hash: ~16 preimages per value, enough to give
   each packet of a colliding workload its own flow. *)
let small_keyspace =
  Hashrev.Rainbow.keyspace ~name:"test" ~count:(1 lsl 20) ~key_of_index:(fun i ->
      ((0x0A000000 + (i lsr 12)) lsl 16) lor (1024 + (i land 0xFFF)))

(* Built once: the table is reused by several tests. *)
let exhaustive_table =
  lazy (Hashrev.Rainbow.build_exhaustive ~hash:Hashrev.Hashes.flow16 small_keyspace)

let exhaustive_inverts =
  QCheck.Test.make ~name:"exhaustive table inverts its keyspace" ~count:200
    (QCheck.int_range 0 ((1 lsl 20) - 1))
    (fun idx ->
      let hash = Hashrev.Hashes.flow16 in
      let t = Lazy.force exhaustive_table in
      let key = small_keyspace.key_of_index idx in
      let hv = hash.apply key in
      List.mem key (Hashrev.Rainbow.invert t hv))

let exhaustive_results_verified () =
  let hash = Hashrev.Hashes.flow16 in
  let t = Lazy.force exhaustive_table in
  for hv = 0 to 200 do
    List.iter
      (fun key ->
        Alcotest.(check int) "preimage verifies" hv (hash.apply key))
      (Hashrev.Rainbow.invert t hv)
  done

let exhaustive_full_coverage () =
  let t = Lazy.force exhaustive_table in
  let cov = Hashrev.Rainbow.coverage_sample t ~samples:300 in
  Alcotest.(check (float 0.001)) "coverage 1.0" 1.0 cov

let chains_invert_verified () =
  let hash = Hashrev.Hashes.flow16 in
  let t = Hashrev.Rainbow.build ~hash small_keyspace ~chains:2048 ~chain_len:32 () in
  let rng = Util.Rng.create 5 in
  let found = ref 0 in
  for _ = 1 to 50 do
    let key = small_keyspace.key_of_index (Util.Rng.int rng small_keyspace.count) in
    let hv = hash.apply key in
    let preimages = Hashrev.Rainbow.invert t hv in
    List.iter
      (fun k -> Alcotest.(check int) "verified" hv (hash.apply k))
      preimages;
    if preimages <> [] then incr found
  done;
  (* chains cover only part of the space; expect nonzero hit rate *)
  Alcotest.(check bool) "some coverage" true (!found > 5)

let reconcile_single_havoc () =
  let out = Ir.Expr.fresh ~label:"flow16" ~width:16 in
  let key_expr : Ir.Expr.sexpr =
    Binop
      ( Or,
        Binop (Shl, Leaf (Ir.Expr.Pkt { pkt = 0; field = Src_ip }), Const 16),
        Leaf (Ir.Expr.Pkt { pkt = 0; field = Src_port }) )
  in
  let hash = Hashrev.Hashes.flow16 in
  let table = Lazy.force exhaustive_table in
  let pcs : Ir.Expr.sexpr list =
    [ Cmp (Eq, Binop (And, Leaf out, Const 0xFFFF), Const 0x4242) ]
  in
  let havocs =
    [ { Hashrev.Reconcile.hv_pkt = 0; hv_hash = "flow16"; hv_input = key_expr;
        hv_output = out } ]
  in
  let r =
    Hashrev.Reconcile.run
      ~tables:(fun n -> if n = "flow16" then Some table else None)
      ~pcs ~havocs ()
  in
  Alcotest.(check int) "reconciled" 1 (List.length r.reconciled);
  match Solver.Solve.sat r.constraints with
  | Sat m ->
      let src = Solver.Solve.Model.get m (Pkt { pkt = 0; field = Src_ip }) in
      let port = Solver.Solve.Model.get m (Pkt { pkt = 0; field = Src_port }) in
      Alcotest.(check int) "packet hashes to target" 0x4242
        (hash.apply ((src lsl 16) lor port))
  | _ -> Alcotest.fail "reconciled constraints unsolvable"

let reconcile_collision_chain () =
  (* several packets forced into the same bucket, all flows distinct *)
  let hash = Hashrev.Hashes.flow16 in
  let table = Lazy.force exhaustive_table in
  let n = 6 in
  let havocs =
    List.init n (fun pkt ->
        let out = Ir.Expr.fresh ~label:"flow16" ~width:16 in
        let key : Ir.Expr.sexpr =
          Binop
            ( Or,
              Binop (Shl, Leaf (Ir.Expr.Pkt { pkt; field = Src_ip }), Const 16),
              Leaf (Ir.Expr.Pkt { pkt; field = Src_port }) )
        in
        (pkt, key, out))
  in
  let pcs =
    List.map
      (fun (_, _, out) : Ir.Expr.sexpr -> Cmp (Eq, Leaf out, Const 0x777))
      havocs
    @ List.concat_map
        (fun (i, ki, _) ->
          List.filter_map
            (fun (j, kj, _) ->
              if j < i then Some (Ir.Expr.Cmp (Ne, ki, kj)) else None)
            havocs)
        havocs
  in
  let records =
    List.map
      (fun (pkt, key, out) ->
        { Hashrev.Reconcile.hv_pkt = pkt; hv_hash = "flow16"; hv_input = key;
          hv_output = out })
      havocs
  in
  let r =
    Hashrev.Reconcile.run
      ~tables:(fun n -> if n = "flow16" then Some table else None)
      ~pcs ~havocs:records ()
  in
  Alcotest.(check int) "all reconciled" n (List.length r.reconciled);
  match Solver.Solve.sat r.constraints with
  | Sat m ->
      let keys =
        List.map
          (fun (pkt, _, _) ->
            let src = Solver.Solve.Model.get m (Pkt { pkt; field = Src_ip }) in
            let port = Solver.Solve.Model.get m (Pkt { pkt; field = Src_port }) in
            (src lsl 16) lor port)
          havocs
      in
      Alcotest.(check int) "distinct keys" n
        (List.length (List.sort_uniq compare keys));
      List.iter
        (fun k -> Alcotest.(check int) "collides" 0x777 (hash.apply k))
        keys
  | _ -> Alcotest.fail "collision constraints unsolvable"

let reconcile_without_table () =
  let out = Ir.Expr.fresh ~label:"flow16" ~width:16 in
  let havocs =
    [ { Hashrev.Reconcile.hv_pkt = 0; hv_hash = "flow16";
        hv_input = Ir.Expr.Const 7; hv_output = out } ]
  in
  let r = Hashrev.Reconcile.run ~tables:(fun _ -> None) ~pcs:[] ~havocs () in
  Alcotest.(check int) "unreconciled" 1 (List.length r.unreconciled);
  Alcotest.(check int) "constraints unchanged" 0 (List.length r.constraints)

let keyspace_injective =
  QCheck.Test.make ~name:"tailored keyspaces are injective" ~count:300
    QCheck.(pair (int_range 0 100000) (int_range 0 100000))
    (fun (i, j) ->
      QCheck.assume (i <> j);
      small_keyspace.key_of_index i <> small_keyspace.key_of_index j)

let tests =
  [
    qtest hash_deterministic;
    Alcotest.test_case "hash avalanche" `Quick hash_mixes_bits;
    Alcotest.test_case "unknown hash" `Quick hash_unknown_rejected;
    qtest exhaustive_inverts;
    Alcotest.test_case "exhaustive verified" `Quick exhaustive_results_verified;
    Alcotest.test_case "exhaustive coverage" `Quick exhaustive_full_coverage;
    Alcotest.test_case "chains invert" `Quick chains_invert_verified;
    Alcotest.test_case "reconcile one havoc" `Quick reconcile_single_havoc;
    Alcotest.test_case "reconcile collision chain" `Slow reconcile_collision_chain;
    Alcotest.test_case "reconcile without table" `Quick reconcile_without_table;
    qtest keyspace_injective;
  ]
