(* Tests for the Util.Pool worker pool and its determinism contract: results
   in input order for every [jobs], lowest-failing-index exception choice,
   telemetry (metrics/profile/resilience) merged bit-identically, split_ix
   RNG discipline, and the memo-table thread-safety the harness prewarm
   relies on. *)

let qtest = QCheck_alcotest.to_alcotest

(* A cheap pure function with enough bit-mixing that ordering mistakes
   cannot cancel out. *)
let mix x = (x * 2654435761) lxor (x asr 3)

(* ---------------- map/mapi vs the serial baseline ---------------- *)

let map_matches_serial =
  QCheck.Test.make ~name:"Pool.map ~jobs:k = List.map" ~count:200
    QCheck.(pair (int_range 1 8) (small_list small_int))
    (fun (jobs, items) ->
      Util.Pool.map ~jobs mix items = List.map mix items)

let mapi_matches_serial =
  QCheck.Test.make ~name:"Pool.mapi ~jobs:k = List.mapi" ~count:200
    QCheck.(pair (int_range 1 8) (small_list small_int))
    (fun (jobs, items) ->
      Util.Pool.mapi ~jobs (fun i x -> (i, mix x)) items
      = List.mapi (fun i x -> (i, mix x)) items)

exception Boom of int

let raises_lowest_failing_index =
  QCheck.Test.make ~name:"Pool.mapi re-raises the lowest failing index"
    ~count:200
    QCheck.(pair (int_range 1 8) (small_list bool))
    (fun (jobs, fails) ->
      QCheck.assume (List.exists Fun.id fails);
      (* expected failure: the first [true], computed explicitly — never via
         List.map evaluation order *)
      let rec first i = function
        | [] -> assert false
        | true :: _ -> i
        | false :: rest -> first (i + 1) rest
      in
      let expected = first 0 fails in
      match
        Util.Pool.mapi ~jobs (fun i b -> if b then raise (Boom i) else i) fails
      with
      | _ -> false
      | exception Boom i -> i = expected)

let chunked_partitions =
  QCheck.Test.make ~name:"Pool.chunked covers [0,n) contiguously" ~count:200
    QCheck.(pair (int_range 1 8) (int_range 0 1000))
    (fun (jobs, n) ->
      let ranges = Util.Pool.chunked ~jobs n (fun ~lo ~hi -> (lo, hi)) in
      if n = 0 then ranges = []
      else
        let rec contiguous expect = function
          | [] -> expect = n
          | (lo, hi) :: rest -> lo = expect && hi >= lo && contiguous hi rest
        in
        contiguous 0 ranges)

(* ---------------- split_ix RNG discipline ---------------- *)

(* Child streams depend only on (root state, index): deriving them in any
   order — or from different shards — yields the same values, which is what
   makes Pool.chunked sampling jobs-invariant. *)
let split_ix_order_invariant () =
  let draw root i = Util.Rng.int (Util.Rng.split_ix root i) 1_000_000 in
  let a = Util.Rng.create 42 and b = Util.Rng.create 42 in
  let forward = List.init 32 (fun i -> draw a i) in
  let backward = List.rev (List.init 32 (fun i -> draw b (31 - i))) in
  Alcotest.(check (list int)) "derivation order is irrelevant" forward backward;
  (* split_ix must not advance the parent *)
  let p = Util.Rng.create 7 in
  ignore (Util.Rng.split_ix p 5 : Util.Rng.t);
  let after = Util.Rng.int p 1_000_000 in
  let q = Util.Rng.create 7 in
  Alcotest.(check int) "parent stream untouched" (Util.Rng.int q 1_000_000)
    after

let split_ix_children_distinct () =
  let root = Util.Rng.create 1234 in
  let firsts =
    List.init 100 (fun i -> Util.Rng.int (Util.Rng.split_ix root i) max_int)
  in
  Alcotest.(check int) "100 distinct child streams" 100
    (List.length (List.sort_uniq compare firsts))

(* ---------------- telemetry merge determinism ---------------- *)

(* Instruments created *inside* the task, as instrumented modules do — on a
   worker these are detached captures the pool replays by name at join. *)
let metric_task i =
  Obs.Metrics.incr ~by:(i + 1) (Obs.Metrics.counter "pool.test.ctr");
  Obs.Metrics.gauge_set (Obs.Metrics.gauge "pool.test.gauge") (i * 7 mod 5);
  Obs.Metrics.observe (Obs.Metrics.histogram "pool.test.hist") (i * 13 mod 17)

let metrics_snapshot_with jobs =
  Obs.Metrics.set_active true;
  Obs.Metrics.reset ();
  Util.Pool.run ~jobs (List.init 12 (fun i () -> metric_task i));
  let s = Obs.Json.to_string (Obs.Metrics.snapshot ()) in
  Obs.Metrics.reset ();
  Obs.Metrics.set_active false;
  s

let metrics_merge_deterministic () =
  Alcotest.(check string) "serial and -j4 snapshots are byte-identical"
    (metrics_snapshot_with 1) (metrics_snapshot_with 4)

let profile_task i =
  Obs.Profile.enter ~func:(Printf.sprintf "fn%d" (i mod 3)) ~pc:(i mod 5);
  Obs.Profile.add_exec ~instrs:(i + 1) ~cycles:((2 * i) + 1) ~loads:i ~stores:1;
  Obs.Profile.add_retire ~weight:1;
  Obs.Profile.add_access ~write:(i mod 2 = 0) Obs.Profile.L1 ~cycles:4

let profile_sites_with jobs =
  Obs.Profile.set_enabled true;
  Obs.Profile.reset ();
  Util.Pool.run ~jobs (List.init 10 (fun i () -> profile_task i));
  let sites = List.sort compare (Obs.Profile.sites ()) in
  Obs.Profile.reset ();
  Obs.Profile.set_enabled false;
  sites

let profile_merge_deterministic () =
  let serial = profile_sites_with 1 and parallel = profile_sites_with 4 in
  Alcotest.(check int) "same number of sites" (List.length serial)
    (List.length parallel);
  Alcotest.(check bool) "site-level attribution is jobs-invariant" true
    (serial = parallel)

let resilience_sink_with jobs =
  Util.Resilience.reset ();
  Util.Pool.run ~jobs
    (List.init 8 (fun i () ->
         Util.Resilience.record
           (Util.Resilience.failure ~stage:(Printf.sprintf "s%d" i) "boom")));
  let stages =
    List.map (fun f -> f.Util.Resilience.stage) (Util.Resilience.recorded ())
  in
  Util.Resilience.reset ();
  stages

let resilience_sink_order_deterministic () =
  Alcotest.(check (list string)) "failure sink in task-index order"
    (resilience_sink_with 1) (resilience_sink_with 4);
  Alcotest.(check (list string)) "which is submission order"
    (List.init 8 (Printf.sprintf "s%d"))
    (resilience_sink_with 4)

(* ---------------- nesting, stats ---------------- *)

let nested_pool_falls_back_sequential () =
  (* A map inside a worker must not spawn domains (or deadlock): in_worker
     routes it to the serial path within the task's capture context. *)
  let r =
    Util.Pool.map ~jobs:4
      (fun base -> Util.Pool.map ~jobs:4 (fun x -> base + x) [ 1; 2; 3 ])
      [ 10; 20; 30; 40 ]
  in
  Alcotest.(check (list (list int)))
    "nested maps still ordered"
    [ [ 11; 12; 13 ]; [ 21; 22; 23 ]; [ 31; 32; 33 ]; [ 41; 42; 43 ] ]
    r

let stats_count_tasks () =
  Util.Pool.reset_stats ();
  ignore (Util.Pool.map ~jobs:4 mix (List.init 8 Fun.id) : int list);
  let s = Util.Pool.stats () in
  Alcotest.(check int) "8 tasks accounted" 8 s.Util.Pool.tasks;
  Alcotest.(check bool) "busy time accumulated" true
    (s.Util.Pool.worker_busy_ns >= 0);
  (* jobs = 1 takes the serial path: no pool accounting at all *)
  Util.Pool.reset_stats ();
  ignore (Util.Pool.map ~jobs:1 mix (List.init 8 Fun.id) : int list);
  Alcotest.(check int) "serial path bypasses the pool" 0
    (Util.Pool.stats ()).Util.Pool.tasks

(* ---------------- the memo table under concurrency ---------------- *)

let experiment_memo_thread_safe () =
  Castan.Experiment.clear_cache ();
  let results =
    Util.Pool.map ~jobs:4
      (fun _ -> Castan.Experiment.try_run ~config:Castan.Experiment.quick_config "nop")
      [ 1; 2; 3; 4 ]
  in
  Alcotest.(check int) "four results" 4 (List.length results);
  List.iter
    (fun r ->
      match r with
      | Ok run ->
          Alcotest.(check string) "campaign for the right NF" "nop"
            run.Castan.Experiment.nf.Nf.Nf_def.name
      | Error f -> Alcotest.fail (Util.Resilience.to_string f))
    results;
  (* racing callers must have agreed on one canonical memoized value *)
  (match results with
  | Ok first :: rest ->
      List.iter
        (fun r ->
          match r with
          | Ok run ->
              Alcotest.(check bool) "same canonical campaign" true (run == first)
          | Error _ -> ())
        rest
  | _ -> ());
  Castan.Experiment.clear_cache ()

let tests =
  [
    qtest map_matches_serial;
    qtest mapi_matches_serial;
    qtest raises_lowest_failing_index;
    qtest chunked_partitions;
    Alcotest.test_case "split_ix is order-invariant" `Quick
      split_ix_order_invariant;
    Alcotest.test_case "split_ix children are distinct" `Quick
      split_ix_children_distinct;
    Alcotest.test_case "metrics merge is deterministic" `Quick
      metrics_merge_deterministic;
    Alcotest.test_case "profile merge is deterministic" `Quick
      profile_merge_deterministic;
    Alcotest.test_case "resilience sink order is deterministic" `Quick
      resilience_sink_order_deterministic;
    Alcotest.test_case "nested pool falls back to sequential" `Quick
      nested_pool_falls_back_sequential;
    Alcotest.test_case "pool stats count tasks" `Quick stats_count_tasks;
    Alcotest.test_case "experiment memo is thread-safe" `Quick
      experiment_memo_thread_safe;
  ]
