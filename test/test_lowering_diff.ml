(* Differential testing of Lower: a direct reference evaluator for the
   structured AST, compared against the lowered-CFG interpreter (and the
   closure compiler) on randomly generated well-formed programs. *)

open Ir.Dsl

(* ---------------- reference evaluator over Ast.stmt ---------------- *)

exception Ref_return of int
exception Ref_break

let rec ref_exec env stmts =
  List.iter
    (fun (s : Ir.Ast.stmt) ->
      match s with
      | Assign (x, e) -> Hashtbl.replace env x (ref_eval env e)
      | If (c, a, b) -> ref_exec env (if ref_eval env c <> 0 then a else b)
      | While (c, body) -> (
          try
            while ref_eval env c <> 0 do
              ref_exec env body
            done
          with Ref_break -> ())
      | Break -> raise Ref_break
      | Return (Some e) -> raise (Ref_return (ref_eval env e))
      | Return None -> raise (Ref_return 0)
      | Load _ | Store _ | Alloc _ | Call _ | Havoc _ ->
          failwith "reference evaluator: pure statements only")
    stmts

and ref_eval env e =
  Ir.Expr.eval ~leaf:(fun x -> try Hashtbl.find env x with Not_found -> 0) e

let ref_run (f : Ir.Ast.fdef) args =
  let env = Hashtbl.create 8 in
  List.iter2 (fun p a -> Hashtbl.replace env p a) f.params args;
  match ref_exec env f.body with
  | () -> 0
  | exception Ref_return v -> v

(* ---------------- random structured programs ---------------- *)

(* All variables drawn from a fixed set, pre-initialized by assignment at
   the top so reads are always defined; loops bounded by construction
   (counter "k" increments to a small constant). *)
let vars = [ "a"; "b"; "c" ]

let gen_expr : Ir.Expr.pexpr QCheck.Gen.t =
  let open QCheck.Gen in
  sized @@ QCheck.Gen.fix (fun self n ->
      let leaf =
        oneof [ map i (int_range 0 50); map v (oneofl vars) ]
      in
      if n = 0 then leaf
      else
        oneof
          [
            leaf;
            map2 (fun a b -> a +: b) (self (n / 2)) (self (n / 2));
            map2 (fun a b -> a -: b) (self (n / 2)) (self (n / 2));
            map2 (fun a b -> a &: b) (self (n / 2)) (self (n / 2));
            map2 (fun a b -> a <: b) (self (n / 2)) (self (n / 2));
            map2 (fun a b -> a =: b) (self (n / 2)) (self (n / 2));
          ])

let loop_counter = ref 0

let gen_stmts : Ir.Ast.stmt list QCheck.Gen.t =
  let open QCheck.Gen in
  let assign = map2 (fun x e -> x <-- e) (oneofl vars) gen_expr in
  let rec block depth : Ir.Ast.stmt list QCheck.Gen.t =
    if depth = 0 then map (fun s -> [ s ]) assign
    else
      let alternative =
        oneof
          [
            map (fun s -> [ s ]) assign;
            map3
              (fun c a b -> [ if_ c a b ])
              gen_expr (block (depth - 1)) (block (depth - 1));
            (* a loop over a fresh counter, 0..bound, possibly with break *)
            map3
              (fun bound body brk ->
                (* each loop gets its own counter so nesting terminates *)
                incr loop_counter;
                let k = Printf.sprintf "k%d" !loop_counter in
                [
                  k <-- i 0;
                  while_ (v k <: i bound)
                    (body
                    @ (if brk then [ when_ (v k =: i 2) [ break_ ] ] else [])
                    @ [ k <-- v k +: i 1 ]);
                ])
              (int_range 1 6) (block (depth - 1)) bool;
          ]
      in
      map List.concat (list_size (int_range 1 4) alternative)
  in
  map2
    (fun body ret ->
      List.map (fun x -> x <-- i 0) vars @ body @ [ Ir.Dsl.ret ret ])
    (block 2) gen_expr

let print_prog stmts =
  let f = func "main" [ "a0" ] stmts in
  let cfg = Ir.Lower.program (program ~name:"t" ~entry:"main" [ f ]) in
  Format.asprintf "%a" Ir.Cfg.pp cfg

let lowering_agrees =
  QCheck.Test.make ~name:"Lower+Interp+Compile agree with the AST semantics"
    ~count:400
    (QCheck.make ~print:print_prog gen_stmts)
    (fun stmts ->
      let fdef = func "main" [ "a0" ] stmts in
      let expected = ref_run fdef [ 5 ] in
      let prog = Ir.Lower.program (program ~name:"t" ~entry:"main" [ fdef ]) in
      let mem () =
        ref (Ir.Memory.create ~regions:[] ~heap_bytes:4096 ~inject:Fun.id)
      in
      let interp =
        (Ir.Interp.call prog ~mem:(mem ()) ~hooks:Ir.Interp.no_hooks
           ~budget:2_000_000 "main" [ 5 ]).ret
      in
      let compiled =
        (Ir.Compile.call (Ir.Compile.program prog) ~mem:(mem ())
           ~hooks:Ir.Interp.no_hooks ~budget:2_000_000 "main" [ 5 ]).ret
      in
      interp = expected && compiled = expected)

let tests = [ QCheck_alcotest.to_alcotest lowering_agrees ]
