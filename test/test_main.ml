let () =
  Alcotest.run "castan"
    [
      ("util", Test_util.tests);
      ("pool", Test_pool.tests);
      ("ir", Test_ir.tests);
      ("lowering-diff", Test_lowering_diff.tests);
      ("solver", Test_solver.tests);
      ("solver-cache", Test_solver_cache.tests);
      ("cache", Test_cache.tests);
      ("hashrev", Test_hashrev.tests);
      ("symbex", Test_symbex.tests);
      ("nf", Test_nf.tests);
      ("testbed", Test_testbed.tests);
      ("replay", Test_replay.tests);
      ("core", Test_core.tests);
      ("resilience", Test_resilience.tests);
      ("journal", Test_journal.tests);
      ("lab", Test_lab.tests);
      ("obs", Test_obs.tests);
      ("profile", Test_profile.tests);
    ]
