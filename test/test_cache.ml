(* Tests for castan.cache: LRU levels, the inclusive hierarchy, virtual
   memory, contention-set discovery, and the adversarial cache model. *)

let qtest = QCheck_alcotest.to_alcotest
let geom = Cache.Geometry.xeon_e5_2667v2

let geometry_matches_paper () =
  Alcotest.(check int) "l1 sets" 64 (Cache.Geometry.sets geom geom.l1d);
  Alcotest.(check int) "l2 sets" 512 (Cache.Geometry.sets geom geom.l2);
  Alcotest.(check int) "l3 assoc" 20 (Cache.Geometry.l3_assoc geom);
  Alcotest.(check int) "l3 sets/slice" 2560 (Cache.Geometry.l3_sets_per_slice geom);
  (* 25.6MB exactly *)
  Alcotest.(check int) "l3 size" (25600 * 1024)
    (Cache.Geometry.l3_sets_per_slice geom * geom.l3_slices * geom.l3.ways * geom.line)

let level_hit_after_insert () =
  let l = Cache.Level.create ~sets:4 ~ways:2 in
  Alcotest.(check bool) "cold miss" false (Cache.Level.access l ~set:0 ~tag:10);
  Alcotest.(check bool) "hit" true (Cache.Level.access l ~set:0 ~tag:10)

let level_lru_eviction () =
  let l = Cache.Level.create ~sets:1 ~ways:2 in
  ignore (Cache.Level.access l ~set:0 ~tag:1);
  ignore (Cache.Level.access l ~set:0 ~tag:2);
  ignore (Cache.Level.access l ~set:0 ~tag:1) (* promote 1 *);
  ignore (Cache.Level.access l ~set:0 ~tag:3) (* evicts 2, the LRU *);
  Alcotest.(check int) "evicted LRU" 2 (Cache.Level.last_evicted l);
  Alcotest.(check bool) "1 stays" true (Cache.Level.resident l ~set:0 ~tag:1);
  Alcotest.(check bool) "2 gone" false (Cache.Level.resident l ~set:0 ~tag:2)

let level_invalidate () =
  let l = Cache.Level.create ~sets:1 ~ways:4 in
  ignore (Cache.Level.access l ~set:0 ~tag:7);
  Cache.Level.invalidate l ~set:0 ~tag:7;
  Alcotest.(check bool) "gone" false (Cache.Level.resident l ~set:0 ~tag:7);
  Alcotest.(check int) "occupancy" 0 (Cache.Level.occupancy l)

let level_cycle_thrashes =
  QCheck.Test.make ~name:"cycling ways+1 tags always misses" ~count:50
    (QCheck.int_range 2 8)
    (fun ways ->
      let l = Cache.Level.create ~sets:1 ~ways in
      (* warm up one full cycle *)
      for t = 0 to ways do
        ignore (Cache.Level.access l ~set:0 ~tag:t)
      done;
      (* from now on every access in the cycle must miss (LRU worst case) *)
      let all_missed = ref true in
      for round = 1 to 3 do
        ignore round;
        for t = 0 to ways do
          if Cache.Level.access l ~set:0 ~tag:t then all_missed := false
        done
      done;
      !all_missed)

let hierarchy_levels_ordered () =
  let h = Cache.Hierarchy.create geom in
  let a = 0x12340 in
  Alcotest.(check bool) "first access from DRAM" true
    (Cache.Hierarchy.access h a = Cache.Hierarchy.Dram);
  Alcotest.(check bool) "second from L1" true
    (Cache.Hierarchy.access h a = Cache.Hierarchy.L1)

let hierarchy_latencies_monotone () =
  let lat = Cache.Hierarchy.latency geom in
  Alcotest.(check bool) "L1<L2<L3<DRAM" true
    (lat L1 < lat L2 && lat L2 < lat L3 && lat L3 < lat Dram)

let hierarchy_inclusive_backinval () =
  let h = Cache.Hierarchy.create geom in
  (* Fill one L3 set past associativity with lines that share the L3 set;
     the victim must also vanish from L1/L2. *)
  let stride = Cache.Geometry.l3_sets_per_slice geom * geom.line in
  (* find lines in the same hidden slice *)
  let target = Cache.Hierarchy.ground_truth_slice h 0 in
  let same_slice =
    List.init 4096 (fun k -> k * stride)
    |> List.filter (fun a -> Cache.Hierarchy.ground_truth_slice h a = target)
  in
  QCheck.assume (List.length same_slice > geom.l3.ways);
  let first = List.hd same_slice in
  ignore (Cache.Hierarchy.access h first);
  (* touch enough same-set lines to evict [first] from L3 *)
  List.iteri
    (fun k a -> if k > 0 && k <= geom.l3.ways then ignore (Cache.Hierarchy.access h a))
    same_slice;
  (* if back-invalidation works, [first] is gone everywhere: DRAM again *)
  Alcotest.(check bool) "back-invalidated" true
    (Cache.Hierarchy.access h first = Cache.Hierarchy.Dram)

let hierarchy_invalidate_line () =
  let h = Cache.Hierarchy.create geom in
  ignore (Cache.Hierarchy.access h 0x5000);
  Cache.Hierarchy.invalidate_line h 0x5000;
  Alcotest.(check bool) "DRAM after invalidate" true
    (Cache.Hierarchy.access h 0x5000 = Cache.Hierarchy.Dram)

let vmem_offset_preserved =
  QCheck.Test.make ~name:"vmem preserves bits 0-29" ~count:300
    (QCheck.int_range 0 ((1 lsl 34) - 1))
    (fun vaddr ->
      let v = Cache.Vmem.create ~seed:3 in
      Cache.Vmem.offset_of (Cache.Vmem.translate v vaddr)
      = Cache.Vmem.offset_of vaddr)

let vmem_stable_mapping () =
  let v = Cache.Vmem.create ~seed:4 in
  let a = Cache.Vmem.translate v 0x4_1234_5678 in
  let b = Cache.Vmem.translate v 0x4_1234_5678 in
  Alcotest.(check int) "stable" a b

let vmem_distinct_pages () =
  let v = Cache.Vmem.create ~seed:5 in
  let p0 = Cache.Vmem.physical_page v 0 in
  let p1 = Cache.Vmem.physical_page v 1 in
  Alcotest.(check bool) "no aliasing" true (p0 <> p1)

let probing_detects_contention () =
  let m = Cache.Probe.machine ~slice_seed:0 ~vmem_seed:9 geom in
  let stride = Cache.Geometry.l3_sets_per_slice geom * geom.line in
  let base = 1 lsl 30 in
  (* gather ways+1 lines of one ground-truth slice (cheating for the test
     setup only; discovery itself does not) *)
  let truth a =
    Cache.Hierarchy.ground_truth_slice m.Cache.Probe.hier
      (Cache.Vmem.translate m.Cache.Probe.vmem a)
  in
  let all = List.init 2048 (fun k -> base + (k * stride)) in
  let slice0 = List.filter (fun a -> truth a = truth base) all in
  let contending = List.filteri (fun i _ -> i <= geom.l3.ways) slice0 in
  let below = List.filteri (fun i _ -> i < geom.l3.ways) slice0 in
  let t_contending = Cache.Probe.probe_time m (Array.of_list contending) in
  let t_below = Cache.Probe.probe_time m (Array.of_list below) in
  Alcotest.(check bool) "spill visible" true
    (t_contending - t_below > Cache.Probe.delta geom)

let discovery_matches_ground_truth () =
  let m = Cache.Probe.machine ~slice_seed:0 ~vmem_seed:1 geom in
  let offsets = Cache.Contention.standard_offsets geom ~count:192 in
  let pool = Array.map (fun o -> (1 lsl 30) + o) offsets in
  let sets = Cache.Contention.discover_sets m ~pool () in
  Alcotest.(check bool) "several sets" true (List.length sets >= 4);
  let truth a =
    let pa = Cache.Vmem.translate m.Cache.Probe.vmem a in
    ( Cache.Hierarchy.ground_truth_slice m.Cache.Probe.hier pa,
      Cache.Hierarchy.l3_set m.Cache.Probe.hier pa )
  in
  List.iter
    (fun members ->
      match List.map truth members with
      | [] -> ()
      | k0 :: rest ->
          if not (List.for_all (( = ) k0) rest) then
            Alcotest.fail "impure contention set")
    sets

let contention_save_load () =
  let offsets = Cache.Contention.standard_offsets geom ~count:160 in
  let c = Cache.Contention.consistent ~pages:1 ~reboots:1 ~geom ~offsets () in
  let path = Filename.temp_file "castan" ".sets" in
  Cache.Contention.save c path;
  let c2 = Cache.Contention.load path in
  Sys.remove path;
  Alcotest.(check int) "classes survive" c.Cache.Contention.n_classes
    c2.Cache.Contention.n_classes;
  Alcotest.(check int) "alpha" c.Cache.Contention.alpha c2.Cache.Contention.alpha;
  List.iter
    (fun (cls, members) ->
      List.iter
        (fun off ->
          Alcotest.(check (option int)) "same class" (Some cls)
            (Cache.Contention.class_of_vaddr c2 off))
        members)
    (Cache.Contention.classes c)

let consistent_sets_nonempty () =
  let offsets = Cache.Contention.standard_offsets geom ~count:160 in
  let c = Cache.Contention.consistent ~pages:2 ~reboots:1 ~geom ~offsets () in
  Alcotest.(check bool) "classes found" true (c.Cache.Contention.n_classes >= 4);
  (* classified addresses resolve *)
  let cls, members = List.hd (Cache.Contention.classes c) in
  ignore cls;
  List.iter
    (fun off ->
      match Cache.Contention.class_of_vaddr c ((3 lsl 30) + off) with
      | Some _ -> ()
      | None -> Alcotest.fail "member lost its class")
    members

(* ---------------- the adversarial cache model ---------------- *)

let model_concrete_hits_and_misses () =
  let m = Cache.Model.baseline geom in
  let m, o1 = Cache.Model.access_concrete m 0x40000000 in
  Alcotest.(check bool) "cold miss" true o1.Cache.Model.miss;
  let _, o2 = Cache.Model.access_concrete m 0x40000000 in
  Alcotest.(check bool) "warm hit" false o2.Cache.Model.miss;
  Alcotest.(check int) "hit latency" geom.lat_l3 o2.Cache.Model.latency

let model_symbolic_constraint_valid () =
  let dst : Ir.Expr.sexpr = Leaf (Ir.Expr.Pkt { pkt = 0; field = Dst_ip }) in
  let addr : Ir.Expr.sexpr =
    Binop (Add, Const 0x40000000, Binop (Mul, dst, Const 8))
  in
  let m = Cache.Model.baseline geom in
  let _, o = Cache.Model.access_symbolic m ~pcs:[] addr in
  match o.Cache.Model.added with
  | None -> Alcotest.fail "expected a concretization constraint"
  | Some c -> (
      match Solver.Solve.sat [ c ] with
      | Sat model ->
          Alcotest.(check int) "constraint pins the address" o.Cache.Model.addr
            (Solver.Solve.Model.eval model addr)
      | _ -> Alcotest.fail "concretization constraint unsolvable")

let model_concentrates_accesses () =
  (* with the contention model, symbolic accesses pile into few classes *)
  let offsets = Cache.Contention.standard_offsets geom ~count:160 in
  let sets = Cache.Contention.consistent ~pages:2 ~reboots:1 ~geom ~offsets () in
  let model = ref (Cache.Model.contention geom sets) in
  let dst p : Ir.Expr.sexpr = Leaf (Ir.Expr.Pkt { pkt = p; field = Dst_ip }) in
  let classes_hit = Hashtbl.create 8 in
  for p = 0 to 11 do
    let addr : Ir.Expr.sexpr =
      Binop (Add, Const 0x40000000, Binop (Mul, dst p, Const 8))
    in
    let m', o = Cache.Model.access_symbolic !model ~pcs:[] addr in
    model := m';
    (match Cache.Contention.class_of_vaddr sets o.Cache.Model.addr with
    | Some cls -> Hashtbl.replace classes_hit cls ()
    | None -> ())
  done;
  Alcotest.(check bool) "classified targets" true (Hashtbl.length classes_hit >= 1);
  Alcotest.(check bool) "concentrated" true (Hashtbl.length classes_hit <= 2)

let tests =
  [
    Alcotest.test_case "geometry" `Quick geometry_matches_paper;
    Alcotest.test_case "level hit" `Quick level_hit_after_insert;
    Alcotest.test_case "level LRU" `Quick level_lru_eviction;
    Alcotest.test_case "level invalidate" `Quick level_invalidate;
    qtest level_cycle_thrashes;
    Alcotest.test_case "hierarchy order" `Quick hierarchy_levels_ordered;
    Alcotest.test_case "latencies" `Quick hierarchy_latencies_monotone;
    Alcotest.test_case "inclusive back-invalidation" `Quick hierarchy_inclusive_backinval;
    Alcotest.test_case "invalidate line" `Quick hierarchy_invalidate_line;
    qtest vmem_offset_preserved;
    Alcotest.test_case "vmem stable" `Quick vmem_stable_mapping;
    Alcotest.test_case "vmem distinct" `Quick vmem_distinct_pages;
    Alcotest.test_case "probing detects contention" `Quick probing_detects_contention;
    Alcotest.test_case "discovery vs ground truth" `Slow discovery_matches_ground_truth;
    Alcotest.test_case "consistent sets" `Slow consistent_sets_nonempty;
    Alcotest.test_case "contention save/load" `Slow contention_save_load;
    Alcotest.test_case "model concrete" `Quick model_concrete_hits_and_misses;
    Alcotest.test_case "model constraint valid" `Quick model_symbolic_constraint_valid;
    Alcotest.test_case "model concentrates" `Slow model_concentrates_accesses;
  ]
