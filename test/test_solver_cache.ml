(* Tests for the solver query-optimization layer: independent-constraint
   slicing (Solver.Slice) and the canonicalized query cache (Solver.Qcache)
   behind Solve.feasible_cached.  The load-bearing property is the first
   one: cached and uncached feasibility must agree verdict-for-verdict, on
   satisfiable path conditions (the regime the symbex engine guarantees:
   every constraint passed a feasibility check at insertion). *)

open Ir.Expr

let qtest = QCheck_alcotest.to_alcotest

let with_fresh_cache f =
  (* Tests share the process-ambient cache with everything else in the
     suite; isolate and always restore the default-enabled state. *)
  Solver.Qcache.set_enabled true;
  Solver.Qcache.clear ();
  Fun.protect ~finally:(fun () ->
      Solver.Qcache.set_enabled true;
      Solver.Qcache.clear ())
    f

(* Satisfiable-by-construction constraint sets, as in test_solver's
   never_unsat_on_satisfiable: pin each random expression to its value
   under a seed-derived assignment. *)
let satisfiable_set seed es =
  let leaf = Test_solver.assignment_of seed in
  List.filter_map
    (fun e ->
      match eval ~leaf e with
      | exception Division_by_zero -> None
      | v -> Some (Cmp (Eq, e, Const v) : sexpr))
    es

let cached_agrees_with_uncached =
  QCheck.Test.make
    ~name:"feasible_cached agrees with feasible on satisfiable sets"
    ~count:400
    QCheck.(
      triple small_int bool
        (list_of_size (QCheck.Gen.int_range 2 7) Test_solver.arb_sexpr))
    (fun (seed, contradict, es) ->
      with_fresh_cache @@ fun () ->
      match satisfiable_set seed es with
      | [] -> true
      | q :: pcs ->
          (* Optionally turn the query into a propagation-provable
             contradiction of a pcs constraint (e = v while pcs pins
             e = v+1), exercising the unsat side of the cache. *)
          let q, pcs =
            if contradict && pcs <> [] then
              match List.hd pcs with
              | Cmp (Eq, e, Const v) -> ((Cmp (Eq, e, Const (v + 1)) : sexpr), pcs)
              | _ -> (q, pcs)
            else (q, pcs)
          in
          let uncached = Solver.Solve.feasible (q :: pcs) in
          (* Ask repeatedly: the first call populates the cache, the second
             must answer from it; both must match the uncached verdict. *)
          let c1 = Solver.Solve.feasible_cached ~query:q pcs in
          let c2 = Solver.Solve.feasible_cached ~query:q pcs in
          c1 = uncached && c2 = uncached)

let slicing_keeps_query_component =
  QCheck.Test.make
    ~name:"slicing never drops a constraint sharing a variable with the query"
    ~count:400
    QCheck.(
      pair Test_solver.arb_sexpr
        (list_of_size (QCheck.Gen.int_range 0 8) Test_solver.arb_sexpr))
    (fun (query, pcs) ->
      let slice, dropped = Solver.Slice.relevant ~query pcs in
      let shares_sym c =
        let qsyms = Solver.Slice.free_syms query in
        List.exists
          (fun s -> List.exists (fun s' -> compare_sym s s' = 0) qsyms)
          (Solver.Slice.free_syms c)
      in
      List.length slice + dropped = List.length pcs
      && List.for_all
           (fun c ->
             (not (shares_sym c))
             || List.exists (fun c' -> equal_sexpr c c') slice)
           pcs)

let slice_components () =
  let dst = Test_solver.pkt0 Dst_ip
  and src = Test_solver.pkt0 Src_ip
  and sport = Test_solver.pkt0 Src_port in
  let pcs : sexpr list =
    [
      Cmp (Eq, src, Const 1);
      Cmp (Eq, sport, Const 2);
      Cmp (Eq, dst, Const 3);
      Cmp (Eq, Const 1, Const 1) (* ground: must never be sliced away *);
    ]
  in
  let slice, dropped =
    Solver.Slice.relevant ~query:(Cmp (Lt, dst, Const 10)) pcs
  in
  Alcotest.(check int) "dropped the two unrelated constraints" 2 dropped;
  Alcotest.(check bool) "kept the dst constraint" true
    (List.exists (equal_sexpr (Cmp (Eq, dst, Const 3) : sexpr)) slice);
  Alcotest.(check bool) "kept the ground constraint" true
    (List.exists (equal_sexpr (Cmp (Eq, Const 1, Const 1) : sexpr)) slice);
  (* Transitive components: src links to sport through a shared constraint,
     so a src query must keep the sport constraint too. *)
  let linked : sexpr list =
    [ Cmp (Lt, src, sport); Cmp (Eq, sport, Const 9); Cmp (Eq, dst, Const 3) ]
  in
  let slice, dropped =
    Solver.Slice.relevant ~query:(Cmp (Eq, src, Const 4)) linked
  in
  Alcotest.(check int) "only dst dropped" 1 dropped;
  Alcotest.(check int) "src+sport kept" 2 (List.length slice)

let exact_and_alpha_hits () =
  with_fresh_cache @@ fun () ->
  Solver.Qcache.reset_stats ();
  let q0 : sexpr = Cmp (Eq, Test_solver.pkt0 Dst_ip, Const 5) in
  let q1 : sexpr = Cmp (Eq, Test_solver.pkt1 Dst_ip, Const 5) in
  Alcotest.(check bool) "first ask" true
    (Solver.Solve.feasible_cached ~query:q0 []);
  Alcotest.(check bool) "second ask" true
    (Solver.Solve.feasible_cached ~query:q0 []);
  Alcotest.(check bool) "alpha-renamed ask" true
    (Solver.Solve.feasible_cached ~query:q1 []);
  let s = Solver.Qcache.stats () in
  Alcotest.(check int) "one miss" 1 s.misses;
  Alcotest.(check int) "exact + alpha hits" 2 s.hits

let unsat_is_cached () =
  with_fresh_cache @@ fun () ->
  Solver.Qcache.reset_stats ();
  let dst = Test_solver.pkt0 Dst_ip in
  let pcs : sexpr list = [ Cmp (Eq, dst, Const 6) ] in
  let q : sexpr = Cmp (Eq, dst, Const 5) in
  Alcotest.(check bool) "contradiction refused" false
    (Solver.Solve.feasible_cached ~query:q pcs);
  Alcotest.(check bool) "still refused from cache" false
    (Solver.Solve.feasible_cached ~query:q pcs);
  let s = Solver.Qcache.stats () in
  Alcotest.(check bool) "answered from cache" true (s.hits >= 1);
  Alcotest.(check bool) "agrees with uncached" false
    (Solver.Solve.feasible (q :: pcs))

let disabled_is_bypass () =
  with_fresh_cache @@ fun () ->
  Solver.Qcache.set_enabled false;
  Solver.Qcache.reset_stats ();
  let q : sexpr = Cmp (Eq, Test_solver.pkt0 Dst_ip, Const 5) in
  Alcotest.(check bool) "verdict unchanged" true
    (Solver.Solve.feasible_cached ~query:q []);
  Alcotest.(check bool) "verdict unchanged" true
    (Solver.Solve.feasible_cached ~query:q []);
  let s = Solver.Qcache.stats () in
  Alcotest.(check int) "no queries recorded while disabled" 0 s.queries

let model_reuse_fires () =
  with_fresh_cache @@ fun () ->
  Solver.Qcache.reset_stats ();
  let dst = Test_solver.pkt0 Dst_ip and src = Test_solver.pkt0 Src_ip in
  (* Populate the last-model slot via a solved query, then ask about an
     unrelated symbol: not an exact hit (different shape), but the model
     (unbound symbols read as 0) satisfies it. *)
  Alcotest.(check bool) "seed model" true
    (Solver.Solve.feasible_cached ~query:(Cmp (Eq, dst, Const 5)) []);
  Alcotest.(check bool) "sibling query" true
    (Solver.Solve.feasible_cached ~query:(Cmp (Lt, src, Const 9)) []);
  let s = Solver.Qcache.stats () in
  Alcotest.(check bool) "some non-solver answer" true
    (s.subset_hits + s.model_reuse >= 1)

let tests =
  [
    qtest cached_agrees_with_uncached;
    qtest slicing_keeps_query_component;
    Alcotest.test_case "slice components" `Quick slice_components;
    Alcotest.test_case "exact + alpha-renamed hits" `Quick exact_and_alpha_hits;
    Alcotest.test_case "unsat verdicts cached" `Quick unsat_is_cached;
    Alcotest.test_case "--no-solver-cache bypass" `Quick disabled_is_bypass;
    Alcotest.test_case "model-reuse fast path" `Quick model_reuse_fires;
  ]
