(* Tests for the observability layer: the JSON codec, the metrics registry,
   span tracing, the instrumentation hooks in solver/cache/symbex — and the
   contract that matters most: telemetry off (the default) is a no-op, and
   telemetry on does not perturb analysis results. *)

open Ir.Dsl

let geom = Cache.Geometry.xeon_e5_2667v2
let costs = Symbex.Costs.default geom

(* Every test leaves the ambient telemetry state as it found it (off). *)
let with_metrics f =
  Obs.Metrics.reset ();
  Obs.Metrics.set_active true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.set_active false;
      Obs.Metrics.reset ())
    f

let with_trace_file f =
  let path = Filename.temp_file "castan-trace" ".jsonl" in
  Obs.Trace.set_sink (Obs.Sink.file path);
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.close ();
      if Sys.file_exists path then Sys.remove path)
    (fun () ->
      f ();
      Obs.Trace.close ();
      let ic = open_in path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> ""))

let parse_ok line =
  match Obs.Json.parse line with
  | Ok v -> v
  | Error e -> Alcotest.fail (Printf.sprintf "unparseable %S: %s" line e)

let num = function
  | Obs.Json.Int i -> float_of_int i
  | Obs.Json.Float f -> f
  | _ -> Alcotest.fail "expected a number"

let field obj key =
  match Obs.Json.member key obj with
  | Some v -> v
  | None -> Alcotest.fail (Printf.sprintf "missing field %s" key)

(* ---------------- Json ---------------- *)

let json_roundtrip () =
  let v =
    Obs.Json.Obj
      [
        ("null", Obs.Json.Null);
        ("t", Obs.Json.Bool true);
        ("n", Obs.Json.Int (-42));
        ("x", Obs.Json.Float 1.5);
        ("s", Obs.Json.Str "a \"quoted\"\nline\twith \\ and \x01");
        ("l", Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Obj []; Obs.Json.List [] ]);
      ]
  in
  (match Obs.Json.parse (Obs.Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "roundtrips" true (v = v')
  | Error e -> Alcotest.fail e);
  (* ints and floats stay distinct through the codec *)
  (match Obs.Json.parse "7" with
  | Ok (Obs.Json.Int 7) -> ()
  | _ -> Alcotest.fail "7 must parse as Int");
  (match Obs.Json.parse "7.0" with
  | Ok (Obs.Json.Float 7.0) -> ()
  | _ -> Alcotest.fail "7.0 must parse as Float");
  (* non-finite floats degrade to null, keeping output loadable *)
  match Obs.Json.parse (Obs.Json.to_string (Obs.Json.Float nan)) with
  | Ok Obs.Json.Null -> ()
  | _ -> Alcotest.fail "nan must serialize as null"

let json_rejects_garbage () =
  List.iter
    (fun s ->
      match Obs.Json.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S must not parse" s))
    [ ""; "{"; "[1,"; "{\"a\":}"; "truee"; "1 2"; "\"unterminated"; "{\"a\" 1}" ];
  (* member is total *)
  Alcotest.(check bool) "member on non-object" true
    (Obs.Json.member "k" (Obs.Json.Int 3) = None)

(* ---------------- Stats quantiles ---------------- *)

let stats_quantiles () =
  let a = Array.init 100 (fun i -> i + 1) in
  Alcotest.(check int) "p50" 50 (Util.Stats.quantile_int a 0.5);
  Alcotest.(check int) "p95" 95 (Util.Stats.p95 a);
  Alcotest.(check int) "p99" 99 (Util.Stats.p99 a);
  Alcotest.(check int) "q0 is min" 1 (Util.Stats.quantile_int a 0.0);
  Alcotest.(check int) "q1 is max" 100 (Util.Stats.quantile_int a 1.0);
  Alcotest.(check int) "singleton" 7 (Util.Stats.p99 [| 7 |]);
  (* input is not modified *)
  let b = [| 3; 1; 2 |] in
  ignore (Util.Stats.quantile_int b 0.9 : int);
  Alcotest.(check (list int)) "untouched" [ 3; 1; 2 ] (Array.to_list b)

(* ---------------- Metrics ---------------- *)

let metrics_gating_and_snapshot () =
  Obs.Metrics.reset ();
  let c = Obs.Metrics.counter "test.counter" in
  Obs.Metrics.incr c;
  Alcotest.(check int) "inactive incr is a no-op" 0 (Obs.Metrics.counter_value c);
  with_metrics (fun () ->
      Obs.Metrics.incr c;
      Obs.Metrics.incr ~by:5 c;
      Alcotest.(check int) "active incr counts" 6 (Obs.Metrics.counter_value c);
      let g = Obs.Metrics.gauge "test.gauge" in
      Obs.Metrics.gauge_set g 3;
      Obs.Metrics.gauge_set g 7;
      Obs.Metrics.gauge_set g 2;
      Obs.Metrics.gauge_set g 5;
      let h = Obs.Metrics.histogram "test.hist" in
      for i = 1 to 100 do
        Obs.Metrics.observe h i
      done;
      let snap = Obs.Metrics.snapshot () in
      let counters = field snap "counters" in
      Alcotest.(check bool) "counter in snapshot" true
        (Obs.Json.member "test.counter" counters = Some (Obs.Json.Int 6));
      let gauge = field (field snap "gauges") "test.gauge" in
      Alcotest.(check bool) "gauge last" true
        (Obs.Json.member "last" gauge = Some (Obs.Json.Int 5));
      Alcotest.(check bool) "gauge max" true
        (Obs.Json.member "max" gauge = Some (Obs.Json.Int 7));
      Alcotest.(check bool) "gauge min" true
        (Obs.Json.member "min" gauge = Some (Obs.Json.Int 2));
      let hist = field (field snap "histograms") "test.hist" in
      Alcotest.(check bool) "hist count" true
        (Obs.Json.member "count" hist = Some (Obs.Json.Int 100));
      Alcotest.(check bool) "hist p95" true
        (Obs.Json.member "p95" hist = Some (Obs.Json.Int 95));
      Alcotest.(check bool) "hist p50" true
        (Obs.Json.member "p50" hist = Some (Obs.Json.Int 50));
      (* the whole snapshot serializes to parseable JSON *)
      (match Obs.Json.parse (Obs.Json.to_string snap) with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
      Obs.Metrics.reset ();
      Alcotest.(check int) "reset zeroes" 0 (Obs.Metrics.counter_value c);
      (* registry survives reset: the same name yields the same instrument *)
      Obs.Metrics.incr (Obs.Metrics.counter "test.counter");
      Alcotest.(check int) "same instrument" 1 (Obs.Metrics.counter_value c))

(* ---------------- Trace ---------------- *)

let trace_disabled_is_inert () =
  (* default sink is null: spans cost nothing and the depth stays balanced *)
  Alcotest.(check bool) "disabled" false (Obs.Trace.enabled ());
  let s = Obs.Trace.enter "x" in
  Alcotest.(check int) "no depth" 0 (Obs.Trace.depth ());
  Alcotest.(check (float 0.0)) "exit returns 0" 0.0 (Obs.Trace.exit s);
  let v, dt = Obs.Trace.timed "x" (fun () -> 41 + 1) in
  Alcotest.(check int) "timed passes result" 42 v;
  Alcotest.(check bool) "timed still measures" true (dt >= 0.0)

let trace_nesting_well_formed () =
  let lines =
    with_trace_file (fun () ->
        Obs.Trace.with_span "outer" (fun () ->
            Obs.Trace.with_span "inner"
              ~args:[ ("k", Obs.Json.Int 1) ]
              (fun () -> Obs.Trace.instant "mark");
            Alcotest.(check int) "one open span" 1 (Obs.Trace.depth ()));
        Alcotest.(check int) "balanced" 0 (Obs.Trace.depth ()))
  in
  let events = List.map parse_ok lines in
  let by_name name =
    match
      List.find_opt (fun e -> Obs.Json.member "name" e = Some (Obs.Json.Str name)) events
    with
    | Some e -> e
    | None -> Alcotest.fail (name ^ " event missing")
  in
  let outer = by_name "outer" and inner = by_name "inner" and mark = by_name "mark" in
  Alcotest.(check bool) "complete events" true
    (Obs.Json.member "ph" outer = Some (Obs.Json.Str "X")
    && Obs.Json.member "ph" inner = Some (Obs.Json.Str "X"));
  Alcotest.(check bool) "instant event" true
    (Obs.Json.member "ph" mark = Some (Obs.Json.Str "i"));
  (* nesting is encoded by time-range containment on one pid/tid *)
  let ts e = num (field e "ts") and dur e = num (field e "dur") in
  Alcotest.(check bool) "inner starts within outer" true (ts inner >= ts outer);
  Alcotest.(check bool) "inner ends within outer" true
    (ts inner +. dur inner <= ts outer +. dur outer);
  Alcotest.(check bool) "mark within inner" true
    (num (field mark "ts") >= ts inner
    && num (field mark "ts") <= ts inner +. dur inner);
  Alcotest.(check bool) "args preserved" true
    (match Obs.Json.member "args" inner with
    | Some args -> Obs.Json.member "k" args = Some (Obs.Json.Int 1)
    | None -> false)

(* ---------------- instrumentation hooks ---------------- *)

let cval name = Obs.Metrics.counter_value (Obs.Metrics.counter name)

let solver_verdict_counters () =
  with_metrics (fun () ->
      let dst : Ir.Expr.sexpr = Leaf (Ir.Expr.Pkt { pkt = 0; field = Dst_ip }) in
      (match
         Solver.Solve.sat
           [ Ir.Expr.Cmp (Eq, Binop (Rem, dst, Const 4096), Const 77) ]
       with
      | Solver.Solve.Sat _ -> ()
      | _ -> Alcotest.fail "instance must be sat");
      Alcotest.(check int) "sat counted" 1 (cval "solver.verdict.sat");
      (match
         Solver.Solve.sat
           [ Ir.Expr.Cmp (Eq, dst, Const 1); Ir.Expr.Cmp (Eq, dst, Const 2) ]
       with
      | Solver.Solve.Unsat -> ()
      | _ -> Alcotest.fail "instance must be unsat");
      Alcotest.(check int) "unsat counted" 1 (cval "solver.verdict.unsat");
      Alcotest.(check bool) "unsat cause attributed" true
        (cval "solver.unsat.propagation" + cval "solver.unsat.ordering" >= 1);
      (* the sat verdict recorded a latency sample *)
      match Obs.Json.member "histograms" (Obs.Metrics.snapshot ()) with
      | Some h -> (
          match Obs.Json.member "solver.sat.latency_us" h with
          | Some hist ->
              Alcotest.(check bool) "latency samples" true
                (match Obs.Json.member "count" hist with
                | Some (Obs.Json.Int n) -> n >= 2
                | _ -> false)
          | None -> Alcotest.fail "latency histogram missing")
      | None -> Alcotest.fail "histograms missing")

let cache_model_counters () =
  with_metrics (fun () ->
      let m = Cache.Model.baseline geom in
      let m, o1 = Cache.Model.access_concrete m 0x12340 in
      Alcotest.(check bool) "first access misses" true o1.Cache.Model.miss;
      let _, o2 = Cache.Model.access_concrete m 0x12340 in
      Alcotest.(check bool) "re-access hits" true (not o2.Cache.Model.miss);
      Alcotest.(check int) "miss counted" 1 (cval "cache.model.miss");
      Alcotest.(check int) "hit counted" 1 (cval "cache.model.hit"))

let driver_kill_and_degraded_counters () =
  (* heap exhaustion (as in test_resilience): the kill must surface as a
     labeled counter and flip the degraded-runs counter *)
  let prog =
    program ~name:"t" ~entry:"process"
      [
        func "process" [ "src_port" ]
          [
            "k" <-- i 0;
            while_ (v "k" <: i 8) [ alloc "p" 4096; "k" <-- v "k" +: i 1 ];
            ret (i 0);
          ];
      ]
  in
  with_metrics (fun () ->
      let cfg = Ir.Lower.program prog in
      let mem =
        Ir.Memory.create ~regions:cfg.Ir.Cfg.regions ~heap_bytes:4096
          ~inject:(fun v -> Ir.Expr.Const v)
      in
      let config =
        { (Symbex.Driver.default_config ~n_packets:1 costs) with
          time_budget = 5.0; instr_budget = 200_000 }
      in
      let r = Symbex.Driver.run cfg ~mem ~cache:(Cache.Model.baseline geom) config in
      Alcotest.(check bool) "driver saw the kill" true
        (r.stats.Symbex.Driver.killed >= 1);
      Alcotest.(check bool) "kill label mirrored to metrics" true
        (cval "symbex.kills.heap-exhausted" >= 1);
      Alcotest.(check int) "degraded run counted" 1 (cval "symbex.degraded_runs");
      Alcotest.(check int) "kill total mirrored" r.stats.Symbex.Driver.killed
        (cval "symbex.killed");
      Alcotest.(check int) "explored mirrored" r.stats.Symbex.Driver.explored
        (cval "symbex.explored"))

(* ---------------- telemetry does not perturb results ---------------- *)

let analysis_fingerprint () =
  (* generous wall-clock budget, binding instruction budget: the run is
     deterministic in everything except time, so the fingerprint must not
     depend on whether telemetry is recording *)
  let nf = Nf.Registry.find "lpm-btrie" in
  let config =
    { (Castan.Analyze.default_config ()) with
      n_packets = Some 4; time_budget = 300.0; instr_budget = 150_000 }
  in
  let o = Castan.Analyze.run ~config nf in
  ( o.Castan.Analyze.predicted_cost,
    Array.to_list o.Castan.Analyze.workload.Testbed.Workload.packets
    |> List.map Nf.Packet.to_string )

let telemetry_off_vs_on_identical () =
  let off = analysis_fingerprint () in
  let on =
    with_metrics (fun () ->
        let path = Filename.temp_file "castan-trace" ".jsonl" in
        Obs.Trace.set_sink (Obs.Sink.file path);
        Fun.protect
          ~finally:(fun () ->
            Obs.Trace.close ();
            Sys.remove path)
          analysis_fingerprint)
  in
  Alcotest.(check int) "same predicted cost" (fst off) (fst on);
  Alcotest.(check (list string)) "same workload" (snd off) (snd on)

let injection_pattern_unchanged_by_telemetry () =
  (* the fault-injection RNG stream depends only on the stage sequence, so
     enabling telemetry must reproduce the exact same failure pattern *)
  let fire_pattern () =
    Util.Resilience.set_injection
      (Some (Util.Resilience.inject ~rate:0.3 ~seed:1234));
    Fun.protect
      ~finally:(fun () -> Util.Resilience.set_injection None)
      (fun () ->
        List.init 200 (fun k ->
            match
              Util.Resilience.checkpoint ~stage:(Printf.sprintf "s%d" k) ()
            with
            | () -> false
            | exception _ -> true))
  in
  let off = fire_pattern () in
  let on = with_metrics fire_pattern in
  Alcotest.(check (list bool)) "identical fault pattern" off on

let tests =
  [
    Alcotest.test_case "json: roundtrip" `Quick json_roundtrip;
    Alcotest.test_case "json: rejects garbage" `Quick json_rejects_garbage;
    Alcotest.test_case "stats: integer quantiles" `Quick stats_quantiles;
    Alcotest.test_case "metrics: gating, snapshot, reset" `Quick
      metrics_gating_and_snapshot;
    Alcotest.test_case "trace: disabled sink is inert" `Quick
      trace_disabled_is_inert;
    Alcotest.test_case "trace: nesting well-formed" `Quick
      trace_nesting_well_formed;
    Alcotest.test_case "solver: verdict counters" `Quick solver_verdict_counters;
    Alcotest.test_case "cache: hit/miss counters" `Quick cache_model_counters;
    Alcotest.test_case "symbex: kill + degraded counters" `Quick
      driver_kill_and_degraded_counters;
    Alcotest.test_case "no perturbation: analysis identical" `Slow
      telemetry_off_vs_on_identical;
    Alcotest.test_case "no perturbation: injection pattern" `Quick
      injection_pattern_unchanged_by_telemetry;
  ]
