(* End-to-end tests for the CASTAN core: the four §5 attack classes, the
   ablations' expectations, and the experiment/report plumbing. *)

let quick_analysis ?(n = 10) ?(budget = 5.0) ?cache name =
  let nf = Nf.Registry.find name in
  let base =
    match cache with
    | Some kind -> Castan.Analyze.default_config ~cache:kind ()
    | None -> Castan.Analyze.default_config ()
  in
  let config =
    { base with n_packets = Some n; time_budget = budget; instr_budget = 1_500_000 }
  in
  (nf, Castan.Analyze.run ~config nf)

let workload_has_n_distinct_flows () =
  let _, o = quick_analysis "lpm-btrie" in
  Alcotest.(check int) "packets" 10 (Testbed.Workload.length o.workload);
  Alcotest.(check int) "distinct flows" 10 (Testbed.Workload.flows o.workload)

let algorithmic_attack_trie () =
  (* §5.3: the synthesized workload walks the longest trie paths *)
  let nf, o = quick_analysis "lpm-btrie" in
  let samples = 3000 in
  let castan = Testbed.Tg.measure ~samples nf o.workload in
  let zipf = Testbed.Tg.measure ~samples nf (Testbed.Traffic.zipfian ~scale:`Quick ~seed:1 ()) in
  Alcotest.(check bool) "more instructions than Zipfian" true
    (Testbed.Tg.median_instrs castan > Testbed.Tg.median_instrs zipf)

let castan_close_to_manual_trie () =
  (* §5.2: "CASTAN experiences similar latency to Manual without the benefit
     of human insight" *)
  let nf, o = quick_analysis ~n:16 "lpm-btrie" in
  let samples = 3000 in
  let manual_pkts = (Option.get nf.manual) (Util.Rng.create 1) 16 in
  let manual = Testbed.Tg.measure ~samples nf (Testbed.Workload.make ~name:"Manual" manual_pkts) in
  let castan = Testbed.Tg.measure ~samples nf o.workload in
  let mi = Testbed.Tg.median_instrs manual and ci = Testbed.Tg.median_instrs castan in
  Alcotest.(check bool)
    (Printf.sprintf "within 20%% of Manual (castan %d vs manual %d)" ci mi)
    true
    (float_of_int ci >= 0.8 *. float_of_int mi)

let collision_attack_hash_table () =
  (* §5.4: reconciled workload causes persistent collisions *)
  let nf, o = quick_analysis ~n:10 "lb-hash-table" in
  Alcotest.(check bool) "havocs present" true (o.n_havocs >= 10);
  Alcotest.(check bool) "mostly reconciled" true (o.reconciled * 3 >= o.n_havocs * 2);
  let samples = 3000 in
  let castan = Testbed.Tg.measure ~samples nf o.workload in
  let fair =
    Testbed.Tg.measure ~samples nf
      (Testbed.Workload.shape nf.shape
         (Testbed.Traffic.unirand_castan ~seed:2 ~flows:(Testbed.Workload.length o.workload)))
  in
  Alcotest.(check bool) "beats volume-fair random" true
    (Testbed.Tg.median_instrs castan > Testbed.Tg.median_instrs fair)

let cache_attack_direct_lookup () =
  (* §5.2: with the contention model, the 1GB table thrashs one L3 set *)
  let sets = Castan.Analyze.discover_contention_sets () in
  let nf, o =
    quick_analysis ~n:40 ~budget:10.0
      ~cache:(Castan.Analyze.Contention_sets sets) "lpm-1stage-dl"
  in
  let samples = 4000 in
  let nop = Testbed.Tg.nop_baseline ~samples () in
  let castan = Testbed.Tg.measure ~samples nf o.workload in
  let fair =
    Testbed.Tg.measure ~samples nf (Testbed.Traffic.unirand_castan ~seed:3 ~flows:40)
  in
  Alcotest.(check bool) "more L3 misses than volume-fair random" true
    (Testbed.Tg.median_l3_misses castan > Testbed.Tg.median_l3_misses fair);
  Alcotest.(check bool) "latency deviation at least 3x" true
    (Testbed.Tg.deviation_from_nop_ns castan ~nop
     > 3.0 *. Testbed.Tg.deviation_from_nop_ns fair ~nop)

let rb_tree_resists () =
  (* §5.3: CASTAN fails to beat volume on the re-balancing tree *)
  let nf, o = quick_analysis ~n:12 "nat-red-black-tree" in
  let samples = 3000 in
  let castan = Testbed.Tg.measure ~samples nf o.workload in
  let uni = Testbed.Tg.measure ~samples nf (Testbed.Traffic.unirand ~scale:`Quick ~seed:4 ()) in
  Alcotest.(check bool) "UniRand volume wins against RB" true
    (Testbed.Tg.median_instrs uni >= Testbed.Tg.median_instrs castan)

let skew_attack_bst () =
  (* §5.3: the unbalanced tree degenerates; CASTAN must beat the volume-fair
     uniform workload of the same size *)
  let nf, o = quick_analysis ~n:16 "nat-unbalanced-tree" in
  let samples = 3000 in
  let castan = Testbed.Tg.measure ~samples nf o.workload in
  let fair = Testbed.Tg.measure ~samples nf (Testbed.Traffic.unirand_castan ~seed:5 ~flows:16) in
  Alcotest.(check bool) "skew beats volume-fair random" true
    (Testbed.Tg.median_instrs castan > Testbed.Tg.median_instrs fair)

let predicted_metrics_nonempty () =
  let _, o = quick_analysis "lpm-btrie" in
  Alcotest.(check int) "one metric per packet" 10 (List.length o.predicted);
  List.iter
    (fun (m : Symbex.State.metrics) ->
      Alcotest.(check bool) "positive cycles" true (m.cycles > 0))
    o.predicted

let searcher_ablation_directed_wins () =
  (* the castan searcher must find at least as expensive a state as BFS
     under the same small budget *)
  let nf = Nf.Registry.find "nat-unbalanced-tree" in
  let run strategy =
    let config =
      { (Castan.Analyze.default_config ()) with
        strategy; n_packets = Some 8; time_budget = 2.0; instr_budget = 300_000 }
    in
    (Castan.Analyze.run ~config nf).predicted_cost
  in
  Alcotest.(check bool) "directed >= bfs" true
    (run Symbex.Searcher.Castan >= run Symbex.Searcher.Bfs)

let experiment_and_report_plumbing () =
  let config = { Castan.Experiment.quick_config with samples = 1500;
                 analysis_time = 2.0; analysis_instrs = 300_000;
                 use_contention_model = false } in
  let r = Castan.Experiment.run ~config "lpm-btrie" in
  Alcotest.(check bool) "has manual row" true
    (List.mem "Manual" (Castan.Experiment.workload_labels r));
  ignore (Castan.Experiment.find_row r "CASTAN");
  (* memoized *)
  let r2 = Castan.Experiment.run ~config "lpm-btrie" in
  Alcotest.(check bool) "memoized" true (r == r2);
  (* rendering doesn't raise *)
  Castan.Report.print_cdf_figure ~id:"test" ~title:"t" ~unit_label:"ns"
    (Castan.Report.latency_series r);
  Castan.Report.print_throughput_table [ r ];
  Castan.Report.print_instrs_table [ r ];
  Castan.Report.print_misses_table [ r ];
  Castan.Report.print_deviation_table [ r ];
  Castan.Report.print_analysis_table [ r ];
  Castan.Experiment.clear_cache ()

let pcap_export_import_workload () =
  let _, o = quick_analysis "lpm-btrie" in
  let path = Filename.temp_file "castan" ".pcap" in
  Testbed.Workload.save_pcap o.workload path;
  let back = Testbed.Workload.load_pcap ~name:"CASTAN" path in
  Sys.remove path;
  Alcotest.(check bool) "identical packets" true
    (back.Testbed.Workload.packets = o.workload.Testbed.Workload.packets)

let analysis_deterministic () =
  let _, o1 = quick_analysis "lpm-btrie" in
  let _, o2 = quick_analysis "lpm-btrie" in
  Alcotest.(check bool) "same workload" true
    (o1.workload.Testbed.Workload.packets = o2.workload.Testbed.Workload.packets)

let harness_registry () =
  let ids = Castan.Harness.ids in
  Alcotest.(check int) "unique ids" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  Alcotest.(check bool) "has figures and tables" true
    (List.mem "fig4" ids && List.mem "table5" ids
     && List.mem "discussion-wcet" ids);
  (match Castan.Harness.find "fig4" with
  | Some e -> Alcotest.(check string) "id" "fig4" e.Castan.Harness.id
  | None -> Alcotest.fail "fig4 missing");
  (* figure -> NF map covers the paper's 9 distinct NFs over 12 figures *)
  Alcotest.(check int) "12 figures" 12 (List.length Castan.Harness.figure_nfs);
  match Castan.Harness.run_id Castan.Experiment.quick_config "no-such-id" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection"

let ktest_output_well_formed () =
  let _, o = quick_analysis ~n:4 "lpm-btrie" in
  let k = Castan.Ktest.ktest_string o in
  Alcotest.(check bool) "header" true (String.length k > 10 && String.sub k 0 5 = "ktest");
  Alcotest.(check bool) "20 objects" true
    (List.length (String.split_on_char '\n' k
                  |> List.filter (fun l ->
                         String.length l > 6 && String.sub l 0 6 = "object"))
     = 60);
  let m = Castan.Ktest.metrics_string o in
  let rows =
    String.split_on_char '\n' m
    |> List.filter (fun l -> String.length l > 0 && l.[0] <> '#')
  in
  (* header + 4 packets *)
  Alcotest.(check int) "metric rows" 5 (List.length rows);
  let paths = Castan.Ktest.write ~prefix:(Filename.temp_file "castan" "") o in
  List.iter (fun p -> Alcotest.(check bool) "file exists" true (Sys.file_exists p); Sys.remove p) paths

let harness_fast_experiments_run () =
  (* the machine-feature ablations are cheap end to end; smoke them *)
  let config = { Castan.Experiment.quick_config with samples = 1000 } in
  ignore (Castan.Harness.run_id config "ablation-prefetch" : float);
  ignore (Castan.Harness.run_id config "ablation-ddio" : float)

let tests =
  [
    Alcotest.test_case "workload flows distinct" `Quick workload_has_n_distinct_flows;
    Alcotest.test_case "trie: algorithmic attack" `Slow algorithmic_attack_trie;
    Alcotest.test_case "trie: close to Manual" `Slow castan_close_to_manual_trie;
    Alcotest.test_case "hash table: collisions" `Slow collision_attack_hash_table;
    Alcotest.test_case "direct lookup: contention" `Slow cache_attack_direct_lookup;
    Alcotest.test_case "red-black tree resists" `Slow rb_tree_resists;
    Alcotest.test_case "bst: skew attack" `Slow skew_attack_bst;
    Alcotest.test_case "predicted metrics" `Quick predicted_metrics_nonempty;
    Alcotest.test_case "searcher ablation" `Slow searcher_ablation_directed_wins;
    Alcotest.test_case "experiment plumbing" `Slow experiment_and_report_plumbing;
    Alcotest.test_case "pcap export/import" `Quick pcap_export_import_workload;
    Alcotest.test_case "analysis deterministic" `Quick analysis_deterministic;
    Alcotest.test_case "harness registry" `Quick harness_registry;
    Alcotest.test_case "ktest output" `Quick ktest_output_well_formed;
    Alcotest.test_case "harness fast experiments" `Slow harness_fast_experiments_run;
  ]
