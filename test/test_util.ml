(* Tests for castan.util: PRNG, Zipf sampling, statistics, tables. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let rng_deterministic () =
  let a = Util.Rng.create 99 and b = Util.Rng.create 99 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Util.Rng.bits64 a) (Util.Rng.bits64 b)
  done

let rng_copy_shares_state () =
  let a = Util.Rng.create 5 in
  ignore (Util.Rng.bits64 a);
  let b = Util.Rng.copy a in
  check Alcotest.int64 "copies agree" (Util.Rng.bits64 a) (Util.Rng.bits64 b)

let rng_split_diverges () =
  let a = Util.Rng.create 5 in
  let b = Util.Rng.split a in
  let xs = List.init 16 (fun _ -> Util.Rng.bits64 a) in
  let ys = List.init 16 (fun _ -> Util.Rng.bits64 b) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let rng_int_range =
  QCheck.Test.make ~name:"Rng.int stays in range" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, n) ->
      let rng = Util.Rng.create seed in
      let v = Util.Rng.int rng n in
      v >= 0 && v < n)

let rng_int_in_range =
  QCheck.Test.make ~name:"Rng.int_in is inclusive" ~count:500
    QCheck.(triple small_int (int_range 0 100) (int_range 0 100))
    (fun (seed, a, b) ->
      let lo = min a b and hi = max a b in
      let rng = Util.Rng.create seed in
      let v = Util.Rng.int_in rng lo hi in
      v >= lo && v <= hi)

let rng_uniformity () =
  let rng = Util.Rng.create 1 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let k = Util.Rng.int rng 10 in
    buckets.(k) <- buckets.(k) + 1
  done;
  Array.iteri
    (fun i c ->
      if abs (c - (n / 10)) > n / 50 then
        Alcotest.failf "bucket %d has %d hits (expected ~%d)" i c (n / 10))
    buckets

let rng_shuffle_permutes () =
  let rng = Util.Rng.create 3 in
  let a = Array.init 100 Fun.id in
  Util.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "same multiset" (Array.init 100 Fun.id) sorted;
  Alcotest.(check bool) "actually moved" true (a <> Array.init 100 Fun.id)

let zipf_probs_sum () =
  let z = Util.Zipf.create ~s:1.26 ~n:500 in
  let total = ref 0.0 in
  for rank = 1 to 500 do
    total := !total +. Util.Zipf.prob z rank
  done;
  if abs_float (!total -. 1.0) > 1e-9 then
    Alcotest.failf "probabilities sum to %f" !total

let zipf_monotone () =
  let z = Util.Zipf.create ~s:1.26 ~n:100 in
  for rank = 2 to 100 do
    if Util.Zipf.prob z rank > Util.Zipf.prob z (rank - 1) +. 1e-12 then
      Alcotest.failf "prob increased at rank %d" rank
  done

let zipf_sampling_matches_prob () =
  let z = Util.Zipf.create ~s:1.26 ~n:50 in
  let rng = Util.Rng.create 17 in
  let n = 200_000 in
  let hits = Array.make 51 0 in
  for _ = 1 to n do
    let r = Util.Zipf.sample z rng in
    hits.(r) <- hits.(r) + 1
  done;
  let observed = float_of_int hits.(1) /. float_of_int n in
  let expected = Util.Zipf.prob z 1 in
  if abs_float (observed -. expected) > 0.01 then
    Alcotest.failf "rank-1 frequency %f, expected %f" observed expected

let zipf_sample_in_support =
  QCheck.Test.make ~name:"Zipf.sample within support" ~count:300
    QCheck.(pair small_int (int_range 1 200))
    (fun (seed, n) ->
      let z = Util.Zipf.create ~s:1.26 ~n in
      let rng = Util.Rng.create seed in
      let v = Util.Zipf.sample z rng in
      v >= 1 && v <= n)

let stats_median () =
  let cdf = Util.Stats.cdf_of_samples [| 5.0; 1.0; 3.0 |] in
  check (Alcotest.float 1e-9) "median" 3.0 (Util.Stats.median cdf);
  check (Alcotest.float 1e-9) "min" 1.0 (Util.Stats.min_value cdf);
  check (Alcotest.float 1e-9) "max" 5.0 (Util.Stats.max_value cdf)

let stats_quantile_sorted =
  QCheck.Test.make ~name:"Stats.quantile is monotone" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (float_bound_inclusive 1000.0))
    (fun samples ->
      QCheck.assume (samples <> []);
      let cdf = Util.Stats.cdf_of_samples (Array.of_list samples) in
      let prev = ref neg_infinity in
      List.for_all
        (fun q ->
          let v = Util.Stats.quantile cdf q in
          let ok = v >= !prev in
          prev := v;
          ok)
        [ 0.0; 0.25; 0.5; 0.75; 1.0 ])

let stats_median_int () =
  check Alcotest.int "odd" 2 (Util.Stats.median_int [| 3; 1; 2 |]);
  check Alcotest.int "even lower" 2 (Util.Stats.median_int [| 4; 1; 2; 3 |]);
  check Alcotest.int "single" 7 (Util.Stats.median_int [| 7 |])

let stats_mean_stddev () =
  check (Alcotest.float 1e-9) "mean" 2.0 (Util.Stats.mean [| 1.0; 2.0; 3.0 |]);
  if abs_float (Util.Stats.stddev [| 2.0; 2.0; 2.0 |]) > 1e-9 then
    Alcotest.fail "stddev of constants should be 0"

let table_render () =
  let s =
    Util.Table.render ~header:[ "a"; "bb" ]
      ~rows:[ [ "1"; "2" ]; [ "333" ] ]
  in
  Alcotest.(check bool) "contains header" true
    (String.length s > 0 && String.sub s 0 1 = "a");
  (* short row padded, no exception *)
  Alcotest.(check bool) "has separator" true (String.contains s '-')

let tests =
  [
    Alcotest.test_case "rng deterministic" `Quick rng_deterministic;
    Alcotest.test_case "rng copy" `Quick rng_copy_shares_state;
    Alcotest.test_case "rng split" `Quick rng_split_diverges;
    Alcotest.test_case "rng uniform" `Quick rng_uniformity;
    Alcotest.test_case "rng shuffle" `Quick rng_shuffle_permutes;
    qtest rng_int_range;
    qtest rng_int_in_range;
    Alcotest.test_case "zipf probs sum to 1" `Quick zipf_probs_sum;
    Alcotest.test_case "zipf monotone" `Quick zipf_monotone;
    Alcotest.test_case "zipf sampling freq" `Quick zipf_sampling_matches_prob;
    qtest zipf_sample_in_support;
    Alcotest.test_case "stats median" `Quick stats_median;
    qtest stats_quantile_sorted;
    Alcotest.test_case "stats median_int" `Quick stats_median_int;
    Alcotest.test_case "stats mean/stddev" `Quick stats_mean_stddev;
    Alcotest.test_case "table render" `Quick table_render;
  ]
