(* Tests for castan.testbed: PCAP I/O, traffic generators, the DUT, and the
   traffic generator/sink measurements. *)

let qtest = QCheck_alcotest.to_alcotest

(* ---------------- pcap ---------------- *)

let arb_packet =
  QCheck.make
    ~print:(fun p -> Nf.Packet.to_string p)
    QCheck.Gen.(
      map
        (fun ((src_ip, dst_ip), (tcp, (sp, dp))) ->
          Nf.Packet.make ~src_ip ~dst_ip
            ~proto:(if tcp then Nf.Packet.tcp else Nf.Packet.udp)
            ~src_port:sp ~dst_port:dp ())
        (pair
           (pair (int_range 0 0xFFFFFFFF) (int_range 0 0xFFFFFFFF))
           (pair bool (pair (int_range 0 65535) (int_range 0 65535)))))

let pcap_roundtrip =
  QCheck.Test.make ~name:"pcap write/read roundtrip" ~count:100
    (QCheck.list_of_size (QCheck.Gen.int_range 1 20) arb_packet)
    (fun packets ->
      Testbed.Pcap.of_bytes (Testbed.Pcap.to_bytes packets) = packets)

let pcap_file_roundtrip () =
  let packets = [ Nf.Packet.make (); Nf.Packet.make ~proto:Nf.Packet.tcp () ] in
  let path = Filename.temp_file "castan" ".pcap" in
  Testbed.Pcap.write path packets;
  let back = Testbed.Pcap.read path in
  Sys.remove path;
  Alcotest.(check int) "count" 2 (List.length back);
  Alcotest.(check bool) "equal" true (back = packets)

let pcap_header_magic () =
  let b = Testbed.Pcap.to_bytes [ Nf.Packet.make () ] in
  Alcotest.(check int) "little-endian magic" 0xD4 (Bytes.get_uint8 b 0);
  Alcotest.(check int) "magic 2" 0xC3 (Bytes.get_uint8 b 1)

let pcap_checksum_valid =
  QCheck.Test.make ~name:"IPv4 checksums validate" ~count:100 arb_packet
    (fun p ->
      let b = Testbed.Pcap.to_bytes [ p ] in
      (* frame starts at 24 + 16; IP header at +14 *)
      Testbed.Pcap.ipv4_checksum b ~off:(24 + 16 + 14) = 0)

(* ---------------- workloads & traffic ---------------- *)

let workload_flow_count () =
  let p1 = Nf.Packet.make ~src_port:1 () in
  let p2 = Nf.Packet.make ~src_port:2 () in
  let w = Testbed.Workload.make ~name:"t" [ p1; p2; p1; p1 ] in
  Alcotest.(check int) "packets" 4 (Testbed.Workload.length w);
  Alcotest.(check int) "flows" 2 (Testbed.Workload.flows w)

let workload_loops () =
  let w = Testbed.Workload.make ~name:"t" [ Nf.Packet.make ~src_port:7 () ] in
  Alcotest.(check int) "looped" 7
    (Testbed.Workload.nth_looped w 12345).Nf.Packet.src_port

let traffic_sizes () =
  let z = Testbed.Traffic.zipfian ~scale:`Quick ~seed:1 () in
  let packets, flows = Testbed.Traffic.sizes `Quick `Zipf in
  Alcotest.(check int) "zipf packets" packets (Testbed.Workload.length z);
  Alcotest.(check bool) "zipf flows close" true
    (abs (Testbed.Workload.flows z - flows) < flows / 2);
  let u = Testbed.Traffic.unirand ~scale:`Quick ~seed:1 () in
  let packets, flows = Testbed.Traffic.sizes `Quick `Uni in
  Alcotest.(check int) "uni packets" packets (Testbed.Workload.length u);
  Alcotest.(check bool) "uni flows" true
    (Testbed.Workload.flows u > (flows * 95) / 100)

let traffic_zipf_is_skewed () =
  let z = Testbed.Traffic.zipfian ~scale:`Quick ~seed:2 () in
  let counts = Hashtbl.create 64 in
  Array.iter
    (fun p ->
      let k = Nf.Packet.flow_key p in
      Hashtbl.replace counts k (1 + (try Hashtbl.find counts k with Not_found -> 0)))
    z.Testbed.Workload.packets;
  let top = Hashtbl.fold (fun _ c acc -> max c acc) counts 0 in
  let total = Testbed.Workload.length z in
  (* the heaviest flow dominates in a Zipf(1.26) draw *)
  Alcotest.(check bool) "skewed" true (top * 10 > total)

let unirand_castan_sized () =
  let w = Testbed.Traffic.unirand_castan ~seed:1 ~flows:40 in
  Alcotest.(check int) "packets" 40 (Testbed.Workload.length w);
  Alcotest.(check bool) "flows" true (Testbed.Workload.flows w >= 39)

(* ---------------- DUT ---------------- *)

let dut_nop_calibration () =
  let dut = Testbed.Dut.create (Nf.Registry.nop ()) in
  (* warm past the descriptor ring and mbuf pool cold misses *)
  for _ = 1 to 5000 do ignore (Testbed.Dut.process dut (Nf.Packet.make ())) done;
  let s = Testbed.Dut.process dut (Nf.Packet.make ()) in
  Alcotest.(check int) "NOP instrs = 271 (Table 2)" 271 s.Testbed.Dut.instrs;
  Alcotest.(check int) "NOP misses = 1 (Table 3)" 1 s.Testbed.Dut.l3_misses;
  Alcotest.(check bool) "NOP cycles ~ 3.45Mpps" true
    (s.Testbed.Dut.cycles > 850 && s.Testbed.Dut.cycles < 1100)

let dut_deterministic () =
  let run () =
    let dut = Testbed.Dut.create (Nf.Registry.find "lpm-btrie") in
    let w = Testbed.Traffic.zipfian ~scale:`Quick ~seed:4 () in
    Array.to_list (Testbed.Dut.replay dut w ~samples:500)
  in
  Alcotest.(check bool) "replays identical" true (run () = run ())

let dut_counts_nf_work () =
  let dut = Testbed.Dut.create (Nf.Registry.find "lpm-btrie") in
  let deep = Nf.Packet.make ~dst_ip:0x0A010203 () (* 10.1.2.3, the /32 *) in
  let shallow = Nf.Packet.make ~dst_ip:0x30000001 () (* no match *) in
  let s_deep = Testbed.Dut.process dut deep in
  let s_shallow = Testbed.Dut.process dut shallow in
  Alcotest.(check bool) "deep trie path costs more instructions" true
    (s_deep.Testbed.Dut.instrs > s_shallow.Testbed.Dut.instrs)

(* ---------------- TG measurements ---------------- *)

let tg_latency_includes_base () =
  let m = Testbed.Tg.nop_baseline ~samples:2000 () in
  let med = Testbed.Tg.median_latency_ns m in
  Alcotest.(check bool) "around 4.3us like Fig. 4" true
    (med > 4150.0 && med < 4450.0)

let tg_throughput_sane () =
  let m = Testbed.Tg.nop_baseline ~samples:8000 () in
  let t = Testbed.Tg.max_throughput_mpps m in
  Alcotest.(check bool) "NOP ~3.45Mpps like Table 1" true (t > 3.0 && t < 3.9)

let tg_adversarial_slower () =
  (* UniRand must cost the direct-lookup LPM throughput vs 1 Packet *)
  let nf = Nf.Registry.find "lpm-1stage-dl" in
  let one = Testbed.Tg.measure ~samples:6000 nf (Testbed.Traffic.one_packet ()) in
  let uni =
    Testbed.Tg.measure ~samples:6000 nf (Testbed.Traffic.unirand ~scale:`Quick ~seed:5 ())
  in
  Alcotest.(check bool) "unirand reduces throughput" true
    (Testbed.Tg.max_throughput_mpps uni < Testbed.Tg.max_throughput_mpps one);
  Alcotest.(check bool) "unirand raises latency" true
    (Testbed.Tg.median_latency_ns uni > Testbed.Tg.median_latency_ns one)

let tg_dropped_still_measured () =
  (* ICMP is dropped by the NAT but still produces a latency sample (§5.1) *)
  let nf = Nf.Registry.find "nat-hash-table" in
  let w = Testbed.Workload.make ~name:"icmp" [ Nf.Packet.make ~proto:1 () ] in
  let m = Testbed.Tg.measure ~samples:100 nf w in
  Alcotest.(check int) "all measured" 100 (Array.length m.Testbed.Tg.latencies_ns)

let tg_measure_deterministic () =
  let nf = Nf.Registry.find "lpm-btrie" in
  let w = Testbed.Traffic.zipfian ~scale:`Quick ~seed:6 () in
  let a = Testbed.Tg.measure ~seed:9 ~samples:500 nf w in
  let b = Testbed.Tg.measure ~seed:9 ~samples:500 nf w in
  Alcotest.(check bool) "same seeds, same CDF" true
    (a.Testbed.Tg.latencies_ns = b.Testbed.Tg.latencies_ns)

let loss_model_monotone () =
  (* a faster rate can only lose more *)
  let nf = Nf.Registry.nop () in
  let m = Testbed.Tg.measure ~samples:4000 nf (Testbed.Traffic.one_packet ()) in
  let t1 = Testbed.Tg.max_throughput_mpps ~loss_target:0.001 m in
  let t2 = Testbed.Tg.max_throughput_mpps ~loss_target:0.05 m in
  Alcotest.(check bool) "looser target, higher rate" true (t2 >= t1)

let traffic_mix_fractions () =
  let a = Testbed.Workload.make ~name:"A" [ Nf.Packet.make ~src_port:1 () ] in
  let b = Testbed.Workload.make ~name:"B"
      (List.init 1000 (fun k -> Nf.Packet.make ~src_port:(2000 + k) ())) in
  let w = Testbed.Traffic.mix ~seed:1 ~fraction:0.25 a b in
  Alcotest.(check int) "length of longer input" 1000 (Testbed.Workload.length w);
  let from_a =
    Array.to_list w.Testbed.Workload.packets
    |> List.filter (fun (p : Nf.Packet.t) -> p.src_port = 1)
    |> List.length
  in
  Alcotest.(check bool) "roughly a quarter" true (from_a > 180 && from_a < 320)

let latency_under_load_grows_with_rate () =
  let nf = Nf.Registry.find "lpm-1stage-dl" in
  let m = Testbed.Tg.measure ~samples:6000 nf (Testbed.Traffic.unirand ~scale:`Quick ~seed:8 ()) in
  let med rate =
    let cdf, _ = Testbed.Tg.latency_under_load ~rate_mpps:rate m in
    Util.Stats.quantile cdf 0.99
  in
  Alcotest.(check bool) "queueing grows with offered load" true
    (med 3.2 >= med 1.0)

let ddio_improves_uniformly () =
  let cases = [ Nf.Registry.nop (); Nf.Registry.find "lpm-btrie" ] in
  let deltas =
    List.map
      (fun nf ->
        let med ddio =
          Util.Stats.median
            (Testbed.Tg.cycles_cdf
               (Testbed.Tg.measure ~samples:3000 ~ddio nf (Testbed.Traffic.one_packet ())))
        in
        med false -. med true)
      cases
  in
  List.iter
    (fun d -> Alcotest.(check bool) "ddio saves the DRAM trip" true (d > 200.0))
    deltas;
  (* ...and saves the same amount for everyone *)
  match deltas with
  | [ a; b ] -> Alcotest.(check (float 30.0)) "uniform improvement" a b
  | _ -> assert false

let prefetch_harmless_for_nf_traffic () =
  let nf = Nf.Registry.find "lpm-1stage-dl" in
  let w = Testbed.Traffic.zipfian ~scale:`Quick ~seed:9 () in
  let med prefetch =
    Util.Stats.median
      (Testbed.Tg.cycles_cdf (Testbed.Tg.measure ~samples:3000 ~prefetch nf w))
  in
  Alcotest.(check (float 25.0)) "prefetcher changes little" (med false) (med true)

let tests =
  [
    qtest pcap_roundtrip;
    Alcotest.test_case "pcap file roundtrip" `Quick pcap_file_roundtrip;
    Alcotest.test_case "pcap magic" `Quick pcap_header_magic;
    qtest pcap_checksum_valid;
    Alcotest.test_case "workload flows" `Quick workload_flow_count;
    Alcotest.test_case "workload loops" `Quick workload_loops;
    Alcotest.test_case "traffic sizes" `Quick traffic_sizes;
    Alcotest.test_case "zipf skew" `Quick traffic_zipf_is_skewed;
    Alcotest.test_case "unirand castan" `Quick unirand_castan_sized;
    Alcotest.test_case "DUT NOP calibration" `Quick dut_nop_calibration;
    Alcotest.test_case "DUT deterministic" `Quick dut_deterministic;
    Alcotest.test_case "DUT counts NF work" `Quick dut_counts_nf_work;
    Alcotest.test_case "TG latency base" `Quick tg_latency_includes_base;
    Alcotest.test_case "TG throughput" `Quick tg_throughput_sane;
    Alcotest.test_case "TG adversarial slower" `Slow tg_adversarial_slower;
    Alcotest.test_case "TG measures drops" `Quick tg_dropped_still_measured;
    Alcotest.test_case "TG deterministic" `Quick tg_measure_deterministic;
    Alcotest.test_case "loss model monotone" `Quick loss_model_monotone;
    Alcotest.test_case "traffic mix" `Quick traffic_mix_fractions;
    Alcotest.test_case "latency under load" `Quick latency_under_load_grows_with_rate;
    Alcotest.test_case "ddio uniform win" `Quick ddio_improves_uniformly;
    Alcotest.test_case "prefetch harmless" `Quick prefetch_harmless_for_nf_traffic;
  ]
