(* Tests for castan.nf: LPM implementations against a reference oracle,
   flow tables against a model map, red-black tree invariants, and the
   NAT/LB packet semantics. *)

let qtest = QCheck_alcotest.to_alcotest
let cfg = Nf.Config.default

let hooks =
  {
    Ir.Interp.no_hooks with
    hash_apply = (fun name key -> (Hashrev.Hashes.lookup name).apply key);
    hash_weight = (fun name -> (Hashrev.Hashes.lookup name).weight);
  }

(* ---------------- LPM oracle equivalence ---------------- *)

let lpm_oracle_gen =
  (* mix interesting destinations (inside the route families) and random *)
  QCheck.Gen.(
    oneof
      [
        map2
          (fun fam low -> ((10 + fam) lsl 24) lor low)
          (int_range 0 7) (int_range 0 0xFFFFFF);
        int_range 0 0xFFFFFFFF;
      ])

let lpm_matches_oracle name routes =
  let nf = Nf.Registry.find name in
  let mem = ref (Nf.Nf_def.fresh_memory nf) in
  let entry = Ir.Cfg.entry_func nf.program in
  QCheck.Test.make ~name:(name ^ " matches reference LPM") ~count:400
    (QCheck.make lpm_oracle_gen)
    (fun dst ->
      let p = Nf.Packet.make ~dst_ip:dst () in
      let o =
        Ir.Interp.call nf.program ~mem ~hooks "process" (Nf.Packet.args_for entry p)
      in
      o.Ir.Interp.ret = Nf.Config.lpm_lookup routes dst)

let routes27 = List.filter (fun (r : Nf.Config.route) -> r.len <= 27) cfg.routes27

(* ---------------- flow tables vs a model map ---------------- *)

type harness = {
  lookup : int -> int;
  insert : int -> int -> unit;
  mem : unit -> int Ir.Memory.t;
  regions : Ir.Memory.spec list;
}

let harness (ft : Nf.Flowtable.t) =
  let prog =
    Ir.Lower.program
      (Ir.Dsl.program ~name:"h" ~entry:Nf.Flowtable.lookup_name
         ~regions:ft.regions ~heap_bytes:ft.heap_bytes ft.functions)
  in
  let mem = ref (Ir.Memory.create ~regions:ft.regions ~heap_bytes:ft.heap_bytes ~inject:Fun.id) in
  let hash key =
    match ft.hash with Some h -> h.Hashrev.Hashes.apply key | None -> 0
  in
  {
    lookup =
      (fun key ->
        (Ir.Interp.call prog ~mem ~hooks Nf.Flowtable.lookup_name [ key; hash key ]).ret);
    insert =
      (fun key value ->
        ignore
          (Ir.Interp.call prog ~mem ~hooks Nf.Flowtable.insert_name
             [ key; hash key; value ]));
    mem = (fun () -> !mem);
    regions = ft.regions;
  }

let flowtable_model_test name make_ft =
  QCheck.Test.make ~name:(name ^ " behaves like a map") ~count:30
    QCheck.(small_int)
    (fun seed ->
      let h = harness (make_ft cfg) in
      let model : (int, int) Hashtbl.t = Hashtbl.create 64 in
      let rng = Util.Rng.create (77 + seed) in
      let ok = ref true in
      for step = 1 to 120 do
        let key = 1 + Util.Rng.int rng 4096 in
        if Util.Rng.bool rng then begin
          (* lookup must agree with the model *)
          let expect = match Hashtbl.find_opt model key with Some v -> v | None -> 0 in
          if h.lookup key <> expect then ok := false
        end
        else if not (Hashtbl.mem model key) then begin
          let value = 1 + (step mod 1000) in
          h.insert key value;
          Hashtbl.replace model key value
        end
      done;
      !ok)

(* ---------------- red-black tree invariants ---------------- *)

(* Walk the tree straight out of NFIR memory. *)
let rec rb_check mem node ~lo ~hi =
  (* returns black height; raises on violation *)
  if node = 0 then 1
  else begin
    let fld off = Ir.Memory.read mem ~addr:(node + off) ~width:8 in
    let key = fld 0 and left = fld 16 and right = fld 24 and color = fld 40 in
    if key <= lo || key >= hi then failwith "BST order violated";
    if color = 1 then begin
      (* red node: children must be black *)
      let child_color c =
        if c = 0 then 0 else Ir.Memory.read mem ~addr:(c + 40) ~width:8
      in
      if child_color left = 1 || child_color right = 1 then
        failwith "red-red violation"
    end;
    let bl = rb_check mem left ~lo ~hi:key in
    let br = rb_check mem right ~lo:key ~hi in
    if bl <> br then failwith "black-height violated";
    bl + if color = 0 then 1 else 0
  end

let rb_invariants_hold =
  QCheck.Test.make ~name:"red-black invariants after random inserts" ~count:20
    QCheck.small_int
    (fun seed ->
      let ft = Nf.Flowtable_rb.make cfg in
      let h = harness ft in
      let rng = Util.Rng.create (31 + seed) in
      let inserted = Hashtbl.create 64 in
      for v = 1 to 200 do
        let key = 1 + Util.Rng.int rng 100_000 in
        if not (Hashtbl.mem inserted key) then begin
          h.insert key v;
          Hashtbl.replace inserted key ()
        end
      done;
      let mem = h.mem () in
      let root_region = Ir.Memory.region_named mem "rb_root" in
      let root = Ir.Memory.read mem ~addr:root_region.Ir.Memory.base ~width:8 in
      let root_color =
        if root = 0 then 0 else Ir.Memory.read mem ~addr:(root + 40) ~width:8
      in
      root_color = 0
      && match rb_check mem root ~lo:min_int ~hi:max_int with
         | _ -> true
         | exception Failure _ -> false)

let rb_stays_shallow_bst_degenerates () =
  (* sorted insertion: the unbalanced tree becomes a list, the RB tree stays
     logarithmic — the heart of Fig. 9 vs Fig. 11 *)
  let depth_of mem root_name =
    let region = Ir.Memory.region_named mem root_name in
    let root = Ir.Memory.read mem ~addr:region.Ir.Memory.base ~width:8 in
    let rec go node =
      if node = 0 then 0
      else
        let l = Ir.Memory.read mem ~addr:(node + 16) ~width:8 in
        let r = Ir.Memory.read mem ~addr:(node + 24) ~width:8 in
        1 + max (go l) (go r)
    in
    go root
  in
  let n = 256 in
  let bst = harness (Nf.Flowtable_bst.make cfg) in
  for k = 1 to n do bst.insert k k done;
  let rb = harness (Nf.Flowtable_rb.make cfg) in
  for k = 1 to n do rb.insert k k done;
  Alcotest.(check int) "bst degenerates to a list" n (depth_of (bst.mem ()) "bst_root");
  let rb_depth = depth_of (rb.mem ()) "rb_root" in
  Alcotest.(check bool) "rb stays logarithmic" true (rb_depth <= 2 * 9)

let chain_collisions_grow_chains () =
  (* keys in the same bucket make lookups walk the chain *)
  let ft = Nf.Flowtable_chain.make cfg in
  let h = harness ft in
  let hash = (Option.get ft.hash).Hashrev.Hashes.apply in
  (* find several keys colliding on the bucket index *)
  let target = hash 1 land (cfg.chain_buckets - 1) in
  let colliding = ref [] in
  let k = ref 1 in
  while List.length !colliding < 8 do
    if hash !k land (cfg.chain_buckets - 1) = target then
      colliding := !k :: !colliding;
    incr k
  done;
  List.iteri (fun i key -> h.insert key (i + 1)) !colliding;
  (* all retrievable despite the collisions *)
  List.iteri
    (fun i key -> Alcotest.(check int) "chained value" (i + 1) (h.lookup key))
    !colliding

let ring_probe_sequence () =
  let ft = Nf.Flowtable_ring.make cfg in
  let h = harness ft in
  (* two keys with the same ring index force linear probing *)
  let hash = (Option.get ft.hash).Hashrev.Hashes.apply in
  let k1 = 1 in
  let target = hash k1 land (cfg.ring_entries - 1) in
  let k2 = ref 2 in
  while hash !k2 land (cfg.ring_entries - 1) <> target do incr k2 done;
  h.insert k1 111;
  h.insert !k2 222;
  Alcotest.(check int) "first" 111 (h.lookup k1);
  Alcotest.(check int) "probed" 222 (h.lookup !k2)

(* ---------------- NAT / LB semantics ---------------- *)

let run_nf (nf : Nf.Nf_def.t) mem p =
  let entry = Ir.Cfg.entry_func nf.program in
  (Ir.Interp.call nf.program ~mem ~hooks "process" (Nf.Packet.args_for entry p)).ret

let nat_flow_stability name =
  QCheck.Test.make ~name:(name ^ ": same flow, same translation") ~count:20
    QCheck.small_int
    (fun seed ->
      let nf = Nf.Registry.find name in
      let mem = ref (Nf.Nf_def.fresh_memory nf) in
      let rng = Util.Rng.create (991 + seed) in
      let flows = List.init 10 (fun _ -> Testbed.Traffic.random_packet rng) in
      List.for_all
        (fun p ->
          let first = run_nf nf mem p in
          let second = run_nf nf mem p in
          first = second && first <> 0)
        flows)

let nat_drops_non_l4 () =
  let nf = Nf.Registry.find "nat-hash-table" in
  let mem = ref (Nf.Nf_def.fresh_memory nf) in
  let p = Nf.Packet.make ~proto:1 (* ICMP *) () in
  Alcotest.(check int) "dropped" 0 (run_nf nf mem p)

let lb_static_route_non_vip () =
  let nf = Nf.Registry.find "lb-hash-table" in
  let mem = ref (Nf.Nf_def.fresh_memory nf) in
  let p = Nf.Packet.make ~dst_ip:0x08080808 () in
  Alcotest.(check int) "statically routed" 1 (run_nf nf mem p)

let lb_round_robin () =
  let nf = Nf.Registry.find "lb-hash-table" in
  let mem = ref (Nf.Nf_def.fresh_memory nf) in
  let backends =
    List.init (2 * cfg.n_backends) (fun k ->
        let p = Nf.Packet.make ~dst_ip:cfg.vip ~src_ip:(0x0A000000 + k)
            ~src_port:(2000 + k) () in
        run_nf nf mem p)
  in
  (* round robin: first n_backends flows hit distinct backends *)
  let firsts = List.filteri (fun i _ -> i < cfg.n_backends) backends in
  Alcotest.(check int) "all backends used" cfg.n_backends
    (List.length (List.sort_uniq compare firsts));
  (* pinned: re-sending flow 0 gives its original backend *)
  let p0 = Nf.Packet.make ~dst_ip:cfg.vip ~src_ip:0x0A000000 ~src_port:2000 () in
  Alcotest.(check int) "sticky" (List.hd backends) (run_nf nf mem p0)

let lb_sticky_across_tables =
  QCheck.Test.make ~name:"LB backend choice is sticky (all tables)" ~count:8
    (QCheck.oneofl
       [ "lb-hash-table"; "lb-hash-ring"; "lb-red-black-tree"; "lb-unbalanced-tree" ])
    (fun name ->
      let nf = Nf.Registry.find name in
      let mem = ref (Nf.Nf_def.fresh_memory nf) in
      let rng = Util.Rng.create 55 in
      let flows =
        List.init 12 (fun _ ->
            nf.shape (Testbed.Traffic.random_packet rng))
      in
      let first = List.map (fun p -> run_nf nf mem p) flows in
      let second = List.map (fun p -> run_nf nf mem p) flows in
      first = second)

let registry_complete () =
  Alcotest.(check int) "11 NFs + NOP" 12 (List.length Nf.Registry.names);
  List.iter
    (fun name -> ignore (Nf.Registry.find name))
    Nf.Registry.names;
  match Nf.Registry.find "bogus" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected unknown-NF rejection"

let manual_workloads_exist_where_paper_has_them () =
  let has_manual n = (Nf.Registry.find n).Nf.Nf_def.manual <> None in
  Alcotest.(check bool) "trie" true (has_manual "lpm-btrie");
  Alcotest.(check bool) "nat bst" true (has_manual "nat-unbalanced-tree");
  Alcotest.(check bool) "lb bst" true (has_manual "lb-unbalanced-tree");
  Alcotest.(check bool) "no manual for rb" false (has_manual "nat-red-black-tree");
  Alcotest.(check bool) "no manual for dl" false (has_manual "lpm-1stage-dl")

let manual_nat_skews () =
  let nf = Nf.Registry.find "nat-unbalanced-tree" in
  let gen = Option.get nf.manual in
  let pkts = gen (Util.Rng.create 1) 50 in
  Alcotest.(check int) "requested size" 50 (List.length pkts);
  (* monotone source ports = monotone keys = full skew *)
  let ports = List.map (fun (p : Nf.Packet.t) -> p.src_port) pkts in
  Alcotest.(check bool) "monotone" true (List.sort compare ports = ports)

let packet_pcap_fields =
  QCheck.Test.make ~name:"packet field get/set roundtrip" ~count:200
    QCheck.(pair (oneofl Ir.Expr.all_fields) (int_range 0 65535))
    (fun (f, v) ->
      let p = Nf.Packet.make () in
      Nf.Packet.field (Nf.Packet.with_field p f v) f = v)

let tests =
  [
    qtest (lpm_matches_oracle "lpm-btrie" cfg.routes32);
    qtest (lpm_matches_oracle "lpm-1stage-dl" routes27);
    qtest (lpm_matches_oracle "lpm-2stage-dl" cfg.routes32);
    qtest (flowtable_model_test "hash-table" Nf.Flowtable_chain.make);
    qtest (flowtable_model_test "hash-ring" Nf.Flowtable_ring.make);
    qtest (flowtable_model_test "unbalanced-tree" Nf.Flowtable_bst.make);
    qtest (flowtable_model_test "red-black-tree" Nf.Flowtable_rb.make);
    qtest rb_invariants_hold;
    Alcotest.test_case "bst degenerates, rb doesn't" `Quick rb_stays_shallow_bst_degenerates;
    Alcotest.test_case "chain collisions" `Quick chain_collisions_grow_chains;
    Alcotest.test_case "ring probing" `Quick ring_probe_sequence;
    qtest (nat_flow_stability "nat-hash-table");
    qtest (nat_flow_stability "nat-hash-ring");
    qtest (nat_flow_stability "nat-unbalanced-tree");
    qtest (nat_flow_stability "nat-red-black-tree");
    Alcotest.test_case "nat drops non-L4" `Quick nat_drops_non_l4;
    Alcotest.test_case "lb static route" `Quick lb_static_route_non_vip;
    Alcotest.test_case "lb round robin" `Quick lb_round_robin;
    qtest lb_sticky_across_tables;
    Alcotest.test_case "registry" `Quick registry_complete;
    Alcotest.test_case "manual availability" `Quick manual_workloads_exist_where_paper_has_them;
    Alcotest.test_case "manual NAT skew" `Quick manual_nat_skews;
    qtest packet_pcap_fields;
  ]
