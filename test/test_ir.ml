(* Tests for castan.ir: expressions, memory, lowering, the interpreter. *)

open Ir.Dsl

let qtest = QCheck_alcotest.to_alcotest

(* ---------------- expressions ---------------- *)

(* Random program expressions over two variables, avoiding division (the
   generator would have to dodge zero) and keeping shifts small. *)
let gen_expr : Ir.Expr.pexpr QCheck.Gen.t =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
         if n = 0 then
           oneof
             [
               map (fun c -> Ir.Expr.Const c) (int_range 0 1000);
               oneofl [ Ir.Expr.Leaf "x"; Ir.Expr.Leaf "y" ];
             ]
         else
           let sub = self (n / 2) in
           oneof
             [
               map (fun c -> Ir.Expr.Const c) (int_range 0 1000);
               oneofl [ Ir.Expr.Leaf "x"; Ir.Expr.Leaf "y" ];
               map2
                 (fun op (a, b) -> Ir.Expr.Binop (op, a, b))
                 (oneofl Ir.Expr.[ Add; Sub; Mul; And; Or; Xor ])
                 (pair sub sub);
               map2
                 (fun op (a, b) -> Ir.Expr.Cmp (op, a, b))
                 (oneofl Ir.Expr.[ Eq; Ne; Lt; Le ])
                 (pair sub sub);
               map (fun (c, (a, b)) -> Ir.Expr.Ite (c, a, b)) (pair sub (pair sub sub));
             ])

let arb_expr = QCheck.make ~print:(Ir.Expr.to_string Format.pp_print_string) gen_expr

let subst_commutes_with_eval =
  QCheck.Test.make ~name:"subst commutes with eval" ~count:500
    QCheck.(pair (make gen_expr) (pair small_int small_int))
    (fun (e, (x, y)) ->
      let leaf = function "x" -> x | _ -> y in
      let direct = Ir.Expr.eval ~leaf e in
      let substituted =
        Ir.Expr.subst (fun v -> Ir.Expr.Const (leaf v)) e
        |> Ir.Expr.eval ~leaf:(fun _ -> assert false)
      in
      direct = substituted)

let ops_bounded_by_size =
  QCheck.Test.make ~name:"ops < size" ~count:300 arb_expr (fun e ->
      Ir.Expr.ops e < Ir.Expr.size e)

let fold_counts_leaves =
  QCheck.Test.make ~name:"fold_leaves counts leaves" ~count:300 arb_expr
    (fun e ->
      let n1 = Ir.Expr.fold_leaves (fun acc _ -> acc + 1) 0 e in
      let n2 = ref 0 in
      Ir.Expr.iter_leaves (fun _ -> incr n2) e;
      n1 = !n2)

let field_widths () =
  Alcotest.(check int) "src ip" 32 Ir.Expr.(field_width Src_ip);
  Alcotest.(check int) "proto" 8 Ir.Expr.(field_width Proto);
  Alcotest.(check int) "port" 16 Ir.Expr.(field_width Src_port)

let fresh_syms_distinct () =
  let a = Ir.Expr.fresh ~label:"t" ~width:16 in
  let b = Ir.Expr.fresh ~label:"t" ~width:24 in
  Alcotest.(check bool) "distinct" true (a <> b);
  Alcotest.(check int) "width recorded" 24 (Ir.Expr.sym_width b)

(* ---------------- memory ---------------- *)

let mem_layout () =
  let specs =
    [
      Ir.Memory.array_spec ~name:"a" ~elem_width:8 ~count:10 ();
      Ir.Memory.array_spec ~name:"b" ~elem_width:4 ~count:100 ();
    ]
  in
  let layout = Ir.Memory.layout specs in
  let a = List.assoc "a" layout and b = List.assoc "b" layout in
  Alcotest.(check int) "first at origin" 0x4000_0000 a.Ir.Memory.base;
  Alcotest.(check bool) "b after a" true (b.Ir.Memory.base >= Ir.Memory.region_end a);
  Alcotest.(check int) "page aligned" 0 (b.Ir.Memory.base mod 4096)

let mem_lazy_init_and_overlay () =
  let specs =
    [ Ir.Memory.array_spec ~name:"t" ~elem_width:8 ~count:1000 ~init:(fun i -> i * 7) () ]
  in
  let m = Ir.Memory.create ~regions:specs ~heap_bytes:4096 ~inject:Fun.id in
  let base = (Ir.Memory.region_named m "t").Ir.Memory.base in
  Alcotest.(check int) "init value" 21 (Ir.Memory.read m ~addr:(base + 24) ~width:8);
  let m2 = Ir.Memory.write m ~addr:(base + 24) ~width:8 99 in
  Alcotest.(check int) "overlay read" 99 (Ir.Memory.read m2 ~addr:(base + 24) ~width:8);
  Alcotest.(check int) "persistent: original untouched" 21
    (Ir.Memory.read m ~addr:(base + 24) ~width:8)

let mem_alignment_enforced () =
  let specs = [ Ir.Memory.array_spec ~name:"t" ~elem_width:8 ~count:10 () ] in
  let m = Ir.Memory.create ~regions:specs ~heap_bytes:4096 ~inject:Fun.id in
  let base = (Ir.Memory.region_named m "t").Ir.Memory.base in
  Alcotest.check_raises "misaligned"
    (Invalid_argument
       (Printf.sprintf "Memory: misaligned access 0x%x in region t" (base + 3)))
    (fun () -> ignore (Ir.Memory.read m ~addr:(base + 3) ~width:8));
  Alcotest.check_raises "wrong width"
    (Invalid_argument "Memory: 4-byte access in region t (elem width 8)")
    (fun () -> ignore (Ir.Memory.read m ~addr:base ~width:4))

let mem_out_of_bounds () =
  let m = Ir.Memory.create ~regions:[] ~heap_bytes:4096 ~inject:Fun.id in
  match Ir.Memory.read m ~addr:100 ~width:8 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected out-of-bounds failure"

let mem_alloc_rounds_to_lines () =
  let m = Ir.Memory.create ~regions:[] ~heap_bytes:4096 ~inject:Fun.id in
  let m, a1 = Ir.Memory.alloc m ~bytes:24 in
  let m, a2 = Ir.Memory.alloc m ~bytes:1 in
  Alcotest.(check int) "line-separated" 64 (a2 - a1);
  Alcotest.(check int) "used" 128 (Ir.Memory.heap_used m)

let mem_alloc_exhaustion () =
  let m = Ir.Memory.create ~regions:[] ~heap_bytes:128 ~inject:Fun.id in
  let m, _ = Ir.Memory.alloc m ~bytes:64 in
  let m, _ = Ir.Memory.alloc m ~bytes:64 in
  match Ir.Memory.alloc m ~bytes:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected heap exhaustion"

let mem_read_write_roundtrip =
  QCheck.Test.make ~name:"memory write/read roundtrip" ~count:200
    QCheck.(pair (int_range 0 999) (int_range 0 1_000_000))
    (fun (idx, value) ->
      let specs = [ Ir.Memory.array_spec ~name:"t" ~elem_width:8 ~count:1000 () ] in
      let m = Ir.Memory.create ~regions:specs ~heap_bytes:0x1000 ~inject:Fun.id in
      let base = (Ir.Memory.region_named m "t").Ir.Memory.base in
      let addr = base + (idx * 8) in
      let m = Ir.Memory.write m ~addr ~width:8 value in
      Ir.Memory.read m ~addr ~width:8 = value)

(* ---------------- lowering + interpreter ---------------- *)

let run_program ?(args = []) prog fname =
  let cfg = Ir.Lower.program prog in
  let mem = ref (Ir.Memory.create ~regions:cfg.Ir.Cfg.regions
                   ~heap_bytes:cfg.Ir.Cfg.heap_bytes ~inject:Fun.id) in
  Ir.Interp.call cfg ~mem ~hooks:Ir.Interp.no_hooks fname args

let interp_arithmetic () =
  let prog =
    program ~name:"t" ~entry:"main"
      [ func "main" [ "a"; "b" ] [ ret (((v "a" +: v "b") *: i 3) -: i 1) ] ]
  in
  Alcotest.(check int) "arith" 20 (run_program ~args:[ 3; 4 ] prog "main").ret

let interp_while_loop () =
  (* sum of 1..n *)
  let prog =
    program ~name:"t" ~entry:"main"
      [
        func "main" [ "n" ]
          [
            "s" <-- i 0;
            "k" <-- i 1;
            while_ (v "k" <=: v "n")
              [ "s" <-- v "s" +: v "k"; "k" <-- v "k" +: i 1 ];
            ret (v "s");
          ];
      ]
  in
  Alcotest.(check int) "sum 1..10" 55 (run_program ~args:[ 10 ] prog "main").ret

let interp_break () =
  let prog =
    program ~name:"t" ~entry:"main"
      [
        func "main" [ "n" ]
          [
            "k" <-- i 0;
            while_ (i 1)
              [
                when_ (v "k" >=: v "n") [ break_ ];
                "k" <-- v "k" +: i 1;
              ];
            ret (v "k");
          ];
      ]
  in
  Alcotest.(check int) "break exits" 7 (run_program ~args:[ 7 ] prog "main").ret

let interp_nested_if () =
  let prog =
    program ~name:"t" ~entry:"main"
      [
        func "main" [ "x" ]
          [
            if_ (v "x" <: i 10)
              [ if_ (v "x" <: i 5) [ ret (i 1) ] [ ret (i 2) ] ]
              [ ret (i 3) ];
          ];
      ]
  in
  Alcotest.(check int) "x=3" 1 (run_program ~args:[ 3 ] prog "main").ret;
  Alcotest.(check int) "x=7" 2 (run_program ~args:[ 7 ] prog "main").ret;
  Alcotest.(check int) "x=30" 3 (run_program ~args:[ 30 ] prog "main").ret

let interp_calls () =
  let prog =
    program ~name:"t" ~entry:"main"
      [
        func "double" [ "x" ] [ ret (v "x" *: i 2) ];
        func "main" [ "a" ]
          [ call "d" "double" [ v "a" +: i 1 ]; ret (v "d" +: i 5) ];
      ]
  in
  Alcotest.(check int) "call" 13 (run_program ~args:[ 3 ] prog "main").ret

let interp_memory_program () =
  (* store then load through a region *)
  let regions = [ Ir.Memory.array_spec ~name:"arr" ~elem_width:8 ~count:16 () ] in
  let base = Nf.Nf_def.region_base regions "arr" in
  let prog =
    program ~name:"t" ~entry:"main" ~regions
      [
        func "main" [ "idx"; "value" ]
          [
            store8 (i base +: (v "idx" *: i 8)) (v "value");
            load8 "out" (i base +: (v "idx" *: i 8));
            ret (v "out");
          ];
      ]
  in
  let o = run_program ~args:[ 3; 42 ] prog "main" in
  Alcotest.(check int) "store/load" 42 o.ret;
  Alcotest.(check int) "one load" 1 o.loads;
  Alcotest.(check int) "one store" 1 o.stores

let interp_alloc () =
  let prog =
    program ~name:"t" ~entry:"main"
      [
        func "main" []
          [
            alloc "p" 16;
            store8 (v "p") (i 11);
            alloc "q" 16;
            store8 (v "q") (i 22);
            load8 "a" (v "p");
            load8 "b" (v "q");
            ret (v "a" +: v "b");
          ];
      ]
  in
  Alcotest.(check int) "allocations disjoint" 33 (run_program prog "main").ret

let interp_budget () =
  let prog =
    program ~name:"t" ~entry:"main"
      [ func "main" [] [ while_ (i 1) [ "x" <-- i 0 ]; ret (i 0) ] ]
  in
  let cfg = Ir.Lower.program prog in
  let mem = ref (Ir.Memory.create ~regions:[] ~heap_bytes:0x1000 ~inject:Fun.id) in
  match Ir.Interp.call cfg ~mem ~hooks:Ir.Interp.no_hooks ~budget:1000 "main" [] with
  | exception Ir.Interp.Budget_exhausted -> ()
  | _ -> Alcotest.fail "expected budget exhaustion"

let lower_loop_head_flag () =
  let prog =
    program ~name:"t" ~entry:"main"
      [ func "main" [ "n" ] [ while_ (v "n" >: i 0) [ "n" <-- v "n" -: i 1 ]; ret (i 0) ] ]
  in
  let cfg = Ir.Lower.program prog in
  let f = Ir.Cfg.entry_func cfg in
  let heads =
    Array.to_list f.body
    |> List.filter (function Ir.Cfg.Branch { loop_head = true; _ } -> true | _ -> false)
  in
  Alcotest.(check int) "one loop head" 1 (List.length heads)

let lower_fallthrough_return () =
  let prog =
    program ~name:"t" ~entry:"main" [ func "main" [] [ "x" <-- i 1 ] ]
  in
  let cfg = Ir.Lower.program prog in
  let f = Ir.Cfg.entry_func cfg in
  match f.body.(Array.length f.body - 1) with
  | Ir.Cfg.Return None -> ()
  | _ -> Alcotest.fail "missing synthesized return"

let icfg_detects_recursion () =
  let prog =
    program ~name:"t" ~entry:"main"
      [
        func "main" [] [ call "x" "f" []; ret (v "x") ];
        func "f" [] [ call "x" "main" []; ret (v "x") ];
      ]
  in
  let cfg = Ir.Lower.program prog in
  match Ir.Icfg.make cfg with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected recursion rejection"

let icfg_topo_order () =
  let prog =
    program ~name:"t" ~entry:"main"
      [
        func "main" [] [ call "x" "mid" []; ret (v "x") ];
        func "mid" [] [ call "x" "leaf" []; ret (v "x") ];
        func "leaf" [] [ ret (i 1) ];
      ]
  in
  let icfg = Ir.Icfg.make (Ir.Lower.program prog) in
  Alcotest.(check (list string)) "callees first" [ "leaf"; "mid"; "main" ]
    (Ir.Icfg.topo_order icfg)

let weight_counts_ops () =
  Alcotest.(check int) "simple assign" 1 (Ir.Cfg.weight (Ir.Cfg.Assign ("x", Const 1)));
  Alcotest.(check int) "compound"
    3
    (Ir.Cfg.weight
       (Ir.Cfg.Assign ("x", Binop (Add, Binop (Mul, Leaf "a", Const 2), Const 1))))

(* The compiled executor must agree with the reference interpreter on every
   NF: same results, same retired instructions, loads, stores. *)
let compiled_matches_interp =
  QCheck.Test.make ~name:"Compile agrees with Interp on the NFs" ~count:12
    (QCheck.oneofl
       [ "lpm-btrie"; "lpm-1stage-dl"; "lpm-2stage-dl"; "nat-hash-table";
         "lb-hash-ring"; "nat-red-black-tree"; "lb-unbalanced-tree" ])
    (fun name ->
      let nf = Nf.Registry.find name in
      let hooks =
        { Ir.Interp.no_hooks with
          hash_apply = (fun n k -> (Hashrev.Hashes.lookup n).apply k);
          hash_weight = (fun n -> (Hashrev.Hashes.lookup n).weight) }
      in
      let compiled = Ir.Compile.program nf.program in
      let mem1 = ref (Nf.Nf_def.fresh_memory nf) in
      let mem2 = ref (Nf.Nf_def.fresh_memory nf) in
      let entry = Ir.Cfg.entry_func nf.program in
      let rng = Util.Rng.create 1234 in
      let ok = ref true in
      for _ = 1 to 40 do
        let p = nf.shape (Testbed.Traffic.random_packet rng) in
        let args = Nf.Packet.args_for entry p in
        let a = Ir.Interp.call nf.program ~mem:mem1 ~hooks "process" args in
        let b = Ir.Compile.call compiled ~mem:mem2 ~hooks "process" args in
        if a <> b then ok := false
      done;
      !ok)

let compiled_budget () =
  let prog =
    program ~name:"t" ~entry:"main"
      [ func "main" [] [ while_ (i 1) [ "x" <-- i 0 ]; ret (i 0) ] ]
  in
  let compiled = Ir.Compile.program (Ir.Lower.program prog) in
  let mem = ref (Ir.Memory.create ~regions:[] ~heap_bytes:0x1000 ~inject:Fun.id) in
  match Ir.Compile.call compiled ~mem ~hooks:Ir.Interp.no_hooks ~budget:1000 "main" [] with
  | exception Ir.Interp.Budget_exhausted -> ()
  | _ -> Alcotest.fail "expected budget exhaustion"

let tests =
  [
    qtest subst_commutes_with_eval;
    qtest ops_bounded_by_size;
    qtest fold_counts_leaves;
    Alcotest.test_case "field widths" `Quick field_widths;
    Alcotest.test_case "fresh syms" `Quick fresh_syms_distinct;
    Alcotest.test_case "memory layout" `Quick mem_layout;
    Alcotest.test_case "memory lazy init + overlay" `Quick mem_lazy_init_and_overlay;
    Alcotest.test_case "memory alignment" `Quick mem_alignment_enforced;
    Alcotest.test_case "memory bounds" `Quick mem_out_of_bounds;
    Alcotest.test_case "alloc rounds to lines" `Quick mem_alloc_rounds_to_lines;
    Alcotest.test_case "alloc exhaustion" `Quick mem_alloc_exhaustion;
    qtest mem_read_write_roundtrip;
    Alcotest.test_case "interp arithmetic" `Quick interp_arithmetic;
    Alcotest.test_case "interp while" `Quick interp_while_loop;
    Alcotest.test_case "interp break" `Quick interp_break;
    Alcotest.test_case "interp nested if" `Quick interp_nested_if;
    Alcotest.test_case "interp calls" `Quick interp_calls;
    Alcotest.test_case "interp memory" `Quick interp_memory_program;
    Alcotest.test_case "interp alloc" `Quick interp_alloc;
    Alcotest.test_case "interp budget" `Quick interp_budget;
    Alcotest.test_case "lower loop-head flag" `Quick lower_loop_head_flag;
    Alcotest.test_case "lower fallthrough ret" `Quick lower_fallthrough_return;
    Alcotest.test_case "icfg recursion" `Quick icfg_detects_recursion;
    Alcotest.test_case "icfg topo order" `Quick icfg_topo_order;
    Alcotest.test_case "instr weight" `Quick weight_counts_ops;
    qtest compiled_matches_interp;
    Alcotest.test_case "compiled budget" `Quick compiled_budget;
  ]
