(* Tests for castan.symbex: potential-cost annotation (§3.4), searchers,
   and the exploration driver. *)

open Ir.Dsl

let geom = Cache.Geometry.xeon_e5_2667v2
let costs = Symbex.Costs.default geom

let annotate ?m prog = Symbex.Cost.annotate ?m costs (Ir.Lower.program prog)

(* ---------------- potential cost ---------------- *)

let cost_straight_line () =
  let prog =
    program ~name:"t" ~entry:"main"
      [ func "main" [] [ "a" <-- i 1; "b" <-- i 2; ret (v "a" +: v "b") ] ]
  in
  let a = annotate prog in
  (* three unit instructions, ret has one op: all cost >= 1 cycle each *)
  let full = Symbex.Cost.full_cost a "main" in
  Alcotest.(check bool) "positive" true (full >= 3);
  (* later pcs have smaller potential *)
  let p0 = Symbex.Cost.to_return a ~func:"main" ~pc:0 in
  let p2 = Symbex.Cost.to_return a ~func:"main" ~pc:2 in
  Alcotest.(check bool) "monotone along line" true (p0 > p2)

let cost_if_takes_max () =
  (* the Fig. 2 (left) situation: annotation takes the expensive branch *)
  let expensive = List.init 10 (fun k -> Printf.sprintf "x%d" k <-- i k) in
  let prog =
    program ~name:"t" ~entry:"main"
      [
        func "main" [ "c" ]
          [ if_ (v "c") expensive [ "y" <-- i 0 ]; ret (i 0) ];
      ]
  in
  let a = annotate prog in
  let cheap_prog =
    program ~name:"t" ~entry:"main"
      [ func "main" [ "c" ] [ if_ (v "c") [ "y" <-- i 1 ] [ "y" <-- i 0 ]; ret (i 0) ] ]
  in
  let b = annotate cheap_prog in
  Alcotest.(check bool) "max branch dominates" true
    (Symbex.Cost.full_cost a "main" > Symbex.Cost.full_cost b "main")

let loop_prog body_cost =
  program ~name:"t" ~entry:"main"
    [
      func "main" [ "n" ]
        [
          "k" <-- i 0;
          while_ (v "k" <: v "n")
            (List.init body_cost (fun j -> Printf.sprintf "b%d" j <-- i j)
            @ [ "k" <-- v "k" +: i 1 ]);
          ret (v "k");
        ];
    ]

let cost_loop_bounded_by_m () =
  (* M=2 accounts the body once; M=3 twice; never infinite *)
  let a2 = annotate ~m:2 (loop_prog 8) in
  let a3 = annotate ~m:3 (loop_prog 8) in
  let c2 = Symbex.Cost.full_cost a2 "main" in
  let c3 = Symbex.Cost.full_cost a3 "main" in
  Alcotest.(check bool) "finite" true (c2 > 0 && c2 < 1000);
  Alcotest.(check bool) "M=3 counts one more iteration" true (c3 > c2)

let cost_m1_hides_body () =
  (* with M=1 the loop body contributes nothing (the paper's point) *)
  let a_small = annotate ~m:1 (loop_prog 2) in
  let a_large = annotate ~m:1 (loop_prog 40) in
  Alcotest.(check int) "body size invisible at M=1"
    (Symbex.Cost.full_cost a_small "main")
    (Symbex.Cost.full_cost a_large "main")

let cost_call_chain () =
  let prog =
    program ~name:"t" ~entry:"main"
      [
        func "leaf" [] (List.init 20 (fun k -> Printf.sprintf "l%d" k <-- i k) @ [ ret (i 0) ]);
        func "main" [] [ call "x" "leaf" []; ret (v "x") ];
      ]
  in
  let a = annotate prog in
  Alcotest.(check bool) "callee cost included" true
    (Symbex.Cost.full_cost a "main" > Symbex.Cost.full_cost a "leaf")

let cost_memory_assumes_l1 () =
  let regions = [ Ir.Memory.array_spec ~name:"r" ~elem_width:8 ~count:8 () ] in
  let base = Nf.Nf_def.region_base regions "r" in
  let prog =
    program ~name:"t" ~entry:"main" ~regions
      [ func "main" [] [ load8 "x" (i base); ret (v "x") ] ]
  in
  let a = annotate prog in
  let full = Symbex.Cost.full_cost a "main" in
  (* load cost includes lat_l1 but not lat_dram *)
  Alcotest.(check bool) "l1 assumption" true
    (full >= geom.lat_l1 && full < geom.lat_dram)

(* ---------------- searchers ---------------- *)

let dummy_states prog n =
  let cfg = Ir.Lower.program prog in
  let mem = Ir.Memory.create ~regions:[] ~heap_bytes:4096
      ~inject:(fun v -> Ir.Expr.Const v) in
  List.init n (fun _ ->
      Symbex.State.initial cfg ~cache:(Cache.Model.baseline geom) ~n_packets:1 ~mem)

let searcher_fifo_lifo () =
  let prog =
    program ~name:"t" ~entry:"process" [ func "process" [] [ ret (i 0) ] ]
  in
  let annot = annotate prog in
  let states = dummy_states prog 3 in
  let s_bfs = Symbex.Searcher.create Bfs ~annot in
  List.iter (Symbex.Searcher.add s_bfs) states;
  let first_ids = List.map (fun (s : Symbex.State.t) -> s.id) states in
  let popped =
    List.init 3 (fun _ ->
        match Symbex.Searcher.pop s_bfs with
        | Some s -> s.Symbex.State.id
        | None -> -1)
  in
  Alcotest.(check (list int)) "bfs is fifo" first_ids popped;
  let s_dfs = Symbex.Searcher.create Dfs ~annot in
  List.iter (Symbex.Searcher.add s_dfs) states;
  let popped =
    List.init 3 (fun _ ->
        match Symbex.Searcher.pop s_dfs with
        | Some s -> s.Symbex.State.id
        | None -> -1)
  in
  Alcotest.(check (list int)) "dfs is lifo" (List.rev first_ids) popped

let searcher_drain_counts () =
  let prog =
    program ~name:"t" ~entry:"process" [ func "process" [] [ ret (i 0) ] ]
  in
  let annot = annotate prog in
  let s = Symbex.Searcher.create Castan ~annot in
  List.iter (Symbex.Searcher.add s) (dummy_states prog 5);
  Alcotest.(check int) "size" 5 (Symbex.Searcher.size s);
  Alcotest.(check int) "drain" 5 (List.length (Symbex.Searcher.drain s));
  Alcotest.(check int) "empty" 0 (Symbex.Searcher.size s)

(* ---------------- driver ---------------- *)

let toy_two_paths =
  (* true branch is much more expensive; castan search must find it *)
  program ~name:"t" ~entry:"process"
    [
      func "process" [ "dst_ip" ]
        [
          if_ (v "dst_ip" >: i 500)
            (List.init 30 (fun k -> Printf.sprintf "e%d" k <-- i k) @ [ ret (i 1) ])
            [ ret (i 0) ];
        ];
    ]

let run_driver ?(n_packets = 2) ?(strategy = Symbex.Searcher.Castan) prog =
  let cfg = Ir.Lower.program prog in
  let mem = Ir.Memory.create ~regions:cfg.Ir.Cfg.regions
      ~heap_bytes:cfg.Ir.Cfg.heap_bytes ~inject:(fun v -> Ir.Expr.Const v) in
  let config =
    { (Symbex.Driver.default_config ~n_packets costs) with
      strategy; time_budget = 5.0; instr_budget = 200_000 }
  in
  Symbex.Driver.run cfg ~mem ~cache:(Cache.Model.baseline geom) config

let driver_finds_expensive_path () =
  let r = run_driver toy_two_paths in
  match r.best with
  | None -> Alcotest.fail "no best state"
  | Some s -> (
      Alcotest.(check bool) "completed" true s.Symbex.State.finished;
      (* both packets must have taken the expensive branch *)
      match Solver.Solve.sat s.Symbex.State.pcs with
      | Sat m ->
          for p = 0 to 1 do
            let dst = Solver.Solve.Model.get m (Ir.Expr.Pkt { pkt = p; field = Dst_ip }) in
            Alcotest.(check bool) "expensive branch input" true (dst > 500)
          done
      | _ -> Alcotest.fail "best path unsolvable")

let driver_explores_all_paths () =
  let r = run_driver ~n_packets:1 toy_two_paths in
  (* one packet, one branch: both outcomes completed *)
  Alcotest.(check int) "two completed paths" 2 (List.length r.completed)

let driver_metrics_match_interp () =
  (* on the path the driver chose, the concrete interpreter must retire the
     same weighted instruction count the symbolic engine predicted *)
  let r = run_driver ~n_packets:1 toy_two_paths in
  match r.best with
  | None -> Alcotest.fail "no best"
  | Some s -> (
      match Solver.Solve.sat s.Symbex.State.pcs with
      | Sat m ->
          let dst = Solver.Solve.Model.get m (Ir.Expr.Pkt { pkt = 0; field = Dst_ip }) in
          let cfg = Ir.Lower.program toy_two_paths in
          let mem = ref (Ir.Memory.create ~regions:[] ~heap_bytes:4096 ~inject:Fun.id) in
          let o = Ir.Interp.call cfg ~mem ~hooks:Ir.Interp.no_hooks "process" [ dst ] in
          let predicted = List.hd (Symbex.State.all_metrics s) in
          Alcotest.(check int) "instructions agree" o.Ir.Interp.instrs
            predicted.Symbex.State.instrs
      | _ -> Alcotest.fail "unsolvable")

let driver_loop_greedy () =
  (* symbolic loop bound: the engine should run it deep, not exit early *)
  let prog =
    program ~name:"t" ~entry:"process"
      [
        func "process" [ "src_port" ]
          [
            "k" <-- i 0;
            while_ (v "k" <: v "src_port") [ "k" <-- v "k" +: i 1 ];
            ret (v "k");
          ];
      ]
  in
  let r = run_driver ~n_packets:1 prog in
  match r.best with
  | None -> Alcotest.fail "no best"
  | Some s ->
      let m = List.hd (Symbex.State.all_metrics s) in
      (* greedy loop exploration yields far more instructions than exit-now *)
      Alcotest.(check bool) "deep loop" true (m.Symbex.State.instrs > 100)

let driver_respects_instr_budget () =
  let prog =
    program ~name:"t" ~entry:"process"
      [
        func "process" [ "src_port" ]
          [
            "k" <-- i 0;
            while_ (v "k" <: v "src_port") [ "k" <-- v "k" +: i 1 ];
            ret (v "k");
          ];
      ]
  in
  let cfg = Ir.Lower.program prog in
  let mem = Ir.Memory.create ~regions:[] ~heap_bytes:4096
      ~inject:(fun v -> Ir.Expr.Const v) in
  let config =
    { (Symbex.Driver.default_config ~n_packets:4 costs) with
      instr_budget = 5_000; time_budget = 10.0 }
  in
  let r = Symbex.Driver.run cfg ~mem ~cache:(Cache.Model.baseline geom) config in
  Alcotest.(check bool) "stopped near budget" true
    (r.stats.executed_instrs < 40_000)

let driver_fork_on_small_domain () =
  (* a 2-candidate pointer (trie-child shape) must fork, covering both *)
  let regions = [ Ir.Memory.array_spec ~name:"r" ~elem_width:8 ~count:2
                    ~init:(fun i -> 100 + i) () ] in
  let base = Nf.Nf_def.region_base regions "r" in
  let prog =
    program ~name:"t" ~entry:"process" ~regions
      [
        func "process" [ "dst_ip" ]
          [
            "bit" <-- (v "dst_ip" &: i 1);
            load8 "x" (i base +: (v "bit" *: i 8));
            ret (v "x");
          ];
      ]
  in
  let r = run_driver ~n_packets:1 prog in
  Alcotest.(check int) "two pointer targets explored" 2 (List.length r.completed)

let tests =
  [
    Alcotest.test_case "cost straight line" `Quick cost_straight_line;
    Alcotest.test_case "cost if max" `Quick cost_if_takes_max;
    Alcotest.test_case "cost loop bound M" `Quick cost_loop_bounded_by_m;
    Alcotest.test_case "cost M=1 hides body" `Quick cost_m1_hides_body;
    Alcotest.test_case "cost call chain" `Quick cost_call_chain;
    Alcotest.test_case "cost L1 assumption" `Quick cost_memory_assumes_l1;
    Alcotest.test_case "searcher bfs/dfs" `Quick searcher_fifo_lifo;
    Alcotest.test_case "searcher drain" `Quick searcher_drain_counts;
    Alcotest.test_case "driver finds expensive path" `Quick driver_finds_expensive_path;
    Alcotest.test_case "driver explores all paths" `Quick driver_explores_all_paths;
    Alcotest.test_case "predicted = interpreted" `Quick driver_metrics_match_interp;
    Alcotest.test_case "driver loop greedy" `Quick driver_loop_greedy;
    Alcotest.test_case "driver instr budget" `Quick driver_respects_instr_budget;
    Alcotest.test_case "fork on small pointer domain" `Quick driver_fork_on_small_domain;
  ]
