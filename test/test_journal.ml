(* Tests for the crash-safe run journal: the crash-at-any-checkpoint resume
   contract, hydration of failed cells, identity-mismatch rejection, the
   resource watchdog's determinism, and the durable-write primitive.

   Every config here pins the symbolic-execution budget by *instructions*
   (a huge [analysis_time], a small [analysis_instrs]): wall-clock
   truncation is load-dependent, so only instruction-bound runs produce
   fingerprints that are a pure function of the config — which is exactly
   what the crash/resume contract needs. *)

let qtest = QCheck_alcotest.to_alcotest

(* Distinct [samples] values keep these cells' cache keys from colliding
   with any other test file's (the memo key includes samples). *)
let base_config =
  {
    Castan.Experiment.quick_config with
    samples = 402;
    analysis_time = 1e6;
    analysis_instrs = 20_000;
    use_contention_model = false;
  }

let nfs = [ "lpm-1stage-dl"; "lb-hash-ring" ]

(* ---------------- scratch dirs and ledger reading ---------------- *)

let fresh_dir () =
  let path = Filename.temp_file "castan-journal" "" in
  Sys.remove path;
  path

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

(* key -> (status, fingerprint), last record wins; all cells in these tests
   share one identity, so no session filtering is needed. *)
let ledger_cells dir =
  let ic = open_in (Filename.concat dir "ledger.jsonl") in
  let cells = Hashtbl.create 8 in
  (try
     while true do
       let line = input_line ic in
       match Obs.Json.parse line with
       | Error _ -> ()
       | Ok j -> (
           let str k =
             match Obs.Json.member k j with
             | Some (Obs.Json.Str s) -> Some s
             | _ -> None
           in
           match (str "kind", str "key", str "status", str "fingerprint")
           with
           | Some "cell", Some key, Some status, Some fp ->
               Hashtbl.replace cells key (status, fp)
           | _ -> ())
     done
   with End_of_file -> close_in ic);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) cells [] |> List.sort compare

let teardown () =
  Castan.Journal.disable ();
  Castan.Experiment.clear_cache ();
  Util.Resilience.set_crash_point None;
  Util.Resilience.set_injection None;
  Util.Resilience.reset ()

let enable_exn ~dir ~config ~resume =
  match Castan.Journal.enable ~dir ~config ~resume with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("journal enable: " ^ e)

(* One uninterrupted journaled campaign over [nfs] into a fresh dir;
   returns the dir and the cell map. *)
let baseline_run config =
  let dir = fresh_dir () in
  Castan.Experiment.clear_cache ();
  enable_exn ~dir ~config ~resume:false;
  List.iter
    (fun n -> ignore (Castan.Experiment.try_run ~config n))
    nfs;
  Castan.Journal.disable ();
  Castan.Experiment.clear_cache ();
  (dir, ledger_cells dir)

(* ---------------- crash at any checkpoint + resume ---------------- *)

let crash_resume_equivalence () =
  teardown ();
  let dir_base, base_cells = baseline_run base_config in
  Alcotest.(check int) "baseline journals every cell" (List.length nfs)
    (List.length base_cells);
  (* count the checkpoint sites an uninterrupted run passes *)
  Util.Resilience.set_crash_point None;
  Castan.Experiment.clear_cache ();
  List.iter
    (fun n -> ignore (Castan.Experiment.try_run ~config:base_config n))
    nfs;
  let sites = Util.Resilience.crash_points_seen () in
  Castan.Experiment.clear_cache ();
  Alcotest.(check bool)
    (Printf.sprintf "campaigns pass checkpoints (saw %d)" sites)
    true (sites >= 2);
  let prop k =
    let dir = fresh_dir () in
    (* the dying session: journal on, crash armed at site k *)
    enable_exn ~dir ~config:base_config ~resume:false;
    Util.Resilience.set_crash_point (Some k);
    (try
       List.iter
         (fun n -> ignore (Castan.Experiment.try_run ~config:base_config n))
         nfs
     with Util.Resilience.Crashed _ -> ());
    (* the process dies: memo gone, crash point gone, ledger survives *)
    Castan.Journal.disable ();
    Castan.Experiment.clear_cache ();
    Util.Resilience.set_crash_point None;
    (* the resumed session completes the campaign *)
    enable_exn ~dir ~config:base_config ~resume:true;
    List.iter
      (fun n -> ignore (Castan.Experiment.try_run ~config:base_config n))
      nfs;
    Castan.Journal.disable ();
    Castan.Experiment.clear_cache ();
    let cells = ledger_cells dir in
    let ok = cells = base_cells in
    if not ok then
      QCheck.Test.fail_reportf
        "crash at checkpoint %d diverged:@.resumed %s@.baseline %s" k
        (String.concat ";"
           (List.map (fun (k, (_, fp)) -> k ^ "=" ^ fp) cells))
        (String.concat ";"
           (List.map (fun (k, (_, fp)) -> k ^ "=" ^ fp) base_cells));
    rm_rf dir;
    ok
  in
  let t =
    QCheck.Test.make ~count:4
      ~name:"crash at any checkpoint + resume = uninterrupted"
      (QCheck.int_range 1 sites) prop
  in
  (* the extremes are the interesting edges: always cover them *)
  Alcotest.(check bool) "crash at first checkpoint" true (prop 1);
  Alcotest.(check bool) "crash at last checkpoint" true (prop sites);
  QCheck.Test.check_exn t;
  rm_rf dir_base;
  teardown ()

(* ---------------- resume re-runs zero completed cells ---------------- *)

let resume_reruns_nothing () =
  teardown ();
  let dir, base_cells = baseline_run base_config in
  enable_exn ~dir ~config:base_config ~resume:true;
  let s = Castan.Journal.stats () in
  Alcotest.(check int) "every cell hydrated" (List.length nfs)
    s.Castan.Journal.hydrated;
  List.iter
    (fun n -> ignore (Castan.Experiment.try_run ~config:base_config n))
    nfs;
  let s = Castan.Journal.stats () in
  Alcotest.(check int) "zero cells recomputed" 0 s.Castan.Journal.cells_written;
  Alcotest.(check int) "every lookup served from the journal"
    (List.length nfs) s.Castan.Journal.cells_reused;
  Alcotest.(check int) "one prior session" 1 s.Castan.Journal.resumes;
  Castan.Journal.disable ();
  Castan.Experiment.clear_cache ();
  Alcotest.(check bool) "ledger unchanged" true (ledger_cells dir = base_cells);
  rm_rf dir;
  teardown ()

(* ---------------- failed cells hydrate as failures ---------------- *)

let failed_cell_hydration () =
  teardown ();
  let dir = fresh_dir () in
  let nf = List.hd nfs in
  (* rate 1.0: the first guarded stage fails, and the cell is journaled as
     failed:<stage>.  The injector stays installed across the resume — the
     injection signature is part of the identity. *)
  Util.Resilience.set_injection
    (Some (Util.Resilience.inject ~rate:1.0 ~seed:7));
  Castan.Experiment.clear_cache ();
  enable_exn ~dir ~config:base_config ~resume:false;
  let first = Castan.Experiment.try_run ~config:base_config nf in
  let stage =
    match first with
    | Ok _ -> Alcotest.fail "rate 1.0 must fail the campaign"
    | Error f -> f.Util.Resilience.stage
  in
  (match ledger_cells dir with
  | [ (_, (status, _)) ] ->
      Alcotest.(check string) "journaled as failed:<stage>"
        ("failed:" ^ stage) status
  | cells ->
      Alcotest.fail
        (Printf.sprintf "expected one cell, ledger has %d"
           (List.length cells)));
  Castan.Journal.disable ();
  Castan.Experiment.clear_cache ();
  Util.Resilience.reset ();
  (* resumed session: the failure is reused, nothing re-runs (a re-run
     would hit the rate-1.0 injector and leave a fresh record in the
     failure sink) *)
  enable_exn ~dir ~config:base_config ~resume:true;
  let again = Castan.Experiment.try_run ~config:base_config nf in
  (match again with
  | Ok _ -> Alcotest.fail "hydrated cell must still be the failure"
  | Error f -> Alcotest.(check string) "same stage" stage f.Util.Resilience.stage);
  Alcotest.(check int) "nothing re-ran" 0
    (List.length (Util.Resilience.recorded ()));
  let s = Castan.Journal.stats () in
  Alcotest.(check int) "failure reused from the journal" 1
    s.Castan.Journal.cells_reused;
  rm_rf dir;
  teardown ()

(* ---------------- identity mismatches are stale, not reused ------------ *)

let identity_mismatch_rejected () =
  teardown ();
  let dir, _ = baseline_run base_config in
  (* a different seed changes both the identity's seed field and the config
     digest: nothing hydrates, everything counts as stale *)
  let other = { base_config with seed = 43 } in
  enable_exn ~dir ~config:other ~resume:true;
  let s = Castan.Journal.stats () in
  Alcotest.(check int) "foreign cells do not hydrate" 0
    s.Castan.Journal.hydrated;
  Alcotest.(check int) "foreign cells are stale" (List.length nfs)
    s.Castan.Journal.stale;
  Castan.Journal.disable ();
  Castan.Experiment.clear_cache ();
  (* fault injection is part of the identity too: clean cells must not
     leak into an injected run *)
  Util.Resilience.set_injection
    (Some (Util.Resilience.inject ~rate:0.5 ~seed:9));
  enable_exn ~dir ~config:base_config ~resume:true;
  let s = Castan.Journal.stats () in
  Alcotest.(check int) "clean cells invisible under injection" 0
    s.Castan.Journal.hydrated;
  rm_rf dir;
  teardown ()

(* ---------------- serialization round-trip ---------------- *)

let encode_decode_roundtrip () =
  teardown ();
  Castan.Experiment.clear_cache ();
  let run =
    match Castan.Experiment.try_run ~config:base_config (List.hd nfs) with
    | Ok r -> r
    | Error f -> Alcotest.fail (Util.Resilience.to_string f)
  in
  Castan.Experiment.clear_cache ();
  let j = Castan.Journal.encode_run ~deterministic:false run in
  (match Obs.Json.parse (Obs.Json.to_string j) with
  | Error e -> Alcotest.fail ("re-parse: " ^ e)
  | Ok j' -> (
      match Castan.Journal.decode_run j' with
      | Error e -> Alcotest.fail ("decode: " ^ e)
      | Ok run' ->
          Alcotest.(check string) "round-trip preserves the fingerprint"
            (Castan.Journal.fingerprint (Ok run))
            (Castan.Journal.fingerprint (Ok run'))));
  (* strictness: an unknown NF is a decode error, not an exception *)
  (match Castan.Journal.decode_run (Obs.Json.Obj [ ("nf", Obs.Json.Str "no-such-nf") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown NF must not decode");
  teardown ()

(* ---------------- watchdog determinism ---------------- *)

let watchdog_deterministic () =
  teardown ();
  Symbex.Driver.reset_watchdog_total ();
  let config = { base_config with samples = 403; max_states = 4 } in
  let saved_jobs = Util.Pool.default_jobs () in
  let run_at jobs =
    Util.Pool.set_default_jobs jobs;
    Castan.Experiment.clear_cache ();
    let r =
      match Castan.Experiment.try_run ~config "lb-hash-ring" with
      | Ok r -> r
      | Error f -> Alcotest.fail (Util.Resilience.to_string f)
    in
    Castan.Experiment.clear_cache ();
    r
  in
  let r1 = run_at 1 in
  let r4 = run_at 4 in
  Util.Pool.set_default_jobs saved_jobs;
  let stats (r : Castan.Experiment.nf_run) =
    r.Castan.Experiment.castan.Castan.Analyze.stats
  in
  Alcotest.(check bool) "the 4-state budget trips the watchdog" true
    ((stats r1).Symbex.Driver.watchdog_kills > 0);
  Alcotest.(check int) "same kill count at -j 1 and -j 4"
    (stats r1).Symbex.Driver.watchdog_kills
    (stats r4).Symbex.Driver.watchdog_kills;
  Alcotest.(check (list (pair string int))) "same kill reasons"
    (stats r1).Symbex.Driver.kill_reasons
    (stats r4).Symbex.Driver.kill_reasons;
  Alcotest.(check bool) "watchdog kills degrade the run" true
    (stats r1).Symbex.Driver.degraded;
  Alcotest.(check bool) "kills are accounted as watchdog-states" true
    (List.mem_assoc "watchdog-states" (stats r1).Symbex.Driver.kill_reasons);
  Alcotest.(check string) "identical fingerprints regardless of -j"
    (Castan.Journal.fingerprint (Ok r1))
    (Castan.Journal.fingerprint (Ok r4));
  Alcotest.(check bool) "process-level kill total advanced" true
    (Symbex.Driver.watchdog_kill_total () > 0);
  Symbex.Driver.reset_watchdog_total ();
  teardown ()

(* ---------------- durable writes ---------------- *)

let durable_write_basics () =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "artifact.txt" in
  Util.Durable.write_string ~path "first\n";
  Util.Durable.write_string ~path "second\n";
  let ic = open_in_bin path in
  let content = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string) "rename replaces atomically" "second\n" content;
  Alcotest.(check (list string)) "no temp files left behind"
    [ "artifact.txt" ]
    (Array.to_list (Sys.readdir dir) |> List.sort compare);
  rm_rf dir

let tests =
  [
    Alcotest.test_case "durable write basics" `Quick durable_write_basics;
    Alcotest.test_case "encode/decode round-trip" `Quick
      encode_decode_roundtrip;
    Alcotest.test_case "resume re-runs nothing" `Quick resume_reruns_nothing;
    Alcotest.test_case "failed cells hydrate" `Quick failed_cell_hydration;
    Alcotest.test_case "identity mismatch rejected" `Quick
      identity_mismatch_rejected;
    Alcotest.test_case "watchdog determinism (-j 1 = -j 4)" `Slow
      watchdog_deterministic;
    Alcotest.test_case "crash/resume equivalence" `Slow
      crash_resume_equivalence;
  ]
