(* Tests for castan.solver: simplifier semantics, domains, satisfiability. *)

open Ir.Expr

let qtest = QCheck_alcotest.to_alcotest

let pkt0 f : sexpr = Leaf (Pkt { pkt = 0; field = f })
let pkt1 f : sexpr = Leaf (Pkt { pkt = 1; field = f })
let dst = pkt0 Dst_ip
let src = pkt0 Src_ip
let sport = pkt0 Src_port

(* ---------------- simplifier ---------------- *)

(* Random symbolic expressions over a few packet fields; division excluded
   (zero divisors would make semantic comparison awkward). *)
let gen_sexpr : sexpr QCheck.Gen.t =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
         let leaf =
           oneof
             [
               map (fun c -> Const c) (int_range 0 70000);
               oneofl [ dst; src; sport; pkt0 Proto ];
             ]
         in
         if n = 0 then leaf
         else
           let sub = self (n / 2) in
           oneof
             [
               leaf;
               map2
                 (fun op (a, b) -> Binop (op, a, b))
                 (oneofl [ Add; Sub; Mul; And; Or; Xor ])
                 (pair sub sub);
               map2
                 (fun (op, k) a -> Binop (op, a, Const k))
                 (pair (oneofl [ Shl; Lshr ]) (int_range 0 8))
                 sub;
               map2
                 (fun op (a, b) -> Cmp (op, a, b))
                 (oneofl [ Eq; Ne; Lt; Le ])
                 (pair sub sub);
               map (fun (c, (a, b)) -> Ite (c, a, b)) (pair sub (pair sub sub));
             ])

let arb_sexpr = QCheck.make ~print:(to_string pp_sym) gen_sexpr

(* A deterministic per-symbol assignment derived from the seed. *)
let assignment_of seed s =
  let h = Hashtbl.hash s in
  let w = sym_width s in
  Util.Rng.int (Util.Rng.create ((seed * 31) + h)) (1 lsl min w 30)

let simplify_preserves_semantics =
  QCheck.Test.make ~name:"Simplify.expr preserves semantics" ~count:800
    QCheck.(pair arb_sexpr small_int)
    (fun (e, seed) ->
      let leaf = assignment_of seed in
      let v1 = try Some (eval ~leaf e) with Division_by_zero -> None in
      let v2 =
        try Some (eval ~leaf (Solver.Simplify.expr e))
        with Division_by_zero -> None
      in
      match (v1, v2) with Some a, Some b -> a = b | _ -> true)

let negate_is_logical_not =
  QCheck.Test.make ~name:"Simplify.negate is logical not" ~count:500
    QCheck.(pair arb_sexpr small_int)
    (fun (e, seed) ->
      let leaf = assignment_of seed in
      match eval ~leaf e with
      | exception Division_by_zero -> true
      | v ->
          let n = eval ~leaf (Solver.Simplify.negate e) in
          (v <> 0) = (n = 0) && (n = 0 || n = 1))

let simplify_constant_folds () =
  Alcotest.(check bool) "folds" true
    (Solver.Simplify.expr (Binop (Add, Const 2, Const 3)) = Const 5);
  Alcotest.(check bool) "neutral" true
    (Solver.Simplify.expr (Binop (Add, dst, Const 0)) = dst);
  Alcotest.(check bool) "absorbing" true
    (Solver.Simplify.expr (Binop (Mul, dst, Const 0)) = Const 0)

(* ---------------- domains ---------------- *)

let domain_ops_sound =
  QCheck.Test.make ~name:"Domain.binop over-approximates" ~count:1000
    QCheck.(
      triple
        (oneofl Ir.Expr.[ Add; Sub; Mul; And; Or; Xor; Lshr; Rem ])
        (pair (int_range 0 1000) (int_range 0 1000))
        (pair (int_range 0 100) (int_range 1 64)))
    (fun (op, (a, b), (lo_off, step)) ->
      (* membership of concrete op result when inputs drawn from domains *)
      let da = Solver.Domain.make ~lo:(a - lo_off) ~hi:(a + 100) ~step:1 in
      let db = Solver.Domain.make ~lo:b ~hi:(b + (step * 5)) ~step in
      QCheck.assume (Solver.Domain.mem da a && Solver.Domain.mem db b);
      match Ir.Expr.apply_binop op a b with
      | exception Division_by_zero -> true
      | r -> Solver.Domain.mem (Solver.Domain.binop op da db) r)

let domain_meet_exact () =
  let a = Solver.Domain.make ~lo:0 ~hi:100000 ~step:4096 in
  let b = Solver.Domain.make ~lo:4095 ~hi:100000 ~step:4096 in
  (match Solver.Domain.meet a b with
  | None -> ()
  | Some _ -> Alcotest.fail "disjoint progressions should not meet");
  let c = Solver.Domain.make ~lo:8192 ~hi:100000 ~step:4096 in
  match Solver.Domain.meet a c with
  | Some d ->
      Alcotest.(check bool) "member" true (Solver.Domain.mem d 8192);
      Alcotest.(check bool) "not member" false (Solver.Domain.mem d 4096)
  | None -> Alcotest.fail "overlapping progressions must meet"

let domain_meet_crt () =
  (* x ≡ 1 mod 3 and x ≡ 2 mod 5 -> x ≡ 7 mod 15 *)
  let a = Solver.Domain.make ~lo:1 ~hi:1000 ~step:3 in
  let b = Solver.Domain.make ~lo:2 ~hi:1000 ~step:5 in
  match Solver.Domain.meet a b with
  | Some d ->
      Alcotest.(check int) "lo" 7 (d : Solver.Domain.t).lo;
      Alcotest.(check int) "step" 15 (d : Solver.Domain.t).step
  | None -> Alcotest.fail "CRT meet must exist"

let domain_sample_member =
  QCheck.Test.make ~name:"Domain.sample yields members" ~count:300
    QCheck.(triple (int_range 0 1000) (int_range 1 100) (int_range 1 50))
    (fun (lo, extent, step) ->
      let d = Solver.Domain.make ~lo ~hi:(lo + extent * step) ~step in
      let rng = Util.Rng.create (lo + extent) in
      Solver.Domain.mem d (Solver.Domain.sample d rng))

(* ---------------- sat: inversion & propagation ---------------- *)

let solves cs =
  match Solver.Solve.sat cs with
  | Sat m ->
      Alcotest.(check bool) "model verifies" true (Solver.Solve.check m cs);
      m
  | Unsat -> Alcotest.fail "unexpectedly UNSAT"
  | Unknown -> Alcotest.fail "unexpectedly UNKNOWN"

let must_be_unsat cs =
  match Solver.Solve.sat cs with
  | Unsat -> ()
  | Sat _ -> Alcotest.fail "expected UNSAT, got model"
  | Unknown -> Alcotest.fail "expected UNSAT, got UNKNOWN"

let sat_shift_mul_chain () =
  let addr = Binop (Add, Const 0x1000, Binop (Mul, Binop (Lshr, dst, Const 5), Const 8)) in
  let m = solves [ Cmp (Eq, addr, Const (0x1000 + (777 * 8))) ] in
  Alcotest.(check int) "inverted" 777
    (Solver.Solve.Model.get m (Pkt { pkt = 0; field = Dst_ip }) lsr 5)

let sat_bit_tests () =
  let bit k b = Cmp (Eq, Binop (And, Binop (Lshr, dst, Const k), Const 1), Const b) in
  let m = solves [ bit 31 1; bit 13 0; bit 2 1 ] in
  let v = Solver.Solve.Model.get m (Pkt { pkt = 0; field = Dst_ip }) in
  Alcotest.(check int) "bit31" 1 ((v lsr 31) land 1);
  Alcotest.(check int) "bit13" 0 ((v lsr 13) land 1);
  Alcotest.(check int) "bit2" 1 ((v lsr 2) land 1)

let sat_congruence () =
  let m = solves [ Cmp (Eq, Binop (Rem, dst, Const 4096), Const 123);
                   Cmp (Lt, Const 100000, dst) ] in
  let v = Solver.Solve.Model.get m (Pkt { pkt = 0; field = Dst_ip }) in
  Alcotest.(check int) "mod" 123 (v mod 4096);
  Alcotest.(check bool) "bound" true (v > 100000)

let sat_packing () =
  let key = Binop (Or, Binop (Shl, src, Const 16), sport) in
  let m = solves [ Cmp (Eq, key, Const ((0xDEAD lsl 16) lor 1234)) ] in
  Alcotest.(check int) "src" 0xDEAD (Solver.Solve.Model.get m (Pkt { pkt = 0; field = Src_ip }));
  Alcotest.(check int) "port" 1234 (Solver.Solve.Model.get m (Pkt { pkt = 0; field = Src_port }))

let sat_xor_chain () =
  (* (src ^ dst) = K with dst pinned: needs the substitution rounds *)
  let m =
    solves
      [
        Cmp (Eq, Binop (Xor, src, dst), Const 0xABCD);
        Cmp (Eq, dst, Const 0x1111);
      ]
  in
  Alcotest.(check int) "xor resolved" (0xABCD lxor 0x1111)
    (Solver.Solve.Model.get m (Pkt { pkt = 0; field = Src_ip }))

let sat_ordering_chain () =
  let key p : sexpr =
    Binop (Or, Binop (Shl, Leaf (Pkt { pkt = p; field = Src_ip }), Const 16),
           Leaf (Pkt { pkt = p; field = Src_port }))
  in
  let cs = List.concat (List.init 7 (fun p ->
      if p = 0 then [] else [ Cmp (Lt, key p, key (p - 1)) ])) in
  let m = solves cs in
  let vals = List.init 8 (fun p -> Solver.Solve.Model.eval m (key p)) in
  let rec strictly_desc = function
    | a :: (b :: _ as rest) -> a > b && strictly_desc rest
    | _ -> true
  in
  Alcotest.(check bool) "descending" true (strictly_desc vals)

let sat_disjunction () =
  let proto = pkt0 Proto in
  let m = solves [ Binop (Or, Cmp (Eq, proto, Const 6), Cmp (Eq, proto, Const 17)) ] in
  let v = Solver.Solve.Model.get m (Pkt { pkt = 0; field = Proto }) in
  Alcotest.(check bool) "tcp or udp" true (v = 6 || v = 17)

let unsat_conflicting_eq () =
  must_be_unsat [ Cmp (Eq, sport, Const 5); Cmp (Eq, sport, Const 6) ]

let unsat_width_overflow () =
  (* an 8-bit field cannot equal 300 *)
  must_be_unsat [ Cmp (Eq, pkt0 Proto, Const 300) ]

let unsat_interval () =
  must_be_unsat [ Cmp (Lt, sport, Const 10); Cmp (Lt, Const 20, sport) ]

let unsat_congruence_conflict () =
  must_be_unsat
    [
      Cmp (Eq, Binop (Rem, dst, Const 4096), Const 1);
      Cmp (Eq, Binop (Rem, dst, Const 4096), Const 2);
    ]

let unsat_order_cycle () =
  let key p : sexpr =
    Binop (Or, Binop (Shl, Leaf (Pkt { pkt = p; field = Src_ip }), Const 16),
           Leaf (Pkt { pkt = p; field = Src_port }))
  in
  must_be_unsat
    [ Cmp (Lt, key 0, key 1); Cmp (Le, key 1, key 2); Cmp (Lt, key 2, key 0) ]

let unsat_direct_complement () =
  must_be_unsat [ Cmp (Lt, src, dst); Cmp (Le, dst, src) ]

let sat_cross_packet_ne () =
  let cs =
    List.concat
      (List.init 5 (fun i ->
           List.init i (fun j ->
               [ Cmp (Ne, Leaf (Pkt { pkt = i; field = Src_port }),
                      Leaf (Pkt { pkt = j; field = Src_port })) ])
           |> List.concat))
  in
  let m = solves cs in
  let ports = List.init 5 (fun p -> Solver.Solve.Model.get m (Pkt { pkt = p; field = Src_port })) in
  Alcotest.(check int) "all distinct" 5 (List.length (List.sort_uniq compare ports))

let domain_of_respects_constraints () =
  let d =
    Solver.Solve.domain_of
      [ Cmp (Lt, dst, Const 1000) ]
      (Binop (Add, Const 50, Binop (Mul, dst, Const 8)))
  in
  Alcotest.(check bool) "lo" true ((d : Solver.Domain.t).lo >= 50);
  Alcotest.(check bool) "hi" true ((d : Solver.Domain.t).hi <= 50 + (999 * 8));
  Alcotest.(check int) "step" 8 (d : Solver.Domain.t).step

let sat_models_random_linear =
  QCheck.Test.make ~name:"random invertible equalities solve" ~count:200
    QCheck.(triple (int_range 1 200) (int_range 0 4) (int_range 0 1000))
    (fun (mul, shift, c) ->
      let e = Binop (Add, Const 13, Binop (Mul, Binop (Lshr, dst, Const shift), Const mul)) in
      let target = 13 + (mul * c) in
      match Solver.Solve.sat [ Cmp (Eq, e, Const target) ] with
      | Sat m -> Solver.Solve.Model.eval m e = target
      | Unsat -> false
      | Unknown -> false)

let feasible_never_rejects_sat =
  QCheck.Test.make ~name:"feasible accepts satisfiable sets" ~count:100
    QCheck.(pair (int_range 0 65535) (int_range 0 255))
    (fun (port, proto) ->
      Solver.Solve.feasible
        [ Cmp (Eq, sport, Const port); Cmp (Eq, pkt0 Proto, Const proto) ])

(* Soundness of Unsat: build constraints that a known random assignment
   satisfies; the solver may time out (Unknown) but must never claim
   Unsat. *)
let never_unsat_on_satisfiable =
  QCheck.Test.make ~name:"sat never rejects a satisfiable set" ~count:300
    QCheck.(pair small_int (list_of_size (QCheck.Gen.int_range 1 6) arb_sexpr))
    (fun (seed, es) ->
      let leaf = assignment_of seed in
      (* turn each random expression into a constraint satisfied by [leaf] *)
      let cs =
        List.filter_map
          (fun e ->
            match eval ~leaf e with
            | exception Division_by_zero -> None
            | v -> Some (Cmp (Eq, e, Const v) : sexpr))
          es
      in
      match Solver.Solve.sat cs with
      | Unsat -> false
      | Sat m -> Solver.Solve.check m cs
      | Unknown -> true)

let tests =
  [
    qtest simplify_preserves_semantics;
    qtest negate_is_logical_not;
    Alcotest.test_case "simplify constants" `Quick simplify_constant_folds;
    qtest domain_ops_sound;
    Alcotest.test_case "meet exactness" `Quick domain_meet_exact;
    Alcotest.test_case "meet CRT" `Quick domain_meet_crt;
    qtest domain_sample_member;
    Alcotest.test_case "invert shift*mul" `Quick sat_shift_mul_chain;
    Alcotest.test_case "invert bit tests" `Quick sat_bit_tests;
    Alcotest.test_case "congruence" `Quick sat_congruence;
    Alcotest.test_case "field packing" `Quick sat_packing;
    Alcotest.test_case "xor chain" `Quick sat_xor_chain;
    Alcotest.test_case "ordering chain" `Quick sat_ordering_chain;
    Alcotest.test_case "disjunction" `Quick sat_disjunction;
    Alcotest.test_case "unsat: conflicting eq" `Quick unsat_conflicting_eq;
    Alcotest.test_case "unsat: width overflow" `Quick unsat_width_overflow;
    Alcotest.test_case "unsat: interval" `Quick unsat_interval;
    Alcotest.test_case "unsat: congruence" `Quick unsat_congruence_conflict;
    Alcotest.test_case "unsat: order cycle" `Quick unsat_order_cycle;
    Alcotest.test_case "unsat: complement pair" `Quick unsat_direct_complement;
    Alcotest.test_case "cross-packet Ne" `Quick sat_cross_packet_ne;
    Alcotest.test_case "domain_of" `Quick domain_of_respects_constraints;
    qtest sat_models_random_linear;
    qtest feasible_never_rejects_sat;
    qtest never_unsat_on_satisfiable;
  ]
